(* favc — the fine access-vector compiler.

   Front end to the compile-time pipeline of the paper: parses an ODML
   schema, runs the static checks, and prints direct/transitive access
   vectors, late-binding resolution graphs and per-class commutativity
   relations. *)

open Cmdliner
open Tavcc_model
open Tavcc_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let source = if path = "-" then In_channel.input_all stdin else read_file path in
  let decls = Tavcc_lang.Parser.parse_decls source in
  match Schema.build decls with
  | Error e -> Error (Format.asprintf "schema error: %a" Schema.pp_error e)
  | Ok schema -> Ok schema

let check_schema schema =
  match Tavcc_lang.Check.check schema with
  | Ok () -> Ok ()
  | Error errs ->
      Error
        (Format.asprintf "%a"
           (Format.pp_print_list ~pp_sep:Format.pp_print_newline Tavcc_lang.Check.pp_error)
           errs)

let handle_syntax f =
  try f () with
  | Tavcc_lang.Lexer.Error (msg, pos) ->
      Error (Format.asprintf "lexical error at %a: %s" Tavcc_lang.Token.pp_pos pos msg)
  | Tavcc_lang.Parser.Error (msg, pos) ->
      Error (Format.asprintf "syntax error at %a: %s" Tavcc_lang.Token.pp_pos pos msg)

let with_schema path f =
  match
    handle_syntax (fun () ->
        Result.bind (load path) (fun schema ->
            Result.map (fun () -> schema) (check_schema schema)))
  with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok schema -> f schema

let classes_or schema = function
  | [] -> Schema.classes schema
  | names ->
      List.map
        (fun n ->
          let c = Name.Class.of_string n in
          if not (Schema.mem schema c) then (
            Printf.eprintf "favc: unknown class %s\n" n;
            exit 1);
          c)
        names

(* --- commands --- *)

let file_arg =
  let doc = "ODML schema file ('-' for standard input)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let class_arg =
  let doc = "Restrict the output to $(docv) (repeatable); default: every class." in
  Arg.(value & opt_all string [] & info [ "c"; "class" ] ~docv:"CLASS" ~doc)

let compile_cmd =
  let run file classes =
    with_schema file (fun schema ->
        let an = Analysis.compile schema in
        List.iter
          (fun c -> print_string (Report.class_report an c))
          (classes_or schema classes);
        0)
  in
  let doc = "compile a schema and print its full analysis report" in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ file_arg $ class_arg)

let davs_cmd =
  let run file classes =
    with_schema file (fun schema ->
        let an = Analysis.compile schema in
        List.iter (fun c -> print_string (Report.davs an c)) (classes_or schema classes);
        0)
  in
  let doc = "print direct access vectors (definition 6)" in
  Cmd.v (Cmd.info "dav" ~doc) Term.(const run $ file_arg $ class_arg)

let tavs_cmd =
  let run file classes =
    with_schema file (fun schema ->
        let an = Analysis.compile schema in
        List.iter (fun c -> print_string (Report.tavs an c)) (classes_or schema classes);
        0)
  in
  let doc = "print transitive access vectors (definition 10)" in
  Cmd.v (Cmd.info "tav" ~doc) Term.(const run $ file_arg $ class_arg)

let commute_cmd =
  let run file classes =
    with_schema file (fun schema ->
        let an = Analysis.compile schema in
        List.iter
          (fun c ->
            Format.printf "== class %a ==@.%s" Name.Class.pp c (Report.commutativity an c))
          (classes_or schema classes);
        0)
  in
  let doc = "print per-class commutativity relations (sec. 5.1)" in
  Cmd.v (Cmd.info "commute" ~doc) Term.(const run $ file_arg $ class_arg)

let dot_cmd =
  let run file classes =
    with_schema file (fun schema ->
        let an = Analysis.compile schema in
        List.iter
          (fun c -> print_string (Lbr.to_dot (Analysis.lbr an c)))
          (classes_or schema classes);
        0)
  in
  let doc = "emit late-binding resolution graphs (definition 9) as GraphViz DOT" in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ file_arg $ class_arg)

let depgraph_cmd =
  let run file =
    with_schema file (fun schema ->
        let ex = Extraction.build schema in
        print_string (Depgraph.to_dot (Depgraph.build ex));
        0)
  in
  let doc = "emit the whole-schema method dependency graph (composition links) as DOT" in
  Cmd.v (Cmd.info "depgraph" ~doc) Term.(const run $ file_arg)

let json_of_check_errors errs =
  let module Json = Tavcc_obs.Json in
  let pos = function
    | None -> Json.Null
    | Some p ->
        Json.Obj [ ("line", Json.Int p.Tavcc_lang.Token.line); ("col", Json.Int p.Tavcc_lang.Token.col) ]
  in
  Json.Obj
    [
      ( "errors",
        Json.List
          (List.map
             (fun (e : Tavcc_lang.Check.error) ->
               Json.Obj
                 [
                   ("class", Json.String (Name.Class.to_string e.Tavcc_lang.Check.ce_class));
                   ( "method",
                     match e.Tavcc_lang.Check.ce_method with
                     | Some m -> Json.String (Name.Method.to_string m)
                     | None -> Json.Null );
                   ("pos", pos e.Tavcc_lang.Check.ce_pos);
                   ("message", Json.String e.Tavcc_lang.Check.ce_msg);
                 ])
             errs) );
    ]

let check_cmd =
  let run file json =
    match handle_syntax (fun () -> load file) with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok schema -> (
        match Tavcc_lang.Check.check schema with
        | Ok () ->
            if json then print_endline (Tavcc_obs.Json.to_string (json_of_check_errors []))
            else
              Printf.printf "%s: %d class(es), no diagnostics\n" file
                (Schema.class_count schema);
            0
        | Error errs ->
            if json then print_endline (Tavcc_obs.Json.to_string (json_of_check_errors errs))
            else
              prerr_endline
                (Format.asprintf "%a"
                   (Format.pp_print_list ~pp_sep:Format.pp_print_newline
                      Tavcc_lang.Check.pp_error)
                   errs);
            1)
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the diagnostics as JSON instead of text.")
  in
  let doc = "parse and statically check a schema" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ file_arg $ json)

let lint_cmd =
  let module Lint = Tavcc_analyze.Lint in
  let module Diag = Tavcc_analyze.Diag in
  let run file use_example json fail_on dot_class =
    let fail_on =
      match fail_on with
      | "never" -> None
      | s -> (
          match Diag.severity_of_string s with
          | Some _ as sev -> sev
          | None ->
              Printf.eprintf "favc lint: unknown severity '%s' (info|warning|error|never)\n" s;
              exit 2)
    in
    let with_an f =
      if use_example then f (Paper_example.schema ())
      else
        match file with
        | None ->
            prerr_endline "favc lint: a FILE argument or --example is required";
            2
        | Some file -> with_schema file f
    in
    with_an (fun schema ->
        let an = Analysis.compile schema in
        let report = Lint.analyze an in
        (match dot_class with
        | Some c ->
            let c = Name.Class.of_string c in
            if not (Schema.mem schema c) then (
              Format.eprintf "favc lint: unknown class %a@." Name.Class.pp c;
              exit 2);
            print_string (Lint.dot_overlay an report c)
        | None ->
            if json then print_endline (Tavcc_obs.Json.to_string (Lint.to_json report))
            else Format.printf "%a" Lint.pp_report report);
        let fail =
          match (Lint.max_severity report, fail_on) with
          | Some s, Some threshold -> Diag.severity_rank s >= Diag.severity_rank threshold
          | _ -> false
        in
        if fail then 1 else 0)
  in
  let file =
    let doc = "ODML schema file ('-' for standard input)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let example =
    Arg.(value & flag & info [ "example" ] ~doc:"Lint the embedded paper schema (Figure 1).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let fail_on =
    let doc =
      "Exit nonzero when a diagnostic of severity $(docv) or above is reported \
       (info|warning|error|never)."
    in
    Arg.(value & opt string "error" & info [ "fail-on" ] ~docv:"SEV" ~doc)
  in
  let dot_class =
    let doc =
      "Instead of the report, emit $(docv)'s late-binding resolution graph as GraphViz \
       DOT with the blamed edges highlighted."
    in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"CLASS" ~doc)
  in
  let doc = "statically analyse a schema for concurrency-control problems (P3/P4)" in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run $ file $ example $ json $ fail_on $ dot_class)

let verify_cmd =
  let module Fuzz = Tavcc_sanitize.Fuzz in
  let module Conform = Tavcc_sanitize.Conform in
  let module Diag = Tavcc_analyze.Diag in
  let module Json = Tavcc_obs.Json in
  let run file json =
    let source = if file = "-" then In_channel.input_all stdin else read_file file in
    match Fuzz.run_source source with
    | Error msg ->
        Printf.eprintf "favc verify: %s: %s\n" file msg;
        2
    | Ok r ->
        let res = r.Fuzz.run_result in
        let ok = Conform.ok res && r.Fuzz.run_errors = [] in
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("sound", Json.Bool (Conform.ok res));
                    ("checks", Json.Int res.Conform.r_checks);
                    ("dav_sites", Json.Int res.Conform.r_dav_sites);
                    ("tav_sites", Json.Int res.Conform.r_tav_sites);
                    ("diags", Json.List (List.map Diag.to_json res.Conform.r_diags));
                    ( "drive_errors",
                      Json.List
                        (List.map
                           (fun (entry, msg) ->
                             Json.Obj
                               [
                                 ("entry", Json.String entry);
                                 ("error", Json.String msg);
                               ])
                           r.Fuzz.run_errors) );
                  ]))
        else begin
          Printf.printf
            "%s: drove every entry over the argument sweep — %d inclusion checks over %d \
             dav + %d tav sites\n"
            file res.Conform.r_checks res.Conform.r_dav_sites res.Conform.r_tav_sites;
          List.iter
            (fun (entry, msg) -> Printf.printf "  %s: did not finish: %s\n" entry msg)
            r.Fuzz.run_errors;
          if Conform.ok res then
            Printf.printf "%s: observed access vectors within the static ones\n" file
          else
            List.iter (fun d -> Format.printf "%a@." Diag.pp d) res.Conform.r_diags
        end;
        if ok then 0 else 1
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as JSON instead of text.")
  in
  let doc =
    "execute every method under the dynamic access-vector recorder and verify the \
     observed accesses stay within the compiled DAVs and TAVs (soundness)"
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ file_arg $ json)

let example_cmd =
  let run () =
    print_string "-- Figure 1 --\n";
    print_string (Report.figure1 ());
    print_string "\n-- Table 1 --\n";
    print_string (Report.table1 ());
    print_string "\n-- Figure 2 --\n";
    print_string (Report.figure2 ());
    print_string "\n-- Table 2 --\n";
    print_string (Report.table2 ());
    0
  in
  let doc = "print the paper's running example and its artefacts" in
  Cmd.v (Cmd.info "example" ~doc) Term.(const run $ const ())

let main =
  let doc = "fine concurrency control compiler (Malta & Martinez, ICDE'93)" in
  Cmd.group
    (Cmd.info "favc" ~version:"1.0.0" ~doc)
    [
      compile_cmd; davs_cmd; tavs_cmd; commute_cmd; dot_cmd; depgraph_cmd; check_cmd;
      lint_cmd; verify_cmd; example_cmd;
    ]

let () = exit (Cmd.eval' main)
