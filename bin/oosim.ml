(* oosim — concurrency-control simulator.

   Runs workloads through the deterministic execution engine under any of
   the five schemes and reports lock traffic, waits, deadlocks and the
   serializability verdict. *)

open Cmdliner
open Tavcc_model
module Exec = Tavcc_cc.Exec
module Fault = Tavcc_chaos.Fault
module Torture = Tavcc_chaos.Torture
module Explore = Tavcc_chaos.Explore
module Engine = Tavcc_sim.Engine
module Engine_trace = Tavcc_sim.Engine_trace
module Workload = Tavcc_sim.Workload
module Crosscheck = Tavcc_sim.Crosscheck
module Rng = Tavcc_sim.Rng
module Par_engine = Tavcc_par.Par_engine
module Par_obs = Tavcc_par.Par_obs
module Metrics = Tavcc_obs.Metrics
module Sink = Tavcc_obs.Sink
module Json = Tavcc_obs.Json
module Trace = Tavcc_obs.Trace
module Wire = Tavcc_net.Wire
module Server = Tavcc_net.Server
module Blast = Tavcc_net.Blast
module Storage = Tavcc_storage.Engine
module Crash_matrix = Tavcc_storage.Crash_matrix
module Recorder = Tavcc_sanitize.Recorder
module Monitor = Tavcc_sanitize.Monitor
module Conform = Tavcc_sanitize.Conform
module Fuzz = Tavcc_sanitize.Fuzz
module Diag = Tavcc_analyze.Diag

let schemes =
  [
    ("tav", Tavcc_cc.Tav_modes.scheme);
    ("tav-pre", Tavcc_cc.Tav_preclaim.scheme);
    ("rw-msg", Tavcc_cc.Rw_instance.scheme);
    ("rw-top", Tavcc_cc.Rw_toponly.scheme);
    ("rw-impl", Tavcc_cc.Rw_implicit.scheme);
    ("field-rt", Tavcc_cc.Field_runtime.scheme);
    ("relational", Tavcc_cc.Relational.scheme);
    ("mvcc-tav", fun an -> Tavcc_mvcc.Mvcc_tav.scheme an);
  ]

let policies =
  [
    ("detect", Engine.Detect);
    ("wound-wait", Engine.Wound_wait);
    ("wait-die", Engine.Wait_die);
    ("no-wait", Engine.No_wait);
    ("timeout", Engine.Timeout 50);
  ]

let policy_conv =
  let parse s =
    match List.assoc_opt s policies with
    | Some p -> Ok p
    | None ->
        Error (`Msg (Printf.sprintf "unknown policy %S (expected %s)" s
                       (String.concat ", " (List.map fst policies))))
  in
  Arg.conv (parse, fun ppf p ->
      Format.pp_print_string ppf
        (match p with
        | Engine.Detect -> "detect"
        | Engine.Wound_wait -> "wound-wait"
        | Engine.Wait_die -> "wait-die"
        | Engine.No_wait -> "no-wait"
        | Engine.Timeout n -> Printf.sprintf "timeout(%d)" n))

let policy_arg =
  Arg.(value & opt policy_conv Engine.Detect
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Deadlock handling: detect, wound-wait, wait-die, no-wait or timeout.")

let scheme_conv =
  let parse s =
    match List.assoc_opt s schemes with
    | Some _ -> Ok s
    | None ->
        Error (`Msg (Printf.sprintf "unknown scheme %S (expected %s)" s
                       (String.concat ", " (List.map fst schemes))))
  in
  Arg.conv (parse, Format.pp_print_string)

(* --- shared observability flags --- *)

let metrics_arg =
  let fmt =
    Arg.enum [ ("text", `Text); ("json", `Json) ]
  in
  Arg.(value & opt ~vopt:(Some `Text) (some fmt) None
       & info [ "metrics" ] ~docv:"FMT"
           ~doc:"Collect metrics (counters, gauges, histograms) across the run and report \
                 them; FMT is $(b,text) (default) or $(b,json).  With $(b,json) the command \
                 prints a single machine-readable JSON object instead of the human output.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file of the run(s) — open it in Perfetto or \
                 chrome://tracing.  Timestamps are scheduler steps; with several schemes each \
                 gets its own pid.")

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A flag the user typed but the command would silently ignore is a
   usage error, not a no-op — refuse with exit 2 like cmdliner does. *)
let usage_error cmd msg =
  Printf.eprintf "oosim %s: %s\n" cmd msg;
  exit 2

(* --- on-disk storage flags (run / serve) --- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let data_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Back the store with the on-disk slotted-page engine (WAL, double-write \
                 buffer and data file under DIR) instead of the in-memory store.")

let pool_pages_arg =
  Arg.(value & opt (some int) None
       & info [ "pool-pages" ] ~docv:"N"
           ~doc:"Buffer-pool frames for $(b,--data-dir) (default 64); size it below the \
                 working set to exercise eviction and write-back.")

let storage_config ~dir ~pool_pages =
  let cfg = Storage.default_config ~dir in
  match pool_pages with None -> cfg | Some n -> { cfg with Storage.pool_pages = n }

let print_storage_stats st =
  let p = st.Storage.s_pool in
  Printf.printf
    "  storage: %d instances on %d pages; pool %d frames, %d hits / %d misses / %d \
     evictions; wal %d records (%d bytes)\n"
    st.Storage.s_instances st.Storage.s_data_pages st.Storage.s_pool_pages
    p.Tavcc_storage.Buffer_pool.hits p.Tavcc_storage.Buffer_pool.misses
    p.Tavcc_storage.Buffer_pool.evictions st.Storage.s_wal_records st.Storage.s_wal_bytes

let storage_stats_json st =
  let p = st.Storage.s_pool in
  Json.Obj
    [
      ("instances", Json.Int st.Storage.s_instances);
      ("data_pages", Json.Int st.Storage.s_data_pages);
      ("pool_pages", Json.Int st.Storage.s_pool_pages);
      ("pool_hits", Json.Int p.Tavcc_storage.Buffer_pool.hits);
      ("pool_misses", Json.Int p.Tavcc_storage.Buffer_pool.misses);
      ("evictions", Json.Int p.Tavcc_storage.Buffer_pool.evictions);
      ("wal_records", Json.Int st.Storage.s_wal_records);
      ("wal_bytes", Json.Int st.Storage.s_wal_bytes);
    ]

(* Fan one access out to two passive observers (recorder + lock monitor). *)
let both_probes a b =
  {
    Exec.p_top_send = (fun o c m -> a.Exec.p_top_send o c m; b.Exec.p_top_send o c m);
    p_self_send = (fun o c m -> a.Exec.p_self_send o c m; b.Exec.p_self_send o c m);
    p_enter =
      (fun o c ~resolve_at ~defining m ->
        a.Exec.p_enter o c ~resolve_at ~defining m;
        b.Exec.p_enter o c ~resolve_at ~defining m);
    p_exit = (fun o c m -> a.Exec.p_exit o c m; b.Exec.p_exit o c m);
    p_read =
      (fun o c f ~versioned ->
        a.Exec.p_read o c f ~versioned;
        b.Exec.p_read o c f ~versioned);
    p_write =
      (fun o c f ~versioned ->
        a.Exec.p_write o c f ~versioned;
        b.Exec.p_write o c f ~versioned);
  }

let result_to_json name policy (r : Engine.result) =
  Json.Obj
    [
      ("scheme", Json.String name);
      ("policy", Json.String (Engine.policy_name policy));
      ("commits", Json.Int r.Engine.commits);
      ("deadlocks", Json.Int r.Engine.deadlocks);
      ("aborts", Json.Int r.Engine.aborts);
      ("restarts", Json.Int r.Engine.restarts);
      ("scheduler_steps", Json.Int r.Engine.scheduler_steps);
      ("serializable", Json.Bool (Engine.serializable r));
      ("lock_stats", Tavcc_lock.Lock_table.stats_to_json r.Engine.lock_stats);
      ( "failed",
        Json.List
          (List.map
             (fun (id, msg) -> Json.Obj [ ("txn", Json.Int id); ("error", Json.String msg) ])
             r.Engine.failed) );
    ]

let print_result name (r : Engine.result) =
  Printf.printf
    "%-12s commits=%-4d deadlocks=%-4d aborts=%-4d restarts=%-4d reqs=%-6d waits=%-5d \
     conversions=%-5d steps=%-6d serializable=%b\n"
    name r.Engine.commits r.Engine.deadlocks r.Engine.aborts r.Engine.restarts
    r.Engine.lock_requests r.Engine.lock_waits r.Engine.lock_conversions
    r.Engine.scheduler_steps (Engine.serializable r);
  List.iter (fun (id, msg) -> Printf.printf "  txn %d FAILED: %s\n" id msg) r.Engine.failed

(* --- run: random workloads on generated schemas --- *)

let run_cmd =
  let run scheme_names seed txns actions depth fanout per_class extent_prob hot yield policy
      metrics_fmt trace_out data_dir pool_pages =
    if pool_pages <> None && data_dir = None then
      usage_error "run" "--pool-pages is only meaningful with --data-dir";
    let json_mode = metrics_fmt = Some `Json in
    let rng = Rng.create seed in
    let schema =
      Workload.make_schema rng
        { Workload.default_params with sp_depth = depth; sp_fanout = fanout }
    in
    let analysis_metrics = Option.map (fun _ -> Metrics.create ()) metrics_fmt in
    let an = Tavcc_core.Analysis.compile ?metrics:analysis_metrics schema in
    if not json_mode then
      Printf.printf
        "schema: %d classes, %d analysed methods; %d instances per class; %d txns x %d \
         actions; seed %d\n\n"
        (Schema.class_count schema)
        (Tavcc_core.Analysis.method_count an)
        per_class txns actions seed;
    let names = if scheme_names = [] then List.map fst schemes else scheme_names in
    let runs =
      List.map
        (fun name ->
          let mk = List.assoc name schemes in
          let eng =
            match data_dir with
            | None -> None
            | Some dir ->
                (* One sub-store per scheme, wiped fresh: the seeded
                   workload must replay against identical oids. *)
                let sub = Filename.concat dir name in
                rm_rf sub;
                Some
                  (Storage.create
                     { (storage_config ~dir:sub ~pool_pages) with
                       Storage.self_journal = false })
          in
          let store =
            match eng with None -> Store.create schema | Some e -> Storage.store e schema
          in
          Workload.populate store ~per_class;
          let jobs =
            Workload.random_jobs (Rng.create (seed + 1)) store ~txns ~actions_per_txn:actions
              ~extent_prob ~hot_instances:hot ~hot_prob:0.7
          in
          let metrics = Option.map (fun _ -> Metrics.create ()) metrics_fmt in
          let sink =
            if trace_out <> None then Sink.ring 1_000_000 else Sink.null
          in
          let hooks =
            match eng with
            | None -> Engine.no_hooks
            | Some e ->
                { Engine.no_hooks with Engine.hk_observe = Some (Storage.observe e) }
          in
          let config =
            { Engine.default_config with seed; yield_on_access = yield; policy; sink;
              metrics; hooks }
          in
          let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
          let st =
            Option.map
              (fun e ->
                let st = Storage.stats e in
                Storage.close e;
                st)
              eng
          in
          if not json_mode then begin
            print_result name r;
            Option.iter print_storage_stats st;
            match metrics with
            | Some m -> Format.printf "%a@." Metrics.pp m
            | None -> ()
          end;
          (name, r, metrics, st))
        names
    in
    (match trace_out with
    | None -> ()
    | Some file ->
        (* One pid per scheme, labelled, all in a single trace. *)
        let events =
          List.concat
            (List.mapi
               (fun pid (name, r, _, _) ->
                 Trace.process_name ~pid name :: Engine_trace.to_trace ~pid r.Engine.events)
               runs)
        in
        write_file file (Trace.to_string events);
        if not json_mode then
          Printf.printf "wrote %s (%d trace events)\n" file (List.length events));
    if json_mode then begin
      let doc =
        Json.Obj
          [
            ( "schema",
              Json.Obj
                [
                  ("classes", Json.Int (Schema.class_count schema));
                  ("methods", Json.Int (Tavcc_core.Analysis.method_count an));
                  ("instances_per_class", Json.Int per_class);
                  ("txns", Json.Int txns);
                  ("actions_per_txn", Json.Int actions);
                  ("seed", Json.Int seed);
                ] );
            ( "analysis_metrics",
              match analysis_metrics with Some m -> Metrics.to_json m | None -> Json.Null );
            ( "runs",
              Json.List
                (List.map
                   (fun (name, r, metrics, st) ->
                     let extra =
                       (match metrics with
                       | Some m -> [ ("metrics", Metrics.to_json m) ]
                       | None -> [])
                       @
                       match st with
                       | Some st -> [ ("storage", storage_stats_json st) ]
                       | None -> []
                     in
                     match result_to_json name policy r with
                     | Json.Obj kvs -> Json.Obj (kvs @ extra)
                     | j -> j)
                   runs) );
          ]
      in
      print_endline (Json.to_string doc)
    end
    else begin
      match analysis_metrics with
      | Some m -> Format.printf "analysis phases:@.%a@." Metrics.pp m
      | None -> ()
    end;
    0
  in
  let scheme_arg =
    Arg.(value & opt_all scheme_conv [] & info [ "s"; "scheme" ] ~docv:"SCHEME"
           ~doc:"Scheme to simulate (repeatable); default: all schemes.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let txns = Arg.(value & opt int 8 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Concurrent transactions.") in
  let actions = Arg.(value & opt int 4 & info [ "a"; "actions" ] ~docv:"N" ~doc:"Actions per transaction.") in
  let depth = Arg.(value & opt int 3 & info [ "depth" ] ~docv:"N" ~doc:"Inheritance depth.") in
  let fanout = Arg.(value & opt int 2 & info [ "fanout" ] ~docv:"N" ~doc:"Subclasses per class.") in
  let per_class = Arg.(value & opt int 4 & info [ "instances" ] ~docv:"N" ~doc:"Instances per class.") in
  let extent_prob =
    Arg.(value & opt float 0.15 & info [ "extent-prob" ] ~docv:"P" ~doc:"Probability of an extent scan.")
  in
  let hot = Arg.(value & opt int 3 & info [ "hot" ] ~docv:"N" ~doc:"Hot-set size.") in
  let yield =
    Arg.(value & opt bool true & info [ "interleave" ] ~docv:"BOOL"
           ~doc:"Reschedule at every field access.")
  in
  let doc = "simulate a random workload under one or more schemes" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ scheme_arg $ seed $ txns $ actions $ depth $ fanout $ per_class $ extent_prob
      $ hot $ yield $ policy_arg $ metrics_arg $ trace_out_arg $ data_dir_arg
      $ pool_pages_arg)

(* --- par: the multicore driver on the contended slice workload --- *)

(* Scheme names become Prometheus prefixes; keep only name chars. *)
let prom_prefix name =
  "tavcc_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

let par_cmd =
  let run scheme_names domains shards seed txns actions methods work instances hot read_frac
      policy check sanitize metrics_fmt trace_out profile top_k prom_out =
    if top_k <> None && not profile then
      usage_error "par" "--top is only meaningful with --profile";
    let top_k = Option.value ~default:10 top_k in
    let json_mode = metrics_fmt = Some `Json in
    let readers = if read_frac > 0. then methods else 0 in
    let schema = Workload.slice_schema ~readers ~methods ~work () in
    let an = Tavcc_core.Analysis.compile schema in
    if not json_mode then
      Printf.printf
        "par: %d domains, %d shards, %d txns x %d actions, %d slices x %d writes, %d grid \
         instances (hot %d), read-frac %.2f, policy %s, seed %d%s%s\n\n"
        domains shards txns actions methods work instances hot read_frac
        (Engine.policy_name policy) seed
        (if check then ", serializability check on" else "")
        (if sanitize then ", sanitizer on" else "");
    let names = if scheme_names = [] then [ "rw-msg"; "tav" ] else scheme_names in
    let runs =
      List.map
        (fun name ->
          let mk = List.assoc name schemes in
          let store = Store.create schema in
          Workload.populate store ~per_class:instances;
          let jobs =
            if read_frac > 0. then
              Workload.mixed_slice_jobs (Rng.create (seed + 1)) store ~txns
                ~actions_per_txn:actions ~hot_instances:hot ~read_frac
            else
              Workload.slice_jobs (Rng.create (seed + 1)) store ~txns
                ~actions_per_txn:actions ~hot_instances:hot
          in
          let metrics =
            if metrics_fmt <> None || prom_out <> None then Some (Metrics.create ())
            else None
          in
          (* One event stream per scheme: its own rings, its own pid in
             the merged trace. *)
          let obs =
            if trace_out <> None || profile then
              Some (Par_obs.create ~keep_events:(trace_out <> None) ~domains ())
            else None
          in
          (* One recorder and one monitor per worker domain: the probes run
             on the workers' hot path and must not share mutable state. *)
          let san_state =
            if sanitize then
              let recorders = Array.init domains (fun _ -> Recorder.create ()) in
              let mons =
                if Monitor.supported name then
                  Some (Array.init domains (fun _ -> Monitor.create ~scheme:name an))
                else None
              in
              Some (recorders, mons)
            else None
          in
          let probe =
            Option.map
              (fun (recorders, mons) ~dom ~txn ~holds ->
                let rp = Recorder.probe recorders.(dom) ~txn in
                match mons with
                | None -> rp
                | Some ms -> both_probes rp (Monitor.probe ms.(dom) ~txn ~holds))
              san_state
          in
          let config =
            {
              Par_engine.default_config with
              domains;
              shards;
              policy;
              record_history = check;
              metrics;
              obs;
              probe;
            }
          in
          let r = Par_engine.run ~config ~scheme:(mk an) ~store ~jobs () in
          let san =
            Option.map
              (fun (recorders, mons) ->
                let merged = Recorder.create () in
                Array.iter (fun rc -> Recorder.merge_into ~dst:merged rc) recorders;
                let conform = Conform.check ~an merged in
                let checked, viols, vdiags =
                  match mons with
                  | None -> (0, 0, [])
                  | Some ms ->
                      Array.fold_left
                        (fun (c, v, ds) m ->
                          let ds' =
                            List.map (Monitor.to_diag m) (Monitor.drain m)
                          in
                          (c + Monitor.checked m, v + Monitor.violations m, ds @ ds'))
                        (0, 0, []) ms
                in
                (checked, viols, List.sort Diag.render_compare vdiags, conform))
              san_state
          in
          if not json_mode then begin
            Format.printf "%-12s %a%s@." name Par_engine.pp_result r
              (if check then
                 Printf.sprintf " serializable=%b" (Par_engine.serializable r)
               else "");
            List.iter
              (fun (id, msg) -> Printf.printf "  txn %d FAILED: %s\n" id msg)
              r.Par_engine.failed;
            (match san with
            | None -> ()
            | Some (checked, viols, vdiags, conform) ->
                Printf.printf
                  "  sanitize: lock-checked=%d violations=%d; conformance: %d checks over \
                   %d dav + %d tav sites, %d diags\n"
                  checked viols conform.Conform.r_checks conform.Conform.r_dav_sites
                  conform.Conform.r_tav_sites
                  (List.length conform.Conform.r_diags);
                List.iteri
                  (fun i d -> if i < 10 then Format.printf "    %a@." Diag.pp d)
                  vdiags;
                List.iter
                  (fun d -> Format.printf "    %a@." Diag.pp d)
                  conform.Conform.r_diags);
            (match metrics with
            | Some m when metrics_fmt <> None -> Format.printf "%a@." Metrics.pp m
            | _ -> ());
            match obs with
            | Some o when profile ->
                Format.printf "contention (%s):@.%a@." name
                  (Tavcc_obs.Contention.pp ~key:Par_obs.res_key ~k:top_k)
                  (Par_obs.contention o)
            | _ -> ()
          end;
          (name, r, metrics, obs, san))
        names
    in
    (match trace_out with
    | None -> ()
    | Some file ->
        let events =
          List.concat
            (List.mapi
               (fun pid (name, _, _, obs, _) ->
                 match obs with
                 | None -> []
                 | Some o -> Trace.process_name ~pid name :: Par_obs.to_trace ~pid o)
               runs)
        in
        write_file file (Trace.to_string events);
        let dropped =
          List.fold_left
            (fun acc (_, _, _, obs, _) ->
              acc + match obs with Some o -> Par_obs.dropped o | None -> 0)
            0 runs
        in
        if not json_mode then
          Printf.printf "wrote %s (%d trace events%s)\n" file (List.length events)
            (if dropped > 0 then Printf.sprintf ", %d ring overflows" dropped else ""));
    (match prom_out with
    | None -> ()
    | Some file ->
        let text =
          String.concat ""
            (List.filter_map
               (fun (name, _, metrics, _, _) ->
                 Option.map (Metrics.to_prometheus ~prefix:(prom_prefix name)) metrics)
               runs)
        in
        write_file file text;
        if not json_mode then Printf.printf "wrote %s\n" file);
    if json_mode then begin
      let doc =
        Json.Obj
          [
            ( "config",
              Json.Obj
                [
                  ("domains", Json.Int domains);
                  ("shards", Json.Int shards);
                  ("txns", Json.Int txns);
                  ("actions_per_txn", Json.Int actions);
                  ("slices", Json.Int methods);
                  ("work", Json.Int work);
                  ("instances", Json.Int instances);
                  ("hot", Json.Int hot);
                  ("read_frac", Json.Float read_frac);
                  ("policy", Json.String (Engine.policy_name policy));
                  ("seed", Json.Int seed);
                ] );
            ( "runs",
              Json.List
                (List.map
                   (fun (name, (r : Par_engine.result), metrics, obs, san) ->
                     Json.Obj
                       ([
                          ("scheme", Json.String name);
                          ("commits", Json.Int r.Par_engine.commits);
                          ("aborts", Json.Int r.Par_engine.aborts);
                          ("deadlocks", Json.Int r.Par_engine.deadlocks);
                          ("wounds", Json.Int r.Par_engine.wounds);
                          ("died", Json.Int r.Par_engine.died);
                          ("timeouts", Json.Int r.Par_engine.timeouts);
                          ("restarts", Json.Int r.Par_engine.restarts);
                          ("snapshot_commits", Json.Int r.Par_engine.snapshot_commits);
                          ("snapshot_aborts", Json.Int r.Par_engine.snapshot_aborts);
                          ("occ_commits", Json.Int r.Par_engine.occ_commits);
                          ( "occ_validation_failures",
                            Json.Int r.Par_engine.occ_validation_failures );
                          ("wall_seconds", Json.Float r.Par_engine.wall_seconds);
                          ("txns_per_sec", Json.Float r.Par_engine.throughput);
                          ("serializable", Json.Bool (Par_engine.serializable r));
                          ( "failed",
                            Json.List
                              (List.map
                                 (fun (id, msg) ->
                                   Json.Obj
                                     [
                                       ("txn", Json.Int id); ("error", Json.String msg);
                                     ])
                                 r.Par_engine.failed) );
                          ( "lock_stats",
                            Tavcc_lock.Lock_table.stats_to_json r.Par_engine.lock_stats );
                        ]
                       @ (match metrics with
                         | Some m -> [ ("metrics", Metrics.to_json m) ]
                         | None -> [])
                       @ (match san with
                         | None -> []
                         | Some (checked, viols, vdiags, conform) ->
                             [
                               ( "sanitize",
                                 Json.Obj
                                   [
                                     ("lock_checked", Json.Int checked);
                                     ("lock_violations", Json.Int viols);
                                     ( "lock_diags",
                                       Json.List (List.map Diag.to_json vdiags) );
                                     ( "conformance_checks",
                                       Json.Int conform.Conform.r_checks );
                                     ("dav_sites", Json.Int conform.Conform.r_dav_sites);
                                     ("tav_sites", Json.Int conform.Conform.r_tav_sites);
                                     ( "conformance_diags",
                                       Json.List
                                         (List.map Diag.to_json
                                            conform.Conform.r_diags) );
                                   ] );
                             ])
                       @
                       match obs with
                       | Some o when profile ->
                           [
                             ( "contention",
                               Tavcc_obs.Contention.to_json ~key:Par_obs.res_key ~k:top_k
                                 (Par_obs.contention o) );
                           ]
                       | _ -> []))
                   runs) );
          ]
      in
      print_endline (Json.to_string doc)
    end;
    let san_bad =
      List.exists
        (fun (_, _, _, _, san) ->
          match san with
          | Some (_, viols, _, conform) ->
              viols > 0 || conform.Conform.r_diags <> []
          | None -> false)
        runs
    in
    if List.exists (fun (_, r, _, _, _) -> r.Par_engine.failed <> []) runs || san_bad then 1
    else 0
  in
  let scheme_arg =
    Arg.(value & opt_all scheme_conv []
         & info [ "s"; "scheme" ] ~docv:"SCHEME"
             ~doc:"Scheme to run (repeatable); default: rw-msg and tav.")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let shards =
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc:"Lock-manager shards.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let txns =
    Arg.(value & opt int 200 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Transactions to run.")
  in
  let actions =
    Arg.(value & opt int 4 & info [ "a"; "actions" ] ~docv:"N" ~doc:"Actions per transaction.")
  in
  let methods =
    Arg.(value & opt int 16 & info [ "slices" ] ~docv:"N"
         ~doc:"Disjoint field slices (methods) of the grid class.")
  in
  let work =
    Arg.(value & opt int 8 & info [ "work" ] ~docv:"N"
         ~doc:"Read-modify-writes per method call.")
  in
  let instances =
    Arg.(value & opt int 4 & info [ "instances" ] ~docv:"N" ~doc:"Grid instances.")
  in
  let hot =
    Arg.(value & opt int 2 & info [ "hot" ] ~docv:"N" ~doc:"Hot-set size (contention knob).")
  in
  let read_frac =
    Arg.(value & opt float 0. & info [ "read-frac" ] ~docv:"F"
         ~doc:"Fraction of transactions that are read-only (adds reader methods to the \
                 grid schema; snapshot-eligible under mvcc-tav).")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
         ~doc:"Record the field-access history (serialises the hot path) and report the \
                 conflict-serializability verdict.")
  in
  let sanitize =
    Arg.(value & flag & info [ "sanitize" ]
         ~doc:"Attach the soundness sanitizer: one access-vector recorder and one \
               lock-coverage monitor per worker domain, merged and checked after the run \
               (observed-vs-static conformance plus lock domination under the scheme's \
               vocabulary).  Any violation makes the exit status nonzero.  Synthesized \
               workload schemas carry no source positions, so diagnostics name sites \
               without line:col.")
  in
  let par_trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON file of the run(s): one track per worker \
                   domain plus the detector track, wait spans, kill instants, and flow \
                   arrows linking each blocked request to the grant (or wound) that ended \
                   its wait.  Timestamps are microseconds; with several schemes each gets \
                   its own pid.  Open in Perfetto or chrome://tracing.")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Attribute cumulative wait time, queue depth and kills to the contended \
                   resources and print the hottest ones per scheme (JSON mode: a \
                   $(b,contention) object per run).")
  in
  let top_k =
    Arg.(value & opt (some int) None
         & info [ "top" ] ~docv:"K"
             ~doc:"Resources to list with $(b,--profile) (default 10); an error without it.")
  in
  let prom_out =
    Arg.(value & opt (some string) None
         & info [ "prom-out" ] ~docv:"FILE"
             ~doc:"Write the metrics registries as Prometheus text exposition (one \
                   $(b,tavcc_<scheme>_) section per scheme); implies metrics collection.")
  in
  let doc = "run the contended slice workload on real domains (multicore)" in
  Cmd.v (Cmd.info "par" ~doc)
    Term.(
      const run $ scheme_arg $ domains $ shards $ seed $ txns $ actions $ methods $ work
      $ instances $ hot $ read_frac $ policy_arg $ check $ sanitize $ metrics_arg
      $ par_trace_out $ profile $ top_k $ prom_out)

(* --- top: live introspection of a running multicore workload --- *)

let top_cmd =
  let run scheme_name domains shards seed txns actions methods work instances hot read_frac
      policy refresh_ms iterations prom_out =
    let readers = if read_frac > 0. then methods else 0 in
    let schema = Workload.slice_schema ~readers ~methods ~work () in
    let an = Tavcc_core.Analysis.compile schema in
    let mk = List.assoc scheme_name schemes in
    let metrics = Metrics.create () in
    let obs = Par_obs.create ~keep_events:false ~domains () in
    let config =
      {
        Par_engine.default_config with
        domains;
        shards;
        policy;
        metrics = Some metrics;
        obs = Some obs;
      }
    in
    (* The workload runs on its own domain tree; this domain only reads
       the shared registry and the contention profiler (both are safe to
       poll: atomic cells and an internal mutex). *)
    let done_ = Atomic.make false in
    let last = Atomic.make None in
    let runner =
      Domain.spawn (fun () ->
          Fun.protect
            ~finally:(fun () -> Atomic.set done_ true)
            (fun () ->
              for it = 1 to max 1 iterations do
                let store = Store.create schema in
                Workload.populate store ~per_class:instances;
                let jobs =
                  if read_frac > 0. then
                    Workload.mixed_slice_jobs (Rng.create (seed + it)) store ~txns
                      ~actions_per_txn:actions ~hot_instances:hot ~read_frac
                  else
                    Workload.slice_jobs (Rng.create (seed + it)) store ~txns
                      ~actions_per_txn:actions ~hot_instances:hot
                in
                let r = Par_engine.run ~config ~scheme:(mk an) ~store ~jobs () in
                Atomic.set last (Some r)
              done))
    in
    let t0 = Unix.gettimeofday () in
    let tty = Unix.isatty Unix.stdout in
    let c name = Metrics.counter metrics name in
    let commits = c "par.commits"
    and aborts = c "par.aborts"
    and restarts = c "par.restarts"
    and deadlocks = c "par.deadlocks"
    and wounds = c "par.wounds"
    and timeouts = c "par.timeouts" in
    let busy = Array.init domains (fun d -> c (Printf.sprintf "par.dom%d.busy_us" d)) in
    let txn_us = Metrics.histogram metrics "par.txn_us" in
    let snapshot ~final () =
      if tty && not final then print_string "\027[H\027[2J";
      let elapsed = Unix.gettimeofday () -. t0 in
      Printf.printf "oosim top — %s, %d domains, %d shards, policy %s, %.1fs%s\n"
        scheme_name domains shards (Engine.policy_name policy) elapsed
        (if final then " (done)" else "");
      Printf.printf
        "  commits=%d aborts=%d restarts=%d deadlocks=%d wounds=%d timeouts=%d\n"
        (Metrics.value commits) (Metrics.value aborts) (Metrics.value restarts)
        (Metrics.value deadlocks) (Metrics.value wounds) (Metrics.value timeouts);
      let el_us = Float.max 1.0 (elapsed *. 1e6) in
      Printf.printf "  utilisation:%s\n"
        (String.concat ""
           (List.init domains (fun d ->
                Printf.sprintf " dom%d %3.0f%%" d
                  (100.0 *. float_of_int (Metrics.value busy.(d)) /. el_us))));
      Printf.printf "  txn_us: n=%d p50=%.0f p95=%.0f p99=%.0f max=%d\n"
        (Metrics.count txn_us)
        (Metrics.quantile txn_us 0.50)
        (Metrics.quantile txn_us 0.95)
        (Metrics.quantile txn_us 0.99)
        (Metrics.max_value txn_us);
      Format.printf "%a@?"
        (Tavcc_obs.Contention.pp ~key:Par_obs.res_key ~k:5)
        (Par_obs.contention obs);
      flush stdout
    in
    while not (Atomic.get done_) do
      snapshot ~final:false ();
      Unix.sleepf (float_of_int (max 20 refresh_ms) /. 1000.)
    done;
    Domain.join runner;
    snapshot ~final:true ();
    (match Atomic.get last with
    | Some r -> Format.printf "%a@." Par_engine.pp_result r
    | None -> ());
    (match prom_out with
    | None -> ()
    | Some file ->
        write_file file (Metrics.to_prometheus metrics);
        Printf.printf "wrote %s\n" file);
    0
  in
  let scheme_arg =
    Arg.(value & opt scheme_conv "tav"
         & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc:"Scheme to run (default tav).")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let shards =
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc:"Lock-manager shards.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let txns =
    Arg.(value & opt int 1000 & info [ "t"; "txns" ] ~docv:"N"
         ~doc:"Transactions per iteration.")
  in
  let actions =
    Arg.(value & opt int 4 & info [ "a"; "actions" ] ~docv:"N" ~doc:"Actions per transaction.")
  in
  let methods =
    Arg.(value & opt int 16 & info [ "slices" ] ~docv:"N"
         ~doc:"Disjoint field slices (methods) of the grid class.")
  in
  let work =
    Arg.(value & opt int 8 & info [ "work" ] ~docv:"N"
         ~doc:"Read-modify-writes per method call.")
  in
  let instances =
    Arg.(value & opt int 4 & info [ "instances" ] ~docv:"N" ~doc:"Grid instances.")
  in
  let hot =
    Arg.(value & opt int 2 & info [ "hot" ] ~docv:"N" ~doc:"Hot-set size (contention knob).")
  in
  let read_frac =
    Arg.(value & opt float 0. & info [ "read-frac" ] ~docv:"F"
         ~doc:"Fraction of read-only transactions.")
  in
  let refresh_ms =
    Arg.(value & opt int 200 & info [ "refresh-ms" ] ~docv:"MS"
         ~doc:"Snapshot refresh period (min 20).")
  in
  let iterations =
    Arg.(value & opt int 1 & info [ "iterations" ] ~docv:"N"
         ~doc:"Workload repetitions — raise to keep the display live longer; counters \
               and the contention profile accumulate across iterations.")
  in
  let prom_out =
    Arg.(value & opt (some string) None
         & info [ "prom-out" ] ~docv:"FILE"
             ~doc:"On exit, write the registry as Prometheus text exposition.")
  in
  let doc = "live in-terminal view of a running multicore workload (commits, per-domain \
             utilisation, latency quantiles, hottest resources)" in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ scheme_arg $ domains $ shards $ seed $ txns $ actions $ methods $ work
      $ instances $ hot $ read_frac $ policy_arg $ refresh_ms $ iterations $ prom_out)

(* --- scenario: the sec. 5.2 comparison --- *)

let scenario_cmd =
  let run () =
    List.iter
      (fun (_, mk) ->
        Format.printf "%a@." Tavcc_cc.Scenario.pp (Tavcc_cc.Scenario.evaluate mk))
      schemes;
    0
  in
  let doc = "evaluate the paper's sec. 5.2 four-transaction scenario" in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(const run $ const ())

(* --- escalation: the deadlock demonstration --- *)

let escalation_cmd =
  let run seed txns levels policy trace trace_out =
    let schema = Workload.chain_schema ~levels in
    let an = Tavcc_core.Analysis.compile schema in
    Printf.printf
      "reader-then-writer cascade of depth %d, %d transactions on one instance, seed %d\n\n"
      levels txns seed;
    let runs =
      List.map
        (fun (name, mk) ->
          let store = Store.create schema in
          let oid = Store.new_instance store (Name.Class.of_string "chain") in
          let top = Name.Method.of_string (Printf.sprintf "m%d" levels) in
          let jobs =
            List.init txns (fun i -> (i + 1, [ Exec.Call (oid, top, [ Value.Vint 1 ]) ]))
          in
          let sink =
            if trace || trace_out <> None then Sink.ring 1_000_000 else Sink.null
          in
          let config =
            { Engine.default_config with seed; yield_on_access = true; policy; sink }
          in
          let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
          print_result name r;
          if trace then
            List.iter
              (fun (step, e) -> Format.printf "    [%4d] %a@." step Engine.pp_event e)
              r.Engine.events;
          (name, r))
        schemes
    in
    (match trace_out with
    | None -> ()
    | Some file ->
        let events =
          List.concat
            (List.mapi
               (fun pid (name, r) ->
                 Trace.process_name ~pid name :: Engine_trace.to_trace ~pid r.Engine.events)
               runs)
        in
        write_file file (Trace.to_string events);
        Printf.printf "wrote %s (%d trace events)\n" file (List.length events));
    0
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let txns = Arg.(value & opt int 6 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Concurrent transactions.") in
  let levels = Arg.(value & opt int 3 & info [ "depth" ] ~docv:"N" ~doc:"Self-call cascade depth.") in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the engine's event log for each scheme.")
  in
  let doc = "demonstrate escalation deadlocks (problem P3)" in
  Cmd.v (Cmd.info "escalation" ~doc)
    Term.(const run $ seed $ txns $ levels $ policy_arg $ trace $ trace_out_arg)

(* --- chaos: fault injection, schedule exploration, crash torture --- *)

let chaos_cmd =
  let run workload_names scheme_names seed runs budget_ms systematic preemptions
      policy replay json out =
    (match replay with
    | Some _ ->
        (* Replay is one deterministic run: exploration knobs don't apply. *)
        if runs <> None then usage_error "chaos" "--runs is ignored by --replay";
        if budget_ms <> None then usage_error "chaos" "--budget-ms is ignored by --replay";
        if systematic then usage_error "chaos" "--systematic is ignored by --replay";
        if preemptions <> None then
          usage_error "chaos" "--preemptions is ignored by --replay";
        if out <> None then usage_error "chaos" "--out is ignored by --replay"
    | None ->
        if preemptions <> None && not systematic then
          usage_error "chaos" "--preemptions is only meaningful with --systematic");
    let runs = Option.value ~default:20 runs in
    let budget_ms = Option.value ~default:0 budget_ms in
    let preemptions = Option.value ~default:2 preemptions in
    let out = Option.value ~default:"chaos_counterexample.txt" out in
    let select names all kind =
      List.map
        (fun n ->
          match List.assoc_opt n all with
          | Some v -> (n, v)
          | None ->
              Printf.eprintf "oosim chaos: unknown %s %S (expected %s)\n" kind n
                (String.concat ", " (List.map fst all));
              exit 2)
        names
    in
    let workloads_all =
      [
        ("escalation", Torture.escalation_workload ());
        ("slices", Torture.slices_workload ());
        ("mixed", Torture.mixed_slices_workload ());
        ("random", Torture.random_workload ());
      ]
    in
    let workloads =
      match workload_names with
      | [] | [ "all" ] -> workloads_all
      | names -> select names workloads_all "workload"
    in
    let schemes_sel =
      match scheme_names with
      | [] -> schemes
      | names -> select names schemes "scheme"
    in
    let deadline = Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.) in
    let within_budget () = budget_ms <= 0 || Unix.gettimeofday () < deadline in
    let policy_name = Engine.policy_name policy in
    let torture sname mk w (c : Explore.case) =
      Torture.run ~policy ~scheme_name:sname ~scheme:mk ~workload:w
        ~seed:c.Explore.c_seed ~plan:c.Explore.c_plan ()
    in
    match replay with
    | Some plan_str ->
        (* Replay mode: one deterministic run per selected combination. *)
        let plan =
          try Fault.of_string plan_str
          with Invalid_argument msg ->
            Printf.eprintf "oosim chaos: %s\n" msg;
            exit 2
        in
        let case = { Explore.c_seed = seed; c_plan = plan } in
        let all_ok = ref true in
        List.iter
          (fun (_, w) ->
            List.iter
              (fun (sname, mk) ->
                let r = torture sname mk w case in
                if json then print_endline (Json.to_string (Torture.report_to_json r))
                else Format.printf "%a@." Torture.pp_report r;
                if not (Torture.ok r) then all_ok := false)
              schemes_sel)
          workloads;
        if !all_ok then 0 else 1
    | None ->
        (* Exploration mode: randomized cases (plus optional systematic
           bounded-preemption perturbations of the sticky schedule) until
           a failure, the run count, or the budget is exhausted. *)
        let total_runs = ref 0
        and total_crash = ref 0
        and total_torn = ref 0
        and total_violations = ref 0 in
        let per = ref [] in
        let counterexample = ref None in
        List.iter
          (fun (wname, w) ->
            List.iter
              (fun (sname, mk) ->
                if !counterexample = None then begin
                  let combo_runs = ref 0
                  and combo_crash = ref 0
                  and combo_torn = ref 0
                  and combo_violations = ref 0 in
                  let txns = List.map fst (snd (w.Torture.w_build ())) in
                  let base = { Explore.c_seed = seed;
                               c_plan = { Fault.injections = []; schedule = Fault.Fixed [] } } in
                  let run_one c =
                    incr total_runs;
                    incr combo_runs;
                    let r = torture sname mk w c in
                    combo_crash := !combo_crash + r.Torture.r_crash_points;
                    combo_torn := !combo_torn + r.Torture.r_torn_points;
                    combo_violations :=
                      !combo_violations + List.length r.Torture.r_violations;
                    total_crash := !total_crash + r.Torture.r_crash_points;
                    total_torn := !total_torn + r.Torture.r_torn_points;
                    total_violations :=
                      !total_violations + List.length r.Torture.r_violations;
                    r
                  in
                  let base_report = run_one base in
                  (* Cross-driver differential: the same jobs through the
                     multicore engine pinned to one domain must land on
                     the same final state. *)
                  let par_violations =
                    Torture.par_differential ~scheme_name:sname ~scheme:mk
                      ~workload:w ~expect:base_report.Torture.r_final_dump ()
                  in
                  List.iter (fun v -> Printf.eprintf "chaos: %s\n" v) par_violations;
                  combo_violations := !combo_violations + List.length par_violations;
                  total_violations := !total_violations + List.length par_violations;
                  let cases =
                    Explore.random_cases ~base_seed:seed ~runs ~txns
                    @ (if systematic then
                         Explore.systematic_cases ~seed
                           ~ready_sizes:base_report.Torture.r_ready_sizes
                           ~preemptions ~max_cases:runs
                       else [])
                  in
                  let failing = ref (if Torture.ok base_report then None
                                     else Some (base, base_report)) in
                  List.iter
                    (fun c ->
                      if !failing = None && within_budget () then begin
                        let r = run_one c in
                        if not (Torture.ok r) then failing := Some (c, r)
                      end)
                    cases;
                  (match !failing with
                  | None -> ()
                  | Some (c, r) ->
                      (* Shrink quietly (no stats), then report. *)
                      let shrunk =
                        Explore.shrink
                          ~run:(fun c -> Torture.ok (torture sname mk w c))
                          c
                      in
                      let cmd =
                        Explore.to_command ~workload:wname ~scheme:sname
                          ~policy:policy_name shrunk
                      in
                      counterexample := Some (cmd, r));
                  per :=
                    (wname, sname, !combo_runs, !combo_crash, !combo_torn,
                     !combo_violations)
                    :: !per;
                  if not json then
                    Printf.printf
                      "%-10s %-10s %4d runs  %6d crash points  %4d torn points  %d violations\n%!"
                      wname sname !combo_runs !combo_crash !combo_torn
                      !combo_violations
                end)
              schemes_sel)
          workloads;
        (match !counterexample with
        | None -> if not json then Printf.printf "chaos: no counterexample found\n"
        | Some (cmd, r) ->
            let text =
              Format.asprintf "# shrunk chaos counterexample@.%s@.@.%a@." cmd
                Torture.pp_report r
            in
            write_file out text;
            if not json then
              Printf.printf "chaos: COUNTEREXAMPLE (written to %s)\n  %s\n" out cmd
            else Printf.eprintf "chaos: counterexample written to %s\n" out);
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("workloads", Json.Int (List.length workloads));
                    ("schemes", Json.Int (List.length schemes_sel));
                    ("runs", Json.Int !total_runs);
                    ("crash_points", Json.Int !total_crash);
                    ("torn_points", Json.Int !total_torn);
                    ("violations", Json.Int !total_violations);
                    ( "per",
                      Json.List
                        (List.rev_map
                           (fun (w, s, r, c, t, v) ->
                             Json.Obj
                               [
                                 ("workload", Json.String w);
                                 ("scheme", Json.String s);
                                 ("runs", Json.Int r);
                                 ("crash_points", Json.Int c);
                                 ("torn_points", Json.Int t);
                                 ("violations", Json.Int v);
                               ])
                           !per) );
                    ("ok", Json.Bool (!counterexample = None));
                    ( "counterexample",
                      match !counterexample with
                      | None -> Json.Null
                      | Some (cmd, _) -> Json.String cmd );
                  ]));
        if !counterexample = None then 0 else 1
  in
  let workload_arg =
    Arg.(value & opt_all string []
         & info [ "workload" ] ~docv:"NAME"
             ~doc:"Workload(s) to torture: escalation, slices, mixed, random, or all \
                   (default all; repeatable).")
  in
  let scheme_arg =
    Arg.(value & opt_all string []
         & info [ "scheme" ] ~docv:"NAME"
             ~doc:"Concurrency-control scheme(s) (default all; repeatable).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.") in
  let runs =
    Arg.(value & opt (some int) None
         & info [ "runs" ] ~docv:"N"
             ~doc:"Random cases per (workload, scheme) combination (default 20).")
  in
  let budget_ms =
    Arg.(value & opt (some int) None
         & info [ "budget-ms" ] ~docv:"MS"
             ~doc:"Stop launching new cases after this many milliseconds (default 0 = no \
                   limit).")
  in
  let systematic =
    Arg.(value & flag
         & info [ "systematic" ]
             ~doc:"Also enumerate bounded-preemption perturbations of the sticky \
                   schedule.")
  in
  let preemptions =
    Arg.(value & opt (some int) None
         & info [ "preemptions" ] ~docv:"N"
             ~doc:"Preemption bound for $(b,--systematic) (default 2); an error without it.")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"PLAN"
             ~doc:"Replay one fault plan (the string printed for a counterexample) \
                   instead of exploring; the exploration flags are errors here.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON summary on stdout.") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Where to write a shrunk counterexample (default \
                   chaos_counterexample.txt).")
  in
  let doc = "fault-injection and schedule-exploration torture (crash matrix + oracles)" in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ workload_arg $ scheme_arg $ seed $ runs $ budget_ms $ systematic
          $ preemptions $ policy_arg $ replay $ json $ out)

(* --- sanitize: schema-fuzzing differential oracle for the analyzer --- *)

let sanitize_cmd =
  let run schemas seed budget_ms mutate trials min_detection replay json out =
    (match replay with
    | Some _ ->
        (* Replay re-checks one schema file: campaign knobs don't apply. *)
        if schemas <> None then usage_error "sanitize" "--schemas is ignored by --replay";
        if budget_ms <> None then
          usage_error "sanitize" "--budget-ms is ignored by --replay";
        if mutate then usage_error "sanitize" "--mutate is ignored by --replay";
        if trials <> None then usage_error "sanitize" "--trials is ignored by --replay";
        if min_detection <> None then
          usage_error "sanitize" "--min-detection is ignored by --replay";
        if out <> None then usage_error "sanitize" "--out is ignored by --replay"
    | None ->
        if trials <> None && not mutate then
          usage_error "sanitize" "--trials is only meaningful with --mutate";
        if min_detection <> None && not mutate then
          usage_error "sanitize" "--min-detection is only meaningful with --mutate");
    let schemas = Option.value ~default:100 schemas in
    let budget_ms = Option.value ~default:0 budget_ms in
    let trials = Option.value ~default:4 trials in
    let min_detection = Option.value ~default:0. min_detection in
    let out = Option.value ~default:"sanitize_counterexample.odml" out in
    match replay with
    | Some file -> (
        (* Replay mode: re-check one (possibly minimized) schema. *)
        let src = read_file file in
        match Fuzz.check_source src with
        | Fuzz.Sound ->
            if json then
              print_endline
                (Json.to_string
                   (Json.Obj [ ("sound", Json.Bool true); ("diags", Json.List []) ]))
            else Printf.printf "%s: sound (observed within static vectors)\n" file;
            0
        | Fuzz.Unsound diags ->
            if json then
              print_endline
                (Json.to_string
                   (Json.Obj
                      [
                        ("sound", Json.Bool false);
                        ("diags", Json.List (List.map Diag.to_json diags));
                      ]))
            else begin
              Printf.printf "%s: UNSOUND — observed access vectors exceed the static ones\n"
                file;
              List.iter (fun d -> Format.printf "%a@." Diag.pp d) diags
            end;
            1
        | Fuzz.Broken msg ->
            Printf.eprintf "oosim sanitize: %s: %s\n" file msg;
            2)
    | None ->
        (* Campaign mode: fresh random schemas until the count or the
           budget is exhausted, stopping at the first soundness
           counterexample (minimized and written to [out]). *)
        let deadline = Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.) in
        let within_budget () = budget_ms <= 0 || Unix.gettimeofday () < deadline in
        let driven = ref 0
        and checks = ref 0
        and dav_sites = ref 0
        and tav_sites = ref 0 in
        let broken = ref [] in
        let counterexample = ref None in
        let attempted = ref 0
        and detected = ref 0 in
        let missed = ref [] in
        let i = ref 0 in
        while !i < schemas && within_budget () && !counterexample = None do
          let schema_seed = seed + !i in
          let rng = Rng.create schema_seed in
          let src = Fuzz.source (Fuzz.gen_decls rng) in
          (match Fuzz.run_source src with
          | Error msg -> broken := (schema_seed, msg) :: !broken
          | Ok r -> (
              match Fuzz.verdict_of r with
              | Fuzz.Broken msg -> broken := (schema_seed, msg) :: !broken
              | Fuzz.Unsound diags ->
                  write_file out (Fuzz.minimize src);
                  counterexample := Some (schema_seed, diags)
              | Fuzz.Sound ->
                  incr driven;
                  checks := !checks + r.Fuzz.run_result.Conform.r_checks;
                  dav_sites := !dav_sites + r.Fuzz.run_result.Conform.r_dav_sites;
                  tav_sites := !tav_sites + r.Fuzz.run_result.Conform.r_tav_sites;
                  if mutate then
                    for _t = 1 to trials do
                      match Fuzz.gen_mutation rng r with
                      | None -> ()
                      | Some mu ->
                          incr attempted;
                          if Fuzz.mutation_detected r mu then incr detected
                          else
                            missed :=
                              (schema_seed, Format.asprintf "%a" Fuzz.pp_mutation mu)
                              :: !missed
                    done));
          incr i
        done;
        let rate =
          if !attempted = 0 then 1.0 else float_of_int !detected /. float_of_int !attempted
        in
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("schemas", Json.Int !i);
                    ("driven", Json.Int !driven);
                    ("broken", Json.Int (List.length !broken));
                    ("checks", Json.Int !checks);
                    ("dav_sites", Json.Int !dav_sites);
                    ("tav_sites", Json.Int !tav_sites);
                    ("sound", Json.Bool (!counterexample = None));
                    ( "counterexample",
                      match !counterexample with
                      | None -> Json.Null
                      | Some (s, diags) ->
                          Json.Obj
                            [
                              ("seed", Json.Int s);
                              ("file", Json.String out);
                              ("diags", Json.List (List.map Diag.to_json diags));
                            ] );
                    ( "mutations",
                      Json.Obj
                        [
                          ("attempted", Json.Int !attempted);
                          ("detected", Json.Int !detected);
                          ("rate", Json.Float rate);
                          ( "missed",
                            Json.List
                              (List.rev_map
                                 (fun (s, m) ->
                                   Json.Obj
                                     [
                                       ("seed", Json.Int s);
                                       ("mutation", Json.String m);
                                     ])
                                 !missed) );
                        ] );
                  ]))
        else begin
          Printf.printf
            "sanitize: %d schemas driven (%d broken), %d inclusion checks over %d dav + %d \
             tav sites\n"
            !driven (List.length !broken) !checks !dav_sites !tav_sites;
          List.iter
            (fun (s, msg) -> Printf.printf "  seed %d BROKEN: %s\n" s msg)
            (List.rev !broken);
          (match !counterexample with
          | None -> Printf.printf "sanitize: no soundness counterexample found\n"
          | Some (s, diags) ->
              Printf.printf
                "sanitize: SOUNDNESS COUNTEREXAMPLE at seed %d (minimized schema written \
                 to %s)\n\
                \  replay: oosim sanitize --replay %s\n"
                s out out;
              List.iter (fun d -> Format.printf "  %a@." Diag.pp d) diags);
          if mutate then begin
            Printf.printf "mutations: %d injected, %d detected (%.1f%%)\n" !attempted
              !detected (100. *. rate);
            List.iter
              (fun (s, m) -> Printf.printf "  seed %d MISSED: %s\n" s m)
              (List.rev !missed)
          end
        end;
        if !counterexample <> None then 1
        else if mutate && rate < min_detection then 1
        else 0
  in
  let schemas =
    Arg.(value & opt (some int) None
         & info [ "schemas" ] ~docv:"N"
             ~doc:"Random schemas to generate and drive (default 100).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.") in
  let budget_ms =
    Arg.(value & opt (some int) None
         & info [ "budget-ms" ] ~docv:"MS"
             ~doc:"Stop starting new schemas after this many milliseconds (default 0 = no \
                   limit).")
  in
  let mutate =
    Arg.(value & flag
         & info [ "mutate" ]
             ~doc:"Also measure the checker's false-negative rate: per sound schema, \
                   deliberately weaken static access-vector entries at exercised sites and \
                   count how many weakenings the conformance check reports.")
  in
  let trials =
    Arg.(value & opt (some int) None
         & info [ "trials" ] ~docv:"N"
             ~doc:"Mutations injected per schema with $(b,--mutate) (default 4); an error \
                   without it.")
  in
  let min_detection =
    Arg.(value & opt (some float) None
         & info [ "min-detection" ] ~docv:"F"
             ~doc:"Exit nonzero when the mutation detection rate falls below $(docv) \
                   (0..1); an error without $(b,--mutate).")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Re-check one ODML schema file (e.g. a written counterexample) instead \
                   of fuzzing; the campaign flags are errors here.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON summary on stdout.") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Where to write a minimized soundness counterexample (default \
                   sanitize_counterexample.odml).")
  in
  let doc =
    "fuzz random schemas through the dynamic access-vector recorder and assert the \
     analyzer's soundness (observed within static, definitions 6 and 10)"
  in
  Cmd.v (Cmd.info "sanitize" ~doc)
    Term.(
      const run $ schemas $ seed $ budget_ms $ mutate $ trials $ min_detection $ replay
      $ json $ out)

(* --- serve / blast: the network front-end --- *)

let addr_conv =
  let parse s =
    match Wire.addr_of_string s with Ok a -> Ok a | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Wire.addr_to_string a))

(* serve and blast must agree on the workload store byte for byte:
   [Workload.populate] is deterministic, so pinning (slices, work,
   readers, instances) — the digest — guarantees client-generated oids
   resolve on the server. *)
let serve_workload ~slices ~work ~read_frac ~instances =
  let readers = if read_frac > 0. then slices else 0 in
  let schema = Workload.slice_schema ~readers ~methods:slices ~work () in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  Workload.populate store ~per_class:instances;
  let digest = Wire.workload_digest ~slices ~work ~readers ~instances in
  (an, store, digest)

let serve_cmd =
  let run scheme_name addr domains shards policy queue_cap max_sessions drain_grace
      slices work instances read_frac metrics_fmt prom_out profile top_k data_dir
      pool_pages =
    if top_k <> None && not profile then
      usage_error "serve" "--top is only meaningful with --profile";
    if pool_pages <> None && data_dir = None then
      usage_error "serve" "--pool-pages is only meaningful with --data-dir";
    let top_k = Option.value ~default:10 top_k in
    let an, store, digest, eng =
      match data_dir with
      | None ->
          let an, store, digest = serve_workload ~slices ~work ~read_frac ~instances in
          (an, store, digest, None)
      | Some dir ->
          (* Durable serve: the directory is reused across restarts —
             recovery replays the WAL on open, and the deterministic
             populate only runs the first time, so client-generated oids
             keep resolving after a crash. *)
          let readers = if read_frac > 0. then slices else 0 in
          let schema = Workload.slice_schema ~readers ~methods:slices ~work () in
          let an = Tavcc_core.Analysis.compile schema in
          let e = Storage.create (storage_config ~dir ~pool_pages) in
          let store = Storage.store e schema in
          if (Storage.stats e).Storage.s_instances = 0 then
            Workload.populate store ~per_class:instances
          else
            Printf.printf "oosim serve: recovered %d instances from %s\n%!"
              (Storage.stats e).Storage.s_instances dir;
          let digest = Wire.workload_digest ~slices ~work ~readers ~instances in
          (an, store, digest, Some e)
    in
    let scheme = (List.assoc scheme_name schemes) an in
    let metrics =
      if metrics_fmt <> None || prom_out <> None then Some (Metrics.create ()) else None
    in
    let obs = if profile then Some (Par_obs.create ~domains ()) else None in
    let engine =
      { Par_engine.default_config with domains; shards; policy; metrics; obs;
        journal = Option.map Storage.journal eng }
    in
    let cfg =
      {
        (Server.default_config ~addr ~scheme ~store) with
        Server.digest;
        engine;
        queue_capacity = queue_cap;
        max_sessions;
        drain_grace_s = drain_grace;
      }
    in
    let srv = Server.start cfg in
    let stopped = Atomic.make false in
    let stop _ =
      Atomic.set stopped true;
      Server.request_stop srv
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (* the readiness line CI polls for — flush it *)
    Printf.printf "oosim serve: listening on %s (scheme %s, %d domains, policy %s)\n%!"
      (Wire.addr_to_string (Server.bound_addr srv))
      scheme_name domains
      (Engine.policy_name policy);
    (* Signal handlers only run on the main thread at safepoints, and a
       main thread parked in Thread.join never reaches one.  Park in a
       sleep poll instead; only enter the join-heavy [Server.wait] once
       the handler has tripped the flag. *)
    while not (Atomic.get stopped) do
      Unix.sleepf 0.1
    done;
    let r = Server.wait srv in
    let st =
      Option.map
        (fun e ->
          let st = Storage.stats e in
          Storage.close e;
          st)
        eng
    in
    let json_mode = metrics_fmt = Some `Json in
    if json_mode then begin
      let doc =
        Json.Obj
          ([
             ("scheme", Json.String scheme_name);
             ("domains", Json.Int domains);
             ("commits", Json.Int r.Par_engine.commits);
             ("aborts", Json.Int r.Par_engine.aborts);
             ("deadlocks", Json.Int r.Par_engine.deadlocks);
             ("restarts", Json.Int r.Par_engine.restarts);
             ("wall_seconds", Json.Float r.Par_engine.wall_seconds);
           ]
          @ (match metrics with
            | Some m -> [ ("metrics", Metrics.to_json m) ]
            | None -> [])
          @ match st with Some st -> [ ("storage", storage_stats_json st) ] | None -> [])
      in
      print_endline (Json.to_string doc)
    end
    else begin
      Format.printf "oosim serve: drained; %a@." Par_engine.pp_result r;
      Option.iter print_storage_stats st;
      match metrics with
      | Some m when metrics_fmt <> None -> Format.printf "%a@." Metrics.pp m
      | _ -> ()
    end;
    (match prom_out with
    | None -> ()
    | Some file ->
        Option.iter
          (fun m -> write_file file (Metrics.to_prometheus ~prefix:(prom_prefix scheme_name) m))
          metrics;
        if not json_mode then Printf.printf "wrote %s\n" file);
    (match obs with
    | Some o when profile ->
        Format.printf "contention:@.%a@."
          (Tavcc_obs.Contention.pp ~key:Par_obs.res_key ~k:top_k)
          (Par_obs.contention o)
    | _ -> ());
    0
  in
  let scheme_arg =
    Arg.(value & opt scheme_conv "tav"
         & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc:"Concurrency-control scheme to serve.")
  in
  let addr =
    Arg.(value & opt addr_conv (Wire.Unix_sock "/tmp/oosim.sock")
         & info [ "addr" ] ~docv:"ADDR"
             ~doc:"Listen address: $(b,unix:PATH) or $(b,tcp:HOST:PORT) (port 0 picks a \
                   free one; the listening line prints the resolved address).")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let shards =
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc:"Lock-manager shards.")
  in
  let queue_cap =
    Arg.(value & opt int 256
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Submission-queue bound; a Run arriving on a full queue is answered \
                   $(b,rejected) (admission control).")
  in
  let max_sessions =
    Arg.(value & opt int 64
         & info [ "max-sessions" ] ~docv:"N" ~doc:"Concurrent client sessions.")
  in
  let drain_grace =
    Arg.(value & opt float 5.0
         & info [ "drain-grace" ] ~docv:"SECONDS"
             ~doc:"Per-session wait for in-flight replies during drain.")
  in
  let slices =
    Arg.(value & opt int 16 & info [ "slices" ] ~docv:"N"
         ~doc:"Disjoint field slices (methods) of the served grid class.")
  in
  let work =
    Arg.(value & opt int 8 & info [ "work" ] ~docv:"N"
         ~doc:"Read-modify-writes per method call.")
  in
  let instances =
    Arg.(value & opt int 4 & info [ "instances" ] ~docv:"N" ~doc:"Grid instances.")
  in
  let read_frac =
    Arg.(value & opt float 0. & info [ "read-frac" ] ~docv:"F"
         ~doc:"Adds reader methods to the served schema when positive (must match the \
                 clients' --read-frac for the digest to agree).")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print the hottest contended resources after the drain.")
  in
  let top_k =
    Arg.(value & opt (some int) None
         & info [ "top" ] ~docv:"K"
             ~doc:"Resources to list with $(b,--profile) (default 10); an error without it.")
  in
  let prom_out =
    Arg.(value & opt (some string) None
         & info [ "prom-out" ] ~docv:"FILE"
             ~doc:"Write the final metrics registry (engine + net.* counters and the \
                   per-request latency histogram) as Prometheus text exposition; implies \
                   metrics collection.")
  in
  let doc = "serve a workload store over a socket, multiplexing sessions onto domains" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ scheme_arg $ addr $ domains $ shards $ policy_arg $ queue_cap
      $ max_sessions $ drain_grace $ slices $ work $ instances $ read_frac $ metrics_arg
      $ prom_out $ profile $ top_k $ data_dir_arg $ pool_pages_arg)

let blast_cmd =
  let run addr clients requests pipeline seed slices work instances hot actions read_frac =
    let readers = if read_frac > 0. then slices else 0 in
    let digest = Wire.workload_digest ~slices ~work ~readers ~instances in
    (* Each client regenerates the server's deterministic store locally,
       then derives its own job stream from a per-client seed. *)
    let jobs i =
      let schema = Workload.slice_schema ~readers ~methods:slices ~work () in
      let store = Store.create schema in
      Workload.populate store ~per_class:instances;
      let rng = Rng.create (seed + (1_000 * i) + 1) in
      let js =
        if read_frac > 0. then
          Workload.mixed_slice_jobs rng store ~txns:requests ~actions_per_txn:actions
            ~hot_instances:hot ~read_frac
        else
          Workload.slice_jobs rng store ~txns:requests ~actions_per_txn:actions
            ~hot_instances:hot
      in
      Array.of_list (List.map snd js)
    in
    let report =
      Blast.run
        {
          Blast.addr;
          clients;
          requests;
          pipeline;
          digest;
          client_name = "blast";
          jobs;
        }
    in
    print_endline (Json.to_string (Blast.report_to_json report));
    Format.eprintf "oosim blast: %a@." Blast.pp_report report;
    if report.Blast.protocol_errors > 0 || report.Blast.requests = 0 then 1 else 0
  in
  let addr =
    Arg.(required & opt (some addr_conv) None
         & info [ "addr" ] ~docv:"ADDR"
             ~doc:"Server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT).")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent clients.")
  in
  let requests =
    Arg.(value & opt int 250
         & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let pipeline =
    Arg.(value & opt int 4
         & info [ "pipeline" ] ~docv:"N" ~doc:"Max in-flight requests per connection.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let slices =
    Arg.(value & opt int 16 & info [ "slices" ] ~docv:"N"
         ~doc:"Must match the server's --slices (digest handshake).")
  in
  let work =
    Arg.(value & opt int 8 & info [ "work" ] ~docv:"N"
         ~doc:"Must match the server's --work (digest handshake).")
  in
  let instances =
    Arg.(value & opt int 4 & info [ "instances" ] ~docv:"N"
         ~doc:"Must match the server's --instances (digest handshake).")
  in
  let hot =
    Arg.(value & opt int 2 & info [ "hot" ] ~docv:"N" ~doc:"Hot-set size (contention knob).")
  in
  let actions =
    Arg.(value & opt int 4
         & info [ "a"; "actions" ] ~docv:"N" ~doc:"Actions per transaction.")
  in
  let read_frac =
    Arg.(value & opt float 0. & info [ "read-frac" ] ~docv:"F"
         ~doc:"Fraction of read-only transactions; must match the server's --read-frac.")
  in
  let doc =
    "closed-loop load generator: blast Run transactions at a server, report exact \
     latency percentiles as JSON"
  in
  Cmd.v (Cmd.info "blast" ~doc)
    Term.(
      const run $ addr $ clients $ requests $ pipeline $ seed $ slices $ work $ instances
      $ hot $ actions $ read_frac)

(* --- crosscheck: static ESC001 predictions vs the engine --- *)

(* --- storage: the page-level crash matrix as a CLI gate --- *)

let storage_cmd =
  let run seed sweep txns objs dir max_states max_plans replay =
    let cfg =
      let c = Crash_matrix.default ~dir ~seed () in
      let c = match txns with Some n -> { c with Crash_matrix.txns = n } | None -> c in
      let c = match objs with Some n -> { c with Crash_matrix.objs = n } | None -> c in
      let c =
        match max_states with Some n -> { c with Crash_matrix.max_states = n } | None -> c
      in
      match max_plans with Some n -> { c with Crash_matrix.max_plans = n } | None -> c
    in
    match replay with
    | Some plan_str ->
        if sweep <> 1 then usage_error "storage" "--sweep is ignored by --replay";
        let plan =
          try Fault.of_string plan_str
          with Invalid_argument msg ->
            Printf.eprintf "oosim storage: %s\n" msg;
            exit 2
        in
        let violations, digest, fired = Crash_matrix.run_plan cfg plan in
        Printf.printf "seed %d, plan %s: injection %s, replay digest %s\n" cfg.Crash_matrix.seed
          plan_str
          (if fired then "fired" else "did not fire")
          digest;
        List.iter (fun v -> Printf.printf "  VIOLATION: %s\n" v) violations;
        if violations = [] then begin
          print_endline "recovery consistent with the committed-prefix oracle";
          0
        end
        else 1
    | None ->
        let all_ok = ref true in
        for s = seed to seed + sweep - 1 do
          let r = Crash_matrix.run { cfg with Crash_matrix.seed = s } in
          Format.printf "%a@." Crash_matrix.pp_report r;
          if not (Crash_matrix.ok r) then all_ok := false
        done;
        if !all_ok then 0 else 1
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"First matrix seed.") in
  let sweep =
    Arg.(value & opt int 1
         & info [ "sweep" ] ~docv:"K"
             ~doc:"Run the full matrix for K consecutive seeds starting at $(b,--seed).")
  in
  let txns =
    Arg.(value & opt (some int) None
         & info [ "t"; "txns" ] ~docv:"N" ~doc:"Driver transactions per run (default 24).")
  in
  let objs =
    Arg.(value & opt (some int) None
         & info [ "objs" ] ~docv:"N"
             ~doc:"Instances populated before the first checkpoint (default 96).")
  in
  let dir =
    Arg.(value & opt string "_crash_matrix"
         & info [ "dir" ] ~docv:"DIR" ~doc:"Scratch directory for the matrix stores.")
  in
  let max_states =
    Arg.(value & opt (some int) None
         & info [ "max-states" ] ~docv:"N"
             ~doc:"Cap on state-sweep snapshots recovered per run (default 120).")
  in
  let max_plans =
    Arg.(value & opt (some int) None
         & info [ "max-plans" ] ~docv:"N"
             ~doc:"Cap on injected crash plans per run (default 48).")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"PLAN"
             ~doc:"Replay one fault plan (the $(b,plan) string a failing report prints) \
                   instead of sweeping the matrix; deterministic bit-for-bit.")
  in
  let doc =
    "torture the on-disk engine: crash at every WAL and page-write boundary, recover, \
     compare against the committed-prefix oracle"
  in
  Cmd.v (Cmd.info "storage" ~doc)
    Term.(
      const run $ seed $ sweep $ txns $ objs $ dir $ max_states $ max_plans $ replay)

let crosscheck_cmd =
  let run seed txns levels =
    let o = Crosscheck.run_e4 ~seed ~txns ~levels () in
    Format.printf
      "cross-check: E4 cascade of depth %d, %d transactions on one instance, seed %d@\n%a"
      levels txns seed Crosscheck.pp_outcome o;
    if Crosscheck.sound o then 0 else 1
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let txns =
    Arg.(value & opt int 8 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Concurrent transactions.")
  in
  let levels =
    Arg.(value & opt int 3 & info [ "depth" ] ~docv:"N" ~doc:"Self-call cascade depth.")
  in
  let doc =
    "verify every escalation deadlock the engine observes was statically predicted (ESC001)"
  in
  Cmd.v (Cmd.info "crosscheck" ~doc) Term.(const run $ seed $ txns $ levels)

let main =
  let doc = "object-oriented concurrency-control simulator (Malta & Martinez, ICDE'93)" in
  Cmd.group
    (Cmd.info "oosim" ~version:"1.0.0" ~doc)
    [
      run_cmd; par_cmd; top_cmd; scenario_cmd; escalation_cmd; chaos_cmd; sanitize_cmd;
      serve_cmd; blast_cmd; storage_cmd; crosscheck_cmd;
    ]

let () = exit (Cmd.eval' main)
