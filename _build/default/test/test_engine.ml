(* The simulation engine: determinism, deadlock resolution, correctness. *)

open Tavcc_model
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
open Helpers

let all_schemes =
  [
    ("tav", Tavcc_cc.Tav_modes.scheme);
    ("rw-msg", Tavcc_cc.Rw_instance.scheme);
    ("rw-top", Tavcc_cc.Rw_toponly.scheme);
    ("field-rt", Tavcc_cc.Field_runtime.scheme);
    ("relational", Tavcc_cc.Relational.scheme);
  ]

let chain_setup levels txns =
  let schema = Workload.chain_schema ~levels in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let top = mn (Printf.sprintf "m%d" levels) in
  let jobs = List.init txns (fun i -> (i + 1, [ Exec.Call (oid, top, [ Value.Vint 1 ]) ])) in
  (an, store, oid, jobs)

let run ?(seed = 7) ?(yield = true) mk (an, store, _, jobs) =
  let config = { Engine.default_config with seed; yield_on_access = yield } in
  Engine.run ~config ~scheme:(mk an) ~store ~jobs ()

let test_all_commit_and_correct () =
  List.iter
    (fun (name, mk) ->
      let ((_, store, oid, _) as setup) = chain_setup 3 6 in
      let r = run mk setup in
      Alcotest.(check int) (name ^ ": all commit") 6 r.Engine.commits;
      Alcotest.(check (list (pair int string))) (name ^ ": none failed") [] r.Engine.failed;
      (* Six increments of the chain field survived concurrency. *)
      Alcotest.check value (name ^ ": final value") (Value.Vint 6)
        (Store.read store oid (fn "acc"));
      Alcotest.(check bool) (name ^ ": serializable") true (Engine.serializable r))
    all_schemes

let test_escalation_deadlocks () =
  (* Per-message R/W locking deadlocks on the reader-then-writer cascade;
     schemes announcing the most exclusive mode up front do not (the
     System R observation the paper quotes). *)
  let r_msg = run Tavcc_cc.Rw_instance.scheme (chain_setup 3 6) in
  Alcotest.(check bool) "rw-msg deadlocks" true (r_msg.Engine.deadlocks > 0);
  let r_tav = run Tavcc_cc.Tav_modes.scheme (chain_setup 3 6) in
  Alcotest.(check int) "tav: no deadlock" 0 r_tav.Engine.deadlocks;
  let r_top = run Tavcc_cc.Rw_toponly.scheme (chain_setup 3 6) in
  Alcotest.(check int) "rw-top: no deadlock" 0 r_top.Engine.deadlocks

let test_lock_request_overhead () =
  (* Problem P2: controlling an instance once per message multiplies lock
     requests by the self-call depth. *)
  let r_msg = run ~yield:false Tavcc_cc.Rw_instance.scheme (chain_setup 4 1) in
  let r_tav = run ~yield:false Tavcc_cc.Tav_modes.scheme (chain_setup 4 1) in
  Alcotest.(check int) "tav: 2 requests" 2 r_tav.Engine.lock_requests;
  Alcotest.(check int) "rw-msg: 10 requests" 10 r_msg.Engine.lock_requests

let test_determinism () =
  let results =
    List.init 2 (fun _ ->
        let r = run ~seed:123 Tavcc_cc.Rw_instance.scheme (chain_setup 3 5) in
        Format.asprintf "%a|%d|%d" Tavcc_txn.History.pp r.Engine.history r.Engine.deadlocks
          r.Engine.scheduler_steps)
  in
  Alcotest.(check string) "same seed, same run" (List.nth results 0) (List.nth results 1)

let test_seed_changes_schedule () =
  let h seed =
    let r = run ~seed Tavcc_cc.Rw_instance.scheme (chain_setup 3 5) in
    Format.asprintf "%a" Tavcc_txn.History.pp r.Engine.history
  in
  (* Not guaranteed for every pair of seeds, but these differ. *)
  Alcotest.(check bool) "different schedules" true (h 1 <> h 2)

let test_pseudo_conflict_parallelism () =
  (* wbase and wsub write disjoint fields of the same instances: TAV locks
     never wait, two-mode locking does (problem P4). *)
  let schema = Workload.pseudo_conflict_schema () in
  let an = Tavcc_core.Analysis.compile schema in
  let mk_jobs store =
    let subs = Store.extent store (cn "sub") in
    [
      (1, List.map (fun o -> Exec.Call (o, mn "wbase", [ Value.Vint 1 ])) subs);
      (2, List.map (fun o -> Exec.Call (o, mn "wsub", [ Value.Vint 1 ])) subs);
    ]
  in
  let run_scheme mk =
    let store = Store.create schema in
    Workload.populate store ~per_class:4;
    let config = { Engine.default_config with yield_on_access = true } in
    Engine.run ~config ~scheme:(mk an) ~store ~jobs:(mk_jobs store) ()
  in
  let r_tav = run_scheme Tavcc_cc.Tav_modes.scheme in
  let r_rw = run_scheme Tavcc_cc.Rw_toponly.scheme in
  Alcotest.(check int) "tav: zero waits" 0 r_tav.Engine.lock_waits;
  Alcotest.(check bool) "rw-top: waits" true (r_rw.Engine.lock_waits > 0);
  Alcotest.(check bool) "both serializable" true
    (Engine.serializable r_tav && Engine.serializable r_rw)

let test_extent_vs_instance_conflict () =
  (* A domain-wide writer extent scan serialises against instance writers
     through the hierarchical class lock. *)
  let an = Tavcc_core.Paper_example.analysis () in
  let schema = Tavcc_core.Analysis.schema an in
  let store = Store.create schema in
  let insts = List.init 4 (fun _ -> Store.new_instance store Tavcc_core.Paper_example.c2) in
  let jobs =
    [
      ( 1,
        [
          Exec.Call_extent
            { cls = Tavcc_core.Paper_example.c2; deep = true; meth = Tavcc_core.Paper_example.m4;
              args = [ Value.Vint (-1); Value.Vstring "y" ] };
        ] );
      (2, List.map (fun o -> Exec.Call (o, Tavcc_core.Paper_example.m4,
                                        [ Value.Vint (-1); Value.Vstring "z" ])) insts);
    ]
  in
  let config = { Engine.default_config with yield_on_access = true } in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
  Alcotest.(check int) "both commit" 2 r.Engine.commits;
  Alcotest.(check bool) "someone waited" true (r.Engine.lock_waits > 0);
  Alcotest.(check bool) "serializable" true (Engine.serializable r)

let prop_random_workloads_serializable =
  (* The oracle property over every scheme and random workloads. *)
  QCheck.Test.make ~count:25 ~name:"random workloads are serializable under every scheme"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let schema =
        Workload.make_schema rng
          { Workload.default_params with sp_depth = 2; sp_fanout = 2; sp_shared_methods = 3 }
      in
      let an = Tavcc_core.Analysis.compile schema in
      List.for_all
        (fun (_, mk) ->
          let store = Store.create schema in
          Workload.populate store ~per_class:3;
          let jobs =
            Workload.random_jobs
              (Tavcc_sim.Rng.create (seed + 1))
              store ~txns:5 ~actions_per_txn:3 ~extent_prob:0.2 ~hot_instances:2 ~hot_prob:0.5
          in
          let config =
            { Engine.default_config with seed; yield_on_access = true; max_restarts = 200 }
          in
          let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
          r.Engine.failed = [] && r.Engine.commits = 5 && Engine.serializable r)
        all_schemes)

let test_runtime_failure_reported () =
  (* A transaction whose method raises must be recorded as failed and its
     effects rolled back; the rest still commits. *)
  let schema =
    schema_of_source
      {|class a is
          fields f : integer;
          method boom is f := 7; f := f / 0; end
          method ok is f := f + 1; end
        end|}
  in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let o = Store.new_instance store (cn "a") in
  let jobs =
    [ (1, [ Exec.Call (o, mn "boom", []) ]); (2, [ Exec.Call (o, mn "ok", []) ]) ]
  in
  let r = Engine.run ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
  Alcotest.(check int) "one commit" 1 r.Engine.commits;
  Alcotest.(check int) "one failure" 1 (List.length r.Engine.failed);
  (* boom's partial write (f := 7) was undone; only ok's increment shows. *)
  Alcotest.check value "rollback" (Value.Vint 1) (Store.read store o (fn "f"))

let suite =
  [
    case "all schemes: commits, values, serializability" test_all_commit_and_correct;
    case "escalation deadlocks only under per-message R/W" test_escalation_deadlocks;
    case "lock-request overhead (P2)" test_lock_request_overhead;
    case "determinism from the seed" test_determinism;
    case "seed changes the schedule" test_seed_changes_schedule;
    case "pseudo-conflict parallelism (P4)" test_pseudo_conflict_parallelism;
    case "extent vs instance writers" test_extent_vs_instance_conflict;
    QCheck_alcotest.to_alcotest prop_random_workloads_serializable;
    case "runtime failure: rollback and report" test_runtime_failure_reported;
  ]
