(* The static checker. *)

open Tavcc_lang
open Helpers

let errors_of src =
  match Check.check (build_of_source src) with
  | Ok () -> []
  | Error errs -> List.map (fun e -> e.Check.ce_msg) errs

let expect_clean src =
  match errors_of src with
  | [] -> ()
  | msgs -> Alcotest.failf "unexpected diagnostics: %s" (String.concat "; " msgs)

let expect_error src fragment =
  let msgs = errors_of src in
  if not (List.exists (fun m -> contains m fragment) msgs) then
    Alcotest.failf "expected a diagnostic containing %S, got: %s" fragment
      (String.concat "; " msgs)

let test_paper_example_clean () =
  match Check.check (Tavcc_core.Paper_example.schema ()) with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "paper example: %a" (Format.pp_print_list Check.pp_error) errs

let test_unknown_identifier () =
  expect_error "class a is method m is x := 1; end end" "unknown identifier"

let test_param_assignment () =
  expect_error "class a is method m(p) is p := 1; end end" "cannot assign to parameter"

let test_param_shadowed_by_local () =
  expect_clean "class a is method m(p) is var p := 1; p := 2; end end"

let test_local_redeclared () =
  expect_error "class a is method m is var v := 1; var v := 2; end end" "declared twice"

let test_block_scoping () =
  (* A local declared in a branch is dead outside it. *)
  expect_error
    "class a is method m is if true then var v := 1; end v := 2; end end"
    "unknown identifier"

let test_unknown_message () =
  expect_error "class a is method m is send nope to self; end end" "does not understand"

let test_arity () =
  expect_error
    "class a is method m(p, q) is end method n is send m(1) to self; end end"
    "expects 2 argument(s)"

let test_prefixed_not_ancestor () =
  expect_error
    "class a is method m is end end class b is method n is send a.m to self; end end"
    "is not an ancestor"

let test_prefixed_non_self () =
  expect_error
    {|class a is
        fields r : a;
        method m is end
        method n is send a.m to r; end
      end|}
    "may only target self"

let test_send_to_base_value () =
  expect_error
    "class a is fields f : integer; method m is send g to f; end end"
    "base type"

let test_send_to_ref_field_checked () =
  expect_error
    {|class t is method tick is end end
      class a is
        fields r : t;
        method m is send nope to r; end
      end|}
    "does not understand";
  expect_clean
    {|class t is method tick is end end
      class a is
        fields r : t;
        method m is send tick to r; end
      end|}

let test_new_unknown_class () =
  expect_error "class a is method m is var v := new ghost; end end" "unknown class"

let test_field_type_mismatch () =
  expect_error
    "class a is fields f : integer; method m is f := true; end end"
    "assigned a value"

let test_operator_mismatch () =
  expect_error
    {|class a is fields f : integer; g : string; method m is f := f + (g and g); end end|}
    "operator"

let test_condition_type () =
  expect_error
    "class a is fields f : integer; method m is if f + 1 then f := 1; end end end"
    "condition of type"

let test_duplicate_param () =
  expect_error "class a is method m(p, p) is end end" "duplicate parameter"

let test_params_are_dynamic () =
  (* Parameters type as <any>: both uses below are accepted statically. *)
  expect_clean
    {|class a is
        fields f : integer; s : string;
        method m(p) is f := f + p; s := s + p; end
      end|}

let suite =
  [
    case "paper example is clean" test_paper_example_clean;
    case "unknown identifier" test_unknown_identifier;
    case "assignment to parameter" test_param_assignment;
    case "local shadows parameter" test_param_shadowed_by_local;
    case "local redeclared" test_local_redeclared;
    case "block scoping of locals" test_block_scoping;
    case "unknown message" test_unknown_message;
    case "arity mismatch" test_arity;
    case "prefixed send to non-ancestor" test_prefixed_not_ancestor;
    case "prefixed send to non-self receiver" test_prefixed_non_self;
    case "send to base-typed field" test_send_to_base_value;
    case "send to typed reference field" test_send_to_ref_field_checked;
    case "new of unknown class" test_new_unknown_class;
    case "field assignment type" test_field_type_mismatch;
    case "operator operand types" test_operator_mismatch;
    case "condition must be boolean" test_condition_type;
    case "duplicate parameter" test_duplicate_param;
    case "parameters are dynamically typed" test_params_are_dynamic;
  ]
