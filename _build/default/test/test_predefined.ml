(* The predefined counter and collection classes. *)

open Tavcc_model
open Tavcc_core
open Tavcc_lang
module P = Predefined
open Helpers

let setup () =
  match P.with_predefined "" with
  | Error msg -> Alcotest.failf "predefined classes: %s" msg
  | Ok (schema, adhoc) -> (schema, Analysis.compile ~adhoc schema)

let test_sources_check () = ignore (setup ())

let test_counter_adhoc () =
  let _, an = setup () in
  Alcotest.(check bool) "inc/inc" true (Analysis.commute an P.counter (mn "inc") (mn "inc"));
  Alcotest.(check bool) "inc/dec" true (Analysis.commute an P.counter (mn "inc") (mn "dec"));
  Alcotest.(check bool) "get/inc conflict kept" false
    (Analysis.commute an P.counter (mn "get") (mn "inc"));
  Alcotest.(check bool) "get/get commute (computed)" true
    (Analysis.commute an P.counter (mn "get") (mn "get"))

let test_collection_adhoc () =
  let _, an = setup () in
  Alcotest.(check bool) "insert/insert" true
    (Analysis.commute an P.collection (mn "insert") (mn "insert"));
  Alcotest.(check bool) "insert/total conflict" false
    (Analysis.commute an P.collection (mn "insert") (mn "total"));
  Alcotest.(check bool) "count/total commute" true
    (Analysis.commute an P.collection (mn "count") (mn "total"))

let test_collection_runtime () =
  let schema, _ = setup () in
  let store = Store.create schema in
  let bag = Store.new_instance store P.collection in
  List.iter
    (fun v -> ignore (Interp.call store bag (mn "insert") [ Value.Vint v ]))
    [ 10; 20; 30 ];
  Alcotest.check value "count" (Value.Vint 3) (Interp.call store bag (mn "count") []);
  Alcotest.check value "total (recursive sum over cells)" (Value.Vint 60)
    (Interp.call store bag (mn "total") []);
  ignore (Interp.call store bag (mn "remove_first") []);
  Alcotest.check value "count after remove" (Value.Vint 2) (Interp.call store bag (mn "count") []);
  (* insert is LIFO: removing drops the 30. *)
  Alcotest.check value "total after remove" (Value.Vint 30) (Interp.call store bag (mn "total") []);
  ignore (Interp.call store bag (mn "remove_first") []);
  ignore (Interp.call store bag (mn "remove_first") []);
  Alcotest.check value "empty total" (Value.Vint 0) (Interp.call store bag (mn "total") []);
  (* remove on empty is a no-op. *)
  ignore (Interp.call store bag (mn "remove_first") []);
  Alcotest.check value "still empty" (Value.Vint 0) (Interp.call store bag (mn "count") [])

let test_collection_analysis () =
  let _, an = setup () in
  (* total reads head and size... actually head only; the recursion over
     cells is a cross-object chain, not part of the collection's own
     vector. *)
  let tav = Analysis.tav an P.collection (mn "total") in
  Alcotest.check mode "total reads head" Mode.Read (Access_vector.get tav (fn "head"));
  Alcotest.check mode "total leaves size alone" Mode.Null (Access_vector.get tav (fn "size"));
  (* insert writes both fields. *)
  let tav = Analysis.tav an P.collection (mn "insert") in
  Alcotest.check mode "insert writes head" Mode.Write (Access_vector.get tav (fn "head"));
  Alcotest.check mode "insert writes size" Mode.Write (Access_vector.get tav (fn "size"))

let test_collection_depgraph () =
  let schema, an = setup () in
  ignore schema;
  let dep = Depgraph.build (Analysis.extraction an) in
  (* total reaches the cells; the cells' sum recursion stays in cell. *)
  Alcotest.(check (list class_name))
    "total reaches cell" [ P.cell; P.collection ]
    (Depgraph.reachable_classes dep P.collection (mn "total"));
  Alcotest.(check (list class_name))
    "cell.sum stays in cell" [ P.cell ]
    (Depgraph.reachable_classes dep P.cell (mn "sum"))

let test_user_schema_on_top () =
  match
    P.with_predefined
      {|
class tally extends counter is
  fields resets : integer;
  method reset is
    n := 0;
    resets := resets + 1;
  end
end
|}
  with
  | Error msg -> Alcotest.failf "user extension: %s" msg
  | Ok (schema, adhoc) ->
      let an = Analysis.compile ~adhoc schema in
      (* Inherited inc keeps the predefined assertion... *)
      Alcotest.(check bool) "inc/inc in tally" true
        (Analysis.commute an (cn "tally") (mn "inc") (mn "inc"));
      (* ...and the new method gets the computed relation. *)
      Alcotest.(check bool) "reset conflicts with inc" false
        (Analysis.commute an (cn "tally") (mn "reset") (mn "inc"))

let suite =
  [
    case "sources parse and check" test_sources_check;
    case "counter ad hoc relation" test_counter_adhoc;
    case "collection ad hoc relation" test_collection_adhoc;
    case "collection runtime behaviour" test_collection_runtime;
    case "collection access vectors" test_collection_analysis;
    case "collection dependency graph" test_collection_depgraph;
    case "user schemas extend the predefined classes" test_user_schema_on_top;
  ]
