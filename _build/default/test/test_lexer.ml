(* The ODML lexer. *)

open Tavcc_lang

let toks src = List.map fst (Lexer.tokenize src)

let tok_list =
  Alcotest.testable
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Token.pp)
    ( = )

let test_keywords () =
  Alcotest.check tok_list "keywords"
    [ Token.CLASS; Token.EXTENDS; Token.IS; Token.END; Token.SELF; Token.EOF ]
    (toks "class extends is end self")

let test_ident_vs_keyword () =
  Alcotest.check tok_list "prefix idents are idents"
    [ Token.IDENT "classy"; Token.IDENT "ending"; Token.IDENT "selfie"; Token.EOF ]
    (toks "classy ending selfie")

let test_numbers () =
  Alcotest.check tok_list "ints and floats"
    [ Token.INT 42; Token.FLOAT 3.5; Token.INT 0; Token.EOF ]
    (toks "42 3.5 0");
  (* An integer followed by a dot that is not a fraction stays an int. *)
  Alcotest.check tok_list "int dot ident"
    [ Token.INT 1; Token.DOT; Token.IDENT "m"; Token.EOF ]
    (toks "1.m")

let test_strings () =
  Alcotest.check tok_list "plain" [ Token.STRING "hi"; Token.EOF ] (toks {|"hi"|});
  Alcotest.check tok_list "escapes"
    [ Token.STRING "a\"b\n\t\\"; Token.EOF ]
    (toks {|"a\"b\n\t\\"|})

let test_operators () =
  Alcotest.check tok_list "compound"
    [ Token.ASSIGN; Token.LE; Token.GE; Token.NE; Token.COLON; Token.LT; Token.GT; Token.EOF ]
    (toks ":= <= >= <> : < >")

let test_comments () =
  Alcotest.check tok_list "line comment skipped"
    [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ]
    (toks "a -- whole line ignored ; := class\nb");
  Alcotest.check tok_list "minus not comment"
    [ Token.INT 1; Token.MINUS; Token.INT 2; Token.EOF ]
    (toks "1 - 2")

let test_positions () =
  let all = Lexer.tokenize "a\n  b" in
  let pos_of n = snd (List.nth all n) in
  Alcotest.(check (pair int int)) "first" (1, 1) ((pos_of 0).Token.line, (pos_of 0).Token.col);
  Alcotest.(check (pair int int)) "second" (2, 3) ((pos_of 1).Token.line, (pos_of 1).Token.col)

let test_errors () =
  (match Lexer.tokenize "@" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected error on '@'");
  (match Lexer.tokenize {|"open|} with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected error on unterminated string");
  match Lexer.tokenize {|"bad \q escape"|} with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected error on unknown escape"

let suite =
  [
    Helpers.case "keywords" test_keywords;
    Helpers.case "identifiers vs keywords" test_ident_vs_keyword;
    Helpers.case "numbers" test_numbers;
    Helpers.case "strings and escapes" test_strings;
    Helpers.case "operators" test_operators;
    Helpers.case "comments" test_comments;
    Helpers.case "positions" test_positions;
    Helpers.case "errors" test_errors;
  ]
