(* End-to-end regeneration of the paper's artefacts (Table 1, Figure 1,
   Figure 2, Table 2) from the live implementation. *)

open Tavcc_core
open Helpers

let test_table1_text () =
  let s = Report.table1 () in
  Alcotest.(check bool) "header" true (contains s "Null");
  Alcotest.(check bool) "null row all yes" true (contains s "Null  yes   yes   yes");
  Alcotest.(check bool) "write row" true (contains s "Write yes   no    no")

let test_figure1_text () =
  let s = Report.figure1 () in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "mentions %S" frag) true (contains s frag))
    [
      "class c1";
      "class c2 extends c1";
      "class c3";
      "f1 : integer";
      "f3 : c3";
      "f6 : string";
      "send m2(p1) to self";
      "send m3 to self";
      "send c1.m2(p1) to self";
      "send m to f3";
      "method m4(p1, p2)";
    ]

let test_figure2_text () =
  let s = Report.figure2 () in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "edge %S" frag) true (contains s frag))
    [ "(c2,m1) -> (c2,m2)"; "(c2,m1) -> (c2,m3)"; "(c2,m2) -> (c1,m2)"; "(c2,m4)" ]

let test_table2_text () =
  let s = Report.table2 () in
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains s frag))
    [ "m1  no  no  yes yes"; "m2  no  no  yes yes"; "m3  yes yes yes yes"; "m4  yes yes yes no" ]

let test_davs_report () =
  let an = Paper_example.analysis () in
  let s = Report.davs an Paper_example.c2 in
  Alcotest.(check bool) "c2.m2 DAV line" true
    (contains s "c2.m2: (Null f1, Null f2, Null f3, Write f4, Read f5, Null f6)")

let test_tavs_report () =
  let an = Paper_example.analysis () in
  let s = Report.tavs an Paper_example.c2 in
  (* The exact vectors sec. 4.3 spells out. *)
  Alcotest.(check bool) "TAV m2" true
    (contains s "c2.m2: (Write f1, Read f2, Null f3, Write f4, Read f5, Null f6)");
  Alcotest.(check bool) "TAV m1" true
    (contains s "c2.m1: (Write f1, Read f2, Read f3, Write f4, Read f5, Null f6)")

let test_class_report_complete () =
  let an = Paper_example.analysis () in
  let s = Report.class_report an Paper_example.c2 in
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains s frag))
    [ "direct access vectors"; "late-binding resolution graph"; "transitive access vectors";
      "commutativity relation" ]

let test_schema_sanity () =
  let schema = Paper_example.schema () in
  Alcotest.(check int) "3 classes" 3 (Tavcc_model.Schema.class_count schema);
  Alcotest.(check (list method_name))
    "METHODS(c2)"
    [ Paper_example.m1; Paper_example.m2; Paper_example.m3; Paper_example.m4 ]
    (Tavcc_model.Schema.methods schema Paper_example.c2)

let suite =
  [
    case "table 1 regenerated" test_table1_text;
    case "figure 1 regenerated" test_figure1_text;
    case "figure 2 regenerated" test_figure2_text;
    case "table 2 regenerated" test_table2_text;
    case "DAV report" test_davs_report;
    case "TAV report" test_tavs_report;
    case "class report sections" test_class_report_complete;
    case "example schema sanity" test_schema_sanity;
  ]
