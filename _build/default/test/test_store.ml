(* The object store: instances, slots, extents. *)

open Tavcc_model
open Helpers

let schema () =
  schema_of_source
    {|
class person is
  fields
    age : integer;
    name : string;
  method birthday is
    age := age + 1;
  end
end

class employee extends person is
  fields
    salary : integer;
    boss : employee;
end
|}

let test_create_defaults () =
  let st = Store.create (schema ()) in
  let o = Store.new_instance st (cn "employee") in
  Alcotest.check value "age default" (Value.Vint 0) (Store.read st o (fn "age"));
  Alcotest.check value "name default" (Value.Vstring "") (Store.read st o (fn "name"));
  Alcotest.check value "boss default" Value.Vnull (Store.read st o (fn "boss"));
  Alcotest.check class_name "class_of" (cn "employee") (Store.class_of st o);
  Alcotest.(check int) "field count" 4 (Store.field_count st o)

let test_init_and_write () =
  let st = Store.create (schema ()) in
  let o = Store.new_instance st (cn "person") ~init:[ (fn "age", Value.Vint 30) ] in
  Alcotest.check value "init applied" (Value.Vint 30) (Store.read st o (fn "age"));
  Store.write st o (fn "name") (Value.Vstring "ada");
  Alcotest.check value "write visible" (Value.Vstring "ada") (Store.read st o (fn "name"))

let test_type_mismatch () =
  let st = Store.create (schema ()) in
  let o = Store.new_instance st (cn "person") in
  (match Store.write st o (fn "age") (Value.Vstring "x") with
  | exception Store.Type_mismatch _ -> ()
  | () -> Alcotest.fail "expected Type_mismatch");
  match Store.new_instance st (cn "person") ~init:[ (fn "age", Value.Vbool true) ] with
  | exception Store.Type_mismatch _ -> ()
  | _ -> Alcotest.fail "expected Type_mismatch on init"

let test_unknown_field_and_oid () =
  let st = Store.create (schema ()) in
  let o = Store.new_instance st (cn "person") in
  (match Store.read st o (fn "salary") with
  | exception Store.Unknown_field _ -> ()
  | _ -> Alcotest.fail "person has no salary");
  Store.delete_instance st o;
  Alcotest.(check bool) "deleted" false (Store.exists st o);
  match Store.read st o (fn "age") with
  | exception Store.Unknown_oid _ -> ()
  | _ -> Alcotest.fail "expected Unknown_oid"

let test_idx_access () =
  let st = Store.create (schema ()) in
  let o = Store.new_instance st (cn "employee") in
  let i = Option.get (Schema.field_index (Store.schema st) (cn "employee") (fn "salary")) in
  Store.write_idx st o i (Value.Vint 100);
  Alcotest.check value "by name" (Value.Vint 100) (Store.read st o (fn "salary"));
  Alcotest.check value "by idx" (Value.Vint 100) (Store.read_idx st o i)

let test_extents () =
  let st = Store.create (schema ()) in
  let p1 = Store.new_instance st (cn "person") in
  let e1 = Store.new_instance st (cn "employee") in
  let p2 = Store.new_instance st (cn "person") in
  Alcotest.(check (list oid)) "extent order" [ p1; p2 ] (Store.extent st (cn "person"));
  Alcotest.(check (list oid)) "employee extent" [ e1 ] (Store.extent st (cn "employee"));
  Alcotest.(check (list oid))
    "deep extent" [ p1; p2; e1 ] (Store.deep_extent st (cn "person"));
  Alcotest.(check int) "count" 3 (Store.instance_count st);
  Store.delete_instance st p1;
  Alcotest.(check (list oid)) "extent after delete" [ p2 ] (Store.extent st (cn "person"))

let suite =
  [
    case "create with defaults" test_create_defaults;
    case "init and write" test_init_and_write;
    case "type mismatch" test_type_mismatch;
    case "unknown field and oid" test_unknown_field_and_oid;
    case "index-based access" test_idx_access;
    case "extents and deep extents" test_extents;
  ]
