let () =
  Alcotest.run "tavcc"
    [
      ("model", Test_model.suite);
      ("schema", Test_schema.suite);
      ("store", Test_store.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("check", Test_check.suite);
      ("interp", Test_interp.suite);
      ("mode", Test_mode.suite);
      ("access-vector", Test_access_vector.suite);
      ("extraction", Test_extraction.suite);
      ("scc", Test_scc.suite);
      ("lbr", Test_lbr.suite);
      ("tav", Test_tav.suite);
      ("modes-table", Test_modes_table.suite);
      ("lock", Test_lock.suite);
      ("txn", Test_txn.suite);
      ("schemes", Test_schemes.suite);
      ("scenario", Test_scenario.suite);
      ("engine", Test_engine.suite);
      ("workload", Test_workload.suite);
      ("paper", Test_paper_example.suite);
      ("incremental", Test_incremental.suite);
      ("adhoc", Test_adhoc.suite);
      ("escrow", Test_escrow.suite);
      ("policies", Test_policies.suite);
      ("recovery", Test_recovery.suite);
      ("depgraph", Test_depgraph.suite);
      ("new-schemes", Test_new_schemes.suite);
      ("predefined", Test_predefined.suite);
      ("trace", Test_trace.suite);
      ("pred", Test_pred.suite);
      ("fuzz", Test_fuzz.suite);
      ("exec", Test_exec.suite);
    ]
