(* Tarjan's strongly connected components. *)

open Tavcc_core
open Helpers

let compute edges n =
  let succs = Array.make n [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
  Scc.compute succs

let comps_as_sets r =
  Scc.members r |> Array.to_list |> List.map (List.sort_uniq Int.compare)

let test_empty () =
  let r = compute [] 0 in
  Alcotest.(check int) "no components" 0 r.Scc.count

let test_singletons () =
  let r = compute [] 3 in
  Alcotest.(check int) "three singletons" 3 r.Scc.count;
  Alcotest.(check (list (list int))) "partition" [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (List.sort compare (comps_as_sets r))

let test_chain_reverse_topo () =
  (* 0 -> 1 -> 2: components are numbered sinks first. *)
  let r = compute [ (0, 1); (1, 2) ] 3 in
  Alcotest.(check int) "three comps" 3 r.Scc.count;
  Alcotest.(check bool) "sink smallest" true (r.Scc.comp.(2) < r.Scc.comp.(1));
  Alcotest.(check bool) "source largest" true (r.Scc.comp.(1) < r.Scc.comp.(0))

let test_cycle () =
  let r = compute [ (0, 1); (1, 2); (2, 0) ] 3 in
  Alcotest.(check int) "one component" 1 r.Scc.count;
  Alcotest.(check (list (list int))) "all together" [ [ 0; 1; 2 ] ] (comps_as_sets r)

let test_self_loop () =
  let r = compute [ (0, 0) ] 1 in
  Alcotest.(check int) "self loop is one comp" 1 r.Scc.count

let test_two_cycles_bridge () =
  (* {0,1} -> {2,3} *)
  let r = compute [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] 4 in
  Alcotest.(check int) "two comps" 2 r.Scc.count;
  Alcotest.(check bool) "same comp 0 1" true (r.Scc.comp.(0) = r.Scc.comp.(1));
  Alcotest.(check bool) "same comp 2 3" true (r.Scc.comp.(2) = r.Scc.comp.(3));
  Alcotest.(check bool) "downstream first" true (r.Scc.comp.(2) < r.Scc.comp.(0))

let test_deep_chain_is_iterative () =
  (* A 100k-vertex path would overflow a recursive implementation. *)
  let n = 100_000 in
  let succs = Array.init n (fun i -> if i + 1 < n then [ i + 1 ] else []) in
  let r = Scc.compute succs in
  Alcotest.(check int) "all singletons" n r.Scc.count

(* Random graph properties. *)
let arb_graph =
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 12 in
      let* edges = list_size (0 -- 30) (pair (0 -- (n - 1)) (0 -- (n - 1))) in
      return (n, edges))
  in
  QCheck.make
    ~print:(fun (n, e) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) e)))
    gen

let reachable succs a =
  let n = Array.length succs in
  let seen = Array.make n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go succs.(v)
    end
  in
  go a;
  seen

let prop_scc_correct =
  QCheck.Test.make ~count:300 ~name:"same component iff mutually reachable" arb_graph
    (fun (n, edges) ->
      let succs = Array.make n [] in
      List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
      let r = Scc.compute succs in
      let reach = Array.init n (fun v -> reachable succs v) in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let mutual = reach.(a).(b) && reach.(b).(a) in
          if (r.Scc.comp.(a) = r.Scc.comp.(b)) <> mutual then ok := false
        done
      done;
      !ok)

let prop_reverse_topological =
  QCheck.Test.make ~count:300 ~name:"edges point to equal-or-smaller components" arb_graph
    (fun (n, edges) ->
      let succs = Array.make n [] in
      List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
      let r = Scc.compute succs in
      List.for_all (fun (a, b) -> r.Scc.comp.(b) <= r.Scc.comp.(a)) edges)

let suite =
  [
    case "empty graph" test_empty;
    case "singletons" test_singletons;
    case "chain numbering is reverse-topological" test_chain_reverse_topo;
    case "cycle" test_cycle;
    case "self loop" test_self_loop;
    case "two cycles with a bridge" test_two_cycles_bridge;
    case "100k-deep chain (iterative)" test_deep_chain_is_iterative;
    QCheck_alcotest.to_alcotest prop_scc_correct;
    QCheck_alcotest.to_alcotest prop_reverse_topological;
  ]
