(* Range predicates and predicate-refined extent locks. *)

open Tavcc_model
open Tavcc_lock
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
open Helpers

let p ?lo ?hi f = Pred.make ?lo ?hi (fn f)

let test_satisfies () =
  let q = p ~lo:10 ~hi:20 "v" in
  Alcotest.(check bool) "in" true (Pred.satisfies q (Value.Vint 15));
  Alcotest.(check bool) "low edge" true (Pred.satisfies q (Value.Vint 10));
  Alcotest.(check bool) "high edge" true (Pred.satisfies q (Value.Vint 20));
  Alcotest.(check bool) "below" false (Pred.satisfies q (Value.Vint 9));
  Alcotest.(check bool) "above" false (Pred.satisfies q (Value.Vint 21));
  Alcotest.(check bool) "non-integer" false (Pred.satisfies q (Value.Vstring "15"));
  Alcotest.(check bool) "open low" true (Pred.satisfies (p ~hi:5 "v") (Value.Vint (-100)));
  Alcotest.(check bool) "open high" true (Pred.satisfies (p ~lo:5 "v") (Value.Vint 100))

let test_overlaps () =
  let ov a b = Pred.overlaps (Some a) (Some b) in
  Alcotest.(check bool) "disjoint" false (ov (p ~lo:0 ~hi:9 "v") (p ~lo:10 ~hi:20 "v"));
  Alcotest.(check bool) "touching" true (ov (p ~lo:0 ~hi:10 "v") (p ~lo:10 ~hi:20 "v"));
  Alcotest.(check bool) "nested" true (ov (p ~lo:0 ~hi:100 "v") (p ~lo:10 ~hi:20 "v"));
  Alcotest.(check bool) "symmetric" false (ov (p ~lo:10 ~hi:20 "v") (p ~lo:0 ~hi:9 "v"));
  Alcotest.(check bool) "open ends overlap" true (ov (p ~lo:5 "v") (p ~hi:6 "v"));
  Alcotest.(check bool) "open ends disjoint" false (ov (p ~lo:7 "v") (p ~hi:6 "v"));
  Alcotest.(check bool) "different fields always overlap" true
    (ov (p ~lo:0 ~hi:1 "v") (p ~lo:10 ~hi:20 "w"));
  Alcotest.(check bool) "none is the whole extent" true (Pred.overlaps None (Some (p ~lo:0 ~hi:1 "v")));
  Alcotest.(check bool) "empty interval never overlaps" false
    (ov (p ~lo:5 ~hi:4 "v") (p ~lo:0 ~hi:100 "v"))

let prop_overlap_symmetric =
  QCheck.Test.make ~count:300 ~name:"overlap is symmetric"
    QCheck.(pair (pair (option small_int) (option small_int)) (pair (option small_int) (option small_int)))
    (fun ((alo, ahi), (blo, bhi)) ->
      let a = { Pred.field = fn "v"; lo = alo; hi = ahi } in
      let b = { Pred.field = fn "v"; lo = blo; hi = bhi } in
      Pred.overlaps (Some a) (Some b) = Pred.overlaps (Some b) (Some a))

let prop_overlap_sound =
  (* If some integer satisfies both, overlap must say true. *)
  QCheck.Test.make ~count:500 ~name:"overlap is sound for witnesses"
    QCheck.(pair (pair (option small_int) (option small_int))
              (pair (pair (option small_int) (option small_int)) small_int))
    (fun ((alo, ahi), ((blo, bhi), w)) ->
      let a = { Pred.field = fn "v"; lo = alo; hi = ahi } in
      let b = { Pred.field = fn "v"; lo = blo; hi = bhi } in
      let sat p = Pred.satisfies p (Value.Vint w) in
      (not (sat a && sat b)) || Pred.overlaps (Some a) (Some b))

(* --- range scans through the engine --- *)

let range_setup () =
  let schema = Workload.wide_schema ~fields:2 ~touched:1 in
  (* wide: fields w0, w1; touch writes w0; probe reads w1. *)
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let insts =
    List.init 10 (fun i ->
        Store.new_instance store (cn "wide") ~init:[ (fn "w1", Value.Vint i) ])
  in
  (schema, an, store, insts)

let range lo hi = Pred.make ~lo ~hi (fn "w1")

let test_range_scan_filters () =
  let _, an, store, insts = range_setup () in
  (* touch increments w0 by p1: only the matching half is touched. *)
  let jobs =
    [
      ( 1,
        [
          Exec.Call_range
            { cls = cn "wide"; deep = true; pred = range 0 4; meth = mn "touch";
              args = [ Value.Vint 1 ] };
        ] );
    ]
  in
  let r = Engine.run ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
  Alcotest.(check int) "commit" 1 r.Engine.commits;
  List.iteri
    (fun i oid ->
      let expected = if i <= 4 then 1 else 0 in
      Alcotest.check value (Printf.sprintf "instance %d" i) (Value.Vint expected)
        (Store.read store oid (fn "w0")))
    insts

let test_disjoint_ranges_parallel () =
  (* Two range writers over disjoint halves: no wait under tav with
     predicates; full serialisation without them. *)
  let _, an, store, _ = range_setup () in
  let job id lo hi =
    ( id,
      [
        Exec.Call_range
          { cls = cn "wide"; deep = true; pred = range lo hi; meth = mn "touch";
            args = [ Value.Vint 1 ] };
      ] )
  in
  let config = { Engine.default_config with yield_on_access = true } in
  let r =
    Engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store
      ~jobs:[ job 1 0 4; job 2 5 9 ] ()
  in
  Alcotest.(check int) "no waits on disjoint ranges" 0 r.Engine.lock_waits;
  Alcotest.(check bool) "serializable" true (Engine.serializable r)

let test_overlapping_ranges_serialise () =
  let _, an, store, _ = range_setup () in
  let job id lo hi =
    ( id,
      [
        Exec.Call_range
          { cls = cn "wide"; deep = true; pred = range lo hi; meth = mn "touch";
            args = [ Value.Vint 1 ] };
      ] )
  in
  let config = { Engine.default_config with yield_on_access = true } in
  let r =
    Engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store
      ~jobs:[ job 1 0 6; job 2 4 9 ] ()
  in
  Alcotest.(check bool) "overlap forces a wait" true (r.Engine.lock_waits > 0);
  Alcotest.(check bool) "serializable" true (Engine.serializable r)

let test_range_vs_full_extent () =
  (* A full extent scan must conflict with any range writer. *)
  let _, an, store, _ = range_setup () in
  let config = { Engine.default_config with yield_on_access = true } in
  let jobs =
    [
      ( 1,
        [
          Exec.Call_range
            { cls = cn "wide"; deep = true; pred = range 0 4; meth = mn "touch";
              args = [ Value.Vint 1 ] };
        ] );
      (2, [ Exec.Call_extent { cls = cn "wide"; deep = true; meth = mn "touch"; args = [ Value.Vint 1 ] } ]);
    ]
  in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
  Alcotest.(check bool) "waits" true (r.Engine.lock_waits > 0);
  Alcotest.(check bool) "serializable" true (Engine.serializable r)

let test_other_schemes_ignore_pred_soundly () =
  (* Schemes without predicate support serialise disjoint ranges — less
     parallel, still safe. *)
  let _, an, store, _ = range_setup () in
  let job id lo hi =
    ( id,
      [
        Exec.Call_range
          { cls = cn "wide"; deep = true; pred = range lo hi; meth = mn "touch";
            args = [ Value.Vint 1 ] };
      ] )
  in
  let config = { Engine.default_config with yield_on_access = true } in
  let r =
    Engine.run ~config ~scheme:(Tavcc_cc.Rw_toponly.scheme an) ~store
      ~jobs:[ job 1 0 4; job 2 5 9 ] ()
  in
  Alcotest.(check bool) "rw-top serialises ranges" true (r.Engine.lock_waits > 0);
  Alcotest.(check int) "both commit" 2 r.Engine.commits;
  Alcotest.(check bool) "serializable" true (Engine.serializable r)

let suite =
  [
    case "satisfies" test_satisfies;
    case "overlaps" test_overlaps;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    QCheck_alcotest.to_alcotest prop_overlap_sound;
    case "range scans filter instances" test_range_scan_filters;
    case "disjoint ranges run in parallel (tav)" test_disjoint_ranges_parallel;
    case "overlapping ranges serialise" test_overlapping_ranges_serialise;
    case "range vs full extent" test_range_vs_full_extent;
    case "predicate-blind schemes stay sound" test_other_schemes_ignore_pred_soundly;
  ]
