(* Names, OIDs and values. *)

open Tavcc_model
open Helpers

let test_name_roundtrip () =
  Alcotest.(check string) "class" "Person" (Name.Class.to_string (cn "Person"));
  Alcotest.check class_name "equal" (cn "a") (cn "a");
  Alcotest.(check bool) "not equal" false (Name.Class.equal (cn "a") (cn "b"));
  Alcotest.(check int) "compare" 0 (Name.Method.compare (mn "m") (mn "m"));
  Alcotest.(check bool) "ordered" true (Name.Field.compare (fn "a") (fn "b") < 0)

let test_name_collections () =
  let s = Name.Class.Set.of_list [ cn "a"; cn "b"; cn "a" ] in
  Alcotest.(check int) "set dedupes" 2 (Name.Class.Set.cardinal s);
  let m = Name.Field.Map.(add (fn "f") 1 empty) in
  Alcotest.(check (option int)) "map find" (Some 1) (Name.Field.Map.find_opt (fn "f") m)

let test_oid_gen () =
  let g = Oid.Gen.create () in
  let a = Oid.Gen.fresh g in
  let b = Oid.Gen.fresh g in
  Alcotest.(check bool) "distinct" false (Oid.equal a b);
  Alcotest.(check int) "count" 2 (Oid.Gen.count g);
  Alcotest.check oid "of_int/to_int" a (Oid.of_int (Oid.to_int a));
  let g2 = Oid.Gen.create () in
  Alcotest.check oid "independent generators" a (Oid.Gen.fresh g2)

let test_value_defaults () =
  Alcotest.check value "int" (Value.Vint 0) (Value.default Value.Tint);
  Alcotest.check value "bool" (Value.Vbool false) (Value.default Value.Tbool);
  Alcotest.check value "string" (Value.Vstring "") (Value.default Value.Tstring);
  Alcotest.check value "float" (Value.Vfloat 0.) (Value.default Value.Tfloat);
  Alcotest.check value "ref" Value.Vnull (Value.default (Value.Tref (cn "c")))

let test_value_matches () =
  Alcotest.(check bool) "int ok" true (Value.matches Value.Tint (Value.Vint 3));
  Alcotest.(check bool) "int/bool" false (Value.matches Value.Tint (Value.Vbool true));
  Alcotest.(check bool) "null matches ref" true
    (Value.matches (Value.Tref (cn "c")) Value.Vnull);
  Alcotest.(check bool) "null not int" false (Value.matches Value.Tint Value.Vnull);
  Alcotest.(check bool) "ref matches ref" true
    (Value.matches (Value.Tref (cn "c")) (Value.Vref (Oid.of_int 0)))

let test_value_truthy () =
  Alcotest.(check bool) "true" true (Value.truthy (Value.Vbool true));
  Alcotest.(check bool) "false" false (Value.truthy (Value.Vbool false));
  Alcotest.(check bool) "null" false (Value.truthy Value.Vnull);
  Alcotest.(check bool) "int" true (Value.truthy (Value.Vint 0))

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Value.Vint 1) (Value.Vint 2) < 0);
  Alcotest.(check int) "equal" 0 (Value.compare (Value.Vstring "a") (Value.Vstring "a"));
  Alcotest.(check bool) "cross-kind total" true
    (Value.compare Value.Vnull (Value.Vint 0) <> 0);
  Alcotest.(check bool) "equal_ty refs" true
    (Value.equal_ty (Value.Tref (cn "c")) (Value.Tref (cn "c")));
  Alcotest.(check bool) "distinct ref domains" false
    (Value.equal_ty (Value.Tref (cn "c")) (Value.Tref (cn "d")))

let suite =
  [
    case "name: roundtrip and ordering" test_name_roundtrip;
    case "name: sets and maps" test_name_collections;
    case "oid: generation" test_oid_gen;
    case "value: defaults" test_value_defaults;
    case "value: matches" test_value_matches;
    case "value: truthy" test_value_truthy;
    case "value: compare and type equality" test_value_compare;
  ]
