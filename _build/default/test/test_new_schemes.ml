(* The preclaiming scheme and the ORION-style implicit baseline. *)

open Tavcc_model
open Tavcc_lock
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module P = Tavcc_core.Paper_example
open Helpers

let kinds reqs =
  List.map
    (fun r ->
      match r.Lock_table.r_res with
      | Resource.Class c ->
          Printf.sprintf "C:%s%s" (Name.Class.to_string c)
            (if r.Lock_table.r_hier then "*" else "")
      | Resource.Instance o -> Printf.sprintf "I:%d" (Oid.to_int o)
      | _ -> "?")
    reqs

(* --- tav-pre --- *)

let test_preclaim_lockset () =
  let an = P.analysis () in
  let scheme = Tavcc_cc.Tav_preclaim.scheme an in
  let store = Store.create (Tavcc_core.Analysis.schema an) in
  let target = Store.new_instance store P.c3 in
  let i2 = Store.new_instance store P.c2 ~init:[ (P.f3, Value.Vref target) ] in
  (* m1 may reach c3 through f3: the begin hook claims it hierarchically,
     before anything executes — even though f2=false means the send never
     actually fires. *)
  let reqs =
    Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:1 [ Exec.Call (i2, P.m1, [ Value.Vint 1 ]) ]
  in
  Alcotest.(check (list string))
    "entry + hierarchical coverage (canonical order)"
    [ "C:c2"; "C:c3*"; Printf.sprintf "I:%d" (Oid.to_int i2) ]
    (kinds reqs);
  (* m4 reaches nothing: exactly the paper scheme's two locks. *)
  let reqs =
    Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:2
      [ Exec.Call (i2, P.m4, [ Value.Vint (-1); Value.Vstring "x" ]) ]
  in
  Alcotest.(check int) "m4: two locks" 2 (List.length reqs)

let crossing_jobs store schema =
  let cls = cn "chain" in
  ignore schema;
  let a = Store.new_instance store cls in
  let b = Store.new_instance store cls in
  let m = mn "m0" in
  [
    (1, [ Exec.Call (a, m, [ Value.Vint 1 ]); Exec.Call (b, m, [ Value.Vint 1 ]) ]);
    (2, [ Exec.Call (b, m, [ Value.Vint 1 ]); Exec.Call (a, m, [ Value.Vint 1 ]) ]);
    (3, [ Exec.Call (a, m, [ Value.Vint 1 ]); Exec.Call (b, m, [ Value.Vint 1 ]) ]);
    (4, [ Exec.Call (b, m, [ Value.Vint 1 ]); Exec.Call (a, m, [ Value.Vint 1 ]) ]);
  ]

let test_preclaim_no_deadlocks () =
  (* Opposite-order acquisitions deadlock the incremental scheme; the
     preclaimed, canonically-ordered acquisition never can. *)
  let schema = Tavcc_sim.Workload.chain_schema ~levels:0 in
  let an = Tavcc_core.Analysis.compile schema in
  let deadlocks mk seed =
    let store = Store.create schema in
    let jobs = crossing_jobs store schema in
    let config = { Engine.default_config with seed; yield_on_access = true } in
    let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
    Alcotest.(check int) "all commit" 4 r.Engine.commits;
    Alcotest.(check bool) "serializable" true (Engine.serializable r);
    r.Engine.deadlocks
  in
  let tav_dl =
    List.fold_left (fun acc s -> acc + deadlocks Tavcc_cc.Tav_modes.scheme s) 0
      (List.init 10 (fun i -> 500 + i))
  in
  let pre_dl =
    List.fold_left (fun acc s -> acc + deadlocks Tavcc_cc.Tav_preclaim.scheme s) 0
      (List.init 10 (fun i -> 500 + i))
  in
  Alcotest.(check bool) "incremental tav deadlocks somewhere" true (tav_dl > 0);
  Alcotest.(check int) "preclaiming never deadlocks" 0 pre_dl

let test_preclaim_correct_on_paper_workload () =
  let an = P.analysis () in
  let schema = Tavcc_core.Analysis.schema an in
  let store = Store.create schema in
  let insts =
    List.init 4 (fun _ ->
        let t = Store.new_instance store P.c3 in
        Store.new_instance store P.c2 ~init:[ (P.f3, Value.Vref t); (P.f2, Value.Vbool true) ])
  in
  (* f2=true: the cross-object sends to c3 really fire and are covered by
     the preclaimed hierarchical lock, never by a run-time one. *)
  let jobs =
    List.mapi (fun i o -> (i + 1, [ Exec.Call (o, P.m1, [ Value.Vint 1 ]) ])) insts
  in
  let config = { Engine.default_config with yield_on_access = true } in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Tav_preclaim.scheme an) ~store ~jobs () in
  Alcotest.(check int) "commits" 4 r.Engine.commits;
  Alcotest.(check bool) "serializable" true (Engine.serializable r);
  Alcotest.(check int) "no deadlocks" 0 r.Engine.deadlocks

let test_preclaim_dynamic_pessimism () =
  (* A send to a parameter forces whole-schema coverage. *)
  let schema =
    schema_of_source
      {|
class t is
  method tick is end
end
class u is
  fields z : integer;
  method quiet is z := 1; end
end
class owner is
  fields n : integer;
  method poke(p) is send tick to p; end
end
|}
  in
  let an = Tavcc_core.Analysis.compile schema in
  let scheme = Tavcc_cc.Tav_preclaim.scheme an in
  let store = Store.create schema in
  let o = Store.new_instance store (cn "owner") in
  let t = Store.new_instance store (cn "t") in
  let reqs =
    Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:1
      [ Exec.Call (o, mn "poke", [ Value.Vref t ]) ]
  in
  let hier_classes =
    List.filter_map
      (fun r ->
        match r.Lock_table.r_res with
        | Resource.Class c when r.Lock_table.r_hier -> Some (Name.Class.to_string c)
        | _ -> None)
      reqs
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "every class claimed hierarchically"
    [ "owner"; "t"; "u" ] hier_classes

(* --- rw-impl --- *)

let test_implicit_instance_chain () =
  let an = P.analysis () in
  let scheme = Tavcc_cc.Rw_implicit.scheme an in
  let store = Store.create (Tavcc_core.Analysis.schema an) in
  let i2 = Store.new_instance store P.c2 in
  let reqs =
    Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:1
      [ Exec.Call (i2, P.m4, [ Value.Vint (-1); Value.Vstring "x" ]) ]
  in
  (* Intentions root-first on the whole ancestor chain, then the
     instance. *)
  Alcotest.(check (list string))
    "ancestor chain announced"
    [ "C:c1"; "C:c2"; Printf.sprintf "I:%d" (Oid.to_int i2) ]
    (kinds reqs)

let test_implicit_extent_single_lock () =
  let an = P.analysis () in
  let scheme = Tavcc_cc.Rw_implicit.scheme an in
  let store = Store.create (Tavcc_core.Analysis.schema an) in
  let _ = List.init 5 (fun _ -> Store.new_instance store P.c2) in
  let reqs =
    Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:1
      [ Exec.Call_extent { cls = P.c2; deep = true; meth = P.m4;
                           args = [ Value.Vint (-1); Value.Vstring "x" ] } ]
  in
  Alcotest.(check (list string))
    "one implicit lock + ancestor intents"
    [ "C:c1"; "C:c2*" ]
    (kinds reqs)

let test_implicit_blocks_subclass_writer () =
  (* X on the root covers subclass instances implicitly: an extent writer
     on c1 must exclude an instance writer on c2 via the intention on
     c1. *)
  let an = P.analysis () in
  let scheme = Tavcc_cc.Rw_implicit.scheme an in
  let schema = Tavcc_core.Analysis.schema an in
  let store = Store.create schema in
  let i2 = Store.new_instance store P.c2 in
  let extent_set =
    Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:1
      [ Exec.Call_extent { cls = P.c1; deep = true; meth = P.m2; args = [ Value.Vint 1 ] } ]
  in
  let inst_set =
    Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:2
      [ Exec.Call (i2, P.m4, [ Value.Vint (-1); Value.Vstring "x" ]) ]
  in
  Alcotest.(check bool) "conflict detected on the shared root" false
    (Tavcc_cc.Lockset.compatible_pair scheme extent_set inst_set)

let test_implicit_scenario_matches_rwtop () =
  let impl = Tavcc_cc.Scenario.evaluate Tavcc_cc.Rw_implicit.scheme in
  Alcotest.(check (list string))
    "same admitted groups as rw-top"
    [ "T1||T3"; "T1||T4"; "T2" ]
    (Tavcc_cc.Scenario.maximal_names impl)

let test_new_schemes_serializable_randomly () =
  let rng = Tavcc_sim.Rng.create 77 in
  let schema =
    Tavcc_sim.Workload.make_schema rng
      { Tavcc_sim.Workload.default_params with sp_depth = 2; sp_fanout = 2 }
  in
  let an = Tavcc_core.Analysis.compile schema in
  List.iter
    (fun (name, mk) ->
      let store = Store.create schema in
      Tavcc_sim.Workload.populate store ~per_class:3;
      let jobs =
        Tavcc_sim.Workload.random_jobs (Tavcc_sim.Rng.create 7) store ~txns:5
          ~actions_per_txn:3 ~extent_prob:0.2 ~hot_instances:2 ~hot_prob:0.6
      in
      let config = { Engine.default_config with yield_on_access = true; max_restarts = 500 } in
      let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
      Alcotest.(check int) (name ^ ": commits") 5 r.Engine.commits;
      Alcotest.(check bool) (name ^ ": serializable") true (Engine.serializable r);
      if name = "tav-pre" then Alcotest.(check int) "tav-pre: no deadlocks" 0 r.Engine.deadlocks)
    [ ("tav-pre", Tavcc_cc.Tav_preclaim.scheme); ("rw-impl", Tavcc_cc.Rw_implicit.scheme) ]

let suite =
  [
    case "tav-pre: begin-time lock set" test_preclaim_lockset;
    case "tav-pre: ordered preclaiming never deadlocks" test_preclaim_no_deadlocks;
    case "tav-pre: live cross-object workload" test_preclaim_correct_on_paper_workload;
    case "tav-pre: dynamic sends claim the schema" test_preclaim_dynamic_pessimism;
    case "rw-impl: ancestor intention chain" test_implicit_instance_chain;
    case "rw-impl: extent locks the root only" test_implicit_extent_single_lock;
    case "rw-impl: implicit coverage blocks subclass writers" test_implicit_blocks_subclass_writer;
    case "rw-impl: sec. 5.2 scenario" test_implicit_scenario_matches_rwtop;
    case "random workloads stay serializable" test_new_schemes_serializable_randomly;
  ]
