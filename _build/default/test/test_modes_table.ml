(* Access-mode translation and per-class commutativity matrices (sec. 5.1). *)

open Tavcc_core
module P = Paper_example
open Helpers

let table () = Analysis.table (P.analysis ()) P.c2

let test_table2_exact () =
  let t = table () in
  List.iter
    (fun (row, cols) ->
      List.iter
        (fun (col, expected) ->
          match Modes_table.commute_methods t (mn row) (mn col) with
          | Some got ->
              Alcotest.(check bool) (Printf.sprintf "commute(%s,%s)" row col) expected got
          | None -> Alcotest.failf "missing methods %s/%s" row col)
        cols)
    P.expected_table2

let test_c1_is_restriction () =
  (* "Commutativity relation of class c1 is obtained as the restriction of
     Table 2 to m1, m2, and m3." *)
  let an = P.analysis () in
  let t1 = Analysis.table an P.c1 in
  let t2 = Analysis.table an P.c2 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check (option bool))
            (Format.asprintf "restriction at %a/%a" Tavcc_model.Name.Method.pp a
               Tavcc_model.Name.Method.pp b)
            (Modes_table.commute_methods t2 a b)
            (Modes_table.commute_methods t1 a b))
        [ P.m1; P.m2; P.m3 ])
    [ P.m1; P.m2; P.m3 ]

let test_mode_roundtrip () =
  let t = table () in
  Array.iteri
    (fun i m ->
      Alcotest.(check (option int)) "mode_of_method" (Some i) (Modes_table.mode_of_method t m);
      Alcotest.check method_name "method_of_mode" m (Modes_table.method_of_mode t i))
    (Modes_table.methods t);
  Alcotest.(check (option int)) "unknown" None (Modes_table.mode_of_method t (mn "nope"))

let test_symmetry () =
  Alcotest.(check bool) "paper table symmetric" true (Modes_table.is_symmetric (table ()))

let test_parallelism_preserved () =
  (* "the parallelism which is allowed by access modes is exactly the one
     which is permitted by access vectors": matrix = vector commutes. *)
  let an = P.analysis () in
  List.iter
    (fun cls ->
      let t = Analysis.table an cls in
      let n = Modes_table.size t in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Alcotest.(check bool)
            (Format.asprintf "%a %d/%d" Tavcc_model.Name.Class.pp cls i j)
            (Access_vector.commutes (Modes_table.tav t i) (Modes_table.tav t j))
            (Modes_table.commute t i j)
        done
      done)
    [ P.c1; P.c2; P.c3 ]

let prop_symmetric_on_random =
  QCheck.Test.make ~count:40 ~name:"matrices are symmetric on random schemas"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let schema = Tavcc_sim.Workload.make_schema rng Tavcc_sim.Workload.default_params in
      let an = Analysis.compile schema in
      List.for_all
        (fun cls -> Modes_table.is_symmetric (Analysis.table an cls))
        (Tavcc_model.Schema.classes schema))

let test_pp_table2 () =
  let s = Format.asprintf "%a" Modes_table.pp (table ()) in
  Alcotest.(check bool) "header" true (contains s "m1");
  Alcotest.(check bool) "no on diagonal row m1" true (contains s "m1  no  no  yes yes")

let suite =
  [
    case "table 2 exactly" test_table2_exact;
    case "c1's relation is the restriction of table 2" test_c1_is_restriction;
    case "mode/method round trip" test_mode_roundtrip;
    case "symmetry" test_symmetry;
    case "modes preserve vector parallelism" test_parallelism_preserved;
    QCheck_alcotest.to_alcotest prop_symmetric_on_random;
    case "printed table 2" test_pp_table2;
  ]
