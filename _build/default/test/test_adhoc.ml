(* Ad hoc commutativity relations (sec. 3's predefined-type escape
   hatch). *)

open Tavcc_model
open Tavcc_core
open Helpers

let counter_src =
  {|
class counter is
  fields n : integer;
  method inc(d) is n := n + d; end
  method dec(d) is n := n - d; end
  method get is return n; end
end

class gauge extends counter is
  fields peak : integer;
  method inc(d) is -- override: also track the peak
    send counter.inc(d) to self;
    if n > peak then peak := n; end
  end
end
|}

let counter = cn "counter"
let gauge = cn "gauge"
let inc = mn "inc"
let dec = mn "dec"
let get = mn "get"

let adhoc_counter =
  (* Increments and decrements commute semantically with one another. *)
  Adhoc.(
    declare empty counter [ (inc, inc, true); (dec, dec, true); (inc, dec, true) ])

let test_without_adhoc () =
  let an = Analysis.compile (schema_of_source counter_src) in
  Alcotest.(check bool) "syntactic: inc/inc clash" false (Analysis.commute an counter inc inc);
  Alcotest.(check bool) "syntactic: inc/dec clash" false (Analysis.commute an counter inc dec)

let test_with_adhoc () =
  let an = Analysis.compile ~adhoc:adhoc_counter (schema_of_source counter_src) in
  Alcotest.(check bool) "semantic: inc/inc commute" true (Analysis.commute an counter inc inc);
  Alcotest.(check bool) "semantic: inc/dec commute" true (Analysis.commute an counter inc dec);
  Alcotest.(check bool) "semantic: dec/dec commute" true (Analysis.commute an counter dec dec);
  (* Pairs the declaration does not cover keep their computed value. *)
  Alcotest.(check bool) "get/inc still clash" false (Analysis.commute an counter get inc);
  Alcotest.(check bool) "get/get still commute" true (Analysis.commute an counter get get)

let test_inheritance_and_invalidation () =
  let an = Analysis.compile ~adhoc:adhoc_counter (schema_of_source counter_src) in
  (* gauge inherits dec unchanged: the dec/dec assertion carries over. *)
  Alcotest.(check bool) "dec/dec inherited" true (Analysis.commute an gauge dec dec);
  (* gauge overrides inc (it also writes peak): the assertions naming inc
     no longer describe the executed code and must be dropped. *)
  Alcotest.(check bool) "inc/inc invalidated by override" false
    (Analysis.commute an gauge inc inc);
  Alcotest.(check bool) "inc/dec invalidated by override" false
    (Analysis.commute an gauge inc dec)

let test_lookup_api () =
  let schema = schema_of_source counter_src in
  Alcotest.(check (option bool)) "declared pair" (Some true)
    (Adhoc.lookup adhoc_counter schema counter inc dec);
  Alcotest.(check (option bool)) "symmetric" (Some true)
    (Adhoc.lookup adhoc_counter schema counter dec inc);
  Alcotest.(check (option bool)) "undeclared pair" None
    (Adhoc.lookup adhoc_counter schema counter get inc);
  Alcotest.(check (option bool)) "invalidated in subclass" None
    (Adhoc.lookup adhoc_counter schema gauge inc inc);
  Alcotest.(check (option bool)) "still valid in subclass" (Some true)
    (Adhoc.lookup adhoc_counter schema gauge dec dec)

let test_negative_override () =
  (* Declarations can also forbid commutation the vectors would allow:
     e.g. an audit rule that serialises get against dec. *)
  let adhoc = Adhoc.(declare empty counter [ (get, get, false) ]) in
  let an = Analysis.compile ~adhoc (schema_of_source counter_src) in
  Alcotest.(check bool) "forced conflict" false (Analysis.commute an counter get get)

let test_incremental_keeps_adhoc () =
  let an = Analysis.compile ~adhoc:adhoc_counter (schema_of_source counter_src) in
  (* An unrelated edit must not lose the registry. *)
  let md =
    {
      Schema.m_name = mn "reset";
      m_params = [];
      m_body = [ Tavcc_lang.Ast.Assign ("n", Tavcc_lang.Ast.Lit (Value.Vint 0)) ];
    }
  in
  match Incremental.recompile an (Incremental.Add_method (counter, md)) with
  | Error e -> Alcotest.failf "recompile: %a" Incremental.pp_error e
  | Ok an' ->
      Alcotest.(check bool) "adhoc survives the edit" true
        (Analysis.commute an' counter inc dec)

let suite =
  [
    case "computed relation without declarations" test_without_adhoc;
    case "declared pairs override the matrix" test_with_adhoc;
    case "inheritance and override invalidation" test_inheritance_and_invalidation;
    case "lookup" test_lookup_api;
    case "negative override" test_negative_override;
    case "incremental recompilation keeps the registry" test_incremental_keeps_adhoc;
  ]
