(* Access vectors: definitions 3-5 and property 1. *)

open Tavcc_core
module AV = Access_vector
open Helpers

let av l = AV.of_list (List.map (fun (f, m) -> (fn f, m)) l)

(* Random access vectors over a small field pool. *)
let arb_av =
  let pool = [ "f1"; "f2"; "f3"; "f4"; "f5" ] in
  let gen =
    QCheck.Gen.(
      list_size (0 -- 5)
        (pair (oneofl pool) (oneofl [ Mode.Null; Mode.Read; Mode.Write ]))
      |> map (fun l -> av l))
  in
  QCheck.make ~print:(Format.asprintf "%a" AV.pp) gen

let test_canonical () =
  Alcotest.check access_vector "null entries dropped" AV.empty (av [ ("f1", Mode.Null) ]);
  Alcotest.(check bool) "empty" true (AV.is_empty (av [ ("f1", Mode.Null) ]));
  Alcotest.check mode "get missing = Null" Mode.Null (AV.get AV.empty (fn "f1"));
  Alcotest.check access_vector "duplicates joined"
    (av [ ("f1", Mode.Write) ])
    (av [ ("f1", Mode.Read); ("f1", Mode.Write) ]);
  Alcotest.check access_vector "set overwrites"
    (av [ ("f1", Mode.Read) ])
    (AV.set (av [ ("f1", Mode.Write) ]) (fn "f1") Mode.Read);
  Alcotest.check access_vector "set to Null removes" AV.empty
    (AV.set (av [ ("f1", Mode.Write) ]) (fn "f1") Mode.Null)

let test_paper_join_example () =
  (* (W X, R Y, R Z) join (R X, N Y, R T) = (W X, R Y, R Z, R T) — the
     example below definition 4. *)
  let a = av [ ("X", Mode.Write); ("Y", Mode.Read); ("Z", Mode.Read) ] in
  let b = av [ ("X", Mode.Read); ("Y", Mode.Null); ("T", Mode.Read) ] in
  Alcotest.check access_vector "paper example"
    (av [ ("X", Mode.Write); ("Y", Mode.Read); ("Z", Mode.Read); ("T", Mode.Read) ])
    (AV.join a b)

let prop_join_aci =
  QCheck.Test.make ~count:300 ~name:"join idempotent/commutative/associative (property 1)"
    (QCheck.triple arb_av arb_av arb_av) (fun (a, b, c) ->
      AV.equal (AV.join a a) a
      && AV.equal (AV.join a b) (AV.join b a)
      && AV.equal (AV.join a (AV.join b c)) (AV.join (AV.join a b) c))

let prop_join_pointwise =
  QCheck.Test.make ~count:300 ~name:"join is field-wise mode join"
    (QCheck.pair arb_av arb_av) (fun (a, b) ->
      let j = AV.join a b in
      List.for_all
        (fun f -> Mode.equal (AV.get j f) (Mode.join (AV.get a f) (AV.get b f)))
        (List.map fn [ "f1"; "f2"; "f3"; "f4"; "f5" ]))

let prop_commutes_def5 =
  QCheck.Test.make ~count:300 ~name:"commutes = field-wise compatibility (definition 5)"
    (QCheck.pair arb_av arb_av) (fun (a, b) ->
      let expected =
        List.for_all
          (fun f -> Mode.compatible (AV.get a f) (AV.get b f))
          (List.map fn [ "f1"; "f2"; "f3"; "f4"; "f5" ])
      in
      AV.commutes a b = expected && AV.commutes b a = expected)

let test_commutes_cases () =
  Alcotest.(check bool) "disjoint writers commute" true
    (AV.commutes (av [ ("f1", Mode.Write) ]) (av [ ("f2", Mode.Write) ]));
  Alcotest.(check bool) "readers commute" true
    (AV.commutes (av [ ("f1", Mode.Read) ]) (av [ ("f1", Mode.Read) ]));
  Alcotest.(check bool) "read/write clash" false
    (AV.commutes (av [ ("f1", Mode.Read) ]) (av [ ("f1", Mode.Write) ]));
  Alcotest.(check bool) "empty commutes with all" true
    (AV.commutes AV.empty (av [ ("f1", Mode.Write) ]))

let test_projections () =
  let v = av [ ("f1", Mode.Write); ("f2", Mode.Read); ("f3", Mode.Write) ] in
  Alcotest.(check (list field_name)) "write fields (recovery projection)"
    [ fn "f1"; fn "f3" ] (AV.write_fields v);
  Alcotest.(check (list field_name)) "read fields" [ fn "f2" ] (AV.read_fields v);
  Alcotest.(check (list field_name)) "support" [ fn "f1"; fn "f2"; fn "f3" ] (AV.fields v);
  let r = AV.restrict v (Tavcc_model.Name.Field.Set.of_list [ fn "f1"; fn "f2" ]) in
  Alcotest.check access_vector "restrict"
    (av [ ("f1", Mode.Write); ("f2", Mode.Read) ]) r

let test_pp () =
  let v = av [ ("f1", Mode.Write); ("f2", Mode.Read) ] in
  Alcotest.(check string) "paper style" "(Write f1, Read f2)" (Format.asprintf "%a" AV.pp v)

let suite =
  [
    case "canonical representation" test_canonical;
    case "paper's join example" test_paper_join_example;
    QCheck_alcotest.to_alcotest prop_join_aci;
    QCheck_alcotest.to_alcotest prop_join_pointwise;
    QCheck_alcotest.to_alcotest prop_commutes_def5;
    case "commutativity cases" test_commutes_cases;
    case "projections" test_projections;
    case "printing" test_pp;
  ]
