(* Shared test utilities: name shortcuts, Alcotest testables, schema
   builders. *)

open Tavcc_model
open Tavcc_lang

let cn = Name.Class.of_string
let mn = Name.Method.of_string
let fn = Name.Field.of_string

let class_name : Name.Class.t Alcotest.testable =
  Alcotest.testable Name.Class.pp Name.Class.equal

let method_name : Name.Method.t Alcotest.testable =
  Alcotest.testable Name.Method.pp Name.Method.equal

let field_name : Name.Field.t Alcotest.testable =
  Alcotest.testable Name.Field.pp Name.Field.equal

let oid : Oid.t Alcotest.testable = Alcotest.testable Oid.pp Oid.equal
let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

let mode : Tavcc_core.Mode.t Alcotest.testable =
  Alcotest.testable Tavcc_core.Mode.pp Tavcc_core.Mode.equal

let access_vector : Tavcc_core.Access_vector.t Alcotest.testable =
  Alcotest.testable Tavcc_core.Access_vector.pp Tavcc_core.Access_vector.equal

let site : Tavcc_core.Site.t Alcotest.testable =
  Alcotest.testable Tavcc_core.Site.pp Tavcc_core.Site.equal

let expr : Ast.expr Alcotest.testable = Alcotest.testable Pretty.pp_expr Ast.equal_expr

let body : Ast.body Alcotest.testable = Alcotest.testable Pretty.pp_body Ast.equal_body

(* Parses, builds and checks a schema from source; fails the test on any
   error. *)
let schema_of_source src =
  let decls = Parser.parse_decls src in
  match Schema.build decls with
  | Error e -> Alcotest.failf "schema build: %a" Schema.pp_error e
  | Ok s -> (
      match Check.check s with
      | Ok () -> s
      | Error errs ->
          Alcotest.failf "schema check: %a" (Format.pp_print_list Check.pp_error) errs)

let build_of_source src =
  (* Build without the static checker, for tests that target it. *)
  match Schema.build (Parser.parse_decls src) with
  | Error e -> Alcotest.failf "schema build: %a" Schema.pp_error e
  | Ok s -> s

let case name f = Alcotest.test_case name `Quick f

(* Naive substring search, sufficient for matching diagnostics. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_raises_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
