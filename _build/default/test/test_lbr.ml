(* Late-binding resolution graphs (definition 9). *)

open Tavcc_core
module P = Paper_example
open Helpers

let test_figure2 () =
  (* The exact graph of Figure 2. *)
  let ex = Extraction.build (P.schema ()) in
  let g = Lbr.build ex P.c2 in
  let vs = Array.to_list (Lbr.vertices g) in
  Alcotest.(check (list site))
    "vertices"
    [ (P.c2, P.m1); (P.c2, P.m2); (P.c2, P.m3); (P.c2, P.m4); (P.c1, P.m2) ]
    vs;
  Alcotest.(check (list site))
    "m1 successors (late-bound DSC)"
    [ (P.c2, P.m2); (P.c2, P.m3) ]
    (Lbr.successors g (P.c2, P.m1));
  Alcotest.(check (list site))
    "m2 successor (prefixed)"
    [ (P.c1, P.m2) ]
    (Lbr.successors g (P.c2, P.m2));
  Alcotest.(check (list site)) "(c1,m2) is a sink" [] (Lbr.successors g (P.c1, P.m2));
  Alcotest.(check (list site)) "m4 isolated" [] (Lbr.successors g (P.c2, P.m4));
  Alcotest.(check int) "edge count" 3 (Lbr.edge_count g);
  Alcotest.(check int) "vertex count" 5 (Lbr.vertex_count g)

let test_c1_graph () =
  (* In c1 there is no prefixed call: vertices are exactly METHODS(c1). *)
  let ex = Extraction.build (P.schema ()) in
  let g = Lbr.build ex P.c1 in
  Alcotest.(check (list site))
    "vertices"
    [ (P.c1, P.m1); (P.c1, P.m2); (P.c1, P.m3) ]
    (Array.to_list (Lbr.vertices g));
  Alcotest.(check (list site))
    "m1 resolves against c1"
    [ (P.c1, P.m2); (P.c1, P.m3) ]
    (Lbr.successors g (P.c1, P.m1))

let test_late_binding_resolution () =
  (* The crux of definition 9: an ancestor's DSC re-resolves against the
     receiver class.  Here base.run self-sends step, and derived overrides
     step: in derived's graph, (base,run)'s edge must target (derived,step)
     — wait, run is inherited so the vertex is (derived,run); the point is
     its successor is (derived,step), not (base,step). *)
  let schema =
    schema_of_source
      {|
class base is
  fields n : integer;
  method run is send step to self; end
  method step is n := n + 1; end
end
class derived extends base is
  fields m : integer;
  method step is m := m + 1; end
end
|}
  in
  let ex = Extraction.build schema in
  let g = Lbr.build ex (cn "derived") in
  Alcotest.(check (list site))
    "run's self-send late-binds to the override"
    [ (cn "derived", mn "step") ]
    (Lbr.successors g (cn "derived", mn "run"))

let test_prefixed_chain () =
  (* A three-level extension chain: the PSC closure pulls in both ancestor
     sites. *)
  let schema =
    schema_of_source
      {|
class a is
  fields fa : integer;
  method m is fa := 1; end
end
class b extends a is
  fields fb : integer;
  method m is send a.m to self; fb := 1; end
end
class c extends b is
  fields fc : integer;
  method m is send b.m to self; fc := 1; end
end
|}
  in
  let ex = Extraction.build schema in
  let g = Lbr.build ex (cn "c") in
  Alcotest.(check (list site))
    "vertices include the whole chain"
    [ (cn "c", mn "m"); (cn "a", mn "m"); (cn "b", mn "m") ]
    (Array.to_list (Lbr.vertices g));
  Alcotest.(check (list site))
    "(c,m) -> (b,m)"
    [ (cn "b", mn "m") ]
    (Lbr.successors g (cn "c", mn "m"));
  Alcotest.(check (list site))
    "(b,m) -> (a,m)"
    [ (cn "a", mn "m") ]
    (Lbr.successors g (cn "b", mn "m"))

let test_recursion_cycle () =
  let schema =
    schema_of_source
      {|
class r is
  fields f : integer;
  method ping is send pong to self; end
  method pong is if f > 0 then send ping to self; end end
end
|}
  in
  let ex = Extraction.build schema in
  let g = Lbr.build ex (cn "r") in
  Alcotest.(check (list site)) "ping -> pong" [ (cn "r", mn "pong") ]
    (Lbr.successors g (cn "r", mn "ping"));
  Alcotest.(check (list site)) "pong -> ping" [ (cn "r", mn "ping") ]
    (Lbr.successors g (cn "r", mn "pong"))

let test_dot_output () =
  let ex = Extraction.build (P.schema ()) in
  let g = Lbr.build ex P.c2 in
  let dot = Lbr.to_dot g in
  Alcotest.(check bool) "digraph" true (contains dot "digraph lbr_c2");
  Alcotest.(check bool) "edge m1->m2" true (contains dot "\"c2,m1\" -> \"c2,m2\"");
  Alcotest.(check bool) "edge m2->c1.m2" true (contains dot "\"c2,m2\" -> \"c1,m2\"")

let suite =
  [
    case "figure 2 exactly" test_figure2;
    case "graph of c1" test_c1_graph;
    case "late binding resolves against the receiver class" test_late_binding_resolution;
    case "prefixed chain closure" test_prefixed_chain;
    case "mutual recursion forms a cycle" test_recursion_cycle;
    case "DOT output" test_dot_output;
  ]
