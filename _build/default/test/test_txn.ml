(* Transactions, undo logging and the serializability oracle. *)

open Tavcc_model
module Txn = Tavcc_txn.Txn
module History = Tavcc_txn.History
open Helpers

let store () =
  let schema =
    schema_of_source
      {|class a is
          fields f : integer; g : string;
        end|}
  in
  let st = Store.create schema in
  (st, Store.new_instance st (cn "a") ~init:[ (fn "f", Value.Vint 10) ])

let test_undo_restores () =
  let st, o = store () in
  let t = Txn.make ~id:1 ~birth:1 in
  Txn.log_write t o (fn "f") ~before:(Store.read st o (fn "f"));
  Store.write st o (fn "f") (Value.Vint 99);
  Txn.log_write t o (fn "g") ~before:(Store.read st o (fn "g"));
  Store.write st o (fn "g") (Value.Vstring "dirty");
  Txn.abort st t;
  Alcotest.check value "f restored" (Value.Vint 10) (Store.read st o (fn "f"));
  Alcotest.check value "g restored" (Value.Vstring "") (Store.read st o (fn "g"));
  Alcotest.(check bool) "aborted" true (t.Txn.state = Txn.Aborted)

let test_undo_backward_order () =
  (* Two writes to the same field: backward replay restores the first
     before-image. *)
  let st, o = store () in
  let t = Txn.make ~id:1 ~birth:1 in
  Txn.log_write t o (fn "f") ~before:(Store.read st o (fn "f"));
  Store.write st o (fn "f") (Value.Vint 20);
  Txn.log_write t o (fn "f") ~before:(Store.read st o (fn "f"));
  Store.write st o (fn "f") (Value.Vint 30);
  Txn.undo_all st t;
  Alcotest.check value "original value" (Value.Vint 10) (Store.read st o (fn "f"))

let test_undo_skips_deleted () =
  let st, o = store () in
  let t = Txn.make ~id:1 ~birth:1 in
  Txn.log_write t o (fn "f") ~before:(Value.Vint 0);
  Store.delete_instance st o;
  Txn.undo_all st t (* must not raise *)

let test_commit_clears () =
  let st, o = store () in
  let t = Txn.make ~id:1 ~birth:1 in
  Txn.log_write t o (fn "f") ~before:(Value.Vint 0);
  Store.write st o (fn "f") (Value.Vint 77);
  Txn.commit t;
  Alcotest.(check bool) "committed" true (t.Txn.state = Txn.Committed);
  Alcotest.check value "writes kept" (Value.Vint 77) (Store.read st o (fn "f"));
  check_raises_invalid "double commit" (fun () -> Txn.commit t)

let test_restart () =
  let st, _ = store () in
  let t = Txn.make ~id:7 ~birth:3 in
  Txn.abort st t;
  let t' = Txn.reset_for_restart t in
  Alcotest.(check int) "same id" 7 t'.Txn.id;
  Alcotest.(check int) "same birth" 3 t'.Txn.birth;
  Alcotest.(check int) "restart counted" 1 t'.Txn.restarts;
  Alcotest.(check bool) "active again" true (t'.Txn.state = Txn.Active)

(* --- History oracle --- *)

let o1 = Oid.of_int 100
let f = fn "f"
let g = fn "g"

let hist ops =
  let h = History.create () in
  List.iter (History.record h) ops;
  h

let test_serial_history () =
  let h =
    hist
      [
        History.Begin 1; History.Read (1, o1, f); History.Write (1, o1, f); History.Commit 1;
        History.Begin 2; History.Read (2, o1, f); History.Commit 2;
      ]
  in
  Alcotest.(check bool) "serial is CSR" true (History.conflict_serializable h);
  Alcotest.(check (list int)) "committed order" [ 1; 2 ] (History.committed h);
  Alcotest.(check (option (list int))) "serial order" (Some [ 1; 2 ])
    (History.equivalent_serial_order h)

let test_lost_update_not_csr () =
  (* r1[f] r2[f] w1[f] w2[f]: the classical lost update. *)
  let h =
    hist
      [
        History.Begin 1; History.Begin 2;
        History.Read (1, o1, f); History.Read (2, o1, f);
        History.Write (1, o1, f); History.Write (2, o1, f);
        History.Commit 1; History.Commit 2;
      ]
  in
  Alcotest.(check bool) "lost update rejected" false (History.conflict_serializable h)

let test_disjoint_fields_csr () =
  let h =
    hist
      [
        History.Begin 1; History.Begin 2;
        History.Write (1, o1, f); History.Write (2, o1, g);
        History.Write (2, o1, g); History.Write (1, o1, f);
        History.Commit 1; History.Commit 2;
      ]
  in
  Alcotest.(check bool) "field granularity: disjoint writers serialize" true
    (History.conflict_serializable h)

let test_uncommitted_ignored () =
  let h =
    hist
      [
        History.Begin 1; History.Begin 2;
        History.Read (1, o1, f); History.Read (2, o1, f);
        History.Write (1, o1, f); History.Write (2, o1, f);
        History.Commit 1; History.Abort 2;
      ]
  in
  Alcotest.(check bool) "aborted txn's ops ignored" true (History.conflict_serializable h)

let test_restarted_incarnation () =
  (* Txn 2's first incarnation races with 1, aborts, then reruns cleanly:
     only the ops after its last Abort count. *)
  let h =
    hist
      [
        History.Begin 1; History.Begin 2;
        History.Read (2, o1, f); History.Write (1, o1, f); History.Read (1, o1, f);
        History.Write (2, o1, f);
        History.Abort 2; History.Commit 1;
        History.Begin 2; History.Read (2, o1, f); History.Write (2, o1, f); History.Commit 2;
      ]
  in
  Alcotest.(check bool) "only final incarnation counts" true (History.conflict_serializable h);
  Alcotest.(check (option (list int))) "order 1 then 2" (Some [ 1; 2 ])
    (History.equivalent_serial_order h)

let test_write_skew_is_csr_under_this_model () =
  (* Pure conflict-serializability check: w1[f] w2[f] with no reads gives a
     single edge 1 -> 2 and stays serializable. *)
  let h =
    hist
      [
        History.Begin 1; History.Begin 2;
        History.Write (1, o1, f); History.Write (2, o1, f);
        History.Commit 2; History.Commit 1;
      ]
  in
  Alcotest.(check bool) "single edge acyclic" true (History.conflict_serializable h);
  Alcotest.(check (option (list int))) "order follows conflicts, not commits" (Some [ 1; 2 ])
    (History.equivalent_serial_order h)

let test_three_txn_cycle () =
  let o2 = Oid.of_int 101 in
  let o3 = Oid.of_int 102 in
  let h =
    hist
      [
        History.Begin 1; History.Begin 2; History.Begin 3;
        History.Write (1, o1, f); History.Write (2, o2, f); History.Write (3, o3, f);
        History.Write (2, o1, f); History.Write (3, o2, f); History.Write (1, o3, f);
        History.Commit 1; History.Commit 2; History.Commit 3;
      ]
  in
  Alcotest.(check bool) "3-cycle rejected" false (History.conflict_serializable h)

let suite =
  [
    case "undo restores before-images" test_undo_restores;
    case "undo replays backwards" test_undo_backward_order;
    case "undo skips deleted instances" test_undo_skips_deleted;
    case "commit keeps writes and clears undo" test_commit_clears;
    case "restart keeps identity" test_restart;
    case "serial history is CSR" test_serial_history;
    case "lost update is not CSR" test_lost_update_not_csr;
    case "disjoint fields serialize" test_disjoint_fields_csr;
    case "aborted transactions ignored" test_uncommitted_ignored;
    case "restarted incarnations ignored" test_restarted_incarnation;
    case "blind writes order by conflicts" test_write_skew_is_csr_under_this_model;
    case "three-transaction cycle rejected" test_three_txn_cycle;
  ]
