(* The executor: action shapes, extent root exemption, undo wiring. *)

open Tavcc_model
open Tavcc_lock
open Tavcc_cc
module P = Tavcc_core.Paper_example
open Helpers

let setup n =
  let an = P.analysis () in
  let store = Store.create (Tavcc_core.Analysis.schema an) in
  let insts = List.init n (fun _ -> Store.new_instance store P.c2) in
  (an, store, insts)

let record_run scheme store actions =
  let txn = Tavcc_txn.Txn.make ~id:1 ~birth:1 in
  let reqs = ref [] in
  let ctx = { Scheme.txn; acquire = (fun r -> reqs := r :: !reqs) } in
  Exec.begin_txn ~scheme ~store ~ctx actions;
  List.iter (fun a -> Exec.perform ~scheme ~store ~ctx a) actions;
  (txn, List.rev !reqs)

let test_extent_root_exemption () =
  (* Hierarchical schemes skip instance locks for extent roots; the
     per-message baseline does not. *)
  let an, store, _ = setup 3 in
  let action =
    Exec.Call_extent
      { cls = P.c2; deep = true; meth = P.m4; args = [ Value.Vint (-1); Value.Vstring "x" ] }
  in
  let _, reqs = record_run (Tav_modes.scheme an) store [ action ] in
  let inst_locks =
    List.filter (fun r -> match r.Lock_table.r_res with Resource.Instance _ -> true | _ -> false) reqs
  in
  Alcotest.(check int) "tav: no instance locks under the class lock" 0 (List.length inst_locks);
  let _, reqs = record_run (Rw_instance.scheme an) store [ action ] in
  let inst_locks =
    List.filter (fun r -> match r.Lock_table.r_res with Resource.Instance _ -> true | _ -> false) reqs
  in
  Alcotest.(check int) "rw-msg: one instance lock per extent member" 3 (List.length inst_locks)

let test_call_some_intentions () =
  let an, store, insts = setup 2 in
  let action =
    Exec.Call_some
      { root = P.c1; targets = insts; meth = P.m4;
        args = [ Value.Vint (-1); Value.Vstring "x" ] }
  in
  let _, reqs = record_run (Tav_modes.scheme an) store [ action ] in
  let class_locks =
    List.filter_map
      (fun r ->
        match r.Lock_table.r_res with
        | Resource.Class c -> Some (Name.Class.to_string c, r.Lock_table.r_hier)
        | _ -> None)
      reqs
  in
  (* Intentional locks on the domain classes that understand the method:
     m4 does not exist in c1, so only c2 is announced — no instance of c1
     could be a target. *)
  Alcotest.(check bool) "c1 not locked (does not understand m4)" false
    (List.mem ("c1", false) class_locks);
  Alcotest.(check bool) "c2 intentional" true (List.mem ("c2", false) class_locks);
  Alcotest.(check bool) "no hierarchical" true
    (List.for_all (fun (_, h) -> not h) class_locks);
  let inst_locks =
    List.filter (fun r -> match r.Lock_table.r_res with Resource.Instance _ -> true | _ -> false) reqs
  in
  Alcotest.(check int) "each target locked" 2 (List.length inst_locks)

let test_undo_through_exec () =
  let an, store, insts = setup 1 in
  let oid = List.hd insts in
  let txn, _ =
    record_run (Tav_modes.scheme an) store
      [ Exec.Call (oid, P.m4, [ Value.Vint (-1); Value.Vstring "!" ]) ]
  in
  Alcotest.check value "write applied" (Value.Vstring "!") (Store.read store oid P.f6);
  Tavcc_txn.Txn.undo_all store txn;
  Alcotest.check value "undo restores" (Value.Vstring "") (Store.read store oid P.f6)

let test_range_action_on_paper_schema () =
  (* Range over f5: only matching c2 instances run m4. *)
  let an, store, insts = setup 4 in
  List.iteri (fun i oid -> Store.write store oid P.f5 (Value.Vint i)) insts;
  let txn, _ =
    record_run (Tav_modes.scheme an) store
      [
        Exec.Call_range
          { cls = P.c2; deep = true; pred = Pred.make ~lo:2 ~hi:3 P.f5; meth = P.m4;
            args = [ Value.Vint (-1); Value.Vstring "!" ] };
      ]
  in
  ignore txn;
  List.iteri
    (fun i oid ->
      let expected = if i >= 2 then Value.Vstring "!" else Value.Vstring "" in
      Alcotest.check value (Printf.sprintf "instance %d" i) expected (Store.read store oid P.f6))
    insts

let test_lockset_leaves_store_clean () =
  let an, store, insts = setup 2 in
  let oid = List.hd insts in
  Store.write store oid P.f5 (Value.Vint 42);
  let _ =
    Lockset.of_actions ~scheme:(Tav_modes.scheme an) ~store ~txn_id:9
      [ Exec.Call (oid, P.m2, [ Value.Vint 7 ]) ]
  in
  Alcotest.check value "f5 unchanged" (Value.Vint 42) (Store.read store oid P.f5);
  Alcotest.check value "f4 rolled back" (Value.Vint 0) (Store.read store oid P.f4);
  Alcotest.check value "f1 rolled back" (Value.Vint 0) (Store.read store oid P.f1)

let test_maximal_groups_edges () =
  let scheme = Tav_modes.scheme (P.analysis ()) in
  (* Empty input: no groups. *)
  Alcotest.(check (list (list int))) "no sets" [] (Lockset.maximal_groups scheme []);
  (* One empty lock set is compatible with itself. *)
  Alcotest.(check (list (list int))) "singleton" [ [ 0 ] ] (Lockset.maximal_groups scheme [ [] ]);
  (* Two empty sets coexist. *)
  Alcotest.(check (list (list int))) "pair" [ [ 0; 1 ] ]
    (Lockset.maximal_groups scheme [ []; [] ])

let suite =
  [
    case "extent roots are exempt under hierarchical locks" test_extent_root_exemption;
    case "some-of-domain intentions" test_call_some_intentions;
    case "undo flows through the executor" test_undo_through_exec;
    case "range actions filter by predicate" test_range_action_on_paper_schema;
    case "lock-set evaluation rolls the store back" test_lockset_leaves_store_clean;
    case "maximal group edge cases" test_maximal_groups_edges;
  ]
