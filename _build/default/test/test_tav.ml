(* Transitive access vectors (definition 10, sec. 4.3). *)

open Tavcc_model
open Tavcc_core
module AV = Access_vector
module P = Paper_example
open Helpers

let av l = AV.of_list (List.map (fun (f, m) -> (fn f, m)) l)

let test_paper_tavs () =
  (* Sec. 4.3 lists every TAV of class c2 explicitly. *)
  let ex = Extraction.build (P.schema ()) in
  let tavs = Tav.compute ex P.c2 in
  let get m = Name.Method.Map.find m tavs in
  Alcotest.check access_vector "TAV c2.m2"
    (av [ ("f1", Mode.Write); ("f2", Mode.Read); ("f4", Mode.Write); ("f5", Mode.Read) ])
    (get P.m2);
  Alcotest.check access_vector "TAV c2.m3"
    (av [ ("f2", Mode.Read); ("f3", Mode.Read) ])
    (get P.m3);
  Alcotest.check access_vector "TAV c2.m4"
    (av [ ("f5", Mode.Read); ("f6", Mode.Write) ])
    (get P.m4);
  Alcotest.check access_vector "TAV c2.m1"
    (av
       [ ("f1", Mode.Write); ("f2", Mode.Read); ("f3", Mode.Read); ("f4", Mode.Write);
         ("f5", Mode.Read) ])
    (get P.m1)

let test_sinks_equal_dav () =
  (* "Transitive access vectors are calculated from the sinks, with the
     obvious equality between TAV and DAV". *)
  let ex = Extraction.build (P.schema ()) in
  let tavs = Tav.compute ex P.c2 in
  Alcotest.check access_vector "m4 sink" (Extraction.dav ex P.c2 P.m4)
    (Name.Method.Map.find P.m4 tavs);
  Alcotest.check access_vector "m3 sink" (Extraction.dav ex P.c2 P.m3)
    (Name.Method.Map.find P.m3 tavs)

let test_c1_tavs () =
  let ex = Extraction.build (P.schema ()) in
  let tavs = Tav.compute ex P.c1 in
  Alcotest.check access_vector "TAV c1.m1 = join of m2, m3"
    (av [ ("f1", Mode.Write); ("f2", Mode.Read); ("f3", Mode.Read) ])
    (Name.Method.Map.find P.m1 tavs)

let test_recursive_cluster () =
  (* All methods of a recursive cluster share one TAV: the join of all
     DAVs. *)
  let schema = Tavcc_sim.Workload.recursive_cluster_schema ~methods:6 in
  let ex = Extraction.build schema in
  let cls = cn "cluster" in
  let tavs = Tav.compute ex cls in
  let all = Name.Method.Map.bindings tavs in
  let expected =
    List.fold_left
      (fun acc (m, _) -> AV.join acc (Extraction.dav ex cls m))
      AV.empty all
  in
  List.iter
    (fun (m, tav) ->
      Alcotest.check access_vector
        (Format.asprintf "cluster TAV of %a" Name.Method.pp m)
        expected tav)
    all

let test_mutual_recursion_equal () =
  let schema =
    schema_of_source
      {|
class r is
  fields f : integer; g : integer;
  method ping is f := 1; send pong to self; end
  method pong is g := 1; send ping to self; end
end
|}
  in
  let ex = Extraction.build schema in
  let tavs = Tav.compute ex (cn "r") in
  let p = Name.Method.Map.find (mn "ping") tavs in
  let q = Name.Method.Map.find (mn "pong") tavs in
  Alcotest.check access_vector "cycle members share TAV" p q;
  Alcotest.check access_vector "and it is the join"
    (av [ ("f", Mode.Write); ("g", Mode.Write) ])
    p

let tav_dominates_dav ex cls =
  let tavs = Tav.compute ex cls in
  Name.Method.Map.for_all
    (fun m tav ->
      let dav = Extraction.dav ex cls m in
      List.for_all (fun f -> Mode.leq (AV.get dav f) (AV.get tav f)) (AV.fields dav))
    tavs

let prop_matches_naive_and_dominates =
  (* Random schemas: the linear SCC computation equals the quadratic
     reachability oracle, and TAV >= DAV field-wise. *)
  QCheck.Test.make ~count:60 ~name:"SCC TAV = naive TAV, and TAV >= DAV"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let params =
        {
          Tavcc_sim.Workload.default_params with
          sp_depth = 1 + Tavcc_sim.Rng.int rng 3;
          sp_fanout = 1 + Tavcc_sim.Rng.int rng 2;
          sp_shared_methods = 2 + Tavcc_sim.Rng.int rng 4;
          sp_override_prob = 0.7;
          sp_selfcalls = 2;
        }
      in
      let schema = Tavcc_sim.Workload.make_schema rng params in
      let ex = Extraction.build schema in
      List.for_all
        (fun cls ->
          let fast = Tav.compute ex cls in
          let slow = Tav.compute_naive ex cls in
          Name.Method.Map.equal AV.equal fast slow && tav_dominates_dav ex cls)
        (Schema.classes schema))

let prop_recursive_matches_naive =
  QCheck.Test.make ~count:30 ~name:"SCC TAV = naive TAV on recursive clusters"
    (QCheck.make ~print:string_of_int QCheck.Gen.(2 -- 12)) (fun n ->
      let schema = Tavcc_sim.Workload.recursive_cluster_schema ~methods:n in
      let ex = Extraction.build schema in
      let cls = cn "cluster" in
      Name.Method.Map.equal AV.equal (Tav.compute ex cls) (Tav.compute_naive ex cls))

let suite =
  [
    case "paper TAVs exactly" test_paper_tavs;
    case "sinks: TAV = DAV" test_sinks_equal_dav;
    case "class c1 TAVs" test_c1_tavs;
    case "recursive cluster shares one TAV" test_recursive_cluster;
    case "mutual recursion" test_mutual_recursion_equal;
    QCheck_alcotest.to_alcotest prop_matches_naive_and_dominates;
    QCheck_alcotest.to_alcotest prop_recursive_matches_naive;
  ]
