(* The engine's event trace. *)

open Tavcc_model
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
open Helpers

let run_chain ?(policy = Engine.Detect) ~txns () =
  let schema = Workload.chain_schema ~levels:3 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let jobs =
    List.init txns (fun i -> (i + 1, [ Exec.Call (oid, mn "m3", [ Value.Vint 1 ]) ]))
  in
  let config =
    { Engine.default_config with seed = 5; yield_on_access = true; policy; trace = true;
      max_restarts = 1000 }
  in
  Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs ()

let count pred events = List.length (List.filter pred events)

let test_trace_off_by_default () =
  let schema = Workload.chain_schema ~levels:1 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let r =
    Engine.run ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store
      ~jobs:[ (1, [ Exec.Call (oid, mn "m1", [ Value.Vint 1 ]) ]) ] ()
  in
  Alcotest.(check int) "no events" 0 (List.length r.Engine.events)

let test_trace_structure () =
  let r = run_chain ~txns:4 () in
  let ev = r.Engine.events in
  Alcotest.(check int) "one commit event per transaction" 4
    (count (function Engine.Ev_commit _ -> true | _ -> false) ev);
  Alcotest.(check int) "begins cover restarts" (4 + r.Engine.aborts)
    (count (function Engine.Ev_begin _ -> true | _ -> false) ev);
  Alcotest.(check int) "abort events match the counter" r.Engine.aborts
    (count (function Engine.Ev_abort _ -> true | _ -> false) ev);
  Alcotest.(check int) "deadlock events match the counter" r.Engine.deadlocks
    (count (function Engine.Ev_deadlock _ -> true | _ -> false) ev);
  (* Every transaction's last event is its commit. *)
  List.iter
    (fun id ->
      let last =
        List.fold_left
          (fun acc e ->
            match e with
            | Engine.Ev_commit t when t = id -> Some `Commit
            | Engine.Ev_begin t when t = id -> Some `Begin
            | Engine.Ev_abort t when t = id -> Some `Abort
            | _ -> acc)
          None ev
      in
      Alcotest.(check bool) (Printf.sprintf "t%d ends committed" id) true (last = Some `Commit))
    [ 1; 2; 3; 4 ]

let test_trace_blocked_resumed_pair () =
  let r = run_chain ~txns:3 () in
  let blocked = count (function Engine.Ev_blocked _ -> true | _ -> false) r.Engine.events in
  Alcotest.(check bool) "some blocking traced" true (blocked > 0);
  Alcotest.(check int) "blocked events match the waits counter" r.Engine.lock_waits blocked

let test_trace_policy_events () =
  let r = run_chain ~policy:Engine.Wound_wait ~txns:4 () in
  Alcotest.(check bool) "wound events present" true
    (count (function Engine.Ev_wound _ -> true | _ -> false) r.Engine.events > 0);
  let r = run_chain ~policy:Engine.Wait_die ~txns:4 () in
  Alcotest.(check bool) "die events present" true
    (count (function Engine.Ev_died _ -> true | _ -> false) r.Engine.events > 0);
  (* Wound-wait never emits a deadlock event. *)
  let r = run_chain ~policy:Engine.Wound_wait ~txns:4 () in
  Alcotest.(check int) "no cycle under prevention" 0
    (count (function Engine.Ev_deadlock _ -> true | _ -> false) r.Engine.events)

let test_pp_event () =
  let s = Format.asprintf "%a" Engine.pp_event (Engine.Ev_deadlock ([ 1; 2 ], 2)) in
  Alcotest.(check bool) "readable" true (contains s "deadlock {t1,t2}, victim t2")

let suite =
  [
    case "tracing is off by default" test_trace_off_by_default;
    case "trace structure" test_trace_structure;
    case "blocked events match waits" test_trace_blocked_resumed_pair;
    case "policy-specific events" test_trace_policy_events;
    case "event rendering" test_pp_event;
  ]
