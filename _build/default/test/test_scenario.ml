(* The sec. 5.2 four-transaction scenario: the paper's central comparison. *)

open Tavcc_cc
open Helpers

let groups mk = Scenario.maximal_names (Scenario.evaluate mk)

let test_tav () =
  Alcotest.(check (list string))
    "paper: T1||T3||T4 and T2||T3||T4"
    [ "T1||T3||T4"; "T2||T3||T4" ]
    (groups Tav_modes.scheme)

let test_rw_top () =
  Alcotest.(check (list string))
    "paper: either T1||T3 or T1||T4"
    [ "T1||T3"; "T1||T4"; "T2" ]
    (groups Rw_toponly.scheme)

let test_rw_msg () =
  Alcotest.(check (list string))
    "per-message baseline matches rw-top here"
    [ "T1||T3"; "T1||T4"; "T2" ]
    (groups Rw_instance.scheme)

let test_relational () =
  Alcotest.(check (list string))
    "paper: either T1||T3 or T3||T4"
    [ "T1||T3"; "T2"; "T3||T4" ]
    (groups Relational.scheme)

let test_field_runtime_at_least_tav () =
  (* [1] is less conservative than the paper's scheme: everything TAV
     admits must be admitted by field locking. *)
  let tav = Scenario.evaluate Tav_modes.scheme in
  let field = Scenario.evaluate Field_runtime.scheme in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if tav.Scenario.pairwise.(i).(j) then
        Alcotest.(check bool)
          (Printf.sprintf "field admits (%d,%d)" i j)
          true field.Scenario.pairwise.(i).(j)
    done
  done

let test_incomparable_separations () =
  (* "permitted concurrent executions are incomparable": the relational
     schema admits T3||T4, which two-mode OO locking refuses, and vice
     versa for T1||T4. *)
  let rw = Scenario.evaluate Rw_toponly.scheme in
  let rel = Scenario.evaluate Relational.scheme in
  Alcotest.(check bool) "rw admits T1||T4" true rw.Scenario.pairwise.(0).(3);
  Alcotest.(check bool) "relational refuses T1||T4" false rel.Scenario.pairwise.(0).(3);
  Alcotest.(check bool) "relational admits T3||T4" true rel.Scenario.pairwise.(2).(3);
  Alcotest.(check bool) "rw refuses T3||T4" false rw.Scenario.pairwise.(2).(3)

let test_tav_subsumes_both () =
  (* The paper's punchline: every pair admitted by either previous scheme
     is admitted by TAV modes. *)
  let tav = Scenario.evaluate Tav_modes.scheme in
  let rw = Scenario.evaluate Rw_toponly.scheme in
  let rel = Scenario.evaluate Relational.scheme in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if rw.Scenario.pairwise.(i).(j) || rel.Scenario.pairwise.(i).(j) then
        Alcotest.(check bool)
          (Printf.sprintf "tav admits (%d,%d)" i j)
          true tav.Scenario.pairwise.(i).(j)
    done
  done

let test_t2_conflicts_t1_everywhere () =
  (* T2 rewrites every instance m1 touches: no scheme may run them
     concurrently. *)
  List.iter
    (fun mk ->
      let r = Scenario.evaluate mk in
      Alcotest.(check bool) (r.Scenario.scheme_name ^ ": T1 vs T2") false
        r.Scenario.pairwise.(0).(1))
    [ Tav_modes.scheme; Rw_toponly.scheme; Rw_instance.scheme; Relational.scheme;
      Field_runtime.scheme ]

let suite =
  [
    case "tav modes match the paper" test_tav;
    case "rw-top matches the paper" test_rw_top;
    case "rw-msg matches the paper" test_rw_msg;
    case "relational matches the paper" test_relational;
    case "field locking admits at least TAV's groups" test_field_runtime_at_least_tav;
    case "rw and relational separations are incomparable" test_incomparable_separations;
    case "tav subsumes both previous schemes" test_tav_subsumes_both;
    case "T1 and T2 conflict under every scheme" test_t2_conflicts_t1_everywhere;
  ]
