(* Deadlock prevention policies: wound-wait, wait-die, no-wait, timeout. *)

open Tavcc_model
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
open Helpers

let policies =
  [
    ("detect", Engine.Detect);
    ("wound-wait", Engine.Wound_wait);
    ("wait-die", Engine.Wait_die);
    ("no-wait", Engine.No_wait);
    ("timeout", Engine.Timeout 25);
  ]

(* The escalation workload under the per-message R/W baseline: guaranteed
   contention and (under Detect) guaranteed deadlocks. *)
let run_chain policy ~seed ~txns =
  let schema = Workload.chain_schema ~levels:3 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let jobs =
    List.init txns (fun i -> (i + 1, [ Exec.Call (oid, mn "m3", [ Value.Vint 1 ]) ]))
  in
  let config =
    { Engine.default_config with seed; yield_on_access = true; policy; max_restarts = 1000 }
  in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs () in
  (r, Store.read store oid (fn "acc"))

let test_all_policies_complete () =
  List.iter
    (fun (name, policy) ->
      let r, final = run_chain policy ~seed:5 ~txns:6 in
      Alcotest.(check int) (name ^ ": all commit") 6 r.Engine.commits;
      Alcotest.(check (list (pair int string))) (name ^ ": none dead") [] r.Engine.failed;
      Alcotest.check value (name ^ ": correct value") (Value.Vint 6) final;
      Alcotest.(check bool) (name ^ ": serializable") true (Engine.serializable r))
    policies

let test_prevention_reports_no_cycles () =
  (* Only Detect counts deadlock cycles; prevention policies abort before
     a cycle can close. *)
  List.iter
    (fun (name, policy) ->
      let r, _ = run_chain policy ~seed:5 ~txns:6 in
      match policy with
      | Engine.Detect ->
          Alcotest.(check bool) "detect finds cycles" true (r.Engine.deadlocks > 0)
      | _ -> Alcotest.(check int) (name ^ ": no cycle counted") 0 r.Engine.deadlocks)
    policies

let test_no_wait_aborts_most () =
  let r_nw, _ = run_chain Engine.No_wait ~seed:5 ~txns:6 in
  let r_det, _ = run_chain Engine.Detect ~seed:5 ~txns:6 in
  Alcotest.(check bool) "no-wait aborts on every conflict" true
    (r_nw.Engine.aborts >= r_det.Engine.aborts);
  (* Every queued request is immediately withdrawn by an abort: the two
     counters advance in lockstep. *)
  Alcotest.(check int) "one abort per conflict" r_nw.Engine.lock_waits r_nw.Engine.aborts

let test_policies_on_random_workloads () =
  (* Every policy must preserve correctness on contended random
     workloads, under every scheme. *)
  let rng = Tavcc_sim.Rng.create 17 in
  let schema =
    Workload.make_schema rng
      { Workload.default_params with sp_depth = 2; sp_fanout = 2; sp_shared_methods = 3 }
  in
  let an = Tavcc_core.Analysis.compile schema in
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun (sname, mk) ->
          let store = Store.create schema in
          Workload.populate store ~per_class:3;
          let jobs =
            Workload.random_jobs (Tavcc_sim.Rng.create 99) store ~txns:5 ~actions_per_txn:3
              ~extent_prob:0.2 ~hot_instances:2 ~hot_prob:0.6
          in
          let config =
            { Engine.default_config with seed = 3; yield_on_access = true; policy;
              max_restarts = 2000 }
          in
          let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
          let label = Printf.sprintf "%s/%s" pname sname in
          Alcotest.(check int) (label ^ ": commits") 5 r.Engine.commits;
          Alcotest.(check bool) (label ^ ": serializable") true (Engine.serializable r))
        [
          ("tav", Tavcc_cc.Tav_modes.scheme);
          ("rw-msg", Tavcc_cc.Rw_instance.scheme);
          ("field-rt", Tavcc_cc.Field_runtime.scheme);
        ])
    policies

let test_wound_wait_priority () =
  (* Under wound-wait the oldest transaction is never aborted. *)
  let r, _ = run_chain Engine.Wound_wait ~seed:11 ~txns:5 in
  let aborted_t1 =
    List.exists
      (function Tavcc_txn.History.Abort 1 -> true | _ -> false)
      (Tavcc_txn.History.ops r.Engine.history)
  in
  Alcotest.(check bool) "t1 (oldest) never wounded" false aborted_t1

let test_wait_die_priority () =
  (* Under wait-die the oldest transaction never dies either (it always
     waits). *)
  let r, _ = run_chain Engine.Wait_die ~seed:11 ~txns:5 in
  let aborted_t1 =
    List.exists
      (function Tavcc_txn.History.Abort 1 -> true | _ -> false)
      (Tavcc_txn.History.ops r.Engine.history)
  in
  Alcotest.(check bool) "t1 (oldest) never dies" false aborted_t1

let test_timeout_breaks_deadlock () =
  (* With a pure-timeout policy a genuine deadlock must still dissolve. *)
  let r, final = run_chain (Engine.Timeout 10) ~seed:5 ~txns:4 in
  Alcotest.(check int) "all commit" 4 r.Engine.commits;
  Alcotest.check value "value" (Value.Vint 4) final

let suite =
  [
    case "all policies run to completion" test_all_policies_complete;
    case "prevention counts no cycles" test_prevention_reports_no_cycles;
    case "no-wait aborts on every conflict" test_no_wait_aborts_most;
    case "policies x schemes on random workloads" test_policies_on_random_workloads;
    case "wound-wait spares the oldest" test_wound_wait_priority;
    case "wait-die spares the oldest" test_wait_die_priority;
    case "timeout dissolves deadlocks" test_timeout_breaks_deadlock;
  ]
