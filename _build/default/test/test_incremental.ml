(* Incremental recompilation under method-level edits. *)

open Tavcc_model
open Tavcc_lang
open Tavcc_core
module P = Paper_example
open Helpers

let parse_method src =
  (* "method m(p) is ... end" parsed through a wrapper class. *)
  let decls = Parser.parse_decls (Printf.sprintf "class __w is %s end" src) in
  List.hd (List.hd decls).Schema.c_methods

let equivalent an1 an2 =
  let s1 = Analysis.schema an1 and s2 = Analysis.schema an2 in
  List.length (Schema.classes s1) = List.length (Schema.classes s2)
  && List.for_all2
       (fun c1 c2 ->
         Name.Class.equal c1 c2
         && List.equal Name.Method.equal (Schema.methods s1 c1) (Schema.methods s2 c2)
         && List.for_all
              (fun m ->
                Access_vector.equal (Analysis.tav an1 c1 m) (Analysis.tav an2 c2 m)
                && List.for_all
                     (fun m' -> Analysis.commute an1 c1 m m' = Analysis.commute an2 c2 m m')
                     (Schema.methods s1 c1))
              (Schema.methods s1 c1))
       (Schema.classes s1) (Schema.classes s2)

let full_of an = Analysis.compile (Analysis.schema an)

let check_edit an edit =
  match Incremental.recompile an edit with
  | Error e -> Alcotest.failf "recompile: %a" Incremental.pp_error e
  | Ok inc -> (
      match Incremental.apply_edit (Analysis.schema an) edit with
      | Error e -> Alcotest.failf "apply_edit: %a" Incremental.pp_error e
      | Ok schema ->
          let full = Analysis.compile schema in
          Alcotest.(check bool) "incremental = full" true (equivalent inc full);
          inc)

let test_update_widens_tav () =
  let an = P.analysis () in
  (* Make c1.m3 write f1: every TAV reaching m3 must widen. *)
  let md = parse_method "method m3 is f1 := f1 + 1; end" in
  let inc = check_edit an (Incremental.Update_method (P.c1, md)) |> full_of in
  Alcotest.check mode "m3 now writes f1" Mode.Write
    (Access_vector.get (Analysis.tav inc P.c2 P.m3) P.f1);
  Alcotest.check mode "m1 inherits the widening" Mode.Write
    (Access_vector.get (Analysis.tav inc P.c1 P.m1) P.f1);
  (* m3 no longer commutes with m2 (both write f1). *)
  Alcotest.(check bool) "m3/m2 conflict now" false (Analysis.commute inc P.c2 P.m3 P.m2)

let test_add_method () =
  let an = P.analysis () in
  let md = parse_method "method m5 is f6 := f6 + \"x\"; end" in
  let inc = check_edit an (Incremental.Add_method (P.c2, md)) in
  let m5 = mn "m5" in
  Alcotest.(check bool) "m5 analysed" true
    (Access_vector.equal
       (Analysis.tav inc P.c2 m5)
       (Access_vector.of_list [ (P.f6, Mode.Write) ]));
  Alcotest.(check bool) "m5 conflicts with m4 (both write f6)" false
    (Analysis.commute inc P.c2 m5 P.m4);
  Alcotest.(check bool) "m5 commutes with m2" true (Analysis.commute inc P.c2 m5 P.m2)

let test_remove_override () =
  let an = P.analysis () in
  (* Dropping c2's m2 override reverts c2.m2 to the inherited version:
     the TAV loses f4/f5 and Figure 2 loses the (c1,m2) chain. *)
  let inc = check_edit an (Incremental.Remove_method (P.c2, P.m2)) |> full_of in
  Alcotest.check access_vector "TAV falls back to c1's"
    (Analysis.tav inc P.c1 P.m2) (Analysis.tav inc P.c2 P.m2);
  Alcotest.check mode "no more f4 write" Mode.Null
    (Access_vector.get (Analysis.tav inc P.c2 P.m2) (fn "f4"))

let test_remove_called_method () =
  let an = P.analysis () in
  (* Removing c1.m3 breaks m1's self-send; the analysis must survive
     (the checker would flag the dangling send separately). *)
  let inc = check_edit an (Incremental.Remove_method (P.c1, P.m3)) |> full_of in
  Alcotest.(check bool) "m3 gone from METHODS(c2)" true
    (not (List.exists (Name.Method.equal P.m3) (Schema.methods (Analysis.schema inc) P.c2)));
  Alcotest.check mode "m1 no longer reads f3" Mode.Null
    (Access_vector.get (Analysis.tav inc P.c2 P.m1) P.f3)

let test_errors () =
  let an = P.analysis () in
  (match Incremental.recompile an (Incremental.Remove_method (P.c2, P.m1)) with
  | Error (Incremental.No_such_definition _) -> ()
  | _ -> Alcotest.fail "m1 is inherited, not defined in c2");
  (match
     Incremental.recompile an
       (Incremental.Add_method (P.c2, parse_method "method m4 is end"))
   with
  | Error (Incremental.Already_defined _) -> ()
  | _ -> Alcotest.fail "m4 already defined in c2");
  match
    Incremental.recompile an
      (Incremental.Add_method (cn "ghost", parse_method "method z is end"))
  with
  | Error (Incremental.Unknown_class _) -> ()
  | _ -> Alcotest.fail "ghost class"

let test_affected_is_domain () =
  let an = P.analysis () in
  let schema = Analysis.schema an in
  Alcotest.(check (list class_name)) "edits in c1 affect its domain"
    [ P.c1; P.c2 ] (Incremental.affected_classes schema P.c1);
  Alcotest.(check (list class_name)) "edits in c3 affect only c3"
    [ P.c3 ] (Incremental.affected_classes schema P.c3)

(* Random equivalence property: random schema, random sequence of edits;
   after each edit the incremental result equals the full recompile. *)
let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 50_000)

let random_edit rng schema =
  let classes = Schema.classes schema in
  let cls = Tavcc_sim.Rng.pick rng classes in
  let own = Schema.own_methods schema cls in
  let fields = Schema.fields schema cls in
  let fresh_body () =
    match fields with
    | [] -> []
    | fds ->
        let fd = Tavcc_sim.Rng.pick rng fds in
        [
          Ast.Assign
            ( Name.Field.to_string fd.Schema.f_name,
              Ast.Binop (Ast.Add, Ast.Ident (Name.Field.to_string fd.Schema.f_name), Ast.Ident "p1")
            );
        ]
  in
  let choices = Tavcc_sim.Rng.int rng 3 in
  match (choices, own) with
  | 0, _ ->
      let name = Name.Method.of_string (Printf.sprintf "zz%d" (Tavcc_sim.Rng.int rng 1000)) in
      if Schema.method_def_in schema cls name <> None then None
      else Some (Incremental.Add_method (cls, { Schema.m_name = name; m_params = [ "p1" ]; m_body = fresh_body () }))
  | 1, md :: _ ->
      Some (Incremental.Update_method (cls, { md with Schema.m_body = fresh_body () }))
  | 2, md :: _ -> Some (Incremental.Remove_method (cls, md.Schema.m_name))
  | _ -> None

let prop_equivalence =
  QCheck.Test.make ~count:40 ~name:"incremental = full recompile (random edit sequences)"
    arb_seed (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let schema =
        Tavcc_sim.Workload.make_schema rng
          { Tavcc_sim.Workload.default_params with sp_depth = 3; sp_fanout = 2 }
      in
      let an = ref (Analysis.compile schema) in
      let ok = ref true in
      for _ = 1 to 5 do
        match random_edit rng (Analysis.schema !an) with
        | None -> ()
        | Some edit -> (
            match Incremental.recompile !an edit with
            | Error _ -> ()
            | Ok inc ->
                let full = Analysis.compile (Analysis.schema inc) in
                if not (equivalent inc full) then ok := false;
                an := inc)
      done;
      !ok)

let suite =
  [
    case "update widens dependent TAVs" test_update_widens_tav;
    case "add a method" test_add_method;
    case "remove an override" test_remove_override;
    case "remove a called method" test_remove_called_method;
    case "edit errors" test_errors;
    case "affected set is the domain" test_affected_is_domain;
    QCheck_alcotest.to_alcotest prop_equivalence;
  ]
