(* Workload generators: validity, determinism, termination. *)

open Tavcc_model
open Tavcc_lang
module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
open Helpers

let test_rng_determinism () =
  let a = Rng.create 99 in
  let b = Rng.create 99 in
  let sa = List.init 20 (fun _ -> Rng.int a 1000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" sa sb;
  let c = Rng.copy a in
  Alcotest.(check int) "copy forks the state" (Rng.int a 1000) (Rng.int c 1000)

let test_rng_ranges () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v;
    let f = Rng.float r 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.failf "float out of range: %f" f
  done;
  (match Rng.int r 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  match Rng.pick r [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on empty pick"

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let l = List.init 10 Fun.id in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "same elements" l (List.sort compare s)

let test_generated_schema_checks () =
  let rng = Rng.create 11 in
  let schema = Workload.make_schema rng Workload.default_params in
  match Check.check schema with
  | Ok () -> ()
  | Error errs ->
      Alcotest.failf "generated schema has diagnostics: %a"
        (Format.pp_print_list Check.pp_error)
        errs

let test_generated_schema_shape () =
  let rng = Rng.create 11 in
  let p = { Workload.default_params with sp_depth = 3; sp_fanout = 2 } in
  let schema = Workload.make_schema rng p in
  (* depth 3, fanout 2: 1 + 2 + 4 = 7 classes. *)
  Alcotest.(check int) "class count" 7 (Schema.class_count schema);
  (* Every class understands every shared method. *)
  List.iter
    (fun c ->
      List.iter
        (fun j ->
          let m = Name.Method.of_string (Printf.sprintf "g%d" j) in
          Alcotest.(check bool)
            (Format.asprintf "%a understands g%d" Name.Class.pp c j)
            true
            (Schema.resolve schema c m <> None))
        [ 0; 1; 2; 3 ])
    (Schema.classes schema)

let test_generated_methods_terminate () =
  (* Run every method of every class on a fresh instance: the index
     discipline guarantees termination well within the fuel. *)
  let rng = Rng.create 23 in
  let schema = Workload.make_schema rng Workload.default_params in
  let store = Store.create schema in
  List.iter
    (fun c ->
      let o = Store.new_instance store c in
      List.iter
        (fun m -> ignore (Interp.call ~max_steps:100_000 store o m [ Value.Vint 1 ]))
        (Schema.methods schema c))
    (Schema.classes schema)

let test_chain_schema () =
  let schema = Workload.chain_schema ~levels:5 in
  let an = Tavcc_core.Analysis.compile schema in
  let cls = cn "chain" in
  (* The TAV of the top method reaches the bottom writer. *)
  let tav = Tavcc_core.Analysis.tav an cls (mn "m5") in
  Alcotest.check mode "m5 writes acc transitively" Tavcc_core.Mode.Write
    (Tavcc_core.Access_vector.get tav (fn "acc"));
  let dav = Tavcc_core.Analysis.dav an cls (mn "m5") in
  Alcotest.check mode "m5 reads acc directly" Tavcc_core.Mode.Read
    (Tavcc_core.Access_vector.get dav (fn "acc"))

let test_wide_schema () =
  let schema = Workload.wide_schema ~fields:10 ~touched:4 in
  let an = Tavcc_core.Analysis.compile schema in
  let tav = Tavcc_core.Analysis.tav an (cn "wide") (mn "touch") in
  Alcotest.(check int) "touch writes 4 fields" 4
    (List.length (Tavcc_core.Access_vector.write_fields tav));
  Alcotest.(check bool) "touch and probe commute (disjoint)" true
    (Tavcc_core.Analysis.commute an (cn "wide") (mn "touch") (mn "probe"))

let test_pseudo_conflict_schema () =
  let schema = Workload.pseudo_conflict_schema () in
  let an = Tavcc_core.Analysis.compile schema in
  Alcotest.(check bool) "wbase/wsub commute" true
    (Tavcc_core.Analysis.commute an (cn "sub") (mn "wbase") (mn "wsub"));
  Alcotest.(check bool) "wbase conflicts with itself" false
    (Tavcc_core.Analysis.commute an (cn "sub") (mn "wbase") (mn "wbase"))

let test_populate_and_jobs () =
  let rng = Rng.create 3 in
  let schema = Workload.make_schema rng Workload.default_params in
  let store = Store.create schema in
  Workload.populate store ~per_class:5;
  Alcotest.(check int) "5 per class" (5 * Schema.class_count schema) (Store.instance_count store);
  let jobs =
    Workload.random_jobs rng store ~txns:7 ~actions_per_txn:4 ~extent_prob:0.3 ~hot_instances:3
      ~hot_prob:0.8
  in
  Alcotest.(check int) "7 transactions" 7 (List.length jobs);
  List.iteri
    (fun i (id, actions) ->
      Alcotest.(check int) "ids from 1" (i + 1) id;
      Alcotest.(check int) "4 actions" 4 (List.length actions))
    jobs

let suite =
  [
    case "rng: determinism" test_rng_determinism;
    case "rng: ranges and errors" test_rng_ranges;
    case "rng: shuffle permutes" test_rng_shuffle_permutes;
    case "generated schemas pass the checker" test_generated_schema_checks;
    case "generated schema shape" test_generated_schema_shape;
    case "generated methods terminate" test_generated_methods_terminate;
    case "chain schema analysis" test_chain_schema;
    case "wide schema analysis" test_wide_schema;
    case "pseudo-conflict schema analysis" test_pseudo_conflict_schema;
    case "populate and job generation" test_populate_and_jobs;
  ]
