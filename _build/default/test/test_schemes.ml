(* The five concurrency-control schemes: lock sets and conflict rules. *)

open Tavcc_model
open Tavcc_core
open Tavcc_lock
open Tavcc_cc
module P = Paper_example
open Helpers

let setup () =
  let an = P.analysis () in
  let store = Store.create (Analysis.schema an) in
  let target = Store.new_instance store P.c3 in
  let i2 = Store.new_instance store P.c2 ~init:[ (P.f3, Value.Vref target) ] in
  (an, store, i2, target)

let lockset scheme store actions = Lockset.of_actions ~scheme ~store ~txn_id:1 actions

let kinds reqs =
  List.map
    (fun r ->
      match r.Lock_table.r_res with
      | Resource.Class c -> Printf.sprintf "C:%s%s" (Name.Class.to_string c) (if r.Lock_table.r_hier then "*" else "")
      | Resource.Instance o -> Printf.sprintf "I:%d" (Oid.to_int o)
      | Resource.Field (o, f) -> Printf.sprintf "F:%d.%s" (Oid.to_int o) (Name.Field.to_string f)
      | Resource.Fragment (o, c) -> Printf.sprintf "G:%s[%d]" (Name.Class.to_string c) (Oid.to_int o)
      | Resource.Relation c -> Printf.sprintf "R:%s" (Name.Class.to_string c)
      | Resource.Meth (c, m) -> Printf.sprintf "M:%s.%s" (Name.Class.to_string c) (Name.Method.to_string m))
    reqs

(* --- TAV scheme --- *)

let test_tav_single_call () =
  let an, store, i2, _ = setup () in
  let scheme = Tav_modes.scheme an in
  let reqs = lockset scheme store [ Exec.Call (i2, P.m4, [ Value.Vint 0; Value.Vstring "x" ]) ] in
  (* Exactly one intentional class lock and one instance lock. *)
  Alcotest.(check (list string)) "class then instance"
    [ "C:c2"; Printf.sprintf "I:%d" (Oid.to_int i2) ]
    (kinds reqs)

let test_tav_self_sends_free () =
  let an, store, i2, target = setup () in
  let scheme = Tav_modes.scheme an in
  (* m2 self-sends c1.m2; still one class + one instance lock. *)
  let reqs = lockset scheme store [ Exec.Call (i2, P.m2, [ Value.Vint 1 ]) ] in
  Alcotest.(check int) "two locks for a self-send cascade" 2 (List.length reqs);
  (* m1 with f2=true crosses to the c3 collaborator: two more locks. *)
  Store.write store i2 P.f2 (Value.Vbool true);
  let reqs = lockset scheme store [ Exec.Call (i2, P.m1, [ Value.Vint 1 ]) ] in
  Alcotest.(check (list string)) "cross-object send controlled"
    [ "C:c2"; Printf.sprintf "I:%d" (Oid.to_int i2); "C:c3";
      Printf.sprintf "I:%d" (Oid.to_int target) ]
    (kinds reqs)

let test_tav_class_conflict_rule () =
  let an, _, _, _ = setup () in
  let scheme = Tav_modes.scheme an in
  let gm = Global_modes.build an in
  let g_m1 = Global_modes.id gm P.c2 P.m1 in
  let g_m4 = Global_modes.id gm P.c2 P.m4 in
  let req ?(hier = false) txn mode =
    { Lock_table.r_txn = txn; r_res = Resource.Class P.c2; r_mode = mode; r_hier = hier;
      r_pred = None }
  in
  (* Both intentional: never conflict, even with non-commuting modes. *)
  Alcotest.(check bool) "intentional/intentional" false
    (scheme.Scheme.conflict (req 1 g_m1) (req 2 g_m1));
  (* Hierarchical vs intentional: decided by commutativity. *)
  Alcotest.(check bool) "hier m1 vs int m1 conflicts" true
    (scheme.Scheme.conflict (req 1 ~hier:true g_m1) (req 2 g_m1));
  Alcotest.(check bool) "hier m1 vs int m4 commutes" false
    (scheme.Scheme.conflict (req 1 ~hier:true g_m1) (req 2 g_m4));
  (* Instance locks always go by commutativity. *)
  let ireq txn mode =
    { Lock_table.r_txn = txn; r_res = Resource.Instance (Oid.of_int 9); r_mode = mode;
      r_hier = false; r_pred = None }
  in
  Alcotest.(check bool) "instance m1/m1" true (scheme.Scheme.conflict (ireq 1 g_m1) (ireq 2 g_m1));
  Alcotest.(check bool) "instance m1/m4" false (scheme.Scheme.conflict (ireq 1 g_m1) (ireq 2 g_m4))

let test_global_modes () =
  let an, _, _, _ = setup () in
  let gm = Global_modes.build an in
  Alcotest.(check int) "3 + 4 + 1 modes" 8 (Global_modes.count gm);
  let g = Global_modes.id gm P.c2 P.m3 in
  Alcotest.check class_name "class_of" P.c2 (Global_modes.class_of gm g);
  Alcotest.check method_name "method_of" P.m3 (Global_modes.method_of gm g);
  Alcotest.(check bool) "commute via matrix" true
    (Global_modes.commute gm g (Global_modes.id gm P.c2 P.m1));
  check_raises_invalid "cross-class commute" (fun () ->
      Global_modes.commute gm g (Global_modes.id gm P.c1 P.m1));
  check_raises_invalid "unknown method" (fun () -> Global_modes.id gm P.c1 P.m4)

(* --- rw-msg baseline --- *)

let test_rw_msg_controls_every_message () =
  let an, store, i2, _ = setup () in
  let scheme = Rw_instance.scheme an in
  (* m2 on c2: top send (writer) + prefixed self-send c1.m2 (writer):
     class and instance locks repeat per message. *)
  let reqs = lockset scheme store [ Exec.Call (i2, P.m2, [ Value.Vint 1 ]) ] in
  Alcotest.(check (list string)) "two controls for one logical access"
    [ "C:c2"; Printf.sprintf "I:%d" (Oid.to_int i2) ]
    (kinds (List.sort_uniq compare reqs) |> List.sort compare);
  (* The dedup above hides the repetition; count raw acquisitions through
     a lock table instead. *)
  let table = Lock_table.create ~conflict:scheme.Scheme.conflict () in
  let txn = Tavcc_txn.Txn.make ~id:1 ~birth:1 in
  let ctx = { Scheme.txn; acquire = (fun r -> ignore (Lock_table.acquire table r)) } in
  Exec.perform ~scheme ~store ~ctx (Exec.Call (i2, P.m2, [ Value.Vint 1 ]));
  Alcotest.(check int) "4 lock requests (2 messages x class+instance)" 4
    (Lock_table.stats table).Lock_table.requests

let test_rw_msg_escalation () =
  let an, store, i2, _ = setup () in
  let scheme = Rw_instance.scheme an in
  (* m1 is a reader by direct code; its self-sent m2 is a writer: the
     instance lock escalates R -> W. *)
  let reqs = lockset scheme store [ Exec.Call (i2, P.m1, [ Value.Vint 1 ]) ] in
  let inst_modes =
    List.filter_map
      (fun r ->
        match r.Lock_table.r_res with
        | Resource.Instance _ -> Some r.Lock_table.r_mode
        | _ -> None)
      reqs
  in
  Alcotest.(check (list int)) "R then W" [ Compat.read; Compat.write ] inst_modes

(* --- rw-top baseline --- *)

let test_rw_top_announces_up_front () =
  let an, store, i2, _ = setup () in
  let scheme = Rw_toponly.scheme an in
  let reqs = lockset scheme store [ Exec.Call (i2, P.m1, [ Value.Vint 1 ]) ] in
  let inst_modes =
    List.filter_map
      (fun r ->
        match r.Lock_table.r_res with Resource.Instance _ -> Some r.Lock_table.r_mode | _ -> None)
      reqs
  in
  (* TAV of m1 writes: announce W immediately, no escalation. *)
  Alcotest.(check (list int)) "W up front" [ Compat.write ] inst_modes;
  Alcotest.(check int) "exactly 2 locks" 2 (List.length reqs)

let test_rw_pseudo_conflict () =
  (* m2 vs m4: disjoint fields, but both classified writers — they
     conflict under two-mode locking and commute under TAV modes. *)
  let an, _, _, _ = setup () in
  Alcotest.(check bool) "m2 TAV-writer" true (Scheme.writes_transitively an P.c2 P.m2);
  Alcotest.(check bool) "m4 TAV-writer" true (Scheme.writes_transitively an P.c2 P.m4);
  Alcotest.(check bool) "but they commute" true (Analysis.commute an P.c2 P.m2 P.m4);
  Alcotest.(check bool) "m1 reader by direct code" false (Scheme.writes_directly an P.c2 P.m1);
  Alcotest.(check bool) "m1 writer transitively" true (Scheme.writes_transitively an P.c2 P.m1)

(* --- field locking --- *)

let test_field_runtime_locks () =
  let an, store, i2, _ = setup () in
  let scheme = Field_runtime.scheme an in
  let reqs = lockset scheme store [ Exec.Call (i2, P.m4, [ Value.Vint (-1); Value.Vstring "x" ]) ] in
  (* meth lock + f5 read + f6 write+read. *)
  Alcotest.(check (list string)) "method and field locks"
    (List.sort compare
       [ "M:c2.m4"; Printf.sprintf "F:%d.f5" (Oid.to_int i2);
         Printf.sprintf "F:%d.f6" (Oid.to_int i2) ])
    (List.sort_uniq compare (kinds reqs))

(* --- relational --- *)

let test_fragments_of_tav () =
  let an, _, _, _ = setup () in
  let schema = Analysis.schema an in
  (* m4 touches only c2 fields: one fragment, write. *)
  Alcotest.(check (list (pair string bool)))
    "m4 fragments"
    [ ("c2", true) ]
    (List.map
       (fun (c, w) -> (Name.Class.to_string c, w))
       (Relational.fragments_of_tav schema P.c2 (Analysis.tav an P.c2 P.m4)));
  (* m1 writes the key f1: both fragments write-locked. *)
  Alcotest.(check (list (pair string bool)))
    "m1 fragments (key rule)"
    [ ("c1", true); ("c2", true) ]
    (List.map
       (fun (c, w) -> (Name.Class.to_string c, w))
       (Relational.fragments_of_tav schema P.c2 (Analysis.tav an P.c2 P.m1)));
  (* m3 reads c1 fields only. *)
  Alcotest.(check (list (pair string bool)))
    "m3 fragments"
    [ ("c1", false) ]
    (List.map
       (fun (c, w) -> (Name.Class.to_string c, w))
       (Relational.fragments_of_tav schema P.c2 (Analysis.tav an P.c2 P.m3)));
  (* Key of c2's relational image is f1, owned by c1. *)
  match Relational.key_field schema P.c2 with
  | Some (owner, f) ->
      Alcotest.check class_name "key owner" P.c1 owner;
      Alcotest.check field_name "key field" P.f1 f
  | None -> Alcotest.fail "expected a key"

let test_relational_key_cascade_on_c1_instance () =
  (* A proper c1 instance writing its key locks the (potential) c2
     fragment too — the foreign-key guard of sec. 5.2. *)
  let an, store, _, _ = setup () in
  let i1 = Store.new_instance store P.c1 in
  let scheme = Relational.scheme an in
  let reqs = lockset scheme store [ Exec.Call (i1, P.m2, [ Value.Vint 1 ]) ] in
  Alcotest.(check (list string)) "both relations reached"
    [ Printf.sprintf "G:c1[%d]" (Oid.to_int i1); Printf.sprintf "G:c2[%d]" (Oid.to_int i1);
      "R:c1"; "R:c2" ]
    (List.sort_uniq compare (kinds reqs))

let suite =
  [
    case "tav: one class + one instance lock per top send" test_tav_single_call;
    case "tav: self-sends are free, cross-sends are not" test_tav_self_sends_free;
    case "tav: intentional/hierarchical class rule" test_tav_class_conflict_rule;
    case "global mode numbering" test_global_modes;
    case "rw-msg: every message controls" test_rw_msg_controls_every_message;
    case "rw-msg: escalation R->W" test_rw_msg_escalation;
    case "rw-top: most exclusive mode up front" test_rw_top_announces_up_front;
    case "classification: pseudo-conflict anatomy" test_rw_pseudo_conflict;
    case "field-rt: method + field locks" test_field_runtime_locks;
    case "relational: fragments and key rule" test_fragments_of_tav;
    case "relational: FK guard on c1 instances" test_relational_key_cascade_on_c1_instance;
  ]
