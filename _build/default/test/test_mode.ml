(* The mode lattice and Table 1. *)

open Tavcc_core
open Helpers

let test_table1 () =
  (* The exact content of the paper's Table 1. *)
  let expect =
    [
      (Mode.Null, Mode.Null, true); (Mode.Null, Mode.Read, true); (Mode.Null, Mode.Write, true);
      (Mode.Read, Mode.Null, true); (Mode.Read, Mode.Read, true); (Mode.Read, Mode.Write, false);
      (Mode.Write, Mode.Null, true); (Mode.Write, Mode.Read, false); (Mode.Write, Mode.Write, false);
    ]
  in
  List.iter
    (fun (a, b, c) ->
      Alcotest.(check bool)
        (Format.asprintf "%a/%a" Mode.pp a Mode.pp b)
        c (Mode.compatible a b))
    expect

let test_join_is_max () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = Mode.join a b in
          Alcotest.(check bool) "upper bound" true (Mode.leq a j && Mode.leq b j);
          Alcotest.check mode "commutative" j (Mode.join b a);
          Alcotest.check mode "idempotent" a (Mode.join a a))
        Mode.all)
    Mode.all;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              Alcotest.check mode "associative" (Mode.join a (Mode.join b c))
                (Mode.join (Mode.join a b) c))
            Mode.all)
        Mode.all)
    Mode.all

let test_order_from_compatibility () =
  (* The order is deduced from the compatibility relation by inclusion of
     rows (definition 2): a <= b iff every mode compatible with b is
     compatible with a. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let row_incl =
            List.for_all (fun m -> (not (Mode.compatible b m)) || Mode.compatible a m) Mode.all
          in
          Alcotest.(check bool)
            (Format.asprintf "leq %a %a matches row inclusion" Mode.pp a Mode.pp b)
            row_incl (Mode.leq a b))
        Mode.all)
    Mode.all

let test_strings () =
  Alcotest.(check (option mode)) "read" (Some Mode.Read) (Mode.of_string "read");
  Alcotest.(check (option mode)) "W" (Some Mode.Write) (Mode.of_string "W");
  Alcotest.(check (option mode)) "null" (Some Mode.Null) (Mode.of_string "Null");
  Alcotest.(check (option mode)) "bad" None (Mode.of_string "shared");
  Alcotest.(check string) "to_string" "Write" (Mode.to_string Mode.Write)

let test_compare_total () =
  Alcotest.(check bool) "N < R" true (Mode.compare Mode.Null Mode.Read < 0);
  Alcotest.(check bool) "R < W" true (Mode.compare Mode.Read Mode.Write < 0);
  Alcotest.(check int) "refl" 0 (Mode.compare Mode.Read Mode.Read)

let suite =
  [
    case "table 1 exactly" test_table1;
    case "join is a lattice join" test_join_is_max;
    case "order deduced from compatibility" test_order_from_compatibility;
    case "string conversions" test_strings;
    case "total order" test_compare_total;
  ]
