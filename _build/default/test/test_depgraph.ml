(* The method dependency graph (composition links, sec. 4.3 remark). *)

open Tavcc_core
module P = Paper_example
open Helpers

let dep_of schema = Depgraph.build (Extraction.build schema)

let test_paper_example () =
  let dep = dep_of (P.schema ()) in
  (* m3 sends m to f3 (declared c3): a composition edge. *)
  Alcotest.(check (list site))
    "m3 reaches (c3,m)"
    [ (P.c3, P.m) ]
    (Depgraph.successors dep (P.c1, P.m3));
  (* m1 reaches it transitively through its self-sent m3. *)
  Alcotest.(check (list site))
    "m1's composition successors"
    [ (P.c3, P.m) ]
    (Depgraph.successors dep (P.c2, P.m1));
  Alcotest.(check (list class_name))
    "classes reachable from c2.m1"
    [ P.c2; P.c3 ]
    (Depgraph.reachable_classes dep P.c2 P.m1);
  (* m4 touches no other object. *)
  Alcotest.(check (list class_name))
    "m4 stays home" [ P.c2 ]
    (Depgraph.reachable_classes dep P.c2 P.m4);
  (* c3.m is a sink. *)
  Alcotest.(check (list site)) "(c3,m) sink" [] (Depgraph.successors dep (P.c3, P.m))

let test_subclass_receivers_covered () =
  (* A field declared of class [t] may hold any instance of t's domain:
     the edges fan out over the domain. *)
  let schema =
    schema_of_source
      {|
class t is
  fields x : integer;
  method tick is x := x + 1; end
end
class u extends t is
  fields y : integer;
  method tick is y := y + 1; end
end
class owner is
  fields r : t;
  method poke is send tick to r; end
end
|}
  in
  let dep = dep_of schema in
  Alcotest.(check (list site))
    "edges cover the domain of t"
    [ (cn "t", mn "tick"); (cn "u", mn "tick") ]
    (Depgraph.successors dep (cn "owner", mn "poke"));
  Alcotest.(check (list class_name))
    "reachable classes" [ cn "owner"; cn "t"; cn "u" ]
    (Depgraph.reachable_classes dep (cn "owner") (mn "poke"))

let test_chains () =
  let schema =
    schema_of_source
      {|
class c is
  fields v : integer;
  method leaf is v := 1; end
end
class b is
  fields rc : c;
  method mid is send leaf to rc; end
end
class a is
  fields rb : b;
  method top is send mid to rb; end
end
|}
  in
  let dep = dep_of schema in
  Alcotest.(check (list class_name))
    "a.top reaches b and c" [ cn "a"; cn "b"; cn "c" ]
    (Depgraph.reachable_classes dep (cn "a") (mn "top"));
  Alcotest.(check (list class_name))
    "b.mid reaches c only" [ cn "b"; cn "c" ]
    (Depgraph.reachable_classes dep (cn "b") (mn "mid"))

let test_new_receiver () =
  let schema =
    schema_of_source
      {|
class t is
  fields x : integer;
  method init is x := 0; end
end
class maker is
  fields n : integer;
  method make is send init to (new t); end
end
|}
  in
  let dep = dep_of schema in
  Alcotest.(check (list site))
    "new t receiver" [ (cn "t", mn "init") ]
    (Depgraph.successors dep (cn "maker", mn "make"))

let test_dynamic_send_pessimises () =
  let schema =
    schema_of_source
      {|
class t is
  method tick is end
end
class u is
  fields z : integer;
end
class owner is
  fields n : integer;
  method poke(p) is send tick to p; end   -- receiver class unknown
  method calm is n := 1; end
end
|}
  in
  let dep = dep_of schema in
  Alcotest.(check (list class_name))
    "dynamic send reaches everything"
    [ cn "owner"; cn "t"; cn "u" ]
    (Depgraph.reachable_classes dep (cn "owner") (mn "poke"));
  Alcotest.(check (list class_name))
    "other methods unaffected" [ cn "owner" ]
    (Depgraph.reachable_classes dep (cn "owner") (mn "calm"))

let test_cycle_through_composition () =
  (* Two classes whose methods call each other through references. *)
  let schema =
    schema_of_source
      {|
class pong is
  fields back : ping; n : integer;
  method hit is
    n := n + 1;
    if n < 10 then send serve to back; end
  end
end
class ping is
  fields other : pong; m : integer;
  method serve is
    m := m + 1;
    if m < 10 then send hit to other; end
  end
end
|}
  in
  let dep = dep_of schema in
  Alcotest.(check (list class_name))
    "cycle closes" [ cn "ping"; cn "pong" ]
    (Depgraph.reachable_classes dep (cn "ping") (mn "serve"));
  let dot = Depgraph.to_dot dep in
  Alcotest.(check bool) "dot edge" true (contains dot "\"ping,serve\" -> \"pong,hit\"")

let suite =
  [
    case "paper example composition edges" test_paper_example;
    case "subclass receivers covered" test_subclass_receivers_covered;
    case "composition chains" test_chains;
    case "new as receiver" test_new_receiver;
    case "dynamic sends pessimise to the whole schema" test_dynamic_send_pessimises;
    case "cycles through composition" test_cycle_through_composition;
  ]
