(* Schema building, inheritance, linearisation and late binding. *)

open Tavcc_model
open Helpers

let decl ?(parents = []) ?(fields = []) ?(methods = []) name =
  {
    Schema.c_name = cn name;
    c_parents = List.map cn parents;
    c_fields = List.map (fun (f, ty) -> (fn f, ty)) fields;
    c_methods = methods;
  }

let meth ?(params = []) name = { Schema.m_name = mn name; m_params = params; m_body = () }

let build_exn decls =
  match Schema.build decls with
  | Ok s -> s
  | Error e -> Alcotest.failf "unexpected build error: %a" Schema.pp_error e

let expect_error decls pred descr =
  match Schema.build decls with
  | Ok _ -> Alcotest.failf "expected %s" descr
  | Error e ->
      if not (pred e) then Alcotest.failf "wrong error for %s: %a" descr Schema.pp_error e

let test_duplicate_class () =
  expect_error
    [ decl "a"; decl "a" ]
    (function Schema.Duplicate_class _ -> true | _ -> false)
    "duplicate class"

let test_unknown_parent () =
  expect_error
    [ decl "a" ~parents:[ "ghost" ] ]
    (function Schema.Unknown_parent _ -> true | _ -> false)
    "unknown parent"

let test_cycle () =
  expect_error
    [ decl "a" ~parents:[ "b" ]; decl "b" ~parents:[ "a" ] ]
    (function Schema.Inheritance_cycle _ -> true | _ -> false)
    "inheritance cycle"

let test_duplicate_field_same_class () =
  expect_error
    [ decl "a" ~fields:[ ("f", Value.Tint); ("f", Value.Tint) ] ]
    (function Schema.Duplicate_field _ -> true | _ -> false)
    "duplicate field in one class"

let test_duplicate_field_inherited () =
  expect_error
    [
      decl "a" ~fields:[ ("f", Value.Tint) ];
      decl "b" ~parents:[ "a" ] ~fields:[ ("f", Value.Tbool) ];
    ]
    (function Schema.Duplicate_field _ -> true | _ -> false)
    "field shadowing an inherited one"

let test_duplicate_method () =
  expect_error
    [ decl "a" ~methods:[ meth "m"; meth "m" ] ]
    (function Schema.Duplicate_method _ -> true | _ -> false)
    "duplicate method"

let test_unknown_ref_class () =
  expect_error
    [ decl "a" ~fields:[ ("f", Value.Tref (cn "ghost")) ] ]
    (function Schema.Unknown_field_class _ -> true | _ -> false)
    "reference to an unknown class"

let test_linearization_failure () =
  (* Classic C3 impossibility: d and e inherit (a, b) in opposite orders
     and f inherits both. *)
  expect_error
    [
      decl "a";
      decl "b";
      decl "d" ~parents:[ "a"; "b" ];
      decl "e" ~parents:[ "b"; "a" ];
      decl "f" ~parents:[ "d"; "e" ];
    ]
    (function Schema.Linearization_failure _ -> true | _ -> false)
    "C3 linearisation failure"

let test_chain_linearization () =
  let s = build_exn [ decl "a"; decl "b" ~parents:[ "a" ]; decl "c" ~parents:[ "b" ] ] in
  Alcotest.(check (list class_name))
    "c lin" [ cn "c"; cn "b"; cn "a" ] (Schema.linearization s (cn "c"));
  Alcotest.(check (list class_name)) "ancestors" [ cn "b"; cn "a" ] (Schema.ancestors s (cn "c"));
  Alcotest.(check bool) "is_ancestor a of c" true (Schema.is_ancestor s (cn "a") ~of_:(cn "c"));
  Alcotest.(check bool) "c not ancestor of a" false (Schema.is_ancestor s (cn "c") ~of_:(cn "a"))

let test_diamond_linearization () =
  let s =
    build_exn
      [
        decl "top" ~fields:[ ("t", Value.Tint) ];
        decl "left" ~parents:[ "top" ] ~fields:[ ("l", Value.Tint) ];
        decl "right" ~parents:[ "top" ] ~fields:[ ("r", Value.Tint) ];
        decl "bottom" ~parents:[ "left"; "right" ] ~fields:[ ("b", Value.Tint) ];
      ]
  in
  Alcotest.(check (list class_name))
    "C3 diamond" [ cn "bottom"; cn "left"; cn "right"; cn "top" ]
    (Schema.linearization s (cn "bottom"));
  (* The diamond top's field appears once; layout follows the reversed
     linearisation (most general class first). *)
  let fields = List.map (fun fd -> fd.Schema.f_name) (Schema.fields s (cn "bottom")) in
  Alcotest.(check (list field_name)) "fields once, general first"
    [ fn "t"; fn "r"; fn "l"; fn "b" ] fields

let test_field_layout () =
  let s =
    build_exn
      [
        decl "a" ~fields:[ ("f1", Value.Tint); ("f2", Value.Tbool) ];
        decl "b" ~parents:[ "a" ] ~fields:[ ("f3", Value.Tstring) ];
      ]
  in
  Alcotest.(check (option int)) "f1@a" (Some 0) (Schema.field_index s (cn "a") (fn "f1"));
  Alcotest.(check (option int)) "f3@b" (Some 2) (Schema.field_index s (cn "b") (fn "f3"));
  Alcotest.(check (option int)) "f3 not in a" None (Schema.field_index s (cn "a") (fn "f3"));
  let fd = Option.get (Schema.field_def s (cn "b") (fn "f1")) in
  Alcotest.check class_name "owner of f1 seen from b" (cn "a") fd.Schema.f_owner

let test_method_resolution () =
  let s =
    build_exn
      [
        decl "a" ~methods:[ meth "m"; meth "n" ];
        decl "b" ~parents:[ "a" ] ~methods:[ meth "m" (* override *); meth "p" ];
      ]
  in
  Alcotest.(check (list method_name)) "METHODS(b) sorted"
    [ mn "m"; mn "n"; mn "p" ] (Schema.methods s (cn "b"));
  let c, _ = Option.get (Schema.resolve s (cn "b") (mn "m")) in
  Alcotest.check class_name "override binds to b" (cn "b") c;
  let c, _ = Option.get (Schema.resolve s (cn "b") (mn "n")) in
  Alcotest.check class_name "inherited binds to a" (cn "a") c;
  Alcotest.(check bool) "unknown method" true (Schema.resolve s (cn "a") (mn "p") = None);
  (* Prefixed resolution from the ancestor skips the override. *)
  let c, _ = Option.get (Schema.resolve_from s (cn "a") (mn "m")) in
  Alcotest.check class_name "resolve_from a" (cn "a") c;
  Alcotest.(check bool) "own def in b" true (Schema.method_def_in s (cn "b") (mn "m") <> None);
  Alcotest.(check bool) "n not own in b" true (Schema.method_def_in s (cn "b") (mn "n") = None)

let test_domain () =
  let s =
    build_exn
      [
        decl "a";
        decl "b" ~parents:[ "a" ];
        decl "c" ~parents:[ "a" ];
        decl "d" ~parents:[ "b"; "c" ];
      ]
  in
  Alcotest.(check (list class_name)) "subclasses of a" [ cn "b"; cn "c" ] (Schema.subclasses s (cn "a"));
  Alcotest.(check (list class_name))
    "domain of a, no duplicates" [ cn "a"; cn "b"; cn "d"; cn "c" ] (Schema.domain s (cn "a"));
  Alcotest.(check (list class_name)) "domain of leaf" [ cn "d" ] (Schema.domain s (cn "d"))

let test_classes_topological () =
  let s = build_exn [ decl "c" ~parents:[ "b" ]; decl "b" ~parents:[ "a" ]; decl "a" ] in
  let order = Schema.classes s in
  let pos x = Option.get (List.find_index (Name.Class.equal (cn x)) order) in
  Alcotest.(check bool) "parents first" true (pos "a" < pos "b" && pos "b" < pos "c");
  Alcotest.(check int) "count" 3 (Schema.class_count s)

let test_map_bodies () =
  let d = decl "a" ~methods:[ { Schema.m_name = mn "m"; m_params = []; m_body = 21 } ] in
  let s = build_exn [ d ] in
  let s' = Schema.map_bodies (fun x -> x * 2) s in
  let _, md = Option.get (Schema.resolve s' (cn "a") (mn "m")) in
  Alcotest.(check int) "mapped" 42 md.Schema.m_body

let suite =
  [
    case "error: duplicate class" test_duplicate_class;
    case "error: unknown parent" test_unknown_parent;
    case "error: inheritance cycle" test_cycle;
    case "error: duplicate field (same class)" test_duplicate_field_same_class;
    case "error: duplicate field (inherited)" test_duplicate_field_inherited;
    case "error: duplicate method" test_duplicate_method;
    case "error: unknown reference class" test_unknown_ref_class;
    case "error: C3 failure" test_linearization_failure;
    case "linearisation: chain" test_chain_linearization;
    case "linearisation: diamond" test_diamond_linearization;
    case "fields: layout and owners" test_field_layout;
    case "methods: late binding and overrides" test_method_resolution;
    case "domain and subclasses" test_domain;
    case "classes are topologically ordered" test_classes_topological;
    case "map_bodies" test_map_bodies;
  ]
