test/test_adhoc.ml: Adhoc Alcotest Analysis Helpers Incremental Schema Tavcc_core Tavcc_lang Tavcc_model Value
