test/test_recovery.ml: Alcotest Hashtbl Helpers List Option QCheck QCheck_alcotest Recovery Store Tavcc_model Tavcc_recovery Tavcc_sim Value Wal
