test/test_lbr.ml: Alcotest Array Extraction Helpers Lbr Paper_example Tavcc_core
