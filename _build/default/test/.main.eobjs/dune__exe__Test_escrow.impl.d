test/test_escrow.ml: Alcotest Escrow Format Hashtbl Helpers List Option QCheck QCheck_alcotest String Tavcc_escrow Tavcc_sim
