test/test_check.ml: Alcotest Check Format Helpers List String Tavcc_core Tavcc_lang
