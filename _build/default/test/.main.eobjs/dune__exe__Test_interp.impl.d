test/test_interp.ml: Alcotest Helpers Interp List Name Printf Store Tavcc_lang Tavcc_model Value
