test/test_model.ml: Alcotest Helpers Name Oid Tavcc_model Value
