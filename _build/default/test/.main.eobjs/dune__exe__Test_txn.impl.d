test/test_txn.ml: Alcotest Helpers List Oid Store Tavcc_model Tavcc_txn Value
