test/test_trace.ml: Alcotest Format Helpers List Printf Store Tavcc_cc Tavcc_core Tavcc_model Tavcc_sim Value
