test/test_extraction.ml: Access_vector Alcotest Extraction Helpers List Mode Name Paper_example Site Tavcc_core Tavcc_model
