test/test_incremental.ml: Access_vector Alcotest Analysis Ast Helpers Incremental List Mode Name Paper_example Parser Printf QCheck QCheck_alcotest Schema Tavcc_core Tavcc_lang Tavcc_model Tavcc_sim
