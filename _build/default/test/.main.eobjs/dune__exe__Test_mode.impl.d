test/test_mode.ml: Alcotest Format Helpers List Mode Tavcc_core
