test/test_pretty.ml: Alcotest Ast Format Helpers Lexer List Name Parser Pretty QCheck QCheck_alcotest Schema Tavcc_core Tavcc_lang Tavcc_model Value
