test/test_modes_table.ml: Access_vector Alcotest Analysis Array Format Helpers List Modes_table Paper_example Printf QCheck QCheck_alcotest Tavcc_core Tavcc_model Tavcc_sim
