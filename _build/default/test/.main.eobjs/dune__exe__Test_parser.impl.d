test/test_parser.ml: Alcotest Ast Helpers List Option Parser Schema Tavcc_lang Tavcc_model Value
