test/test_workload.ml: Alcotest Check Format Fun Helpers Interp List Name Printf Schema Store Tavcc_core Tavcc_lang Tavcc_model Tavcc_sim Value
