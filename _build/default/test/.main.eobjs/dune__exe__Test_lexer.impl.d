test/test_lexer.ml: Alcotest Format Helpers Lexer List Tavcc_lang Token
