test/test_engine.ml: Alcotest Format Helpers List Printf QCheck QCheck_alcotest Store Tavcc_cc Tavcc_core Tavcc_model Tavcc_sim Tavcc_txn Value
