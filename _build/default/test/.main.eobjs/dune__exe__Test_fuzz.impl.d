test/test_fuzz.ml: Access_vector Analysis Ast Depgraph Extraction Helpers Incremental List Modes_table Name Printf QCheck QCheck_alcotest Schema Tav Tavcc_core Tavcc_lang Tavcc_model Tavcc_sim Value
