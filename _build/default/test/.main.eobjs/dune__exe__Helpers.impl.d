test/helpers.ml: Alcotest Ast Check Format Name Oid Parser Pretty Schema String Tavcc_core Tavcc_lang Tavcc_model Value
