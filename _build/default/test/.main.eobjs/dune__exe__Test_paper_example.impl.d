test/test_paper_example.ml: Alcotest Helpers List Paper_example Printf Report Tavcc_core Tavcc_model
