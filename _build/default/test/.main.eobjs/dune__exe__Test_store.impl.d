test/test_store.ml: Alcotest Helpers Option Schema Store Tavcc_model Value
