test/test_access_vector.ml: Access_vector Alcotest Format Helpers List Mode QCheck QCheck_alcotest Tavcc_core Tavcc_model
