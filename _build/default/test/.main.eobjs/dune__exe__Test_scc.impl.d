test/test_scc.ml: Alcotest Array Helpers Int List Printf QCheck QCheck_alcotest Scc String Tavcc_core
