test/test_lock.ml: Alcotest Compat Format Helpers List Lock_table QCheck QCheck_alcotest Resource Tavcc_lock Tavcc_model Tavcc_sim
