test/test_tav.ml: Access_vector Alcotest Extraction Format Helpers List Mode Name Paper_example QCheck QCheck_alcotest Schema Tav Tavcc_core Tavcc_model Tavcc_sim
