test/test_new_schemes.ml: Alcotest Helpers List Lock_table Name Oid Printf Resource Store Tavcc_cc Tavcc_core Tavcc_lock Tavcc_model Tavcc_sim Value
