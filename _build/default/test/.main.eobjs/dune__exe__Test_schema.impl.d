test/test_schema.ml: Alcotest Helpers List Name Option Schema Tavcc_model Value
