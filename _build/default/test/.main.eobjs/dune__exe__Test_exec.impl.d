test/test_exec.ml: Alcotest Exec Helpers List Lock_table Lockset Name Pred Printf Resource Rw_instance Scheme Store Tav_modes Tavcc_cc Tavcc_core Tavcc_lock Tavcc_model Tavcc_txn Value
