test/main.mli:
