test/test_pred.ml: Alcotest Helpers List Pred Printf QCheck QCheck_alcotest Store Tavcc_cc Tavcc_core Tavcc_lock Tavcc_model Tavcc_sim Value
