test/test_policies.ml: Alcotest Helpers List Printf Store Tavcc_cc Tavcc_core Tavcc_model Tavcc_sim Tavcc_txn Value
