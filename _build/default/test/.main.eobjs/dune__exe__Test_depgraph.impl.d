test/test_depgraph.ml: Alcotest Depgraph Extraction Helpers Paper_example Tavcc_core
