test/test_predefined.ml: Access_vector Alcotest Analysis Depgraph Helpers Interp List Mode Predefined Store Tavcc_core Tavcc_lang Tavcc_model Value
