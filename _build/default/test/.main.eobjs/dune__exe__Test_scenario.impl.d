test/test_scenario.ml: Alcotest Array Field_runtime Helpers List Printf Relational Rw_instance Rw_toponly Scenario Tav_modes Tavcc_cc
