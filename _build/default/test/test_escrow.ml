(* The Escrow transactional method (O'Neil), ref. [20] of the paper. *)

open Tavcc_escrow
open Helpers

let outcome : Escrow.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf o ->
      Format.pp_print_string ppf
        (match o with
        | Escrow.Reserved -> "reserved"
        | Escrow.Would_underflow -> "underflow"
        | Escrow.Would_overflow -> "overflow"))
    ( = )

let test_basic_reserve_commit () =
  let e = Escrow.create ~low:0 ~high:100 50 in
  Alcotest.check outcome "t1 +10" Escrow.Reserved (Escrow.reserve e ~txn:1 ~delta:10);
  Alcotest.check outcome "t2 -20" Escrow.Reserved (Escrow.reserve e ~txn:2 ~delta:(-20));
  Alcotest.(check int) "committed untouched" 50 (Escrow.committed e);
  Alcotest.(check int) "inf sees decrements" 30 (Escrow.inf e);
  Alcotest.(check int) "sup sees increments" 60 (Escrow.sup e);
  Alcotest.(check int) "t1 reads own escrow" 60 (Escrow.read e ~txn:1);
  Alcotest.(check int) "t2 reads own escrow" 30 (Escrow.read e ~txn:2);
  Alcotest.(check int) "t3 reads committed" 50 (Escrow.read e ~txn:3);
  Escrow.commit e ~txn:1;
  Alcotest.(check int) "t1 applied" 60 (Escrow.committed e);
  Escrow.abort e ~txn:2;
  Alcotest.(check int) "t2 discarded" 60 (Escrow.committed e);
  Alcotest.(check (list int)) "no pending left" [] (Escrow.pending_txns e)

let test_worst_case_bounds () =
  (* 50 in [0,100]: +30 and +30 cannot both be promised. *)
  let e = Escrow.create ~low:0 ~high:100 50 in
  Alcotest.check outcome "first +30" Escrow.Reserved (Escrow.reserve e ~txn:1 ~delta:30);
  Alcotest.check outcome "second +30 refused" Escrow.Would_overflow
    (Escrow.reserve e ~txn:2 ~delta:30);
  (* But a decrement is still fine: worst cases are per side. *)
  Alcotest.check outcome "-50 ok" Escrow.Reserved (Escrow.reserve e ~txn:2 ~delta:(-50));
  Alcotest.check outcome "-1 more underflows" Escrow.Would_underflow
    (Escrow.reserve e ~txn:3 ~delta:(-1));
  (* The refused increment becomes possible once t1 aborts. *)
  Escrow.abort e ~txn:1;
  Alcotest.check outcome "+30 after abort" Escrow.Reserved (Escrow.reserve e ~txn:3 ~delta:30)

let test_same_txn_accumulates () =
  let e = Escrow.create ~low:0 ~high:10 5 in
  Alcotest.check outcome "+3" Escrow.Reserved (Escrow.reserve e ~txn:1 ~delta:3);
  Alcotest.check outcome "+2" Escrow.Reserved (Escrow.reserve e ~txn:1 ~delta:2);
  Alcotest.check outcome "+1 overflows" Escrow.Would_overflow (Escrow.reserve e ~txn:1 ~delta:1);
  (* A transaction may net itself back down. *)
  Alcotest.check outcome "-4 nets to +1" Escrow.Reserved (Escrow.reserve e ~txn:1 ~delta:(-4));
  Alcotest.(check int) "net pending" 1 (Escrow.pending_of e ~txn:1);
  Escrow.commit e ~txn:1;
  Alcotest.(check int) "commit nets" 6 (Escrow.committed e)

let test_create_validation () =
  check_raises_invalid "value out of bounds" (fun () -> Escrow.create ~low:0 ~high:10 11);
  check_raises_invalid "low > high" (fun () -> Escrow.create ~low:5 ~high:1 3)

let test_commit_without_reservation () =
  let e = Escrow.create 0 in
  Escrow.commit e ~txn:9;
  Alcotest.(check int) "no-op" 0 (Escrow.committed e)

(* Property: under any interleaving of reserve/commit/abort, the
   committed value stays within bounds, equals the sum of committed
   deltas, and inf/sup bracket it. *)
let prop_invariants =
  QCheck.Test.make ~count:300 ~name:"escrow invariants under random interleavings"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let low = -Tavcc_sim.Rng.int rng 50 in
      let high = Tavcc_sim.Rng.int rng 50 in
      let v0 = low + Tavcc_sim.Rng.int rng (high - low + 1) in
      let e = Escrow.create ~low ~high v0 in
      let applied = ref v0 in
      let ok = ref true in
      let live = Hashtbl.create 8 in
      for step = 1 to 60 do
        let txn = Tavcc_sim.Rng.int rng 6 in
        (match Tavcc_sim.Rng.int rng 4 with
        | 0 | 1 ->
            let delta = Tavcc_sim.Rng.int rng 21 - 10 in
            (match Escrow.reserve e ~txn ~delta with
            | Escrow.Reserved ->
                Hashtbl.replace live txn
                  (delta + Option.value ~default:0 (Hashtbl.find_opt live txn))
            | Escrow.Would_underflow | Escrow.Would_overflow -> ())
        | 2 ->
            (match Hashtbl.find_opt live txn with
            | Some d ->
                applied := !applied + d;
                Hashtbl.remove live txn
            | None -> ());
            Escrow.commit e ~txn
        | _ ->
            Hashtbl.remove live txn;
            Escrow.abort e ~txn);
        ignore step;
        let c = Escrow.committed e in
        if not (c = !applied && c >= low && c <= high
                && Escrow.inf e >= low && Escrow.sup e <= high
                && Escrow.inf e <= c && c <= Escrow.sup e)
        then ok := false
      done;
      !ok)

(* Property: any subset of reserved transactions can commit in any
   order without violating the bounds — the defining guarantee. *)
let prop_any_subset_commits =
  QCheck.Test.make ~count:200 ~name:"any subset of reservations may commit"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let e = Escrow.create ~low:0 ~high:40 20 in
      for txn = 1 to 8 do
        ignore (Escrow.reserve e ~txn ~delta:(Tavcc_sim.Rng.int rng 21 - 10))
      done;
      let subset = List.filter (fun _ -> Tavcc_sim.Rng.bool rng) (Escrow.pending_txns e) in
      let order = Tavcc_sim.Rng.shuffle rng subset in
      List.iter (fun txn -> Escrow.commit e ~txn) order;
      List.iter (fun txn -> Escrow.abort e ~txn) (Escrow.pending_txns e);
      Escrow.committed e >= 0 && Escrow.committed e <= 40)

let test_table () =
  let tbl = Escrow.Table.create String.equal Hashtbl.hash in
  Escrow.Table.register tbl "a" (Escrow.create ~low:0 ~high:10 5);
  Escrow.Table.register tbl "b" (Escrow.create ~low:0 ~high:10 5);
  check_raises_invalid "double register" (fun () ->
      Escrow.Table.register tbl "a" (Escrow.create 0));
  Alcotest.check outcome "reserve a" Escrow.Reserved
    (Escrow.Table.reserve tbl "a" ~txn:1 ~delta:2);
  Alcotest.check outcome "reserve b" Escrow.Reserved
    (Escrow.Table.reserve tbl "b" ~txn:1 ~delta:(-3));
  Escrow.Table.commit_all tbl ~txn:1;
  Alcotest.(check int) "a committed" 7 (Escrow.committed (Option.get (Escrow.Table.find tbl "a")));
  Alcotest.(check int) "b committed" 2 (Escrow.committed (Option.get (Escrow.Table.find tbl "b")));
  check_raises_invalid "unregistered" (fun () ->
      Escrow.Table.reserve tbl "zz" ~txn:1 ~delta:1)

let suite =
  [
    case "reserve, read, commit, abort" test_basic_reserve_commit;
    case "worst-case bound checking" test_worst_case_bounds;
    case "same transaction accumulates" test_same_txn_accumulates;
    case "creation validation" test_create_validation;
    case "commit without reservation" test_commit_without_reservation;
    QCheck_alcotest.to_alcotest prop_invariants;
    QCheck_alcotest.to_alcotest prop_any_subset_commits;
    case "keyed table" test_table;
  ]
