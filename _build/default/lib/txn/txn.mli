(** Transactions under strict two-phase locking.

    A transaction accumulates an undo log of field-level before-images
    while it runs; {!abort} replays it backwards.  This realises the
    paper's recovery remark: access vectors tell {e a priori} which fields
    a method may write, so recovery needs only the projection of the
    instance on the written fields — no programmer-supplied inverse
    operations (problem P1). *)

open Tavcc_model

type state = Active | Committed | Aborted

type undo_entry = { u_oid : Oid.t; u_field : Name.Field.t; u_before : Value.t }

type t = {
  id : int;
  birth : int;  (** logical timestamp; lower = older (wound-wait style victim choice uses it) *)
  mutable state : state;
  mutable undo : undo_entry list;  (** newest first *)
  mutable restarts : int;  (** times this transaction was aborted and restarted *)
}

val make : id:int -> birth:int -> t

val log_write : t -> Oid.t -> Name.Field.t -> before:Value.t -> unit
(** Records a before-image.  Only the {e first} image per (oid, field) pair
    matters for undo correctness; all are kept and replayed backwards,
    which yields the same result. *)

val undo_all : 'b Store.t -> t -> unit
(** Replays the undo log backwards against the store and clears it.
    Instances that no longer exist are skipped (they were created by this
    very transaction). *)

val commit : t -> unit
(** @raise Invalid_argument if the transaction is not active *)

val abort : 'b Store.t -> t -> unit
(** Undoes and marks aborted.
    @raise Invalid_argument if the transaction is not active *)

val reset_for_restart : t -> t
(** A fresh active incarnation with the same id and birth (the paper's
    protocols restart the victim after a deadlock abort), with [restarts]
    incremented. *)

val pp_state : Format.formatter -> state -> unit
