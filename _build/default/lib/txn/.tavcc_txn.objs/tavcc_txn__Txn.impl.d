lib/txn/txn.ml: Format List Name Oid Printf Store Tavcc_model Value
