lib/txn/txn.mli: Format Name Oid Store Tavcc_model Value
