lib/txn/history.ml: Array Format Hashtbl List Name Oid Tavcc_model
