lib/txn/history.mli: Format Name Oid Tavcc_model
