open Tavcc_model

type state = Active | Committed | Aborted
type undo_entry = { u_oid : Oid.t; u_field : Name.Field.t; u_before : Value.t }

type t = {
  id : int;
  birth : int;
  mutable state : state;
  mutable undo : undo_entry list;
  mutable restarts : int;
}

let make ~id ~birth = { id; birth; state = Active; undo = []; restarts = 0 }

let log_write t oid field ~before =
  t.undo <- { u_oid = oid; u_field = field; u_before = before } :: t.undo

let undo_all store t =
  (* [t.undo] is newest first, which is exactly backward replay order. *)
  List.iter
    (fun e -> if Store.exists store e.u_oid then Store.write store e.u_oid e.u_field e.u_before)
    t.undo;
  t.undo <- []

let require_active t =
  if t.state <> Active then
    invalid_arg (Printf.sprintf "Txn: transaction %d is not active" t.id)

let commit t =
  require_active t;
  t.undo <- [];
  t.state <- Committed

let abort store t =
  require_active t;
  undo_all store t;
  t.state <- Aborted

let reset_for_restart t =
  { id = t.id; birth = t.birth; state = Active; undo = []; restarts = t.restarts + 1 }

let pp_state ppf s =
  Format.pp_print_string ppf
    (match s with Active -> "active" | Committed -> "committed" | Aborted -> "aborted")
