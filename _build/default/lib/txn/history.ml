open Tavcc_model

type op =
  | Begin of int
  | Read of int * Oid.t * Name.Field.t
  | Write of int * Oid.t * Name.Field.t
  | Commit of int
  | Abort of int

let txn_of = function
  | Begin t | Read (t, _, _) | Write (t, _, _) | Commit t | Abort t -> t

let pp_op ppf = function
  | Begin t -> Format.fprintf ppf "b%d" t
  | Read (t, o, f) -> Format.fprintf ppf "r%d[%a.%a]" t Oid.pp o Name.Field.pp f
  | Write (t, o, f) -> Format.fprintf ppf "w%d[%a.%a]" t Oid.pp o Name.Field.pp f
  | Commit t -> Format.fprintf ppf "c%d" t
  | Abort t -> Format.fprintf ppf "a%d" t

type t = { mutable ops : op list (* newest first *); mutable n : int }

let create () = { ops = []; n = 0 }

let record t op =
  t.ops <- op :: t.ops;
  t.n <- t.n + 1

let ops t = List.rev t.ops
let length t = t.n

let committed t =
  List.rev (List.filter_map (function Commit x -> Some x | _ -> None) t.ops)

let precedence_edges t =
  let committed = committed t in
  let is_committed x = List.mem x committed in
  let arr = Array.of_list (ops t) in
  let n = Array.length arr in
  (* A transaction aborted by deadlock restarts under the same id; only the
     operations of its final (committed) incarnation — those after its last
     Abort record — take part in the conflict graph. *)
  let last_abort = Hashtbl.create 8 in
  Array.iteri
    (fun i op -> match op with Abort x -> Hashtbl.replace last_abort x i | _ -> ())
    arr;
  let live x i =
    match Hashtbl.find_opt last_abort x with None -> true | Some j -> i > j
  in
  let edges = ref [] in
  let add a b = if a <> b && not (List.mem (a, b) !edges) then edges := (a, b) :: !edges in
  for i = 0 to n - 1 do
    match arr.(i) with
    | (Read (a, o, f) | Write (a, o, f)) when is_committed a && live a i ->
        let a_writes = match arr.(i) with Write _ -> true | _ -> false in
        for j = i + 1 to n - 1 do
          match arr.(j) with
          | (Read (b, o', f') | Write (b, o', f'))
            when is_committed b && live b j && b <> a && Oid.equal o o' && Name.Field.equal f f'
            ->
              let b_writes = match arr.(j) with Write _ -> true | _ -> false in
              if a_writes || b_writes then add a b
          | _ -> ()
        done
    | _ -> ()
  done;
  !edges

let topo_sort nodes edges =
  let succ v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
  let temp = Hashtbl.create 16 in
  let perm = Hashtbl.create 16 in
  let order = ref [] in
  let exception Cycle in
  let rec visit v =
    if Hashtbl.mem perm v then ()
    else if Hashtbl.mem temp v then raise Cycle
    else begin
      Hashtbl.replace temp v ();
      List.iter visit (succ v);
      Hashtbl.remove temp v;
      Hashtbl.replace perm v ();
      order := v :: !order
    end
  in
  try
    List.iter visit nodes;
    Some !order
  with Cycle -> None

let equivalent_serial_order t = topo_sort (committed t) (precedence_edges t)
let conflict_serializable t = equivalent_serial_order t <> None

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp_op ppf (ops t)
