open Tavcc_model

type t = Name.Class.t * Name.Method.t

let equal (c, m) (c', m') = Name.Class.equal c c' && Name.Method.equal m m'

let compare (c, m) (c', m') =
  match Name.Class.compare c c' with 0 -> Name.Method.compare m m' | n -> n

let pp ppf (c, m) = Format.fprintf ppf "(%a,%a)" Name.Class.pp c Name.Method.pp m

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
