open Tavcc_model
module FN = Name.Field

(* Canonical representation: no [Null] entry is ever stored. *)
type t = Mode.t FN.Map.t

let empty = FN.Map.empty
let is_empty = FN.Map.is_empty

let add av f m =
  match m with
  | Mode.Null -> av
  | _ ->
      FN.Map.update f
        (function None -> Some m | Some m' -> Some (Mode.join m m'))
        av

let set av f m = match m with Mode.Null -> FN.Map.remove f av | _ -> FN.Map.add f m av
let of_list l = List.fold_left (fun av (f, m) -> add av f m) empty l
let to_list av = FN.Map.bindings av
let get av f = match FN.Map.find_opt f av with Some m -> m | None -> Mode.Null

let join a b =
  FN.Map.union (fun _ m m' -> Some (Mode.join m m')) a b

let commutes a b =
  (* Only common fields can be incompatible: [Mode.compatible Null _] always
     holds, so fields present in a single vector never break definition 5. *)
  FN.Map.for_all (fun f m -> Mode.compatible m (get b f)) a

let fields av = List.map fst (FN.Map.bindings av)

let read_fields av =
  FN.Map.fold (fun f m acc -> if Mode.equal m Mode.Read then f :: acc else acc) av []
  |> List.rev

let write_fields av =
  FN.Map.fold (fun f m acc -> if Mode.equal m Mode.Write then f :: acc else acc) av []
  |> List.rev

let restrict av keep = FN.Map.filter (fun f _ -> FN.Set.mem f keep) av
let equal a b = FN.Map.equal Mode.equal a b
let compare a b = FN.Map.compare Mode.compare a b

let pp ppf av =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (f, m) -> Format.fprintf ppf "%a %a" Mode.pp m FN.pp f))
    (to_list av)

let pp_over fds ppf av =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (fd : Schema.field_def) ->
         Format.fprintf ppf "%a %a" Mode.pp (get av fd.Schema.f_name) FN.pp fd.Schema.f_name))
    fds
