open Tavcc_model
open Tavcc_lang
module CN = Name.Class
module MN = Name.Method

type edit =
  | Add_method of CN.t * Ast.body Schema.method_def
  | Remove_method of CN.t * MN.t
  | Update_method of CN.t * Ast.body Schema.method_def

type error =
  | Unknown_class of CN.t
  | No_such_definition of CN.t * MN.t
  | Already_defined of CN.t * MN.t
  | Schema_error of Schema.error

let pp_error ppf = function
  | Unknown_class c -> Format.fprintf ppf "unknown class %a" CN.pp c
  | No_such_definition (c, m) ->
      Format.fprintf ppf "class %a does not define method %a itself" CN.pp c MN.pp m
  | Already_defined (c, m) ->
      Format.fprintf ppf "class %a already defines method %a" CN.pp c MN.pp m
  | Schema_error e -> Schema.pp_error ppf e

let edited_class = function
  | Add_method (c, _) | Update_method (c, _) -> c
  | Remove_method (c, _) -> c

let ( let* ) = Result.bind

let edit_decl edit (decl : Ast.body Schema.class_decl) =
  let has m = List.exists (fun md -> MN.equal md.Schema.m_name m) decl.Schema.c_methods in
  match edit with
  | Add_method (_, md) ->
      if has md.Schema.m_name then Error (Already_defined (decl.Schema.c_name, md.Schema.m_name))
      else Ok { decl with Schema.c_methods = decl.Schema.c_methods @ [ md ] }
  | Remove_method (_, m) ->
      if not (has m) then Error (No_such_definition (decl.Schema.c_name, m))
      else
        Ok
          {
            decl with
            Schema.c_methods =
              List.filter (fun md -> not (MN.equal md.Schema.m_name m)) decl.Schema.c_methods;
          }
  | Update_method (_, md) ->
      if not (has md.Schema.m_name) then
        Error (No_such_definition (decl.Schema.c_name, md.Schema.m_name))
      else
        Ok
          {
            decl with
            Schema.c_methods =
              List.map
                (fun old -> if MN.equal old.Schema.m_name md.Schema.m_name then md else old)
                decl.Schema.c_methods;
          }

let apply_edit schema edit =
  let target = edited_class edit in
  if not (Schema.mem schema target) then Error (Unknown_class target)
  else
    let* decls =
      List.fold_left
        (fun acc decl ->
          let* acc = acc in
          if CN.equal decl.Schema.c_name target then
            let* decl = edit_decl edit decl in
            Ok (decl :: acc)
          else Ok (decl :: acc))
        (Ok []) (Schema.decls schema)
    in
    Result.map_error (fun e -> Schema_error e) (Schema.build (List.rev decls))

let affected_classes schema c = Schema.domain schema c

let recompile an edit =
  let old_schema = Analysis.schema an in
  let* schema = apply_edit old_schema edit in
  let target = edited_class edit in
  let affected = affected_classes schema target in
  let extraction = Extraction.update_classes (Analysis.extraction an) schema affected in
  Ok (Analysis.compile_classes ~reuse:an ~schema ~extraction affected)
