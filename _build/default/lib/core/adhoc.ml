open Tavcc_model
module CN = Name.Class
module MN = Name.Method

type t = (MN.t * MN.t * bool) list CN.Map.t

let empty = CN.Map.empty

let declare t cls pairs =
  CN.Map.update cls
    (function None -> Some pairs | Some old -> Some (old @ pairs))
    t

let pairs t cls = Option.value ~default:[] (CN.Map.find_opt cls t)

(* An assertion written at [decl_cls] about (m, m') applies to instances
   of [cls] when both methods still resolve to the code visible from
   [decl_cls] — overriding either invalidates the semantic claim. *)
let still_describes schema decl_cls cls m =
  match (Schema.resolve schema cls m, Schema.resolve_from schema decl_cls m) with
  | Some (d1, _), Some (d2, _) -> CN.equal d1 d2
  | _ -> false

let lookup t schema cls m m' =
  List.find_map
    (fun decl_cls ->
      List.fold_left
        (fun acc (a, b, commute) ->
          let matches =
            (MN.equal a m && MN.equal b m') || (MN.equal a m' && MN.equal b m)
          in
          if
            matches
            && still_describes schema decl_cls cls m
            && still_describes schema decl_cls cls m'
          then Some commute
          else acc)
        None (pairs t decl_cls))
    (Schema.linearization schema cls)

let apply t schema cls table =
  let methods = Modes_table.methods table in
  let result = ref table in
  Array.iteri
    (fun i m ->
      Array.iteri
        (fun j m' ->
          if j >= i then
            match lookup t schema cls m m' with
            | Some b -> result := Modes_table.with_commute !result i j b
            | None -> ())
        methods)
    methods;
  !result
