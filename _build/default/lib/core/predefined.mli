(** Predefined classes "delivered with high commutativity performances".

    Sec. 3 of the paper: predefined types — it names the Integer type
    and the Collection class — should ship with hand-written ad hoc
    commutativity next to the automatic analysis.  This module is that
    shipment: ODML sources for a bounded counter and a linked-list
    collection, together with the {!Adhoc} declarations their semantics
    justify.

    Use {!with_predefined} to prepend the sources to a user schema and
    obtain the merged ad hoc registry. *)

open Tavcc_model
open Tavcc_lang

val counter_source : string
(** [counter]: field [n]; methods [inc(d)], [dec(d)], [get].  Ad hoc:
    [inc]/[dec] commute among themselves and each other ([get] does
    not — a read must still serialise against updates). *)

val collection_source : string
(** [collection] over [cell]s (a singly linked list): [insert(v)] at the
    head, [remove_first], [total] (recursive sum across cells),
    [size].  Ad hoc: [insert]/[insert] commute (bag semantics — the
    order of insertions is unobservable through the shipped readers
    except transiently). *)

val sources : string
(** Both classes, concatenated. *)

val adhoc : Adhoc.t
(** The declarations for every predefined class. *)

val counter : Name.Class.t
val collection : Name.Class.t
val cell : Name.Class.t

val with_predefined :
  string -> (Ast.body Schema.t * Adhoc.t, string) result
(** [with_predefined user_source] parses the predefined classes followed
    by the user's, builds and checks the schema, and returns it with the
    predefined ad hoc registry (extend it with {!Adhoc.declare} for user
    classes). *)
