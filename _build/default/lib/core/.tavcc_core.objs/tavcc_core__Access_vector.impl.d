lib/core/access_vector.ml: Format List Mode Name Schema Tavcc_model
