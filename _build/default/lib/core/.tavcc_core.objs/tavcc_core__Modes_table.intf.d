lib/core/modes_table.mli: Access_vector Format Name Tavcc_model
