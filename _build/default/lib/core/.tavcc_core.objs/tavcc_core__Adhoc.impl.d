lib/core/adhoc.ml: Array List Modes_table Name Option Schema Tavcc_model
