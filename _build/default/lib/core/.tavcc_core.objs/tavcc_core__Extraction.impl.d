lib/core/extraction.ml: Access_vector Ast Format List Mode Name Schema Site Tavcc_lang Tavcc_model Value
