lib/core/report.ml: Access_vector Analysis Buffer Format Lbr List Mode Modes_table Name Paper_example Printf Schema String Tavcc_lang Tavcc_model
