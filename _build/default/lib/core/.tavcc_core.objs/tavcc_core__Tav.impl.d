lib/core/tav.ml: Access_vector Array Extraction Lbr List Name Scc Schema Tavcc_model
