lib/core/predefined.ml: Adhoc Check Format Lexer Name Parser Schema Tavcc_lang Tavcc_model Token
