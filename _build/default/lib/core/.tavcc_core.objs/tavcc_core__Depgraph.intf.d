lib/core/depgraph.mli: Extraction Name Site Tavcc_model
