lib/core/report.mli: Analysis Name Tavcc_model
