lib/core/modes_table.ml: Access_vector Array Format List Name Printf String Tavcc_model
