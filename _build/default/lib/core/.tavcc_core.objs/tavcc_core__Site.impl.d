lib/core/site.ml: Format Map Name Set Tavcc_model
