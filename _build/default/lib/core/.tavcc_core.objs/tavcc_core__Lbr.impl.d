lib/core/lbr.ml: Array Buffer Extraction Format Int List Name Printf Schema Site Tavcc_model
