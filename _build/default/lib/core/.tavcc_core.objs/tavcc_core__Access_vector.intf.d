lib/core/access_vector.mli: Format Mode Name Schema Tavcc_model
