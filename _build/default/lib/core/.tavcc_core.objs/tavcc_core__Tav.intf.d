lib/core/tav.mli: Access_vector Extraction Lbr Name Tavcc_model
