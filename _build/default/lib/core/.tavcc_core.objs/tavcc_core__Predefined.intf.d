lib/core/predefined.mli: Adhoc Ast Name Schema Tavcc_lang Tavcc_model
