lib/core/scc.ml: Array
