lib/core/paper_example.mli: Analysis Ast Name Schema Tavcc_lang Tavcc_model
