lib/core/extraction.mli: Access_vector Ast Name Schema Site Tavcc_lang Tavcc_model
