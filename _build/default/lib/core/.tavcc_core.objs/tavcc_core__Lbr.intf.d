lib/core/lbr.mli: Extraction Format Name Site Tavcc_model
