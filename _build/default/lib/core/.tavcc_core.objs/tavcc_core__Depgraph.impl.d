lib/core/depgraph.ml: Array Buffer Extraction Lbr List Name Printf Schema Site Tavcc_model
