lib/core/analysis.mli: Access_vector Adhoc Ast Extraction Lbr Modes_table Name Schema Tavcc_lang Tavcc_model
