lib/core/paper_example.ml: Analysis Check Format Name Parser Schema Tavcc_lang Tavcc_model
