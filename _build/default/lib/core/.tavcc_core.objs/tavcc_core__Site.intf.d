lib/core/site.mli: Format Map Name Set Tavcc_model
