lib/core/scc.mli:
