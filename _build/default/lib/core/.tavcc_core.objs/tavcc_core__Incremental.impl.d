lib/core/incremental.ml: Analysis Ast Extraction Format List Name Result Schema Tavcc_lang Tavcc_model
