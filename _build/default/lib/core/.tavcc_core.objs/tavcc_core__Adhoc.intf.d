lib/core/adhoc.mli: Modes_table Name Schema Tavcc_model
