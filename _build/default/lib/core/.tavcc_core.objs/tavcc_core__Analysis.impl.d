lib/core/analysis.ml: Access_vector Adhoc Array Ast Extraction Format Lbr List Modes_table Name Schema Tav Tavcc_lang Tavcc_model
