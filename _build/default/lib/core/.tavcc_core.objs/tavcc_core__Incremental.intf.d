lib/core/incremental.mli: Analysis Ast Format Name Schema Tavcc_lang Tavcc_model
