(** Incremental recompilation under method-level schema edits.

    Sec. 3 of the paper argues that automating commutativity matters
    precisely because "methods are frequently added, removed, or
    updated".  This module makes the corresponding maintenance operation
    cheap: after an edit confined to the method set of one class [C],
    only the classes of the domain rooted at [C] can see their late
    bindings, transitive access vectors or commutativity relations
    change —

    - a vertex [(C', M')] appears in the LBR graph of a class [D] only
      when [C' = D] or [C'] is an ancestor of [D] reached by prefixed
      calls, so an edit in [C] can only influence graphs of classes that
      inherit from (or are) [C];
    - field sets and ancestor chains are untouched by method edits, so
      extraction results of every other defining site stay valid.

    [recompile] therefore rebuilds the schema, re-extracts the edited
    class's own methods, and recomputes graphs/TAVs/matrices for
    [domain(C)] alone, splicing everything else from the previous
    analysis.  Equivalence with a full {!Analysis.compile} is
    property-tested; bench E10 measures the saving. *)

open Tavcc_model
open Tavcc_lang

type edit =
  | Add_method of Name.Class.t * Ast.body Schema.method_def
      (** a brand new method, or an override of an inherited one *)
  | Remove_method of Name.Class.t * Name.Method.t
      (** removes the definition written in that class *)
  | Update_method of Name.Class.t * Ast.body Schema.method_def
      (** replaces the body/parameters of a method defined in that class *)

type error =
  | Unknown_class of Name.Class.t
  | No_such_definition of Name.Class.t * Name.Method.t
      (** removing/updating a method the class does not itself define *)
  | Already_defined of Name.Class.t * Name.Method.t
      (** adding a method the class already defines *)
  | Schema_error of Schema.error

val pp_error : Format.formatter -> error -> unit

val edited_class : edit -> Name.Class.t

val apply_edit :
  Ast.body Schema.t -> edit -> (Ast.body Schema.t, error) result
(** The edited schema (a full, validated rebuild of the declarations). *)

val affected_classes : 'b Schema.t -> Name.Class.t -> Name.Class.t list
(** [domain(C)] — the classes whose analysis an edit in [C] may change. *)

val recompile : Analysis.t -> edit -> (Analysis.t, error) result
(** Incremental pipeline; observationally equal to
    [Analysis.compile (apply_edit schema edit)]. *)
