(** Regeneration of the paper's printed artefacts.

    Each function renders, from the live implementation, one table or
    figure of the paper; the bench harness prints them side by side with
    the expected content, and EXPERIMENTS.md records the comparison. *)

open Tavcc_model

val table1 : unit -> string
(** Table 1: the classical compatibility relation on
    {Null, Read, Write}. *)

val figure1 : unit -> string
(** Figure 1: the example schema, pretty-printed from the parsed AST. *)

val figure2 : unit -> string
(** Figure 2: the late-binding resolution graph of class [c2] of the
    example, one edge per line. *)

val table2 : unit -> string
(** Table 2: the commutativity relation of class [c2] of the example. *)

val davs : Analysis.t -> Name.Class.t -> string
(** All direct access vectors of a class, printed over its full field
    list, paper style. *)

val tavs : Analysis.t -> Name.Class.t -> string
(** All transitive access vectors of a class, printed over its full field
    list. *)

val commutativity : Analysis.t -> Name.Class.t -> string
(** The compiled commutativity relation of a class. *)

val class_report : Analysis.t -> Name.Class.t -> string
(** DAVs, the LBR graph, TAVs and the commutativity relation of one class,
    in one human-readable block. *)
