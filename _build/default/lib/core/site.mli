(** A [(class, method)] pair — a vertex of the late-binding resolution
    graph, and the key under which extraction results are stored. *)

open Tavcc_model

type t = Name.Class.t * Name.Method.t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
