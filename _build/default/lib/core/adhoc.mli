(** Ad hoc commutativity relations for predefined classes.

    Sec. 3 of the paper: "we do not discard the use of ad hoc
    commutativity relations.  It is of interest for predefined types or
    classes, as the Integer type or the Collection class, to be
    delivered with high commutativity performances" — citing O'Neil's
    Escrow method.  And sec. 7: "finer techniques are not discarded of
    our framework."

    A declaration asserts, for a class, that specific method pairs do or
    do not commute {e semantically}, overriding what the syntactic
    vectors concluded (e.g. two increments both write the counter field,
    so their TAVs clash, yet they commute).  Declarations are inherited:
    the override applies in a subclass as long as both methods still
    resolve to the code the declaration was written against — if either
    is overridden, the assertion no longer describes the executed code
    and the computed relation is used instead.

    Overrides are symmetrised automatically. *)

open Tavcc_model

type t

val empty : t

val declare :
  t -> Name.Class.t -> (Name.Method.t * Name.Method.t * bool) list -> t
(** Adds (merging with previous declarations for the class; later pairs
    win). *)

val pairs : t -> Name.Class.t -> (Name.Method.t * Name.Method.t * bool) list
(** Declarations attached to exactly this class (not inherited ones). *)

val lookup :
  t ->
  'b Schema.t ->
  Name.Class.t ->
  Name.Method.t ->
  Name.Method.t ->
  bool option
(** The override applicable to the pair on instances of the class, if
    any: the nearest declaring ancestor whose assertion still describes
    the resolved code. *)

val apply : t -> 'b Schema.t -> Name.Class.t -> Modes_table.t -> Modes_table.t
(** The class's commutativity table with every applicable override
    folded in. *)
