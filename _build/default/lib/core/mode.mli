(** The access-mode lattice [MODES = {Null, Read, Write}] (definition 2).

    [Null < Read < Write] is a total order, so the lattice join coincides
    with [max].  The compatibility relation is the classical one of the
    paper's Table 1:

    {v
              Null   Read   Write
      Null    yes    yes    yes
      Read    yes    yes    no
      Write   yes    no     no
    v} *)

type t = Null | Read | Write

val all : t list
(** [Null; Read; Write], in increasing order. *)

val compatible : t -> t -> bool
(** Table 1. *)

val join : t -> t -> t
(** The lattice join; on this total order, [max] (e.g.
    [join Read Write = Write]). *)

val leq : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Case-insensitive; accepts ["null"], ["read"], ["write"] and the
    abbreviations ["n"], ["r"], ["w"]. *)
