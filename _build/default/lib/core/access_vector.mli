(** Access vectors (definitions 3–5 of the paper).

    An access vector assigns a {!Mode.t} to each field of a class; fields
    not mentioned are implicitly [Null], which keeps vectors canonical: two
    vectors are equal iff their non-[Null] entries coincide.  The join
    (definition 4) collects all fields, taking the most restrictive mode on
    common ones; it is idempotent, commutative and associative
    (property 1), which is what makes the SCC-based transitive closure of
    {!Tav} correct.  Commutativity (definition 5) holds when every common
    field carries pairwise-compatible modes. *)

open Tavcc_model

type t

val empty : t
(** The all-[Null] vector. *)

val is_empty : t -> bool

val of_list : (Name.Field.t * Mode.t) list -> t
(** Later bindings for the same field are joined with earlier ones. *)

val to_list : t -> (Name.Field.t * Mode.t) list
(** Non-[Null] entries, sorted by field name. *)

val get : t -> Name.Field.t -> Mode.t
(** [Null] for unmentioned fields. *)

val set : t -> Name.Field.t -> Mode.t -> t
(** Overwrites (does not join) the field's mode. *)

val add : t -> Name.Field.t -> Mode.t -> t
(** Joins the given mode into the field's current mode. *)

val join : t -> t -> t
(** Definition 4. *)

val commutes : t -> t -> bool
(** Definition 5: field-wise {!Mode.compatible} on the union of supports. *)

val fields : t -> Name.Field.t list
(** Fields with a non-[Null] mode, sorted. *)

val read_fields : t -> Name.Field.t list
val write_fields : t -> Name.Field.t list
(** The [Write] entries — the projection pattern recovery uses to extract
    the modified part of an instance (sec. 3 of the paper). *)

val restrict : t -> Name.Field.Set.t -> t
(** Keeps only the entries whose field belongs to the set. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints in the paper's style: [(Write f1, Read f2)]. *)

val pp_over : Schema.field_def list -> Format.formatter -> t -> unit
(** Prints over an explicit field list, showing [Null] entries, as the
    paper does: [(Write f1, Read f2, Null f3)]. *)
