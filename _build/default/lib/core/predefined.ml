open Tavcc_model
open Tavcc_lang

let counter_source =
  {|
-- Predefined bounded counter (the paper's "Integer type").
class counter is
  fields
    n : integer;
  method inc(d) is n := n + d; end
  method dec(d) is n := n - d; end
  method get is return n; end
end
|}

let collection_source =
  {|
-- Predefined collection (the paper's "Collection class"): a bag kept
-- as a singly linked list of cells.
class cell is
  fields
    item : integer;
    rest : cell;
  method fill(v, r) is
    item := v;
    rest := r;
  end
  method tail is
    return rest;
  end
  method sum is
    if rest = null then
      return item;
    end
    return item + (send sum to rest);
  end
end

class collection is
  fields
    head : cell;
    size : integer;
  method insert(v) is
    var old := head;
    head := new cell;
    send fill(v, old) to head;
    size := size + 1;
  end
  method remove_first is
    if size > 0 then
      head := send tail to head;
      size := size - 1;
    end
  end
  method total is
    if head = null then
      return 0;
    end
    return send sum to head;
  end
  method count is
    return size;
  end
end
|}

let counter = Name.Class.of_string "counter"
let collection = Name.Class.of_string "collection"
let cell = Name.Class.of_string "cell"

let sources = counter_source ^ collection_source

let adhoc =
  let mn = Name.Method.of_string in
  Adhoc.(
    declare
      (declare empty counter
         [
           (mn "inc", mn "inc", true);
           (mn "dec", mn "dec", true);
           (mn "inc", mn "dec", true);
         ])
      collection
      [ (mn "insert", mn "insert", true) ])

let with_predefined user_source =
  match Parser.parse_decls (sources ^ user_source) with
  | exception Lexer.Error (msg, pos) ->
      Error (Format.asprintf "lexical error at %a: %s" Token.pp_pos pos msg)
  | exception Parser.Error (msg, pos) ->
      Error (Format.asprintf "syntax error at %a: %s" Token.pp_pos pos msg)
  | decls -> (
      match Schema.build decls with
      | Error e -> Error (Format.asprintf "%a" Schema.pp_error e)
      | Ok schema -> (
          match Check.check schema with
          | Ok () -> Ok (schema, adhoc)
          | Error errs ->
              Error
                (Format.asprintf "%a"
                   (Format.pp_print_list ~pp_sep:Format.pp_print_newline Check.pp_error)
                   errs)))
