(** Strongly connected components (Tarjan 1972), as required by the TAV
    algorithm of sec. 4.3: methods may call each other recursively through
    self-sends, producing directed cycles whose members necessarily share
    the same transitive access vector.

    The implementation is iterative (explicit stack), so graph depth is
    bounded by memory rather than the OCaml call stack, and runs in
    O(|V| + |E|). *)

type result = {
  count : int;  (** number of components *)
  comp : int array;
      (** [comp.(v)] is the component of vertex [v]; component identifiers
          are assigned in {e reverse topological order} of the
          condensation: every successor component of [comp.(v)] has a
          {e smaller} identifier. *)
}

val compute : int list array -> result
(** [compute succs] where [succs.(v)] lists the successors of vertex [v]
    over vertices [0 .. Array.length succs - 1]. *)

val members : result -> int list array
(** [members r] lists, for each component, its vertices in increasing
    order. *)
