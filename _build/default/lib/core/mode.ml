type t = Null | Read | Write

let all = [ Null; Read; Write ]

let compatible a b =
  match (a, b) with
  | Null, _ | _, Null -> true
  | Read, Read -> true
  | Write, _ | _, Write -> false

let rank = function Null -> 0 | Read -> 1 | Write -> 2
let join a b = if rank a >= rank b then a else b
let leq a b = rank a <= rank b
let equal a b = rank a = rank b
let compare a b = Int.compare (rank a) (rank b)
let to_string = function Null -> "Null" | Read -> "Read" | Write -> "Write"
let pp ppf m = Format.pp_print_string ppf (to_string m)

let of_string s =
  match String.lowercase_ascii s with
  | "null" | "n" -> Some Null
  | "read" | "r" -> Some Read
  | "write" | "w" -> Some Write
  | _ -> None
