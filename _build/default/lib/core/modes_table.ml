open Tavcc_model
module MN = Name.Method

type t = {
  cls : Name.Class.t;
  methods : MN.t array;
  mode_of : int MN.Map.t;
  tavs : Access_vector.t array;
  matrix : bool array array;
}

let build cls tavs_list =
  let methods = Array.of_list (List.map fst tavs_list) in
  let tavs = Array.of_list (List.map snd tavs_list) in
  let n = Array.length methods in
  let mode_of =
    Array.to_list methods
    |> List.mapi (fun i m -> (m, i))
    |> List.fold_left (fun acc (m, i) -> MN.Map.add m i acc) MN.Map.empty
  in
  let matrix =
    Array.init n (fun i -> Array.init n (fun j -> Access_vector.commutes tavs.(i) tavs.(j)))
  in
  { cls; methods; mode_of; tavs; matrix }

let cls t = t.cls
let methods t = t.methods
let size t = Array.length t.methods
let mode_of_method t m = MN.Map.find_opt m t.mode_of
let method_of_mode t i = t.methods.(i)
let tav t i = t.tavs.(i)
let commute t i j = t.matrix.(i).(j)

let commute_methods t m m' =
  match (mode_of_method t m, mode_of_method t m') with
  | Some i, Some j -> Some (commute t i j)
  | _ -> None

let with_commute t i j b =
  let matrix = Array.map Array.copy t.matrix in
  matrix.(i).(j) <- b;
  matrix.(j).(i) <- b;
  { t with matrix }

let is_symmetric t =
  let n = size t in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if t.matrix.(i).(j) <> t.matrix.(j).(i) then ok := false
    done
  done;
  !ok

let pp ppf t =
  let n = size t in
  let width =
    Array.fold_left (fun w m -> max w (String.length (MN.to_string m))) 3 t.methods
  in
  let pad s = Printf.sprintf "%-*s" width s in
  Format.fprintf ppf "%s" (pad "");
  Array.iter (fun m -> Format.fprintf ppf " %s" (pad (MN.to_string m))) t.methods;
  Format.fprintf ppf "@\n";
  for i = 0 to n - 1 do
    Format.fprintf ppf "%s" (pad (MN.to_string t.methods.(i)));
    for j = 0 to n - 1 do
      Format.fprintf ppf " %s" (pad (if t.matrix.(i).(j) then "yes" else "no"))
    done;
    Format.fprintf ppf "@\n"
  done
