open Tavcc_model
module CN = Name.Class
module MN = Name.Method

type t = {
  cls : CN.t;
  vertices : Site.t array;
  index : int Site.Map.t;
  succs : int list array;
}

let build ex cls =
  let schema = Extraction.schema ex in
  let initial = List.map (fun m -> (cls, m)) (Schema.methods schema cls) in
  (* Per definition 9, a vertex (C', M') behaves as the code of the site
     that resolves M' from C'.  Its DSC targets re-resolve in [cls]; its
     PSC targets contribute new vertices. *)
  let out_sites (c', m') =
    let dsc = Extraction.dsc ex c' m' in
    let psc = Extraction.psc ex c' m' in
    MN.Set.fold
      (fun m'' acc ->
        (* Guard against self-call names the receiver class cannot resolve
           (possible transiently during incremental edits). *)
        if Schema.resolve schema cls m'' <> None then (cls, m'') :: acc else acc)
      dsc (Site.Set.elements psc)
  in
  (* Discover the vertex set: the initial (C, M) pairs plus the closure of
     the successor relation (DSC targets are already initial vertices, so
     this is exactly the reflexo-transitive closure of PSC of def. 9). *)
  let rec discover seen todo =
    match todo with
    | [] -> seen
    | site :: rest ->
        if Site.Set.mem site seen then discover seen rest
        else
          let seen = Site.Set.add site seen in
          discover seen (out_sites site @ rest)
  in
  let all = discover Site.Set.empty initial in
  (* Stable vertex order: the initial sites first (METHODS order), then the
     prefixed-call sites sorted. *)
  let extra = Site.Set.elements (Site.Set.diff all (Site.Set.of_list initial)) in
  let vertices = Array.of_list (initial @ extra) in
  let index =
    Array.to_list vertices
    |> List.mapi (fun i v -> (v, i))
    |> List.fold_left (fun m (v, i) -> Site.Map.add v i m) Site.Map.empty
  in
  let succs =
    Array.map
      (fun site ->
        out_sites site
        |> List.map (fun s -> Site.Map.find s index)
        |> List.sort_uniq Int.compare)
      vertices
  in
  { cls; vertices; index; succs }

let cls t = t.cls
let vertices t = t.vertices
let vertex_count t = Array.length t.vertices
let edge_count t = Array.fold_left (fun n l -> n + List.length l) 0 t.succs
let index t site = Site.Map.find_opt site t.index
let succs t = t.succs

let successors t site =
  match index t site with
  | None -> []
  | Some i -> List.map (fun j -> t.vertices.(j)) t.succs.(i)

let pp ppf t =
  let any_edge = ref false in
  Array.iteri
    (fun i site ->
      List.iter
        (fun j ->
          any_edge := true;
          Format.fprintf ppf "%a -> %a@\n" Site.pp site Site.pp t.vertices.(j))
        t.succs.(i))
    t.vertices;
  Array.iteri
    (fun i site ->
      let has_in = Array.exists (fun l -> List.mem i l) t.succs in
      if t.succs.(i) = [] && not has_in then Format.fprintf ppf "%a@\n" Site.pp site)
    t.vertices;
  if (not !any_edge) && Array.length t.vertices = 0 then Format.fprintf ppf "(empty)@\n"

let to_dot t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "digraph lbr_%s {\n  rankdir=TB;\n  node [shape=box];\n"
       (CN.to_string t.cls));
  Array.iter
    (fun (c, m) ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s,%s\";\n" (CN.to_string c) (MN.to_string m)))
    t.vertices;
  Array.iteri
    (fun i (c, m) ->
      List.iter
        (fun j ->
          let c', m' = t.vertices.(j) in
          Buffer.add_string b
            (Printf.sprintf "  \"%s,%s\" -> \"%s,%s\";\n" (CN.to_string c) (MN.to_string m)
               (CN.to_string c') (MN.to_string m')))
        t.succs.(i))
    t.vertices;
  Buffer.add_string b "}\n";
  Buffer.contents b
