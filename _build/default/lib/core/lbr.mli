(** The late-binding resolution graph of a class (definition 9).

    For a class [C], the graph [G_C(V, Γ)] has as vertices the pairs
    [(C, M)] for every [M ∈ METHODS(C)], plus every [(C', M')] reachable
    through prefixed self-calls.  The successors of a vertex [(C', M')]
    are:

    - [(C, M'')] for every [M''] in [DSC(C', M')] — the direct self-calls,
      {e resolved against the receiver class C}, which is precisely how the
      construction solves at compile time the late bindings occurring at
      run time; and
    - the prefixed self-calls [PSC(C', M')], which name their target class
      explicitly.

    The graph applies to any proper instance of [C]. *)

open Tavcc_model

type t

val build : Extraction.t -> Name.Class.t -> t
(** Builds [G_C] from the extraction results. *)

val cls : t -> Name.Class.t

val vertices : t -> Site.t array
(** All vertices; the first [List.length (Schema.methods s c)] entries are
    the [(C, M)] pairs in {!Schema.methods} order, followed by the vertices
    contributed by prefixed self-calls. *)

val vertex_count : t -> int
val edge_count : t -> int

val index : t -> Site.t -> int option
val succs : t -> int list array
(** Adjacency by vertex index, aligned with {!vertices}. *)

val successors : t -> Site.t -> Site.t list

val pp : Format.formatter -> t -> unit
(** Text rendering: one [v -> w] line per edge, isolated vertices on their
    own line (regenerates the paper's Figure 2). *)

val to_dot : t -> string
(** GraphViz rendering of the same graph. *)
