open Tavcc_model
module MN = Name.Method

let table1 () =
  let b = Buffer.create 128 in
  let pad s = Printf.sprintf "%-6s" s in
  Buffer.add_string b (pad "");
  List.iter (fun m -> Buffer.add_string b (pad (Mode.to_string m))) Mode.all;
  Buffer.add_char b '\n';
  List.iter
    (fun m ->
      Buffer.add_string b (pad (Mode.to_string m));
      List.iter
        (fun m' -> Buffer.add_string b (pad (if Mode.compatible m m' then "yes" else "no")))
        Mode.all;
      Buffer.add_char b '\n')
    Mode.all;
  Buffer.contents b

let figure1 () =
  let decls = Tavcc_lang.Parser.parse_decls Paper_example.source in
  Tavcc_lang.Pretty.decls_to_string decls

let figure2 () =
  let an = Paper_example.analysis () in
  Format.asprintf "%a" Lbr.pp (Analysis.lbr an Paper_example.c2)

let table2 () =
  let an = Paper_example.analysis () in
  Format.asprintf "%a" Modes_table.pp (Analysis.table an Paper_example.c2)

let vectors which an cls =
  let schema = Analysis.schema an in
  let fds = Schema.fields schema cls in
  let b = Buffer.create 256 in
  List.iter
    (fun m ->
      let av = which an cls m in
      Buffer.add_string b
        (Format.asprintf "%a.%a: %a\n" Name.Class.pp cls MN.pp m
           (Access_vector.pp_over fds) av))
    (Schema.methods schema cls);
  Buffer.contents b

let davs an cls = vectors Analysis.dav an cls
let tavs an cls = vectors Analysis.tav an cls
let commutativity an cls = Format.asprintf "%a" Modes_table.pp (Analysis.table an cls)

let class_report an cls =
  String.concat ""
    [
      Format.asprintf "== class %a ==\n" Name.Class.pp cls;
      "-- direct access vectors --\n";
      davs an cls;
      "-- late-binding resolution graph --\n";
      Format.asprintf "%a" Lbr.pp (Analysis.lbr an cls);
      "-- transitive access vectors --\n";
      tavs an cls;
      "-- commutativity relation --\n";
      commutativity an cls;
    ]
