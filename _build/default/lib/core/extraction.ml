open Tavcc_model
open Tavcc_lang
module CN = Name.Class
module MN = Name.Method
module FN = Name.Field

type site_info = {
  si_dav : Access_vector.t;
  si_dsc : MN.Set.t;
  si_psc : Site.Set.t;
  si_cross : (CN.t * MN.t) list;  (* statically-typed cross-object sends *)
  si_dyn : bool;  (* has sends with statically unknown receiver class *)
}
type t = { schema : Ast.body Schema.t; sites : site_info Site.Map.t }

(* Walks one method body, accumulating assigned fields, read fields and the
   two self-call sets.  [params] shadow fields; locals shadow both and are
   scoped to their block, mirroring the interpreter. *)
let analyze schema cls (md : Ast.body Schema.method_def) =
  let is_field x = Schema.field_index schema cls (FN.of_string x) <> None in
  let assigned = ref FN.Set.empty in
  let read = ref FN.Set.empty in
  let dsc = ref MN.Set.empty in
  let psc = ref Site.Set.empty in
  let cross = ref [] in
  let dyn = ref false in
  let shadowed locals x = List.mem x locals || List.mem x md.Schema.m_params in
  (* Static class of a receiver expression, when determinable. *)
  let static_class locals e =
    match e with
    | Ast.New c -> if Schema.mem schema c then Some c else None
    | Ast.Ident x when not (shadowed locals x) -> (
        match Schema.field_def schema cls (FN.of_string x) with
        | Some { Schema.f_ty = Value.Tref d; _ } when Schema.mem schema d -> Some d
        | _ -> None)
    | _ -> None
  in
  let rec walk_expr locals e =
    match e with
    | Ast.Lit _ | Ast.Self | Ast.New _ -> ()
    | Ast.Ident x -> if (not (shadowed locals x)) && is_field x then read := FN.Set.add (FN.of_string x) !read
    | Ast.Unop (_, e1) -> walk_expr locals e1
    | Ast.Binop (_, l, r) ->
        walk_expr locals l;
        walk_expr locals r
    | Ast.Send m -> walk_msg locals m
  and walk_msg locals m =
    List.iter (walk_expr locals) m.Ast.msg_args;
    let self_directed =
      match m.Ast.msg_recv with
      | Ast.Rself -> true
      | Ast.Rexpr Ast.Self -> true
      | Ast.Rexpr e ->
          walk_expr locals e;
          (match static_class locals e with
          | Some d when Schema.resolve schema d m.Ast.msg_name <> None ->
              cross := (d, m.Ast.msg_name) :: !cross
          | Some _ | None -> dyn := true);
          false
    in
    match (m.Ast.msg_prefix, self_directed) with
    | Some c', true ->
        (* Definition 8: only ancestors resolving the method are recorded. *)
        if
          Schema.mem schema c'
          && List.exists (CN.equal c') (Schema.ancestors schema cls)
          && Schema.resolve_from schema c' m.Ast.msg_name <> None
        then psc := Site.Set.add (c', m.Ast.msg_name) !psc
    | None, true ->
        (* Definition 7: only methods the class understands are recorded. *)
        if Schema.resolve schema cls m.Ast.msg_name <> None then
          dsc := MN.Set.add m.Ast.msg_name !dsc
    | _, false -> ()
  in
  let rec walk_stmts locals stmts =
    (* Returns the scope extended with this block's locals; callers of a
       nested block discard the extension (block scoping). *)
    List.fold_left walk_stmt locals stmts
  and walk_stmt locals s =
    match s with
    | Ast.Assign (x, e) ->
        walk_expr locals e;
        if (not (shadowed locals x)) && is_field x then
          assigned := FN.Set.add (FN.of_string x) !assigned;
        locals
    | Ast.Var (x, e) ->
        walk_expr locals e;
        x :: locals
    | Ast.Send_stmt m ->
        walk_msg locals m;
        locals
    | Ast.Return e ->
        walk_expr locals e;
        locals
    | Ast.If (c, t, f) ->
        walk_expr locals c;
        ignore (walk_stmts locals t);
        ignore (walk_stmts locals f);
        locals
    | Ast.While (c, b) ->
        walk_expr locals c;
        ignore (walk_stmts locals b);
        locals
  in
  ignore (walk_stmts [] md.Schema.m_body);
  let dav =
    FN.Set.fold
      (fun f av -> Access_vector.add av f Mode.Write)
      !assigned
      (FN.Set.fold
         (fun f av -> if FN.Set.mem f !assigned then av else Access_vector.add av f Mode.Read)
         !read Access_vector.empty)
  in
  { si_dav = dav; si_dsc = !dsc; si_psc = !psc; si_cross = List.rev !cross; si_dyn = !dyn }

let build schema =
  let sites =
    List.fold_left
      (fun acc cls ->
        List.fold_left
          (fun acc md -> Site.Map.add (cls, md.Schema.m_name) (analyze schema cls md) acc)
          acc (Schema.own_methods schema cls))
      Site.Map.empty (Schema.classes schema)
  in
  { schema; sites }

let schema t = t.schema

let defining_site t c m =
  match Schema.resolve t.schema c m with
  | Some (c', _) -> (c', m)
  | None ->
      invalid_arg
        (Format.asprintf "Extraction: %a is not a method of class %a" MN.pp m CN.pp c)

let update_classes t schema cs =
  let stale c' = List.exists (CN.equal c') cs in
  let sites = Site.Map.filter (fun (c', _) _ -> not (stale c')) t.sites in
  let sites =
    List.fold_left
      (fun acc c ->
        List.fold_left
          (fun acc md -> Site.Map.add (c, md.Schema.m_name) (analyze schema c md) acc)
          acc (Schema.own_methods schema c))
      sites cs
  in
  { schema; sites }

let site_info t c m = Site.Map.find (defining_site t c m) t.sites
let dav t c m = (site_info t c m).si_dav
let dsc t c m = (site_info t c m).si_dsc
let psc t c m = (site_info t c m).si_psc
let cross_sends t c m = (site_info t c m).si_cross
let has_dynamic_sends t c m = (site_info t c m).si_dyn
