(** Transitive access vectors (definition 10).

    [TAV(C,M)] is the join of the direct access vectors of every vertex
    reachable from [(C, M)] in the late-binding resolution graph of [C] —
    i.e. of every method that may execute on the current instance when [M]
    is sent to a proper instance of [C].

    {!compute} follows sec. 4.3: a single pass of Tarjan's algorithm
    identifies the strong components (vertices on a common directed cycle
    necessarily share their TAV), and the components are accumulated from
    the sinks up to the sources in one sweep, for a total cost linear in
    the size of the graph.  The join's idempotence, commutativity and
    associativity (property 1) make the per-component merging sound in any
    order.

    {!compute_naive} is the specification-level Kleene computation (one
    reachability walk per vertex, quadratic); the equivalence of the two is
    property-tested and their costs are compared by bench E1. *)

open Tavcc_model

val compute : Extraction.t -> Name.Class.t -> Access_vector.t Name.Method.Map.t
(** [compute ex c] maps every [M ∈ METHODS(c)] to [TAV(c,M)]. *)

val compute_naive : Extraction.t -> Name.Class.t -> Access_vector.t Name.Method.Map.t
(** Reference implementation, used as a test oracle. *)

val of_graph : Extraction.t -> Lbr.t -> Access_vector.t array
(** Per-vertex TAVs of an already-built graph, aligned with
    {!Lbr.vertices}. *)
