open Tavcc_model
open Tavcc_lang

let source =
  {|
-- Figure 1 of Malta & Martinez, ICDE'93.
class c3 is
  fields
    g1 : integer;
  method m is
    g1 := g1 + 1;
  end
end

class c1 is
  fields
    f1 : integer;
    f2 : boolean;
    f3 : c3;
  method m1(p1) is
    send m2(p1) to self;
    send m3 to self;
  end
  method m2(p1) is
    -- f1 := expr(f1, f2, p1)
    if f2 then
      f1 := f1 + p1;
    else
      f1 := f1 - p1;
    end
  end
  method m3 is
    if f2 then
      send m to f3;
    end
  end
end

class c2 extends c1 is
  fields
    f4 : integer;
    f5 : integer;
    f6 : string;
  method m2(p1) is -- redefined as an extension of the inherited version
    send c1.m2(p1) to self;
    -- f4 := expr(f5, p1)
    f4 := f5 + p1;
  end
  method m4(p1, p2) is
    -- if cond(f5, p1) then f6 := expr(f6, p2)
    if f5 > p1 then
      f6 := f6 + p2;
    end
  end
end
|}

let c1 = Name.Class.of_string "c1"
let c2 = Name.Class.of_string "c2"
let c3 = Name.Class.of_string "c3"
let m1 = Name.Method.of_string "m1"
let m2 = Name.Method.of_string "m2"
let m3 = Name.Method.of_string "m3"
let m4 = Name.Method.of_string "m4"
let m = Name.Method.of_string "m"
let f1 = Name.Field.of_string "f1"
let f2 = Name.Field.of_string "f2"
let f3 = Name.Field.of_string "f3"
let f4 = Name.Field.of_string "f4"
let f5 = Name.Field.of_string "f5"
let f6 = Name.Field.of_string "f6"

let schema () =
  let decls = Parser.parse_decls source in
  match Schema.build decls with
  | Error e -> failwith (Format.asprintf "paper example schema: %a" Schema.pp_error e)
  | Ok s -> (
      match Check.check s with
      | Ok () -> s
      | Error errs ->
          failwith
            (Format.asprintf "paper example checks: %a"
               (Format.pp_print_list Check.pp_error)
               errs))

let analysis () = Analysis.compile (schema ())

let expected_table2 =
  [
    ("m1", [ ("m1", false); ("m2", false); ("m3", true); ("m4", true) ]);
    ("m2", [ ("m1", false); ("m2", false); ("m3", true); ("m4", true) ]);
    ("m3", [ ("m1", true); ("m2", true); ("m3", true); ("m4", true) ]);
    ("m4", [ ("m1", true); ("m2", true); ("m3", true); ("m4", false) ]);
  ]
