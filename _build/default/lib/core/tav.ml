open Tavcc_model
module MN = Name.Method

let vertex_dav ex (c', m') = Extraction.dav ex c' m'

let of_graph ex g =
  let succs = Lbr.succs g in
  let n = Array.length succs in
  let scc = Scc.compute succs in
  (* Component ids are emitted sinks-first, so a single increasing sweep
     sees every successor component before the components that reach it. *)
  let comp_tav = Array.make scc.Scc.count Access_vector.empty in
  let verts = Lbr.vertices g in
  for v = 0 to n - 1 do
    let c = scc.Scc.comp.(v) in
    comp_tav.(c) <- Access_vector.join comp_tav.(c) (vertex_dav ex verts.(v))
  done;
  let mem = Scc.members scc in
  for c = 0 to scc.Scc.count - 1 do
    List.iter
      (fun v ->
        List.iter
          (fun w ->
            let c' = scc.Scc.comp.(w) in
            if c' <> c then begin
              (* Sinks-first numbering: successors are already complete. *)
              assert (c' < c);
              comp_tav.(c) <- Access_vector.join comp_tav.(c) comp_tav.(c')
            end)
          succs.(v))
      mem.(c)
  done;
  Array.init n (fun v -> comp_tav.(scc.Scc.comp.(v)))

let compute ex cls =
  let schema = Extraction.schema ex in
  let g = Lbr.build ex cls in
  let tavs = of_graph ex g in
  List.fold_left
    (fun acc m ->
      match Lbr.index g (cls, m) with
      | Some i -> MN.Map.add m tavs.(i) acc
      | None -> acc)
    MN.Map.empty (Schema.methods schema cls)

let compute_naive ex cls =
  let schema = Extraction.schema ex in
  let g = Lbr.build ex cls in
  let succs = Lbr.succs g in
  let verts = Lbr.vertices g in
  let reachable_from start =
    let n = Array.length succs in
    let seen = Array.make n false in
    let rec go v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter go succs.(v)
      end
    in
    go start;
    seen
  in
  List.fold_left
    (fun acc m ->
      match Lbr.index g (cls, m) with
      | None -> acc
      | Some i ->
          let seen = reachable_from i in
          let tav = ref Access_vector.empty in
          Array.iteri
            (fun v reached ->
              if reached then tav := Access_vector.join !tav (vertex_dav ex verts.(v)))
            seen;
          MN.Map.add m !tav acc)
    MN.Map.empty (Schema.methods schema cls)
