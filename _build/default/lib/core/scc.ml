type result = { count : int; comp : int array }

(* Iterative Tarjan.  Each frame on the control stack is (vertex, iterator
   position into its successor list).  [low] doubles as the index table;
   [index.(v) = -1] marks an unvisited vertex. *)
let compute succs =
  let n = Array.length succs in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let succ_arr = Array.map Array.of_list succs in
  for start = 0 to n - 1 do
    if index.(start) = -1 then begin
      let frames = ref [ (start, ref 0) ] in
      index.(start) <- !next_index;
      low.(start) <- !next_index;
      incr next_index;
      stack := start :: !stack;
      on_stack.(start) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, pos) :: rest ->
            if !pos < Array.length succ_arr.(v) then begin
              let w = succ_arr.(v).(!pos) in
              incr pos;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                low.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, ref 0) :: !frames
              end
              else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
            end
            else begin
              (* v is finished: close its component if it is a root. *)
              if low.(v) = index.(v) then begin
                let rec pop () =
                  match !stack with
                  | [] -> assert false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      comp.(w) <- !next_comp;
                      if w <> v then pop ()
                in
                pop ();
                incr next_comp
              end;
              frames := rest;
              match rest with
              | (parent, _) :: _ -> low.(parent) <- min low.(parent) low.(v)
              | [] -> ()
            end
      done
    end
  done;
  { count = !next_comp; comp }

let members r =
  let buckets = Array.make r.count [] in
  for v = Array.length r.comp - 1 downto 0 do
    buckets.(r.comp.(v)) <- v :: buckets.(r.comp.(v))
  done;
  buckets
