(** The running example of the paper (Figure 1), embedded as ODML source.

    Classes [c1] (fields [f1 f2 f3], methods [m1 m2 m3]), [c2] extending
    [c1] (fields [f4 f5 f6], overriding [m2] as an extension via
    [send c1.m2 to self], adding [m4]) and [c3] (method [m]).  The bodies
    realise the abstract [expr(...)] calls of the figure with concrete
    expressions touching exactly the fields the paper names, so DAVs, TAVs,
    the Figure-2 graph and Table 2 come out exactly as printed. *)

open Tavcc_model
open Tavcc_lang

val source : string
(** The ODML text of Figure 1. *)

val schema : unit -> Ast.body Schema.t
(** Parsed, validated and checked. *)

val analysis : unit -> Analysis.t
(** The full compiled analysis of the example. *)

val c1 : Name.Class.t
val c2 : Name.Class.t
val c3 : Name.Class.t
val m1 : Name.Method.t
val m2 : Name.Method.t
val m3 : Name.Method.t
val m4 : Name.Method.t
val m : Name.Method.t
val f1 : Name.Field.t
val f2 : Name.Field.t
val f3 : Name.Field.t
val f4 : Name.Field.t
val f5 : Name.Field.t
val f6 : Name.Field.t

val expected_table2 : (string * (string * bool) list) list
(** The paper's Table 2 in data form: for each row method, the
    (column method, commutes?) pairs. *)
