(** From access vectors to access modes (sec. 5.1).

    Locking with raw vectors would cost O(|FIELDS(C)|) per check; instead,
    one commutativity relation is created per class, with one access mode
    per method.  Two modes commute iff their transitive access vectors
    commute (definition 5), so the parallelism allowed by modes is exactly
    the one permitted by vectors, while the run-time check is a single
    matrix lookup — as cheap as the classical read/write compatibility
    test. *)

open Tavcc_model

type t

val build : Name.Class.t -> (Name.Method.t * Access_vector.t) list -> t
(** [build c tavs] numbers the methods (in the given order) and fills the
    commutativity matrix from pairwise {!Access_vector.commutes}. *)

val cls : t -> Name.Class.t
val methods : t -> Name.Method.t array
val size : t -> int

val mode_of_method : t -> Name.Method.t -> int option
(** The access mode (matrix index) generated for the method. *)

val method_of_mode : t -> int -> Name.Method.t

val tav : t -> int -> Access_vector.t
(** The vector the mode was generated from. *)

val commute : t -> int -> int -> bool
(** O(1) lookup in the compiled relation. *)

val commute_methods : t -> Name.Method.t -> Name.Method.t -> bool option
(** Name-based convenience; [None] when a method is unknown. *)

val with_commute : t -> int -> int -> bool -> t
(** A copy of the table with the (symmetric) entry overridden — the hook
    {!Adhoc} uses to install semantic commutativity for predefined
    classes. *)

val is_symmetric : t -> bool
(** Always true for tables built by {!build}; exposed for property tests. *)

val pp : Format.formatter -> t -> unit
(** Paper Table-2 style: a yes/no matrix with method-name headers. *)
