(** Deterministic pseudo-random numbers (splitmix64).

    Simulations must replay bit-for-bit from a seed; the global [Random]
    state is never touched. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val copy : t -> t
val next64 : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if [n <= 0] *)

val bool : t -> bool
val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list *)

val shuffle : t -> 'a list -> 'a list
