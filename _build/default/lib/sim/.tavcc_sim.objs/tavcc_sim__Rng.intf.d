lib/sim/rng.mli:
