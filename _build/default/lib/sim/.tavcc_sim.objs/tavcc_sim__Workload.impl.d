lib/sim/workload.ml: Array Ast Format Fun List Name Option Printf Rng Schema Store Tavcc_cc Tavcc_lang Tavcc_model Value
