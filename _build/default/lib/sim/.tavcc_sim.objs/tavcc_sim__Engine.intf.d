lib/sim/engine.mli: Ast Exec Format Scheme Tavcc_cc Tavcc_lang Tavcc_lock Tavcc_model Tavcc_txn
