lib/sim/workload.mli: Ast Rng Schema Store Tavcc_cc Tavcc_lang Tavcc_model
