lib/sim/engine.ml: Effect Exec Format Int List Lock_table Printexc Printf Rng Scheme String Tavcc_cc Tavcc_lock Tavcc_txn
