type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea & Flood). *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (next64 t) 1L = 1L

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x *. u /. 9007199254740992.0 (* 2^53 *)

let chance t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
