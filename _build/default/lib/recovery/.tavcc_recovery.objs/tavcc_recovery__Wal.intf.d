lib/recovery/wal.mli: Format Name Oid Tavcc_model Value
