lib/recovery/recovery.mli: Name Oid Store Tavcc_model Value Wal
