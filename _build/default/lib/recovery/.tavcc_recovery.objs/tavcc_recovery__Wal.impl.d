lib/recovery/wal.ml: Format List Name Oid Tavcc_model Value
