lib/recovery/recovery.ml: Hashtbl Int List Name Oid Printf Schema Store Tavcc_model Value Wal
