module CN = Name.Class
module MN = Name.Method
module FN = Name.Field

type field_def = { f_name : FN.t; f_ty : Value.ty; f_owner : CN.t }
type 'b method_def = { m_name : MN.t; m_params : string list; m_body : 'b }

type 'b class_decl = {
  c_name : CN.t;
  c_parents : CN.t list;
  c_fields : (FN.t * Value.ty) list;
  c_methods : 'b method_def list;
}

type 'b info = {
  i_decl : 'b class_decl;
  i_lin : CN.t list;
  i_fields : field_def list;
  i_findex : int FN.Map.t;
  i_fdefs : field_def FN.Map.t;
  i_own_mmap : 'b method_def MN.Map.t;
  i_methods : MN.t list;
  i_subs : CN.t list;
}

type 'b t = { infos : 'b info CN.Map.t; order : CN.t list }

type error =
  | Duplicate_class of CN.t
  | Unknown_parent of CN.t * CN.t
  | Inheritance_cycle of CN.t list
  | Linearization_failure of CN.t
  | Duplicate_field of CN.t * FN.t
  | Duplicate_method of CN.t * MN.t
  | Unknown_field_class of CN.t * FN.t * CN.t

let pp_error ppf = function
  | Duplicate_class c -> Format.fprintf ppf "class %a is defined twice" CN.pp c
  | Unknown_parent (c, p) ->
      Format.fprintf ppf "class %a inherits from unknown class %a" CN.pp c CN.pp p
  | Inheritance_cycle cs ->
      Format.fprintf ppf "inheritance cycle: %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
           CN.pp)
        cs
  | Linearization_failure c ->
      Format.fprintf ppf "no C3 linearisation exists for class %a" CN.pp c
  | Duplicate_field (c, f) ->
      Format.fprintf ppf "field %a appears twice in the field set of class %a" FN.pp f CN.pp c
  | Duplicate_method (c, m) ->
      Format.fprintf ppf "method %a is defined twice in class %a" MN.pp m CN.pp c
  | Unknown_field_class (c, f, d) ->
      Format.fprintf ppf "field %a of class %a references unknown class %a" FN.pp f CN.pp c
        CN.pp d

exception Error of error

(* Topological order of classes, parents first; raises on cycles. *)
let topo_order decls_by_name names =
  let state = Hashtbl.create 16 in
  (* state: 0 = white (implicit), 1 = gray, 2 = black *)
  let order = ref [] in
  let rec visit path c =
    match Hashtbl.find_opt state (CN.to_string c) with
    | Some 2 -> ()
    | Some 1 ->
        let cycle =
          let rec take = function
            | [] -> []
            | x :: tl -> if CN.equal x c then [ x ] else x :: take tl
          in
          List.rev (c :: take path)
        in
        raise (Error (Inheritance_cycle cycle))
    | _ ->
        Hashtbl.replace state (CN.to_string c) 1;
        let decl = CN.Map.find c decls_by_name in
        List.iter (visit (c :: path)) decl.c_parents;
        Hashtbl.replace state (CN.to_string c) 2;
        order := c :: !order
  in
  List.iter (visit []) names;
  List.rev !order

(* C3 merge.  [lists] are the parents' linearisations plus the parent list
   itself; repeatedly extract a head that occurs in no other list's tail. *)
let c3_merge cname lists =
  let in_tail c l = match l with [] -> false | _ :: tl -> List.exists (CN.equal c) tl in
  let rec go acc lists =
    let lists = List.filter (function [] -> false | _ :: _ -> true) lists in
    match lists with
    | [] -> List.rev acc
    | _ :: _ ->
      (
      let candidate =
        List.find_map
          (fun l ->
            match l with
            | [] -> None
            | h :: _ -> if List.exists (in_tail h) lists then None else Some h)
          lists
      in
      match candidate with
      | None -> raise (Error (Linearization_failure cname))
      | Some h ->
          let strip l = match l with x :: tl when CN.equal x h -> tl | l -> l in
          go (h :: acc) (List.map strip lists))
  in
  go [] lists

let build decls =
  try
    let decls_by_name =
      List.fold_left
        (fun m d ->
          if CN.Map.mem d.c_name m then raise (Error (Duplicate_class d.c_name))
          else CN.Map.add d.c_name d m)
        CN.Map.empty decls
    in
    List.iter
      (fun d ->
        List.iter
          (fun p ->
            if not (CN.Map.mem p decls_by_name) then
              raise (Error (Unknown_parent (d.c_name, p))))
          d.c_parents)
      decls;
    let order = topo_order decls_by_name (List.map (fun d -> d.c_name) decls) in
    let infos =
      List.fold_left
        (fun infos cname ->
          let decl = CN.Map.find cname decls_by_name in
          let parent_lin p = (CN.Map.find p infos).i_lin in
          let lin =
            cname :: c3_merge cname (List.map parent_lin decl.c_parents @ [ decl.c_parents ])
          in
          (* Field layout: most general classes first, then own fields. *)
          let fields =
            List.concat_map
              (fun c ->
                let d = CN.Map.find c decls_by_name in
                List.map (fun (f, ty) -> { f_name = f; f_ty = ty; f_owner = c }) d.c_fields)
              (List.rev lin)
          in
          let findex, fdefs =
            List.fold_left
              (fun (im, dm) (i, fd) ->
                if FN.Map.mem fd.f_name im then raise (Error (Duplicate_field (cname, fd.f_name)))
                else (FN.Map.add fd.f_name i im, FN.Map.add fd.f_name fd dm))
              (FN.Map.empty, FN.Map.empty)
              (List.mapi (fun i fd -> (i, fd)) fields)
          in
          (* Reference field types must name known classes. *)
          List.iter
            (fun fd ->
              match fd.f_ty with
              | Value.Tref d when not (CN.Map.mem d decls_by_name) ->
                  raise (Error (Unknown_field_class (cname, fd.f_name, d)))
              | _ -> ())
            fields;
          let own_mmap =
            List.fold_left
              (fun m md ->
                if MN.Map.mem md.m_name m then raise (Error (Duplicate_method (cname, md.m_name)))
                else MN.Map.add md.m_name md m)
              MN.Map.empty decl.c_methods
          in
          let method_set =
            List.fold_left
              (fun s c ->
                let d = CN.Map.find c decls_by_name in
                List.fold_left (fun s md -> MN.Set.add md.m_name s) s d.c_methods)
              MN.Set.empty lin
          in
          let info =
            {
              i_decl = decl;
              i_lin = lin;
              i_fields = fields;
              i_findex = findex;
              i_fdefs = fdefs;
              i_own_mmap = own_mmap;
              i_methods = MN.Set.elements method_set;
              i_subs = [];
            }
          in
          CN.Map.add cname info infos)
        CN.Map.empty order
    in
    (* Direct subclasses, in declaration order of the children. *)
    let infos =
      List.fold_left
        (fun infos d ->
          List.fold_left
            (fun infos p ->
              let pi = CN.Map.find p infos in
              CN.Map.add p { pi with i_subs = pi.i_subs @ [ d.c_name ] } infos)
            infos d.c_parents)
        infos decls
    in
    Ok { infos; order }
  with Error e -> Error e

let info s c =
  match CN.Map.find_opt c s.infos with
  | Some i -> i
  | None -> invalid_arg (Format.asprintf "Schema: unknown class %a" CN.pp c)

let classes s = s.order
let mem s c = CN.Map.mem c s.infos
let parents s c = (info s c).i_decl.c_parents
let linearization s c = (info s c).i_lin
let ancestors s c = List.tl (info s c).i_lin
let subclasses s c = (info s c).i_subs

let domain s c =
  let rec go acc c = List.fold_left go (acc @ [ c ]) (subclasses s c) in
  let all = go [] c in
  (* A class can be reached through several parents; keep first occurrence. *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun c ->
      let k = CN.to_string c in
      if Hashtbl.mem seen k then false
      else (
        Hashtbl.add seen k ();
        true))
    all

let is_ancestor s a ~of_ = List.exists (CN.equal a) (linearization s of_)
let fields s c = (info s c).i_fields
let field_index s c f = FN.Map.find_opt f (info s c).i_findex
let field_def s c f = FN.Map.find_opt f (info s c).i_fdefs
let methods s c = (info s c).i_methods
let own_methods s c = (info s c).i_decl.c_methods

let resolve s c m =
  List.find_map
    (fun c' ->
      match MN.Map.find_opt m (info s c').i_own_mmap with
      | Some md -> Some (c', md)
      | None -> None)
    (linearization s c)

let resolve_from = resolve
let method_def_in s c m = MN.Map.find_opt m (info s c).i_own_mmap

let map_bodies f s =
  let map_method md = { m_name = md.m_name; m_params = md.m_params; m_body = f md.m_body } in
  let map_decl d =
    {
      c_name = d.c_name;
      c_parents = d.c_parents;
      c_fields = d.c_fields;
      c_methods = List.map map_method d.c_methods;
    }
  in
  let map_info i =
    {
      i_decl = map_decl i.i_decl;
      i_lin = i.i_lin;
      i_fields = i.i_fields;
      i_findex = i.i_findex;
      i_fdefs = i.i_fdefs;
      i_own_mmap = MN.Map.map map_method i.i_own_mmap;
      i_methods = i.i_methods;
      i_subs = i.i_subs;
    }
  in
  { infos = CN.Map.map map_info s.infos; order = s.order }

let decls s = List.map (fun c -> (info s c).i_decl) s.order
let fold_classes f acc s = List.fold_left f acc s.order
let class_count s = List.length s.order
