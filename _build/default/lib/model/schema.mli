(** Class schemas with simple and multiple inheritance.

    A schema is a closed set of class definitions.  Method bodies are kept
    polymorphic (['b]) so that this module does not depend on any particular
    method language: the ODML front end instantiates ['b] with its AST.

    The module implements the operators the paper relies on:
    [FIELDS(C)] ({!fields}), [METHODS(C)] ({!methods}), [ANCESTORS(C)]
    ({!ancestors}), domains ({!domain}) and late-binding method resolution
    ({!resolve}), with multiple inheritance handled by C3 linearisation. *)

type field_def = {
  f_name : Name.Field.t;
  f_ty : Value.ty;
  f_owner : Name.Class.t;  (** the class that declares this field *)
}

type 'b method_def = {
  m_name : Name.Method.t;
  m_params : string list;
  m_body : 'b;
}

(** A class as written by the user, before schema validation. *)
type 'b class_decl = {
  c_name : Name.Class.t;
  c_parents : Name.Class.t list;  (** direct superclasses, in declaration order *)
  c_fields : (Name.Field.t * Value.ty) list;
  c_methods : 'b method_def list;
}

type 'b t

type error =
  | Duplicate_class of Name.Class.t
  | Unknown_parent of Name.Class.t * Name.Class.t  (** class, missing parent *)
  | Inheritance_cycle of Name.Class.t list
  | Linearization_failure of Name.Class.t
      (** the C3 merge of the parents' linearisations has no solution *)
  | Duplicate_field of Name.Class.t * Name.Field.t
      (** the full field set of the class would contain the name twice *)
  | Duplicate_method of Name.Class.t * Name.Method.t
      (** two definitions of the same method within one class *)
  | Unknown_field_class of Name.Class.t * Name.Field.t * Name.Class.t
      (** class, field, unknown reference domain in the field's type *)

val pp_error : Format.formatter -> error -> unit

val build : 'b class_decl list -> ('b t, error) result
(** [build decls] validates the declarations and computes linearisations,
    field layouts and method tables.  The declarations may come in any
    order. *)

val classes : 'b t -> Name.Class.t list
(** All classes, parents before children (topological order). *)

val mem : 'b t -> Name.Class.t -> bool
val parents : 'b t -> Name.Class.t -> Name.Class.t list

val linearization : 'b t -> Name.Class.t -> Name.Class.t list
(** [linearization s c] is the C3 method-resolution order of [c]; it starts
    with [c] itself and enumerates every ancestor exactly once, most
    specific first. *)

val ancestors : 'b t -> Name.Class.t -> Name.Class.t list
(** [ANCESTORS(C)]: {!linearization} without [c] itself. *)

val subclasses : 'b t -> Name.Class.t -> Name.Class.t list
(** Direct subclasses, in declaration order. *)

val domain : 'b t -> Name.Class.t -> Name.Class.t list
(** The domain rooted at [c]: [c] and all its transitive subclasses. *)

val is_ancestor : 'b t -> Name.Class.t -> of_:Name.Class.t -> bool
(** [is_ancestor s a ~of_:c] holds when [a] is [c] or a transitive
    superclass of [c]. *)

val fields : 'b t -> Name.Class.t -> field_def list
(** [FIELDS(C)]: inherited fields first (most general class first), then own
    fields, each in declaration order.  The position of a field in this list
    is its index in instance storage. *)

val field_index : 'b t -> Name.Class.t -> Name.Field.t -> int option
val field_def : 'b t -> Name.Class.t -> Name.Field.t -> field_def option

val methods : 'b t -> Name.Class.t -> Name.Method.t list
(** [METHODS(C)]: every method understood by instances of [c] (own or
    inherited), sorted by name. *)

val own_methods : 'b t -> Name.Class.t -> 'b method_def list
(** Methods defined or overridden in [c] itself, in declaration order. *)

val resolve : 'b t -> Name.Class.t -> Name.Method.t -> (Name.Class.t * 'b method_def) option
(** Late binding: [resolve s c m] is the defining class and definition of
    the method bound when message [m] is sent to a proper instance of [c] —
    the first definition found along [c]'s linearisation. *)

val resolve_from : 'b t -> Name.Class.t -> Name.Method.t -> (Name.Class.t * 'b method_def) option
(** Prefixed resolution: [resolve_from s c' m] resolves [m] starting at
    class [c'] itself (used for [send C'.M to self]). *)

val method_def_in : 'b t -> Name.Class.t -> Name.Method.t -> 'b method_def option
(** The definition of [m] written in class [c] itself, if any. *)

val map_bodies : ('b -> 'c) -> 'b t -> 'c t

val decls : 'b t -> 'b class_decl list
(** The original declarations, in topological order; [build (decls s)]
    reconstructs an equivalent schema.  Used by incremental
    recompilation to apply method-level edits. *)

val fold_classes : ('acc -> Name.Class.t -> 'acc) -> 'acc -> 'b t -> 'acc

val class_count : 'b t -> int
