(** Runtime values and field types.

    Fields are either of a base type (integer, boolean, string, float) or
    references to instances of another class, following the data model of
    the paper (sec. 2.1).  Complex/bulk types (tuples, sets, lists) are out
    of scope, as in the paper. *)

type ty =
  | Tint
  | Tbool
  | Tstring
  | Tfloat
  | Tref of Name.Class.t  (** reference to an instance of the given domain *)

type t =
  | Vint of int
  | Vbool of bool
  | Vstring of string
  | Vfloat of float
  | Vref of Oid.t
  | Vnull  (** the undefined reference / uninitialised value *)

val equal_ty : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit

val default : ty -> t
(** [default ty] is the value a freshly created field of type [ty] holds:
    [0], [false], [""], [0.] or [Vnull]. *)

val matches : ty -> t -> bool
(** [matches ty v] holds when [v] may be stored in a field of type [ty].
    [Vnull] matches any reference type.  Reference class conformance
    (subtyping) is checked by the store, not here. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val truthy : t -> bool
(** [truthy v] interprets [v] as a condition: [Vbool b] is [b], [Vnull] is
    false, any other value is true. *)
