module type S = sig
  type t

  val of_string : string -> t
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Make () : S = struct
  type t = string

  let of_string s = s
  let to_string s = s
  let equal = String.equal
  let compare = String.compare
  let hash = Hashtbl.hash
  let pp ppf s = Format.pp_print_string ppf s

  module Map = Map.Make (String)
  module Set = Set.Make (String)
end

module Class = Make ()
module Method = Make ()
module Field = Make ()
