(** Object identifiers.

    An OID uniquely identifies an instance within one {!Store.t}.  OIDs are
    allocated by a per-store generator and are never reused. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_int : t -> int
(** [to_int oid] is a stable integer encoding, useful as a dense index. *)

val of_int : int -> t
(** [of_int i] reconstructs an OID from {!to_int}.  Only meaningful for
    integers previously produced by {!to_int} or {!Gen.fresh}. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(** Monotonic OID generators. *)
module Gen : sig
  type oid := t
  type t

  val create : unit -> t
  val fresh : t -> oid

  val count : t -> int
  (** Number of OIDs handed out so far. *)
end
