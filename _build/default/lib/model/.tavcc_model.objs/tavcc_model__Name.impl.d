lib/model/name.ml: Format Hashtbl Map Set String
