lib/model/name.mli: Format Map Set
