lib/model/store.mli: Name Oid Schema Value
