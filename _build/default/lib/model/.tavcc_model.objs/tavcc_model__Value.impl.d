lib/model/value.ml: Bool Float Format Int Name Oid String
