lib/model/schema.mli: Format Name Value
