lib/model/oid.mli: Format Map Set
