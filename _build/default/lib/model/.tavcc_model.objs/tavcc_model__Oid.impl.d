lib/model/oid.ml: Format Hashtbl Int Map Set
