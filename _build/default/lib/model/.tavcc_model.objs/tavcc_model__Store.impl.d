lib/model/store.ml: Array Hashtbl List Name Oid Option Schema Value
