lib/model/schema.ml: Format Hashtbl List Name Value
