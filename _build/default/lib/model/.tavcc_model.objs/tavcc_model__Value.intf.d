lib/model/value.mli: Format Name Oid
