(** Interned symbolic names for schema entities.

    Class, method and field names are given distinct abstract types so that
    they cannot be confused with one another.  Each name kind is produced by
    applying {!Make}, which yields a fresh type sharing no equality with the
    others. *)

module type S = sig
  type t

  val of_string : string -> t
  (** [of_string s] is the name spelled [s].  Names are structural: two calls
      with the same string yield equal names. *)

  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Make () : S
(** [Make ()] yields a fresh name kind, incompatible with any other. *)

module Class : S
(** Names of classes. *)

module Method : S
(** Names of methods (messages). *)

module Field : S
(** Names of instance variables. *)
