module CN = Name.Class
module FN = Name.Field

type instance = { cls : CN.t; slots : Value.t array }

type 'b t = {
  schema : 'b Schema.t;
  gen : Oid.Gen.t;
  objects : (int, instance) Hashtbl.t;
  extents : (string, Oid.t list ref) Hashtbl.t;  (* keyed by class name, newest first *)
}

exception Unknown_oid of Oid.t
exception Unknown_field of CN.t * FN.t
exception Type_mismatch of CN.t * FN.t * Value.t

let create schema =
  { schema; gen = Oid.Gen.create (); objects = Hashtbl.create 256; extents = Hashtbl.create 16 }

let schema s = s.schema

let extent_ref s c =
  let k = CN.to_string c in
  match Hashtbl.find_opt s.extents k with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace s.extents k r;
      r

let new_instance ?(init = []) s c =
  let fields = Schema.fields s.schema c in
  let slots = Array.of_list (List.map (fun fd -> Value.default fd.Schema.f_ty) fields) in
  List.iter
    (fun (f, v) ->
      match Schema.field_index s.schema c f with
      | None -> raise (Unknown_field (c, f))
      | Some i ->
          let fd = Option.get (Schema.field_def s.schema c f) in
          if not (Value.matches fd.Schema.f_ty v) then raise (Type_mismatch (c, f, v));
          slots.(i) <- v)
    init;
  let oid = Oid.Gen.fresh s.gen in
  Hashtbl.replace s.objects (Oid.to_int oid) { cls = c; slots };
  let r = extent_ref s c in
  r := oid :: !r;
  oid

let find s oid =
  match Hashtbl.find_opt s.objects (Oid.to_int oid) with
  | Some i -> i
  | None -> raise (Unknown_oid oid)

let delete_instance s oid =
  let i = find s oid in
  Hashtbl.remove s.objects (Oid.to_int oid);
  let r = extent_ref s i.cls in
  r := List.filter (fun o -> not (Oid.equal o oid)) !r

let exists s oid = Hashtbl.mem s.objects (Oid.to_int oid)
let class_of s oid = (find s oid).cls

let index_of s inst f =
  match Schema.field_index s.schema inst.cls f with
  | Some i -> i
  | None -> raise (Unknown_field (inst.cls, f))

let read s oid f =
  let inst = find s oid in
  inst.slots.(index_of s inst f)

let write s oid f v =
  let inst = find s oid in
  let fd =
    match Schema.field_def s.schema inst.cls f with
    | Some fd -> fd
    | None -> raise (Unknown_field (inst.cls, f))
  in
  if not (Value.matches fd.Schema.f_ty v) then raise (Type_mismatch (inst.cls, f, v));
  inst.slots.(index_of s inst f) <- v

let read_idx s oid i = (find s oid).slots.(i)
let write_idx s oid i v = (find s oid).slots.(i) <- v
let field_count s oid = Array.length (find s oid).slots
let extent s c = List.rev !(extent_ref s c)

let deep_extent s c =
  List.concat_map (fun c' -> extent s c') (Schema.domain s.schema c)

let instance_count s = Hashtbl.length s.objects
