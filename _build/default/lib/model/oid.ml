type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf o = Format.fprintf ppf "@@%d" o
let to_int o = o
let of_int i = i

module Map = Map.Make (Int)
module Set = Set.Make (Int)

module Gen = struct
  type t = { mutable next : int }

  let create () = { next = 0 }

  let fresh g =
    let o = g.next in
    g.next <- o + 1;
    o

  let count g = g.next
end
