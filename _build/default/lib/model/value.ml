type ty = Tint | Tbool | Tstring | Tfloat | Tref of Name.Class.t

type t =
  | Vint of int
  | Vbool of bool
  | Vstring of string
  | Vfloat of float
  | Vref of Oid.t
  | Vnull

let equal_ty a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool | Tstring, Tstring | Tfloat, Tfloat -> true
  | Tref c, Tref c' -> Name.Class.equal c c'
  | (Tint | Tbool | Tstring | Tfloat | Tref _), _ -> false

let pp_ty ppf = function
  | Tint -> Format.pp_print_string ppf "integer"
  | Tbool -> Format.pp_print_string ppf "boolean"
  | Tstring -> Format.pp_print_string ppf "string"
  | Tfloat -> Format.pp_print_string ppf "float"
  | Tref c -> Name.Class.pp ppf c

let default = function
  | Tint -> Vint 0
  | Tbool -> Vbool false
  | Tstring -> Vstring ""
  | Tfloat -> Vfloat 0.
  | Tref _ -> Vnull

let matches ty v =
  match (ty, v) with
  | Tint, Vint _
  | Tbool, Vbool _
  | Tstring, Vstring _
  | Tfloat, Vfloat _
  | Tref _, (Vref _ | Vnull) ->
      true
  | (Tint | Tbool | Tstring | Tfloat | Tref _), _ -> false

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> Int.equal x y
  | Vbool x, Vbool y -> Bool.equal x y
  | Vstring x, Vstring y -> String.equal x y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Vref x, Vref y -> Oid.equal x y
  | Vnull, Vnull -> true
  | (Vint _ | Vbool _ | Vstring _ | Vfloat _ | Vref _ | Vnull), _ -> false

let rank = function
  | Vnull -> 0
  | Vbool _ -> 1
  | Vint _ -> 2
  | Vfloat _ -> 3
  | Vstring _ -> 4
  | Vref _ -> 5

let compare a b =
  match (a, b) with
  | Vint x, Vint y -> Int.compare x y
  | Vbool x, Vbool y -> Bool.compare x y
  | Vstring x, Vstring y -> String.compare x y
  | Vfloat x, Vfloat y -> Float.compare x y
  | Vref x, Vref y -> Oid.compare x y
  | Vnull, Vnull -> 0
  | _ -> Int.compare (rank a) (rank b)

let pp ppf = function
  | Vint i -> Format.pp_print_int ppf i
  | Vbool b -> Format.pp_print_bool ppf b
  | Vstring s -> Format.fprintf ppf "%S" s
  | Vfloat f -> Format.pp_print_float ppf f
  | Vref o -> Oid.pp ppf o
  | Vnull -> Format.pp_print_string ppf "null"

let truthy = function
  | Vbool b -> b
  | Vnull -> false
  | Vint _ | Vstring _ | Vfloat _ | Vref _ -> true
