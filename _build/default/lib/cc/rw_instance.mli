(** Baseline: read/write instance locking at {e every} message.

    Methods are classified reader/writer from their {e direct} code alone
    (a method that only sends messages is a reader — m1 of the example),
    and every message, self-directed or not, controls the instance again.
    This is the behaviour the paper criticises: one logical access is
    controlled several times (problem P2) and a reader that self-sends a
    writer escalates its lock read→write, the classical deadlock source
    (problem P3).  Class-level intention/extent locks use Gray's
    IS/IX/S/X. *)

val scheme : Tavcc_core.Analysis.t -> Scheme.t

(** {2 Shared pieces}

    The building blocks are exposed for {!Rw_toponly}, which differs only
    in its classifier and in ignoring self-sends. *)

val rw_conflict : Tavcc_lock.Lock_table.req -> Tavcc_lock.Lock_table.req -> bool
(** R/W matrix on instances, Gray's matrix on classes. *)

val lock_message :
  Tavcc_core.Analysis.t ->
  Scheme.ctx ->
  Tavcc_model.Oid.t ->
  Tavcc_model.Name.Class.t ->
  Tavcc_model.Name.Method.t ->
  classify:
    (Tavcc_core.Analysis.t -> Tavcc_model.Name.Class.t -> Tavcc_model.Name.Method.t -> bool) ->
  unit

val lock_extent :
  Tavcc_core.Analysis.t ->
  Tavcc_lang.Ast.body Tavcc_model.Schema.t ->
  Scheme.ctx ->
  Tavcc_model.Name.Class.t ->
  deep:bool ->
  pred:Tavcc_lock.Pred.t option ->
  Tavcc_model.Name.Method.t ->
  classify:
    (Tavcc_core.Analysis.t -> Tavcc_model.Name.Class.t -> Tavcc_model.Name.Method.t -> bool) ->
  unit

val lock_some :
  Tavcc_core.Analysis.t ->
  Tavcc_lang.Ast.body Tavcc_model.Schema.t ->
  Scheme.ctx ->
  Tavcc_model.Name.Class.t ->
  Tavcc_model.Name.Method.t ->
  classify:
    (Tavcc_core.Analysis.t -> Tavcc_model.Name.Class.t -> Tavcc_model.Name.Method.t -> bool) ->
  unit
