open Tavcc_model

type t =
  | Call of Oid.t * Name.Method.t * Value.t list
  | Call_some of {
      root : Name.Class.t;
      targets : Oid.t list;
      meth : Name.Method.t;
      args : Value.t list;
    }
  | Call_extent of { cls : Name.Class.t; deep : bool; meth : Name.Method.t; args : Value.t list }
  | Call_range of {
      cls : Name.Class.t;
      deep : bool;
      pred : Tavcc_lock.Pred.t;
      meth : Name.Method.t;
      args : Value.t list;
    }

let pp ppf = function
  | Call (oid, m, _) -> Format.fprintf ppf "call %a.%a" Oid.pp oid Name.Method.pp m
  | Call_some { root; targets; meth; _ } ->
      Format.fprintf ppf "some(%a) %d insts .%a" Name.Class.pp root (List.length targets)
        Name.Method.pp meth
  | Call_extent { cls; deep; meth; _ } ->
      Format.fprintf ppf "extent%s(%a).%a" (if deep then "*" else "") Name.Class.pp cls
        Name.Method.pp meth
  | Call_range { cls; deep; pred; meth; _ } ->
      Format.fprintf ppf "range%s(%a | %a).%a" (if deep then "*" else "") Name.Class.pp cls
        Tavcc_lock.Pred.pp pred Name.Method.pp meth
