(** Global numbering of the compiled access modes.

    Each class has its own commutativity relation (sec. 5.1); the lock
    manager, however, works with plain integers.  This module flattens the
    per-class matrices into one id space: mode [(c, m)] gets a unique
    integer, and {!commute} dispatches back to the class's matrix in O(1).

    Two modes of different classes never meet on a resource — instance
    locks use the proper class of the instance, and class locks use the
    class being locked — so {!commute} may assert same-class inputs. *)

open Tavcc_model
open Tavcc_core

type t

val build : Analysis.t -> t

val id : t -> Name.Class.t -> Name.Method.t -> int
(** @raise Invalid_argument when the method is unknown in the class *)

val class_of : t -> int -> Name.Class.t
val method_of : t -> int -> Name.Method.t

val commute : t -> int -> int -> bool
(** @raise Invalid_argument when the two modes belong to different
    classes *)

val count : t -> int
val pp_mode : t -> Format.formatter -> int -> unit
