(** Transaction actions: the access shapes of sec. 5.2.

    Split out of {!Exec} so that schemes can see a transaction's whole
    action list at begin time (conservative preclaiming needs it). *)

open Tavcc_model

type t =
  | Call of Oid.t * Name.Method.t * Value.t list
  | Call_some of {
      root : Name.Class.t;  (** domain whose classes take intention locks *)
      targets : Oid.t list;
      meth : Name.Method.t;
      args : Value.t list;
    }
  | Call_extent of {
      cls : Name.Class.t;
      deep : bool;  (** false: proper extent; true: the whole domain *)
      meth : Name.Method.t;
      args : Value.t list;
    }
  | Call_range of {
      cls : Name.Class.t;
      deep : bool;
      pred : Tavcc_lock.Pred.t;  (** only matching instances receive the message *)
      meth : Name.Method.t;
      args : Value.t list;
    }

val pp : Format.formatter -> t -> unit
