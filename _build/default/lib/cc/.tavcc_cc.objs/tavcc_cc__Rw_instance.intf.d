lib/cc/rw_instance.mli: Scheme Tavcc_core Tavcc_lang Tavcc_lock Tavcc_model
