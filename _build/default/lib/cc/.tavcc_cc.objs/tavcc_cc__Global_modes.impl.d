lib/cc/global_modes.ml: Analysis Array Format List Modes_table Name Schema Tavcc_core Tavcc_model
