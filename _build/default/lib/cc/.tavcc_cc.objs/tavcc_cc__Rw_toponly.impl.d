lib/cc/rw_toponly.ml: Analysis Rw_instance Scheme Tavcc_core
