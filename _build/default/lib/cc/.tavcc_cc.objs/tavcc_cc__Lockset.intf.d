lib/cc/lockset.mli: Ast Exec Lock_table Scheme Tavcc_lang Tavcc_lock Tavcc_model
