lib/cc/rw_implicit.ml: Analysis Compat List Resource Rw_instance Schema Scheme Tavcc_core Tavcc_lock Tavcc_model
