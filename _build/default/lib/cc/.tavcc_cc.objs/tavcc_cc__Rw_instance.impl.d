lib/cc/rw_instance.ml: Analysis Compat List Lock_table Resource Schema Scheme Tavcc_core Tavcc_lock Tavcc_model
