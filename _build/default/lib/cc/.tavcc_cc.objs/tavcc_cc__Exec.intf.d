lib/cc/exec.mli: Action Ast Format Name Oid Scheme Store Tavcc_lang Tavcc_lock Tavcc_model Value
