lib/cc/relational.ml: Access_vector Analysis Compat List Lock_table Mode Name Option Resource Schema Scheme Tavcc_core Tavcc_lock Tavcc_model
