lib/cc/relational.mli: Scheme Tavcc_core Tavcc_model
