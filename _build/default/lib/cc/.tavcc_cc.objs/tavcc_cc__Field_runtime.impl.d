lib/cc/field_runtime.ml: Compat Lock_table Resource Scheme Tavcc_lock
