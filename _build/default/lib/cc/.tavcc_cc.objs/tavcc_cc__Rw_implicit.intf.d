lib/cc/rw_implicit.mli: Scheme Tavcc_core
