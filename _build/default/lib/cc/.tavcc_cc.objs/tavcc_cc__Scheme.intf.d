lib/cc/scheme.mli: Action Analysis Lock_table Name Oid Resource Tavcc_core Tavcc_lock Tavcc_model Tavcc_txn
