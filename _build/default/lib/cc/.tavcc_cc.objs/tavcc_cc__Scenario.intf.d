lib/cc/scenario.mli: Analysis Format Scheme Tavcc_core
