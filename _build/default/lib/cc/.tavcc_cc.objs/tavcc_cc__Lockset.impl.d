lib/cc/lockset.ml: Array Exec Fun List Lock_table Resource Scheme Tavcc_lock Tavcc_txn
