lib/cc/tav_preclaim.mli: Scheme Tavcc_core
