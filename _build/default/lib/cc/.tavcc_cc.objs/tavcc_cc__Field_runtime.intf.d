lib/cc/field_runtime.mli: Scheme Tavcc_core
