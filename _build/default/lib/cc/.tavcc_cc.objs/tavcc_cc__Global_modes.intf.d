lib/cc/global_modes.mli: Analysis Format Name Tavcc_core Tavcc_model
