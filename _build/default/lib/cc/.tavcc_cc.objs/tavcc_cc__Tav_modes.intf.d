lib/cc/tav_modes.mli: Scheme Tavcc_core
