lib/cc/rw_toponly.mli: Scheme Tavcc_core
