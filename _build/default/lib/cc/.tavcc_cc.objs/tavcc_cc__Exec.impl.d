lib/cc/exec.ml: Action Interp List Name Oid Scheme Store Tavcc_lang Tavcc_lock Tavcc_model Tavcc_txn Value
