lib/cc/scenario.ml: Array Exec Format List Lockset Paper_example Scheme Store String Tavcc_core Tavcc_model Value
