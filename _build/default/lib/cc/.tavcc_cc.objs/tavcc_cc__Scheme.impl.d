lib/cc/scheme.ml: Access_vector Action Analysis Lock_table Name Oid Printf Tavcc_core Tavcc_lock Tavcc_model Tavcc_txn
