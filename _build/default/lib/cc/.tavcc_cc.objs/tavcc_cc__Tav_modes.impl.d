lib/cc/tav_modes.ml: Analysis Global_modes List Lock_table Pred Resource Schema Scheme Tavcc_core Tavcc_lock Tavcc_model
