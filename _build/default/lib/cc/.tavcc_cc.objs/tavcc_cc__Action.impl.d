lib/cc/action.ml: Format List Name Oid Tavcc_lock Tavcc_model Value
