lib/cc/action.mli: Format Name Oid Tavcc_lock Tavcc_model Value
