lib/cc/tav_preclaim.ml: Action Analysis Depgraph Extraction Global_modes List Lock_table Name Resource Schema Scheme Site Tavcc_core Tavcc_lock Tavcc_model
