open Tavcc_model
open Tavcc_core
module P = Paper_example

type result = {
  scheme_name : string;
  pairwise : bool array array;
  maximal : int list list;
}

let transaction_names = [| "T1"; "T2"; "T3"; "T4" |]

(* One instance with a private c3 collaborator wired into f3. *)
let make_instance store cls =
  let target = Store.new_instance store P.c3 in
  Store.new_instance store cls ~init:[ (P.f3, Value.Vref target) ]

let build_store () =
  let schema = P.schema () in
  let store = Store.create schema in
  let i1 = make_instance store P.c1 in
  let j1 = make_instance store P.c1 in
  let j2 = make_instance store P.c2 in
  let _k1 = make_instance store P.c2 in
  (store, i1, j1, j2)

let transactions i1 j1 j2 =
  [
    [ Exec.Call (i1, P.m1, [ Value.Vint 1 ]) ];
    [ Exec.Call_extent { cls = P.c1; deep = true; meth = P.m1; args = [ Value.Vint 1 ] } ];
    [ Exec.Call_some { root = P.c1; targets = [ j1; j2 ]; meth = P.m3; args = [] } ];
    [
      Exec.Call_extent
        { cls = P.c2; deep = true; meth = P.m4; args = [ Value.Vint 0; Value.Vstring "x" ] };
    ];
  ]

let evaluate make_scheme =
  let an = P.analysis () in
  let scheme = make_scheme an in
  let store, i1, j1, j2 = build_store () in
  let sets =
    List.mapi
      (fun i actions -> Lockset.of_actions ~scheme ~store ~txn_id:(i + 1) actions)
      (transactions i1 j1 j2)
  in
  let arr = Array.of_list sets in
  let n = Array.length arr in
  let pairwise =
    Array.init n (fun i ->
        Array.init n (fun j -> i = j || Lockset.compatible_pair scheme arr.(i) arr.(j)))
  in
  { scheme_name = scheme.Scheme.name; pairwise; maximal = Lockset.maximal_groups scheme sets }

let group_name g = String.concat "||" (List.map (fun i -> transaction_names.(i)) g)
let maximal_names r = List.map group_name r.maximal

let pp ppf r =
  Format.fprintf ppf "scheme %s:@\n" r.scheme_name;
  let n = Array.length r.pairwise in
  Format.fprintf ppf "    ";
  for j = 0 to n - 1 do
    Format.fprintf ppf " %s " transaction_names.(j)
  done;
  Format.fprintf ppf "@\n";
  for i = 0 to n - 1 do
    Format.fprintf ppf "  %s " transaction_names.(i);
    for j = 0 to n - 1 do
      Format.fprintf ppf " %s " (if r.pairwise.(i).(j) then "ok" else "--")
    done;
    Format.fprintf ppf "@\n"
  done;
  Format.fprintf ppf "  maximal concurrent groups: %s@\n"
    (String.concat ", " (maximal_names r))
