open Tavcc_model
open Tavcc_core
module CN = Name.Class

type t = {
  base : int CN.Map.t;  (* first global id of each class *)
  tables : Modes_table.t array;  (* indexed by class rank *)
  class_rank : int CN.Map.t;
  owner : (int * int) array;  (* global id -> (class rank, local mode) *)
  total : int;
}

let build an =
  let schema = Analysis.schema an in
  let classes = Schema.classes schema in
  let _, base, ranks, tables_rev =
    List.fold_left
      (fun (next, base, ranks, tables) cls ->
        let table = Analysis.table an cls in
        ( next + Modes_table.size table,
          CN.Map.add cls next base,
          CN.Map.add cls (List.length tables) ranks,
          table :: tables ))
      (0, CN.Map.empty, CN.Map.empty, [])
      classes
  in
  let tables = Array.of_list (List.rev tables_rev) in
  let total = Array.fold_left (fun n tb -> n + Modes_table.size tb) 0 tables in
  let owner = Array.make total (0, 0) in
  List.iter
    (fun cls ->
      let rank = CN.Map.find cls ranks in
      let b = CN.Map.find cls base in
      for i = 0 to Modes_table.size tables.(rank) - 1 do
        owner.(b + i) <- (rank, i)
      done)
    classes;
  { base; tables; class_rank = ranks; owner; total }

let id t cls m =
  match CN.Map.find_opt cls t.base with
  | None -> invalid_arg (Format.asprintf "Global_modes: unknown class %a" CN.pp cls)
  | Some b -> (
      let rank = CN.Map.find cls t.class_rank in
      match Modes_table.mode_of_method t.tables.(rank) m with
      | Some i -> b + i
      | None ->
          invalid_arg
            (Format.asprintf "Global_modes: %a is not a method of %a" Name.Method.pp m CN.pp
               cls))

let class_of t g =
  let rank, _ = t.owner.(g) in
  Modes_table.cls t.tables.(rank)

let method_of t g =
  let rank, i = t.owner.(g) in
  Modes_table.method_of_mode t.tables.(rank) i

let commute t g g' =
  let rank, i = t.owner.(g) in
  let rank', i' = t.owner.(g') in
  if rank <> rank' then
    invalid_arg "Global_modes.commute: modes of two different classes never share a resource";
  Modes_table.commute t.tables.(rank) i i'

let count t = t.total

let pp_mode t ppf g =
  Format.fprintf ppf "%a.%a" CN.pp (class_of t g) Name.Method.pp (method_of t g)
