(** Baseline: read/write instance locking at the top message only.

    The strongest scheme expressible with two access modes: the method's
    whole execution pattern is classified through its transitive access
    vector ("announce the most exclusive mode up front"), and self-sends
    are free.  Problems P2 and P3 disappear, but P4 remains: two writers
    on disjoint field sets (m2 and m4 of the example) still conflict,
    which the relational decomposition of the same schema would allow. *)

val scheme : Tavcc_core.Analysis.t -> Scheme.t
