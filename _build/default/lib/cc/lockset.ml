open Tavcc_lock

let of_actions ~scheme ~store ~txn_id actions =
  let txn = Tavcc_txn.Txn.make ~id:txn_id ~birth:txn_id in
  let acc = ref [] in
  let acquire req = if not (List.mem req !acc) then acc := req :: !acc in
  let ctx = { Scheme.txn; acquire } in
  Exec.begin_txn ~scheme ~store ~ctx actions;
  List.iter (fun a -> Exec.perform ~scheme ~store ~ctx a) actions;
  Tavcc_txn.Txn.undo_all store txn;
  List.rev !acc

let compatible_pair scheme a b =
  List.for_all
    (fun ra ->
      List.for_all
        (fun rb ->
          (not (Resource.equal ra.Lock_table.r_res rb.Lock_table.r_res))
          || ((not (scheme.Scheme.conflict ra rb)) && not (scheme.Scheme.conflict rb ra)))
        b)
    a

let compatible_group scheme sets =
  let rec pairs = function
    | [] -> true
    | x :: tl -> List.for_all (compatible_pair scheme x) tl && pairs tl
  in
  pairs sets

let maximal_groups scheme sets =
  let sets = Array.of_list sets in
  let n = Array.length sets in
  let compat = Array.init n (fun i -> Array.init n (fun j -> compatible_pair scheme sets.(i) sets.(j))) in
  let subsets = List.init (1 lsl n) (fun mask -> mask) in
  let members mask = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
  let ok mask =
    let ms = members mask in
    List.for_all (fun i -> List.for_all (fun j -> i = j || compat.(i).(j)) ms) ms
  in
  let good = List.filter (fun m -> m <> 0 && ok m) subsets in
  let maximal =
    List.filter
      (fun m -> not (List.exists (fun m' -> m' <> m && m land m' = m) good))
      good
  in
  List.map members maximal |> List.sort compare
