(** The four-transaction scenario of sec. 5.2, evaluated mechanically.

    - T1 sends [m1] to one instance of [c1];
    - T2 sends [m1] to the extension of class [c1] (hierarchical);
    - T3 sends [m3] to some instances of the domain rooted at [c1];
    - T4 sends [m4] to all instances of the domain rooted at [c2].

    The paper derives by hand which groups may run concurrently under
    three regimes; {!evaluate} recomputes them from recorded lock sets:

    - access-vector modes: T1‖T3‖T4 and T2‖T3‖T4;
    - read/write instance locking: T1‖T3 or T1‖T4;
    - the relational decomposition: T1‖T3 or T3‖T4. *)

open Tavcc_core

type result = {
  scheme_name : string;
  pairwise : bool array array;  (** 4×4; [true] on the diagonal *)
  maximal : int list list;  (** maximal concurrent groups, 0-based (0 = T1) *)
}

val transaction_names : string array
(** [T1; T2; T3; T4]. *)

val evaluate : (Analysis.t -> Scheme.t) -> result
(** Builds the example store (instances of c1 and c2, each with its own c3
    collaborator), records the four lock sets and intersects them. *)

val pp : Format.formatter -> result -> unit

val maximal_names : result -> string list
(** Human-readable groups, e.g. ["T1||T3||T4"]. *)
