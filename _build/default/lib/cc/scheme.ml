open Tavcc_model
open Tavcc_core
open Tavcc_lock

type ctx = { txn : Tavcc_txn.Txn.t; acquire : Lock_table.req -> unit }

type t = {
  name : string;
  descr : string;
  conflict : Lock_table.req -> Lock_table.req -> bool;
  on_begin : ctx -> class_of:(Oid.t -> Name.Class.t) -> Action.t list -> unit;
  on_top_send : ctx -> Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  on_self_send : ctx -> Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  on_read : ctx -> Oid.t -> Name.Class.t -> Name.Field.t -> unit;
  on_write : ctx -> Oid.t -> Name.Class.t -> Name.Field.t -> unit;
  on_extent :
    ctx -> Name.Class.t -> deep:bool -> pred:Tavcc_lock.Pred.t option -> Name.Method.t -> unit;
  on_some_of_domain : ctx -> Name.Class.t -> Name.Method.t -> unit;
  locks_instances_on_extent : bool;
}

let no_begin _ctx ~class_of:_ _actions = ()

let req ~txn ?(hier = false) ?pred res mode =
  { Lock_table.r_txn = txn.Tavcc_txn.Txn.id; r_res = res; r_mode = mode; r_hier = hier;
    r_pred = pred }

let mode_name _t (r : Lock_table.req) = Printf.sprintf "mode%d" r.Lock_table.r_mode

let has_write av = Access_vector.write_fields av <> []
let writes_directly an cls m = has_write (Analysis.dav an cls m)
let writes_transitively an cls m = has_write (Analysis.tav an cls m)
