(** Static lock-set evaluation (no blocking).

    Runs a transaction's actions with an [acquire] that records every
    request instead of queueing, then rolls the store back.  Comparing the
    recorded sets under the scheme's conflict relation answers "could
    these transactions run fully concurrently?" — the question sec. 5.2 of
    the paper asks about T1..T4. *)

open Tavcc_lang
open Tavcc_lock

val of_actions :
  scheme:Scheme.t ->
  store:Ast.body Tavcc_model.Store.t ->
  txn_id:int ->
  Exec.action list ->
  Lock_table.req list
(** The deduplicated lock set, in first-acquisition order.  The store is
    left unchanged (mutations are undone). *)

val compatible_pair : Scheme.t -> Lock_table.req list -> Lock_table.req list -> bool
(** No request of one set conflicts with a request of the other on the
    same resource. *)

val compatible_group : Scheme.t -> Lock_table.req list list -> bool

val maximal_groups : Scheme.t -> Lock_table.req list list -> int list list
(** Maximal subsets (by inclusion) of pairwise-compatible transactions,
    as sorted 0-based index lists, lexicographically ordered. *)
