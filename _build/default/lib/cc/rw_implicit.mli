(** Baseline: ORION-style implicit locking on the inheritance graph
    (Garza & Kim SIGMOD'88, ref. \[8\]; Malta & Martinez DASFAA'91,
    ref. \[17\]).

    With only read/write modes, a lock on a class can cover its whole
    domain {e implicitly}: an extent scan locks the scanned root alone
    in S/X, and instance accesses announce themselves by intention locks
    on {e every ancestor} of the instance's class, root first.  A domain
    lock and an instance access therefore always meet on some class of
    the ancestor chain.

    Sec. 5 of the paper explains why its own scheme cannot do this —
    per-method access modes "are no longer defined on any class", so
    explicit locking of each domain class is required (the ORION
    argument, justified "a posteriori") — making this baseline the
    natural cost comparison (bench E13).

    Like ORION's, the protocol assumes {e single} inheritance for its
    implicit coverage: with a diamond, two extent locks on incomparable
    classes could both claim a shared subclass without ever meeting on a
    common resource.  Instance-side intention chains (which follow the
    full linearisation) remain sound either way. *)

val scheme : Tavcc_core.Analysis.t -> Scheme.t
