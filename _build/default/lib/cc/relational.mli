(** Comparator: the first-normal-form relational decomposition of sec. 3.

    Each class [c] maps to a relation [r_c] holding the fields [c]
    declares; an instance maps to one tuple ({e fragment}) per class of
    its linearisation that declares fields, joined on the primary key —
    the first field of the instance's most general field-declaring
    ancestor.  A method call locks, per fragment it touches (computed
    from the TAV, grouping fields by declaring class), the tuple in R/W
    and the relation in IS/IX; extent operations lock whole relations in
    S/X.

    Writing the {e key} field additionally write-locks the instance's
    fragment in every field-declaring class of the key owner's domain —
    the primary key is the foreign key of the subclass relations, so a
    key update must reach (or guard against) the referencing tuples.
    This reproduces the paper's sec.-5.2 observation: T1 (whose method
    writes the key) excludes T4, but would not if the key were left
    alone. *)

val scheme : Tavcc_core.Analysis.t -> Scheme.t

val key_field :
  'b Tavcc_model.Schema.t ->
  Tavcc_model.Name.Class.t ->
  (Tavcc_model.Name.Class.t * Tavcc_model.Name.Field.t) option
(** The primary key of the class's relational image: the first field
    declared by its most general field-declaring ancestor, with that
    ancestor. *)

val fragments_of_tav :
  'b Tavcc_model.Schema.t ->
  Tavcc_model.Name.Class.t ->
  Tavcc_core.Access_vector.t ->
  (Tavcc_model.Name.Class.t * bool) list
(** The [(declaring class, writes?)] fragments a method with the given TAV
    touches on an instance of the class, key rule included; sorted by
    class name. *)
