(** Baseline: run-time field locking (Agrawal & El Abbadi, EDBT'92 —
    ref. \[1\] of the paper).

    Each activated method is locked (in read mode) in its class's method
    set — a schema update would take the write mode — and every field is
    locked individually, at the moment it is accessed.  This is the least
    conservative scheme of the comparison: parallelism is maximal (only
    true field conflicts block), but each access pays a lock call, the
    multiple-control problem (P2) remains for the method-set locks, and
    incremental acquisition keeps the read→write escalation deadlocks
    (P3) alive. *)

val scheme : Tavcc_core.Analysis.t -> Scheme.t
