(** The paper's scheme: compiled access-mode locking (secs. 4–5).

    One lock per instance per {e top} message, carrying the access mode
    generated from the method's transitive access vector; self-directed
    messages acquire nothing (their effect is already folded into the
    TAV).  Class locks are [(mode, hierarchical?)] pairs: two intentional
    locks never conflict, any other combination conflicts exactly when the
    modes do not commute (sec. 5.2). *)

val scheme : Tavcc_core.Analysis.t -> Scheme.t
