(** Conservative (static) two-phase locking over compiled access modes.

    An extension the compile-time analysis makes possible: the method
    dependency graph ({!Tavcc_core.Depgraph}) tells, before a transaction
    runs, every class its calls may reach through composition links.
    Acquiring all those locks at begin time, in one canonical resource
    order, yields a deadlock-free execution — no waits-for cycle can
    form under ordered acquisition — at the price of coarser coverage:
    cross-object receivers are only known by class, so they are covered
    by {e hierarchical} class locks instead of per-instance ones.

    A method with a send whose receiver class is statically unknown
    forces the transaction to preclaim the entire schema (every class,
    every mode), hierarchically — sound, and a good reason to keep
    receivers typed.

    The run-time hooks are all no-ops: every access is covered by the
    preclaimed set. *)

val scheme : Tavcc_core.Analysis.t -> Scheme.t
