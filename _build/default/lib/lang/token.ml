type t =
  | CLASS | EXTENDS | IS | END | FIELDS | METHOD | VAR
  | SEND | TO | SELF | NEW
  | IF | THEN | ELSE | WHILE | DO | RETURN
  | NULL | TRUE | FALSE | AND | OR | NOT
  | TINTEGER | TBOOLEAN | TSTRING | TFLOAT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | ASSIGN
  | COLON | SEMI | COMMA | DOT | LPAREN | RPAREN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE
  | EOF

type pos = { line : int; col : int }

let keywords =
  [
    ("class", CLASS); ("extends", EXTENDS); ("is", IS); ("end", END);
    ("fields", FIELDS); ("method", METHOD); ("var", VAR);
    ("send", SEND); ("to", TO); ("self", SELF); ("new", NEW);
    ("if", IF); ("then", THEN); ("else", ELSE); ("while", WHILE);
    ("do", DO); ("return", RETURN);
    ("null", NULL); ("true", TRUE); ("false", FALSE);
    ("and", AND); ("or", OR); ("not", NOT);
    ("integer", TINTEGER); ("boolean", TBOOLEAN); ("string", TSTRING);
    ("float", TFLOAT);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let pp ppf t =
  let s =
    match t with
    | CLASS -> "class" | EXTENDS -> "extends" | IS -> "is" | END -> "end"
    | FIELDS -> "fields" | METHOD -> "method" | VAR -> "var"
    | SEND -> "send" | TO -> "to" | SELF -> "self" | NEW -> "new"
    | IF -> "if" | THEN -> "then" | ELSE -> "else" | WHILE -> "while"
    | DO -> "do" | RETURN -> "return"
    | NULL -> "null" | TRUE -> "true" | FALSE -> "false"
    | AND -> "and" | OR -> "or" | NOT -> "not"
    | TINTEGER -> "integer" | TBOOLEAN -> "boolean" | TSTRING -> "string"
    | TFLOAT -> "float"
    | IDENT s -> s
    | INT i -> string_of_int i
    | FLOAT f -> string_of_float f
    | STRING s -> Printf.sprintf "%S" s
    | ASSIGN -> ":=" | COLON -> ":" | SEMI -> ";" | COMMA -> "," | DOT -> "."
    | LPAREN -> "(" | RPAREN -> ")"
    | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
    | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
    | EOF -> "<eof>"
  in
  Format.pp_print_string ppf s

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col
