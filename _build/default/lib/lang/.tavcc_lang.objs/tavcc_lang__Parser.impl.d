lib/lang/parser.ml: Array Ast Format Lexer List Name Schema Tavcc_model Token Value
