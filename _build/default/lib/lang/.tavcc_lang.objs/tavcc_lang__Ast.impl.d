lib/lang/ast.ml: Format List Name Option String Tavcc_model Value
