lib/lang/ast.mli: Format Tavcc_model
