lib/lang/interp.mli: Ast Name Oid Store Tavcc_model Value
