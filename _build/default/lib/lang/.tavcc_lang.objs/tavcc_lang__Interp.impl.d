lib/lang/interp.ml: Ast Float Format List Name Oid Schema Store String Tavcc_model Value
