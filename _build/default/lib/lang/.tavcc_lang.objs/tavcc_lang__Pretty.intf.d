lib/lang/pretty.mli: Ast Format Tavcc_model
