lib/lang/check.mli: Ast Format Tavcc_model
