lib/lang/pretty.ml: Ast Format List Name Schema String Tavcc_model Value
