lib/lang/parser.mli: Ast Tavcc_model Token
