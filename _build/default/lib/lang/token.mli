(** Lexical tokens of ODML. *)

type t =
  | CLASS | EXTENDS | IS | END | FIELDS | METHOD | VAR
  | SEND | TO | SELF | NEW
  | IF | THEN | ELSE | WHILE | DO | RETURN
  | NULL | TRUE | FALSE | AND | OR | NOT
  | TINTEGER | TBOOLEAN | TSTRING | TFLOAT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | ASSIGN  (** [:=] *)
  | COLON | SEMI | COMMA | DOT | LPAREN | RPAREN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE
  | EOF

type pos = { line : int; col : int }

val pp : Format.formatter -> t -> unit
val pp_pos : Format.formatter -> pos -> unit
val keyword_of_string : string -> t option
