(** Pretty-printing of ODML back to concrete syntax.

    [parse_decls (to_string decls)] is structurally equal to [decls]; the
    round trip is property-tested.  Used, among other things, to regenerate
    the paper's Figure 1 from the embedded example schema. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_body : Format.formatter -> Ast.body -> unit
val pp_method : Format.formatter -> Ast.body Tavcc_model.Schema.method_def -> unit
val pp_class_decl : Format.formatter -> Ast.body Tavcc_model.Schema.class_decl -> unit
val pp_decls : Format.formatter -> Ast.body Tavcc_model.Schema.class_decl list -> unit

val expr_to_string : Ast.expr -> string
val body_to_string : Ast.body -> string
val decls_to_string : Ast.body Tavcc_model.Schema.class_decl list -> string
