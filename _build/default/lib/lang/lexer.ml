exception Error of string * Token.pos

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let current_pos st = { Token.line = st.line; col = st.col }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | _ -> ()

let lex_number st pos =
  let b = Buffer.create 8 in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        Buffer.add_char b c;
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      Buffer.add_char b '.';
      advance st;
      digits ();
      (Token.FLOAT (float_of_string (Buffer.contents b)), pos)
  | _ -> (Token.INT (int_of_string (Buffer.contents b)), pos)

let lex_string st pos =
  advance st;
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Error ("unterminated string literal", pos))
    | Some '"' ->
        advance st;
        (Token.STRING (Buffer.contents b), pos)
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char b '\n'; advance st; go ()
        | Some 't' -> Buffer.add_char b '\t'; advance st; go ()
        | Some '\\' -> Buffer.add_char b '\\'; advance st; go ()
        | Some '"' -> Buffer.add_char b '"'; advance st; go ()
        | Some c -> raise (Error (Printf.sprintf "unknown escape '\\%c'" c, current_pos st))
        | None -> raise (Error ("unterminated string literal", pos)))
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ()

let lex_ident st pos =
  let b = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        Buffer.add_char b c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = Buffer.contents b in
  match Token.keyword_of_string s with
  | Some kw -> (kw, pos)
  | None -> (Token.IDENT s, pos)

let next_token st =
  skip_trivia st;
  let pos = current_pos st in
  match peek st with
  | None -> (Token.EOF, pos)
  | Some c when is_digit c -> lex_number st pos
  | Some c when is_ident_start c -> lex_ident st pos
  | Some '"' -> lex_string st pos
  | Some c -> (
      let simple tok =
        advance st;
        (tok, pos)
      in
      let two tok =
        advance st;
        advance st;
        (tok, pos)
      in
      match (c, peek2 st) with
      | ':', Some '=' -> two Token.ASSIGN
      | ':', _ -> simple Token.COLON
      | ';', _ -> simple Token.SEMI
      | ',', _ -> simple Token.COMMA
      | '.', _ -> simple Token.DOT
      | '(', _ -> simple Token.LPAREN
      | ')', _ -> simple Token.RPAREN
      | '+', _ -> simple Token.PLUS
      | '-', _ -> simple Token.MINUS
      | '*', _ -> simple Token.STAR
      | '/', _ -> simple Token.SLASH
      | '%', _ -> simple Token.PERCENT
      | '=', _ -> simple Token.EQ
      | '<', Some '>' -> two Token.NE
      | '<', Some '=' -> two Token.LE
      | '<', _ -> simple Token.LT
      | '>', Some '=' -> two Token.GE
      | '>', _ -> simple Token.GT
      | _ -> raise (Error (Printf.sprintf "illegal character %C" c, pos)))

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let ((tok, _) as t) = next_token st in
    if tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
