(** Recursive-descent parser for ODML.

    Grammar (EBNF):
    {v
    schema   ::= class* EOF
    class    ::= "class" IDENT ["extends" IDENT {"," IDENT}] "is"
                   ["fields" {IDENT ":" type ";"}]
                   {method}
                 "end"
    type     ::= "integer" | "boolean" | "string" | "float" | IDENT
    method   ::= "method" IDENT ["(" [IDENT {"," IDENT}] ")"] "is" {stmt} "end"
    stmt     ::= IDENT ":=" expr ";"
               | "var" IDENT ":=" expr ";"
               | "send" msg "to" recv ";"
               | "if" expr "then" {stmt} ["else" {stmt}] "end" [";"]
               | "while" expr "do" {stmt} "end" [";"]
               | "return" expr ";"
    msg      ::= [IDENT "."] IDENT ["(" [expr {"," expr}] ")"]
    recv     ::= "self" | expr
    expr     ::= or-expr with the usual precedence
                 (or < and < not < comparison < + - < * / % < unary -);
                 primaries are literals, "null", "self", "new" IDENT,
                 identifiers, "(" expr ")" and "send" msg "to" recv
    v} *)

exception Error of string * Token.pos

val parse_decls : string -> Ast.body Tavcc_model.Schema.class_decl list
(** [parse_decls src] parses a whole schema source.
    @raise Error on a syntax error
    @raise Lexer.Error on a lexical error *)

val parse_body : string -> Ast.body
(** Parses a bare statement sequence; convenient in tests.
    @raise Error on a syntax error *)

val parse_expr : string -> Ast.expr
(** Parses a single expression; convenient in tests.
    @raise Error on a syntax error *)
