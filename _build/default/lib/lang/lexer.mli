(** Hand-written lexer for ODML.

    Comments run from [--] to end of line.  Identifiers are
    [\[a-zA-Z_\]\[a-zA-Z0-9_\]*]; keywords take precedence.  Integer and
    float literals are decimal; strings are double-quoted with backslash
    escapes for backslash, double quote, [n] and [t]. *)

exception Error of string * Token.pos

val tokenize : string -> (Token.t * Token.pos) list
(** [tokenize src] is the token stream of [src], ending with {!Token.EOF}.
    @raise Error on an illegal character or unterminated literal *)
