(** Range predicates for extent locks.

    Sec. 6 of the paper traces access vectors back to Eswaran et al.'s
    predicate locks, and sec. 5.2 calls the separation inheritance
    provides "a kind of predicative locking".  This module supplies the
    simplest useful predicate language — an interval on one integer
    field — so extent locks can carry a range: two hierarchical locks on
    the same class conflict only when their modes clash {e and} their
    ranges may select a common instance.

    [None] bounds are open ends; a request without a predicate covers
    the whole extent.  Predicates over {e different} fields never prove
    disjointness (both can hold of one instance), so they overlap. *)

open Tavcc_model

type t = { field : Name.Field.t; lo : int option; hi : int option }
(** The instances with [lo <= field <= hi] (missing bounds are open). *)

val make : ?lo:int -> ?hi:int -> Name.Field.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val nonempty : t -> bool
(** [lo <= hi] when both are present. *)

val satisfies : t -> Value.t -> bool
(** Does an instance whose field holds the value match?  Non-integer
    values never match. *)

val overlaps : t option -> t option -> bool
(** Could the two cover a common instance?  [None] is the whole extent.
    Sound (never claims disjointness wrongly), complete only for
    same-field interval pairs. *)
