open Tavcc_model

type t =
  | Class of Name.Class.t
  | Instance of Oid.t
  | Field of Oid.t * Name.Field.t
  | Fragment of Oid.t * Name.Class.t
  | Relation of Name.Class.t
  | Meth of Name.Class.t * Name.Method.t

let equal a b =
  match (a, b) with
  | Class c, Class c' -> Name.Class.equal c c'
  | Instance o, Instance o' -> Oid.equal o o'
  | Field (o, f), Field (o', f') -> Oid.equal o o' && Name.Field.equal f f'
  | Fragment (o, c), Fragment (o', c') -> Oid.equal o o' && Name.Class.equal c c'
  | Relation c, Relation c' -> Name.Class.equal c c'
  | Meth (c, m), Meth (c', m') -> Name.Class.equal c c' && Name.Method.equal m m'
  | (Class _ | Instance _ | Field _ | Fragment _ | Relation _ | Meth _), _ -> false

let rank = function
  | Class _ -> 0
  | Instance _ -> 1
  | Field _ -> 2
  | Fragment _ -> 3
  | Relation _ -> 4
  | Meth _ -> 5

let compare a b =
  match (a, b) with
  | Class c, Class c' -> Name.Class.compare c c'
  | Instance o, Instance o' -> Oid.compare o o'
  | Field (o, f), Field (o', f') -> (
      match Oid.compare o o' with 0 -> Name.Field.compare f f' | n -> n)
  | Fragment (o, c), Fragment (o', c') -> (
      match Oid.compare o o' with 0 -> Name.Class.compare c c' | n -> n)
  | Relation c, Relation c' -> Name.Class.compare c c'
  | Meth (c, m), Meth (c', m') -> (
      match Name.Class.compare c c' with 0 -> Name.Method.compare m m' | n -> n)
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Class c -> Hashtbl.hash (0, Name.Class.hash c)
  | Instance o -> Hashtbl.hash (1, Oid.hash o)
  | Field (o, f) -> Hashtbl.hash (2, Oid.hash o, Name.Field.hash f)
  | Fragment (o, c) -> Hashtbl.hash (3, Oid.hash o, Name.Class.hash c)
  | Relation c -> Hashtbl.hash (4, Name.Class.hash c)
  | Meth (c, m) -> Hashtbl.hash (5, Name.Class.hash c, Name.Method.hash m)

let pp ppf = function
  | Class c -> Format.fprintf ppf "class:%a" Name.Class.pp c
  | Instance o -> Format.fprintf ppf "inst:%a" Oid.pp o
  | Field (o, f) -> Format.fprintf ppf "field:%a.%a" Oid.pp o Name.Field.pp f
  | Fragment (o, c) -> Format.fprintf ppf "frag:%a[%a]" Name.Class.pp c Oid.pp o
  | Relation c -> Format.fprintf ppf "rel:%a" Name.Class.pp c
  | Meth (c, m) -> Format.fprintf ppf "meth:%a.%a" Name.Class.pp c Name.Method.pp m

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hashed)
