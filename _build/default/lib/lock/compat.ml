type t = { names : string array; matrix : bool array array }

let make ~names matrix =
  let n = Array.length names in
  if Array.length matrix <> n then invalid_arg "Compat.make: matrix size";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Compat.make: matrix size") matrix;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if matrix.(i).(j) <> matrix.(j).(i) then
        invalid_arg "Compat.make: compatibility must be symmetric"
    done
  done;
  { names; matrix }

let size t = Array.length t.names
let name t i = t.names.(i)
let compatible t i j = t.matrix.(i).(j)

let mode_of_name t s =
  let found = ref None in
  Array.iteri (fun i n -> if String.equal n s then found := Some i) t.names;
  !found

let pp ppf t =
  let n = size t in
  let width = Array.fold_left (fun w s -> max w (String.length s)) 3 t.names in
  let pad s = Printf.sprintf "%-*s" width s in
  Format.fprintf ppf "%s" (pad "");
  Array.iter (fun m -> Format.fprintf ppf " %s" (pad m)) t.names;
  Format.fprintf ppf "@\n";
  for i = 0 to n - 1 do
    Format.fprintf ppf "%s" (pad t.names.(i));
    for j = 0 to n - 1 do
      Format.fprintf ppf " %s" (pad (if t.matrix.(i).(j) then "yes" else "no"))
    done;
    Format.fprintf ppf "@\n"
  done

let read = 0
let write = 1

let rw =
  make ~names:[| "R"; "W" |] [| [| true; false |]; [| false; false |] |]

let is_ = 0
let ix = 1
let s = 2
let six = 3
let x = 4

let gray =
  make
    ~names:[| "IS"; "IX"; "S"; "SIX"; "X" |]
    [|
      [| true; true; true; true; false |];
      [| true; true; false; false; false |];
      [| true; false; true; false; false |];
      [| true; false; false; false; false |];
      [| false; false; false; false; false |];
    |]
