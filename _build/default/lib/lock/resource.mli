(** Lockable resources.

    The granularities cover every scheme compared in the paper:

    - [Class c]: a class, for intention/hierarchical locks (sec. 5.2);
    - [Instance o]: a whole instance, the classical OODB granule;
    - [Field (o, f)]: one field of one instance — the run-time field
      locking of Agrawal & El Abbadi (EDBT'92, ref. \[1\] of the paper);
    - [Fragment (o, c)]: the tuple of the relation associated with class
      [c] holding the fields that [c] declares for object [o] — the
      first-normal-form decomposition of sec. 3;
    - [Relation c]: the whole relation for class [c] in the relational
      comparator;
    - [Meth (c, m)]: a method in its class's method set, locked by the
      Agrawal scheme to synchronise method execution with schema
      updates. *)

open Tavcc_model

type t =
  | Class of Name.Class.t
  | Instance of Oid.t
  | Field of Oid.t * Name.Field.t
  | Fragment of Oid.t * Name.Class.t
  | Relation of Name.Class.t
  | Meth of Name.Class.t * Name.Method.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
