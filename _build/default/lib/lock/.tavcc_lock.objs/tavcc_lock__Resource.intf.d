lib/lock/resource.mli: Format Hashtbl Map Name Oid Set Tavcc_model
