lib/lock/lock_table.mli: Format Pred Resource
