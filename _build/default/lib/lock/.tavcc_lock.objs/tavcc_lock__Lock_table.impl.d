lib/lock/lock_table.ml: Bool Format Hashtbl Int List Option Pred Resource
