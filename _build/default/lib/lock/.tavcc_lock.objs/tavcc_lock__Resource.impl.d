lib/lock/resource.ml: Format Hashtbl Int Map Name Oid Set Tavcc_model
