lib/lock/pred.ml: Format Name Tavcc_model Value
