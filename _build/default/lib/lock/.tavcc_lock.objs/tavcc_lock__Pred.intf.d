lib/lock/pred.mli: Format Name Tavcc_model Value
