lib/lock/compat.ml: Array Format Printf String
