open Tavcc_model

type t = { field : Name.Field.t; lo : int option; hi : int option }

let make ?lo ?hi field = { field; lo; hi }

let equal a b =
  Name.Field.equal a.field b.field && a.lo = b.lo && a.hi = b.hi

let pp_bound ppf = function
  | None -> Format.pp_print_string ppf "_"
  | Some n -> Format.pp_print_int ppf n

let pp ppf p =
  Format.fprintf ppf "%a in [%a,%a]" Name.Field.pp p.field pp_bound p.lo pp_bound p.hi

let nonempty p = match (p.lo, p.hi) with Some lo, Some hi -> lo <= hi | _ -> true

let satisfies p v =
  match v with
  | Value.Vint n ->
      (match p.lo with Some lo -> n >= lo | None -> true)
      && (match p.hi with Some hi -> n <= hi | None -> true)
  | _ -> false

let overlaps a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some a, Some b ->
      if not (Name.Field.equal a.field b.field) then true
      else if not (nonempty a && nonempty b) then false
      else
        (* max of the lows <= min of the highs, with open ends. *)
        let lo_le_hi lo hi =
          match (lo, hi) with Some l, Some h -> l <= h | _ -> true
        in
        lo_le_hi a.lo b.hi && lo_le_hi b.lo a.hi
