(** Compatibility matrices over integer-encoded lock modes.

    Every concurrency-control scheme reduces, at run time, to such a
    matrix — that is the point of sec. 5.1 of the paper: whether the modes
    are classical Read/Write, Gray's hierarchical IS/IX/S/SIX/X, or the
    per-class access modes compiled from transitive access vectors, the
    lock manager only ever performs an O(1) boolean lookup. *)

type t

val make : names:string array -> bool array array -> t
(** @raise Invalid_argument if the matrix is not square of the right size
    or not symmetric *)

val size : t -> int
val name : t -> int -> string
val compatible : t -> int -> int -> bool
val mode_of_name : t -> string -> int option
val pp : Format.formatter -> t -> unit

(** {2 Predefined matrices} *)

val rw : t
(** Classical two-mode locking: [read = 0], [write = 1]. *)

val read : int
val write : int

(** Gray's hierarchical modes (granularity locking): [IS, IX, S, SIX, X]. *)

val gray : t

val is_ : int
val ix : int
val s : int
val six : int
val x : int
