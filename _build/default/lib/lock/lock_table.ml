type txn_id = int
type req = {
  r_txn : txn_id;
  r_res : Resource.t;
  r_mode : int;
  r_hier : bool;
  r_pred : Pred.t option;
}

let pp_req ppf r =
  Format.fprintf ppf "txn%d:%a:mode%d%s%a" r.r_txn Resource.pp r.r_res r.r_mode
    (if r.r_hier then ":hier" else "")
    (fun ppf -> function None -> () | Some p -> Format.fprintf ppf ":%a" Pred.pp p)
    r.r_pred

type outcome = Granted | Waiting

type stats = {
  mutable requests : int;
  mutable immediate : int;
  mutable waits : int;
  mutable conversions : int;
}

type entry = { mutable granted : req list; mutable queue : req list }
(* [granted] and [queue] are oldest-first. *)

type t = {
  conflict : req -> req -> bool;
  table : entry Resource.Tbl.t;
  held_by : (txn_id, Resource.Set.t) Hashtbl.t;
  stats : stats;
}

let create ~conflict () =
  {
    conflict;
    table = Resource.Tbl.create 256;
    held_by = Hashtbl.create 64;
    stats = { requests = 0; immediate = 0; waits = 0; conversions = 0 };
  }

let entry t res =
  match Resource.Tbl.find_opt t.table res with
  | Some e -> e
  | None ->
      let e = { granted = []; queue = [] } in
      Resource.Tbl.replace t.table res e;
      e

let remember_held t txn res =
  let s = Option.value ~default:Resource.Set.empty (Hashtbl.find_opt t.held_by txn) in
  Hashtbl.replace t.held_by txn (Resource.Set.add res s)

let same_req a b =
  a.r_txn = b.r_txn && Resource.equal a.r_res b.r_res && a.r_mode = b.r_mode
  && Bool.equal a.r_hier b.r_hier
  && Option.equal Pred.equal a.r_pred b.r_pred

(* Does [req] conflict with any granted request of another transaction? *)
let blocked_by_holders t e req =
  List.exists (fun h -> h.r_txn <> req.r_txn && t.conflict h req) e.granted

let acquire t req =
  t.stats.requests <- t.stats.requests + 1;
  let e = entry t req.r_res in
  let already = List.exists (same_req req) e.granted in
  if already then begin
    t.stats.immediate <- t.stats.immediate + 1;
    Granted
  end
  else begin
    let holds_some = List.exists (fun h -> h.r_txn = req.r_txn) e.granted in
    if holds_some then begin
      (* Conversion: checked against the other holders only; waits at the
         head of the queue on conflict. *)
      t.stats.conversions <- t.stats.conversions + 1;
      if blocked_by_holders t e req then begin
        t.stats.waits <- t.stats.waits + 1;
        e.queue <- req :: e.queue;
        Waiting
      end
      else begin
        t.stats.immediate <- t.stats.immediate + 1;
        e.granted <- e.granted @ [ req ];
        remember_held t req.r_txn req.r_res;
        Granted
      end
    end
    else if e.queue = [] && not (blocked_by_holders t e req) then begin
      t.stats.immediate <- t.stats.immediate + 1;
      e.granted <- e.granted @ [ req ];
      remember_held t req.r_txn req.r_res;
      Granted
    end
    else begin
      t.stats.waits <- t.stats.waits + 1;
      e.queue <- e.queue @ [ req ];
      Waiting
    end
  end

(* Greedily grants from the head of the queue; stops at the first blocked
   request (strict FIFO). *)
let drain t res e acc =
  let rec go acc =
    match e.queue with
    | [] -> acc
    | req :: rest ->
        if blocked_by_holders t e req then acc
        else begin
          e.queue <- rest;
          e.granted <- e.granted @ [ req ];
          remember_held t req.r_txn res;
          go (req :: acc)
        end
  in
  go acc

let release_all t txn =
  (* Resources where the transaction holds locks... *)
  let held = Option.value ~default:Resource.Set.empty (Hashtbl.find_opt t.held_by txn) in
  Hashtbl.remove t.held_by txn;
  (* ...plus the one it may be queued on. *)
  let queued_on = ref Resource.Set.empty in
  Resource.Tbl.iter
    (fun res e -> if List.exists (fun r -> r.r_txn = txn) e.queue then queued_on := Resource.Set.add res !queued_on)
    t.table;
  let affected = Resource.Set.union held !queued_on in
  let newly =
    Resource.Set.fold
      (fun res acc ->
        match Resource.Tbl.find_opt t.table res with
        | None -> acc
        | Some e ->
            e.granted <- List.filter (fun r -> r.r_txn <> txn) e.granted;
            e.queue <- List.filter (fun r -> r.r_txn <> txn) e.queue;
            if e.granted = [] && e.queue = [] then begin
              Resource.Tbl.remove t.table res;
              acc
            end
            else drain t res e acc)
      affected []
  in
  List.rev newly

let holders t res = match Resource.Tbl.find_opt t.table res with Some e -> e.granted | None -> []
let queued t res = match Resource.Tbl.find_opt t.table res with Some e -> e.queue | None -> []

let holds t txn res =
  List.filter_map
    (fun r -> if r.r_txn = txn then Some (r.r_mode, r.r_hier) else None)
    (holders t res)

let locks_of t txn =
  let held = Option.value ~default:Resource.Set.empty (Hashtbl.find_opt t.held_by txn) in
  Resource.Set.fold
    (fun res acc -> List.filter (fun r -> r.r_txn = txn) (holders t res) @ acc)
    held []

let waiting_for t txn =
  let found = ref None in
  Resource.Tbl.iter
    (fun _ e ->
      List.iter (fun r -> if r.r_txn = txn && !found = None then found := Some r) e.queue)
    t.table;
  !found

let conflicting_holders t req =
  let e = entry t req.r_res in
  List.filter (fun h -> h.r_txn <> req.r_txn && t.conflict h req) e.granted

let blockers t req =
  match Resource.Tbl.find_opt t.table req.r_res with
  | None -> []
  | Some e ->
      let held =
        List.filter (fun h -> h.r_txn <> req.r_txn && t.conflict h req) e.granted
      in
      let rec ahead acc = function
        | [] -> List.rev acc
        | q :: _ when q.r_txn = req.r_txn && same_req q req -> List.rev acc
        | q :: tl ->
            ahead (if q.r_txn <> req.r_txn && t.conflict q req then q :: acc else acc) tl
      in
      held @ ahead [] e.queue

(* Edges of the waits-for graph.  A queued request waits for:
   - every conflicting holder of the resource, and
   - every conflicting request queued ahead of it (FIFO: they are granted
     first). *)
let waits_for_edges t =
  let edges = ref [] in
  let add a b = if a <> b && not (List.mem (a, b) !edges) then edges := (a, b) :: !edges in
  Resource.Tbl.iter
    (fun _ e ->
      List.iteri
        (fun i req ->
          List.iter
            (fun h -> if h.r_txn <> req.r_txn && t.conflict h req then add req.r_txn h.r_txn)
            e.granted;
          List.iteri
            (fun j ahead ->
              if j < i && ahead.r_txn <> req.r_txn && t.conflict ahead req then
                add req.r_txn ahead.r_txn)
            e.queue)
        e.queue)
    t.table;
  !edges

let find_deadlock t =
  let edges = waits_for_edges t in
  let succs v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
  let nodes = List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  (* DFS with an explicit path to recover the cycle. *)
  let visited = Hashtbl.create 16 in
  let rec dfs path v =
    if List.mem v path then
      let rec take = function
        | [] -> []
        | x :: tl -> if x = v then [ x ] else x :: take tl
      in
      Some (List.rev (take path))
    else if Hashtbl.mem visited v then None
    else begin
      Hashtbl.replace visited v ();
      List.find_map (dfs (v :: path)) (succs v)
    end
  in
  List.find_map (fun v -> Hashtbl.reset visited; dfs [] v) nodes

let stats t = t.stats

let reset_stats t =
  t.stats.requests <- 0;
  t.stats.immediate <- 0;
  t.stats.waits <- 0;
  t.stats.conversions <- 0
