type t = {
  e_low : int;
  e_high : int;
  mutable e_committed : int;
  mutable e_pending : (int * int ref) list;  (* (txn, net delta), oldest first *)
}

let create ?(low = min_int) ?(high = max_int) v =
  if v < low || v > high then invalid_arg "Escrow.create: initial value out of bounds";
  if low > high then invalid_arg "Escrow.create: low > high";
  { e_low = low; e_high = high; e_committed = v; e_pending = [] }

let low t = t.e_low
let high t = t.e_high
let committed t = t.e_committed

let sum_pos t =
  List.fold_left (fun acc (_, d) -> if !d > 0 then acc + !d else acc) 0 t.e_pending

let sum_neg t =
  List.fold_left (fun acc (_, d) -> if !d < 0 then acc + !d else acc) 0 t.e_pending

let inf t = t.e_committed + sum_neg t
let sup t = t.e_committed + sum_pos t

type outcome = Reserved | Would_underflow | Would_overflow

let reserve t ~txn ~delta =
  (* Worst case including the new delta: all same-sign escrows commit.
     A transaction's own net delta moves between the sides, so compute
     the hypothetical pending multiset first. *)
  let own = List.assoc_opt txn t.e_pending in
  let own_val = match own with Some d -> !d | None -> 0 in
  let new_own = own_val + delta in
  let others_pos = sum_pos t - max 0 own_val in
  let others_neg = sum_neg t - min 0 own_val in
  let worst_high = t.e_committed + others_pos + max 0 new_own in
  let worst_low = t.e_committed + others_neg + min 0 new_own in
  if worst_high > t.e_high then Would_overflow
  else if worst_low < t.e_low then Would_underflow
  else begin
    (match own with
    | Some d -> d := new_own
    | None -> t.e_pending <- t.e_pending @ [ (txn, ref delta) ]);
    Reserved
  end

let pending_of t ~txn =
  match List.assoc_opt txn t.e_pending with Some d -> !d | None -> 0

let pending_txns t = List.map fst t.e_pending

let commit t ~txn =
  (match List.assoc_opt txn t.e_pending with
  | Some d ->
      t.e_committed <- t.e_committed + !d;
      assert (t.e_committed >= t.e_low && t.e_committed <= t.e_high)
  | None -> ());
  t.e_pending <- List.filter (fun (x, _) -> x <> txn) t.e_pending

let abort t ~txn = t.e_pending <- List.filter (fun (x, _) -> x <> txn) t.e_pending
let read t ~txn = t.e_committed + pending_of t ~txn

let pp ppf t =
  Format.fprintf ppf "escrow{val=%d [%d,%d] pending=%a}" t.e_committed
    (if t.e_low = min_int then 0 else t.e_low)
    (if t.e_high = max_int then 0 else t.e_high)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (x, d) -> Format.fprintf ppf "t%d:%+d" x !d))
    t.e_pending

module Table = struct
  type nonrec escrow = t

  type 'k t = {
    mutable entries : ('k * escrow) list;  (* small tables; linear scan *)
    equal : 'k -> 'k -> bool;
  }

  let create equal _hash = { entries = []; equal }

  let find t k =
    List.find_map (fun (k', e) -> if t.equal k k' then Some e else None) t.entries

  let register t k e =
    match find t k with
    | Some _ -> invalid_arg "Escrow.Table.register: key already registered"
    | None -> t.entries <- t.entries @ [ (k, e) ]

  let reserve t k ~txn ~delta =
    match find t k with
    | Some e -> reserve e ~txn ~delta
    | None -> invalid_arg "Escrow.Table.reserve: unregistered key"

  let commit_all t ~txn = List.iter (fun (_, e) -> commit e ~txn) t.entries
  let abort_all t ~txn = List.iter (fun (_, e) -> abort e ~txn) t.entries
end
