lib/escrow/escrow.ml: Format List
