lib/escrow/escrow.mli: Format
