(** The Escrow transactional method (O'Neil, TODS 1986 — ref. \[20\] of
    the paper).

    The paper points at Escrow as the canonical way to ship predefined
    types ("Integer", "Collection") "with high commutativity
    performances": increments and decrements of a bounded counter
    commute semantically although their access vectors clash on the
    counter field.

    An escrow quantity holds a committed value and a set of {e pending}
    per-transaction deltas.  A reservation succeeds when the bounds hold
    under the worst case — every already-pending delta of the same sign
    committing together with the new one — so any subset of the pending
    transactions may later commit or abort, in any order, without ever
    violating [low <= value <= high].  Reads see the uncertainty
    interval \[inf, sup\].

    All operations are O(pending transactions); the structure is purely
    functional in spirit but mutable for speed, like the lock table. *)

type t

val create : ?low:int -> ?high:int -> int -> t
(** [create ~low ~high v] starts the quantity at committed value [v].
    Defaults: [low = min_int], [high = max_int].
    @raise Invalid_argument if [v] is outside the bounds *)

val low : t -> int
val high : t -> int

val committed : t -> int
(** The committed value (pending deltas excluded). *)

val inf : t -> int
val sup : t -> int
(** The uncertainty interval: [inf] assumes every pending decrement
    commits and every increment aborts; [sup] the converse.  Invariant:
    [low <= inf <= committed <= sup <= high]. *)

type outcome = Reserved | Would_underflow | Would_overflow

val reserve : t -> txn:int -> delta:int -> outcome
(** Attempts to put [delta] in escrow for the transaction.  Succeeds iff
    the bounds survive the worst case; several reservations by the same
    transaction accumulate. *)

val pending_of : t -> txn:int -> int
(** Net delta the transaction holds in escrow (0 if none). *)

val pending_txns : t -> int list
(** Transactions with a reservation, in first-reservation order. *)

val commit : t -> txn:int -> unit
(** Applies the transaction's escrowed delta to the committed value.
    A transaction with no reservation commits trivially. *)

val abort : t -> txn:int -> unit
(** Discards the transaction's reservations. *)

val read : t -> txn:int -> int
(** The value as seen by the transaction: committed plus {e its own}
    pending delta (other transactions' escrows remain invisible). *)

val pp : Format.formatter -> t -> unit

(** A keyed collection of escrow quantities (e.g. one per (object,
    field) pair), with transaction-wide commit/abort. *)
module Table : sig
  type escrow := t
  type 'k t

  val create : ('k -> 'k -> bool) -> ('k -> int) -> 'k t
  (** [create equal hash] — an empty table over keys compared by
      [equal]/[hash]. *)

  val register : 'k t -> 'k -> escrow -> unit
  (** @raise Invalid_argument if the key is already registered *)

  val find : 'k t -> 'k -> escrow option
  val reserve : 'k t -> 'k -> txn:int -> delta:int -> outcome
  (** @raise Invalid_argument on an unregistered key *)

  val commit_all : 'k t -> txn:int -> unit
  val abort_all : 'k t -> txn:int -> unit
  (** Commit/abort the transaction's reservations on every quantity. *)
end
