(* The benchmark harness.

   Regenerates, from the live implementation, every table and figure of
   Malta & Martinez (ICDE'93) — Table 1, Figure 1, Figure 2, Table 2 and
   the sec. 5.2 concurrency scenario — and measures every quantitative
   claim the paper makes (experiments E1-E14, documented in DESIGN.md and
   EXPERIMENTS.md).  One Bechamel Test.make covers each micro-measured
   table; the simulation tables come from the deterministic engine. *)

open Tavcc_model
open Tavcc_core
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let row fmt = Printf.printf fmt

let schemes =
  [
    ("tav", Tavcc_cc.Tav_modes.scheme);
    ("rw-msg", Tavcc_cc.Rw_instance.scheme);
    ("rw-top", Tavcc_cc.Rw_toponly.scheme);
    ("field-rt", Tavcc_cc.Field_runtime.scheme);
    ("relational", Tavcc_cc.Relational.scheme);
  ]

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Paper artefacts *)

let table1 () =
  section "Table 1 — classical compatibility relation {Null, Read, Write}";
  print_string (Report.table1 ())

let figure1 () =
  section "Figure 1 — the example schema (regenerated from the parsed AST)";
  print_string (Report.figure1 ())

let figure2 () =
  section "Figure 2 — late-binding resolution graph of class c2";
  print_string (Report.figure2 ())

let table2 () =
  section "Table 2 — commutativity relation of class c2";
  print_string (Report.table2 ());
  let an = Paper_example.analysis () in
  print_string "\naccess vectors behind the relation:\n";
  print_string (Report.tavs an Paper_example.c2)

let scenario52 () =
  section "Sec. 5.2 scenario — admitted concurrent groups per scheme";
  Printf.printf
    "paper: TAV modes admit T1||T3||T4 and T2||T3||T4;\n\
    \       R/W instance locking admits T1||T3 or T1||T4;\n\
    \       the relational decomposition admits T1||T3 or T3||T4.\n\n";
  List.iter
    (fun (_, mk) ->
      let r = Tavcc_cc.Scenario.evaluate mk in
      Format.printf "%a@." Tavcc_cc.Scenario.pp r)
    schemes

(* ------------------------------------------------------------------ *)
(* E1 — compile-time cost of the analysis (claim: linear, negligible) *)

let e1_compile_time () =
  section "E1 — compile-time analysis cost (claim 1: automatic, linear, no measurable overhead)";
  row "%-10s %-10s %-10s %-12s %-14s %-14s\n" "classes" "methods" "lbr-edges" "compile-ms"
    "us/method" "naive-ms";
  List.iter
    (fun depth ->
      let rng = Rng.create 42 in
      let params =
        {
          Workload.default_params with
          sp_depth = depth;
          sp_fanout = 2;
          sp_shared_methods = 6;
          sp_own_methods = 3;
          sp_override_prob = 0.6;
          sp_selfcalls = 2;
        }
      in
      let schema = Workload.make_schema rng params in
      let t0 = now () in
      let an = Analysis.compile schema in
      let t1 = now () in
      (* The naive quadratic TAV computation, as a comparison point. *)
      let ex = Analysis.extraction an in
      let t2 = now () in
      List.iter (fun c -> ignore (Tav.compute_naive ex c)) (Schema.classes schema);
      let t3 = now () in
      let methods = Analysis.method_count an in
      let edges =
        List.fold_left (fun n c -> n + Lbr.edge_count (Analysis.lbr an c)) 0
          (Schema.classes schema)
      in
      row "%-10d %-10d %-10d %-12.3f %-14.2f %-14.3f\n" (Schema.class_count schema) methods
        edges
        ((t1 -. t0) *. 1e3)
        ((t1 -. t0) *. 1e6 /. float_of_int (max 1 methods))
        ((t3 -. t2) *. 1e3))
    [ 2; 3; 4; 5; 6; 7 ];
  print_string
    "shape check: us/method stays roughly flat (linear total); the naive\n\
     computation grows faster on the same schemas.\n"

(* ------------------------------------------------------------------ *)
(* E2 — run-time check cost (claim 2: commutativity check == compatibility
   check) — measured by Bechamel below; here a quick calibration table. *)

let e2_runtime_check () =
  section "E2 — run-time check: compiled commutativity vs classical compatibility";
  let an = Paper_example.analysis () in
  let t = Analysis.table an Paper_example.c2 in
  let gm = Tavcc_cc.Global_modes.build an in
  let g1 = Tavcc_cc.Global_modes.id gm Paper_example.c2 Paper_example.m1 in
  let g4 = Tavcc_cc.Global_modes.id gm Paper_example.c2 Paper_example.m4 in
  let tav1 = Analysis.tav an Paper_example.c2 Paper_example.m1 in
  let tav4 = Analysis.tav an Paper_example.c2 Paper_example.m4 in
  (* Two compatible 64-field vectors: the commutativity test must scan the
     full support (no early exit on the first incompatibility). *)
  let reads n =
    Access_vector.of_list
      (List.init n (fun i -> (Name.Field.of_string (Printf.sprintf "w%d" i), Mode.Read)))
  in
  let wide_a = reads 64 and wide_b = reads 64 in
  let iters = 2_000_000 in
  let measure name f =
    (* warmup *)
    for _ = 1 to 10_000 do ignore (Sys.opaque_identity (f ())) done;
    let t0 = now () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let t1 = now () in
    row "%-40s %8.2f ns/check\n" name ((t1 -. t0) *. 1e9 /. float_of_int iters)
  in
  measure "R/W compatibility (Compat.rw)" (fun () ->
      Tavcc_lock.Compat.compatible Tavcc_lock.Compat.rw 0 1);
  measure "compiled commutativity (Modes_table)" (fun () -> Modes_table.commute t 0 3);
  measure "compiled commutativity (global ids)" (fun () -> Tavcc_cc.Global_modes.commute gm g1 g4);
  measure "raw vector commutes (6 fields)" (fun () -> Access_vector.commutes tav1 tav4);
  measure "raw vector commutes (64 fields)" (fun () -> Access_vector.commutes wide_a wide_b);
  print_string
    "shape check: the compiled matrix lookup costs the same order as the\n\
     R/W check, while raw vectors grow with their length — which is why\n\
     sec. 5.1 translates vectors into modes.\n"

(* ------------------------------------------------------------------ *)
(* E3 — locking overhead per top message vs self-call depth (problem P2) *)

let e3_controls () =
  section "E3 — lock requests per top message vs self-call depth (problem P2)";
  row "%-8s" "depth";
  List.iter (fun (n, _) -> row " %-12s" n) schemes;
  row "\n";
  List.iter
    (fun depth ->
      let schema = Workload.chain_schema ~levels:depth in
      let an = Analysis.compile schema in
      row "%-8d" depth;
      List.iter
        (fun (_, mk) ->
          let store = Store.create schema in
          let oid = Store.new_instance store (Name.Class.of_string "chain") in
          let top = Name.Method.of_string (Printf.sprintf "m%d" depth) in
          let r =
            Engine.run ~scheme:(mk an) ~store
              ~jobs:[ (1, [ Exec.Call (oid, top, [ Value.Vint 1 ]) ]) ]
              ()
          in
          row " %-12d" r.Engine.lock_requests)
        schemes;
      row "\n")
    [ 0; 1; 2; 4; 8; 16 ];
  print_string
    "shape check: per-message locking (rw-msg) grows linearly with the\n\
     cascade depth; tav/rw-top/relational stay constant (one control per\n\
     instance); field-rt grows with the accesses performed.\n"

(* ------------------------------------------------------------------ *)
(* E4 — escalation deadlocks (problem P3) *)

let e4_deadlocks () =
  section "E4 — escalation deadlocks on the reader-then-writer cascade (problem P3)";
  let seeds = List.init 10 (fun i -> 1000 + i) in
  let txns = 6 in
  row "%-12s %-12s %-12s %-12s %-12s\n" "scheme" "deadlocks" "aborts" "waits" "commits";
  List.iter
    (fun (name, mk) ->
      let schema = Workload.chain_schema ~levels:3 in
      let an = Analysis.compile schema in
      let dl = ref 0 and ab = ref 0 and wa = ref 0 and cm = ref 0 in
      List.iter
        (fun seed ->
          let store = Store.create schema in
          let oid = Store.new_instance store (Name.Class.of_string "chain") in
          let jobs =
            List.init txns (fun i ->
                (i + 1, [ Exec.Call (oid, Name.Method.of_string "m3", [ Value.Vint 1 ]) ]))
          in
          let config = { Engine.default_config with seed; yield_on_access = true } in
          let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
          dl := !dl + r.Engine.deadlocks;
          ab := !ab + r.Engine.aborts;
          wa := !wa + r.Engine.lock_waits;
          cm := !cm + r.Engine.commits)
        seeds;
      row "%-12s %-12d %-12d %-12d %-12d\n" name !dl !ab !wa !cm)
    schemes;
  Printf.printf
    "(%d seeds x %d transactions on one hot instance)\n\
     shape check: only the schemes that escalate incrementally (rw-msg,\n\
     field-rt) deadlock; announcing the most exclusive mode up front\n\
     (tav, rw-top, relational) eliminates every deadlock — the System R\n\
     observation quoted in sec. 3.\n"
    (List.length seeds) txns

(* ------------------------------------------------------------------ *)
(* E5 — pseudo-conflicts (problem P4) *)

let e5_pseudo_conflicts () =
  section "E5 — pseudo-conflicts: disjoint-field writers on shared instances (problem P4)";
  let schema = Workload.pseudo_conflict_schema () in
  let an = Analysis.compile schema in
  let seeds = List.init 10 (fun i -> 2000 + i) in
  let run_mix name mk mix =
    let wa = ref 0 and dl = ref 0 and cm = ref 0 in
    List.iter
      (fun seed ->
        let store = Store.create schema in
        Workload.populate store ~per_class:6;
        let subs = Store.extent store (Name.Class.of_string "sub") in
        let jobs =
          List.mapi
            (fun i (meth, order) ->
              let targets = if order then subs else List.rev subs in
              ( i + 1,
                List.map
                  (fun o -> Exec.Call (o, Name.Method.of_string meth, [ Value.Vint 1 ]))
                  targets ))
            mix
        in
        let config = { Engine.default_config with seed; yield_on_access = true } in
        let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
        wa := !wa + r.Engine.lock_waits;
        dl := !dl + r.Engine.deadlocks;
        cm := !cm + r.Engine.commits)
      seeds;
    row "%-12s %-10d %-10d %-10d\n" name !wa !dl !cm
  in
  print_string "\n-- disjoint-field writers (wbase || wsub), the pseudo-conflict --\n";
  row "%-12s %-10s %-10s %-10s\n" "scheme" "waits" "deadlocks" "commits";
  List.iter
    (fun (name, mk) -> run_mix name mk [ ("wbase", true); ("wsub", true) ])
    schemes;
  print_string "\n-- true conflict (wsub || wsub on the same instances), for contrast --\n";
  row "%-12s %-10s %-10s %-10s\n" "scheme" "waits" "deadlocks" "commits";
  List.iter
    (fun (name, mk) -> run_mix name mk [ ("wsub", true); ("wsub", false) ])
    schemes;
  print_string
    "shape check: on disjoint fields, two-mode locking (rw-*) waits while\n\
     tav, field-rt and relational finish without a single wait (the\n\
     relational parallelism the paper says OO locking loses); on a true\n\
     conflict every scheme serialises.\n"

(* ------------------------------------------------------------------ *)
(* E6 — run-time field locking overhead (sec. 6 comparison with [1]) *)

let e6_field_overhead () =
  section "E6 — lock requests per call vs fields touched (field locking pays per access)";
  row "%-8s" "touched";
  List.iter (fun (n, _) -> row " %-12s" n) schemes;
  row "\n";
  List.iter
    (fun k ->
      let schema = Workload.wide_schema ~fields:32 ~touched:k in
      let an = Analysis.compile schema in
      row "%-8d" k;
      List.iter
        (fun (_, mk) ->
          let store = Store.create schema in
          let oid = Store.new_instance store (Name.Class.of_string "wide") in
          let r =
            Engine.run ~scheme:(mk an) ~store
              ~jobs:
                [ (1, [ Exec.Call (oid, Name.Method.of_string "touch", [ Value.Vint 1 ]) ]) ]
              ()
          in
          row " %-12d" r.Engine.lock_requests)
        schemes;
      row "\n")
    [ 1; 2; 4; 8; 16; 32 ];
  print_string
    "shape check: field-rt grows linearly with the touched fields; the\n\
     compiled schemes stay at a constant number of requests per call.\n"

(* ------------------------------------------------------------------ *)
(* E7 — hierarchical vs individual instance locking (sec. 5.2) *)

let e7_hierarchy () =
  section "E7 — hierarchical class lock vs per-instance locks on extent scans";
  let an = Paper_example.analysis () in
  let schema = Analysis.schema an in
  row "%-10s %-18s %-18s %-14s\n" "instances" "extent(hier) reqs" "per-instance reqs" "ratio";
  List.iter
    (fun n ->
      let mk_store () =
        let store = Store.create schema in
        let insts = List.init n (fun _ -> Store.new_instance store Paper_example.c2) in
        (store, insts)
      in
      let scheme = Tavcc_cc.Tav_modes.scheme an in
      let store, _ = mk_store () in
      let r_h =
        Engine.run ~scheme ~store
          ~jobs:
            [
              ( 1,
                [
                  Exec.Call_extent
                    { cls = Paper_example.c2; deep = true; meth = Paper_example.m4;
                      args = [ Value.Vint (-1); Value.Vstring "x" ] };
                ] );
            ]
          ()
      in
      let store, insts = mk_store () in
      let r_i =
        Engine.run ~scheme ~store
          ~jobs:
            [
              ( 1,
                [
                  Exec.Call_some
                    { root = Paper_example.c2; targets = insts; meth = Paper_example.m4;
                      args = [ Value.Vint (-1); Value.Vstring "x" ] };
                ] );
            ]
          ()
      in
      row "%-10d %-18d %-18d %-14.1f\n" n r_h.Engine.lock_requests r_i.Engine.lock_requests
        (float_of_int r_i.Engine.lock_requests /. float_of_int (max 1 r_h.Engine.lock_requests)))
    [ 1; 10; 100; 1000 ];
  print_string
    "shape check: the hierarchical lock is O(classes of the domain),\n\
     individual locking is O(instances) — locking uniquely the class is\n\
     worth it as soon as a transaction touches most of an extent.\n"

(* ------------------------------------------------------------------ *)
(* E8 — ablation: SCC-based TAV vs naive reachability *)

let e8_scc_ablation () =
  section "E8 — ablation: linear SCC TAV computation vs quadratic reachability";
  row "%-10s %-14s %-14s %-10s\n" "methods" "scc-ms" "naive-ms" "speedup";
  List.iter
    (fun n ->
      let schema = Workload.recursive_cluster_schema ~methods:n in
      let ex = Extraction.build schema in
      let cls = Name.Class.of_string "cluster" in
      let reps = 20 in
      let t0 = now () in
      for _ = 1 to reps do
        ignore (Tav.compute ex cls)
      done;
      let t1 = now () in
      for _ = 1 to reps do
        ignore (Tav.compute_naive ex cls)
      done;
      let t2 = now () in
      let scc_ms = (t1 -. t0) *. 1e3 /. float_of_int reps in
      let naive_ms = (t2 -. t1) *. 1e3 /. float_of_int reps in
      row "%-10d %-14.3f %-14.3f %-10.1f\n" n scc_ms naive_ms (naive_ms /. scc_ms))
    [ 8; 32; 128; 512 ];
  print_string
    "shape check: on recursive clusters the naive per-vertex reachability\n\
     grows quadratically while the single-pass SCC computation stays\n\
     linear — the reason sec. 4.3 uses Tarjan's algorithm.\n"

(* ------------------------------------------------------------------ *)
(* E9 — ad hoc commutativity + escrow on counters (sec. 3 / ref. [20]) *)

let e9_escrow () =
  section "E9 — predefined counters: syntactic locks vs ad hoc commutativity + escrow";
  let txns = 8 and incs = 20 in
  (* (a) syntactic: increments are writers; every scheme serialises them
     on one hot counter.  Measured: lock waits. *)
  let counter_src =
    {|class counter is
        fields n : integer;
        method inc(d) is n := n + d; end
      end|}
  in
  let decls = Tavcc_lang.Parser.parse_decls counter_src in
  let schema = match Schema.build decls with Ok s -> s | Error _ -> assert false in
  let an = Analysis.compile schema in
  let store = Store.create schema in
  let hot = Store.new_instance store (Name.Class.of_string "counter") in
  let jobs =
    List.init txns (fun i ->
        ( i + 1,
          List.init incs (fun _ ->
              Exec.Call (hot, Name.Method.of_string "inc", [ Value.Vint 1 ])) ))
  in
  let config = { Engine.default_config with yield_on_access = true } in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
  row "%-34s waits=%-5d deadlocks=%-4d final=%s\n" "tav (inc is a writer)"
    r.Engine.lock_waits r.Engine.deadlocks
    (Format.asprintf "%a" Value.pp (Store.read store hot (Name.Field.of_string "n")));
  (* (b) the ad hoc relation declares inc/inc commuting; the escrow
     runtime makes the concurrent execution safe.  Measured: reservation
     failures (none, within bounds). *)
  let inc = Name.Method.of_string "inc" in
  let adhoc = Adhoc.(declare empty (Name.Class.of_string "counter") [ (inc, inc, true) ]) in
  let an' = Analysis.compile ~adhoc schema in
  row "%-34s commute(inc,inc)=%b (was %b)\n" "ad hoc declaration"
    (Analysis.commute an' (Name.Class.of_string "counter") inc inc)
    (Analysis.commute an (Name.Class.of_string "counter") inc inc);
  let e = Tavcc_escrow.Escrow.create ~low:0 ~high:max_int 0 in
  let ok = ref 0 in
  for txn = 1 to txns do
    for _ = 1 to incs do
      match Tavcc_escrow.Escrow.reserve e ~txn ~delta:1 with
      | Tavcc_escrow.Escrow.Reserved -> incr ok
      | _ -> ()
    done
  done;
  for txn = 1 to txns do
    Tavcc_escrow.Escrow.commit e ~txn
  done;
  row "%-34s reservations=%d blocked=0 final=%d\n" "escrow runtime" !ok
    (Tavcc_escrow.Escrow.committed e);
  print_string
    "shape check: syntactic vectors serialise hot-counter increments\n\
     (every inc writes n); the ad hoc relation plus the Escrow runtime\n\
     admit all of them concurrently — the paper's predefined-type\n\
     escape hatch.\n"

(* ------------------------------------------------------------------ *)
(* E10 — incremental vs full recompilation after a method edit *)

let e10_incremental () =
  section "E10 — incremental recompilation after a method edit (the sec. 3 motivation)";
  row "%-10s %-10s %-12s %-14s %-10s\n" "classes" "affected" "full-ms" "incremental-ms" "speedup";
  List.iter
    (fun depth ->
      let rng = Rng.create 42 in
      let params =
        {
          Workload.default_params with
          sp_depth = depth;
          sp_fanout = 2;
          sp_shared_methods = 6;
          sp_own_methods = 3;
        }
      in
      let schema = Workload.make_schema rng params in
      let an = Analysis.compile schema in
      (* Edit a leaf class: its domain is a single class. *)
      let leaf = List.hd (List.rev (Schema.classes schema)) in
      let md =
        {
          Schema.m_name = Name.Method.of_string "edited";
          m_params = [ "p1" ];
          m_body = [];
        }
      in
      let edit = Incremental.Add_method (leaf, md) in
      let reps = 20 in
      let t0 = now () in
      for _ = 1 to reps do
        match Incremental.apply_edit schema edit with
        | Ok s -> ignore (Analysis.compile s)
        | Error _ -> assert false
      done;
      let t1 = now () in
      for _ = 1 to reps do
        ignore (Incremental.recompile an edit)
      done;
      let t2 = now () in
      let full_ms = (t1 -. t0) *. 1e3 /. float_of_int reps in
      let inc_ms = (t2 -. t1) *. 1e3 /. float_of_int reps in
      row "%-10d %-10d %-12.3f %-14.3f %-10.1f\n" (Schema.class_count schema)
        (List.length (Incremental.affected_classes schema leaf))
        full_ms inc_ms (full_ms /. inc_ms))
    [ 3; 4; 5; 6; 7 ];
  print_string
    "shape check: the edit's cost tracks the affected domain, not the\n\
     schema — the speedup grows with schema size, making frequent method\n\
     updates cheap, as the paper's automation argument requires.\n"

(* ------------------------------------------------------------------ *)
(* E11 — deadlock handling policies on the escalation workload *)

let e11_policies () =
  section "E11 — deadlock policies under contention (escalating rw-msg workload)";
  let policies =
    [
      ("detect", Engine.Detect);
      ("wound-wait", Engine.Wound_wait);
      ("wait-die", Engine.Wait_die);
      ("no-wait", Engine.No_wait);
      ("timeout-25", Engine.Timeout 25);
    ]
  in
  let seeds = List.init 10 (fun i -> 3000 + i) in
  row "%-12s %-10s %-10s %-10s %-10s\n" "policy" "aborts" "waits" "cycles" "commits";
  List.iter
    (fun (name, policy) ->
      let ab = ref 0 and wa = ref 0 and dl = ref 0 and cm = ref 0 in
      List.iter
        (fun seed ->
          let schema = Workload.chain_schema ~levels:3 in
          let an = Analysis.compile schema in
          let store = Store.create schema in
          let oid = Store.new_instance store (Name.Class.of_string "chain") in
          let jobs =
            List.init 6 (fun i ->
                (i + 1, [ Exec.Call (oid, Name.Method.of_string "m3", [ Value.Vint 1 ]) ]))
          in
          let config =
            { Engine.default_config with seed; yield_on_access = true; policy;
              max_restarts = 2000 }
          in
          let r = Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs () in
          ab := !ab + r.Engine.aborts;
          wa := !wa + r.Engine.lock_waits;
          dl := !dl + r.Engine.deadlocks;
          cm := !cm + r.Engine.commits)
        seeds;
      row "%-12s %-10d %-10d %-10d %-10d\n" name !ab !wa !dl !cm)
    policies;
  print_string
    "shape check: detection aborts only on real cycles; wound-wait and\n\
     wait-die trade extra aborts for never building a cycle; no-wait\n\
     aborts on every conflict; all complete the workload.\n"

(* ------------------------------------------------------------------ *)
(* E12 — conservative preclaiming via the dependency graph *)

let e12_preclaim () =
  section "E12 — preclaiming (ordered begin-time acquisition) vs incremental locking";
  let schema = Workload.chain_schema ~levels:0 in
  let an = Analysis.compile schema in
  let seeds = List.init 10 (fun i -> 4000 + i) in
  row "%-10s %-10s %-10s %-10s %-10s\n" "scheme" "deadlocks" "aborts" "waits" "commits";
  List.iter
    (fun (name, mk) ->
      let dl = ref 0 and ab = ref 0 and wa = ref 0 and cm = ref 0 in
      List.iter
        (fun seed ->
          let store = Store.create schema in
          let cls = Name.Class.of_string "chain" in
          let a = Store.new_instance store cls in
          let b = Store.new_instance store cls in
          let m = Name.Method.of_string "m0" in
          (* Opposite-order access: the classical cross deadlock. *)
          let jobs =
            List.init 6 (fun i ->
                let order = if i mod 2 = 0 then [ a; b ] else [ b; a ] in
                (i + 1, List.map (fun o -> Exec.Call (o, m, [ Value.Vint 1 ])) order))
          in
          let config = { Engine.default_config with seed; yield_on_access = true } in
          let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
          dl := !dl + r.Engine.deadlocks;
          ab := !ab + r.Engine.aborts;
          wa := !wa + r.Engine.lock_waits;
          cm := !cm + r.Engine.commits)
        seeds;
      row "%-10s %-10d %-10d %-10d %-10d\n" name !dl !ab !wa !cm)
    [ ("tav", Tavcc_cc.Tav_modes.scheme); ("tav-pre", Tavcc_cc.Tav_preclaim.scheme) ];
  print_string
    "shape check: incremental acquisition deadlocks on opposite-order\n\
     access patterns; preclaiming in canonical resource order never\n\
     builds a cycle (it waits instead), with zero aborted work.\n"

(* ------------------------------------------------------------------ *)
(* E13 — implicit vs explicit class locking (the sec. 5 design choice) *)

let e13_implicit () =
  section "E13 — implicit (ORION) vs explicit class locks, per hierarchy depth";
  row "%-8s %-22s %-22s %-22s\n" "depth" "extent: expl(tav)" "extent: impl(rw)"
    "instance: expl vs impl";
  List.iter
    (fun depth ->
      let rng = Rng.create 42 in
      let params =
        { Workload.default_params with sp_depth = depth; sp_fanout = 1; sp_own_methods = 1 }
      in
      let schema = Workload.make_schema rng params in
      let an = Analysis.compile schema in
      let root = List.hd (Schema.classes schema) in
      let leaf = List.hd (List.rev (Schema.classes schema)) in
      let meth = Name.Method.of_string "g0" in
      let count mk actions =
        let store = Store.create schema in
        Workload.populate store ~per_class:1;
        let r = Engine.run ~scheme:(mk an) ~store ~jobs:[ (1, actions store) ] () in
        r.Engine.lock_requests
      in
      let extent_actions store =
        ignore store;
        [ Exec.Call_extent { cls = root; deep = true; meth; args = [ Value.Vint 1 ] } ]
      in
      let inst_actions store =
        [ Exec.Call (List.hd (Store.extent store leaf), meth, [ Value.Vint 1 ]) ]
      in
      let e_tav = count Tavcc_cc.Tav_modes.scheme extent_actions in
      let e_impl = count Tavcc_cc.Rw_implicit.scheme extent_actions in
      let i_tav = count Tavcc_cc.Tav_modes.scheme inst_actions in
      let i_impl = count Tavcc_cc.Rw_implicit.scheme inst_actions in
      row "%-8d %-22d %-22d %d vs %d\n" depth e_tav e_impl i_tav i_impl)
    [ 1; 2; 4; 8; 12 ];
  print_string
    "shape check: per-method modes are not defined on every class, so the\n\
     paper must lock each domain class explicitly (extent cost grows with\n\
     depth); two-mode implicit locking pays one extent lock but charges\n\
     every instance access an ancestor-chain of intentions instead —\n\
     the trade sec. 5 describes when justifying ORION's choice.\n"

(* ------------------------------------------------------------------ *)
(* E14 — predicate-refined extent locks (the Eswaran lineage of sec. 6) *)

let e14_predicates () =
  section "E14 — range-disjoint extent writers: predicate locks vs whole-extent locks";
  let schema = Workload.wide_schema ~fields:2 ~touched:1 in
  let an = Analysis.compile schema in
  let seeds = List.init 10 (fun i -> 5000 + i) in
  let run name mk =
    let wa = ref 0 and cm = ref 0 in
    List.iter
      (fun seed ->
        let store = Store.create schema in
        let _ =
          List.init 20 (fun i ->
              Store.new_instance store (Name.Class.of_string "wide")
                ~init:[ (Name.Field.of_string "w1", Value.Vint i) ])
        in
        let range lo hi = Tavcc_lock.Pred.make ~lo ~hi (Name.Field.of_string "w1") in
        let job id lo hi =
          ( id,
            [
              Exec.Call_range
                { cls = Name.Class.of_string "wide"; deep = true; pred = range lo hi;
                  meth = Name.Method.of_string "touch"; args = [ Value.Vint 1 ] };
            ] )
        in
        let config = { Engine.default_config with seed; yield_on_access = true } in
        let r =
          Engine.run ~config ~scheme:(mk an) ~store
            ~jobs:[ job 1 0 6; job 2 7 13; job 3 14 19 ] ()
        in
        wa := !wa + r.Engine.lock_waits;
        cm := !cm + r.Engine.commits)
      seeds;
    row "%-12s waits=%-6d commits=%d
" name !wa !cm
  in
  run "tav+pred" Tavcc_cc.Tav_modes.scheme;
  run "rw-top" Tavcc_cc.Rw_toponly.scheme;
  run "rw-impl" Tavcc_cc.Rw_implicit.scheme;
  run "relational" Tavcc_cc.Relational.scheme;
  print_string
    "shape check: three writers over disjoint key ranges of one extent
     run without a single wait under predicate-refined hierarchical
     locks; every whole-extent scheme serialises them.  (Sec. 6 traces
     access vectors to Eswaran's predicate locks — this closes the
     loop.)
"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per measured table. *)

let bechamel_tests () =
  let open Bechamel in
  let an = Paper_example.analysis () in
  let t = Analysis.table an Paper_example.c2 in
  let tav1 = Analysis.tav an Paper_example.c2 Paper_example.m1 in
  let tav4 = Analysis.tav an Paper_example.c2 Paper_example.m4 in
  let schema = Paper_example.schema () in
  let rng = Rng.create 42 in
  let big_schema =
    Workload.make_schema rng
      { Workload.default_params with sp_depth = 4; sp_fanout = 2; sp_shared_methods = 6 }
  in
  Test.make_grouped ~name:"tavcc"
    [
      (* Table 1: the classical compatibility test. *)
      Test.make ~name:"table1/rw-compat-check"
        (Staged.stage (fun () -> Tavcc_lock.Compat.compatible Tavcc_lock.Compat.rw 0 1));
      (* Table 2: the compiled commutativity test (claim 2). *)
      Test.make ~name:"table2/mode-commute-check" (Staged.stage (fun () -> Modes_table.commute t 0 3));
      (* Definition 5 on raw vectors, for contrast. *)
      Test.make ~name:"def5/vector-commute" (Staged.stage (fun () -> Access_vector.commutes tav1 tav4));
      (* Figure 2: building one LBR graph. *)
      Test.make ~name:"figure2/lbr-build"
        (Staged.stage
           (let ex = Extraction.build schema in
            fun () -> Lbr.build ex Paper_example.c2));
      (* E1: the whole compile pipeline on the example and on a larger
         generated schema. *)
      Test.make ~name:"e1/compile-paper-schema" (Staged.stage (fun () -> Analysis.compile schema));
      Test.make ~name:"e1/compile-28-class-schema"
        (Staged.stage (fun () -> Analysis.compile big_schema));
    ]

let run_bechamel () =
  section "Bechamel micro-benchmarks (ns per run, ordinary least squares)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some [ est ] -> row "%-40s %12.2f ns/run\n" name est
         | _ -> row "%-40s %12s\n" name "n/a")

(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  table1 ();
  figure1 ();
  figure2 ();
  table2 ();
  scenario52 ();
  e1_compile_time ();
  e2_runtime_check ();
  e3_controls ();
  e4_deadlocks ();
  e5_pseudo_conflicts ();
  e6_field_overhead ();
  e7_hierarchy ();
  e8_scc_ablation ();
  e9_escrow ();
  e10_incremental ();
  e11_policies ();
  e12_preclaim ();
  e13_implicit ();
  e14_predicates ();
  if not quick then run_bechamel ();
  print_newline ()
