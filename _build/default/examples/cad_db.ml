(* CAD design objects and long transactions.

     dune exec examples/cad_db.exe

   The paper quotes System R folklore via Korth-Kim-Bancilhon's CAD
   study: 97% of deadlocks come from read-to-write lock escalation.  CAD
   methods are exactly that shape — inspect a component, then revise it
   through a self-directed update.  This example shows the escalation
   deadlocks appear under per-message R/W locking and vanish under the
   paper's compiled modes, and that aborted designers roll back cleanly. *)

open Tavcc_model
open Tavcc_core
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine

let source =
  {|
class component is
  fields
    name      : string;
    revision  : integer;
    cost      : integer;
    frozen    : boolean;
  method revise(delta) is
    -- inspect, then update through a self-directed message:
    -- the classical reader-that-becomes-writer.
    var ok := not frozen;
    if ok then
      send bump(delta) to self;
    end
  end
  method bump(delta) is
    revision := revision + 1;
    cost := cost + delta;
  end
  method inspect is
    return revision;
  end
end

class assembly extends component is
  fields
    part_count : integer;
  method add_part is
    part_count := part_count + 1;
    send bump(0) to self;
  end
end
|}

let component = Name.Class.of_string "component"
let assembly = Name.Class.of_string "assembly"
let mn = Name.Method.of_string
let fn = Name.Field.of_string

let () =
  let schema =
    match Schema.build (Tavcc_lang.Parser.parse_decls source) with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)
  in
  let an = Analysis.compile schema in

  (* What the baselines see vs what the compiler derives. *)
  Printf.printf "revise classified by its direct code: %s\n"
    (if Tavcc_cc.Scheme.writes_directly an component (mn "revise") then "writer" else "reader");
  Printf.printf "revise classified by its TAV:         %s\n\n"
    (if Tavcc_cc.Scheme.writes_transitively an component (mn "revise") then "writer" else "reader");
  print_string (Report.tavs an component);

  (* Several designers revising the same hot assembly concurrently. *)
  let run name mk =
    let store = Store.create schema in
    let hot =
      Store.new_instance store assembly
        ~init:[ (fn "name", Value.Vstring "chassis"); (fn "cost", Value.Vint 100) ]
    in
    let jobs =
      List.init 6 (fun i -> (i + 1, [ Exec.Call (hot, mn "revise", [ Value.Vint (10 * i) ]) ]))
    in
    let config = { Engine.default_config with yield_on_access = true; seed = 7 } in
    let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
    Printf.printf "%-12s deadlocks=%-3d aborts=%-3d waits=%-3d commits=%d revision=%s\n" name
      r.Engine.deadlocks r.Engine.aborts r.Engine.lock_waits r.Engine.commits
      (Format.asprintf "%a" Value.pp (Store.read store hot (fn "revision")))
  in
  print_endline "\n6 designers revising one hot assembly:";
  run "rw-msg" Tavcc_cc.Rw_instance.scheme;
  run "field-rt" Tavcc_cc.Field_runtime.scheme;
  run "tav" Tavcc_cc.Tav_modes.scheme;
  run "rw-top" Tavcc_cc.Rw_toponly.scheme;

  (* Recovery: a designer hits a failure mid-method; the undo log (the
     access-vector projection of the paper's recovery remark) restores
     exactly the written fields. *)
  let store = Store.create schema in
  let part =
    Store.new_instance store component
      ~init:[ (fn "name", Value.Vstring "bolt"); (fn "cost", Value.Vint 5) ]
  in
  let txn = Tavcc_txn.Txn.make ~id:1 ~birth:1 in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let ctx = { Tavcc_cc.Scheme.txn; acquire = (fun _ -> ()) } in
  Exec.perform ~scheme ~store ~ctx (Exec.Call (part, mn "bump", [ Value.Vint 42 ]));
  Format.printf "\nmid-transaction: revision=%a cost=%a@."
    Value.pp (Store.read store part (fn "revision"))
    Value.pp (Store.read store part (fn "cost"));
  Tavcc_txn.Txn.abort store txn;
  Format.printf "after abort:     revision=%a cost=%a  (before-images replayed)@."
    Value.pp (Store.read store part (fn "revision"))
    Value.pp (Store.read store part (fn "cost"))
