(* Predefined counter classes: ad hoc commutativity and the Escrow method.

     dune exec examples/counters.exe

   Sec. 3 of the paper keeps a door open next to the automatic analysis:
   predefined types ("Integer", "Collection") may ship with hand-written,
   semantically justified commutativity — citing O'Neil's Escrow method.
   This example ships such a type: a bounded counter whose increments
   and decrements commute although they all write the same field, and an
   escrow runtime that executes them concurrently without locks. *)

open Tavcc_model
open Tavcc_core
module Escrow = Tavcc_escrow.Escrow

let source =
  {|
class counter is
  fields
    n : integer;
  method inc(d) is n := n + d; end
  method dec(d) is n := n - d; end
  method get is return n; end
end

class stock extends counter is   -- inventory: quantity on hand
  fields
    reserved : integer;
  method reserve_one is
    send dec(1) to self;
    reserved := reserved + 1;
  end
end
|}

let counter = Name.Class.of_string "counter"
let stock = Name.Class.of_string "stock"
let inc = Name.Method.of_string "inc"
let dec = Name.Method.of_string "dec"
let get = Name.Method.of_string "get"

let () =
  let schema =
    match Schema.build (Tavcc_lang.Parser.parse_decls source) with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)
  in

  (* 1. What the syntactic analysis concludes: inc and dec both write n,
     so nothing commutes. *)
  let plain = Analysis.compile schema in
  Printf.printf "syntactic analysis: commute(inc,inc)=%b commute(inc,dec)=%b\n"
    (Analysis.commute plain counter inc inc)
    (Analysis.commute plain counter inc dec);

  (* 2. The predefined type ships an ad hoc relation. *)
  let adhoc =
    Adhoc.(declare empty counter [ (inc, inc, true); (dec, dec, true); (inc, dec, true) ])
  in
  let an = Analysis.compile ~adhoc schema in
  Printf.printf "with ad hoc relation: commute(inc,inc)=%b commute(inc,dec)=%b\n"
    (Analysis.commute an counter inc inc)
    (Analysis.commute an counter inc dec);
  Printf.printf "reads still conflict: commute(get,inc)=%b\n\n"
    (Analysis.commute an counter get inc);

  (* 3. Inheritance: stock adds reserve_one, which extends dec — the
     assertion still covers the inherited dec, but any override would
     invalidate it. *)
  Printf.printf "inherited into stock: commute(dec,dec)=%b\n\n"
    (Analysis.commute an stock dec dec);

  (* 4. The escrow runtime: 50 sellers decrement a stock of 100 while 3
     suppliers add 20 each; bounds [0, 200] are never violated, and no
     reservation blocks. *)
  let e = Escrow.create ~low:0 ~high:200 100 in
  let blocked = ref 0 in
  List.iter
    (fun txn ->
      match Escrow.reserve e ~txn ~delta:(-1) with
      | Escrow.Reserved -> ()
      | _ -> incr blocked)
    (List.init 50 (fun i -> i + 1));
  List.iter
    (fun txn ->
      match Escrow.reserve e ~txn ~delta:20 with
      | Escrow.Reserved -> ()
      | _ -> incr blocked)
    [ 51; 52; 53 ];
  Printf.printf "escrow: 53 concurrent reservations, %d refused\n" !blocked;
  Printf.printf "uncertainty interval before any commit: [%d, %d]\n" (Escrow.inf e)
    (Escrow.sup e);
  (* Sellers 1-25 commit, the rest abort; suppliers all commit. *)
  List.iter (fun txn -> Escrow.commit e ~txn) (List.init 25 (fun i -> i + 1));
  List.iter (fun txn -> Escrow.abort e ~txn) (List.init 25 (fun i -> i + 26));
  List.iter (fun txn -> Escrow.commit e ~txn) [ 51; 52; 53 ];
  Printf.printf "after 25 sales and 3 deliveries: %d on hand (100 - 25 + 60)\n\n"
    (Escrow.committed e);

  (* 5. A reservation the bounds cannot promise is refused outright
     instead of blocking: an oversell is impossible by construction. *)
  let tight = Escrow.create ~low:0 ~high:10 3 in
  (match Escrow.reserve tight ~txn:1 ~delta:(-2) with
  | Escrow.Reserved -> print_endline "t1 reserves 2 of 3 items"
  | _ -> assert false);
  (match Escrow.reserve tight ~txn:2 ~delta:(-2) with
  | Escrow.Would_underflow -> print_endline "t2's 2 more would oversell: refused, no wait"
  | _ -> assert false);
  Escrow.abort tight ~txn:1;
  match Escrow.reserve tight ~txn:2 ~delta:(-2) with
  | Escrow.Reserved -> print_endline "after t1 aborts, t2's reservation succeeds"
  | _ -> assert false
