(* Accounts: hierarchical locking and the four access shapes of sec. 5.2.

     dune exec examples/bank_db.exe

   A teller touches one account; an interest batch rewrites a whole
   extent; a risk report reads some accounts of the domain; a fee batch
   rewrites the subclass extent.  These are exactly T1..T4 of the paper,
   on a banking schema, including the hierarchical-vs-intentional class
   lock machinery. *)

open Tavcc_model
open Tavcc_core
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine

let source =
  {|
class account is
  fields
    owner    : string;
    balance  : integer;
  method deposit(n) is
    balance := balance + n;
  end
  method withdraw(n) is
    if balance >= n then
      balance := balance - n;
    end
  end
  method credit_interest(pct) is
    balance := balance + balance * pct / 100;
  end
  method solvency is
    return balance >= 0;
  end
end

class checking extends account is
  fields
    monthly_fee : integer;
    fee_paid    : boolean;
  method charge_fee is       -- touches only checking's own fields
    fee_paid := true;
  end
  method set_fee(n) is
    monthly_fee := n;
    fee_paid := false;
  end
end
|}

let account = Name.Class.of_string "account"
let checking = Name.Class.of_string "checking"
let mn = Name.Method.of_string
let fn = Name.Field.of_string

let mk_store schema =
  let store = Store.create schema in
  let accounts =
    List.init 6 (fun i ->
        Store.new_instance store account
          ~init:[ (fn "owner", Value.Vstring (Printf.sprintf "acc%d" i));
                  (fn "balance", Value.Vint 100) ])
  in
  let checkings =
    List.init 6 (fun i ->
        Store.new_instance store checking
          ~init:[ (fn "owner", Value.Vstring (Printf.sprintf "chk%d" i));
                  (fn "balance", Value.Vint 100) ])
  in
  (store, accounts, checkings)

let () =
  let schema =
    match Schema.build (Tavcc_lang.Parser.parse_decls source) with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)
  in
  let an = Analysis.compile schema in

  print_endline "== commutativity relation of class checking ==";
  print_string (Report.commutativity an checking);
  Printf.printf "\ncharge_fee vs deposit commute? %b (disjoint fields)\n"
    (Analysis.commute an checking (mn "charge_fee") (mn "deposit"));
  Printf.printf "solvency vs deposit commute?   %b (read vs write of balance)\n\n"
    (Analysis.commute an checking (mn "solvency") (mn "deposit"));

  (* The four access shapes of sec. 5.2, as banking transactions:
     T1 teller deposit on one account;
     T2 interest batch over the whole account extent (hierarchical);
     T3 risk report over some accounts of the domain (intentional);
     T4 fee batch over the checking extent (hierarchical). *)
  let run name mk =
    let store, accounts, checkings = mk_store schema in
    let jobs =
      [
        (1, [ Exec.Call (List.hd accounts, mn "deposit", [ Value.Vint 10 ]) ]);
        ( 2,
          [
            Exec.Call_extent
              { cls = account; deep = true; meth = mn "credit_interest";
                args = [ Value.Vint 5 ] };
          ] );
        ( 3,
          [
            Exec.Call_some
              { root = account;
                targets = [ List.nth accounts 2; List.nth checkings 2 ];
                meth = mn "solvency"; args = [] };
          ] );
        ( 4,
          [
            Exec.Call_extent
              { cls = checking; deep = true; meth = mn "charge_fee"; args = [] };
          ] );
      ]
    in
    let config = { Engine.default_config with yield_on_access = true; seed = 11 } in
    let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
    let total =
      List.fold_left
        (fun acc o ->
          match Store.read store o (fn "balance") with Value.Vint b -> acc + b | _ -> acc)
        0
        (Store.deep_extent store account)
    in
    Printf.printf "%-12s waits=%-4d deadlocks=%-3d commits=%d total-balance=%d serializable=%b\n"
      name r.Engine.lock_waits r.Engine.deadlocks r.Engine.commits total
      (Engine.serializable r)
  in
  print_endline "teller || interest batch || risk report || fee batch:";
  run "tav" Tavcc_cc.Tav_modes.scheme;
  run "rw-top" Tavcc_cc.Rw_toponly.scheme;
  run "rw-msg" Tavcc_cc.Rw_instance.scheme;
  run "field-rt" Tavcc_cc.Field_runtime.scheme;
  run "relational" Tavcc_cc.Relational.scheme;

  (* The lock-set view: which of the four can run fully in parallel? *)
  print_endline "\nlock-set compatibility (banking T1..T4) under tav:";
  let store, accounts, checkings = mk_store schema in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let sets =
    List.mapi
      (fun i actions -> Tavcc_cc.Lockset.of_actions ~scheme ~store ~txn_id:(i + 1) actions)
      [
        [ Exec.Call (List.hd accounts, mn "deposit", [ Value.Vint 10 ]) ];
        [ Exec.Call_extent { cls = account; deep = true; meth = mn "credit_interest"; args = [ Value.Vint 5 ] } ];
        [ Exec.Call_some { root = account; targets = [ List.nth accounts 2; List.nth checkings 2 ]; meth = mn "solvency"; args = [] } ];
        [ Exec.Call_extent { cls = checking; deep = true; meth = mn "charge_fee"; args = [] } ];
      ]
  in
  List.iter
    (fun group ->
      Printf.printf "  %s\n"
        (String.concat "||" (List.map (fun i -> Printf.sprintf "T%d" (i + 1)) group)))
    (Tavcc_cc.Lockset.maximal_groups scheme sets)
