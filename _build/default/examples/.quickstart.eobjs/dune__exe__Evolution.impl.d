examples/evolution.ml: Analysis Format Incremental List Name Parser Printf Report Schema String Tavcc_core Tavcc_lang Tavcc_model
