examples/cad_db.mli:
