examples/evolution.mli:
