examples/quickstart.mli:
