examples/library_db.mli:
