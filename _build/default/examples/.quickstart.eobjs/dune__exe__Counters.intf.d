examples/counters.mli:
