examples/bank_db.mli:
