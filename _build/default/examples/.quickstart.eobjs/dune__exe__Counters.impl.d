examples/counters.ml: Adhoc Analysis Format List Name Printf Schema Tavcc_core Tavcc_escrow Tavcc_lang Tavcc_model
