examples/bank_db.ml: Analysis Format List Name Printf Report Schema Store String Tavcc_cc Tavcc_core Tavcc_lang Tavcc_model Tavcc_sim Value
