(* A small library-management OODB.

     dune exec examples/library_db.exe

   The motivating workload of the paper's problem P4: clerks relabel
   books (touching only fields the subclass adds) while the circulation
   desk checks publications in and out (touching only inherited fields).
   Under read/write instance locking both are "writers" and serialise;
   under the compiled access modes they commute. *)

open Tavcc_model
open Tavcc_core
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine

let source =
  {|
class publication is
  fields
    title     : string;
    year      : integer;
    copies    : integer;
    out       : integer;
  method acquire(n) is        -- new copies arrive
    copies := copies + n;
  end
  method checkout is
    if out < copies then
      out := out + 1;
    end
  end
  method checkin is
    if out > 0 then
      out := out - 1;
    end
  end
  method available is
    return copies - out;
  end
end

class book extends publication is
  fields
    isbn     : string;
    shelf    : string;
  method relabel(s) is        -- touches only fields book adds
    shelf := s;
  end
  method describe is
    return title + " [" + isbn + "] @ " + shelf;
  end
end

class journal extends publication is
  fields
    volume   : integer;
  method next_volume is
    volume := volume + 1;
    out := 0;                 -- a fresh volume starts fully shelved
  end
end
|}

let publication = Name.Class.of_string "publication"
let book = Name.Class.of_string "book"
let journal = Name.Class.of_string "journal"
let mn = Name.Method.of_string
let fn = Name.Field.of_string

let () =
  let schema =
    match Schema.build (Tavcc_lang.Parser.parse_decls source) with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)
  in
  (match Tavcc_lang.Check.check schema with
  | Ok () -> ()
  | Error es ->
      List.iter (fun e -> Format.eprintf "%a@." Tavcc_lang.Check.pp_error e) es;
      exit 1);
  let an = Analysis.compile schema in

  print_endline "== what the compiler derived for class book ==";
  print_string (Report.tavs an book);
  print_newline ();
  print_string (Report.commutativity an book);

  Printf.printf "\ncheckout vs relabel commute? %b  (disjoint fields)\n"
    (Analysis.commute an book (mn "checkout") (mn "relabel"));
  Printf.printf "checkout vs checkout commute? %b  (both write 'out')\n"
    (Analysis.commute an book (mn "checkout") (mn "checkout"));
  Printf.printf "available vs relabel commute? %b  (reader vs disjoint writer)\n\n"
    (Analysis.commute an book (mn "available") (mn "relabel"));

  (* Populate: 20 books, 5 journals. *)
  let store = Store.create schema in
  let books =
    List.init 20 (fun i ->
        Store.new_instance store book
          ~init:
            [
              (fn "title", Value.Vstring (Printf.sprintf "Book %d" i));
              (fn "copies", Value.Vint 3);
              (fn "isbn", Value.Vstring (Printf.sprintf "isbn-%04d" i));
              (fn "shelf", Value.Vstring "A1");
            ])
  in
  let _journals =
    List.init 5 (fun i ->
        Store.new_instance store journal
          ~init:[ (fn "title", Value.Vstring (Printf.sprintf "Journal %d" i));
                  (fn "copies", Value.Vint 1) ])
  in

  (* Three concurrent transactions:
     - the circulation desk checks every book out;
     - a clerk relabels every book (subclass fields only);
     - an auditor reads availability across the whole publication domain. *)
  let jobs =
    [
      (1, List.map (fun o -> Exec.Call (o, mn "checkout", [])) books);
      (2, List.map (fun o -> Exec.Call (o, mn "relabel", [ Value.Vstring "B2" ])) books);
      ( 3,
        [
          Exec.Call_some
            { root = publication;
              targets = Store.deep_extent store publication;
              meth = mn "available"; args = [] };
        ] );
    ]
  in
  let run name mk =
    (* Fresh store per scheme so every run sees the same initial state. *)
    let store = Store.create schema in
    let books =
      List.init 20 (fun i ->
          Store.new_instance store book
            ~init:[ (fn "copies", Value.Vint 3); (fn "shelf", Value.Vstring "A1");
                    (fn "title", Value.Vstring (Printf.sprintf "Book %d" i)) ])
    in
    let _ = List.init 5 (fun _ -> Store.new_instance store journal ~init:[ (fn "copies", Value.Vint 1) ]) in
    let jobs =
      [
        (1, List.map (fun o -> Exec.Call (o, mn "checkout", [])) books);
        (2, List.map (fun o -> Exec.Call (o, mn "relabel", [ Value.Vstring "B2" ])) books);
        ( 3,
          [
            Exec.Call_some
              { root = publication; targets = Store.deep_extent store publication;
                meth = mn "available"; args = [] };
          ] );
      ]
    in
    let config = { Engine.default_config with yield_on_access = true } in
    let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
    Printf.printf "%-12s waits=%-4d deadlocks=%-3d commits=%d serializable=%b\n" name
      r.Engine.lock_waits r.Engine.deadlocks r.Engine.commits (Engine.serializable r)
  in
  ignore jobs;
  print_endline "circulation || relabelling || audit, 20 shared books:";
  run "tav" Tavcc_cc.Tav_modes.scheme;
  run "rw-top" Tavcc_cc.Rw_toponly.scheme;
  run "rw-msg" Tavcc_cc.Rw_instance.scheme;
  run "field-rt" Tavcc_cc.Field_runtime.scheme;
  run "relational" Tavcc_cc.Relational.scheme;

  (* Sequential sanity: state after running everything once. *)
  ignore (Tavcc_lang.Interp.call store (List.hd books) (mn "checkout") []);
  Format.printf "\nfirst book availability after one checkout: %a@."
    Value.pp (Tavcc_lang.Interp.call store (List.hd books) (mn "available") [])
