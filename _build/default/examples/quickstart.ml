(* Quickstart: the whole pipeline on the paper's running example.

     dune exec examples/quickstart.exe

   1. parse an ODML schema (Figure 1 of the paper);
   2. compile it: DAVs -> late-binding resolution graphs -> TAVs ->
      per-class access modes (Table 2);
   3. create instances and run methods through the interpreter;
   4. execute two transactions concurrently under the paper's scheme and
      watch the disjoint-field writers m2 and m4 proceed without a wait. *)

open Tavcc_model
open Tavcc_core

let source =
  {|
class c3 is
  fields g1 : integer;
  method m is g1 := g1 + 1; end
end

class c1 is
  fields
    f1 : integer;
    f2 : boolean;
    f3 : c3;
  method m1(p1) is
    send m2(p1) to self;
    send m3 to self;
  end
  method m2(p1) is
    if f2 then f1 := f1 + p1; else f1 := f1 - p1; end
  end
  method m3 is
    if f2 then send m to f3; end
  end
end

class c2 extends c1 is
  fields
    f4 : integer;
    f5 : integer;
    f6 : string;
  method m2(p1) is
    send c1.m2(p1) to self;
    f4 := f5 + p1;
  end
  method m4(p1, p2) is
    if f5 > p1 then f6 := f6 + p2; end
  end
end
|}

let c2 = Name.Class.of_string "c2"
let m2 = Name.Method.of_string "m2"
let m4 = Name.Method.of_string "m4"

let () =
  (* 1. Parse and validate. *)
  let decls = Tavcc_lang.Parser.parse_decls source in
  let schema =
    match Schema.build decls with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)
  in
  (match Tavcc_lang.Check.check schema with
  | Ok () -> ()
  | Error errs ->
      List.iter (fun e -> Format.eprintf "%a@." Tavcc_lang.Check.pp_error e) errs;
      exit 1);
  print_endline "schema parsed and checked.\n";

  (* 2. Compile: everything the paper's secs. 4-5 describe. *)
  let an = Analysis.compile schema in
  print_endline "== compiled analysis of class c2 ==";
  print_string (Report.class_report an c2);

  (* Ask the compiled relation a question the application programmer
     never had to answer by hand (problem P1): do m2 and m4 commute? *)
  Printf.printf "\ndo m2 and m4 commute on c2 instances? %b\n"
    (Analysis.commute an c2 m2 m4);
  Printf.printf "does m2 commute with itself? %b\n\n" (Analysis.commute an c2 m2 m2);

  (* 3. Plain sequential execution through the interpreter. *)
  let store = Store.create schema in
  let obj = Store.new_instance store c2 in
  ignore (Tavcc_lang.Interp.call store obj m2 [ Value.Vint 5 ]);
  Format.printf "after m2(5): f1 = %a, f4 = %a@."
    Value.pp (Store.read store obj (Name.Field.of_string "f1"))
    Value.pp (Store.read store obj (Name.Field.of_string "f4"));

  (* 4. Two transactions under the paper's scheme: T1 runs m2, T2 runs m4
     on the same instances.  Their TAVs touch disjoint fields, so the
     compiled access modes commute: no wait, no deadlock. *)
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let objs = List.init 8 (fun _ -> Store.new_instance store c2) in
  let jobs =
    [
      (1, List.map (fun o -> Tavcc_cc.Exec.Call (o, m2, [ Value.Vint 1 ])) objs);
      (2, List.map (fun o -> Tavcc_cc.Exec.Call (o, m4, [ Value.Vint (-1); Value.Vstring "!" ])) objs);
    ]
  in
  let config = { Tavcc_sim.Engine.default_config with yield_on_access = true } in
  let r = Tavcc_sim.Engine.run ~config ~scheme ~store ~jobs () in
  Printf.printf
    "\nconcurrent m2 || m4 on 8 shared instances under '%s':\n\
    \  commits=%d  lock waits=%d  deadlocks=%d  serializable=%b\n"
    scheme.Tavcc_cc.Scheme.name r.Tavcc_sim.Engine.commits r.Tavcc_sim.Engine.lock_waits
    r.Tavcc_sim.Engine.deadlocks
    (Tavcc_sim.Engine.serializable r);

  (* The same workload under two-mode locking waits on every instance. *)
  let store2 = Store.create schema in
  let objs2 = List.init 8 (fun _ -> Store.new_instance store2 c2) in
  let jobs2 =
    [
      (1, List.map (fun o -> Tavcc_cc.Exec.Call (o, m2, [ Value.Vint 1 ])) objs2);
      (2, List.map (fun o -> Tavcc_cc.Exec.Call (o, m4, [ Value.Vint (-1); Value.Vstring "!" ])) objs2);
    ]
  in
  let rw = Tavcc_cc.Rw_toponly.scheme an in
  let r2 = Tavcc_sim.Engine.run ~config ~scheme:rw ~store:store2 ~jobs:jobs2 () in
  Printf.printf
    "same workload under '%s' (two access modes only):\n\
    \  commits=%d  lock waits=%d  deadlocks=%d  serializable=%b\n"
    rw.Tavcc_cc.Scheme.name r2.Tavcc_sim.Engine.commits r2.Tavcc_sim.Engine.lock_waits
    r2.Tavcc_sim.Engine.deadlocks
    (Tavcc_sim.Engine.serializable r2)
