(* Schema evolution: the maintenance story behind the paper's automation
   argument.

     dune exec examples/evolution.exe

   Sec. 3: hand-written commutativity cannot survive a schema where
   "methods are frequently added, removed, or updated".  Here a living
   schema goes through three edits; after each, the compiled relations
   follow automatically — and incrementally, recomputing only the edited
   class's domain. *)

open Tavcc_model
open Tavcc_core
open Tavcc_lang

let source =
  {|
class document is
  fields
    title   : string;
    body    : string;
    version : integer;
  method edit(t) is
    body := body + t;
    send bump to self;
  end
  method bump is
    version := version + 1;
  end
  method read_body is
    return body;
  end
end

class report extends document is
  fields
    reviewer : string;
  method sign(r) is
    reviewer := r;
  end
end
|}

let document = Name.Class.of_string "document"
let report = Name.Class.of_string "report"
let mn = Name.Method.of_string

let show an cls =
  Format.printf "%s" (Report.commutativity an cls);
  print_newline ()

let parse_method src =
  let decls = Parser.parse_decls (Printf.sprintf "class __w is %s end" src) in
  List.hd (List.hd decls).Schema.c_methods

let apply an edit label =
  match Incremental.recompile an edit with
  | Error e -> failwith (Format.asprintf "%a" Incremental.pp_error e)
  | Ok an' ->
      Printf.printf "== %s ==\n" label;
      Printf.printf "affected classes: %s\n"
        (String.concat ", "
           (List.map Name.Class.to_string
              (Incremental.affected_classes (Analysis.schema an')
                 (Incremental.edited_class edit))));
      an'

let () =
  let schema =
    match Schema.build (Parser.parse_decls source) with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)
  in
  let an = Analysis.compile schema in
  print_endline "== initial relation of class report ==";
  show an report;
  Printf.printf "sign vs edit commute? %b (disjoint fields)\n\n"
    (Analysis.commute an report (mn "sign") (mn "edit"));

  (* Edit 1: signing now also bumps the version — sign's TAV grows a
     write of an inherited field, and the commutativity follows. *)
  let an =
    apply an
      (Incremental.Update_method
         ( report,
           parse_method "method sign(r) is reviewer := r; send bump to self; end" ))
      "edit 1: sign versions the document"
  in
  show an report;
  Printf.printf "sign vs edit commute now? %b (both bump the version)\n\n"
    (Analysis.commute an report (mn "sign") (mn "edit"));

  (* Edit 2: a brand-new archival method on the base class appears in
     every subclass's relation automatically. *)
  let an =
    apply an
      (Incremental.Add_method
         (document, parse_method "method archive is title := title + \" [archived]\"; end"))
      "edit 2: document gains archive"
  in
  show an report;

  (* Edit 3: the signing override is withdrawn; report falls back to...
     nothing — sign was never defined upstream, so the method disappears
     from METHODS(report)?  No: sign was defined in report itself, so
     removing it shrinks the relation. *)
  let an =
    apply an (Incremental.Remove_method (report, mn "sign")) "edit 3: sign removed"
  in
  show an report;
  Printf.printf "report now understands: %s\n"
    (String.concat ", "
       (List.map Name.Method.to_string (Schema.methods (Analysis.schema an) report)))
