(* oosim — concurrency-control simulator.

   Runs workloads through the deterministic execution engine under any of
   the five schemes and reports lock traffic, waits, deadlocks and the
   serializability verdict. *)

open Cmdliner
open Tavcc_model
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng

let schemes =
  [
    ("tav", Tavcc_cc.Tav_modes.scheme);
    ("tav-pre", Tavcc_cc.Tav_preclaim.scheme);
    ("rw-msg", Tavcc_cc.Rw_instance.scheme);
    ("rw-top", Tavcc_cc.Rw_toponly.scheme);
    ("rw-impl", Tavcc_cc.Rw_implicit.scheme);
    ("field-rt", Tavcc_cc.Field_runtime.scheme);
    ("relational", Tavcc_cc.Relational.scheme);
  ]

let policies =
  [
    ("detect", Engine.Detect);
    ("wound-wait", Engine.Wound_wait);
    ("wait-die", Engine.Wait_die);
    ("no-wait", Engine.No_wait);
    ("timeout", Engine.Timeout 50);
  ]

let policy_conv =
  let parse s =
    match List.assoc_opt s policies with
    | Some p -> Ok p
    | None ->
        Error (`Msg (Printf.sprintf "unknown policy %S (expected %s)" s
                       (String.concat ", " (List.map fst policies))))
  in
  Arg.conv (parse, fun ppf p ->
      Format.pp_print_string ppf
        (match p with
        | Engine.Detect -> "detect"
        | Engine.Wound_wait -> "wound-wait"
        | Engine.Wait_die -> "wait-die"
        | Engine.No_wait -> "no-wait"
        | Engine.Timeout n -> Printf.sprintf "timeout(%d)" n))

let policy_arg =
  Arg.(value & opt policy_conv Engine.Detect
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Deadlock handling: detect, wound-wait, wait-die, no-wait or timeout.")

let scheme_conv =
  let parse s =
    match List.assoc_opt s schemes with
    | Some _ -> Ok s
    | None ->
        Error (`Msg (Printf.sprintf "unknown scheme %S (expected %s)" s
                       (String.concat ", " (List.map fst schemes))))
  in
  Arg.conv (parse, Format.pp_print_string)

let print_result name (r : Engine.result) =
  Printf.printf
    "%-12s commits=%-4d deadlocks=%-4d aborts=%-4d restarts=%-4d reqs=%-6d waits=%-5d \
     conversions=%-5d steps=%-6d serializable=%b\n"
    name r.Engine.commits r.Engine.deadlocks r.Engine.aborts r.Engine.restarts
    r.Engine.lock_requests r.Engine.lock_waits r.Engine.lock_conversions
    r.Engine.scheduler_steps (Engine.serializable r);
  List.iter (fun (id, msg) -> Printf.printf "  txn %d FAILED: %s\n" id msg) r.Engine.failed

(* --- run: random workloads on generated schemas --- *)

let run_cmd =
  let run scheme_names seed txns actions depth fanout per_class extent_prob hot yield policy =
    let rng = Rng.create seed in
    let schema =
      Workload.make_schema rng
        { Workload.default_params with sp_depth = depth; sp_fanout = fanout }
    in
    let an = Tavcc_core.Analysis.compile schema in
    Printf.printf
      "schema: %d classes, %d analysed methods; %d instances per class; %d txns x %d actions; \
       seed %d\n\n"
      (Schema.class_count schema)
      (Tavcc_core.Analysis.method_count an)
      per_class txns actions seed;
    let names = if scheme_names = [] then List.map fst schemes else scheme_names in
    List.iter
      (fun name ->
        let mk = List.assoc name schemes in
        let store = Store.create schema in
        Workload.populate store ~per_class;
        let jobs =
          Workload.random_jobs (Rng.create (seed + 1)) store ~txns ~actions_per_txn:actions
            ~extent_prob ~hot_instances:hot ~hot_prob:0.7
        in
        let config = { Engine.default_config with seed; yield_on_access = yield; policy } in
        print_result name (Engine.run ~config ~scheme:(mk an) ~store ~jobs ()))
      names;
    0
  in
  let scheme_arg =
    Arg.(value & opt_all scheme_conv [] & info [ "s"; "scheme" ] ~docv:"SCHEME"
           ~doc:"Scheme to simulate (repeatable); default: all schemes.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let txns = Arg.(value & opt int 8 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Concurrent transactions.") in
  let actions = Arg.(value & opt int 4 & info [ "a"; "actions" ] ~docv:"N" ~doc:"Actions per transaction.") in
  let depth = Arg.(value & opt int 3 & info [ "depth" ] ~docv:"N" ~doc:"Inheritance depth.") in
  let fanout = Arg.(value & opt int 2 & info [ "fanout" ] ~docv:"N" ~doc:"Subclasses per class.") in
  let per_class = Arg.(value & opt int 4 & info [ "instances" ] ~docv:"N" ~doc:"Instances per class.") in
  let extent_prob =
    Arg.(value & opt float 0.15 & info [ "extent-prob" ] ~docv:"P" ~doc:"Probability of an extent scan.")
  in
  let hot = Arg.(value & opt int 3 & info [ "hot" ] ~docv:"N" ~doc:"Hot-set size.") in
  let yield =
    Arg.(value & opt bool true & info [ "interleave" ] ~docv:"BOOL"
           ~doc:"Reschedule at every field access.")
  in
  let doc = "simulate a random workload under one or more schemes" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ scheme_arg $ seed $ txns $ actions $ depth $ fanout $ per_class $ extent_prob
      $ hot $ yield $ policy_arg)

(* --- scenario: the sec. 5.2 comparison --- *)

let scenario_cmd =
  let run () =
    List.iter
      (fun (_, mk) ->
        Format.printf "%a@." Tavcc_cc.Scenario.pp (Tavcc_cc.Scenario.evaluate mk))
      schemes;
    0
  in
  let doc = "evaluate the paper's sec. 5.2 four-transaction scenario" in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(const run $ const ())

(* --- escalation: the deadlock demonstration --- *)

let escalation_cmd =
  let run seed txns levels policy trace =
    let schema = Workload.chain_schema ~levels in
    let an = Tavcc_core.Analysis.compile schema in
    Printf.printf
      "reader-then-writer cascade of depth %d, %d transactions on one instance, seed %d\n\n"
      levels txns seed;
    List.iter
      (fun (name, mk) ->
        let store = Store.create schema in
        let oid = Store.new_instance store (Name.Class.of_string "chain") in
        let top = Name.Method.of_string (Printf.sprintf "m%d" levels) in
        let jobs = List.init txns (fun i -> (i + 1, [ Exec.Call (oid, top, [ Value.Vint 1 ]) ])) in
        let config =
          { Engine.default_config with seed; yield_on_access = true; policy; trace }
        in
        let r = Engine.run ~config ~scheme:(mk an) ~store ~jobs () in
        print_result name r;
        if trace then
          List.iter (fun e -> Format.printf "    %a@." Engine.pp_event e) r.Engine.events)
      schemes;
    0
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let txns = Arg.(value & opt int 6 & info [ "t"; "txns" ] ~docv:"N" ~doc:"Concurrent transactions.") in
  let levels = Arg.(value & opt int 3 & info [ "depth" ] ~docv:"N" ~doc:"Self-call cascade depth.") in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the engine's event log for each scheme.")
  in
  let doc = "demonstrate escalation deadlocks (problem P3)" in
  Cmd.v (Cmd.info "escalation" ~doc) Term.(const run $ seed $ txns $ levels $ policy_arg $ trace)

let main =
  let doc = "object-oriented concurrency-control simulator (Malta & Martinez, ICDE'93)" in
  Cmd.group (Cmd.info "oosim" ~version:"1.0.0" ~doc) [ run_cmd; scenario_cmd; escalation_cmd ]

let () = exit (Cmd.eval' main)
