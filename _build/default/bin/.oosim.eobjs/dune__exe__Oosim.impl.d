bin/oosim.ml: Arg Cmd Cmdliner Format List Name Printf Schema Store String Tavcc_cc Tavcc_core Tavcc_model Tavcc_sim Term Value
