bin/oosim.mli:
