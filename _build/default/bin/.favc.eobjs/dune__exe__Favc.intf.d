bin/favc.mli:
