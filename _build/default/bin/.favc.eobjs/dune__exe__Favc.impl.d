bin/favc.ml: Analysis Arg Cmd Cmdliner Depgraph Extraction Format Fun In_channel Lbr List Name Printf Report Result Schema Tavcc_core Tavcc_lang Tavcc_model Term
