(* analyze/wall-time — cost of the lint passes vs the compile pipeline,
   as schema size grows.

   The linter (Lint.analyze) re-walks the compiled artefacts: blame
   chains are one BFS per widened (class, method), pseudo-conflicts one
   commutativity test per method pair, PRE001 one SCC pass over the
   method dependency graph.  All of that is the same asymptotic shape as
   Analysis.compile itself (extraction + LBR + TAV fixpoint + tables),
   so linting must stay within a small constant of compiling — the gate
   fails the run when lint exceeds [threshold_x] times compile on any
   schema.  Each measurement takes the minimum of [repeats] runs.
   Results go to stdout and BENCH_analyze.json.

   The workloads scale schema size (class count, inheritance depth and
   fanout, self-call chain length), which is the axis compile time
   itself scales along.  Diagnostic *output* volume is a different axis:
   a single-class clique of M mutually recursive methods emits O(M^2)
   provenance-rich chains while its TAV fixpoint condenses to one SCC
   join, so lint-to-compile on such a schema measures message
   materialisation, not analysis — that regime is covered by the
   per-diag figures in the JSON rather than the ratio gate. *)

module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module Analysis = Tavcc_core.Analysis
module Lint = Tavcc_analyze.Lint

let quick = Array.exists (( = ) "--quick") Sys.argv
let repeats = if quick then 5 else 7
let threshold_x = 3.0
let now () = Unix.gettimeofday ()

(* Per-run times here are tens of microseconds — single-call samples sit
   at the timer's resolution and the min wanders by 2x.  Each sample is
   therefore a batch sized to ~1ms of work; the reported time is the
   best batch average over [repeats] batches. *)
let min_time f =
  let t0 = now () in
  let v0 = f () in
  let est = Float.max 1e-7 (now () -. t0) in
  let iters = max 1 (int_of_float (1e-3 /. est)) in
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = now () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = (now () -. t0) /. float_of_int iters in
    if dt < !best then best := dt
  done;
  (!best *. 1e3, v0)

type row = {
  label : string;
  gated : bool;
  classes : int;
  methods : int;
  diags : int;
  compile_ms : float;
  lint_ms : float;
  ratio : float;
  us_per_diag : float;
}

let run_config ~seed ~gated label schema =
  (* Start each measurement from a settled heap: a pending major
     collection landing inside one config's timing loop but not the
     other's would skew the ratio. *)
  Gc.major ();
  let compile_ms, an = min_time (fun () -> Analysis.compile schema) in
  Gc.major ();
  let lint_ms, report = min_time (fun () -> Lint.analyze an) in
  ignore seed;
  let diags = List.length report.Lint.r_diags in
  {
    label;
    gated;
    classes = Tavcc_model.Schema.class_count schema;
    methods = Analysis.method_count an;
    diags;
    compile_ms;
    lint_ms;
    ratio = lint_ms /. compile_ms;
    us_per_diag = (if diags = 0 then 0.0 else lint_ms *. 1e3 /. float_of_int diags);
  }

let json_of_row r =
  Printf.sprintf
    "    {\"label\": \"%s\", \"gated\": %b, \"classes\": %d, \"methods\": %d, \
     \"diags\": %d, \"compile_ms\": %.3f, \"lint_ms\": %.3f, \"ratio\": %.2f, \
     \"us_per_diag\": %.2f}"
    r.label r.gated r.classes r.methods r.diags r.compile_ms r.lint_ms r.ratio
    r.us_per_diag

let () =
  let seed = 42 in
  let configs =
    [
      ("paper-fig1", true, Tavcc_core.Paper_example.schema ());
      ( "tree-d2-f2",
        true,
        Workload.make_schema (Rng.create seed)
          { Workload.default_params with sp_depth = 2; sp_fanout = 2 } );
      ( "tree-d3-f2",
        true,
        Workload.make_schema (Rng.create seed)
          { Workload.default_params with sp_depth = 3; sp_fanout = 2 } );
      ( "tree-d3-f3",
        true,
        Workload.make_schema (Rng.create seed)
          { Workload.default_params with sp_depth = 3; sp_fanout = 3 } );
      ("chain-12", true, Workload.chain_schema ~levels:12);
      (* Output-bound outlier: O(M^2) chains out of one condensed SCC —
         reported for the per-diag figure, outside the ratio gate. *)
      ("scc-cluster-24", false, Workload.recursive_cluster_schema ~methods:24);
    ]
  in
  Printf.printf "analyze/wall-time — lint passes vs Analysis.compile\n";
  Printf.printf
    "(min of %d repeats, seed %d, gate: lint <= %.1fx compile on gated rows)\n\n" repeats
    seed threshold_x;
  Printf.printf "%-16s %-6s %-8s %-8s %-6s %-12s %-10s %-8s %-8s\n" "schema" "gated"
    "classes" "methods" "diags" "compile-ms" "lint-ms" "ratio" "us/diag";
  let rows =
    List.map
      (fun (label, gated, schema) ->
        let r = run_config ~seed ~gated label schema in
        Printf.printf "%-16s %-6b %-8d %-8d %-6d %-12.3f %-10.3f %-8.2f %-8.2f\n" r.label
          r.gated r.classes r.methods r.diags r.compile_ms r.lint_ms r.ratio r.us_per_diag;
        r)
      configs
  in
  let max_ratio =
    List.fold_left
      (fun acc r -> if r.gated then Float.max acc r.ratio else acc)
      neg_infinity rows
  in
  let oc = open_out "BENCH_analyze.json" in
  output_string oc "{\n  \"bench\": \"analyze/wall-time\",\n";
  Printf.fprintf oc "  \"repeats\": %d,\n  \"seed\": %d,\n  \"threshold_x\": %.1f,\n" repeats
    seed threshold_x;
  output_string oc "  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n  ],\n";
  Printf.fprintf oc "  \"max_ratio\": %.2f\n}\n" max_ratio;
  close_out oc;
  Printf.printf "\nwrote BENCH_analyze.json (%d rows, max ratio %.2fx)\n" (List.length rows)
    max_ratio;
  if max_ratio > threshold_x then begin
    Printf.printf "FAIL: lint exceeded %.1fx the compile time\n" threshold_x;
    exit 1
  end
