(* sanitize/overhead — cost of the soundness sanitizer's probes.

   Runs the contended slice workload through [Par_engine] twice per
   configuration: bare (no probe, the production default — one [None]
   branch per access) and with the sanitizer attached the way
   [oosim par --sanitize] attaches it — one access-vector [Recorder] per
   worker domain, fanned together with one lock-coverage [Monitor] per
   domain.  Base and instrumented samples alternate within one loop
   ([min_time2]) so frequency drift hits both sides equally.

   The gated rows carry the recorder alone: that is the observation the
   differential oracle needs, and it must stay within [threshold_pct] of
   bare at 1 and 4 domains.  The full recorder+monitor rows are reported
   for context — the monitor's [holds] query takes the shard lock on
   every field access, which is the price of asking "does a held lock
   dominate this?" while the locks are live.  Results go to stdout and
   BENCH_sanitize.json; the run fails when a gated row exceeds the
   threshold. *)

module Rng = Tavcc_sim.Rng
module Workload = Tavcc_sim.Workload
module Par_engine = Tavcc_par.Par_engine
module Recorder = Tavcc_sanitize.Recorder
module Monitor = Tavcc_sanitize.Monitor
module Exec = Tavcc_cc.Exec

let quick = Array.exists (( = ) "--quick") Sys.argv
let par_txns = if quick then 400 else 3000
let repeats = if quick then 3 else 9
let threshold_pct = 10.0

let both_probes a b =
  {
    Exec.p_top_send = (fun o c m -> a.Exec.p_top_send o c m; b.Exec.p_top_send o c m);
    p_self_send = (fun o c m -> a.Exec.p_self_send o c m; b.Exec.p_self_send o c m);
    p_enter =
      (fun o c ~resolve_at ~defining m ->
        a.Exec.p_enter o c ~resolve_at ~defining m;
        b.Exec.p_enter o c ~resolve_at ~defining m);
    p_exit = (fun o c m -> a.Exec.p_exit o c m; b.Exec.p_exit o c m);
    p_read =
      (fun o c f ~versioned ->
        a.Exec.p_read o c f ~versioned;
        b.Exec.p_read o c f ~versioned);
    p_write =
      (fun o c f ~versioned ->
        a.Exec.p_write o c f ~versioned;
        b.Exec.p_write o c f ~versioned);
  }

let now () = Unix.gettimeofday ()

(* Paired-ratio timer.  Absolute wall times on this class of machine
   drift by 10-30% between moments (noisy neighbours, frequency
   steps), which drowns a 10% effect when each side's minimum is taken
   independently.  Instead each repeat times the two sides back to
   back — temporally adjacent samples share machine conditions — and
   contributes one probed/base ratio; the median ratio over all
   repeats is robust to the windows where the machine hiccuped.  Order
   flips on every other repeat and each sample starts from a settled
   heap so neither side inherits the other's pending GC work. *)
let min_time2 f g =
  let bf = ref infinity and bg = ref infinity and out_f = ref 0 and out_g = ref 0 in
  let ratios = ref [] in
  ignore (f ());
  ignore (g ());
  let sample best out h =
    Gc.full_major ();
    let t0 = now () in
    out := h ();
    let dt = now () -. t0 in
    if dt < !best then best := dt;
    dt
  in
  for i = 1 to repeats do
    let df, dg =
      if i land 1 = 0 then begin
        let df = sample bf out_f f in
        let dg = sample bg out_g g in
        (df, dg)
      end
      else begin
        let dg = sample bg out_g g in
        let df = sample bf out_f f in
        (df, dg)
      end
    in
    ratios := (dg /. df) :: !ratios
  done;
  let sorted = List.sort compare !ratios in
  let median = List.nth sorted (List.length sorted / 2) in
  ((!bf *. 1e3, !out_f), (!bg *. 1e3, !out_g), median)

(* Setup (schema analysis, recorders, monitors) happens once per
   configuration, outside the timed region: the gate is on the
   per-access probe cost.  The hot set is spread across every instance:
   under contention the wall clock measures lock-scheduling luck
   (deadlock sweeps, who blocks whom), which swings far more than the
   probe itself — a low-conflict run is what isolates the per-access
   delta the gate is about. *)
let runner ~domains ~probe_of =
  let schema = Workload.slice_schema ~readers:0 ~methods:16 ~work:8 () in
  let an = Tavcc_core.Analysis.compile schema in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let probe = probe_of an in
  let config = { Par_engine.default_config with domains; probe } in
  fun () ->
    let store = Tavcc_model.Store.create schema in
    Workload.populate store ~per_class:8;
    let jobs =
      Workload.slice_jobs (Rng.create 43) store ~txns:par_txns ~actions_per_txn:4
        ~hot_instances:8
    in
    let r = Par_engine.run ~config ~scheme ~store ~jobs () in
    r.Par_engine.commits

let bare _an = None

(* plumbing floor: the per-txn probe construction and dispatch without
   any recording — what [--sanitize] costs before the recorder does work *)
let noop _an = Some (fun ~dom:_ ~txn:_ ~holds:_ -> Exec.null_probe)

let recorder_only ~domains an =
  ignore an;
  let recorders = Array.init domains (fun _ -> Recorder.create ()) in
  Some (fun ~dom ~txn ~holds:_ -> Recorder.probe recorders.(dom) ~txn)

let recorder_and_monitor ~domains an =
  let recorders = Array.init domains (fun _ -> Recorder.create ()) in
  let mons = Array.init domains (fun _ -> Monitor.create ~scheme:"tav" an) in
  Some
    (fun ~dom ~txn ~holds ->
      both_probes (Recorder.probe recorders.(dom) ~txn) (Monitor.probe mons.(dom) ~txn ~holds))

type row = {
  domains : int;
  label : string;
  commits : int;
  base_ms : float;
  probed_ms : float;
  overhead_pct : float;
  gated : bool;
}

(* Gated rows take the best of three independent median passes: the
   noise floor on a shared box swings a single pass's median by a few
   percent in either direction, and the gate asks for an upper bound —
   a genuine regression inflates every pass, a hiccup only one. *)
let run_config ~domains ~label ~gated probe_of =
  let passes = if gated && not quick then 3 else 1 in
  let measure () =
    min_time2 (runner ~domains ~probe_of:bare) (runner ~domains ~probe_of)
  in
  let best = ref (measure ()) in
  for _ = 2 to passes do
    let ((_, _), (_, _), m) as r = measure () in
    let _, _, bm = !best in
    if m < bm then best := r
  done;
  let (base_ms, commits), (probed_ms, commits'), median_ratio = !best in
  assert (commits = commits');
  let overhead_pct = (median_ratio -. 1.0) *. 100.0 in
  Printf.printf "%d domain(s), %-18s %8.3f ms vs %8.3f ms bare  (%+.2f%%)%s\n%!" domains
    label probed_ms base_ms overhead_pct
    (if gated then "" else "  [context]");
  { domains; label; commits; base_ms; probed_ms; overhead_pct; gated }

let () =
  Printf.printf "sanitize/overhead — slice workload, sanitizer probes vs bare\n";
  Printf.printf "(%d txns x 4 actions, 16 slices x 8 writes, tav, min of %d repeats)\n\n"
    par_txns repeats;
  let rows =
    List.concat_map
      (fun domains ->
        [
          run_config ~domains ~label:"null-probe" ~gated:false noop;
          run_config ~domains ~label:"recorder" ~gated:true (recorder_only ~domains);
          run_config ~domains ~label:"recorder+monitor" ~gated:false
            (recorder_and_monitor ~domains);
        ])
      [ 1; 4 ]
  in
  let max_gated =
    List.fold_left
      (fun acc r -> if r.gated then Float.max acc r.overhead_pct else acc)
      neg_infinity rows
  in
  let oc = open_out "BENCH_sanitize.json" in
  output_string oc "{\n  \"bench\": \"sanitize/overhead\",\n";
  Printf.fprintf oc "  \"txns\": %d,\n  \"repeats\": %d,\n" par_txns repeats;
  Printf.fprintf oc "  \"threshold_pct\": %.1f,\n" threshold_pct;
  output_string oc "  \"rows\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"domains\": %d, \"probe\": \"%s\", \"commits\": %d, \"base_ms\": \
               %.3f, \"probed_ms\": %.3f, \"overhead_pct\": %.2f, \"gated\": %b}"
              r.domains r.label r.commits r.base_ms r.probed_ms r.overhead_pct
              r.gated)
          rows));
  output_string oc "\n  ],\n";
  Printf.fprintf oc "  \"max_gated_overhead_pct\": %.2f\n}\n" max_gated;
  close_out oc;
  Printf.printf "\nwrote BENCH_sanitize.json (%d rows, max gated overhead %.2f%%)\n"
    (List.length rows) max_gated;
  (* quick mode (CI) has too few samples for the ratio gate to be fair;
     there the normalised regression compare in scripts/bench_regression.py
     does the guarding *)
  if (not quick) && max_gated > threshold_pct then begin
    Printf.printf "FAIL: recorder overhead above %.1f%%\n" threshold_pct;
    exit 1
  end
