(* par/throughput — the multicore driver on the contended slice workload.

   Runs the slice workload (disjoint field slices hammering a small hot
   set of grid instances) through [Par_engine] under instance-granularity
   r/w locking and the paper's TAV field modes, sweeping the domain
   count.  Every [u_i] writes only its own field [s_i], so TAV modes
   commute across distinct slices while rw-instance sees every call as a
   writer on the same hot instances: it serialises, queues behind the
   hot-set locks and deadlocks on lock-order cycles, burning restarts.

   The headline figure is the TAV / rw-instance throughput ratio at the
   widest domain count — gated at >= [threshold_x], the multicore payoff
   of automating field-level modes (E16 in EXPERIMENTS.md).

   Results go to stdout and BENCH_par.json.  [--quick] shrinks the
   workload for CI smoke and regression runs (recorded in the JSON so
   the regression script normalises wall time per committed txn). *)

module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module Engine = Tavcc_sim.Engine
module Store = Tavcc_model.Store
module Par_engine = Tavcc_par.Par_engine

let slices = 16
let work = 8
let actions_per_txn = 4
let instances = 4
let hot = 4
let shards = 8
let seed = 42
let threshold_x = 2.0

(* Both instance-granularity r/w schemes are recorded so the docs can
   name the collapsing one precisely: "rw-msg" is module [Rw_instance]
   (a lock per message send), "rw-top" is [Rw_toponly] (top-level sends
   only).  The headline ratio stays tav vs rw-msg. *)
let schemes =
  [
    ("rw-msg", Tavcc_cc.Rw_instance.scheme);
    ("rw-top", Tavcc_cc.Rw_toponly.scheme);
    ("tav", Tavcc_cc.Tav_modes.scheme);
  ]

type row = {
  scheme : string;
  domains : int;
  commits : int;
  aborts : int;
  deadlocks : int;
  restarts : int;
  wall_ms : float;
  txn_s : float;
}

let run_config ~an ~schema ~txns ~repeats name mk domains =
  (* Best of [repeats]: the sharded table is contention-heavy and a cold
     run can eat an unlucky detector sweep; the best run is the stable
     figure on a loaded CI box. *)
  let best = ref None in
  for _ = 1 to repeats do
    let store = Store.create schema in
    Workload.populate store ~per_class:instances;
    let jobs =
      Workload.slice_jobs (Rng.create (seed + 1)) store ~txns ~actions_per_txn
        ~hot_instances:hot
    in
    let config = { Par_engine.default_config with domains; shards } in
    let r = Par_engine.run ~config ~scheme:(mk an) ~store ~jobs () in
    if r.Par_engine.failed <> [] then begin
      List.iter
        (fun (id, msg) -> Printf.printf "txn %d FAILED under %s: %s\n" id name msg)
        r.Par_engine.failed;
      exit 1
    end;
    if r.Par_engine.commits <> txns then begin
      Printf.printf "FAIL: %s committed %d of %d txns\n" name r.Par_engine.commits txns;
      exit 1
    end;
    match !best with
    | Some b when b.Par_engine.throughput >= r.Par_engine.throughput -> ()
    | _ -> best := Some r
  done;
  let r = Option.get !best in
  {
    scheme = name;
    domains;
    commits = r.Par_engine.commits;
    aborts = r.Par_engine.aborts;
    deadlocks = r.Par_engine.deadlocks;
    restarts = r.Par_engine.restarts;
    wall_ms = r.Par_engine.wall_seconds *. 1e3;
    txn_s = r.Par_engine.throughput;
  }

let json_of_row r =
  Printf.sprintf
    "    {\"scheme\": \"%s\", \"domains\": %d, \"commits\": %d, \"aborts\": %d, \
     \"deadlocks\": %d, \"restarts\": %d, \"wall_ms\": %.3f, \"txn_s\": %.0f}"
    r.scheme r.domains r.commits r.aborts r.deadlocks r.restarts r.wall_ms r.txn_s

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let txns = if quick then 150 else 600 in
  let repeats = if quick then 2 else 3 in
  let domain_sweep = [ 1; 2; 4 ] in
  let schema = Workload.slice_schema ~methods:slices ~work () in
  let an = Tavcc_core.Analysis.compile schema in
  Printf.printf "par/throughput — sharded lock manager, rw-instance vs TAV field modes\n";
  Printf.printf
    "(%d txns x %d actions, %d slices x %d writes, hot set %d of %d, %d shards, best of \
     %d, seed %d%s)\n\n"
    txns actions_per_txn slices work hot instances shards repeats seed
    (if quick then ", quick" else "");
  Printf.printf "%-8s %-8s %-8s %-8s %-10s %-9s %-10s %-10s\n" "scheme" "domains" "commits"
    "aborts" "deadlocks" "restarts" "wall-ms" "txn/s";
  let rows =
    List.concat_map
      (fun (name, mk) ->
        List.map
          (fun domains ->
            let r = run_config ~an ~schema ~txns ~repeats name mk domains in
            Printf.printf "%-8s %-8d %-8d %-8d %-10d %-9d %-10.3f %-10.0f\n" r.scheme
              r.domains r.commits r.aborts r.deadlocks r.restarts r.wall_ms r.txn_s;
            r)
          domain_sweep)
      schemes
  in
  let top = List.fold_left max 1 domain_sweep in
  let at name =
    List.find (fun r -> r.scheme = name && r.domains = top) rows
  in
  let rw = at "rw-msg" and tav = at "tav" in
  let ratio = tav.txn_s /. rw.txn_s in
  Printf.printf "\nheadline (%d domains): tav %.0f txn/s vs rw-msg %.0f txn/s = %.1fx\n" top
    tav.txn_s rw.txn_s ratio;
  let oc = open_out "BENCH_par.json" in
  output_string oc "{\n  \"bench\": \"par/throughput\",\n";
  Printf.fprintf oc
    "  \"txns\": %d,\n  \"actions_per_txn\": %d,\n  \"slices\": %d,\n  \"work\": %d,\n\
    \  \"instances\": %d,\n  \"hot\": %d,\n  \"shards\": %d,\n  \"repeats\": %d,\n\
    \  \"seed\": %d,\n  \"quick\": %b,\n  \"threshold_x\": %.1f,\n"
    txns actions_per_txn slices work instances hot shards repeats seed quick threshold_x;
  output_string oc "  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n  ],\n";
  Printf.fprintf oc
    "  \"headline\": {\"domains\": %d, \"rw_txn_s\": %.0f, \"tav_txn_s\": %.0f, \
     \"tav_x_rw\": %.2f}\n}\n"
    top rw.txn_s tav.txn_s ratio;
  close_out oc;
  Printf.printf "wrote BENCH_par.json (%d rows)\n" (List.length rows);
  if ratio < threshold_x then begin
    Printf.printf "FAIL: tav only %.2fx rw-msg (gate %.1fx)\n" ratio threshold_x;
    exit 1
  end;
  print_string
    "shape check: the slices are pairwise disjoint, so TAV's commuting\n\
     field modes admit every interleaving the domains can produce, while\n\
     instance-granularity writers queue on the hot set and pay deadlock\n\
     restarts — the gap is the work the finer modes refuse to serialise.\n"
