(* obs/overhead — cost of the observability layer.

   Replays the locking/detect workload (seeded random acquire/commit/
   restart cycles driven straight at the lock table, deadlocks resolved
   through the incremental detector) in two builds of the same table:

   - base:    [Lock_table.create] without a registry — the production
              default, where every instrument is behind one [None] branch
              (the "null sink" path);
   - metrics: the same table with a live [Metrics.t] — every wait, queue
              depth and cycle length recorded.

   The gap between the two bounds the cost of the disabled path from
   above: recording live is strictly more work than skipping on [None],
   so if live instrumentation stays within the budget the null path does
   too.  Each configuration takes the minimum of [repeats] runs to shed
   scheduler noise.  A full-engine comparison (null sink + no registry vs
   ring sink + registry) is reported for context.  Results go to stdout
   and BENCH_obs.json; the run fails if the lock-table overhead exceeds
   [threshold_pct]. *)

open Tavcc_lock
module Rng = Tavcc_sim.Rng
module Metrics = Tavcc_obs.Metrics
module Sink = Tavcc_obs.Sink

let ops_per_txn = 6
let quick = Array.exists (( = ) "--quick") Sys.argv
let steps_per_config = if quick then 20_000 else 100_000
let repeats = if quick then 3 else 7
let threshold_pct = 5.0

let rw_conflict (held : Lock_table.req) (req : Lock_table.req) =
  not (Compat.compatible Compat.rw held.Lock_table.r_mode req.Lock_table.r_mode)

let req txn res mode =
  { Lock_table.r_txn = txn; r_res = res; r_mode = mode; r_hier = false; r_pred = None }

let now () = Unix.gettimeofday ()

(* One full workload against [t]; [step] is the clock the instrumented
   variant hands to the table. *)
let drive ~seed ~txns ~resources ~step t =
  let rng = Rng.create seed in
  let blocked = Array.make (txns + 1) false in
  let ops = Array.make (txns + 1) 0 in
  let commits = ref 0 in
  let wake newly =
    List.iter (fun (r : Lock_table.req) -> blocked.(r.Lock_table.r_txn) <- false) newly
  in
  let restart txn =
    wake (Lock_table.release_all t txn);
    blocked.(txn) <- false;
    ops.(txn) <- 0
  in
  for _ = 1 to steps_per_config do
    incr step;
    let runnable = ref [] in
    for i = 1 to txns do
      if not blocked.(i) then runnable := i :: !runnable
    done;
    match !runnable with
    | [] -> restart 1
    | l -> (
        let txn = Rng.pick rng l in
        let res = Resource.Instance (Tavcc_model.Oid.of_int (Rng.int rng resources)) in
        let mode = if Rng.chance rng 0.7 then Compat.read else Compat.write in
        match Lock_table.acquire t (req txn res mode) with
        | Lock_table.Granted ->
            ops.(txn) <- ops.(txn) + 1;
            if ops.(txn) >= ops_per_txn then begin
              incr commits;
              restart txn
            end
        | Lock_table.Waiting ->
            blocked.(txn) <- true;
            let rec resolve = function
              | None -> ()
              | Some cycle ->
                  restart (List.fold_left max min_int cycle);
                  resolve (Lock_table.find_deadlock ~from:txn t)
            in
            resolve (Lock_table.find_deadlock ~from:txn t))
  done;
  !commits

let min_time f =
  let best = ref infinity and out = ref 0 in
  for _ = 1 to repeats do
    let t0 = now () in
    out := f ();
    let dt = now () -. t0 in
    if dt < !best then best := dt
  done;
  (!best *. 1e3, !out)

(* Paired variant for the multicore rows: base and instrumented samples
   alternate within one loop, so frequency drift and background load hit
   both sides equally before the minima are compared. *)
let min_time2 f g =
  let bf = ref infinity and bg = ref infinity and out_f = ref 0 and out_g = ref 0 in
  for _ = 1 to repeats do
    let t0 = now () in
    out_f := f ();
    let dt = now () -. t0 in
    if dt < !bf then bf := dt;
    let t0 = now () in
    out_g := g ();
    let dt = now () -. t0 in
    if dt < !bg then bg := dt
  done;
  ((!bf *. 1e3, !out_f), (!bg *. 1e3, !out_g))

type row = {
  txns : int;
  resources : int;
  commits : int;
  base_ms : float;
  metrics_ms : float;
  overhead_pct : float;
}

let run_config ~seed ~txns ~resources =
  let base_ms, commits =
    min_time (fun () ->
        let step = ref 0 in
        drive ~seed ~txns ~resources ~step (Lock_table.create ~conflict:rw_conflict ()))
  in
  let metrics_ms, commits' =
    min_time (fun () ->
        let step = ref 0 in
        let m = Metrics.create () in
        let t =
          Lock_table.create ~metrics:m ~clock:(fun () -> !step) ~conflict:rw_conflict ()
        in
        drive ~seed ~txns ~resources ~step t)
  in
  assert (commits = commits');
  let overhead_pct = (metrics_ms -. base_ms) /. base_ms *. 100.0 in
  { txns; resources; commits; base_ms; metrics_ms; overhead_pct }

(* Multicore stack: the slice workload through [Par_engine], everything
   off vs the full observability path — live registry, per-domain event
   rings, contention profiler.  This is the instrumentation the issue
   gates at <= threshold: every lock wait and transaction transition goes
   through a ring push on the hot path. *)
let par_txns = if quick then 400 else 1500

(* Setup (schema analysis, store, registry, ring allocation) happens once
   per configuration, outside the timed region: the gate is on the
   per-operation cost, not on allocating three rings.  The rings are kept
   small (4096): capacity beyond the drain backlog only adds major-heap
   scan work, which on a single core counts against the workload. *)
let par_runner ~domains ~instrumented =
  let open Tavcc_sim in
  let schema = Workload.slice_schema ~readers:0 ~methods:16 ~work:8 () in
  let an = Tavcc_core.Analysis.compile schema in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let config =
    {
      Tavcc_par.Par_engine.default_config with
      domains;
      metrics = (if instrumented then Some (Metrics.create ()) else None);
      obs =
        (if instrumented then
           Some (Tavcc_par.Par_obs.create ~ring_cap:4096 ~keep_events:false ~domains ())
         else None);
    }
  in
  fun () ->
    let store = Tavcc_model.Store.create schema in
    Workload.populate store ~per_class:4;
    let jobs =
      Workload.slice_jobs (Rng.create 43) store ~txns:par_txns ~actions_per_txn:4
        ~hot_instances:2
    in
    let r = Tavcc_par.Par_engine.run ~config ~scheme ~store ~jobs () in
    r.Tavcc_par.Par_engine.commits

(* Full stack for context: same engine workload with everything off vs a
   ring sink plus a live registry. *)
let engine_run instrumented =
  let open Tavcc_sim in
  let schema = Workload.chain_schema ~levels:3 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Tavcc_model.Store.create schema in
  let oid =
    Tavcc_model.Store.new_instance store (Tavcc_model.Name.Class.of_string "chain")
  in
  let jobs =
    List.init 8 (fun i ->
        ( i + 1,
          [ Tavcc_cc.Exec.Call
              (oid, Tavcc_model.Name.Method.of_string "m3", [ Tavcc_model.Value.Vint 1 ]) ] ))
  in
  let config =
    { Engine.default_config with
      yield_on_access = true;
      max_restarts = 10_000;
      sink = (if instrumented then Sink.ring 4096 else Sink.null);
      metrics = (if instrumented then Some (Metrics.create ()) else None) }
  in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs () in
  r.Engine.commits

let json_of_row r =
  Printf.sprintf
    "    {\"txns\": %d, \"resources\": %d, \"commits\": %d, \"base_ms\": %.3f, \
     \"metrics_ms\": %.3f, \"overhead_pct\": %.2f}"
    r.txns r.resources r.commits r.base_ms r.metrics_ms r.overhead_pct

let () =
  let seed = 42 in
  Printf.printf "obs/overhead — lock-table workload, registry off vs live\n";
  Printf.printf "(%d steps per config, %d ops per txn, min of %d repeats, seed %d)\n\n"
    steps_per_config ops_per_txn repeats seed;
  Printf.printf "%-6s %-10s %-8s %-10s %-12s %-10s\n" "txns" "resources" "commits"
    "base-ms" "metrics-ms" "overhead%";
  let rows =
    List.map
      (fun (txns, resources) ->
        let r = run_config ~seed ~txns ~resources in
        Printf.printf "%-6d %-10d %-8d %-10.3f %-12.3f %-10.2f\n" r.txns r.resources
          r.commits r.base_ms r.metrics_ms r.overhead_pct;
        r)
      [ (16, 4); (32, 8); (64, 16) ]
  in
  let par_rows =
    List.map
      (fun domains ->
        let (base_ms, commits), (obs_ms, commits') =
          min_time2
            (par_runner ~domains ~instrumented:false)
            (par_runner ~domains ~instrumented:true)
        in
        assert (commits = commits');
        let pct = (obs_ms -. base_ms) /. base_ms *. 100.0 in
        Printf.printf
          "par %d domains (registry + rings + profiler vs all off): %.3f ms vs %.3f ms \
           (%+.2f%%)\n"
          domains obs_ms base_ms pct;
        (domains, commits, base_ms, obs_ms, pct))
      [ 2; 4 ]
  in
  let eng_base_ms, _ = min_time (fun () -> engine_run false) in
  let eng_live_ms, _ = min_time (fun () -> engine_run true) in
  let eng_pct = (eng_live_ms -. eng_base_ms) /. eng_base_ms *. 100.0 in
  Printf.printf "\nengine (8 txns, ring sink + registry vs all off): %.3f ms vs %.3f ms (%+.2f%%)\n"
    eng_live_ms eng_base_ms eng_pct;
  Printf.printf
    "  (context only, not gated: a sub-millisecond micro-run whose event ring records\n\
    \   every scheduler step — fixed setup dominates, so the percentage is meaningless;\n\
    \   the gated rows above isolate the per-operation cost on realistic workloads)\n";
  let max_pct = List.fold_left (fun acc r -> Float.max acc r.overhead_pct) neg_infinity rows in
  let max_par_pct =
    List.fold_left (fun acc (_, _, _, _, pct) -> Float.max acc pct) neg_infinity par_rows
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc "{\n  \"bench\": \"obs/overhead\",\n";
  Printf.fprintf oc
    "  \"steps_per_config\": %d,\n  \"ops_per_txn\": %d,\n  \"repeats\": %d,\n  \"seed\": %d,\n"
    steps_per_config ops_per_txn repeats seed;
  Printf.fprintf oc "  \"threshold_pct\": %.1f,\n" threshold_pct;
  output_string oc "  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n  ],\n";
  output_string oc "  \"par_rows\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (domains, commits, base_ms, obs_ms, pct) ->
            Printf.sprintf
              "    {\"domains\": %d, \"commits\": %d, \"base_ms\": %.3f, \"obs_ms\": %.3f, \
               \"overhead_pct\": %.2f}"
              domains commits base_ms obs_ms pct)
          par_rows));
  output_string oc "\n  ],\n";
  Printf.fprintf oc
    "  \"engine\": {\"base_ms\": %.3f, \"instrumented_ms\": %.3f, \"overhead_pct\": %.2f, \
     \"gated\": false, \"note\": \"sub-ms micro-run, setup-dominated; context only — see \
     the gated rows/par_rows for the per-operation cost\"},\n"
    eng_base_ms eng_live_ms eng_pct;
  Printf.fprintf oc "  \"max_overhead_pct\": %.2f,\n" max_pct;
  Printf.fprintf oc "  \"max_par_overhead_pct\": %.2f\n}\n" max_par_pct;
  close_out oc;
  Printf.printf "wrote BENCH_obs.json (%d rows + %d par rows, max overhead %.2f%% / par %.2f%%)\n"
    (List.length rows) (List.length par_rows) max_pct max_par_pct;
  if max_pct > threshold_pct then begin
    Printf.printf "FAIL: live instrumentation above %.1f%% — the null path cannot be cheaper\n"
      threshold_pct;
    exit 1
  end;
  if max_par_pct > threshold_pct then begin
    Printf.printf
      "FAIL: multicore instrumentation (rings + profiler) above %.1f%% of the \
       uninstrumented run\n"
      threshold_pct;
    exit 1
  end;
  print_string
    "shape check: metric recording only happens on enqueue, drain and\n\
     cycle detection — never on an immediate grant — so the live delta is\n\
     an upper bound on what the disabled (null) path costs.\n"
