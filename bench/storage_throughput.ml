(* storage/throughput — the on-disk engine vs the in-memory store on a
   data-larger-than-RAM TAV workload.

   Runs the same seeded random workload (slice schema, TAV field modes,
   cooperative sim engine) twice: once over the plain in-memory
   [Store.create] store, once over a [Tavcc_storage.Engine] store whose
   buffer pool is sized to roughly 10% of the data pages, so most
   accesses miss the pool and go through eviction/write-back.  The disk
   run journals through the [hk_observe] -> [Engine.observe] adapter
   ([self_journal = false]), exactly how `oosim run --data-dir` wires it.

   Gates (full and quick mode alike):
   - the working set genuinely exceeds the pool (data_pages > pool_pages
     and evictions > 0) — otherwise the "disk" row is a cache benchmark;
   - disk throughput stays within [threshold_x] (5x) of the in-memory
     run: the pool + row cache must absorb the IO path, not serialise
     every access through a page read.

   Results go to stdout and BENCH_storage.json; [--quick] shrinks the
   workload for CI smoke and regression runs. *)

module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module Engine = Tavcc_sim.Engine
module Store = Tavcc_model.Store
module Storage = Tavcc_storage.Engine

let methods = 8
let work = 4
let actions_per_txn = 4
let seed = 42
let page_size = 512
let pool_frac = 0.10
let threshold_x = 5.0

type row = {
  backend : string;
  txns : int;
  commits : int;
  aborts : int;
  deadlocks : int;
  wall_ms : float;
  txn_s : float;
  data_pages : int;
  pool_pages : int;
  evictions : int;
  pool_hit_rate : float;
}

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let read_frac = 0.5

let jobs_for rng store ~txns ~instances =
  (* the "hot set" is the whole store: uniform access over a working set
     ~10x the pool, so reads and writes alike churn the clock hand *)
  Workload.mixed_slice_jobs rng store ~txns ~actions_per_txn ~hot_instances:instances
    ~read_frac

let check r name ~txns =
  if r.Engine.failed <> [] then begin
    List.iter
      (fun (id, msg) -> Printf.printf "txn %d FAILED under %s: %s\n" id name msg)
      r.Engine.failed;
    exit 1
  end;
  if r.Engine.commits <> txns then begin
    Printf.printf "FAIL: %s committed %d of %d txns\n" name r.Engine.commits txns;
    exit 1
  end

(* Best of [repeats]; each repeat rebuilds the store from scratch so the
   two backends start from identical images. *)
let run_mem ~schema ~an ~instances ~txns ~repeats =
  let best = ref infinity and last = ref None in
  for _ = 1 to repeats do
    let store = Store.create schema in
    Workload.populate store ~per_class:instances;
    let jobs = jobs_for (Rng.create (seed + 1)) store ~txns ~instances in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
    let wall = Unix.gettimeofday () -. t0 in
    check r "mem" ~txns;
    if wall < !best then begin
      best := wall;
      last := Some r
    end
  done;
  let r = Option.get !last in
  {
    backend = "mem";
    txns;
    commits = r.Engine.commits;
    aborts = r.Engine.aborts;
    deadlocks = r.Engine.deadlocks;
    wall_ms = !best *. 1e3;
    txn_s = float_of_int txns /. !best;
    data_pages = 0;
    pool_pages = 0;
    evictions = 0;
    pool_hit_rate = 1.0;
  }

let run_disk ~schema ~an ~instances ~txns ~repeats =
  let dir = "_bench_storage" in
  let best = ref infinity and last = ref None in
  for _ = 1 to repeats do
    rm_rf dir;
    (* Populate with a generous pool to measure the footprint, then
       reopen with the pool squeezed to ~10% of the data pages. *)
    let big = { (Storage.default_config ~dir) with page_size; pool_pages = 4096 } in
    let eng0 = Storage.create big in
    let store0 = Storage.store eng0 schema in
    Workload.populate store0 ~per_class:instances;
    let data_pages = (Storage.stats eng0).Storage.s_data_pages in
    Storage.close eng0;
    let pool_pages =
      max 4 (int_of_float (Float.round (float_of_int data_pages *. pool_frac)))
    in
    let eng =
      Storage.create { big with pool_pages; self_journal = false }
    in
    let store = Storage.store eng schema in
    let jobs = jobs_for (Rng.create (seed + 1)) store ~txns ~instances in
    let config =
      {
        Engine.default_config with
        hooks = { Engine.no_hooks with Engine.hk_observe = Some (Storage.observe eng) };
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
    let wall = Unix.gettimeofday () -. t0 in
    check r "disk" ~txns;
    let st = Storage.stats eng in
    Storage.close eng;
    if wall < !best then begin
      best := wall;
      last := Some (r, st)
    end
  done;
  let r, st = Option.get !last in
  let p = st.Storage.s_pool in
  let touches = p.Tavcc_storage.Buffer_pool.hits + p.Tavcc_storage.Buffer_pool.misses in
  {
    backend = "disk";
    txns;
    commits = r.Engine.commits;
    aborts = r.Engine.aborts;
    deadlocks = r.Engine.deadlocks;
    wall_ms = !best *. 1e3;
    txn_s = float_of_int txns /. !best;
    data_pages = st.Storage.s_data_pages;
    pool_pages = st.Storage.s_pool_pages;
    evictions = p.Tavcc_storage.Buffer_pool.evictions;
    pool_hit_rate =
      (if touches = 0 then 1.0
       else float_of_int p.Tavcc_storage.Buffer_pool.hits /. float_of_int touches);
  }

let json_of_row r =
  Printf.sprintf
    "    {\"backend\": \"%s\", \"txns\": %d, \"commits\": %d, \"aborts\": %d, \
     \"deadlocks\": %d, \"wall_ms\": %.3f, \"txn_s\": %.0f, \"data_pages\": %d, \
     \"pool_pages\": %d, \"evictions\": %d, \"pool_hit_rate\": %.3f}"
    r.backend r.txns r.commits r.aborts r.deadlocks r.wall_ms r.txn_s r.data_pages
    r.pool_pages r.evictions r.pool_hit_rate

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let instances = if quick then 256 else 1024 in
  let txns = if quick then 600 else 2000 in
  let repeats = if quick then 2 else 3 in
  let schema = Workload.slice_schema ~readers:methods ~methods ~work () in
  let an = Tavcc_core.Analysis.compile schema in
  Printf.printf "storage/throughput — on-disk slotted pages vs the in-memory store\n";
  Printf.printf
    "(%d txns x %d actions over %d instances, %d-byte pages, pool ~%.0f%% of data, \
     best of %d, seed %d%s)\n\n"
    txns actions_per_txn instances page_size (pool_frac *. 100.) repeats seed
    (if quick then ", quick" else "");
  Printf.printf "%-8s %-8s %-8s %-8s %-10s %-10s %-11s %-11s %-10s %-9s\n" "backend"
    "commits" "aborts" "dlocks" "wall-ms" "txn/s" "data-pages" "pool-pages" "evictions"
    "hit-rate";
  let pr r =
    Printf.printf "%-8s %-8d %-8d %-8d %-10.3f %-10.0f %-11d %-11d %-10d %-9.3f\n"
      r.backend r.commits r.aborts r.deadlocks r.wall_ms r.txn_s r.data_pages
      r.pool_pages r.evictions r.pool_hit_rate
  in
  let mem = run_mem ~schema ~an ~instances ~txns ~repeats in
  pr mem;
  let disk = run_disk ~schema ~an ~instances ~txns ~repeats in
  pr disk;
  let slowdown = disk.wall_ms /. mem.wall_ms in
  Printf.printf
    "\nheadline: disk %.0f txn/s vs mem %.0f txn/s = %.2fx slowdown (gate %.1fx); %d \
     data pages through a %d-frame pool (%d evictions)\n"
    disk.txn_s mem.txn_s slowdown threshold_x disk.data_pages disk.pool_pages
    disk.evictions;
  let oc = open_out "BENCH_storage.json" in
  output_string oc "{\n  \"bench\": \"storage/throughput\",\n";
  Printf.fprintf oc
    "  \"txns\": %d,\n  \"actions_per_txn\": %d,\n  \"instances\": %d,\n\
    \  \"methods\": %d,\n  \"work\": %d,\n  \"page_size\": %d,\n\
    \  \"pool_frac\": %.2f,\n  \"repeats\": %d,\n  \"seed\": %d,\n  \"quick\": %b,\n\
    \  \"threshold_x\": %.1f,\n"
    txns actions_per_txn instances methods work page_size pool_frac repeats seed quick
    threshold_x;
  output_string oc "  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_row [ mem; disk ]));
  output_string oc "\n  ],\n";
  Printf.fprintf oc
    "  \"headline\": {\"mem_txn_s\": %.0f, \"disk_txn_s\": %.0f, \"slowdown_x\": %.2f, \
     \"data_pages\": %d, \"pool_pages\": %d, \"evictions\": %d, \"pool_hit_rate\": %.3f}\n\
     }\n"
    mem.txn_s disk.txn_s slowdown disk.data_pages disk.pool_pages disk.evictions
    disk.pool_hit_rate;
  close_out oc;
  Printf.printf "wrote BENCH_storage.json (2 rows)\n";
  if disk.data_pages <= disk.pool_pages || disk.evictions = 0 then begin
    Printf.printf
      "FAIL: working set fits the pool (%d data pages, %d frames, %d evictions) — not \
       a larger-than-RAM run\n"
      disk.data_pages disk.pool_pages disk.evictions;
    exit 1
  end;
  if slowdown > threshold_x then begin
    Printf.printf "FAIL: disk is %.2fx slower than mem (gate %.1fx)\n" slowdown
      threshold_x;
    exit 1
  end;
  print_string
    "shape check: the disk run pays a WAL append per write and a page\n\
     read per pool miss; with the pool at ~10% of the data the clock\n\
     hand turns constantly, yet the row cache and buffered IO keep the\n\
     slowdown within single digits of the in-memory store.\n"
