(* locking/detect — the lock-manager deadlock-detection bench.

   Sweeps transaction count × contention (fewer resources = hotter) over a
   seeded workload driven straight at the lock table: each live
   transaction acquires random locks until it has performed [ops_per_txn]
   granted operations, then commits (release_all) and restarts.  On every
   blocked request BOTH detectors run on the identical table state:

   - rebuild:     [Lock_table.find_deadlock_rebuild] — rebuilds the whole
                  waits-for edge list by scanning the table, then searches
                  from every node (the pre-incremental behaviour);
   - incremental: [Lock_table.find_deadlock ~from] — DFS from the newly
                  blocked transaction over the incrementally maintained
                  adjacency.

   The incremental verdict drives execution (victim = youngest in the
   cycle, aborted and restarted), so the two are timed on exactly the same
   sequence of graph states, and any existence disagreement is counted as
   a mismatch (must be 0).  Results go to stdout and BENCH_lock.json —
   the artefact behind the E4/E11 rows of EXPERIMENTS.md. *)

open Tavcc_lock
module Rng = Tavcc_sim.Rng

let ops_per_txn = 6
let quick = Array.exists (( = ) "--quick") Sys.argv
let steps_per_config = if quick then 5_000 else 20_000

let rw_conflict (held : Lock_table.req) (req : Lock_table.req) =
  not (Compat.compatible Compat.rw held.Lock_table.r_mode req.Lock_table.r_mode)

let req txn res mode =
  { Lock_table.r_txn = txn; r_res = res; r_mode = mode; r_hier = false; r_pred = None }

let now () = Unix.gettimeofday ()

type row = {
  txns : int;
  resources : int;
  blocks : int;
  deadlocks : int;
  commits : int;
  mismatches : int;
  rebuild_ms : float;
  incremental_ms : float;
}

let run_config ~seed ~txns ~resources =
  let rng = Rng.create seed in
  let t = Lock_table.create ~conflict:rw_conflict () in
  let blocked = Array.make (txns + 1) false in
  let ops = Array.make (txns + 1) 0 in
  let blocks = ref 0 and deadlocks = ref 0 and commits = ref 0 and mismatches = ref 0 in
  let t_rebuild = ref 0.0 and t_inc = ref 0.0 in
  let wake newly =
    List.iter (fun (r : Lock_table.req) -> blocked.(r.Lock_table.r_txn) <- false) newly
  in
  let restart txn =
    wake (Lock_table.release_all t txn);
    blocked.(txn) <- false;
    ops.(txn) <- 0
  in
  for _ = 1 to steps_per_config do
    let runnable = ref [] in
    for i = 1 to txns do
      if not blocked.(i) then runnable := i :: !runnable
    done;
    match !runnable with
    | [] ->
        (* Every transaction is parked behind compatible waiters with no
           cycle (possible under strict FIFO): time out the lowest id. *)
        restart 1
    | l -> (
        let txn = Rng.pick rng l in
        let res = Resource.Instance (Tavcc_model.Oid.of_int (Rng.int rng resources)) in
        let mode = if Rng.chance rng 0.7 then Compat.read else Compat.write in
        match Lock_table.acquire t (req txn res mode) with
        | Lock_table.Granted ->
            ops.(txn) <- ops.(txn) + 1;
            if ops.(txn) >= ops_per_txn then begin
              incr commits;
              restart txn
            end
        | Lock_table.Waiting ->
            incr blocks;
            blocked.(txn) <- true;
            (* Both detectors on the identical state; the baseline first. *)
            let t0 = now () in
            let reb = Lock_table.find_deadlock_rebuild t in
            let t1 = now () in
            let inc = Lock_table.find_deadlock ~from:txn t in
            let t2 = now () in
            t_rebuild := !t_rebuild +. (t1 -. t0);
            t_inc := !t_inc +. (t2 -. t1);
            if (reb <> None) <> (inc <> None) then incr mismatches;
            (* Resolve every cycle through the blocked node, as the engine
               does. *)
            let rec resolve = function
              | None -> ()
              | Some cycle ->
                  incr deadlocks;
                  let victim = List.fold_left max min_int cycle in
                  restart victim;
                  resolve (Lock_table.find_deadlock ~from:txn t)
            in
            resolve inc)
  done;
  {
    txns;
    resources;
    blocks = !blocks;
    deadlocks = !deadlocks;
    commits = !commits;
    mismatches = !mismatches;
    rebuild_ms = !t_rebuild *. 1e3;
    incremental_ms = !t_inc *. 1e3;
  }

let json_of_row r =
  Printf.sprintf
    "    {\"txns\": %d, \"resources\": %d, \"blocks\": %d, \"deadlocks\": %d, \
     \"commits\": %d, \"mismatches\": %d, \"rebuild_ms\": %.3f, \
     \"incremental_ms\": %.3f, \"speedup\": %.1f}"
    r.txns r.resources r.blocks r.deadlocks r.commits r.mismatches r.rebuild_ms
    r.incremental_ms
    (r.rebuild_ms /. r.incremental_ms)

let () =
  let seed = 42 in
  Printf.printf "locking/detect — rebuild-per-block vs incremental deadlock detection\n";
  Printf.printf "(%d scheduler steps per config, %d ops per transaction, seed %d)\n\n"
    steps_per_config ops_per_txn seed;
  Printf.printf "%-6s %-10s %-8s %-10s %-8s %-12s %-14s %-8s\n" "txns" "resources" "blocks"
    "deadlocks" "commits" "rebuild-ms" "incremental-ms" "speedup";
  let rows =
    List.concat_map
      (fun txns ->
        List.filter_map
          (fun resources ->
            if resources > 2 * txns then None
            else begin
              let r = run_config ~seed ~txns ~resources in
              Printf.printf "%-6d %-10d %-8d %-10d %-8d %-12.3f %-14.3f %-8.1f%s\n" r.txns
                r.resources r.blocks r.deadlocks r.commits r.rebuild_ms r.incremental_ms
                (r.rebuild_ms /. r.incremental_ms)
                (if r.mismatches > 0 then
                   Printf.sprintf "  MISMATCHES=%d" r.mismatches
                 else "");
              Some r
            end)
          [ 2; 8; 32 ])
      [ 8; 16; 32; 64 ]
  in
  let oc = open_out "BENCH_lock.json" in
  output_string oc "{\n  \"bench\": \"locking/detect\",\n";
  Printf.fprintf oc "  \"steps_per_config\": %d,\n  \"ops_per_txn\": %d,\n  \"seed\": %d,\n"
    steps_per_config ops_per_txn seed;
  output_string oc "  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  let bad = List.filter (fun r -> r.mismatches > 0) rows in
  let slow =
    List.filter (fun r -> r.txns >= 32 && r.incremental_ms >= r.rebuild_ms) rows
  in
  Printf.printf "\nwrote BENCH_lock.json (%d rows)\n" (List.length rows);
  if bad <> [] then begin
    Printf.printf "FAIL: detector disagreement\n";
    exit 1
  end;
  if slow <> [] then begin
    Printf.printf "FAIL: incremental not faster at >=32 txns\n";
    exit 1
  end;
  print_string
    "shape check: the rebuild cost grows with every queued request in the\n\
     table while the incremental DFS touches only edges reachable from the\n\
     blocked transaction — the gap widens with transaction count and\n\
     contention, which is the regime of E4/E11.\n"
