(* net/throughput — the network front-end end to end.

   Starts an in-process [Server] on a unix socket serving the contended
   slice workload, then drives it with [Blast]'s closed-loop clients
   (each its own domain, each pipelining [Run] jobs over its own
   connection), sweeping the worker-domain count for instance-granularity
   r/w locking vs the paper's TAV field modes.  Unlike par/throughput
   this path pays the full service bill per transaction: framing,
   checksums, socket hops, admission control and the reply fan-in — so
   the TAV/rw gap here is the one a client actually observes.

   The headline figure is the TAV / rw-msg committed-throughput ratio at
   the widest domain count, gated at >= [threshold_x] (E19 in
   EXPERIMENTS.md; the gate is looser than par/throughput's because the
   wire overhead is scheme-independent and dilutes the ratio).

   Results go to stdout and BENCH_net.json.  [--quick] shrinks the load
   for CI smoke and regression runs (recorded in the JSON so the
   regression script normalises wall time per request). *)

module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module Store = Tavcc_model.Store
module Par_engine = Tavcc_par.Par_engine
module Wire = Tavcc_net.Wire
module Server = Tavcc_net.Server
module Blast = Tavcc_net.Blast

let slices = 96
let work = 64
let actions_per_txn = 4
let instances = 4
let hot = 4
let shards = 8
let clients = 4
let pipeline = 16
let seed = 42

(* The full-mode gate.  Quick mode (CI smoke) only checks that TAV is
   not LOSING to rw-msg: on a starved or single-core runner the domains
   time-share, the parallel gap narrows toward scheduling noise, and a
   1.5x gate on a 240-request run false-fails; the committed full-mode
   baseline is where the >= 1.5x claim is enforced. *)
let threshold_x = 1.5
let quick_threshold_x = 1.0

let schemes =
  [ ("rw-msg", Tavcc_cc.Rw_instance.scheme); ("tav", Tavcc_cc.Tav_modes.scheme) ]

type row = {
  scheme : string;
  domains : int;
  requests : int;
  committed : int;
  restarts : int;
  aborted : int;
  rejected : int;
  failed : int;
  wall_ms : float;
  req_s : float;
  p50_us : int;
  p95_us : int;
  p99_us : int;
}

let sock_counter = ref 0

let run_config ~an ~schema ~requests ~repeats name mk domains =
  let reports = ref [] in
  for _ = 1 to repeats do
    let store = Store.create schema in
    Workload.populate store ~per_class:instances;
    (* populate is deterministic, so jobs generated against the server's
       store are byte-valid for the clients — exactly the digest contract
       the out-of-process blast leans on.  One global stream is dealt
       round-robin: [slice_jobs] walks the slices in order, so any set of
       concurrently in-flight requests (one per client per pipeline slot)
       carries pairwise-distinct slice methods — commuting under TAV,
       colliding on the hot instances under r/w.  Per-client streams
       would put every client on the same slice in lockstep and measure
       nothing but self-conflicts. *)
    let all =
      Array.of_list
        (List.map snd
           (Workload.slice_jobs (Rng.create (seed + 1)) store
              ~txns:(clients * requests) ~actions_per_txn ~hot_instances:hot))
    in
    let jobs i = Array.init requests (fun j -> all.((j * clients) + i)) in
    incr sock_counter;
    let path =
      Printf.sprintf "%s/tavcc-bench-%d-%d.sock" (Filename.get_temp_dir_name ())
        (Unix.getpid ()) !sock_counter
    in
    let addr = Wire.Unix_sock path in
    let cfg =
      {
        (Server.default_config ~addr ~scheme:(mk an) ~store) with
        Server.engine = { Par_engine.default_config with domains; shards };
        queue_capacity = 256;
      }
    in
    let srv = Server.start cfg in
    let report =
      Blast.run
        {
          Blast.addr;
          clients;
          requests;
          pipeline;
          digest = "";
          client_name = "bench";
          jobs;
        }
    in
    Server.request_stop srv;
    ignore (Server.wait srv);
    if Sys.file_exists path then Sys.remove path;
    if report.Blast.protocol_errors > 0 then begin
      Printf.printf "FAIL: %s/%d domains: %d protocol errors\n" name domains
        report.Blast.protocol_errors;
      exit 1
    end;
    let accounted =
      report.Blast.committed + report.Blast.aborted + report.Blast.rejected
      + report.Blast.failed
    in
    if accounted <> report.Blast.requests then begin
      Printf.printf "FAIL: %s/%d domains: %d of %d requests unaccounted for\n" name
        domains
        (report.Blast.requests - accounted)
        report.Blast.requests;
      exit 1
    end;
    reports := report :: !reports
  done;
  (* Aggregate over the repeats rather than keeping the best one: under
     contention the r/w scheme's wall time swings on how many deadlock
     pileups it hits, and a best-of ratio lets its one lucky run mask
     them.  Percentiles come from the median-throughput repeat. *)
  let rs = !reports in
  let isum f = List.fold_left (fun a r -> a + f r) 0 rs in
  let fsum f = List.fold_left (fun a r -> a +. f r) 0. rs in
  let wall_s = fsum (fun r -> r.Blast.wall_s) in
  let committed = isum (fun r -> r.Blast.committed) in
  let median =
    let sorted =
      List.sort (fun a b -> compare a.Blast.throughput b.Blast.throughput) rs
    in
    List.nth sorted (List.length sorted / 2)
  in
  {
    scheme = name;
    domains;
    requests = isum (fun r -> r.Blast.requests);
    committed;
    restarts = isum (fun r -> r.Blast.restarts);
    aborted = isum (fun r -> r.Blast.aborted);
    rejected = isum (fun r -> r.Blast.rejected);
    failed = isum (fun r -> r.Blast.failed);
    wall_ms = wall_s *. 1e3;
    req_s = (if wall_s > 0. then float_of_int committed /. wall_s else 0.);
    p50_us = median.Blast.lat_p50_us;
    p95_us = median.Blast.lat_p95_us;
    p99_us = median.Blast.lat_p99_us;
  }

let json_of_row r =
  Printf.sprintf
    "    {\"scheme\": \"%s\", \"domains\": %d, \"requests\": %d, \"committed\": %d, \
     \"restarts\": %d, \"aborted\": %d, \"rejected\": %d, \"failed\": %d, \"wall_ms\": %.3f, \"req_s\": \
     %.0f, \"p50_us\": %d, \"p95_us\": %d, \"p99_us\": %d}"
    r.scheme r.domains r.requests r.committed r.restarts r.aborted r.rejected r.failed
    r.wall_ms r.req_s r.p50_us r.p95_us r.p99_us

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let requests = if quick then 60 else 200 in
  let repeats = if quick then 3 else 4 in
  let domain_sweep = [ 1; 2; 4 ] in
  let schema = Workload.slice_schema ~methods:slices ~work () in
  let an = Tavcc_core.Analysis.compile schema in
  Printf.printf "net/throughput — serve + blast over a unix socket, rw-msg vs TAV\n";
  Printf.printf
    "(%d clients x %d reqs x %d actions, pipeline %d, %d slices x %d writes, hot %d of \
     %d, %d shards, sum of %d, seed %d%s)\n\n"
    clients requests actions_per_txn pipeline slices work hot instances shards repeats
    seed
    (if quick then ", quick" else "");
  Printf.printf "%-8s %-8s %-9s %-10s %-9s %-9s %-10s %-9s %-8s %-8s %-8s\n" "scheme" "domains"
    "requests" "committed" "restarts" "rejected" "wall-ms" "req/s" "p50-us" "p95-us"
    "p99-us";
  let rows =
    List.concat_map
      (fun (name, mk) ->
        List.map
          (fun domains ->
            let r = run_config ~an ~schema ~requests ~repeats name mk domains in
            Printf.printf "%-8s %-8d %-9d %-10d %-9d %-9d %-10.3f %-9.0f %-8d %-8d %-8d\n"
              r.scheme r.domains r.requests r.committed r.restarts r.rejected r.wall_ms
              r.req_s r.p50_us r.p95_us r.p99_us;
            r)
          domain_sweep)
      schemes
  in
  let top = List.fold_left max 1 domain_sweep in
  let at name = List.find (fun r -> r.scheme = name && r.domains = top) rows in
  let rw = at "rw-msg" and tav = at "tav" in
  let ratio = tav.req_s /. rw.req_s in
  Printf.printf "\nheadline (%d domains): tav %.0f req/s vs rw-msg %.0f req/s = %.1fx\n"
    top tav.req_s rw.req_s ratio;
  let oc = open_out "BENCH_net.json" in
  output_string oc "{\n  \"bench\": \"net/throughput\",\n";
  Printf.fprintf oc
    "  \"clients\": %d,\n  \"requests_per_client\": %d,\n  \"pipeline\": %d,\n\
    \  \"actions_per_txn\": %d,\n  \"slices\": %d,\n  \"work\": %d,\n\
    \  \"instances\": %d,\n  \"hot\": %d,\n  \"shards\": %d,\n  \"repeats\": %d,\n\
    \  \"seed\": %d,\n  \"quick\": %b,\n  \"threshold_x\": %.1f,\n"
    clients requests pipeline actions_per_txn slices work instances hot shards repeats
    seed quick threshold_x;
  output_string oc "  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n  ],\n";
  Printf.fprintf oc
    "  \"headline\": {\"domains\": %d, \"rw_req_s\": %.0f, \"tav_req_s\": %.0f, \
     \"tav_x_rw\": %.2f}\n}\n"
    top rw.req_s tav.req_s ratio;
  close_out oc;
  Printf.printf "wrote BENCH_net.json (%d rows)\n" (List.length rows);
  let gate = if quick then quick_threshold_x else threshold_x in
  if ratio < gate then begin
    Printf.printf "FAIL: tav only %.2fx rw-msg (gate %.1fx%s)\n" ratio gate
      (if quick then ", quick smoke" else "");
    exit 1
  end;
  print_string
    "shape check: the wire cost (framing, checksums, socket hops) is the\n\
     same for both schemes, so the remaining gap is pure concurrency\n\
     control — rw-msg serialises the hot set and burns deadlock\n\
     restarts while TAV's commuting field modes let the domains run.\n"
