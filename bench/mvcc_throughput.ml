(* mvcc/throughput — versioned snapshots on the mixed slice workload.

   Drives the sliced grid with a 50% read-only transaction mix through
   [Par_engine], sweeping the domain count under plain TAV field modes
   and the mvcc-tav scheme (writers lock, readers ride snapshots,
   contention-flagged objects validate optimistically).  Readers under
   plain 2PL queue behind the hot-set writers and feed reader/writer
   deadlock cycles; under mvcc-tav they take no locks at all.

   Gates (full and quick mode alike):
   - at the widest domain count mvcc-tav's snapshot transactions never
     abort (snapshot_aborts = 0 — a snapshot cannot deadlock, so every
     read-only transaction commits on its first attempt);
   - mixed-workload throughput at the widest count is at least
     [threshold_x] times the committed 4-domain rw-instance baseline
     from BENCH_par.json (the collapse ROADMAP item 3 starts from).

   Results go to stdout and BENCH_mvcc.json; [--quick] shrinks the
   workload for CI smoke and regression runs. *)

module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module Store = Tavcc_model.Store
module Par_engine = Tavcc_par.Par_engine

let slices = 16
let work = 8
let actions_per_txn = 4
let instances = 4
let hot = 4
let shards = 8
let seed = 42
let read_frac = 0.5
let threshold_x = 2.0

(* BENCH_par.json headline, 4 domains, rw-msg (module Rw_instance): the
   committed full-mode collapse baseline.  Higher than the ~4.8 k txn/s
   the ROADMAP item originally cited: FIFO-order deadlocks are now
   detected and killed (see Lock_table.entry_edges), so the collapse
   burns restarts instead of stalling. *)
let rw_baseline_txn_s = 5251.0

let schemes =
  [
    ("tav", Tavcc_cc.Tav_modes.scheme);
    ("mvcc-tav", fun an -> Tavcc_mvcc.Mvcc_tav.scheme an);
  ]

type row = {
  scheme : string;
  domains : int;
  commits : int;
  aborts : int;
  deadlocks : int;
  restarts : int;
  snapshot_commits : int;
  snapshot_aborts : int;
  occ_commits : int;
  occ_vfails : int;
  wall_ms : float;
  txn_s : float;
}

let run_config ~an ~schema ~txns ~repeats name mk domains =
  (* Best of [repeats], as in bench/par_throughput. *)
  let best = ref None in
  for _ = 1 to repeats do
    let store = Store.create schema in
    Workload.populate store ~per_class:instances;
    let jobs =
      Workload.mixed_slice_jobs (Rng.create (seed + 1)) store ~txns ~actions_per_txn
        ~hot_instances:hot ~read_frac
    in
    let config = { Par_engine.default_config with domains; shards } in
    let r = Par_engine.run ~config ~scheme:(mk an) ~store ~jobs () in
    if r.Par_engine.failed <> [] then begin
      List.iter
        (fun (id, msg) -> Printf.printf "txn %d FAILED under %s: %s\n" id name msg)
        r.Par_engine.failed;
      exit 1
    end;
    if r.Par_engine.commits <> txns then begin
      Printf.printf "FAIL: %s committed %d of %d txns\n" name r.Par_engine.commits txns;
      exit 1
    end;
    match !best with
    | Some b when b.Par_engine.throughput >= r.Par_engine.throughput -> ()
    | _ -> best := Some r
  done;
  let r = Option.get !best in
  {
    scheme = name;
    domains;
    commits = r.Par_engine.commits;
    aborts = r.Par_engine.aborts;
    deadlocks = r.Par_engine.deadlocks;
    restarts = r.Par_engine.restarts;
    snapshot_commits = r.Par_engine.snapshot_commits;
    snapshot_aborts = r.Par_engine.snapshot_aborts;
    occ_commits = r.Par_engine.occ_commits;
    occ_vfails = r.Par_engine.occ_validation_failures;
    wall_ms = r.Par_engine.wall_seconds *. 1e3;
    txn_s = r.Par_engine.throughput;
  }

let json_of_row r =
  Printf.sprintf
    "    {\"scheme\": \"%s\", \"domains\": %d, \"commits\": %d, \"aborts\": %d, \
     \"deadlocks\": %d, \"restarts\": %d, \"snapshot_commits\": %d, \
     \"snapshot_aborts\": %d, \"occ_commits\": %d, \"occ_validation_failures\": %d, \
     \"wall_ms\": %.3f, \"txn_s\": %.0f}"
    r.scheme r.domains r.commits r.aborts r.deadlocks r.restarts r.snapshot_commits
    r.snapshot_aborts r.occ_commits r.occ_vfails r.wall_ms r.txn_s

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  (* 150-txn quick runs were too short to gate: domain spin-up noise
     swamped the signal and the ratio swung from 1.6x to 3.3x run to
     run.  300 x 3 keeps quick under ~20 s and the gate stable. *)
  let txns = if quick then 300 else 600 in
  let repeats = 3 in
  let domain_sweep = [ 1; 2; 4 ] in
  let schema = Workload.slice_schema ~readers:slices ~methods:slices ~work () in
  let an = Tavcc_core.Analysis.compile schema in
  Printf.printf "mvcc/throughput — versioned snapshots vs plain TAV on a mixed workload\n";
  Printf.printf
    "(%d txns x %d actions, %.0f%% read-only, %d slices x %d ops, hot set %d of %d, %d \
     shards, best of %d, seed %d%s)\n\n"
    txns actions_per_txn (read_frac *. 100.) slices work hot instances shards repeats seed
    (if quick then ", quick" else "");
  Printf.printf "%-9s %-8s %-8s %-8s %-9s %-9s %-11s %-10s %-10s %-10s\n" "scheme" "domains"
    "commits" "aborts" "restarts" "snapshot" "snap-abort" "occ" "wall-ms" "txn/s";
  let rows =
    List.concat_map
      (fun (name, mk) ->
        List.map
          (fun domains ->
            let r = run_config ~an ~schema ~txns ~repeats name mk domains in
            Printf.printf "%-9s %-8d %-8d %-8d %-9d %-9d %-11d %-10d %-10.3f %-10.0f\n"
              r.scheme r.domains r.commits r.aborts r.restarts r.snapshot_commits
              r.snapshot_aborts r.occ_commits r.wall_ms r.txn_s;
            r)
          domain_sweep)
      schemes
  in
  let top = List.fold_left max 1 domain_sweep in
  let at name = List.find (fun r -> r.scheme = name && r.domains = top) rows in
  let mvcc = at "mvcc-tav" and tav = at "tav" in
  let ratio = mvcc.txn_s /. rw_baseline_txn_s in
  Printf.printf
    "\nheadline (%d domains): mvcc-tav %.0f txn/s (tav %.0f) vs rw-msg baseline %.0f \
     txn/s = %.1fx; snapshot aborts %d\n"
    top mvcc.txn_s tav.txn_s rw_baseline_txn_s ratio mvcc.snapshot_aborts;
  let oc = open_out "BENCH_mvcc.json" in
  output_string oc "{\n  \"bench\": \"mvcc/throughput\",\n";
  Printf.fprintf oc
    "  \"txns\": %d,\n  \"actions_per_txn\": %d,\n  \"read_frac\": %.2f,\n\
    \  \"slices\": %d,\n  \"work\": %d,\n  \"instances\": %d,\n  \"hot\": %d,\n\
    \  \"shards\": %d,\n  \"repeats\": %d,\n  \"seed\": %d,\n  \"quick\": %b,\n\
    \  \"threshold_x\": %.1f,\n  \"rw_baseline_txn_s\": %.0f,\n"
    txns actions_per_txn read_frac slices work instances hot shards repeats seed quick
    threshold_x rw_baseline_txn_s;
  output_string oc "  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n  ],\n";
  Printf.fprintf oc
    "  \"headline\": {\"domains\": %d, \"mvcc_txn_s\": %.0f, \"tav_txn_s\": %.0f, \
     \"mvcc_x_rw\": %.2f, \"snapshot_aborts\": %d}\n}\n"
    top mvcc.txn_s tav.txn_s ratio mvcc.snapshot_aborts;
  close_out oc;
  Printf.printf "wrote BENCH_mvcc.json (%d rows)\n" (List.length rows);
  if mvcc.snapshot_aborts <> 0 then begin
    Printf.printf "FAIL: %d snapshot transactions aborted (gate: 0)\n" mvcc.snapshot_aborts;
    exit 1
  end;
  if ratio < threshold_x then begin
    Printf.printf "FAIL: mvcc-tav only %.2fx the rw-msg baseline (gate %.1fx)\n" ratio
      threshold_x;
    exit 1
  end;
  print_string
    "shape check: read-only transactions resolve against version chains\n\
     and take no locks — they cannot deadlock and never restart — while\n\
     writers keep the same TAV field locks as plain tav; the gap over\n\
     the rw-instance baseline is the reader traffic removed from the\n\
     lock manager plus the field modes' admitted interleavings.\n"
