#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against committed baselines.

Workflow (the CI bench-regression job):

  1. the checkout carries the committed baselines (full-mode runs);
  2. the benches are re-run in --quick mode, overwriting the files in the
     working tree;
  3. this script diffs working tree vs `git show HEAD:<file>`.

Wall-clock fields are never compared raw — quick mode shrinks each
bench's workload, so every wall metric is first normalised by the work
unit recorded in the same JSON (scheduler steps, committed txns; the
analyze bench already reports batch-normalised per-call times).  A
normalised metric more than --threshold (default 25%) above its baseline
fails the job.  Machine-independent ratio gates (detector speedup,
lint/compile ratio, instrumentation overhead, the TAV-vs-rw headline)
are enforced by the benches themselves at generation time.

Baselines refresh: re-run the benches in full mode, commit the JSONs.
In CI the `bench-baseline-update` label skips this gate for PRs that
intentionally change a bench's performance envelope.
"""

import argparse
import json
import pathlib
import subprocess
import sys


def load_baseline(path, baseline_dir):
    """Return the baseline doc, or None when no baseline exists yet.

    A fresh branch adding a new bench has no committed baseline — that is
    the skip case, not an error.  A baseline that exists but does not
    parse IS an error (somebody committed a broken JSON) and gets a clear
    message instead of a traceback.
    """
    if baseline_dir:
        p = pathlib.Path(baseline_dir) / path.name
        if not p.exists():
            return None
        text = p.read_text()
    else:
        try:
            text = subprocess.run(
                ["git", "show", f"HEAD:{path.name}"],
                capture_output=True, text=True, check=True,
            ).stdout
        except subprocess.CalledProcessError:
            return None
        except FileNotFoundError:
            sys.exit(f"error: git not found; use --baseline-dir to point at "
                     f"baseline copies of {path.name}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as e:
        sys.exit(f"error: committed baseline for {path.name} is not valid JSON "
                 f"({e}); re-run the bench in full mode and commit the file")


def rows_by(doc, keys):
    return {tuple(r[k] for k in keys): r for r in doc["rows"]}


def metrics_for(doc):
    """Yield (row_key_fields, [(metric_name, extractor, abs_floor)]).

    abs_floor is an absolute delta (in the metric's own unit) below which
    a relative regression is timer noise, not a code change — micro-rows
    whose whole budget is a few microseconds swing far past 25% run to
    run without any source difference.
    """
    bench = doc.get("bench", "")
    if bench == "locking/detect":
        steps = lambda d: d["steps_per_config"]
        return ["txns", "resources"], [
            ("incremental_ms/step", lambda r, d: r["incremental_ms"] / steps(d), 1e-3),
        ]
    if bench == "obs/overhead":
        steps = lambda d: d["steps_per_config"]
        return ["txns", "resources"], [
            ("base_ms/step", lambda r, d: r["base_ms"] / steps(d), 1e-3),
            ("metrics_ms/step", lambda r, d: r["metrics_ms"] / steps(d), 1e-3),
        ]
    if bench == "analyze/wall-time":
        # compile_ms / lint_ms are already best-batch per-call times.
        return ["label"], [
            ("compile_ms", lambda r, d: r["compile_ms"], 0.25),
            ("lint_ms", lambda r, d: r["lint_ms"], 0.25),
        ]
    if bench == "par/throughput":
        return ["scheme", "domains"], [
            ("wall_ms/txn", lambda r, d: r["wall_ms"] / d["txns"], 0.02),
        ]
    if bench == "mvcc/throughput":
        return ["scheme", "domains"], [
            ("wall_ms/txn", lambda r, d: r["wall_ms"] / d["txns"], 0.02),
        ]
    if bench == "net/throughput":
        # End-to-end wall time per request (framing + socket + engine).
        # Rows record their own aggregate request count, so quick and
        # full runs normalise to the same unit; the floor is wide
        # because the closed-loop path is scheduling-sensitive.
        return ["scheme", "domains"], [
            ("wall_ms/req", lambda r, d: r["wall_ms"] / r["requests"], 0.10),
        ]
    if bench == "storage/throughput":
        # Per-txn wall time for each backend; the mem row doubles as the
        # sim-engine sanity baseline.  Floors are wide: the disk row's
        # budget includes buffered IO whose latency swings on shared
        # runners.
        return ["backend"], [
            ("wall_ms/txn", lambda r, d: r["wall_ms"] / d["txns"], 0.02),
        ]
    if bench == "sanitize/overhead":
        # Per-txn wall time is useless here: quick mode amortises the
        # fixed store setup over far fewer txns.  The probed/base ratio is
        # txn-count independent; the floor is wide because quick mode's 3
        # repeats leave several points of ratio noise.  The hard <=10%
        # recorder gate is enforced by the bench itself in full mode.
        return ["domains", "probe"], [
            ("probed/base ratio", lambda r, d: r["probed_ms"] / r["base_ms"], 0.15),
        ]
    return None, []


def compare(path, current, baseline, threshold):
    keys, metrics = metrics_for(current)
    failures = []
    if keys is None:
        print(f"{path.name}: unknown bench {current.get('bench')!r}, skipped")
        return failures
    base_rows = rows_by(baseline, keys)
    cur_rows = rows_by(current, keys)
    shared = [k for k in cur_rows if k in base_rows]
    missing = [k for k in base_rows if k not in cur_rows]
    if missing:
        print(f"{path.name}: {len(missing)} baseline row(s) not re-run: {missing}")
    for key in shared:
        # Rows a bench marks gated=false are its own declared outliers
        # (e.g. the output-bound SCC cluster) — informational only.
        if cur_rows[key].get("gated") is False:
            continue
        for name, f, floor in metrics:
            base = f(base_rows[key], baseline)
            cur = f(cur_rows[key], current)
            if base <= 0:
                continue
            delta = (cur - base) / base
            tag = "OK"
            if delta > threshold and cur - base > floor:
                tag = "FAIL"
                failures.append((path.name, key, name, base, cur, delta))
            print(
                f"  {tag:4} {dict(zip(keys, key))} {name}: "
                f"{base:.6f} -> {cur:.6f} ({delta:+.1%})"
            )
    # The par headline ratio is machine-independent: it must not fall
    # below the gate recorded in the baseline.
    if current.get("bench") == "par/throughput":
        gate = baseline.get("threshold_x", 2.0)
        ratio = current["headline"]["tav_x_rw"]
        ok = ratio >= gate
        print(f"  {'OK' if ok else 'FAIL':4} headline tav_x_rw: {ratio:.2f} (gate >= {gate})")
        if not ok:
            failures.append((path.name, ("headline",), "tav_x_rw", gate, ratio, 0.0))
    # The mvcc headline gates are likewise machine-independent: the
    # snapshot path must never abort, and the mixed-workload throughput
    # must clear the committed rw-instance collapse baseline.
    if current.get("bench") == "mvcc/throughput":
        gate = baseline.get("threshold_x", 2.0)
        head = current["headline"]
        ratio = head["mvcc_x_rw"]
        ok = ratio >= gate
        print(f"  {'OK' if ok else 'FAIL':4} headline mvcc_x_rw: {ratio:.2f} (gate >= {gate})")
        if not ok:
            failures.append((path.name, ("headline",), "mvcc_x_rw", gate, ratio, 0.0))
        snap_aborts = head.get("snapshot_aborts", 0)
        ok = snap_aborts == 0
        print(f"  {'OK' if ok else 'FAIL':4} headline snapshot_aborts: {snap_aborts} (gate 0)")
        if not ok:
            failures.append((path.name, ("headline",), "snapshot_aborts", 0, snap_aborts, 0.0))
    # The net headline compares TAV against rw-instance through the whole
    # wire path.  A quick (CI smoke) run only has to avoid losing to
    # rw-msg outright — on a starved runner the domain-parallel gap
    # narrows to scheduling noise; the full >= threshold_x claim is
    # enforced against full-mode runs (the committed baseline is one).
    # The storage headline is machine-independent: the disk engine must
    # stay within the committed slowdown factor of the in-memory store,
    # and the run must genuinely exceed the pool (the bench itself also
    # enforces both at generation time).
    if current.get("bench") == "storage/throughput":
        gate = baseline.get("threshold_x", 5.0)
        head = current["headline"]
        ratio = head["slowdown_x"]
        ok = ratio <= gate
        print(f"  {'OK' if ok else 'FAIL':4} headline slowdown_x: {ratio:.2f} (gate <= {gate})")
        if not ok:
            failures.append((path.name, ("headline",), "slowdown_x", gate, ratio, 0.0))
        larger = head["data_pages"] > head["pool_pages"] and head["evictions"] > 0
        print(f"  {'OK' if larger else 'FAIL':4} headline larger-than-pool: "
              f"{head['data_pages']} pages vs {head['pool_pages']} frames, "
              f"{head['evictions']} evictions")
        if not larger:
            failures.append((path.name, ("headline",), "larger_than_pool", 1, 0, 0.0))
    if current.get("bench") == "net/throughput":
        gate = 1.0 if current.get("quick") else baseline.get("threshold_x", 1.5)
        ratio = current["headline"]["tav_x_rw"]
        ok = ratio >= gate
        mode = "quick smoke" if current.get("quick") else "full"
        print(f"  {'OK' if ok else 'FAIL':4} headline tav_x_rw: {ratio:.2f} "
              f"(gate >= {gate}, {mode})")
        if not ok:
            failures.append((path.name, ("headline",), "tav_x_rw", gate, ratio, 0.0))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*", help="BENCH_*.json files (default: all in cwd)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional wall-time regression (default 0.25)")
    ap.add_argument("--baseline-dir", default=None,
                    help="read baselines from this directory instead of git HEAD")
    args = ap.parse_args()

    files = [pathlib.Path(f) for f in args.files] or sorted(
        pathlib.Path(".").glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 2

    failures = []
    for path in files:
        try:
            current = json.loads(path.read_text())
        except FileNotFoundError:
            sys.exit(f"error: {path} does not exist — run the bench first "
                     f"(dune exec bench/... -- --quick) to generate it")
        except json.JSONDecodeError as e:
            sys.exit(f"error: {path} is not valid JSON ({e}) — the bench run "
                     f"that produced it likely crashed mid-write; re-run it")
        baseline = load_baseline(path, args.baseline_dir)
        if baseline is None:
            print(f"{path.name}: no committed baseline, skipped (commit one to gate it)")
            continue
        print(f"{path.name} (bench {current.get('bench')!r}):")
        failures += compare(path, current, baseline, args.threshold)

    if failures:
        print(f"\n{len(failures)} regression(s) above {args.threshold:.0%}:")
        for fname, key, metric, base, cur, delta in failures:
            print(f"  {fname} {key} {metric}: {base:.6f} -> {cur:.6f}")
        print("intentional? re-run the benches in full mode, commit the JSONs "
              "(or apply the bench-baseline-update label).")
        return 1
    print("\nall benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
