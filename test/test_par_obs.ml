(* The multicore observability layer: SPSC rings under concurrent
   producers, histogram quantiles and the Prometheus exposition, the
   contention profiler, structured stall reports, and the per-domain
   event streams (Par_obs) — both driven directly against a Shard_table
   for a deterministic block/grant hand-off and end-to-end through a
   real Par_engine run. *)

open Tavcc_lock
open Tavcc_model
module LT = Lock_table
module ST = Tavcc_par.Shard_table
module Par_engine = Tavcc_par.Par_engine
module Par_obs = Tavcc_par.Par_obs
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module Json = Tavcc_obs.Json
module Metrics = Tavcc_obs.Metrics
module Ring = Tavcc_obs.Ring
module Contention = Tavcc_obs.Contention
module Trace = Tavcc_obs.Trace
open Helpers

let rw_conflict (held : LT.req) (req : LT.req) =
  not (Compat.compatible Compat.rw held.LT.r_mode req.LT.r_mode)

let req txn res mode =
  { LT.r_txn = txn; r_res = res; r_mode = mode; r_hier = false; r_pred = None }

let res_i n = Resource.Instance (Oid.of_int n)

(* --- SPSC rings --- *)

let test_ring_basics () =
  check_raises_invalid "bad capacity" (fun () -> Ring.create 0);
  let r = Ring.create 3 in
  Alcotest.(check int) "capacity rounds up to a power of two" 4 (Ring.capacity r);
  Alcotest.(check bool) "push accepted" true (Ring.push r 1);
  Alcotest.(check bool) "push accepted" true (Ring.push r 2);
  Alcotest.(check int) "length sees published events" 2 (Ring.length r);
  let got = ref [] in
  Alcotest.(check int) "drain count" 2 (Ring.drain r (fun x -> got := x :: !got));
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ] (List.rev !got);
  (* Fill to capacity: the overflow push is dropped, never blocks. *)
  for i = 1 to 4 do
    Alcotest.(check bool) "fits" true (Ring.push r (10 + i))
  done;
  Alcotest.(check bool) "overflow dropped" false (Ring.push r 99);
  Alcotest.(check int) "pushed excludes drops" 6 (Ring.pushed r);
  Alcotest.(check int) "dropped counted" 1 (Ring.dropped r);
  ignore (Ring.drain r (fun _ -> ()));
  Alcotest.(check int) "ledger balances" (Ring.pushed r) (Ring.drained r)

let test_ring_two_domain_hammer () =
  (* Two producer domains, each on its own ring, while the main domain
     drains both live.  Events are (domain, seq, checksum) triples so a
     torn read is detectable; nothing may be lost: after the final
     drain, pushed = drained per ring and every sequence is gapless. *)
  let per_domain = 50_000 in
  let rings = [| Ring.create 1024; Ring.create 1024 |] in
  let accepted = [| Atomic.make 0; Atomic.make 0 |] in
  let producer d () =
    for seq = 1 to per_domain do
      if Ring.push rings.(d) (d, seq, (seq * 31) + d) then
        Atomic.incr accepted.(d)
    done
  in
  let d0 = Domain.spawn (producer 0) and d1 = Domain.spawn (producer 1) in
  let seen = [| 0; 0 |] in
  let check (d, seq, sum) =
    if sum <> (seq * 31) + d then Alcotest.failf "torn event on ring %d" d;
    (* Drops may leave gaps, but order within a ring is preserved. *)
    if seq <= seen.(d) then Alcotest.failf "ring %d replayed seq %d" d seq;
    seen.(d) <- seq
  in
  let drained = ref 0 in
  let live_polls = ref 0 in
  while !live_polls < 100_000 && (!drained < Atomic.get accepted.(0) + Atomic.get accepted.(1) || !live_polls < 10) do
    incr live_polls;
    Array.iter (fun r -> drained := !drained + Ring.drain r check) rings
  done;
  Domain.join d0;
  Domain.join d1;
  Array.iter (fun r -> drained := !drained + Ring.drain r check) rings;
  Array.iteri
    (fun d r ->
      Alcotest.(check int)
        (Printf.sprintf "ring %d: pushed counter matches producer" d)
        (Atomic.get accepted.(d)) (Ring.pushed r);
      Alcotest.(check int)
        (Printf.sprintf "ring %d: everything pushed was drained" d)
        (Ring.pushed r) (Ring.drained r);
      Alcotest.(check int)
        (Printf.sprintf "ring %d: push attempts = pushed + dropped" d)
        per_domain
        (Ring.pushed r + Ring.dropped r))
    rings;
  Alcotest.(check int) "total drained matches both ledgers"
    (Ring.drained rings.(0) + Ring.drained rings.(1))
    !drained

(* --- histogram quantiles --- *)

let test_metrics_quantiles () =
  let m = Metrics.create () in
  let empty = Metrics.histogram m "empty" in
  Alcotest.(check (float 0.0)) "empty histogram" 0.0 (Metrics.quantile empty 0.5);
  let one = Metrics.histogram m "one" in
  Metrics.observe one 42;
  let q = Metrics.quantile one 0.5 in
  Alcotest.(check bool) "single value within its bucket" true (q >= 32. && q <= 42.);
  Alcotest.(check (float 0.001)) "q=1 clamps to the tracked max" 42.0
    (Metrics.quantile one 1.0);
  let h = Metrics.histogram m "uniform" in
  for v = 1 to 1000 do
    Metrics.observe h v
  done;
  let p50 = Metrics.quantile h 0.50
  and p95 = Metrics.quantile h 0.95
  and p99 = Metrics.quantile h 0.99 in
  (* Log buckets bound the relative error by a factor of two. *)
  Alcotest.(check bool) "p50 within a factor of two" true (p50 >= 250. && p50 <= 1000.);
  Alcotest.(check bool) "p95 within a factor of two" true (p95 >= 475. && p95 <= 1000.);
  Alcotest.(check bool) "p99 within a factor of two" true (p99 >= 495. && p99 <= 1000.);
  Alcotest.(check bool) "quantiles are monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "clamped by the max" true
    (Metrics.quantile h 1.0 <= 1000.);
  (* Out-of-range q is clamped, not rejected. *)
  Alcotest.(check bool) "q clamped below" true (Metrics.quantile h (-1.) <= p50);
  (* The JSON snapshot carries the same estimates. *)
  match Json.member "uniform" (Metrics.to_json m) with
  | Some (Json.Obj fields) ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " exported") true (List.mem_assoc k fields))
        [ "p50"; "p95"; "p99" ]
  | _ -> Alcotest.fail "histogram missing from json"

(* --- Prometheus exposition --- *)

let test_metrics_prometheus () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "par.commits") 5;
  Metrics.set (Metrics.gauge m "par.live") 7;
  Metrics.set (Metrics.gauge m "par.live") 3;
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 1; 3; 1000 ];
  let s = Metrics.to_prometheus m in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" frag) true
        (contains s frag))
    [
      "# TYPE tavcc_par_commits counter";
      "tavcc_par_commits 5";
      "# TYPE tavcc_par_live gauge";
      "tavcc_par_live 3";
      "tavcc_par_live_max 7";
      "# TYPE tavcc_lat histogram";
      "tavcc_lat_bucket{le=\"+Inf\"} 3";
      "tavcc_lat_sum 1004";
      "tavcc_lat_count 3";
      "tavcc_lat_p50";
      "tavcc_lat_p99";
    ];
  (* The cumulative bucket series must be non-decreasing and end at the
     count. *)
  let cum =
    List.filter_map
      (fun l ->
        if contains l "tavcc_lat_bucket{le=\"" && not (contains l "+Inf") then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      (String.split_on_char '\n' s)
  in
  Alcotest.(check bool) "at least one finite bucket" true (cum <> []);
  ignore
    (List.fold_left
       (fun prev c ->
         Alcotest.(check bool) "cumulative series non-decreasing" true (c >= prev);
         c)
       0 cum);
  Alcotest.(check int) "series ends at the count" 3 (List.nth cum (List.length cum - 1));
  (* A custom prefix and the empty prefix both sanitise. *)
  Alcotest.(check bool) "custom prefix" true
    (contains (Metrics.to_prometheus ~prefix:"x" m) "x_par_commits 5");
  Alcotest.(check bool) "no prefix" true
    (contains (Metrics.to_prometheus ~prefix:"" m) "par_commits 5")

let test_metrics_labelled () =
  (* Labelled series: the base name is sanitised, the label block renders
     natively, histogram suffixes attach to the base (not after the
     braces), and [le] merges into an existing label set. *)
  Alcotest.(check string) "labelled name"
    "net.session.requests{client=\"blast-0\"}"
    (Metrics.labelled "net.session.requests" [ ("client", "blast-0") ]);
  let m = Metrics.create () in
  Metrics.add
    (Metrics.counter m (Metrics.labelled "net.session.requests" [ ("client", "blast-0") ]))
    50;
  Metrics.observe
    (Metrics.histogram m (Metrics.labelled "net.req_us" [ ("client", "a\"b\nc\\d") ]))
    12;
  let s = Metrics.to_prometheus m in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" frag) true
        (contains s frag))
    [
      "tavcc_net_session_requests{client=\"blast-0\"} 50";
      (* label values escape per the text format; the base still gets
         sanitised even with labels attached *)
      "tavcc_net_req_us_count{client=\"a\\\"b\\nc\\\\d\"} 1";
      "tavcc_net_req_us_bucket{client=\"a\\\"b\\nc\\\\d\",le=\"+Inf\"} 1";
    ];
  Alcotest.(check bool) "no suffix after the label block" false
    (contains s "}_bucket")

(* --- contention profiler --- *)

let test_contention_profiler () =
  let c : string Contention.t = Contention.create () in
  Alcotest.(check int) "empty: no blocks" 0 (Contention.blocks c);
  Alcotest.(check bool) "empty: no entries" true (Contention.top c = []);
  Contention.record_block c "hot" ~queue_depth:3;
  Contention.record_block c "hot" ~queue_depth:1;
  Contention.record_wait c "hot" ~wait_us:100;
  Contention.record_wait c "hot" ~wait_us:50;
  Contention.record_kill c ~deadlock:true "hot";
  Contention.record_block c "cold" ~queue_depth:0;
  Contention.record_wait c "cold" ~wait_us:10;
  Alcotest.(check int) "blocks total" 3 (Contention.blocks c);
  Alcotest.(check int) "wait total" 160 (Contention.total_wait_us c);
  (match Contention.top c with
  | [ a; b ] ->
      Alcotest.(check string) "hottest first" "hot" a.Contention.e_res;
      Alcotest.(check int) "blocks" 2 a.Contention.e_blocks;
      Alcotest.(check int) "waits" 2 a.Contention.e_waits;
      Alcotest.(check int) "wait_us" 150 a.Contention.e_wait_us;
      Alcotest.(check int) "max wait" 100 a.Contention.e_max_wait_us;
      Alcotest.(check int) "max depth" 3 a.Contention.e_max_queue_depth;
      Alcotest.(check int) "deadlocks" 1 a.Contention.e_deadlocks;
      Alcotest.(check int) "kills" 1 a.Contention.e_kills;
      Alcotest.(check (float 0.001)) "mean wait" 75.0 (Contention.mean_wait_us a);
      Alcotest.(check (float 0.001)) "mean depth" 2.0 (Contention.mean_queue_depth a);
      Alcotest.(check string) "runner-up" "cold" b.Contention.e_res
  | l -> Alcotest.failf "expected two entries, got %d" (List.length l));
  Alcotest.(check int) "top-1 truncates" 1 (List.length (Contention.top ~k:1 c));
  let j = Contention.to_json ~key:Fun.id c in
  match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "contention json unparseable: %s" e
  | Ok _ ->
      let s = Format.asprintf "%a" (Contention.pp ~key:Fun.id ?k:None) c in
      Alcotest.(check bool) "pp names the hot spot" true (contains s "hot")

(* --- a deterministic block/grant hand-off through Par_obs --- *)

(* Main attaches as worker 0 and takes a write lock; a spawned domain
   attaches as worker 1 and parks on the conflicting request; main then
   releases, which fires the grant on its own ring.  Every event of the
   wait's lifecycle must surface, pair by wait id, and render as a flow
   arrow between the two tracks. *)
let test_par_obs_handoff () =
  let o = Par_obs.create ~domains:2 () in
  Alcotest.(check int) "domain count" 2 (Par_obs.domain_count o);
  Alcotest.(check int) "detector track is last" 2 (Par_obs.detector_dom o);
  check_raises_invalid "attach range" (fun () -> Par_obs.attach o ~dom:5);
  Par_obs.attach o ~dom:0;
  let st = ST.create ~shards:2 ~tracer:(Par_obs.tracer o) ~conflict:rw_conflict () in
  ST.register st ~id:1 ~birth:1;
  ST.register st ~id:2 ~birth:2;
  ST.acquire_blocking st ~policy:ST.Block (req 1 (res_i 0) Compat.write);
  let waiter =
    Domain.spawn (fun () ->
        Par_obs.attach o ~dom:1;
        ST.acquire_blocking st ~policy:ST.Block (req 2 (res_i 0) Compat.write))
  in
  let rec wait_parked n =
    if n = 0 then Alcotest.fail "waiter never parked";
    if ST.waiting_txns st = [] then begin
      Unix.sleepf 0.001;
      wait_parked (n - 1)
    end
  in
  wait_parked 5000;
  ignore (ST.release_all st 1);
  Domain.join waiter;
  ignore (ST.release_all st 2);
  ignore (Par_obs.drain o);
  Alcotest.(check int) "nothing dropped" 0 (Par_obs.dropped o);
  let evs = Par_obs.events o in
  Alcotest.(check int) "drained stream matches the push ledger"
    (Par_obs.pushed o) (List.length evs);
  let block =
    List.find_map
      (function
        | { Par_obs.ev_kind = Par_obs.E_block { txn; wait_id; queue_depth; _ }; ev_dom; _ }
          ->
            Some (txn, wait_id, queue_depth, ev_dom)
        | _ -> None)
      evs
  in
  let block_txn, block_wid, block_depth, block_dom =
    match block with Some x -> x | None -> Alcotest.fail "no block event"
  in
  Alcotest.(check int) "block on the waiter's track" 1 block_dom;
  Alcotest.(check int) "blocked txn" 2 block_txn;
  (* The depth counts the queue as the request parks, itself included. *)
  Alcotest.(check int) "queue depth at block time" 1 block_depth;
  let grant =
    List.find_map
      (function
        | { Par_obs.ev_kind = Par_obs.E_grant { wait_id; _ }; ev_dom; _ } ->
            Some (wait_id, ev_dom)
        | _ -> None)
      evs
  in
  (match grant with
  | Some (wid, dom) ->
      Alcotest.(check int) "grant pairs by wait id" block_wid wid;
      Alcotest.(check int) "grant fired on the releasing domain" 0 dom
  | None -> Alcotest.fail "no grant event");
  (match
     List.find_map
       (function
         | { Par_obs.ev_kind = Par_obs.E_resume { wait_id; _ }; _ } -> Some wait_id
         | _ -> None)
       evs
   with
  | Some wid -> Alcotest.(check int) "resume closes the same wait" block_wid wid
  | None -> Alcotest.fail "no resume event");
  (* The profiler was fed the same hand-off. *)
  let c = Par_obs.contention o in
  Alcotest.(check int) "one block profiled" 1 (Contention.blocks c);
  (match Contention.top c with
  | [ e ] ->
      Alcotest.(check string) "profiled under the resource key"
        (Par_obs.res_key (res_i 0))
        (Par_obs.res_key e.Contention.e_res);
      Alcotest.(check int) "one completed wait" 1 e.Contention.e_waits;
      Alcotest.(check bool) "wait time attributed" true (e.Contention.e_wait_us >= 0)
  | l -> Alcotest.failf "expected one hot resource, got %d" (List.length l));
  (* The trace: a wait span on track 1, a flow arrow landing on track 0. *)
  let tr = Par_obs.to_trace o in
  let count ph = List.length (List.filter (fun e -> e.Trace.ph = ph) tr) in
  Alcotest.(check int) "wait spans balance" (count Trace.Begin) (count Trace.End);
  Alcotest.(check bool) "at least one wait span" true (count Trace.Begin >= 1);
  Alcotest.(check int) "track labels for workers and detector" 3 (count Trace.Meta);
  let fs = List.filter (fun e -> e.Trace.ph = Trace.Flow_start) tr in
  let fe = List.filter (fun e -> e.Trace.ph = Trace.Flow_end) tr in
  match (fs, fe) with
  | [ s ], [ f ] ->
      Alcotest.(check int) "flow pairs by id" s.Trace.id f.Trace.id;
      Alcotest.(check string) "flow pairs by cat" s.Trace.cat f.Trace.cat;
      Alcotest.(check string) "flow pairs by name" s.Trace.name f.Trace.name;
      Alcotest.(check int) "arrow starts on the waiter's track" 1 s.Trace.tid;
      Alcotest.(check int) "arrow lands on the granting track" 0 f.Trace.tid;
      Alcotest.(check bool) "arrow points forward in time" true
        (s.Trace.ts <= f.Trace.ts)
  | _ -> Alcotest.failf "expected one flow pair, got %d/%d" (List.length fs) (List.length fe)

(* --- structured stall reports --- *)

let test_stall_report_json () =
  let st = ST.create ~shards:2 ~conflict:rw_conflict () in
  ST.register st ~id:1 ~birth:1;
  ST.register st ~id:2 ~birth:2;
  ST.acquire_blocking st ~policy:ST.Block (req 1 (res_i 3) Compat.write);
  let waiter =
    Domain.spawn (fun () ->
        ST.acquire_blocking st ~policy:ST.Block (req 2 (res_i 3) Compat.write))
  in
  let rec wait_parked n =
    if n = 0 then Alcotest.fail "waiter never parked";
    if ST.waiting_txns st = [] then begin
      Unix.sleepf 0.001;
      wait_parked (n - 1)
    end
  in
  wait_parked 5000;
  let rep = ST.stall_report ~elapsed_s:1.5 st in
  Alcotest.(check (float 0.001)) "elapsed propagated" 1.5 rep.ST.sr_elapsed_s;
  Alcotest.(check bool) "waits-for edge captured" true
    (List.mem (2, 1) rep.ST.sr_edges_rebuilt);
  let t2 =
    match List.find_opt (fun t -> t.ST.st_txn = 2) rep.ST.sr_txns with
    | Some t -> t
    | None -> Alcotest.fail "waiter missing from the report"
  in
  Alcotest.(check bool) "waiter is parked" true (t2.ST.st_parked_s >= 0.);
  (match t2.ST.st_waiting_for with
  | Some r -> Alcotest.(check bool) "waiting on the contended resource" true
      (Resource.equal r.LT.r_res (res_i 3))
  | None -> Alcotest.fail "waiter has no waiting_for");
  Alcotest.(check int) "holder visible" 1
    (match t2.ST.st_holders with [ h ] -> h.LT.r_txn | _ -> -1);
  let j = ST.stall_report_to_json rep in
  (* Parseability, not structural equality: the parked-seconds floats
     need not survive printing bit-for-bit. *)
  (match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "stall json unparseable: %s" e
  | Ok _ -> ());
  let s = Json.to_string j in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "json mentions %S" frag) true
        (contains s frag))
    [ "elapsed_s"; "txns"; "edges"; "waiting_for" ];
  (* The pretty form still renders (the watchdog's stderr path). *)
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" ST.pp_stall_report rep) > 0);
  ignore (ST.release_all st 1);
  Domain.join waiter;
  ignore (ST.release_all st 2)

(* --- the parallel engine end-to-end --- *)

let test_par_engine_with_obs () =
  let txns = 40 and domains = 2 in
  let schema = Workload.slice_schema ~methods:8 ~work:4 () in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  Workload.populate store ~per_class:2;
  let jobs =
    Workload.slice_jobs (Rng.create 7) store ~txns ~actions_per_txn:3 ~hot_instances:2
  in
  let o = Par_obs.create ~domains () in
  let m = Metrics.create () in
  let config =
    { Par_engine.default_config with domains; shards = 4; obs = Some o; metrics = Some m }
  in
  let r = Par_engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs () in
  Alcotest.(check int) "all committed" txns r.Par_engine.commits;
  Alcotest.(check int) "nothing dropped" 0 (Par_obs.dropped o);
  let evs = Par_obs.events o in
  Alcotest.(check int) "drained stream matches the push ledger"
    (Par_obs.pushed o) (List.length evs);
  let count p = List.length (List.filter p evs) in
  Alcotest.(check int) "one commit event per commit" r.Par_engine.commits
    (count (fun e -> match e.Par_obs.ev_kind with Par_obs.E_commit _ -> true | _ -> false));
  Alcotest.(check int) "one begin per attempt"
    (r.Par_engine.commits + r.Par_engine.aborts
    + List.length r.Par_engine.failed)
    (count (fun e -> match e.Par_obs.ev_kind with Par_obs.E_begin _ -> true | _ -> false));
  Alcotest.(check int) "abort events match the result" r.Par_engine.aborts
    (count (fun e -> match e.Par_obs.ev_kind with Par_obs.E_abort _ -> true | _ -> false));
  let blocks =
    count (fun e -> match e.Par_obs.ev_kind with Par_obs.E_block _ -> true | _ -> false)
  in
  Alcotest.(check int) "profiler saw every block" blocks
    (Contention.blocks (Par_obs.contention o));
  (* Timestamps are merged in order and stamped with valid tracks. *)
  ignore
    (List.fold_left
       (fun prev e ->
         Alcotest.(check bool) "merged stream is time-sorted" true
           (e.Par_obs.ev_ts >= prev);
         Alcotest.(check bool) "track in range" true
           (e.Par_obs.ev_dom >= 0 && e.Par_obs.ev_dom <= domains);
         e.Par_obs.ev_ts)
       min_int evs);
  (* The trace round-trips and labels every domain track. *)
  let tr = Par_obs.to_trace ~pid:9 o in
  let json = Trace.to_json tr in
  (match Json.of_string (Json.to_string json) with
  | Error e -> Alcotest.failf "trace json unparseable: %s" e
  | Ok j -> Alcotest.(check bool) "trace json round-trips" true (j = json));
  let metas = List.filter (fun e -> e.Trace.ph = Trace.Meta) tr in
  Alcotest.(check int) "a name meta per worker plus the detector"
    (domains + 1) (List.length metas);
  List.iter
    (fun e -> Alcotest.(check int) "pid propagated" 9 e.Trace.pid)
    metas;
  let spans = List.filter (fun e -> e.Trace.ph = Trace.Complete) tr in
  Alcotest.(check int) "a span per attempt"
    (r.Par_engine.commits + r.Par_engine.aborts) (List.length spans);
  (* On a single-core host one worker can drain the whole job list, so
     only require that every span sits on a real worker track; the
     deterministic two-track property is the hand-off test's job. *)
  let worker_tracks =
    List.sort_uniq compare (List.map (fun e -> e.Trace.tid) spans)
  in
  Alcotest.(check bool) "spans sit on worker tracks" true
    (worker_tracks <> []
    && List.for_all (fun t -> t >= 0 && t < domains) worker_tracks);
  Alcotest.(check int) "wait spans balance"
    (List.length (List.filter (fun e -> e.Trace.ph = Trace.Begin) tr))
    (List.length (List.filter (fun e -> e.Trace.ph = Trace.End) tr));
  (* Metrics flowed through the same run: per-domain busy counters. *)
  for d = 0 to domains - 1 do
    Alcotest.(check bool) (Printf.sprintf "domain %d busy time" d) true
      (Metrics.value (Metrics.counter m (Printf.sprintf "par.dom%d.busy_us" d)) >= 0)
  done;
  Alcotest.(check int) "commits metric" r.Par_engine.commits
    (Metrics.value (Metrics.counter m "par.commits"))

let test_par_engine_obs_domain_mismatch () =
  let schema = Workload.slice_schema ~methods:4 ~work:2 () in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  Workload.populate store ~per_class:1;
  let o = Par_obs.create ~domains:3 () in
  let config = { Par_engine.default_config with domains = 2; obs = Some o } in
  check_raises_invalid "obs sized for the wrong pool" (fun () ->
      Par_engine.run ~config ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store ~jobs:[] ())

let suite =
  [
    case "spsc ring basics" test_ring_basics;
    case "spsc rings under two producer domains" test_ring_two_domain_hammer;
    case "histogram quantiles" test_metrics_quantiles;
    case "prometheus exposition" test_metrics_prometheus;
    case "prometheus labelled series" test_metrics_labelled;
    case "contention profiler" test_contention_profiler;
    case "block/grant hand-off pairs across rings" test_par_obs_handoff;
    case "structured stall report" test_stall_report_json;
    case "parallel engine streams a coherent trace" test_par_engine_with_obs;
    case "obs/domains mismatch is rejected" test_par_engine_obs_domain_mismatch;
  ]
