(* Pretty-printer: fixed renderings plus the parse-print round trip. *)

open Tavcc_model
open Tavcc_lang
open Helpers

let test_expr_rendering () =
  let roundtrip s = Pretty.expr_to_string (Parser.parse_expr s) in
  Alcotest.(check string) "precedence kept" "1 + 2 * 3" (roundtrip "1 + 2 * 3");
  Alcotest.(check string) "parens kept where needed" "(1 + 2) * 3" (roundtrip "(1 + 2) * 3");
  Alcotest.(check string) "redundant parens dropped" "1 + 2" (roundtrip "(1 + 2)");
  Alcotest.(check string) "unary" "-x + 1" (roundtrip "-x + 1");
  Alcotest.(check string) "not" "not (a and b)" (roundtrip "not (a and b)")

let test_stmt_rendering () =
  let s = Parser.parse_body "if f2 then send m to f3; end" in
  Alcotest.(check string) "if"
    "if f2 then\n  send m to f3;\nend"
    (Pretty.body_to_string s)

let test_figure1_roundtrip () =
  (* The embedded Figure 1 must survive print → parse → print. *)
  let d1 = Parser.parse_decls Tavcc_core.Paper_example.source in
  let printed = Pretty.decls_to_string d1 in
  let d2 = Parser.parse_decls printed in
  Alcotest.(check int) "same class count" (List.length d1) (List.length d2);
  List.iter2
    (fun (a : Ast.body Schema.class_decl) b ->
      Alcotest.check class_name "class name" a.Schema.c_name b.Schema.c_name;
      Alcotest.(check int) "methods" (List.length a.Schema.c_methods) (List.length b.Schema.c_methods);
      List.iter2
        (fun (ma : Ast.body Schema.method_def) mb ->
          Alcotest.check body
            (Format.asprintf "body of %a" Name.Method.pp ma.Schema.m_name)
            ma.Schema.m_body mb.Schema.m_body)
        a.Schema.c_methods b.Schema.c_methods)
    d1 d2

(* Random ASTs for the round-trip property.  Avoids the few lexically
   ambiguous shapes: negative literals (indistinguishable from unary
   minus), float literals, exotic string characters, and [self] as an
   explicit receiver expression. *)
let ident_pool = [ "x"; "y"; "z"; "foo"; "p1" ]

let gen_expr =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> Ast.Lit (Value.Vint (abs i))) small_int;
            map (fun b -> Ast.Lit (Value.Vbool b)) bool;
            map (fun s -> Ast.Lit (Value.Vstring s)) (string_size ~gen:(char_range 'a' 'z') (0 -- 6));
            return (Ast.Lit Value.Vnull);
            return Ast.Self;
            map (fun x -> Ast.Ident x) (oneofl ident_pool);
            return (Ast.New (Name.Class.of_string "c1"));
          ]
      in
      if n <= 0 then leaf
      else
        oneof
          [
            leaf;
            map (fun e -> Ast.Unop (Ast.Neg, e)) (self (n / 2));
            map (fun e -> Ast.Unop (Ast.Not, e)) (self (n / 2));
            map3
              (fun op l r -> Ast.Binop (op, l, r))
              (oneofl
                 [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne; Ast.Lt;
                   Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or ])
              (self (n / 2)) (self (n / 2));
            map2
              (fun name args ->
                Ast.Send
                  { Ast.msg_prefix = None; msg_name = Name.Method.of_string name;
                    msg_args = args; msg_recv = Ast.Rself; msg_pos = None })
              (oneofl [ "m1"; "m2" ])
              (list_size (0 -- 2) (self (n / 3)));
          ])

let rec gen_stmt n =
  let open QCheck.Gen in
  let assign = map2 (fun x e -> Ast.Assign (x, e)) (oneofl ident_pool) (gen_expr) in
  let send =
    map2
      (fun name recv ->
        Ast.Send_stmt
          { Ast.msg_prefix = None; msg_name = Name.Method.of_string name; msg_args = [];
            msg_recv = recv; msg_pos = None })
      (oneofl [ "m1"; "m2" ])
      (oneof [ return Ast.Rself; map (fun x -> Ast.Rexpr (Ast.Ident x)) (oneofl ident_pool) ])
  in
  if n <= 0 then oneof [ assign; send ]
  else
    oneof
      [
        assign;
        send;
        map2 (fun x e -> Ast.Var (x, e)) (oneofl ident_pool) gen_expr;
        map (fun e -> Ast.Return e) gen_expr;
        map3 (fun c t e -> Ast.If (c, t, e)) gen_expr (gen_body (n / 2)) (gen_body (n / 2));
        map2 (fun c b -> Ast.While (c, b)) gen_expr (gen_body (n / 2));
      ]

and gen_body n = QCheck.Gen.list_size QCheck.Gen.(0 -- 3) (gen_stmt n)

let arb_body =
  QCheck.make ~print:Pretty.body_to_string (QCheck.Gen.sized (fun n -> gen_body (min n 4)))

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"pretty/parse round trip" arb_body (fun b ->
      match Parser.parse_body (Pretty.body_to_string b) with
      | b' -> Ast.equal_body b b'
      | exception (Parser.Error (m, _) | Lexer.Error (m, _)) ->
          QCheck.Test.fail_reportf "reparse failed: %s on@.%s" m (Pretty.body_to_string b))

let suite =
  [
    case "expression rendering" test_expr_rendering;
    case "statement rendering" test_stmt_rendering;
    case "figure 1 round trip" test_figure1_roundtrip;
    QCheck_alcotest.to_alcotest roundtrip_prop;
  ]
