(* The TAV soundness sanitizer: recorder, conformance checker, schema
   fuzzer, mutation harness and the runtime lock monitor. *)

open Tavcc_core
open Tavcc_sanitize
open Helpers
module Diag = Tavcc_analyze.Diag

let cell_src =
  {|
class cell is
  fields
    n : integer;
    t : integer;
  method bump(p) is
    n := n + p;
  end
  method touch(p) is
    send bump(p) to self;
    t := t + 1;
  end
end
class dcell extends cell is
  method bump(p) is
    send cell.bump(p) to self;
    t := t * 2;
  end
end
|}

let run_cell () =
  match Fuzz.run_source cell_src with
  | Error e -> Alcotest.failf "run_source: %s" e
  | Ok run -> run

let av l = Access_vector.of_list l

let find_site what sites c m =
  match List.assoc_opt (cn c, mn m) sites with
  | Some v -> v
  | None -> Alcotest.failf "no observed %s for %s.%s" what c m

let test_recorder_davs () =
  let run = run_cell () in
  let davs = Recorder.observed_dav run.Fuzz.run_recorder in
  let dav = find_site "DAV" davs in
  Alcotest.check access_vector "cell.bump direct" (av [ (fn "n", Mode.Write) ]) (dav "cell" "bump");
  Alcotest.check access_vector "cell.touch direct (nested send excluded)"
    (av [ (fn "t", Mode.Write) ])
    (dav "cell" "touch");
  Alcotest.check access_vector "dcell.bump direct" (av [ (fn "t", Mode.Write) ]) (dav "dcell" "bump")

let test_recorder_tavs () =
  let run = run_cell () in
  let tavs = Recorder.observed_tav run.Fuzz.run_recorder in
  let tav = find_site "TAV" tavs in
  Alcotest.check access_vector "arrival cell.touch"
    (av [ (fn "n", Mode.Write); (fn "t", Mode.Write) ])
    (tav "cell" "touch");
  Alcotest.check access_vector "arrival dcell.touch (prefixed chain)"
    (av [ (fn "n", Mode.Write); (fn "t", Mode.Write) ])
    (tav "dcell" "touch");
  match Recorder.tav_witness run.Fuzz.run_recorder (cn "cell", mn "touch") (fn "n") with
  | Some w -> Alcotest.check mode "witness mode" Mode.Write w.Recorder.w_mode
  | None -> Alcotest.fail "no witness for cell.touch n"

let test_conformance_clean () =
  let run = run_cell () in
  Alcotest.(check bool) "honest analyzer conforms" true (Conform.ok run.Fuzz.run_result);
  Alcotest.(check bool) "checks performed" true (run.Fuzz.run_result.Conform.r_checks > 0);
  Alcotest.(check (list (pair string string))) "no driver errors" [] run.Fuzz.run_errors

let test_mutation_detects () =
  let run = run_cell () in
  let detected mu = Fuzz.mutation_detected run mu in
  let mu kind site f from_ to_ =
    { Fuzz.mu_kind = kind; mu_site = site; mu_field = f; mu_from = from_; mu_to = to_ }
  in
  Alcotest.(check bool) "weakened DAV write caught" true
    (detected (mu `Dav (cn "cell", mn "bump") (fn "n") Mode.Write Mode.Read));
  Alcotest.(check bool) "erased DAV entry caught" true
    (detected (mu `Dav (cn "cell", mn "touch") (fn "t") Mode.Write Mode.Null));
  Alcotest.(check bool) "weakened TAV caught" true
    (detected (mu `Tav (cn "dcell", mn "touch") (fn "n") Mode.Write Mode.Null));
  (* the diagnostics carry the right codes *)
  let lookup =
    Fuzz.mutated_lookup run.Fuzz.run_an (mu `Tav (cn "cell", mn "touch") (fn "n") Mode.Write Mode.Read)
  in
  let res = Conform.check ~an:run.Fuzz.run_an ~lookup run.Fuzz.run_recorder in
  match res.Conform.r_diags with
  | [ d ] ->
      Alcotest.(check string) "code" "SAN002" (Diag.code_to_string d.Diag.d_code);
      Alcotest.check site "site" (cn "cell", mn "touch") d.Diag.d_site;
      Alcotest.(check bool) "positioned" true (d.Diag.d_pos <> None)
  | ds -> Alcotest.failf "expected exactly one SAN002, got %d" (List.length ds)

let test_random_mutations_detected () =
  (* the CI gate asserts >= 95% over a large campaign; here a smaller
     deterministic sweep must be perfect *)
  let rng = Tavcc_sim.Rng.create 0xfeed in
  let total = ref 0 and caught = ref 0 in
  for _ = 1 to 25 do
    let decls = Fuzz.gen_decls rng in
    match Fuzz.run_source (Fuzz.source decls) with
    | Error e -> Alcotest.failf "generated schema rejected: %s" e
    | Ok run ->
        if Conform.ok run.Fuzz.run_result then
          for _ = 1 to 4 do
            match Fuzz.gen_mutation rng run with
            | None -> ()
            | Some mu ->
                incr total;
                if Fuzz.mutation_detected run mu then incr caught
          done
  done;
  Alcotest.(check bool) "mutations generated" true (!total > 0);
  Alcotest.(check int) "all seeded mutations detected" !total !caught

let prop_fuzz_sound =
  QCheck.Test.make ~count:60 ~name:"analyzer sound on random schemas"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
    (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let decls = Fuzz.gen_decls rng in
      match Fuzz.check_decls decls with
      | Fuzz.Sound -> true
      | Fuzz.Unsound diags ->
          QCheck.Test.fail_reportf "analyzer unsound on seed %d:@\n%a@\n%s" seed
            (Format.pp_print_list Diag.pp) diags (Fuzz.source decls)
      | Fuzz.Broken e ->
          QCheck.Test.fail_reportf "harness broken on seed %d: %s@\n%s" seed e
            (Fuzz.source decls))

let test_minimize_broken () =
  (* a schema that crashes while driven (send to a null reference) must
     shrink to something that still crashes *)
  let src =
    {|
class a is
  fields x : integer; y : integer; r : a;
  method keepme(p) is
    x := x + p;
    y := y - 1;
    send keepme(p) to r;
  end
  method noise(p) is
    x := x * 2;
  end
end
class noise2 is
  fields z : integer;
  method nz(p) is z := z + p; end
end
|}
  in
  (match Fuzz.check_source src with
  | Fuzz.Broken _ -> ()
  | _ -> Alcotest.fail "expected the original to be broken");
  let small = Fuzz.minimize src in
  (match Fuzz.check_source small with
  | Fuzz.Broken _ -> ()
  | _ -> Alcotest.fail "minimized schema no longer fails");
  Alcotest.(check bool) "shrunk" true (String.length small < String.length src);
  Alcotest.(check bool) "noise class dropped" false (contains small "noise2")

let test_minimized_replayable () =
  (* the counterexample printer and the replay path agree: printing and
     re-checking gives the same verdict *)
  let rng = Tavcc_sim.Rng.create 42 in
  let decls = Fuzz.gen_decls rng in
  let src = Fuzz.source decls in
  match (Fuzz.check_source src, Fuzz.check_decls decls) with
  | Fuzz.Sound, Fuzz.Sound -> ()
  | _ -> Alcotest.fail "print/parse round trip changed the verdict"

(* --- the lock monitor under the engines --- *)

module Workload = Tavcc_sim.Workload
module Engine = Tavcc_sim.Engine
module Par_engine = Tavcc_par.Par_engine
module Rng = Tavcc_sim.Rng
module Store = Tavcc_model.Store

let all_schemes =
  [
    ("tav", Tavcc_cc.Tav_modes.scheme);
    ("tav-pre", Tavcc_cc.Tav_preclaim.scheme);
    ("rw-msg", Tavcc_cc.Rw_instance.scheme);
    ("rw-top", Tavcc_cc.Rw_toponly.scheme);
    ("rw-impl", Tavcc_cc.Rw_implicit.scheme);
    ("field-rt", Tavcc_cc.Field_runtime.scheme);
    ("relational", Tavcc_cc.Relational.scheme);
    ("mvcc-tav", fun an -> Tavcc_mvcc.Mvcc_tav.scheme an);
  ]

let slice_setup ~seed ~txns =
  let schema = Workload.slice_schema ~methods:8 ~work:2 () in
  let an = Analysis.compile schema in
  let store = Store.create schema in
  Workload.populate store ~per_class:2;
  let jobs =
    Workload.slice_jobs (Rng.create seed) store ~txns ~actions_per_txn:2 ~hot_instances:2
  in
  (an, store, jobs)

let test_engine_monitor_clean () =
  List.iter
    (fun (name, scheme_of) ->
      let an, store, jobs = slice_setup ~seed:5 ~txns:8 in
      let mon = Monitor.create ~scheme:name an in
      let config =
        {
          Engine.default_config with
          hooks = { Engine.no_hooks with hk_probe = Some (Monitor.probe mon) };
        }
      in
      let r = Engine.run ~config ~scheme:(scheme_of an) ~store ~jobs () in
      Alcotest.(check int) (name ^ " commits") 8 r.Engine.commits;
      Alcotest.(check int) (name ^ " clean") 0 (Monitor.violations mon);
      if name <> "mvcc-tav" then
        Alcotest.(check bool) (name ^ " checked accesses") true (Monitor.checked mon > 0))
    all_schemes

let test_engine_monitor_misdeclared () =
  (* the fixture declares field-granularity locking while the engine
     actually locks whole instances: every access lacks its field lock.
     A parsed source (not a synthesized workload) so the diagnostic can
     recover statement positions. *)
  let schema = Helpers.schema_of_source cell_src in
  let an = Analysis.compile schema in
  let store = Store.create schema in
  let o = Store.new_instance store (cn "cell") in
  let jobs =
    [ (1, [ Tavcc_cc.Exec.Call (o, mn "touch", [ Tavcc_model.Value.Vint 1 ]) ]) ]
  in
  let mon = Monitor.create ~scheme:"field-rt" an in
  let config =
    {
      Engine.default_config with
      hooks = { Engine.no_hooks with hk_probe = Some (Monitor.probe mon) };
    }
  in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs () in
  Alcotest.(check int) "run itself completes" 1 r.Engine.commits;
  Alcotest.(check bool) "violations flagged" true (Monitor.violations mon > 0);
  match Monitor.drain mon with
  | [] -> Alcotest.fail "ring drained empty despite violations"
  | v :: _ ->
      let d = Monitor.to_diag mon v in
      Alcotest.(check string) "code" "SAN003" (Diag.code_to_string d.Diag.d_code);
      Alcotest.(check bool) "positioned at the offending statement" true
        (d.Diag.d_pos <> None);
      Alcotest.(check bool) "names the scheme" true
        (Helpers.contains d.Diag.d_msg "field-rt")

let test_par_monitor_clean () =
  List.iter
    (fun (name, scheme_of) ->
      let an, store, jobs = slice_setup ~seed:11 ~txns:16 in
      let domains = 4 in
      let mons = Array.init domains (fun _ -> Monitor.create ~scheme:name an) in
      let config =
        {
          Par_engine.default_config with
          domains;
          shards = 4;
          probe = Some (fun ~dom ~txn ~holds -> Monitor.probe mons.(dom) ~txn ~holds);
        }
      in
      let r = Par_engine.run ~config ~scheme:(scheme_of an) ~store ~jobs () in
      Alcotest.(check int) (name ^ " commits") 16 r.Par_engine.commits;
      let violations =
        Array.fold_left (fun acc m -> acc + Monitor.violations m) 0 mons
      in
      let checked = Array.fold_left (fun acc m -> acc + Monitor.checked m) 0 mons in
      Alcotest.(check int) (name ^ " clean at 4 domains") 0 violations;
      if name <> "mvcc-tav" then
        Alcotest.(check bool) (name ^ " checked accesses") true (checked > 0))
    all_schemes

let suite =
  [
    case "recorder: observed DAVs" test_recorder_davs;
    case "recorder: observed TAVs per arrival" test_recorder_tavs;
    case "conformance clean on honest analyzer" test_conformance_clean;
    case "seeded mutations are detected" test_mutation_detects;
    case "random mutation campaign is perfect" test_random_mutations_detected;
    QCheck_alcotest.to_alcotest prop_fuzz_sound;
    case "minimize a broken schema" test_minimize_broken;
    case "counterexamples replay identically" test_minimized_replayable;
    case "monitor clean under the engine, all schemes" test_engine_monitor_clean;
    case "mis-declared scheme flagged with position" test_engine_monitor_misdeclared;
    case "monitor clean under par at 4 domains" test_par_monitor_clean;
  ]
