(* The network front-end: wire codec, job service, and the server itself.

   Four groups:
   - codec totality (qcheck): random messages round-trip canonically,
     every byte-prefix cut of a frame stays [`Incomplete] (mirroring the
     chaos WAL cut property), every single-bit flip is caught by the
     checksum, and the decoders never raise on garbage;
   - the job service: submit/drain bookkeeping, deterministic admission
     control (workers wedged behind a held lock fill the queue), and
     [Closed] after stop;
   - interactive-transaction teardown: a rolled-back session transaction
     must release its locks and unblock the jobs queued behind it — the
     guarantee the server leans on when a client vanishes;
   - end-to-end over a real unix socket: commits flow, an abrupt
     disconnect mid-transaction frees its locks for the next client,
     and bad handshakes (version, digest, garbage bytes) are refused
     with [Err] rather than a hang or a crash. *)

open Tavcc_model
open Tavcc_cc
module Wire = Tavcc_net.Wire
module Server = Tavcc_net.Server
module Client = Tavcc_net.Client
module Par_engine = Tavcc_par.Par_engine
module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module FN = Name.Field
module MN = Name.Method
module CN = Name.Class

(* --- random messages --------------------------------------------------- *)

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Value.Vint i) small_signed_int);
        (1, map (fun b -> Value.Vbool b) bool);
        (2, map (fun s -> Value.Vstring s) (string_size (0 -- 12)));
        (1, map (fun f -> Value.Vfloat f) float);
        (1, map (fun i -> Value.Vref (Oid.of_int (abs i))) small_signed_int);
        (1, return Value.Vnull);
      ])

let gen_action =
  QCheck.Gen.(
    let meth = map MN.of_string (string_size ~gen:(char_range 'a' 'z') (1 -- 8)) in
    let cls = map CN.of_string (string_size ~gen:(char_range 'a' 'z') (1 -- 8)) in
    let args = list_size (0 -- 3) gen_value in
    frequency
      [
        ( 4,
          map3
            (fun o m a -> Exec.Call (Oid.of_int (abs o), m, a))
            small_signed_int meth args );
        ( 1,
          map3
            (fun (c, os) m a ->
              Exec.Call_some
                {
                  root = c;
                  targets = List.map (fun i -> Oid.of_int (abs i)) os;
                  meth = m;
                  args = a;
                })
            (pair cls (list_size (0 -- 3) small_signed_int))
            meth args );
        ( 1,
          map3
            (fun (c, d) m a -> Exec.Call_extent { cls = c; deep = d; meth = m; args = a })
            (pair cls bool) meth args );
        ( 1,
          map3
            (fun (c, d) ((f, lo, hi), m) a ->
              Exec.Call_range
                {
                  cls = c;
                  deep = d;
                  pred =
                    {
                      Tavcc_lock.Pred.field = FN.of_string f;
                      lo = (if lo > 50 then Some lo else None);
                      hi = (if hi > 50 then Some hi else None);
                    };
                  meth = m;
                  args = a;
                })
            (pair cls bool)
            (pair
               (triple (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) (0 -- 100) (0 -- 100))
               meth)
            args );
      ])

let gen_req =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map3
            (fun v d c -> Wire.Hello { version = v; digest = d; client = c })
            (0 -- 3) (string_size (0 -- 32)) (string_size (0 -- 12)) );
        ( 4,
          map2
            (fun rq actions -> Wire.Run { rq; actions })
            small_nat
            (list_size (0 -- 4) gen_action) );
        (1, map (fun rq -> Wire.Begin { rq }) small_nat);
        (2, map2 (fun rq action -> Wire.Stmt { rq; action }) small_nat gen_action);
        (1, map (fun rq -> Wire.Commit { rq }) small_nat);
        (1, map (fun rq -> Wire.Rollback { rq }) small_nat);
        (1, map (fun rq -> Wire.Ping { rq }) small_nat);
        (1, return Wire.Quit);
      ])

let gen_resp =
  QCheck.Gen.(
    let status =
      frequency
        [
          (3, map (fun r -> Wire.Committed { restarts = r }) small_nat);
          (2, map (fun m -> Wire.Aborted m) (string_size (0 -- 20)));
          (1, return Wire.Rejected);
          (1, map (fun m -> Wire.Failed m) (string_size (0 -- 20)));
          (1, return Wire.Done);
        ]
    in
    frequency
      [
        ( 2,
          map3
            (fun v (s, d) b -> Wire.Welcome { version = v; scheme = s; digest = d; banner = b })
            (0 -- 3)
            (pair (string_size (0 -- 8)) (string_size (0 -- 32)))
            (string_size (0 -- 16)) );
        ( 4,
          map3
            (fun rq s l -> Wire.Reply { rq; status = s; latency_us = l })
            small_nat status small_nat );
        (1, map (fun rq -> Wire.Pong { rq }) small_nat);
        (1, map (fun m -> Wire.Err m) (string_size (0 -- 20)));
        (1, return Wire.Bye);
      ])

let arb_req = QCheck.make ~print:(Format.asprintf "%a" Wire.pp_req) gen_req
let arb_resp = QCheck.make ~print:(Format.asprintf "%a" Wire.pp_resp) gen_resp

(* --- codec properties --------------------------------------------------- *)

(* Canonical byte equality dodges NaN and float-formatting pitfalls: the
   decoded message must re-encode to the exact original bytes. *)
let roundtrip_req =
  QCheck.Test.make ~count:300 ~name:"wire: req round-trips canonically" arb_req (fun m ->
      let bytes = Wire.encode_req m in
      match Wire.decode_req bytes with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok m' ->
          if Wire.encode_req m' <> bytes then
            QCheck.Test.fail_reportf "re-encode diverged";
          true)

let roundtrip_resp =
  QCheck.Test.make ~count:300 ~name:"wire: resp round-trips canonically" arb_resp
    (fun m ->
      let bytes = Wire.encode_resp m in
      match Wire.decode_resp bytes with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok m' ->
          if Wire.encode_resp m' <> bytes then
            QCheck.Test.fail_reportf "re-encode diverged";
          true)

(* Mirror of the chaos codec cut property: a strict prefix of one frame
   is never a frame and never an error — the reader must keep waiting. *)
let every_cut =
  QCheck.Test.make ~count:100 ~name:"wire: every byte-prefix cut is Incomplete" arb_req
    (fun m ->
      let framed = Wire.frame (Wire.encode_req m) in
      for cut = 0 to String.length framed - 1 do
        match Wire.unframe (String.sub framed 0 cut) ~pos:0 with
        | `Incomplete -> ()
        | `Frame _ -> QCheck.Test.fail_reportf "cut %d yielded a frame" cut
        | `Corrupt e -> QCheck.Test.fail_reportf "cut %d corrupt: %s" cut e
      done;
      (match Wire.unframe framed ~pos:0 with
      | `Frame (p, next) ->
          if p <> Wire.encode_req m then QCheck.Test.fail_reportf "payload changed";
          if next <> String.length framed then QCheck.Test.fail_reportf "bad next pos"
      | _ -> QCheck.Test.fail_reportf "whole frame did not parse");
      true)

(* Any single-bit flip lands in the length, the checksum or the payload;
   each is covered, so the reader must never surface a valid frame. *)
let bit_flip =
  QCheck.Test.make ~count:150 ~name:"wire: single-bit flips never yield a frame"
    QCheck.(pair arb_req (make QCheck.Gen.(pair small_nat small_nat)))
    (fun (m, (byte_seed, bit)) ->
      let framed = Bytes.of_string (Wire.frame (Wire.encode_req m)) in
      let i = byte_seed mod Bytes.length framed in
      let b = bit mod 8 in
      Bytes.set framed i (Char.chr (Char.code (Bytes.get framed i) lxor (1 lsl b)));
      (match Wire.unframe (Bytes.to_string framed) ~pos:0 with
      | `Corrupt _ | `Incomplete -> ()
      | `Frame _ -> QCheck.Test.fail_reportf "flip at byte %d bit %d undetected" i b);
      true)

let garbage_total =
  QCheck.Test.make ~count:300 ~name:"wire: decoders are total on garbage"
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun s ->
      (match Wire.decode_req s with Ok _ | Error _ -> ());
      (match Wire.decode_resp s with Ok _ | Error _ -> ());
      (match Wire.unframe s ~pos:0 with `Frame _ | `Incomplete | `Corrupt _ -> ());
      true)

let test_addr_strings () =
  (match Wire.addr_of_string "unix:/tmp/x.sock" with
  | Ok (Wire.Unix_sock p) -> Alcotest.(check string) "path" "/tmp/x.sock" p
  | _ -> Alcotest.fail "unix addr");
  (match Wire.addr_of_string "tcp:127.0.0.1:7070" with
  | Ok (Wire.Tcp (h, p)) ->
      Alcotest.(check string) "host" "127.0.0.1" h;
      Alcotest.(check int) "port" 7070 p
  | _ -> Alcotest.fail "tcp addr");
  (match Wire.addr_of_string "carrier-pigeon:coop" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad scheme accepted");
  List.iter
    (fun a ->
      match Wire.addr_of_string (Wire.addr_to_string a) with
      | Ok a' -> Alcotest.(check bool) "addr round-trip" true (a = a')
      | Error e -> Alcotest.failf "addr round-trip: %s" e)
    [ Wire.Unix_sock "/tmp/y.sock"; Wire.Tcp ("localhost", 123) ]

(* --- shared workload fixture ------------------------------------------- *)

let fixture () =
  let schema = Workload.slice_schema ~methods:8 ~work:4 () in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  Workload.populate store ~per_class:2;
  (an, store)

let grid = CN.of_string "grid"

(* a Call on slice method [u<m>] of the first grid instance *)
let hot_call store m =
  let oid = List.hd (Store.extent store grid) in
  Exec.Call (oid, MN.of_string (Printf.sprintf "u%d" m), [ Value.Vint 1 ])

let mk_jobs store ~n =
  let jobs =
    Workload.slice_jobs (Rng.create 7) store ~txns:n ~actions_per_txn:3 ~hot_instances:2
  in
  Array.of_list (List.map snd jobs)

(* --- the job service ---------------------------------------------------- *)

let reject = Alcotest.testable (fun ppf (id, m) -> Format.fprintf ppf "%d:%s" id m) ( = )

let test_service_submit_drain () =
  let an, store = fixture () in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let config = { Par_engine.default_config with domains = 2; shards = 4 } in
  let svc = Par_engine.service_start ~config ~scheme ~store () in
  let jobs = mk_jobs store ~n:24 in
  let committed = Atomic.make 0 in
  Array.iter
    (fun actions ->
      match
        Par_engine.submit svc ~actions ~k:(fun st ->
            match st with
            | Par_engine.Job_committed _ -> Atomic.incr committed
            | Par_engine.Job_failed _ -> ())
      with
      | Par_engine.Accepted -> ()
      | Par_engine.Saturated | Par_engine.Closed -> Alcotest.fail "submit refused")
    jobs;
  Par_engine.service_drain svc;
  Alcotest.(check int) "all callbacks ran" 24 (Atomic.get committed);
  Alcotest.(check int) "in-flight empty" 0 (Par_engine.service_in_flight svc);
  let r = Par_engine.service_stop svc in
  Alcotest.(check int) "result commits" 24 r.Par_engine.commits;
  Alcotest.(check (list reject)) "no failures" [] r.Par_engine.failed

let test_service_admission_control () =
  (* Wedge both workers behind a lock held by an interactive txn, fill
     the queue, and watch the next submit bounce with [Saturated]. *)
  let an, store = fixture () in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let config = { Par_engine.default_config with domains = 2; shards = 4 } in
  let svc = Par_engine.service_start ~config ~queue_capacity:2 ~scheme ~store () in
  let it =
    match Par_engine.itxn_begin svc with
    | Ok it -> it
    | Error e -> Alcotest.failf "itxn_begin: %s" e
  in
  (match Par_engine.itxn_perform it (hot_call store 0) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "itxn_perform: %s" e);
  let done_ = Atomic.make 0 in
  let conflicting = [ hot_call store 0 ] in
  let submit () =
    Par_engine.submit svc ~actions:conflicting ~k:(fun _ -> Atomic.incr done_)
  in
  (* 2 jobs occupy the workers (blocked on the held lock)… *)
  for i = 1 to 2 do
    match submit () with
    | Par_engine.Accepted -> ()
    | _ -> Alcotest.failf "worker-bound submit %d refused" i
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Par_engine.service_backlog svc > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  Alcotest.(check int) "workers picked both jobs up" 0 (Par_engine.service_backlog svc);
  (* …2 more fill the queue… *)
  for i = 1 to 2 do
    match submit () with
    | Par_engine.Accepted -> ()
    | _ -> Alcotest.failf "queue-bound submit %d refused" i
  done;
  (* …and the next one is shed. *)
  (match submit () with
  | Par_engine.Saturated -> ()
  | Par_engine.Accepted -> Alcotest.fail "expected Saturated, got Accepted"
  | Par_engine.Closed -> Alcotest.fail "expected Saturated, got Closed");
  (match Par_engine.itxn_commit it with
  | Ok () -> ()
  | Error e -> Alcotest.failf "itxn_commit: %s" e);
  Par_engine.service_drain svc;
  Alcotest.(check int) "accepted jobs all completed" 4 (Atomic.get done_);
  let r = Par_engine.service_stop svc in
  (* 4 jobs + the interactive transaction *)
  Alcotest.(check int) "commits" 5 r.Par_engine.commits

let test_service_closed_after_stop () =
  let an, store = fixture () in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let config = { Par_engine.default_config with domains = 2; shards = 4 } in
  let svc = Par_engine.service_start ~config ~scheme ~store () in
  ignore (Par_engine.service_stop svc);
  match Par_engine.submit svc ~actions:[ hot_call store 0 ] ~k:(fun _ -> ()) with
  | Par_engine.Closed -> ()
  | Par_engine.Accepted | Par_engine.Saturated -> Alcotest.fail "submit after stop"

let test_itxn_rollback_unblocks () =
  (* The teardown guarantee at engine level: jobs stuck behind a
     session transaction's locks run to commit once it rolls back. *)
  let an, store = fixture () in
  let scheme = Tavcc_cc.Tav_modes.scheme an in
  let config = { Par_engine.default_config with domains = 2; shards = 4 } in
  let svc = Par_engine.service_start ~config ~scheme ~store () in
  let it =
    match Par_engine.itxn_begin svc with
    | Ok it -> it
    | Error e -> Alcotest.failf "itxn_begin: %s" e
  in
  (match Par_engine.itxn_perform it (hot_call store 1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "itxn_perform: %s" e);
  let committed = Atomic.make 0 in
  for _ = 1 to 3 do
    match
      Par_engine.submit svc
        ~actions:[ hot_call store 1 ]
        ~k:(function
          | Par_engine.Job_committed _ -> Atomic.incr committed
          | Par_engine.Job_failed _ -> ())
    with
    | Par_engine.Accepted -> ()
    | _ -> Alcotest.fail "submit refused"
  done;
  (* wait until at least one job is parked behind the itxn's lock *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Par_engine.service_waiting svc = [] && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  Alcotest.(check bool) "a job is waiting behind the itxn" true
    (Par_engine.service_waiting svc <> []);
  Par_engine.itxn_rollback it;
  Par_engine.service_drain svc;
  Alcotest.(check int) "blocked jobs committed after rollback" 3 (Atomic.get committed);
  Alcotest.(check (list (pair int (float 1.0)))) "no stranded waiters" []
    (Par_engine.service_waiting svc);
  let r = Par_engine.service_stop svc in
  Alcotest.(check int) "commits" 3 r.Par_engine.commits;
  Alcotest.(check int) "the rollback is an abort" 1 r.Par_engine.aborts

let test_itxn_unsupported_schemes () =
  let an, store = fixture () in
  Alcotest.(check bool) "tav interactive" true
    (Par_engine.interactive_supported (Tavcc_cc.Tav_modes.scheme an));
  Alcotest.(check bool) "tav-pre not interactive" false
    (Par_engine.interactive_supported (Tavcc_cc.Tav_preclaim.scheme an));
  let config = { Par_engine.default_config with domains = 1; shards = 2 } in
  let svc =
    Par_engine.service_start ~config ~scheme:(Tavcc_cc.Tav_preclaim.scheme an) ~store ()
  in
  (match Par_engine.itxn_begin svc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "preclaiming scheme accepted an interactive txn");
  ignore (Par_engine.service_stop svc)

(* --- end-to-end over a unix socket -------------------------------------- *)

let sock_counter = ref 0

let with_server ?(digest = "") ?(scheme_of = Tavcc_cc.Tav_modes.scheme) f =
  let an, store = fixture () in
  incr sock_counter;
  let path = Printf.sprintf "%s/tavcc-net-%d-%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !sock_counter
  in
  let addr = Wire.Unix_sock path in
  let cfg =
    {
      (Server.default_config ~addr ~scheme:(scheme_of an) ~store) with
      Server.digest;
      engine = { Par_engine.default_config with domains = 2; shards = 4 };
      drain_grace_s = 2.0;
    }
  in
  let srv = Server.start cfg in
  let finally () =
    Server.request_stop srv;
    ignore (Server.wait srv);
    if Sys.file_exists path then Sys.remove path
  in
  match f ~addr ~store ~srv with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let test_e2e_commits () =
  with_server (fun ~addr ~store ~srv:_ ->
      match Client.connect ~recv_timeout_s:10.0 ~addr () with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok (c, `Welcome (scheme, _)) ->
          Alcotest.(check string) "scheme name in Welcome" "tav" scheme;
          let jobs = mk_jobs store ~n:10 in
          Array.iteri
            (fun rq actions ->
              match Client.run c ~rq actions with
              | Ok () -> ()
              | Error e -> Alcotest.failf "run %d: %s" rq e)
            jobs;
          let seen = Array.make (Array.length jobs) false in
          for _ = 1 to Array.length jobs do
            match Client.recv c with
            | Ok (Wire.Reply { rq; status = Wire.Committed _; latency_us }) ->
                Alcotest.(check bool) "latency non-negative" true (latency_us >= 0);
                seen.(rq) <- true
            | Ok r -> Alcotest.failf "unexpected reply: %a" Wire.pp_resp r
            | Error e -> Alcotest.failf "recv: %s" e
          done;
          Array.iteri
            (fun rq ok -> if not ok then Alcotest.failf "no reply for rq %d" rq)
            seen;
          (* ping still answered after the batch *)
          (match Client.call c (Wire.Ping { rq = 99 }) with
          | Ok (Wire.Pong { rq }) -> Alcotest.(check int) "pong rq" 99 rq
          | Ok r -> Alcotest.failf "expected Pong, got %a" Wire.pp_resp r
          | Error e -> Alcotest.failf "ping: %s" e);
          Client.quit c)

let test_e2e_interactive () =
  with_server (fun ~addr ~store ~srv:_ ->
      match Client.connect ~recv_timeout_s:10.0 ~addr () with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok (c, _) ->
          let expect_status name req want =
            match Client.call c req with
            | Ok (Wire.Reply { status; _ }) when status = want -> ()
            | Ok r -> Alcotest.failf "%s: unexpected %a" name Wire.pp_resp r
            | Error e -> Alcotest.failf "%s: %s" name e
          in
          expect_status "begin" (Wire.Begin { rq = 0 }) Wire.Done;
          expect_status "stmt"
            (Wire.Stmt { rq = 1; action = hot_call store 2 })
            Wire.Done;
          expect_status "commit" (Wire.Commit { rq = 2 }) (Wire.Committed { restarts = 0 });
          (* protocol misuse: commit with nothing open is Failed, not fatal *)
          (match Client.call c (Wire.Commit { rq = 3 }) with
          | Ok (Wire.Reply { status = Wire.Failed _; _ }) -> ()
          | Ok r -> Alcotest.failf "stray commit: %a" Wire.pp_resp r
          | Error e -> Alcotest.failf "stray commit: %s" e);
          Client.quit c)

let test_e2e_abrupt_disconnect_releases_locks () =
  with_server (fun ~addr ~store ~srv ->
      (* client A opens a transaction, takes a lock, and vanishes *)
      (match Client.connect ~recv_timeout_s:10.0 ~addr () with
      | Error e -> Alcotest.failf "connect A: %s" e
      | Ok (a, _) ->
          (match Client.call a (Wire.Begin { rq = 0 }) with
          | Ok (Wire.Reply { status = Wire.Done; _ }) -> ()
          | _ -> Alcotest.fail "begin A");
          (match Client.call a (Wire.Stmt { rq = 1; action = hot_call store 3 }) with
          | Ok (Wire.Reply { status = Wire.Done; _ }) -> ()
          | _ -> Alcotest.fail "stmt A");
          Client.close a);
      (* the session teardown must roll A back; B's conflicting job can
         then only commit if the lock was actually released *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Server.session_count srv > 0 && Unix.gettimeofday () < deadline do
        Thread.delay 0.005
      done;
      Alcotest.(check int) "A's session torn down" 0 (Server.session_count srv);
      match Client.connect ~recv_timeout_s:10.0 ~addr () with
      | Error e -> Alcotest.failf "connect B: %s" e
      | Ok (b, _) -> (
          (match Client.run b ~rq:7 [ hot_call store 3 ] with
          | Ok () -> ()
          | Error e -> Alcotest.failf "run B: %s" e);
          match Client.recv b with
          | Ok (Wire.Reply { rq = 7; status = Wire.Committed _; _ }) -> Client.quit b
          | Ok r -> Alcotest.failf "B blocked on a stranded lock? got %a" Wire.pp_resp r
          | Error e -> Alcotest.failf "recv B: %s" e))

let test_e2e_handshake_refusals () =
  with_server ~digest:"right-digest" (fun ~addr ~store:_ ~srv:_ ->
      (* wrong digest *)
      (match Client.connect ~recv_timeout_s:10.0 ~digest:"wrong-digest" ~addr () with
      | Error msg ->
          Alcotest.(check bool) "digest named in refusal" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "digest mismatch accepted");
      (* matching digest still welcome *)
      (match Client.connect ~recv_timeout_s:10.0 ~digest:"right-digest" ~addr () with
      | Error e -> Alcotest.failf "matching digest refused: %s" e
      | Ok (c, _) -> Client.quit c);
      (* stale protocol version *)
      let raw = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect raw (Wire.sockaddr_of_addr addr);
      let io = Wire.Io.of_fd raw in
      (match
         Wire.Io.write io
           (Wire.encode_req (Wire.Hello { version = 99; digest = ""; client = "" }))
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write hello: %s" e);
      (match Wire.Io.read_frame io with
      | Ok payload -> (
          match Wire.decode_resp payload with
          | Ok (Wire.Err msg) ->
              Alcotest.(check bool) "version mismatch reported" true
                (String.length msg > 0)
          | Ok r -> Alcotest.failf "expected Err, got %a" Wire.pp_resp r
          | Error e -> Alcotest.failf "decode: %s" e)
      | Error _ -> Alcotest.fail "no Err for version mismatch");
      (try Unix.close raw with Unix.Unix_error _ -> ());
      (* raw garbage: the server answers Err and drops the session
         rather than crashing or hanging *)
      let raw = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect raw (Wire.sockaddr_of_addr addr);
      Unix.setsockopt_float raw Unix.SO_RCVTIMEO 10.0;
      let garbage = "ZZZZZZZZZZZZZZZZ this is not a frame" in
      let n = Unix.write_substring raw garbage 0 (String.length garbage) in
      Alcotest.(check int) "garbage written" (String.length garbage) n;
      let io = Wire.Io.of_fd raw in
      (match Wire.Io.read_frame io with
      | Ok payload -> (
          match Wire.decode_resp payload with
          | Ok (Wire.Err _) -> ()
          | Ok r -> Alcotest.failf "expected Err, got %a" Wire.pp_resp r
          | Error e -> Alcotest.failf "decode: %s" e)
      | Error _ ->
          (* also acceptable: the server hung up on us immediately *)
          ());
      try Unix.close raw with Unix.Unix_error _ -> ())

let suite =
  [
    QCheck_alcotest.to_alcotest roundtrip_req;
    QCheck_alcotest.to_alcotest roundtrip_resp;
    QCheck_alcotest.to_alcotest every_cut;
    QCheck_alcotest.to_alcotest bit_flip;
    QCheck_alcotest.to_alcotest garbage_total;
    Alcotest.test_case "addr strings parse and round-trip" `Quick test_addr_strings;
    Alcotest.test_case "service: submit + drain + stop" `Quick test_service_submit_drain;
    Alcotest.test_case "service: admission control sheds at capacity" `Quick
      test_service_admission_control;
    Alcotest.test_case "service: Closed after stop" `Quick test_service_closed_after_stop;
    Alcotest.test_case "itxn: rollback releases locks, unblocks jobs" `Quick
      test_itxn_rollback_unblocks;
    Alcotest.test_case "itxn: preclaiming scheme refused" `Quick
      test_itxn_unsupported_schemes;
    Alcotest.test_case "e2e: pipelined Run jobs all commit" `Quick test_e2e_commits;
    Alcotest.test_case "e2e: interactive begin/stmt/commit" `Quick test_e2e_interactive;
    Alcotest.test_case "e2e: abrupt disconnect mid-txn frees locks" `Quick
      test_e2e_abrupt_disconnect_releases_locks;
    Alcotest.test_case "e2e: handshake refusals (digest, version, garbage)" `Quick
      test_e2e_handshake_refusals;
  ]
