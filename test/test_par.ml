(* The multicore layer: sharded lock manager and domain-pool driver.

   Three groups:
   - S=1 equivalence: a [Shard_table] with one shard must be
     indistinguishable from the plain [Lock_table] on any trace — same
     grants, same wake-ups, same deadlock verdicts, same stats ledger;
   - the blocking layer's plumbing (registry, kill, park/wake) driven
     from real domains;
   - the parallel engine as a whole: every committed run must be
     conflict-serializable, and on the slice workload the final store
     state must equal the arithmetic sum of all committed increments —
     a lost update under any scheme fails the sum check. *)

open Tavcc_lock
open Tavcc_model
module LT = Lock_table
module ST = Tavcc_par.Shard_table
module Par_engine = Tavcc_par.Par_engine
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module History = Tavcc_txn.History
module FN = Name.Field
module MN = Name.Method

let res_i n = Resource.Instance (Oid.of_int n)

let rw_conflict (held : LT.req) (req : LT.req) =
  not (Compat.compatible Compat.rw held.LT.r_mode req.LT.r_mode)

let req txn res mode = { LT.r_txn = txn; r_res = res; r_mode = mode; r_hier = false; r_pred = None }

(* --- S=1: the sharded table is the lock table --- *)

(* Drive the same random trace at both tables with the discipline the
   engines obey (a blocked transaction issues nothing until granted or
   restarted) and compare every observable at every step. *)
let s1_trace_property seed =
  let rng = Rng.create seed in
  let lt = LT.create ~conflict:rw_conflict () in
  let st = ST.create ~shards:1 ~conflict:rw_conflict () in
  let txns = 6 and resources = 5 and steps = 120 in
  let blocked = Array.make (txns + 1) false in
  let check_consistent step =
    List.iter
      (fun r ->
        let key (q : LT.req) = (q.LT.r_txn, q.LT.r_mode) in
        let h1 = List.map key (LT.holders lt r) and h2 = List.map key (ST.holders st r) in
        let q1 = List.map key (LT.queued lt r) and q2 = List.map key (ST.queued st r) in
        if h1 <> h2 || q1 <> q2 then
          QCheck.Test.fail_reportf "step %d: resource state diverged" step)
      (List.init resources res_i);
    let d1 = LT.find_deadlock lt and d2 = ST.find_deadlock st in
    if Option.is_some d1 <> Option.is_some d2 then
      QCheck.Test.fail_reportf "step %d: deadlock verdicts diverged" step
  in
  for step = 1 to steps do
    let txn = 1 + Rng.int rng txns in
    if blocked.(txn) || Rng.chance rng 0.25 then begin
      (* Restart: drop everything, as the engines' abort path does. *)
      let n1 = List.map (fun (r : LT.req) -> r.LT.r_txn) (LT.release_all lt txn) in
      let n2 = List.map (fun (r : LT.req) -> r.LT.r_txn) (ST.release_all st txn) in
      if n1 <> n2 then QCheck.Test.fail_reportf "step %d: wake-ups diverged" step;
      blocked.(txn) <- false;
      List.iter (fun t -> blocked.(t) <- false) n1
    end
    else begin
      let r = req txn (res_i (Rng.int rng resources)) (if Rng.bool rng then Compat.write else Compat.read) in
      let o1 = LT.acquire lt r and o2 = ST.acquire st r in
      if o1 <> o2 then QCheck.Test.fail_reportf "step %d: outcomes diverged" step;
      if o1 = LT.Waiting then blocked.(txn) <- true
    end;
    check_consistent step
  done;
  let s1 = LT.copy_stats (LT.stats lt) and s2 = ST.stats st in
  if
    s1.LT.requests <> s2.LT.requests
    || s1.LT.immediate <> s2.LT.immediate
    || s1.LT.waits <> s2.LT.waits
    || s1.LT.conversions <> s2.LT.conversions
    || s1.LT.reacquires <> s2.LT.reacquires
    || s1.LT.granted_after_wait <> s2.LT.granted_after_wait
    || s1.LT.max_queue_depth <> s2.LT.max_queue_depth
  then QCheck.Test.fail_reportf "stats ledger diverged";
  true

let s1_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"one shard == plain lock table on random traces"
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
       s1_trace_property)

let test_shard_of_partitions () =
  let st = ST.create ~shards:4 ~conflict:rw_conflict () in
  Alcotest.(check int) "count" 4 (ST.shard_count st);
  for i = 0 to 63 do
    let s = ST.shard_of st (res_i i) in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "stable" s (ST.shard_of st (res_i i))
  done

let test_cross_shard_release () =
  (* Locks spread over every shard all come back in one release. *)
  let st = ST.create ~shards:4 ~conflict:rw_conflict () in
  for i = 0 to 15 do
    Alcotest.(check bool) "granted" true (ST.acquire st (req 1 (res_i i) Compat.write) = LT.Granted)
  done;
  Alcotest.(check int) "held 16" 16 (List.length (ST.locks_of st 1));
  ignore (ST.release_all st 1);
  Alcotest.(check int) "all gone" 0 (List.length (ST.locks_of st 1))

(* --- the pure cycle search --- *)

let test_find_cycle () =
  Alcotest.(check bool) "empty" true (ST.find_cycle_edges [] = None);
  Alcotest.(check bool) "dag" true (ST.find_cycle_edges [ (1, 2); (2, 3); (1, 3) ] = None);
  (match ST.find_cycle_edges [ (1, 2); (2, 3); (3, 1); (4, 1) ] with
  | Some c -> Alcotest.(check (list int)) "triangle" [ 1; 2; 3 ] (List.sort compare c)
  | None -> Alcotest.fail "missed the triangle");
  (match ST.find_cycle_edges ~from:4 [ (1, 2); (2, 1); (4, 5) ] with
  | Some _ -> Alcotest.fail "4 reaches no cycle"
  | None -> ());
  match ST.find_cycle_edges ~from:1 [ (1, 2); (2, 1) ] with
  | Some c -> Alcotest.(check (list int)) "two-cycle" [ 1; 2 ] (List.sort compare c)
  | None -> Alcotest.fail "missed the two-cycle"

(* --- registry and kill semantics --- *)

let test_kill_semantics () =
  let st = ST.create ~shards:2 ~conflict:rw_conflict () in
  ST.register st ~id:7 ~birth:7;
  Alcotest.(check bool) "first kill lands" true (ST.kill st ~victim:7 ST.Deadlock_victim);
  Alcotest.(check bool) "second is a no-op" false (ST.kill st ~victim:7 ST.Timed_out);
  (match ST.check_killed st 7 with
  | () -> Alcotest.fail "pending kill not raised"
  | exception ST.Aborted ST.Deadlock_victim -> ());
  (* Re-registering (the restart) clears the stale kill. *)
  ST.register st ~id:7 ~birth:7;
  ST.check_killed st 7;
  ST.finish st 7;
  Alcotest.(check bool) "finished txns are safe" false (ST.kill st ~victim:7 ST.Died);
  Alcotest.(check bool) "unknown ids are safe" false (ST.kill st ~victim:99 ST.Died)

let test_park_and_wake () =
  let st = ST.create ~shards:2 ~conflict:rw_conflict () in
  ST.register st ~id:1 ~birth:1;
  ST.register st ~id:2 ~birth:2;
  ST.acquire_blocking st ~policy:ST.Block (req 1 (res_i 0) Compat.write);
  let woke = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ST.acquire_blocking st ~policy:ST.Block (req 2 (res_i 0) Compat.write);
        Atomic.set woke true)
  in
  (* Give the waiter time to park, then hand over the lock. *)
  while ST.waiting_txns st = [] do Domain.cpu_relax () done;
  Alcotest.(check bool) "not woken early" false (Atomic.get woke);
  ignore (ST.release_all st 1);
  Domain.join d;
  Alcotest.(check bool) "woken by the grant" true (Atomic.get woke);
  Alcotest.(check int) "holds it now" 1 (List.length (ST.holds st 2 (res_i 0)))

let test_park_and_kill () =
  let st = ST.create ~shards:2 ~conflict:rw_conflict () in
  ST.register st ~id:1 ~birth:1;
  ST.register st ~id:2 ~birth:2;
  ST.acquire_blocking st ~policy:ST.Block (req 1 (res_i 0) Compat.write);
  let outcome = Atomic.make 0 in
  let d =
    Domain.spawn (fun () ->
        match ST.acquire_blocking st ~policy:ST.Block (req 2 (res_i 0) Compat.write) with
        | () -> Atomic.set outcome 1
        | exception ST.Aborted ST.Deadlock_victim -> Atomic.set outcome 2)
  in
  while ST.waiting_txns st = [] do Domain.cpu_relax () done;
  Alcotest.(check bool) "kill lands" true (ST.kill st ~victim:2 ST.Deadlock_victim);
  Domain.join d;
  Alcotest.(check int) "aborted in its own domain" 2 (Atomic.get outcome)

(* --- the engine: serializability and exact sums --- *)

let slice_field m =
  (* u<i> writes s<i> and nothing else. *)
  let s = MN.to_string m in
  FN.of_string ("s" ^ String.sub s 1 (String.length s - 1))

(* Expected final value of every (instance, field) slot: the initial
   value plus [work] * arg for every call, since each call body performs
   [work] increments of its own slice field. *)
let expected_sums store ~work jobs =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (_, actions) ->
      List.iter
        (function
          | Tavcc_cc.Exec.Call (oid, m, [ Value.Vint v ]) ->
              let key = (oid, slice_field m) in
              let base =
                match Hashtbl.find_opt tbl key with
                | Some x -> x
                | None -> (
                    match Store.read store oid (slice_field m) with
                    | Value.Vint x -> x
                    | _ -> Alcotest.fail "non-int slice field")
              in
              Hashtbl.replace tbl key (base + (work * v))
          | _ -> Alcotest.fail "unexpected action shape")
        actions)
    jobs;
  tbl

let check_sums store tbl =
  Hashtbl.iter
    (fun (oid, f) expect ->
      match Store.read store oid f with
      | Value.Vint got ->
          if got <> expect then
            Alcotest.failf "%a.%a = %d, expected %d (lost update)" Oid.pp oid FN.pp f got
              expect
      | _ -> Alcotest.fail "non-int slice field")
    tbl

let run_slice ?(policy = Engine.Detect) ?(domains = 4) ?(check = true) ~scheme_of ~seed
    ~txns () =
  let work = 4 in
  let schema = Workload.slice_schema ~methods:8 ~work () in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  Workload.populate store ~per_class:2;
  let jobs =
    Workload.slice_jobs (Rng.create seed) store ~txns ~actions_per_txn:3 ~hot_instances:2
  in
  let config =
    { Par_engine.default_config with domains; policy; record_history = check; shards = 4 }
  in
  (* Snapshot the expectations before the run mutates the store. *)
  let sums = expected_sums store ~work jobs in
  let r = Par_engine.run ~config ~scheme:(scheme_of an) ~store ~jobs () in
  (r, store, sums, jobs)

let engine_property scheme_of seed =
  let txns = 40 in
  let r, store, sums, _ = run_slice ~scheme_of ~seed ~txns () in
  if r.Par_engine.failed <> [] then QCheck.Test.fail_reportf "transactions failed";
  if r.Par_engine.commits <> txns then
    QCheck.Test.fail_reportf "committed %d of %d" r.Par_engine.commits txns;
  if not (Par_engine.serializable r) then QCheck.Test.fail_reportf "not serializable";
  check_sums store sums;
  true

let engine_qcheck name scheme_of =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
       (engine_property scheme_of))

let test_policies_complete () =
  List.iter
    (fun policy ->
      List.iter
        (fun (name, scheme_of) ->
          let r, store, sums, _ =
            run_slice ~policy ~scheme_of ~seed:7 ~txns:32 ()
          in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s commits" (Engine.policy_name policy) name)
            32 r.Par_engine.commits;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s serializable" (Engine.policy_name policy) name)
            true
            (Par_engine.serializable r);
          check_sums store sums)
        [ ("rw-msg", Tavcc_cc.Rw_instance.scheme); ("tav", Tavcc_cc.Tav_modes.scheme) ])
    [ Engine.Detect; Engine.Wound_wait; Engine.Wait_die; Engine.No_wait; Engine.Timeout 20 ]

let test_differential_vs_step_engine () =
  (* The same jobs through the step simulator and the domain pool must
     land the store in the same state: both are serializable executions
     of commutative increments, so any divergence is a lost or doubled
     update in one of the engines. *)
  List.iter
    (fun (name, scheme_of) ->
      let run_par () =
        let r, store, _, _ = run_slice ~scheme_of ~seed:11 ~txns:30 () in
        Alcotest.(check int) (name ^ " par commits") 30 r.Par_engine.commits;
        store
      in
      let run_step () =
        let schema = Workload.slice_schema ~methods:8 ~work:4 () in
        let an = Tavcc_core.Analysis.compile schema in
        let store = Store.create schema in
        Workload.populate store ~per_class:2;
        let jobs =
          Workload.slice_jobs (Rng.create 11) store ~txns:30 ~actions_per_txn:3
            ~hot_instances:2
        in
        let r = Engine.run ~scheme:(scheme_of an) ~store ~jobs () in
        Alcotest.(check int) (name ^ " step commits") 30 r.Engine.commits;
        store
      in
      let s_par = run_par () and s_step = run_step () in
      let grid = Name.Class.of_string "grid" in
      List.iter2
        (fun o1 o2 ->
          for i = 0 to Store.field_count s_par o1 - 1 do
            if Store.read_idx s_par o1 i <> Store.read_idx s_step o2 i then
              Alcotest.failf "%s: stores diverged at %a field %d" name Oid.pp o1 i
          done)
        (Store.extent s_par grid) (Store.extent s_step grid))
    [ ("rw-msg", Tavcc_cc.Rw_instance.scheme); ("tav", Tavcc_cc.Tav_modes.scheme) ]

let test_single_domain_degenerates () =
  (* domains=1 is a plain sequential run: no conflicts are even possible. *)
  let r, store, sums, _ =
    run_slice ~domains:1 ~scheme_of:Tavcc_cc.Rw_instance.scheme ~seed:3 ~txns:20 ()
  in
  Alcotest.(check int) "commits" 20 r.Par_engine.commits;
  Alcotest.(check int) "no aborts" 0 r.Par_engine.aborts;
  Alcotest.(check bool) "serializable" true (Par_engine.serializable r);
  check_sums store sums

let suite =
  [
    Alcotest.test_case "shard_of partitions stably" `Quick test_shard_of_partitions;
    Alcotest.test_case "release spans all shards" `Quick test_cross_shard_release;
    Alcotest.test_case "cycle search on edge lists" `Quick test_find_cycle;
    Alcotest.test_case "kill and registry semantics" `Quick test_kill_semantics;
    Alcotest.test_case "park until the grant arrives" `Quick test_park_and_wake;
    Alcotest.test_case "kill wakes a parked waiter" `Quick test_park_and_kill;
    s1_equivalence;
    engine_qcheck "par run: all commit, serializable, exact sums (tav)"
      Tavcc_cc.Tav_modes.scheme;
    engine_qcheck "par run: all commit, serializable, exact sums (rw-msg)"
      Tavcc_cc.Rw_instance.scheme;
    Alcotest.test_case "every policy completes the contended run" `Quick
      test_policies_complete;
    Alcotest.test_case "par and step engines agree on the final store" `Quick
      test_differential_vs_step_engine;
    Alcotest.test_case "one domain degenerates to sequential" `Quick
      test_single_domain_degenerates;
  ]
