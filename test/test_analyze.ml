(* The compile-time conflict analyzer: spans, provenance, diagnostics and
   the simulator cross-check of the escalation predictions. *)

open Tavcc_model
open Tavcc_lang
open Tavcc_core
open Tavcc_analyze
open Helpers

let pos line col = { Token.line; col }
let pos_opt : Token.pos option Alcotest.testable =
  Alcotest.testable
    (Format.pp_print_option Token.pp_pos)
    (Option.equal (fun a b -> a.Token.line = b.Token.line && a.Token.col = b.Token.col))

(* --- spans threaded from the parser --- *)

let span_src =
  "class a is\n\
  \  fields\n\
  \    f : integer;\n\
  \  method m(p) is\n\
  \    f := f + p;\n\
  \    if f > 0 then\n\
  \      send m(p) to self;\n\
  \    end\n\
  \  end\n\
   end\n"

let test_stmt_spans () =
  let schema = schema_of_source span_src in
  let md = Option.get (Schema.method_def_in schema (cn "a") (mn "m")) in
  match md.Schema.m_body with
  | [ s1; s2 ] ->
      Alcotest.check pos_opt "assign span" (Some (pos 5 5)) (Ast.stmt_pos s1);
      Alcotest.check pos_opt "if span" (Some (pos 6 5)) (Ast.stmt_pos s2);
      (match Ast.strip_stmt s2 with
      | Ast.If (_, [ t1 ], []) -> (
          Alcotest.check pos_opt "nested send span" (Some (pos 7 7)) (Ast.stmt_pos t1);
          match Ast.strip_stmt t1 with
          | Ast.Send_stmt m ->
              Alcotest.check pos_opt "msg_pos of the send keyword" (Some (pos 7 7))
                m.Ast.msg_pos
          | _ -> Alcotest.fail "expected a send statement")
      | _ -> Alcotest.fail "expected an if with one then-statement")
  | _ -> Alcotest.fail "expected two statements"

let test_spans_are_transparent () =
  let schema = schema_of_source span_src in
  let md = Option.get (Schema.method_def_in schema (cn "a") (mn "m")) in
  let stripped = Ast.strip_body md.Schema.m_body in
  Alcotest.check pos_opt "strip removes locators" None
    (Ast.stmt_pos (List.hd stripped));
  Alcotest.check body "equality is span-agnostic" md.Schema.m_body stripped

let test_extraction_provenance () =
  let schema = schema_of_source span_src in
  let ex = Extraction.build schema in
  Alcotest.check pos_opt "first write of f" (Some (pos 5 5))
    (Extraction.first_field_pos ex (cn "a") (mn "m") (fn "f") Mode.Write);
  match Extraction.send_sites ex (cn "a") (mn "m") with
  | [ { Extraction.sk_kind = Extraction.Sk_dsc m; sk_pos } ] ->
      Alcotest.check method_name "self-send target" (mn "m") m;
      Alcotest.check pos_opt "self-send position" (Some (pos 7 7)) sk_pos
  | _ -> Alcotest.fail "expected exactly one simple self-send"

let test_check_error_positions () =
  let schema =
    build_of_source
      "class a is\n  fields\n    f : integer;\n  method m is\n    g := 1;\n  end\nend\n"
  in
  match Check.check schema with
  | Ok () -> Alcotest.fail "expected a check error"
  | Error [ e ] ->
      Alcotest.check pos_opt "error carries the statement position" (Some (pos 5 5))
        e.Check.ce_pos;
      let rendered = Format.asprintf "%a" Check.pp_error e in
      Alcotest.(check bool) "rendering leads with line:col" true
        (contains rendered "5:5: a.m:")
  | Error _ -> Alcotest.fail "expected exactly one check error"

(* --- Figure 1: the known escalation pair and pseudo-conflicts --- *)

let sorted_pairs l =
  List.sort compare
    (List.map
       (fun (m, m') ->
         let a = Name.Method.to_string m and b = Name.Method.to_string m' in
         if a <= b then (a, b) else (b, a))
       l)

let test_figure1_escalation_sites () =
  let an = Paper_example.analysis () in
  let sites = Lint.escalation_sites an in
  Alcotest.(check (list (pair class_name method_name)))
    "exactly the two m1 entries"
    [ (cn "c1", mn "m1"); (cn "c2", mn "m1") ]
    (Site.Set.elements sites)

let test_figure1_escalation_provenance () =
  let an = Paper_example.analysis () in
  let r = Lint.analyze an in
  let esc site =
    List.find
      (fun d -> d.Diag.d_code = Diag.Esc001 && Site.equal d.Diag.d_site site)
      r.Lint.r_diags
  in
  let d1 = esc (cn "c1", mn "m1") in
  Alcotest.check pos_opt "c1.m1 blamed at its first self-send" (Some (pos 17 5))
    d1.Diag.d_pos;
  (match List.rev d1.Diag.d_notes with
  | last :: _ ->
      Alcotest.check pos_opt "the widening write of f1 in c1.m2" (Some (pos 23 7))
        last.Diag.n_pos
  | [] -> Alcotest.fail "expected provenance notes");
  let d2 = esc (cn "c2", mn "m1") in
  Alcotest.check pos_opt "the inherited entry blames the same send" (Some (pos 17 5))
    d2.Diag.d_pos

let test_figure1_pseudo_conflicts () =
  let an = Paper_example.analysis () in
  let pairs_of c =
    sorted_pairs
      (List.filter_map
         (fun (c', p) -> if Name.Class.equal c c' then Some p else None)
         (Lint.pseudo_conflicts an))
  in
  Alcotest.(check (list (pair string string)))
    "c1 pairs"
    [ ("m1", "m3"); ("m2", "m3") ]
    (pairs_of (cn "c1"));
  Alcotest.(check (list (pair string string)))
    "c2 pairs (m2/m4 is the paper's example)"
    [ ("m1", "m3"); ("m1", "m4"); ("m2", "m3"); ("m2", "m4"); ("m3", "m4") ]
    (pairs_of (cn "c2"));
  Alcotest.(check (list (pair string string))) "c3 has none" [] (pairs_of (cn "c3"))

let test_figure1_m2_m4_diag () =
  let an = Paper_example.analysis () in
  let r = Lint.analyze an in
  let d =
    List.find
      (fun d ->
        d.Diag.d_code = Diag.Pcf001
        && Site.equal d.Diag.d_site (cn "c2", mn "m2")
        && contains d.Diag.d_msg "m4")
      r.Lint.r_diags
  in
  Alcotest.check pos_opt "anchored at m4's write of f6" (Some (pos 48 7)) d.Diag.d_pos;
  Alcotest.(check bool) "suggests decomposing into field groups" true
    (contains d.Diag.d_msg "field groups")

let test_figure1_blame_chain () =
  let an = Paper_example.analysis () in
  let ch =
    List.find
      (fun c -> Name.Field.equal c.Blame.c_field (fn "f1"))
      (Blame.widened an (cn "c2") (mn "m1"))
  in
  Alcotest.check mode "dav mode" Mode.Null ch.Blame.c_dav_mode;
  Alcotest.check mode "tav mode" Mode.Write ch.Blame.c_tav_mode;
  Alcotest.check site "sink is the inherited writer" (cn "c1", mn "m2") ch.Blame.c_sink;
  Alcotest.(check (list site))
    "chain passes through the override"
    [ (cn "c2", mn "m2"); (cn "c1", mn "m2") ]
    (List.map (fun s -> s.Blame.s_to) ch.Blame.c_steps);
  Alcotest.check pos_opt "the write itself" (Some (pos 23 7)) ch.Blame.c_access_pos

let test_figure1_prl002 () =
  let an = Paper_example.analysis () in
  let r = Lint.analyze an in
  match List.filter (fun d -> d.Diag.d_code = Diag.Prl002) r.Lint.r_diags with
  | [ d ] ->
      Alcotest.check site "only c2.m4's guarded write" (cn "c2", mn "m4") d.Diag.d_site;
      Alcotest.check pos_opt "anchored at the if" (Some (pos 47 5)) d.Diag.d_pos;
      Alcotest.(check bool) "names the widened field" true (contains d.Diag.d_msg "f6")
  | ds -> Alcotest.failf "expected one PRL002, got %d" (List.length ds)

(* --- DYN001 and PRE001 on dedicated schemas --- *)

let test_dyn001 () =
  let schema =
    schema_of_source
      "class a is\n\
      \  fields\n\
      \    f : integer;\n\
      \  method ma(p) is\n\
      \    send poke(p) to p;\n\
      \  end\n\
      \  method poke(p) is\n\
      \    f := p;\n\
      \  end\n\
       end\n"
  in
  let r = Lint.analyze (Analysis.compile schema) in
  match List.filter (fun d -> d.Diag.d_code = Diag.Dyn001) r.Lint.r_diags with
  | [ d ] ->
      Alcotest.check site "the dynamic sender" (cn "a", mn "ma") d.Diag.d_site;
      Alcotest.check pos_opt "the send statement" (Some (pos 5 5)) d.Diag.d_pos
  | ds -> Alcotest.failf "expected one DYN001, got %d" (List.length ds)

let test_pre001 () =
  let schema =
    schema_of_source
      "class a is\n\
      \  fields\n\
      \    other : b;\n\
      \  method ma(p) is\n\
      \    send mb(p) to other;\n\
      \  end\n\
       end\n\
       class b is\n\
      \  fields\n\
      \    peer : a;\n\
      \  method mb(p) is\n\
      \    send ma(p) to peer;\n\
      \  end\n\
       end\n"
  in
  let r = Lint.analyze (Analysis.compile schema) in
  (match List.filter (fun d -> d.Diag.d_code = Diag.Pre001) r.Lint.r_diags with
  | [ d ] ->
      Alcotest.(check bool) "names both classes" true
        (contains d.Diag.d_msg "a, b");
      Alcotest.(check bool) "has cross-send provenance" true (d.Diag.d_notes <> [])
  | ds -> Alcotest.failf "expected one PRE001, got %d" (List.length ds));
  Alcotest.(check bool) "cycle is an error" true
    (Lint.max_severity r = Some Diag.Error)

let test_figure1_no_errors () =
  let r = Lint.analyze (Paper_example.analysis ()) in
  Alcotest.(check int) "no error-severity diagnostics" 0 (Lint.count r Diag.Error);
  Alcotest.(check bool) "but warnings exist" true (Lint.count r Diag.Warning > 0)

(* --- ADT001: counter/escrow ADT candidates --- *)

let stats_src =
  "class stats is\n\
  \  fields\n\
  \    hits : integer;\n\
  \    misses : integer;\n\
  \  method hit(p1) is\n\
  \    hits := hits + p1;\n\
  \  end\n\
  \  method miss is\n\
  \    misses := misses + 1;\n\
  \  end\n\
  \  method correct(p1) is\n\
  \    hits := hits - p1;\n\
  \    misses := misses + p1;\n\
  \  end\n\
  \  method ratio is\n\
  \    return hits - misses;\n\
  \  end\n\
   end\n"

let test_adt001_positive () =
  let r = Lint.analyze (Analysis.compile (schema_of_source stats_src)) in
  let adts = List.filter (fun d -> d.Diag.d_code = Diag.Adt001) r.Lint.r_diags in
  Alcotest.(check int) "both counters flagged" 2 (List.length adts);
  let d = List.find (fun d -> contains d.Diag.d_msg "write to hits") adts in
  Alcotest.check pos_opt "anchored at the first bump" (Some (pos 6 5)) d.Diag.d_pos;
  Alcotest.(check int) "one note per bump" 2 (List.length d.Diag.d_notes);
  Alcotest.(check bool) "ADT001 is informational" true (d.Diag.d_severity = Diag.Info)

let test_adt001_negative () =
  let r =
    Lint.analyze
      (Analysis.compile
         (schema_of_source
            "class stats is\n\
            \  fields\n\
            \    hits : integer;\n\
            \  method hit(p1) is\n\
            \    hits := hits + p1;\n\
            \  end\n\
            \  method reset is\n\
            \    hits := 0;\n\
            \  end\n\
             end\n"))
  in
  Alcotest.(check int) "a plain overwrite disqualifies the field" 0
    (List.length (List.filter (fun d -> d.Diag.d_code = Diag.Adt001) r.Lint.r_diags))

let test_adt001_shadowing () =
  (* the only bump targets a local shadowing the field *)
  let r =
    Lint.analyze
      (Analysis.compile
         (schema_of_source
            "class a is\n\
            \  fields\n\
            \    n : integer;\n\
            \  method m(p1) is\n\
            \    var n := p1;\n\
            \    n := n + 1;\n\
            \  end\n\
             end\n"))
  in
  Alcotest.(check int) "shadowed writes are not field writes" 0
    (List.length (List.filter (fun d -> d.Diag.d_code = Diag.Adt001) r.Lint.r_diags))

let test_adt001_inherited () =
  let r =
    Lint.analyze
      (Analysis.compile
         (schema_of_source
            "class base is\n\
            \  fields\n\
            \    n : integer;\n\
             end\n\
             class derived extends base is\n\
            \  method bump(p1) is\n\
            \    n := n + p1;\n\
            \  end\n\
             end\n"))
  in
  match List.filter (fun d -> d.Diag.d_code = Diag.Adt001) r.Lint.r_diags with
  | [ d ] ->
      Alcotest.(check bool) "attributed to the declaring class" true
        (contains d.Diag.d_msg "declared by base");
      Alcotest.check site "sited at the bumping method" (cn "derived", mn "bump")
        d.Diag.d_site
  | ds -> Alcotest.failf "expected one ADT001, got %d" (List.length ds)

(* --- deterministic rendering order --- *)

let test_report_order_deterministic () =
  let r = Lint.analyze (Paper_example.analysis ()) in
  Alcotest.(check bool) "several diagnostics (not vacuous)" true
    (List.length r.Lint.r_diags > 3);
  Alcotest.(check bool) "report sorted by position-major render order" true
    (List.sort Diag.render_compare r.Lint.r_diags = r.Lint.r_diags)

(* --- the simulator cross-check --- *)

let test_crosscheck_e4 () =
  let o = Tavcc_sim.Crosscheck.run_e4 ~seed:42 ~txns:8 ~levels:3 () in
  Alcotest.(check bool) "observed deadlocks (not vacuous)" true (o.Tavcc_sim.Crosscheck.o_deadlocks > 0);
  Alcotest.(check bool) "entries were involved" true
    (o.Tavcc_sim.Crosscheck.o_observed <> []);
  Alcotest.(check (list site))
    "no statically-unpredicted escalation deadlock" []
    o.Tavcc_sim.Crosscheck.o_unpredicted

let prop_chain_no_false_negatives =
  QCheck.Test.make ~count:25 ~name:"E4 cascades: every deadlock predicted"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
    (fun seed ->
      let levels = 1 + (seed mod 4) in
      let txns = 2 + (seed / 7 mod 7) in
      Tavcc_sim.Crosscheck.(sound (run_e4 ~seed ~txns ~levels ())))

let prop_random_no_false_negatives =
  QCheck.Test.make ~count:25 ~name:"random schemas: every deadlock predicted"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
    (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let schema =
        Tavcc_sim.Workload.make_schema rng
          { Tavcc_sim.Workload.default_params with sp_depth = 2; sp_fanout = 2 }
      in
      let an = Analysis.compile schema in
      let classes = Schema.classes schema in
      let cls = List.nth classes (Tavcc_sim.Rng.int rng (List.length classes)) in
      let meths = Schema.methods schema cls in
      match meths with
      | [] -> true
      | _ ->
          let pick () =
            List.nth meths (Tavcc_sim.Rng.int rng (List.length meths))
          in
          let chosen = List.init (3 + Tavcc_sim.Rng.int rng 4) (fun _ -> pick ()) in
          Tavcc_sim.Crosscheck.(
            sound (run_single_instance ~seed ~an ~cls ~meths:chosen ())))

let suite =
  [
    case "statement and message spans" test_stmt_spans;
    case "spans are semantically transparent" test_spans_are_transparent;
    case "extraction provenance" test_extraction_provenance;
    case "check errors carry positions" test_check_error_positions;
    case "figure 1: escalation sites" test_figure1_escalation_sites;
    case "figure 1: escalation provenance" test_figure1_escalation_provenance;
    case "figure 1: pseudo-conflict pairs" test_figure1_pseudo_conflicts;
    case "figure 1: the m2/m4 diagnostic" test_figure1_m2_m4_diag;
    case "figure 1: blame chain for f1" test_figure1_blame_chain;
    case "figure 1: branch-forced widening" test_figure1_prl002;
    case "DYN001 on an untyped receiver" test_dyn001;
    case "PRE001 on a composition cycle" test_pre001;
    case "figure 1 lints clean of errors" test_figure1_no_errors;
    case "ADT001 on a pure counter" test_adt001_positive;
    case "ADT001 silent on a mixed writer" test_adt001_negative;
    case "ADT001 ignores shadowed locals" test_adt001_shadowing;
    case "ADT001 attributes inherited fields" test_adt001_inherited;
    case "report order is position-major" test_report_order_deterministic;
    case "cross-check: E4 deadlocks predicted" test_crosscheck_e4;
    QCheck_alcotest.to_alcotest prop_chain_no_false_negatives;
    QCheck_alcotest.to_alcotest prop_random_no_false_negatives;
  ]
