(* Fuzzing the analysis pipeline over randomly generated schemas,
   including multiple inheritance. *)

open Tavcc_model
open Tavcc_lang
open Tavcc_core
open Helpers

(* A random acyclic multiple-inheritance schema built directly as
   declarations: class k_i may inherit from up to two earlier classes;
   fields carry globally unique names (the model rejects diamonds
   otherwise); bodies mix reads, writes, self-sends and prefixed sends
   to random ancestors. *)
let random_mi_decls rng =
  let n_classes = 3 + Tavcc_sim.Rng.int rng 5 in
  let cls i = cn (Printf.sprintf "k%d" i) in
  let field i j = fn (Printf.sprintf "f%d_%d" i j) in
  let meths = [ mn "ma"; mn "mb"; mn "mc" ] in
  List.init n_classes (fun i ->
      let parents =
        if i = 0 then []
        else
          List.sort_uniq Name.Class.compare
            (List.filter_map
               (fun _ ->
                 if Tavcc_sim.Rng.chance rng 0.7 then Some (cls (Tavcc_sim.Rng.int rng i))
                 else None)
               [ (); () ])
      in
      let n_fields = 1 + Tavcc_sim.Rng.int rng 3 in
      let fields = List.init n_fields (fun j -> (field i j, Value.Tint)) in
      let body () =
        let stmts = ref [] in
        (* own-field accesses *)
        for j = 0 to n_fields - 1 do
          if Tavcc_sim.Rng.bool rng then
            stmts :=
              Ast.Assign
                ( Name.Field.to_string (field i j),
                  Ast.Binop (Ast.Add, Ast.Ident (Name.Field.to_string (field i j)), Ast.Ident "p1")
                )
              :: !stmts
        done;
        (* self-sends *)
        if Tavcc_sim.Rng.chance rng 0.6 then
          stmts :=
            Ast.Send_stmt
              { Ast.msg_prefix = None; msg_name = Tavcc_sim.Rng.pick rng meths;
                msg_args = [ Ast.Ident "p1" ]; msg_recv = Ast.Rself; msg_pos = None }
            :: !stmts;
        !stmts
      in
      let methods =
        List.filter_map
          (fun m ->
            if Tavcc_sim.Rng.chance rng 0.7 then
              Some { Schema.m_name = m; m_params = [ "p1" ]; m_body = body () }
            else None)
          meths
      in
      { Schema.c_name = cls i; c_parents = parents; c_fields = fields; c_methods = methods })

let prop_analysis_total =
  QCheck.Test.make ~count:150 ~name:"pipeline total on random MI schemas"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let decls = random_mi_decls rng in
      match Schema.build decls with
      | Error _ -> true (* C3 failures and friends are legal rejections *)
      | Ok schema ->
          let ex = Extraction.build schema in
          let an = Analysis.compile schema in
          let dep = Depgraph.build ex in
          List.for_all
            (fun c ->
              Modes_table.is_symmetric (Analysis.table an c)
              && Name.Method.Map.equal Access_vector.equal (Tav.compute ex c)
                   (Tav.compute_naive ex c)
              && List.for_all
                   (fun m -> Depgraph.reachable_classes dep c m <> [])
                   (Schema.methods schema c))
            (Schema.classes schema))

let prop_root_methods_missing_ok =
  (* Self-sends to methods a class does not understand must be dropped by
     the analysis, never crash it. *)
  QCheck.Test.make ~count:100 ~name:"dangling self-sends are ignored"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let body =
        [
          Ast.Send_stmt
            { Ast.msg_prefix = None;
              msg_name = mn (Printf.sprintf "ghost%d" (Tavcc_sim.Rng.int rng 5));
              msg_args = []; msg_recv = Ast.Rself; msg_pos = None };
        ]
      in
      let decls =
        [
          {
            Schema.c_name = cn "solo";
            c_parents = [];
            c_fields = [ (fn "f", Value.Tint) ];
            c_methods = [ { Schema.m_name = mn "m"; m_params = []; m_body = body } ];
          };
        ]
      in
      match Schema.build decls with
      | Error _ -> false
      | Ok schema ->
          let an = Analysis.compile schema in
          Access_vector.is_empty (Analysis.tav an (cn "solo") (mn "m")))

let prop_incremental_total_on_mi =
  QCheck.Test.make ~count:60 ~name:"incremental recompilation total on MI schemas"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      match Schema.build (random_mi_decls rng) with
      | Error _ -> true
      | Ok schema -> (
          let an = Analysis.compile schema in
          let classes = Schema.classes schema in
          let target = Tavcc_sim.Rng.pick rng classes in
          let md =
            { Schema.m_name = mn "zz_new"; m_params = [ "p1" ];
              m_body =
                (match Schema.fields schema target with
                | [] -> []
                | fd :: _ ->
                    [ Ast.Assign (Name.Field.to_string fd.Schema.f_name, Ast.Ident "p1") ]) }
          in
          match Incremental.recompile an (Incremental.Add_method (target, md)) with
          | Error _ -> true
          | Ok inc ->
              let full = Analysis.compile (Analysis.schema inc) in
              List.for_all
                (fun c ->
                  List.for_all
                    (fun m -> Access_vector.equal (Analysis.tav inc c m) (Analysis.tav full c m))
                    (Schema.methods (Analysis.schema inc) c))
                (Schema.classes (Analysis.schema inc))))

(* Fuzzing the lock manager under a rich conflict predicate — the Gray
   granularity matrix refined by range predicates, over class and instance
   resources — and cross-checking the incrementally maintained waits-for
   graph against the rebuilt-from-scratch reference after every
   operation. *)
let prop_lock_table_incremental_vs_rebuild =
  let open Tavcc_lock in
  QCheck.Test.make ~count:150 ~name:"lock table: incremental graph equals rebuild under gray+pred"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let conflict (held : Lock_table.req) (req : Lock_table.req) =
        (not (Compat.compatible Compat.gray held.Lock_table.r_mode req.Lock_table.r_mode))
        && Pred.overlaps held.Lock_table.r_pred req.Lock_table.r_pred
      in
      let t = Lock_table.create ~conflict () in
      let random_res () =
        if Tavcc_sim.Rng.bool rng then
          Resource.Class (cn (Printf.sprintf "c%d" (Tavcc_sim.Rng.int rng 3)))
        else Resource.Instance (Oid.of_int (Tavcc_sim.Rng.int rng 3))
      in
      let random_pred () =
        if Tavcc_sim.Rng.chance rng 0.3 then
          let lo = Tavcc_sim.Rng.int rng 10 in
          Some (Pred.make ~lo ~hi:(lo + Tavcc_sim.Rng.int rng 10) (fn "k"))
        else None
      in
      let ok = ref true in
      let check () =
        let inc = List.sort_uniq compare (Lock_table.waits_for_edges t) in
        let reb = List.sort_uniq compare (Lock_table.waits_for_edges_rebuild t) in
        if inc <> reb then ok := false;
        if
          Lock_table.find_deadlock t <> None
          <> (Lock_table.find_deadlock_rebuild t <> None)
        then ok := false
      in
      for _ = 1 to 100 do
        let txn = 1 + Tavcc_sim.Rng.int rng 6 in
        (match Tavcc_sim.Rng.int rng 5 with
        | 0 | 1 | 2 ->
            let r =
              { Lock_table.r_txn = txn; r_res = random_res ();
                r_mode = Tavcc_sim.Rng.int rng 5;
                r_hier = Tavcc_sim.Rng.bool rng; r_pred = random_pred () }
            in
            ignore (Lock_table.acquire t r)
        | 3 -> (
            (* duplicate re-acquire of a queued request *)
            match Lock_table.waiting_for t txn with
            | Some r -> ignore (Lock_table.acquire t r)
            | None -> ())
        | _ -> ignore (Lock_table.release_all t txn));
        check ()
      done;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_analysis_total;
    QCheck_alcotest.to_alcotest prop_root_methods_missing_ok;
    QCheck_alcotest.to_alcotest prop_incremental_total_on_mi;
    QCheck_alcotest.to_alcotest prop_lock_table_incremental_vs_rebuild;
  ]
