(* The observability layer: JSON round-trips, metric registries, sinks,
   the engine/lock/analysis/recovery instrumentation, and the Chrome
   trace exporter. *)

open Tavcc_model
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Engine_trace = Tavcc_sim.Engine_trace
module Workload = Tavcc_sim.Workload
module Lock_table = Tavcc_lock.Lock_table
module Json = Tavcc_obs.Json
module Metrics = Tavcc_obs.Metrics
module Sink = Tavcc_obs.Sink
module Trace = Tavcc_obs.Trace
open Helpers

(* --- Json --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.String "quote \" slash \\ newline \n tab \t unicode \xc3\xa9");
        ("empty", Json.Obj []);
        ("nested", Json.List [ Json.Obj [ ("k", Json.Int 1) ] ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse () =
  (match Json.of_string {| { "a" : [ 1, 2.5, "bA", true, null ] } |} with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "bA"; Json.Bool true; Json.Null ]) ]) -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_accessors () =
  let j = Json.Obj [ ("a", Json.Int 3); ("b", Json.List [ Json.String "x" ]) ] in
  Alcotest.(check (option int)) "member + to_int" (Some 3)
    (Option.bind (Json.member "a" j) Json.to_int);
  Alcotest.(check bool) "missing member" true (Json.member "zz" j = None);
  Alcotest.(check (option string)) "to_str in list" (Some "x")
    (match Option.bind (Json.member "b" j) Json.to_list with
    | Some [ s ] -> Json.to_str s
    | _ -> None)

(* --- Metrics --- *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check int) "same name, same counter" 5 (Metrics.value (Metrics.counter m "c"));
  let g = Metrics.gauge m "g" in
  Metrics.set g 7;
  Metrics.set g 3;
  Alcotest.(check int) "gauge tracks last" 3 (Metrics.gauge_value g);
  Alcotest.(check int) "gauge tracks max" 7 (Metrics.gauge_max g);
  check_raises_invalid "type clash" (fun () -> Metrics.histogram m "c");
  Alcotest.(check (list string)) "registration order" [ "c"; "g" ] (Metrics.names m)

let test_metrics_buckets () =
  Alcotest.(check int) "v<=0 in bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative in bucket 0" 0 (Metrics.bucket_of (-5));
  Alcotest.(check int) "1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "3" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "4" 3 (Metrics.bucket_of 4);
  Alcotest.(check int) "1023" 10 (Metrics.bucket_of 1023);
  Alcotest.(check int) "1024" 11 (Metrics.bucket_of 1024);
  (* Buckets partition the positives: [2^(i-1), 2^i - 1]. *)
  for i = 1 to 20 do
    let lo, hi = Metrics.bucket_bounds i in
    Alcotest.(check int) "lo lands in its bucket" i (Metrics.bucket_of lo);
    Alcotest.(check int) "hi lands in its bucket" i (Metrics.bucket_of hi);
    Alcotest.(check int) "buckets are adjacent" (2 * lo) (hi + 1)
  done

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 3; 1000 ];
  Alcotest.(check int) "count" 5 (Metrics.count h);
  Alcotest.(check int) "sum" 1005 (Metrics.sum h);
  Alcotest.(check int) "max" 1000 (Metrics.max_value h);
  Alcotest.(check (float 0.001)) "mean" 201.0 (Metrics.mean h);
  Alcotest.(check (list (triple int int int))) "nonempty buckets"
    [ (min_int, 0, 1); (1, 1, 2); (2, 3, 1); (512, 1023, 1) ]
    (Metrics.nonempty_buckets h)

let test_metrics_json_and_timer () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "hits") 3;
  Metrics.observe (Metrics.histogram m "lat") 5;
  let r = Metrics.time_us m "phase_us" (fun () -> 17) in
  Alcotest.(check int) "time_us returns the result" 17 r;
  Alcotest.(check int) "time_us observed once" 1
    (Metrics.count (Metrics.histogram m "phase_us"));
  let j = Metrics.to_json m in
  (* Everything we just emitted must survive a print/parse cycle. *)
  (match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "metrics json unparseable: %s" e
  | Ok j' -> Alcotest.(check bool) "metrics json round-trips" true (j = j'));
  (match Json.member "hits" j with
  | Some (Json.Obj fields) ->
      Alcotest.(check (option int)) "counter value" (Some 3)
        (Option.bind (List.assoc_opt "value" fields) Json.to_int)
  | _ -> Alcotest.fail "counter missing from json");
  match Json.member "lat" j with
  | Some (Json.Obj fields) ->
      Alcotest.(check (option int)) "histogram count" (Some 1)
        (Option.bind (List.assoc_opt "count" fields) Json.to_int);
      Alcotest.(check bool) "histogram buckets present" true
        (List.mem_assoc "buckets" fields)
  | _ -> Alcotest.fail "histogram missing from json"

(* --- Sink --- *)

let test_sink_behaviours () =
  Alcotest.(check bool) "null is null" true (Sink.is_null Sink.null);
  Sink.push Sink.null 1;
  Alcotest.(check int) "null records nothing" 0 (Sink.pushed Sink.null);
  check_raises_invalid "bad capacity" (fun () -> Sink.ring 0);
  let r = Sink.ring 3 in
  List.iter (Sink.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "ring keeps newest, oldest first" [ 3; 4; 5 ] (Sink.contents r);
  Alcotest.(check int) "pushed" 5 (Sink.pushed r);
  Alcotest.(check int) "dropped" 2 (Sink.dropped r);
  let seen = ref [] in
  let cb = Sink.callback (fun x -> seen := x :: !seen) in
  List.iter (Sink.push cb) [ 1; 2 ];
  Alcotest.(check (list int)) "callback streams in order" [ 1; 2 ] (List.rev !seen);
  Alcotest.(check (list int)) "callback holds nothing" [] (Sink.contents cb)

(* --- engine + lock instrumentation --- *)

let run_contended ?(policy = Engine.Detect) ?metrics ?(sink = Sink.null) ?(txns = 4) () =
  let schema = Workload.chain_schema ~levels:3 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let jobs =
    List.init txns (fun i -> (i + 1, [ Exec.Call (oid, mn "m3", [ Value.Vint 1 ]) ]))
  in
  let config =
    { Engine.default_config with seed = 5; yield_on_access = true; policy;
      max_restarts = 1000; sink; metrics }
  in
  Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs ()

let all_policies =
  [ Engine.Detect; Engine.Wound_wait; Engine.Wait_die; Engine.No_wait; Engine.Timeout 10 ]

let test_lock_stats_accounting () =
  (* The request ledger must balance for every policy: each acquire is an
     immediate grant, a new wait, or a queued-request no-op. *)
  List.iter
    (fun policy ->
      let r = run_contended ~policy () in
      let s = r.Engine.lock_stats in
      let name = Engine.policy_name policy in
      Alcotest.(check int)
        (name ^ ": requests = immediate + waits + reacquires")
        s.Lock_table.requests
        (s.Lock_table.immediate + s.Lock_table.waits + s.Lock_table.reacquires);
      (* The flat result fields are projections of the same snapshot. *)
      Alcotest.(check int) (name ^ ": lock_requests projection")
        s.Lock_table.requests r.Engine.lock_requests;
      Alcotest.(check int) (name ^ ": lock_waits projection")
        s.Lock_table.waits r.Engine.lock_waits;
      Alcotest.(check int) (name ^ ": lock_conversions projection")
        s.Lock_table.conversions r.Engine.lock_conversions;
      Alcotest.(check bool) (name ^ ": waits bound granted_after_wait") true
        (s.Lock_table.granted_after_wait <= s.Lock_table.waits);
      if s.Lock_table.waits > 0 then
        Alcotest.(check bool) (name ^ ": queue depth observed") true
          (s.Lock_table.max_queue_depth >= 1))
    all_policies

let test_engine_metrics () =
  let m = Metrics.create () in
  let r = run_contended ~metrics:m () in
  let c name = Metrics.value (Metrics.counter m name) in
  Alcotest.(check int) "commits counted" r.Engine.commits (c "engine.commits");
  Alcotest.(check int) "aborts counted" r.Engine.aborts (c "engine.aborts");
  Alcotest.(check int) "deadlocks counted" r.Engine.deadlocks (c "engine.deadlocks");
  Alcotest.(check int) "restarts counted" r.Engine.restarts (c "engine.restarts");
  Alcotest.(check int) "steps counted" r.Engine.scheduler_steps (c "engine.steps");
  Alcotest.(check int) "steps attributed to the policy" r.Engine.scheduler_steps
    (c "engine.steps.detect");
  let attempts = Metrics.histogram m "engine.attempt_steps" in
  Alcotest.(check int) "one attempt span per begin"
    (r.Engine.commits + r.Engine.aborts) (Metrics.count attempts);
  (* The lock table fed the same registry through the step clock. *)
  let wait_h = Metrics.histogram m "lock.wait_steps" in
  Alcotest.(check int) "wait latency observed per drained wait"
    r.Engine.lock_stats.Lock_table.granted_after_wait (Metrics.count wait_h);
  Alcotest.(check int) "conversion/plain split covers all waits"
    r.Engine.lock_waits
    (Metrics.value (Metrics.counter m "lock.waits_conversion")
    + Metrics.value (Metrics.counter m "lock.waits_plain"));
  Alcotest.(check int) "queue depth observed at each enqueue" r.Engine.lock_waits
    (Metrics.count (Metrics.histogram m "lock.queue_depth"));
  Alcotest.(check int) "cycle lengths observed" r.Engine.deadlocks
    (Metrics.count (Metrics.histogram m "lock.cycle_length"))

let test_engine_metrics_off_by_default () =
  let r = run_contended () in
  Alcotest.(check bool) "run works with no registry" true (r.Engine.commits > 0)

(* --- analysis + recovery instrumentation --- *)

let test_analysis_timers () =
  let m = Metrics.create () in
  ignore (Tavcc_core.Analysis.compile ~metrics:m (Workload.chain_schema ~levels:3));
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " recorded") true
        (Metrics.count (Metrics.histogram m name) >= 1))
    [ "analysis.extraction_us"; "analysis.lbr_us"; "analysis.tav_us"; "analysis.table_us" ]

let test_recovery_counters () =
  let open Tavcc_recovery in
  let schema =
    schema_of_source {|class item is fields a : integer; end|}
  in
  let store = Store.create schema in
  let o1 = Store.new_instance store (cn "item") ~init:[ (fn "a", Value.Vint 1) ] in
  let m = Metrics.create () in
  let wal = Wal.create ~metrics:m () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 42);
  Recovery.Manager.commit mgr 1;
  Recovery.Manager.begin_txn mgr 2;
  Recovery.Manager.write mgr ~txn:2 o1 (fn "a") (Value.Vint 7);
  Wal.flush wal;
  let c name = Metrics.value (Metrics.counter m name) in
  Alcotest.(check int) "appends counted" (Wal.length wal) (c "wal.appends");
  Alcotest.(check bool) "flushes counted" true (c "wal.flushes" >= 1);
  Recovery.Restart.recover ~metrics:m store snap (Wal.stable wal);
  Alcotest.(check int) "replayed counts the whole stable log"
    (List.length (Wal.stable wal)) (c "wal.replayed");
  Alcotest.(check bool) "redo applied" true (c "wal.redo_applied" >= 1);
  (* t2 is a loser: its update must be undone during replay. *)
  Alcotest.(check bool) "undo applied" true (c "wal.undo_applied" >= 1);
  Alcotest.check value "committed state" (Value.Vint 42) (Store.read store o1 (fn "a"))

(* --- the Chrome trace exporter --- *)

let test_trace_export_shape () =
  (* Acceptance: a seeded trace round-trips through the JSON parser and
     every event carries the mandatory trace-event fields. *)
  let sink = Sink.ring 100_000 in
  let r = run_contended ~sink () in
  let json = Engine_trace.to_json ~pid:3 r.Engine.events in
  let parsed =
    match Json.of_string (Json.to_string json) with
    | Ok p -> p
    | Error e -> Alcotest.failf "trace json unparseable: %s" e
  in
  Alcotest.(check bool) "identical after the round-trip" true (parsed = json);
  let events =
    match Json.to_list parsed with
    | Some l -> l
    | None -> Alcotest.fail "trace must be an array of events"
  in
  Alcotest.(check bool) "non-empty" true (events <> []);
  List.iter
    (fun e ->
      let field name = Json.member name e in
      (match Option.bind (field "ph") Json.to_str with
      | Some ("X" | "B" | "E" | "i" | "M") -> ()
      | _ -> Alcotest.fail "ph must be a known phase string");
      List.iter
        (fun name ->
          match Option.bind (field name) Json.to_int with
          | Some v -> Alcotest.(check bool) (name ^ " non-negative") true (v >= 0)
          | None -> Alcotest.failf "event missing %s" name)
        [ "ts"; "pid"; "tid" ];
      Alcotest.(check (option int)) "pid propagated" (Some 3)
        (Option.bind (field "pid") Json.to_int))
    events

let test_trace_export_semantics () =
  let sink = Sink.ring 100_000 in
  let r = run_contended ~sink () in
  let tr = Engine_trace.to_trace r.Engine.events in
  let count ph = List.length (List.filter (fun e -> e.Trace.ph = ph) tr) in
  Alcotest.(check int) "one complete span per attempt"
    (r.Engine.commits + r.Engine.aborts) (count Trace.Complete);
  Alcotest.(check int) "wait spans balance" (count Trace.Begin) (count Trace.End);
  Alcotest.(check int) "instants mark deadlocks" r.Engine.deadlocks (count Trace.Instant);
  (* Generations: each transaction's spans are t<id>#0, t<id>#1, ... *)
  let spans = List.filter (fun e -> e.Trace.ph = Trace.Complete) tr in
  List.iter
    (fun tid ->
      let names =
        List.filter_map
          (fun e -> if e.Trace.tid = tid then Some e.Trace.name else None)
          spans
      in
      List.iteri
        (fun gen name ->
          Alcotest.(check string) "generation naming"
            (Printf.sprintf "t%d#%d" tid gen) name)
        names;
      (* The last attempt of every transaction commits. *)
      match List.rev names with
      | last :: _ ->
          let e = List.find (fun e -> e.Trace.name = last && e.Trace.tid = tid) spans in
          Alcotest.(check (option string)) "final outcome" (Some "commit")
            (Option.bind (List.assoc_opt "outcome" e.Trace.args) Json.to_str)
      | [] -> Alcotest.fail "transaction left no spans")
    [ 1; 2; 3; 4 ]

let test_trace_export_unfinished () =
  (* A stream that ends mid-attempt still closes its span. *)
  let events = [ (0, Engine.Ev_begin 1); (5, Engine.Ev_blocked (1, {
      Lock_table.r_txn = 1; r_res = Tavcc_lock.Resource.Instance (Oid.of_int 0);
      r_mode = 0; r_hier = false; r_pred = None })) ]
  in
  let tr = Engine_trace.to_trace events in
  let spans = List.filter (fun e -> e.Trace.ph = Trace.Complete) tr in
  (match spans with
  | [ e ] ->
      Alcotest.(check (option string)) "marked unfinished" (Some "unfinished")
        (Option.bind (List.assoc_opt "outcome" e.Trace.args) Json.to_str);
      Alcotest.(check int) "closed at the last step" 5 (e.Trace.ts + e.Trace.dur)
  | _ -> Alcotest.fail "expected exactly one span");
  Alcotest.(check int) "dangling wait closed too" 1
    (List.length (List.filter (fun e -> e.Trace.ph = Trace.End) tr))

let test_metrics_domain_hammer () =
  (* Two domains hammer the same handles; every cell is an [Atomic.t],
     so nothing may be lost — exact totals, not approximations. *)
  let m = Metrics.create () in
  let c = Metrics.counter m "hammer.count" in
  let g = Metrics.gauge m "hammer.gauge" in
  let h = Metrics.histogram m "hammer.hist" in
  let per_domain = 100_000 in
  let body lo () =
    for i = lo to lo + per_domain - 1 do
      Metrics.incr c;
      Metrics.add c 2;
      Metrics.set g i;
      Metrics.observe h ((i - lo) land 1023)
    done
  in
  let d1 = Domain.spawn (body 1) and d2 = Domain.spawn (body 500_001) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost increments" (2 * per_domain * 3) (Metrics.value c);
  Alcotest.(check int) "gauge high-water mark" (500_000 + per_domain) (Metrics.gauge_max g);
  Alcotest.(check int) "no lost observations" (2 * per_domain) (Metrics.count h);
  let expect_sum = ref 0 in
  for j = 0 to per_domain - 1 do
    expect_sum := !expect_sum + (j land 1023)
  done;
  Alcotest.(check int) "exact histogram sum" (2 * !expect_sum) (Metrics.sum h);
  Alcotest.(check int) "exact histogram max" 1023 (Metrics.max_value h);
  (* Concurrent registration of the same names must converge on one cell. *)
  let r1 = Domain.spawn (fun () -> Metrics.counter m "hammer.reg") in
  let r2 = Domain.spawn (fun () -> Metrics.counter m "hammer.reg") in
  Metrics.incr (Domain.join r1);
  Metrics.incr (Domain.join r2);
  Alcotest.(check int) "one shared cell" 2 (Metrics.value (Metrics.counter m "hammer.reg"))

let suite =
  [
    case "json round-trip" test_json_roundtrip;
    case "json parser accepts and rejects" test_json_parse;
    case "json accessors" test_json_accessors;
    case "counters and gauges" test_metrics_counters_gauges;
    case "histogram bucket math" test_metrics_buckets;
    case "histogram aggregates" test_metrics_histogram;
    case "metrics json and timers" test_metrics_json_and_timer;
    case "sink behaviours" test_sink_behaviours;
    case "lock request ledger balances under every policy" test_lock_stats_accounting;
    case "engine metrics agree with the result" test_engine_metrics;
    case "metrics are opt-in" test_engine_metrics_off_by_default;
    case "analysis phase timers" test_analysis_timers;
    case "recovery counters" test_recovery_counters;
    case "trace export: perfetto shape round-trips" test_trace_export_shape;
    case "trace export: spans and generations" test_trace_export_semantics;
    case "trace export: unfinished attempts" test_trace_export_unfinished;
    case "two-domain hammer loses nothing" test_metrics_domain_hammer;
  ]
