(* The mvcc layer: version chains, the contention controller, the MVSG
   oracle extension, and the mvcc-tav scheme end to end.

   Groups:
   - version store mechanics: publication order, snapshot resolution,
     validation, and GC that never prunes a version an open snapshot
     still needs;
   - contention flips: lock aborts push an object optimistic,
     validation failures push it back;
   - the snapshot-eligibility classifier on the generated grid schema;
   - the History oracle's multi-version edges (a write-skew cycle must
     be caught, a properly ordered snapshot read must pass);
   - both engines running mvcc-tav on the mixed workload: everything
     commits, histories are serializable, snapshot transactions never
     abort, and the final state agrees with a plain strict-2PL run of
     the same jobs;
   - a chaos torture run with the version store enabled (crash matrix
     and version-chain oracles). *)

open Tavcc_model
module VS = Tavcc_mvcc.Version_store
module Contention = Tavcc_mvcc.Contention
module Mvcc_tav = Tavcc_mvcc.Mvcc_tav
module History = Tavcc_txn.History
module Scheme = Tavcc_cc.Scheme
module Engine = Tavcc_sim.Engine
module Par_engine = Tavcc_par.Par_engine
module Workload = Tavcc_sim.Workload
module Rng = Tavcc_sim.Rng
module Torture = Tavcc_chaos.Torture
module Fault = Tavcc_chaos.Fault
module CN = Name.Class
module FN = Name.Field
module MN = Name.Method

let oid n = Oid.of_int n
let f = FN.of_string "f"
let vi n = Value.Vint n
let no_live _ _ = vi (-1)

(* --- version store --- *)

let test_vs_publish_and_read () =
  let vs = VS.create () in
  Alcotest.(check int) "clock starts at 0" 0 (VS.now vs);
  (match VS.publish vs [ (oid 1, f, vi 10) ] with
  | Some 1 -> ()
  | other ->
      Alcotest.failf "first publish returned %s"
        (match other with Some n -> string_of_int n | None -> "None"));
  Alcotest.(check int) "clock advanced" 1 (VS.now vs);
  Alcotest.(check int) "latest_ts" 1 (VS.latest_ts vs (oid 1) f);
  ignore (VS.publish vs [ (oid 1, f, vi 20) ]);
  (* A snapshot between the publishes sees the old version. *)
  let got ts = VS.read_at vs (oid 1) f ~ts ~live:no_live in
  Alcotest.(check bool) "ts=1 sees v10" true (got 1 = (1, vi 10));
  Alcotest.(check bool) "ts=2 sees v20" true (got 2 = (2, vi 20));
  (* An empty chain captures the base version from the live slot. *)
  Alcotest.(check bool) "base capture" true (VS.read_at vs (oid 9) f ~ts:2 ~live:(fun _ _ -> vi 77) = (0, vi 77))

let test_vs_validation () =
  let vs = VS.create () in
  ignore (VS.publish vs [ (oid 1, f, vi 1) ]);
  let ran = ref false in
  (match VS.publish vs ~validate:(fun () -> false) ~on_ok:(fun () -> ran := true)
           [ (oid 1, f, vi 2) ]
  with
  | None -> ()
  | Some _ -> Alcotest.fail "failed validation still published");
  Alcotest.(check bool) "write-back skipped" false !ran;
  Alcotest.(check int) "clock unchanged" 1 (VS.now vs);
  (match VS.publish vs ~validate:(fun () -> true) ~on_ok:(fun () -> ran := true)
           [ (oid 1, f, vi 2) ]
  with
  | Some 2 -> ()
  | _ -> Alcotest.fail "passing validation must publish at the next tick");
  Alcotest.(check bool) "write-back ran" true !ran

let test_vs_gc_respects_snapshots () =
  let vs = VS.create ~gc_keep:2 () in
  ignore (VS.publish vs [ (oid 1, f, vi 1) ]);
  let snap = VS.begin_snapshot vs in
  Alcotest.(check int) "snapshot at 1" 1 snap;
  (* Publish far past the bound: versions the snapshot needs survive. *)
  for i = 2 to 10 do
    ignore (VS.publish vs [ (oid 1, f, vi i) ])
  done;
  Alcotest.(check bool) "snapshot still resolves" true
    (VS.read_at vs (oid 1) f ~ts:snap ~live:no_live = (1, vi 1));
  Alcotest.(check bool) "newest unaffected" true
    (VS.read_at vs (oid 1) f ~ts:10 ~live:no_live = (10, vi 10));
  VS.end_snapshot vs snap;
  (* With the watermark released, the next publish prunes the chain down
     to the bound (plus the floor version). *)
  ignore (VS.publish vs [ (oid 1, f, vi 11) ]);
  let chain =
    match VS.dump vs with
    | [ (_, _, versions) ] -> versions
    | _ -> Alcotest.fail "expected one chain"
  in
  Alcotest.(check bool) "chain pruned" true (List.length chain <= 4);
  Alcotest.(check bool) "newest kept" true (List.hd chain = (11, vi 11))

let test_vs_reset () =
  let vs = VS.create () in
  ignore (VS.publish vs [ (oid 1, f, vi 1) ]);
  ignore (VS.begin_snapshot vs);
  VS.reset vs;
  Alcotest.(check int) "clock rewound" 0 (VS.now vs);
  Alcotest.(check bool) "chains dropped" true (VS.dump vs = [])

(* --- contention controller --- *)

let test_contention_flips () =
  let c = Contention.create Contention.default_cfg in
  let o = oid 5 in
  Alcotest.(check bool) "starts pessimistic" false (Contention.optimistic c o);
  Contention.note_lock_abort c o;
  Contention.note_lock_abort c o;
  Alcotest.(check bool) "below threshold" false (Contention.optimistic c o);
  Contention.note_lock_abort c o;
  Alcotest.(check bool) "flips optimistic" true (Contention.optimistic c o);
  Alcotest.(check int) "counted" 1 (Contention.optimistic_objects c);
  Contention.note_occ_failure c o;
  Contention.note_occ_failure c o;
  Contention.note_occ_failure c o;
  Alcotest.(check bool) "flips back" false (Contention.optimistic c o);
  Contention.note_lock_abort c (oid 6);
  Alcotest.(check bool) "objects are independent" false (Contention.optimistic c (oid 6))

let test_contention_disabled () =
  let c = Contention.create { Contention.default_cfg with enabled = false } in
  for _ = 1 to 10 do Contention.note_lock_abort c (oid 1) done;
  Alcotest.(check bool) "never optimistic when disabled" false
    (Contention.optimistic c (oid 1))

(* --- the classifier --- *)

let test_classifier_on_grid () =
  let schema = Workload.slice_schema ~readers:4 ~methods:4 ~work:2 () in
  let an = Tavcc_core.Analysis.compile schema in
  let grid = CN.of_string "grid" in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "r%d is read-only" i)
      true
      (Mvcc_tav.read_only_method an grid (MN.of_string (Printf.sprintf "r%d" i)));
    Alcotest.(check bool)
      (Printf.sprintf "u%d is not" i)
      false
      (Mvcc_tav.read_only_method an grid (MN.of_string (Printf.sprintf "u%d" i)))
  done;
  Alcotest.(check bool) "unknown method is not" false
    (Mvcc_tav.read_only_method an grid (MN.of_string "nope"))

(* --- the MVSG oracle --- *)

let record_all h ops = List.iter (History.record h) ops

let test_mvsg_ordered_snapshot_passes () =
  (* w1 publishes, reader r3 rides that version, w2 publishes later:
     1 -> 3 (version source), 3 -> 2 (publish after 3's snapshot). *)
  let h = History.create () in
  record_all h
    [
      History.Begin 1;
      History.Write (1, oid 1, f);
      History.Publish (1, 1);
      History.Commit 1;
      History.Begin 3;
      History.Snapshot (3, 1);
      History.Snapshot_read (3, oid 1, f, 1);
      History.Commit 3;
      History.Begin 2;
      History.Write (2, oid 1, f);
      History.Publish (2, 2);
      History.Commit 2;
    ];
  Alcotest.(check bool) "serializable" true (History.conflict_serializable h);
  let edges = History.precedence_edges h in
  Alcotest.(check bool) "publisher precedes reader" true (List.mem (1, 3) edges);
  Alcotest.(check bool) "reader precedes later writer" true (List.mem (3, 2) edges)

let test_mvsg_write_skew_cycle () =
  (* Classic write skew: both transactions read the other's slot from
     the initial snapshot and publish their own — each must precede the
     other, a cycle a read-set-blind oracle would miss. *)
  let h = History.create () in
  let g = FN.of_string "g" in
  record_all h
    [
      History.Begin 1;
      History.Begin 2;
      History.Snapshot (1, 0);
      History.Snapshot (2, 0);
      History.Snapshot_read (1, oid 2, g, 0);
      History.Snapshot_read (2, oid 1, f, 0);
      History.Write (1, oid 1, f);
      History.Write (2, oid 2, g);
      History.Publish (1, 1);
      History.Publish (2, 2);
      History.Commit 1;
      History.Commit 2;
    ];
  Alcotest.(check bool) "write skew caught" false (History.conflict_serializable h)

let test_mvsg_base_version_has_no_publisher () =
  (* vts=0 is the pre-run base: no publisher edge, and no edge at all
     when nobody overwrites the slot. *)
  let h = History.create () in
  record_all h
    [
      History.Begin 1;
      History.Snapshot (1, 0);
      History.Snapshot_read (1, oid 1, f, 0);
      History.Commit 1;
    ];
  Alcotest.(check bool) "trivially serializable" true (History.conflict_serializable h);
  Alcotest.(check (list (pair int int))) "no edges" [] (History.precedence_edges h)

(* --- the step engine end to end --- *)

let mixed_setup ~seed ~txns =
  let schema = Workload.slice_schema ~readers:8 ~methods:8 ~work:4 () in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  Workload.populate store ~per_class:2;
  let jobs =
    Workload.mixed_slice_jobs (Rng.create seed) store ~txns ~actions_per_txn:3
      ~hot_instances:2 ~read_frac:0.5
  in
  (an, store, jobs)

let stores_equal name s1 s2 =
  let grid = CN.of_string "grid" in
  List.iter2
    (fun o1 o2 ->
      for i = 0 to Store.field_count s1 o1 - 1 do
        if Store.read_idx s1 o1 i <> Store.read_idx s2 o2 i then
          Alcotest.failf "%s: stores diverged at %a field %d" name Oid.pp o1 i
      done)
    (Store.extent s1 grid) (Store.extent s2 grid)

let test_step_engine_mvcc () =
  let an, store, jobs = mixed_setup ~seed:5 ~txns:24 in
  let sch = Mvcc_tav.scheme an in
  let r = Engine.run ~scheme:sch ~store ~jobs () in
  Alcotest.(check int) "all commit" 24 r.Engine.commits;
  Alcotest.(check (list (pair int string))) "none failed" [] r.Engine.failed;
  Alcotest.(check bool) "serializable" true (Engine.serializable r);
  (* Snapshot reads and publishes made it into the history. *)
  let has_snapshot_read =
    List.exists
      (function History.Snapshot_read _ -> true | _ -> false)
      (History.ops r.Engine.history)
  and has_publish =
    List.exists (function History.Publish _ -> true | _ -> false)
      (History.ops r.Engine.history)
  in
  Alcotest.(check bool) "snapshot reads recorded" true has_snapshot_read;
  Alcotest.(check bool) "publishes recorded" true has_publish;
  (* Version chains agree with the live store. *)
  (match sch.Scheme.mvcc with
  | None -> Alcotest.fail "mvcc-tav must expose its version store"
  | Some m ->
      let chains = m.Scheme.mv_dump () in
      Alcotest.(check bool) "chains exist" true (chains <> []);
      List.iter
        (fun (o, fld, versions) ->
          match versions with
          | (_, v) :: _ ->
              Alcotest.(check bool)
                (Format.asprintf "chain head matches store at %a.%a" Oid.pp o FN.pp fld)
                true
                (Value.equal v (Store.read store o fld))
          | [] -> ())
        chains);
  (* Differential: plain tav on identical jobs lands on the same state
     (slice writes commute, so any serializable order agrees). *)
  let an2, store2, jobs2 = mixed_setup ~seed:5 ~txns:24 in
  let r2 = Engine.run ~scheme:(Tavcc_cc.Tav_modes.scheme an2) ~store:store2 ~jobs:jobs2 () in
  Alcotest.(check int) "tav commits" 24 r2.Engine.commits;
  stores_equal "mvcc-tav vs tav (step)" store store2

(* --- the parallel engine: qcheck differential --- *)

let par_mvcc_property seed =
  let txns = 40 in
  let an, store, jobs = mixed_setup ~seed ~txns in
  let config =
    { Par_engine.default_config with domains = 4; shards = 4; record_history = true }
  in
  let r = Par_engine.run ~config ~scheme:(Mvcc_tav.scheme an) ~store ~jobs () in
  if r.Par_engine.failed <> [] then QCheck.Test.fail_reportf "transactions failed";
  if r.Par_engine.commits <> txns then
    QCheck.Test.fail_reportf "committed %d of %d" r.Par_engine.commits txns;
  if not (Par_engine.serializable r) then QCheck.Test.fail_reportf "not serializable";
  if r.Par_engine.snapshot_aborts <> 0 then
    QCheck.Test.fail_reportf "%d snapshot transactions aborted" r.Par_engine.snapshot_aborts;
  (* The same jobs through a single-domain strict-2PL run must agree on
     every final field value. *)
  let an2, store2, jobs2 = mixed_setup ~seed ~txns in
  let config2 = { Par_engine.default_config with domains = 1; shards = 1 } in
  let r2 =
    Par_engine.run ~config:config2 ~scheme:(Tavcc_cc.Tav_modes.scheme an2) ~store:store2
      ~jobs:jobs2 ()
  in
  if r2.Par_engine.commits <> txns then QCheck.Test.fail_reportf "2pl run incomplete";
  stores_equal "mvcc-tav par vs 2pl" store store2;
  true

let par_mvcc_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12
       ~name:"par mvcc-tav: serializable, snapshots never abort, agrees with 2pl"
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
       par_mvcc_property)

(* --- chaos torture with the version store enabled --- *)

let test_chaos_torture_mvcc () =
  let w = Torture.mixed_slices_workload ~txns:6 ~seed:13 () in
  let mk = List.assoc "mvcc-tav" Torture.schemes in
  let plan = { Fault.injections = []; schedule = Fault.Random_sched 3 } in
  let r = Torture.run ~scheme_name:"mvcc-tav" ~scheme:mk ~workload:w ~seed:13 ~plan () in
  Alcotest.(check (list string)) "no violations" [] r.Torture.r_violations;
  Alcotest.(check bool) "serializable" true r.Torture.r_serializable;
  Alcotest.(check bool) "crash matrix ran" true (r.Torture.r_crash_points > 0);
  Alcotest.(check bool) "ok" true (Torture.ok r)

let suite =
  [
    Alcotest.test_case "version store: publish and snapshot reads" `Quick
      test_vs_publish_and_read;
    Alcotest.test_case "version store: validation gates publication" `Quick
      test_vs_validation;
    Alcotest.test_case "version store: GC respects open snapshots" `Quick
      test_vs_gc_respects_snapshots;
    Alcotest.test_case "version store: reset rewinds everything" `Quick test_vs_reset;
    Alcotest.test_case "contention: aborts flip optimistic, failures flip back" `Quick
      test_contention_flips;
    Alcotest.test_case "contention: disabled controller never flips" `Quick
      test_contention_disabled;
    Alcotest.test_case "classifier: readers eligible, updaters not" `Quick
      test_classifier_on_grid;
    Alcotest.test_case "mvsg: ordered snapshot read passes" `Quick
      test_mvsg_ordered_snapshot_passes;
    Alcotest.test_case "mvsg: write skew forms a cycle" `Quick test_mvsg_write_skew_cycle;
    Alcotest.test_case "mvsg: base version has no publisher" `Quick
      test_mvsg_base_version_has_no_publisher;
    Alcotest.test_case "step engine: mvcc-tav mixed run, full oracle" `Quick
      test_step_engine_mvcc;
    par_mvcc_qcheck;
    Alcotest.test_case "chaos: torture run with version store" `Slow
      test_chaos_torture_mvcc;
  ]
