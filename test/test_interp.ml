(* The ODML interpreter. *)

open Tavcc_model
open Tavcc_lang
open Helpers

let run_method src ?(init = []) ?(args = []) ?hooks cls meth =
  let schema = schema_of_source src in
  let store = Store.create schema in
  let o = Store.new_instance store (cn cls) ~init in
  let v = Interp.call ?hooks store o (mn meth) args in
  (store, o, v)

let calc_src =
  {|
class calc is
  fields
    acc : integer;
    flag : boolean;
  method add(n) is
    acc := acc + n;
  end
  method double is
    acc := acc * 2;
  end
  method get is
    return acc;
  end
  method sum_to(n) is
    var s := 0;
    var i := 1;
    while i <= n do
      s := s + i;
      i := i + 1;
    end
    return s;
  end
  method pick(n) is
    if n > 0 then
      return "pos";
    else
      if n = 0 then return "zero"; end
      return "neg";
    end
  end
  method chain(n) is
    send add(n) to self;
    send double to self;
    return acc;
  end
end
|}

let test_assign_and_return () =
  let _, _, v = run_method calc_src ~init:[ (fn "acc", Value.Vint 5) ] ~args:[ Value.Vint 3 ] "calc" "add" in
  Alcotest.check value "add returns null" Value.Vnull v;
  let _, _, v = run_method calc_src ~init:[ (fn "acc", Value.Vint 5) ] "calc" "get" in
  Alcotest.check value "get" (Value.Vint 5) v

let test_while_and_locals () =
  let _, _, v = run_method calc_src ~args:[ Value.Vint 10 ] "calc" "sum_to" in
  Alcotest.check value "1+..+10" (Value.Vint 55) v

let test_if_and_early_return () =
  let pick n =
    let _, _, v = run_method calc_src ~args:[ Value.Vint n ] "calc" "pick" in
    v
  in
  Alcotest.check value "pos" (Value.Vstring "pos") (pick 4);
  Alcotest.check value "zero" (Value.Vstring "zero") (pick 0);
  Alcotest.check value "neg" (Value.Vstring "neg") (pick (-2))

let test_self_sends () =
  let _, _, v = run_method calc_src ~init:[ (fn "acc", Value.Vint 1) ] ~args:[ Value.Vint 4 ] "calc" "chain" in
  Alcotest.check value "(1+4)*2" (Value.Vint 10) v

let test_late_binding_and_prefixed () =
  let src =
    {|
class base is
  fields log : integer;
  method run is
    send step to self;
  end
  method step is
    log := log + 1;
  end
end
class derived extends base is
  method step is -- extension: base step plus two more
    send base.step to self;
    log := log + 2;
  end
end
|}
  in
  let _, _, _ = run_method src "base" "run" in
  let store, o, _ = run_method src "derived" "run" in
  (* run (inherited) late-binds step to the derived extension: 1 + 2. *)
  Alcotest.check value "late binding" (Value.Vint 3) (Store.read store o (fn "log"))

let test_cross_object_send () =
  let src =
    {|
class cell is
  fields n : integer;
  method bump is n := n + 1; end
  method get is return n; end
end
class owner is
  fields peer : cell;
  method poke is
    send bump to peer;
    return send get to peer;
  end
end
|}
  in
  let schema = schema_of_source src in
  let store = Store.create schema in
  let cell = Store.new_instance store (cn "cell") ~init:[ (fn "n", Value.Vint 41) ] in
  let owner = Store.new_instance store (cn "owner") ~init:[ (fn "peer", Value.Vref cell) ] in
  let v = Interp.call store owner (mn "poke") [] in
  Alcotest.check value "cross-object result" (Value.Vint 42) v;
  Alcotest.check value "peer mutated" (Value.Vint 42) (Store.read store cell (fn "n"))

let test_new_expression () =
  let src =
    {|
class node is
  fields next : node; tag : integer;
  method grow is
    next := new node;
    send mark to next;
  end
  method mark is tag := 7; end
end
|}
  in
  let schema = schema_of_source src in
  let store = Store.create schema in
  let o = Store.new_instance store (cn "node") in
  ignore (Interp.call store o (mn "grow") []);
  Alcotest.(check int) "two instances" 2 (Store.instance_count store);
  match Store.read store o (fn "next") with
  | Value.Vref n -> Alcotest.check value "new marked" (Value.Vint 7) (Store.read store n (fn "tag"))
  | v -> Alcotest.failf "expected ref, got %a" Value.pp v

let expect_runtime_error f =
  match f () with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

let test_errors () =
  expect_runtime_error (fun () ->
      run_method "class a is fields f : integer; method m is f := f / 0; end end" "a" "m");
  expect_runtime_error (fun () ->
      run_method "class a is fields f : integer; method m is f := f % 0; end end" "a" "m");
  expect_runtime_error (fun () ->
      run_method "class a is fields r : a; method m is send m to r; end end" "a" "m");
  expect_runtime_error (fun () ->
      let schema = schema_of_source "class a is method m is end end" in
      let store = Store.create schema in
      let o = Store.new_instance store (cn "a") in
      ignore (Interp.call store o (mn "nope") []));
  expect_runtime_error (fun () ->
      let schema = schema_of_source "class a is method m(p) is end end" in
      let store = Store.create schema in
      let o = Store.new_instance store (cn "a") in
      ignore (Interp.call store o (mn "m") []))

let test_fuel () =
  let src = "class a is fields f : integer; method spin is while true do f := f + 1; end end end" in
  let schema = schema_of_source src in
  let store = Store.create schema in
  let o = Store.new_instance store (cn "a") in
  match Interp.call ~max_steps:1000 store o (mn "spin") [] with
  | exception Interp.Runtime_error msg ->
      Alcotest.(check bool) "mentions step limit" true (contains msg "step limit")
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_arith_semantics () =
  let eval src =
    let full = Printf.sprintf "class a is method m is return %s; end end" src in
    let _, _, v = run_method full "a" "m" in
    v
  in
  Alcotest.check value "int arith" (Value.Vint 7) (eval "1 + 2 * 3");
  Alcotest.check value "mixed float" (Value.Vfloat 3.5) (eval "3 + 0.5");
  Alcotest.check value "string concat" (Value.Vstring "ab") (eval {|"a" + "b"|});
  Alcotest.check value "comparison" (Value.Vbool true) (eval "2 < 3");
  Alcotest.check value "string comparison" (Value.Vbool true) (eval {|"abc" < "abd"|});
  Alcotest.check value "equality on refs" (Value.Vbool true) (eval "self = self");
  Alcotest.check value "null equality" (Value.Vbool true) (eval "null = null");
  Alcotest.check value "and short-circuits" (Value.Vbool false) (eval "false and 1 / 0 = 0");
  Alcotest.check value "or short-circuits" (Value.Vbool true) (eval "true or 1 / 0 = 0");
  Alcotest.check value "not" (Value.Vbool false) (eval "not true");
  Alcotest.check value "neg" (Value.Vint (-3)) (eval "-3");
  Alcotest.check value "mod" (Value.Vint 1) (eval "7 % 3")

let test_hooks_order () =
  let events = ref [] in
  let push e = events := e :: !events in
  let hooks =
    {
      Interp.no_hooks with
      Interp.h_top_send = (fun _ _ m -> push (Printf.sprintf "top:%s" (Name.Method.to_string m)));
      h_self_send = (fun _ _ m -> push (Printf.sprintf "self:%s" (Name.Method.to_string m)));
      h_read = (fun _ _ f -> push (Printf.sprintf "r:%s" (Name.Field.to_string f)));
      h_write = (fun _ _ f ~old:_ _ -> push (Printf.sprintf "w:%s" (Name.Field.to_string f)));
      h_new = (fun _ c -> push (Printf.sprintf "new:%s" (Name.Class.to_string c)));
    }
  in
  let _ = run_method calc_src ~hooks ~args:[ Value.Vint 4 ] "calc" "chain" in
  Alcotest.(check (list string)) "event order"
    [ "top:chain"; "self:add"; "r:acc"; "w:acc"; "self:double"; "r:acc"; "w:acc"; "r:acc" ]
    (List.rev !events)

let suite =
  [
    case "assignment and return" test_assign_and_return;
    case "while and locals" test_while_and_locals;
    case "if and early return" test_if_and_early_return;
    case "self sends" test_self_sends;
    case "late binding and prefixed calls" test_late_binding_and_prefixed;
    case "cross-object sends" test_cross_object_send;
    case "new" test_new_expression;
    case "runtime errors" test_errors;
    case "step limit" test_fuel;
    case "arithmetic semantics" test_arith_semantics;
    case "hooks fire in order" test_hooks_order;
  ]
