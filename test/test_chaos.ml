(* The fault-injection and schedule-exploration harness. *)

open Tavcc_model
open Tavcc_recovery
open Tavcc_chaos
open Helpers

(* --- the fault-plan DSL --- *)

let test_plan_roundtrip () =
  let plans =
    [
      Fault.none;
      { Fault.injections = []; schedule = Fault.Fixed [] };
      { Fault.injections = []; schedule = Fault.Fixed [ 1; 0; 2 ] };
      {
        Fault.injections =
          [
            Fault.Crash_at_append 17;
            Fault.Crash_at_flush 3;
            Fault.Torn_flush { nth = 3; keep = 9 };
            Fault.Delay { step = 5; txn = 2; ticks = 10 };
            Fault.Forced_abort { step = 9; txn = 3 };
          ];
        schedule = Fault.Random_sched 42;
      };
    ]
  in
  List.iter
    (fun p ->
      let s = Fault.to_string p in
      Alcotest.(check bool)
        (Printf.sprintf "plan %s round-trips" s)
        true
        (Fault.of_string s = p))
    plans;
  Alcotest.check_raises "malformed plan refused"
    (Invalid_argument "Fault.of_string: malformed component \"bogus:1\"") (fun () ->
      ignore (Fault.of_string "r:1;bogus:1"))

(* --- the WAL byte codec --- *)

let sample_records =
  let o = Oid.of_int 3 in
  [
    Wal.Checkpoint [ 1; 2 ];
    Wal.Begin 1;
    Wal.Update
      { txn = 1; oid = o; field = fn "a"; before = Value.Vint 1; after = Value.Vint 2 };
    Wal.Update
      {
        txn = 1;
        oid = o;
        field = fn "s";
        before = Value.Vstring "x;y";
        after = Value.Vnull;
      };
    Wal.Update
      {
        txn = 1;
        oid = o;
        field = fn "f";
        before = Value.Vfloat 0.1;
        after = Value.Vfloat (-1e300);
      };
    Wal.Update
      {
        txn = 1;
        oid = o;
        field = fn "r";
        before = Value.Vref (Oid.of_int 7);
        after = Value.Vbool true;
      };
    Wal.Clr { txn = 2; oid = o; field = fn "a"; after = Value.Vint 1 };
    Wal.Commit 1;
    Wal.Abort 2;
  ]

let test_codec_roundtrip () =
  let bytes = Codec.encode sample_records in
  Alcotest.(check bool) "decode_exact inverts encode" true
    (Codec.decode_exact bytes = sample_records);
  Alcotest.(check bool) "decode inverts encode" true
    (Codec.decode bytes = sample_records)

let test_codec_every_cut () =
  (* Cutting the byte image anywhere yields the longest whole-record
     prefix — never garbage, never an exception. *)
  let bytes = Codec.encode sample_records in
  let boundaries =
    (* Byte offset at which each record's frame ends. *)
    let _, offs =
      List.fold_left
        (fun (off, acc) r ->
          let off = off + String.length (Codec.encode_record r) in
          (off, off :: acc))
        (0, [ 0 ])
        sample_records
    in
    List.rev offs
  in
  for cut = 0 to String.length bytes - 1 do
    let decoded = Codec.decode (String.sub bytes 0 cut) in
    let expect = List.length (List.filter (fun b -> b <= cut) boundaries) - 1 in
    Alcotest.(check int) (Printf.sprintf "cut at byte %d" cut) expect
      (List.length decoded);
    Alcotest.(check bool)
      (Printf.sprintf "prefix at byte %d well-formed" cut)
      true
      (decoded = List.filteri (fun i _ -> i < expect) sample_records)
  done

let test_codec_corruption () =
  let bytes = Codec.encode sample_records in
  (* Flip a payload byte of the first frame: checksum mismatch stops the
     scan at record 0. *)
  let b = Bytes.of_string bytes in
  Bytes.set b 20 (Char.chr (Char.code (Bytes.get b 20) lxor 0xff));
  Alcotest.(check int) "corrupt first frame decodes nothing" 0
    (List.length (Codec.decode (Bytes.to_string b)));
  Alcotest.check_raises "decode_exact refuses torn tail"
    (Invalid_argument "Codec.decode_exact: torn or corrupt tail") (fun () ->
      ignore (Codec.decode_exact (String.sub bytes 0 (String.length bytes - 1))))

(* --- torn-tail recovery through the manager (satellite: WAL cut
   mid-record recovers the longest valid prefix) --- *)

let test_torn_tail_recovery () =
  let schema =
    schema_of_source
      {|class item is
          fields a : integer; b : integer;
        end|}
  in
  let store = Store.create schema in
  let o1 = Store.new_instance store (cn "item") in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 10);
  Recovery.Manager.commit mgr 1;
  Recovery.Manager.begin_txn mgr 2;
  Recovery.Manager.write mgr ~txn:2 o1 (fn "a") (Value.Vint 99);
  Recovery.Manager.commit mgr 2;
  let log = Wal.stable wal in
  let bytes = Codec.encode log in
  (* Tear the disk inside the final record (t2's Commit): t2's updates
     redo but then undo as a loser — only t1 survives. *)
  let cut = String.length bytes - 3 in
  let surviving = Codec.decode (String.sub bytes 0 cut) in
  Alcotest.(check int) "one record torn off" (List.length log - 1)
    (List.length surviving);
  let rstore = Store.create schema in
  let r1 = Store.new_instance rstore (cn "item") in
  Recovery.Restart.recover rstore snap surviving;
  Alcotest.check value "t1 committed, survives" (Value.Vint 10)
    (Store.read rstore r1 (fn "a"))

(* --- torture determinism: (seed, plan) replays bit-for-bit --- *)

let slices = Torture.slices_workload ()
let escalation = Torture.escalation_workload ()
let tav = List.assoc "tav" Torture.schemes

let torture ?(crash_matrix = true) ?(torn_per_flush = 2) ?(scheme_name = "tav")
    ?(scheme = tav) ~workload ~seed plan =
  Torture.run ~crash_matrix ~torn_per_flush ~scheme_name ~scheme ~workload ~seed
    ~plan ()

let chaotic_plan =
  {
    Fault.injections =
      [
        Fault.Delay { step = 3; txn = 1; ticks = 8 };
        Fault.Forced_abort { step = 6; txn = 2 };
        Fault.Torn_flush { nth = 2; keep = 11 };
        Fault.Crash_at_append 9;
      ];
    schedule = Fault.Random_sched 77;
  }

let test_torture_deterministic () =
  let r1 = torture ~workload:slices ~seed:5 chaotic_plan in
  let r2 = torture ~workload:slices ~seed:5 chaotic_plan in
  Alcotest.(check string) "event hashes equal" r1.Torture.r_event_hash
    r2.Torture.r_event_hash;
  Alcotest.(check bool) "whole reports equal" true (r1 = r2);
  (* With a pick hook installed the plan's scheduler seed, not the
     engine seed, drives the interleaving. *)
  let r3 =
    torture ~workload:slices ~seed:5
      { chaotic_plan with Fault.schedule = Fault.Random_sched 78 }
  in
  Alcotest.(check bool) "different schedule seed, different stream" true
    (r1.Torture.r_event_hash <> r3.Torture.r_event_hash)

let test_torture_oracles_hold () =
  let r = torture ~workload:slices ~seed:5 chaotic_plan in
  Alcotest.(check bool) "run is clean" true (Torture.ok r);
  Alcotest.(check (list string)) "no violations" [] r.Torture.r_violations;
  Alcotest.(check bool) "forced abort fired" true (r.Torture.r_forced_aborts >= 1);
  Alcotest.(check bool) "delay diverted the scheduler" true
    (r.Torture.r_delays_honoured >= 1);
  Alcotest.(check bool) "crash matrix covered the log" true
    (r.Torture.r_crash_points > r.Torture.r_wal_appends);
  Alcotest.(check bool) "torn tails checked" true (r.Torture.r_torn_points >= 1);
  Alcotest.(check bool) "all transactions committed" true (r.Torture.r_commits = 6)

let test_escalation_torture () =
  (* The E4 cascade under the finest interleavings, with the full crash
     matrix: deadlock aborts and restarts flow through the mirror WAL. *)
  let r = torture ~workload:escalation ~seed:42
      { Fault.injections = []; schedule = Fault.Random_sched 1 }
  in
  Alcotest.(check bool) "clean" true (Torture.ok r);
  Alcotest.(check int) "all committed" 6 r.Torture.r_commits

(* --- differential testing: every scheme reaches the same final state ---

   Workload writes are read-modify-write increments, so any
   conflict-serializable execution of the same jobs produces the same
   final store no matter which scheme ordered them. *)

let test_differential_schemes () =
  List.iter
    (fun workload ->
      let reports =
        List.map
          (fun (name, mk) ->
            ( name,
              torture ~crash_matrix:false ~torn_per_flush:0 ~scheme_name:name
                ~scheme:mk ~workload ~seed:11
                { Fault.injections = []; schedule = Fault.Random_sched 4 } ))
          Torture.schemes
      in
      let _, first = List.hd reports in
      List.iter
        (fun (name, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s clean" workload.Torture.w_name name)
            true (Torture.ok r);
          Alcotest.(check string)
            (Printf.sprintf "%s/%s same final state" workload.Torture.w_name name)
            first.Torture.r_final_dump r.Torture.r_final_dump)
        reports)
    [ slices; escalation ]

let test_par_differential () =
  (* The real multicore driver, pinned to one domain, is a deterministic
     serial execution — its final state must match the step engine's. *)
  let r =
    torture ~crash_matrix:false ~torn_per_flush:0 ~workload:slices ~seed:11
      { Fault.injections = []; schedule = Fault.Random_sched 4 }
  in
  Alcotest.(check bool) "step run clean" true (Torture.ok r);
  Alcotest.(check (list string)) "par agrees with the step engine" []
    (Torture.par_differential ~scheme_name:"tav" ~scheme:tav ~workload:slices
       ~expect:r.Torture.r_final_dump ())

(* --- the explorer --- *)

let test_systematic_cases () =
  let cases =
    Explore.systematic_cases ~seed:3 ~ready_sizes:[ 1; 3; 2; 1; 2 ] ~preemptions:2
      ~max_cases:100
  in
  (* Steps 1, 2 and 4 have a choice (sizes 3, 2, 2): singles = 2+1+1,
     pairs = 2*1 + 2*1 + 1*1. *)
  Alcotest.(check int) "bounded enumeration size" 9 (List.length cases);
  List.iter
    (fun (c : Explore.case) ->
      match c.Explore.c_plan.Fault.schedule with
      | Fault.Fixed trail ->
          Alcotest.(check bool) "preemption bound respected" true
            (List.length (List.filter (fun v -> v <> 0) trail) <= 2)
      | Fault.Random_sched _ -> Alcotest.fail "systematic case must be Fixed")
    cases;
  let distinct =
    List.sort_uniq compare (List.map (fun c -> c.Explore.c_plan) cases)
  in
  Alcotest.(check int) "cases distinct" 9 (List.length distinct)

let test_fixed_schedule_runs () =
  (* Every bounded-preemption perturbation of the sticky schedule passes
     the oracles on the slices workload. *)
  let base =
    torture ~crash_matrix:false ~torn_per_flush:0 ~workload:slices ~seed:3
      { Fault.injections = []; schedule = Fault.Fixed [] }
  in
  Alcotest.(check bool) "sticky base clean" true (Torture.ok base);
  let cases =
    Explore.systematic_cases ~seed:3 ~ready_sizes:base.Torture.r_ready_sizes
      ~preemptions:1 ~max_cases:10
  in
  Alcotest.(check bool) "perturbations exist" true (cases <> []);
  List.iter
    (fun (c : Explore.case) ->
      let r =
        torture ~crash_matrix:false ~torn_per_flush:0 ~workload:slices
          ~seed:c.Explore.c_seed c.Explore.c_plan
      in
      Alcotest.(check bool) "perturbed schedule clean" true (Torture.ok r))
    cases

(* --- the shrinker --- *)

let test_shrinker_minimality () =
  (* A synthetic bug: the run "fails" exactly when the plan carries the
     culprit injection.  Shrinking from a big noisy case must isolate
     it. *)
  let culprit = Fault.Forced_abort { step = 7; txn = 2 } in
  let run (c : Explore.case) =
    (* true = ok, false = still failing *)
    not (List.mem culprit c.Explore.c_plan.Fault.injections)
  in
  let noisy =
    {
      Explore.c_seed = 13;
      c_plan =
        {
          Fault.injections =
            [
              Fault.Delay { step = 1; txn = 1; ticks = 64 };
              culprit;
              Fault.Crash_at_flush 4;
              Fault.Torn_flush { nth = 1; keep = 5 };
              Fault.Crash_at_append 31;
            ];
          schedule = Fault.Fixed [ 0; 2; 1; 0; 3; 0; 0 ];
        };
    }
  in
  let shrunk = Explore.shrink ~run noisy in
  Alcotest.(check bool) "shrunk case still fails" false (run shrunk);
  Alcotest.(check bool) "only the culprit remains" true
    (shrunk.Explore.c_plan.Fault.injections = [ culprit ]);
  (match shrunk.Explore.c_plan.Fault.schedule with
  | Fault.Fixed trail -> Alcotest.(check (list int)) "trail zeroed away" [] trail
  | Fault.Random_sched _ -> Alcotest.fail "schedule kind must be preserved");
  Alcotest.(check string) "replay command"
    "oosim chaos --workload slices --scheme tav --seed 13 --replay 'f:;abort:7:2'"
    (Explore.to_command ~workload:"slices" ~scheme:"tav" shrunk)

let test_shrinker_delay_ticks () =
  (* Delay windows shrink by halving while the failure persists. *)
  let run (c : Explore.case) =
    not
      (List.exists
         (function Fault.Delay { ticks; _ } -> ticks >= 4 | _ -> false)
         c.Explore.c_plan.Fault.injections)
  in
  let case =
    {
      Explore.c_seed = 1;
      c_plan =
        {
          Fault.injections = [ Fault.Delay { step = 2; txn = 1; ticks = 64 } ];
          schedule = Fault.Random_sched 9;
        };
    }
  in
  let shrunk = Explore.shrink ~run case in
  match shrunk.Explore.c_plan.Fault.injections with
  | [ Fault.Delay { ticks; _ } ] ->
      Alcotest.(check bool)
        (Printf.sprintf "ticks %d shrunk near the threshold" ticks)
        true
        (ticks >= 4 && ticks < 8)
  | _ -> Alcotest.fail "delay injection must survive shrinking"

let test_random_cases_deterministic () =
  let a = Explore.random_cases ~base_seed:5 ~runs:10 ~txns:[ 1; 2; 3 ] in
  let b = Explore.random_cases ~base_seed:5 ~runs:10 ~txns:[ 1; 2; 3 ] in
  Alcotest.(check bool) "same base seed, same cases" true (a = b);
  let c = Explore.random_cases ~base_seed:6 ~runs:10 ~txns:[ 1; 2; 3 ] in
  Alcotest.(check bool) "different base seed, different cases" true (a <> c)

(* --- randomized torture sweep (qcheck) --- *)

let prop_random_torture =
  QCheck.Test.make ~count:8 ~name:"random chaos cases: all oracles hold"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let txns = List.map fst (snd (escalation.Torture.w_build ())) in
      match Explore.random_cases ~base_seed:seed ~runs:1 ~txns with
      | [ c ] ->
          let r =
            torture ~workload:escalation ~seed:c.Explore.c_seed c.Explore.c_plan
          in
          Torture.ok r
      | _ -> false)

let suite =
  [
    case "fault plans round-trip" test_plan_roundtrip;
    case "codec round-trips" test_codec_roundtrip;
    case "codec survives every byte cut" test_codec_every_cut;
    case "codec detects corruption" test_codec_corruption;
    case "torn tail recovers longest valid prefix" test_torn_tail_recovery;
    case "torture replays bit-for-bit" test_torture_deterministic;
    case "oracles hold under a chaotic plan" test_torture_oracles_hold;
    case "escalation deadlocks under torture" test_escalation_torture;
    case "all schemes agree on the final state" test_differential_schemes;
    case "single-domain par engine agrees" test_par_differential;
    case "systematic enumeration is bounded" test_systematic_cases;
    case "perturbed schedules stay clean" test_fixed_schedule_runs;
    case "shrinker isolates the culprit" test_shrinker_minimality;
    case "shrinker halves delay windows" test_shrinker_delay_ticks;
    case "case generation is seeded" test_random_cases_deterministic;
    QCheck_alcotest.to_alcotest prop_random_torture;
  ]
