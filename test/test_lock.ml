(* Compatibility matrices and the lock table. *)

open Tavcc_lock
open Helpers

let res_i n = Resource.Instance (Tavcc_model.Oid.of_int n)

(* A plain R/W table on every resource kind. *)
let rw_conflict (held : Lock_table.req) (req : Lock_table.req) =
  not (Compat.compatible Compat.rw held.Lock_table.r_mode req.Lock_table.r_mode)

let make () = Lock_table.create ~conflict:rw_conflict ()
let req txn res mode =
  { Lock_table.r_txn = txn; r_res = res; r_mode = mode; r_hier = false; r_pred = None }

let outcome : Lock_table.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Lock_table.Granted -> Format.pp_print_string ppf "granted"
      | Lock_table.Waiting -> Format.pp_print_string ppf "waiting")
    ( = )

let test_compat_matrices () =
  Alcotest.(check bool) "R/R" true (Compat.compatible Compat.rw Compat.read Compat.read);
  Alcotest.(check bool) "R/W" false (Compat.compatible Compat.rw Compat.read Compat.write);
  Alcotest.(check bool) "IS/X" false (Compat.compatible Compat.gray Compat.is_ Compat.x);
  Alcotest.(check bool) "IS/IX" true (Compat.compatible Compat.gray Compat.is_ Compat.ix);
  Alcotest.(check bool) "IX/S" false (Compat.compatible Compat.gray Compat.ix Compat.s);
  Alcotest.(check bool) "S/S" true (Compat.compatible Compat.gray Compat.s Compat.s);
  Alcotest.(check bool) "SIX/IS" true (Compat.compatible Compat.gray Compat.six Compat.is_);
  Alcotest.(check bool) "SIX/SIX" false (Compat.compatible Compat.gray Compat.six Compat.six);
  Alcotest.(check string) "names" "X" (Compat.name Compat.gray Compat.x);
  Alcotest.(check (option int)) "by name" (Some Compat.six) (Compat.mode_of_name Compat.gray "SIX")

let test_compat_validation () =
  check_raises_invalid "asymmetric rejected" (fun () ->
      Compat.make ~names:[| "a"; "b" |] [| [| true; true |]; [| false; true |] |]);
  check_raises_invalid "wrong size" (fun () -> Compat.make ~names:[| "a" |] [| |])

let test_grant_and_share () =
  let t = make () in
  Alcotest.check outcome "r1" Lock_table.Granted (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  Alcotest.check outcome "r2 shares" Lock_table.Granted (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  Alcotest.check outcome "w3 waits" Lock_table.Waiting (Lock_table.acquire t (req 3 (res_i 0) Compat.write));
  Alcotest.(check int) "two holders" 2 (List.length (Lock_table.holders t (res_i 0)));
  Alcotest.(check int) "one queued" 1 (List.length (Lock_table.queued t (res_i 0)))

let test_fifo_no_overtake () =
  (* A reader arriving behind a queued writer must not overtake it. *)
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  Alcotest.check outcome "writer queues" Lock_table.Waiting
    (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  Alcotest.check outcome "late reader queues too" Lock_table.Waiting
    (Lock_table.acquire t (req 3 (res_i 0) Compat.read))

let test_release_drains_fifo () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 3 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 4 (res_i 0) Compat.write));
  let newly = Lock_table.release_all t 1 in
  (* Both readers are granted; the writer stays queued behind them. *)
  Alcotest.(check (list int)) "readers granted in order" [ 2; 3 ]
    (List.map (fun r -> r.Lock_table.r_txn) newly);
  Alcotest.(check int) "writer still queued" 1 (List.length (Lock_table.queued t (res_i 0)));
  let newly = Lock_table.release_all t 2 in
  Alcotest.(check (list int)) "still blocked by reader 3" [] (List.map (fun r -> r.Lock_table.r_txn) newly);
  let newly = Lock_table.release_all t 3 in
  Alcotest.(check (list int)) "writer finally granted" [ 4 ]
    (List.map (fun r -> r.Lock_table.r_txn) newly)

let test_reacquire_idempotent () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  Alcotest.check outcome "same again" Lock_table.Granted
    (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  Alcotest.(check int) "held once" 1 (List.length (Lock_table.holds t 1 (res_i 0)))

let test_conversion () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  (* Alone: upgrade is immediate; both modes are now held. *)
  Alcotest.check outcome "upgrade alone" Lock_table.Granted
    (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  Alcotest.(check int) "holds two modes" 2 (List.length (Lock_table.holds t 1 (res_i 0)));
  (* With a concurrent reader the upgrade waits at the head of the queue,
     in front of earlier waiters. *)
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  Alcotest.check outcome "w3 queues" Lock_table.Waiting
    (Lock_table.acquire t (req 3 (res_i 0) Compat.write));
  Alcotest.check outcome "upgrade waits" Lock_table.Waiting
    (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  Alcotest.(check (list int)) "conversion at head" [ 1; 3 ]
    (List.map (fun r -> r.Lock_table.r_txn) (Lock_table.queued t (res_i 0)));
  let newly = Lock_table.release_all t 2 in
  Alcotest.(check (list int)) "conversion granted first" [ 1 ]
    (List.map (fun r -> r.Lock_table.r_txn) newly)

let test_escalation_deadlock_detected () =
  (* Two readers both upgrading: the classical escalation deadlock. *)
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  Alcotest.(check (option (list int))) "no deadlock yet" None (Lock_table.find_deadlock t);
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  (match Lock_table.find_deadlock t with
  | Some cycle ->
      Alcotest.(check (list int)) "cycle {1,2}" [ 1; 2 ] (List.sort compare cycle)
  | None -> Alcotest.fail "expected an escalation deadlock");
  (* The incremental search from the newly blocked transaction sees it
     too, and conversions queue FIFO among themselves. *)
  (match Lock_table.find_deadlock ~from:2 t with
  | Some cycle ->
      Alcotest.(check (list int)) "cycle from blocked node" [ 1; 2 ] (List.sort compare cycle)
  | None -> Alcotest.fail "expected the cycle from the blocked node");
  Alcotest.(check (list int)) "conversions FIFO among themselves" [ 1; 2 ]
    (List.map (fun r -> r.Lock_table.r_txn) (Lock_table.queued t (res_i 0)))

let test_no_double_enqueue () =
  (* Re-acquiring a request that is already queued must not enqueue a
     second copy, and counts as neither a wait nor an immediate grant. *)
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  Alcotest.check outcome "first acquire waits" Lock_table.Waiting
    (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  Alcotest.check outcome "re-acquire still waits" Lock_table.Waiting
    (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  Alcotest.(check int) "queued once" 1 (List.length (Lock_table.queued t (res_i 0)));
  let s = Lock_table.stats t in
  Alcotest.(check int) "requests counted" 3 s.Lock_table.requests;
  Alcotest.(check int) "one wait only" 1 s.Lock_table.waits;
  Alcotest.(check int) "one immediate only" 1 s.Lock_table.immediate;
  (* After the drain the request is granted exactly once. *)
  let newly = Lock_table.release_all t 1 in
  Alcotest.(check (list int)) "granted once" [ 2 ]
    (List.map (fun r -> r.Lock_table.r_txn) newly);
  Alcotest.(check int) "held once" 1 (List.length (Lock_table.holders t (res_i 0)))

let test_conversion_fifo_order () =
  (* Three readers; two of them upgrade.  The second conversion must queue
     behind the first (FIFO among conversions), yet both stay ahead of a
     later plain writer. *)
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 3 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 4 (res_i 0) Compat.write));
  Alcotest.(check (list int)) "conversion prefix FIFO, plain writer last" [ 1; 2; 4 ]
    (List.map (fun r -> r.Lock_table.r_txn) (Lock_table.queued t (res_i 0)));
  (* Releasing the non-upgrading reader leaves the two-conversion
     deadlock, detected from either blocked node. *)
  Alcotest.(check (list int)) "no grant yet" []
    (List.map (fun r -> r.Lock_table.r_txn) (Lock_table.release_all t 3));
  (match Lock_table.find_deadlock ~from:1 t with
  | Some cycle -> Alcotest.(check (list int)) "cycle {1,2}" [ 1; 2 ] (List.sort compare cycle)
  | None -> Alcotest.fail "expected the conversion deadlock");
  (* Aborting the younger converter grants the older one first, then the
     plain writer still waits behind it. *)
  let newly = Lock_table.release_all t 2 in
  Alcotest.(check (list int)) "older conversion granted first" [ 1 ]
    (List.map (fun r -> r.Lock_table.r_txn) newly)

let test_find_deadlock_from_unrelated () =
  (* ~from limits the search to cycles reachable from that node. *)
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 1) Compat.write));
  ignore (Lock_table.acquire t (req 1 (res_i 1) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 3 (res_i 2) Compat.write));
  Alcotest.(check bool) "global search finds it" true (Lock_table.find_deadlock t <> None);
  Alcotest.(check (option (list int))) "unrelated node sees nothing" None
    (Lock_table.find_deadlock ~from:3 t);
  Alcotest.(check bool) "member node sees it" true (Lock_table.find_deadlock ~from:2 t <> None)

let test_waiting_for_deterministic () =
  (* waiting_for returns the oldest queued request, whatever the table
     iteration order. *)
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 3) Compat.write));
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 3) Compat.read));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  (match Lock_table.waiting_for t 2 with
  | Some r -> Alcotest.(check bool) "oldest queued first" true (r.Lock_table.r_res = res_i 3)
  | None -> Alcotest.fail "expected a queued request");
  (* Releasing the blocker of the oldest wait moves the answer to the
     remaining one. *)
  ignore (Lock_table.release_all t 1);
  Alcotest.(check (option (list int))) "fully granted" None
    (Option.map (fun _ -> []) (Lock_table.waiting_for t 2))

let test_cross_resource_deadlock () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 1) Compat.write));
  ignore (Lock_table.acquire t (req 1 (res_i 1) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  (match Lock_table.find_deadlock t with
  | Some cycle -> Alcotest.(check (list int)) "2-cycle" [ 1; 2 ] (List.sort compare cycle)
  | None -> Alcotest.fail "expected deadlock");
  (* Aborting txn 2 releases both its locks and unblocks txn 1. *)
  let newly = Lock_table.release_all t 2 in
  Alcotest.(check (list int)) "t1 unblocked" [ 1 ] (List.map (fun r -> r.Lock_table.r_txn) newly);
  Alcotest.(check (option (list int))) "no deadlock left" None (Lock_table.find_deadlock t)

let test_three_cycle () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 1) Compat.write));
  ignore (Lock_table.acquire t (req 3 (res_i 2) Compat.write));
  ignore (Lock_table.acquire t (req 1 (res_i 1) Compat.write));
  ignore (Lock_table.acquire t (req 2 (res_i 2) Compat.write));
  ignore (Lock_table.acquire t (req 3 (res_i 0) Compat.write));
  match Lock_table.find_deadlock t with
  | Some cycle -> Alcotest.(check (list int)) "3-cycle" [ 1; 2; 3 ] (List.sort compare cycle)
  | None -> Alcotest.fail "expected 3-cycle"

let test_waits_for_includes_queue_order () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 3 (res_i 0) Compat.write));
  let edges = Lock_table.waits_for_edges t in
  Alcotest.(check bool) "2 waits for holder 1" true (List.mem (2, 1) edges);
  Alcotest.(check bool) "3 waits for 2 ahead of it" true (List.mem (3, 2) edges)

let test_fifo_deadlock_between_compatible_modes () =
  (* The four-party hang the par bench caught: two disjoint "field slice"
     modes (a conflicts only a, b conflicts only b).  Each of T1/T3 is
     queued behind a request it does NOT conflict with, whose owner
     conflicts with a holder — the cycle runs entirely through strict
     FIFO queue positions, with no conflict edge closing it.  The
     waits-for graph must model queue order or the detector sleeps
     through it forever. *)
  let slice_conflict (held : Lock_table.req) (r : Lock_table.req) =
    held.Lock_table.r_mode = r.Lock_table.r_mode
  in
  let t = Lock_table.create ~conflict:slice_conflict () in
  let a = 0 and b = 1 in
  ignore (Lock_table.acquire t (req 1 (res_i 0) a));
  ignore (Lock_table.acquire t (req 3 (res_i 1) b));
  Alcotest.check outcome "T2 conflicts holder T1" Lock_table.Waiting
    (Lock_table.acquire t (req 2 (res_i 0) a));
  Alcotest.check outcome "T3 FIFO-stuck behind T2" Lock_table.Waiting
    (Lock_table.acquire t (req 3 (res_i 0) b));
  Alcotest.check outcome "T4 conflicts holder T3" Lock_table.Waiting
    (Lock_table.acquire t (req 4 (res_i 1) b));
  Alcotest.check outcome "T1 FIFO-stuck behind T4" Lock_table.Waiting
    (Lock_table.acquire t (req 1 (res_i 1) a));
  let edges = Lock_table.waits_for_edges t in
  Alcotest.(check bool) "FIFO edge 3->2" true (List.mem (3, 2) edges);
  Alcotest.(check bool) "FIFO edge 1->4" true (List.mem (1, 4) edges);
  (match Lock_table.find_deadlock t with
  | Some cycle ->
      Alcotest.(check (list int)) "the full FIFO cycle" [ 1; 2; 3; 4 ] (List.sort compare cycle)
  | None -> Alcotest.fail "FIFO deadlock not detected");
  (* The rebuild reference agrees. *)
  Alcotest.(check bool) "rebuild sees it too" true (Lock_table.find_deadlock_rebuild t <> None)

let test_conflicting_holders_and_locks_of () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 1 (res_i 1) Compat.read));
  let ch = Lock_table.conflicting_holders t (req 2 (res_i 0) Compat.read) in
  Alcotest.(check (list int)) "conflicting holder" [ 1 ] (List.map (fun r -> r.Lock_table.r_txn) ch);
  Alcotest.(check int) "locks_of" 2 (List.length (Lock_table.locks_of t 1));
  Alcotest.(check bool) "waiting_for none" true (Lock_table.waiting_for t 1 = None);
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.read));
  Alcotest.(check bool) "waiting_for set" true (Lock_table.waiting_for t 2 <> None)

let test_stats () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
  let s = Lock_table.stats t in
  (* txn 1's upgrade converts against no other holder and is immediate;
     txn 2's write waits behind the read. *)
  Alcotest.(check int) "requests" 3 s.Lock_table.requests;
  Alcotest.(check int) "immediate" 2 s.Lock_table.immediate;
  Alcotest.(check int) "waits" 1 s.Lock_table.waits;
  Alcotest.(check int) "conversions" 1 s.Lock_table.conversions;
  Alcotest.(check int) "max queue depth" 1 s.Lock_table.max_queue_depth;
  Alcotest.(check int) "nothing granted from a queue yet" 0 s.Lock_table.granted_after_wait;
  (* Re-asking for the queued write is a no-op re-acquire, not a new wait. *)
  Alcotest.check outcome "still waiting" Lock_table.Waiting
    (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  Alcotest.(check int) "reacquire counted" 1 s.Lock_table.reacquires;
  Alcotest.(check int) "requests split exactly" s.Lock_table.requests
    (s.Lock_table.immediate + s.Lock_table.waits + s.Lock_table.reacquires);
  ignore (Lock_table.acquire t (req 3 (res_i 0) Compat.read));
  Alcotest.(check int) "high-water mark grows" 2 s.Lock_table.max_queue_depth;
  ignore (Lock_table.release_all t 1);
  Alcotest.(check int) "queue drains count as granted_after_wait" 1
    s.Lock_table.granted_after_wait;
  Lock_table.reset_stats t;
  let z = Lock_table.stats t in
  List.iter
    (fun (name, v) -> Alcotest.(check int) ("reset " ^ name) 0 v)
    [
      ("requests", z.Lock_table.requests);
      ("immediate", z.Lock_table.immediate);
      ("waits", z.Lock_table.waits);
      ("conversions", z.Lock_table.conversions);
      ("reacquires", z.Lock_table.reacquires);
      ("granted_after_wait", z.Lock_table.granted_after_wait);
      ("max_queue_depth", z.Lock_table.max_queue_depth);
    ]

let test_stats_rendering () =
  let t = make () in
  ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.read));
  ignore (Lock_table.acquire t (req 2 (res_i 0) Compat.write));
  let s = Lock_table.stats t in
  let text = Format.asprintf "%a" Lock_table.pp_stats s in
  Alcotest.(check bool) "pp mentions requests" true (contains text "requests");
  Alcotest.(check bool) "pp mentions the high-water mark" true
    (contains text "max_queue_depth");
  let j = Lock_table.stats_to_json s in
  List.iter
    (fun (field, v) ->
      match Tavcc_obs.Json.member field j with
      | Some (Tavcc_obs.Json.Int n) -> Alcotest.(check int) field v n
      | _ -> Alcotest.failf "missing json field %s" field)
    [
      ("requests", 2); ("immediate", 1); ("waits", 1); ("conversions", 0);
      ("reacquires", 0); ("granted_after_wait", 0); ("max_queue_depth", 1);
    ];
  (* The snapshot does not track the live record. *)
  let snap = Lock_table.copy_stats s in
  ignore (Lock_table.acquire t (req 3 (res_i 1) Compat.read));
  Alcotest.(check int) "snapshot frozen" 2 snap.Lock_table.requests;
  Alcotest.(check int) "live record moved" 3 s.Lock_table.requests

(* Random operation sequences: structural invariants of the table. *)
let prop_invariants =
  QCheck.Test.make ~count:200 ~name:"granted groups compatible; queue heads blocked"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let t = make () in
      let ok = ref true in
      let check_invariants () =
        for res = 0 to 3 do
          let r = res_i res in
          let granted = Lock_table.holders t r in
          (* Every pair of granted requests from different transactions is
             compatible. *)
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if a.Lock_table.r_txn <> b.Lock_table.r_txn && rw_conflict a b then ok := false)
                granted)
            granted;
          (* A non-empty queue's head conflicts with some granted holder
             (otherwise it should have been granted or drained). *)
          (match Lock_table.queued t r with
          | [] -> ()
          | head :: _ ->
              let blocked =
                List.exists
                  (fun h -> h.Lock_table.r_txn <> head.Lock_table.r_txn && rw_conflict h head)
                  granted
              in
              if not blocked then ok := false);
          (* holds agrees with holders. *)
          List.iter
            (fun h ->
              if not (List.mem (h.Lock_table.r_mode, h.Lock_table.r_hier)
                        (Lock_table.holds t h.Lock_table.r_txn r))
              then ok := false)
            granted
        done
      in
      for _ = 1 to 60 do
        let txn = 1 + Tavcc_sim.Rng.int rng 5 in
        (match Tavcc_sim.Rng.int rng 4 with
        | 0 | 1 | 2 ->
            let res = res_i (Tavcc_sim.Rng.int rng 4) in
            let mode = if Tavcc_sim.Rng.bool rng then Compat.read else Compat.write in
            ignore (Lock_table.acquire t (req txn res mode))
        | _ -> ignore (Lock_table.release_all t txn));
        check_invariants ()
      done;
      !ok)

let prop_release_grants_are_fifo_consistent =
  QCheck.Test.make ~count:200 ~name:"drained grants preserve queue order"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let t = make () in
      (* txn 1 holds W; 2..6 queue in order with random modes. *)
      ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
      let queued_order =
        List.map
          (fun txn ->
            let m = if Tavcc_sim.Rng.bool rng then Compat.read else Compat.write in
            ignore (Lock_table.acquire t (req txn (res_i 0) m));
            txn)
          [ 2; 3; 4; 5; 6 ]
      in
      let newly = List.map (fun r -> r.Lock_table.r_txn) (Lock_table.release_all t 1) in
      (* The granted prefix respects the queue order. *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      is_prefix newly queued_order)

(* Random operation sequences: the incrementally maintained waits-for
   graph must agree with the rebuilt-from-scratch reference at every step,
   the table must never hold duplicate requests, and waiting_for must be a
   pure function of the table state. *)
let prop_incremental_graph_agrees =
  QCheck.Test.make ~count:200 ~name:"incremental waits-for graph equals rebuild; no duplicates"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let t = make () in
      let ok = ref true in
      let key r =
        (r.Lock_table.r_txn, r.Lock_table.r_res, r.Lock_table.r_mode, r.Lock_table.r_hier,
         r.Lock_table.r_pred)
      in
      let no_dups l =
        let keys = List.map key l in
        List.length (List.sort_uniq compare keys) = List.length keys
      in
      let check () =
        (* Maintained edges = rebuilt edges (both deduplicated). *)
        let inc = List.sort_uniq compare (Lock_table.waits_for_edges t) in
        let reb = List.sort_uniq compare (Lock_table.waits_for_edges_rebuild t) in
        if inc <> reb then ok := false;
        (* Cycle existence agrees between the two detectors. *)
        let a = Lock_table.find_deadlock t <> None in
        let b = Lock_table.find_deadlock_rebuild t <> None in
        if a <> b then ok := false;
        for res = 0 to 3 do
          let r = res_i res in
          if not (no_dups (Lock_table.holders t r)) then ok := false;
          if not (no_dups (Lock_table.queued t r)) then ok := false;
          (* waiting_for is deterministic: two reads of the same state
             agree, and a queued transaction reports a queued request. *)
          List.iter
            (fun q ->
              match Lock_table.waiting_for t q.Lock_table.r_txn with
              | None -> ok := false
              | Some w ->
                  if Lock_table.waiting_for t q.Lock_table.r_txn <> Some w then ok := false)
            (Lock_table.queued t r)
        done
      in
      for _ = 1 to 80 do
        let txn = 1 + Tavcc_sim.Rng.int rng 5 in
        (match Tavcc_sim.Rng.int rng 5 with
        | 0 | 1 | 2 ->
            let res = res_i (Tavcc_sim.Rng.int rng 4) in
            let mode = if Tavcc_sim.Rng.bool rng then Compat.read else Compat.write in
            ignore (Lock_table.acquire t (req txn res mode))
        | 3 ->
            (* Deliberate duplicate re-acquire of whatever the transaction
               is queued on. *)
            (match Lock_table.waiting_for t txn with
            | Some r -> ignore (Lock_table.acquire t r)
            | None -> ())
        | _ -> ignore (Lock_table.release_all t txn));
        check ()
      done;
      !ok)

let prop_release_wakeups_fifo =
  QCheck.Test.make ~count:200 ~name:"release_all wakes waiters in queue order"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let t = make () in
      ignore (Lock_table.acquire t (req 1 (res_i 0) Compat.write));
      let waiters =
        List.filter_map
          (fun txn ->
            let m = if Tavcc_sim.Rng.bool rng then Compat.read else Compat.write in
            match Lock_table.acquire t (req txn (res_i 0) m) with
            | Lock_table.Waiting -> Some txn
            | Lock_table.Granted -> None)
          [ 2; 3; 4; 5; 6; 7 ]
      in
      let queue_before =
        List.map (fun r -> r.Lock_table.r_txn) (Lock_table.queued t (res_i 0))
      in
      let newly = List.map (fun r -> r.Lock_table.r_txn) (Lock_table.release_all t 1) in
      (* The wake-ups are exactly a prefix of the queue, which itself
         lists the waiters in arrival order. *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      queue_before = waiters && is_prefix newly queue_before)

let suite =
  [
    case "predefined matrices" test_compat_matrices;
    case "matrix validation" test_compat_validation;
    case "grant and share" test_grant_and_share;
    case "FIFO: no overtaking" test_fifo_no_overtake;
    case "release drains FIFO" test_release_drains_fifo;
    case "re-acquire is idempotent" test_reacquire_idempotent;
    case "no double enqueue on re-acquire" test_no_double_enqueue;
    case "conversion priority" test_conversion;
    case "conversions FIFO among themselves" test_conversion_fifo_order;
    case "escalation deadlock detected" test_escalation_deadlock_detected;
    case "cross-resource deadlock" test_cross_resource_deadlock;
    case "three-party cycle" test_three_cycle;
    case "waits-for respects queue order" test_waits_for_includes_queue_order;
    case "FIFO deadlock between compatible modes" test_fifo_deadlock_between_compatible_modes;
    case "incremental search is scoped" test_find_deadlock_from_unrelated;
    case "waiting_for is deterministic" test_waiting_for_deterministic;
    case "introspection" test_conflicting_holders_and_locks_of;
    case "statistics" test_stats;
    case "statistics rendering and snapshots" test_stats_rendering;
    QCheck_alcotest.to_alcotest prop_invariants;
    QCheck_alcotest.to_alcotest prop_release_grants_are_fifo_consistent;
    QCheck_alcotest.to_alcotest prop_incremental_graph_agrees;
    QCheck_alcotest.to_alcotest prop_release_wakeups_fifo;
  ]
