(* DAV / DSC / PSC extraction (definitions 6-8). *)

open Tavcc_model
open Tavcc_core
module AV = Access_vector
module P = Paper_example
open Helpers

let av l = AV.of_list (List.map (fun (f, m) -> (fn f, m)) l)

let ex () = Extraction.build (P.schema ())

let test_paper_davs () =
  let ex = ex () in
  (* Sec. 4.1: "the direct access vector of m2 in c1 is (Write f1, Read f2,
     Null f3)". *)
  Alcotest.check access_vector "DAV c1.m2"
    (av [ ("f1", Mode.Write); ("f2", Mode.Read) ])
    (Extraction.dav ex P.c1 P.m2);
  Alcotest.check access_vector "DAV c1.m1 (pure sender)" AV.empty (Extraction.dav ex P.c1 P.m1);
  Alcotest.check access_vector "DAV c1.m3"
    (av [ ("f2", Mode.Read); ("f3", Mode.Read) ])
    (Extraction.dav ex P.c1 P.m3);
  (* Sec. 4.3: DAV of (c2,m2) is (N,N,N,W f4,R f5,N). *)
  Alcotest.check access_vector "DAV c2.m2"
    (av [ ("f4", Mode.Write); ("f5", Mode.Read) ])
    (Extraction.dav ex P.c2 P.m2);
  Alcotest.check access_vector "DAV c2.m4"
    (av [ ("f5", Mode.Read); ("f6", Mode.Write) ])
    (Extraction.dav ex P.c2 P.m4)

let test_inherited_shares_site () =
  let ex = ex () in
  (* m1 and m3 are inherited by c2: clause (i) of each definition. *)
  Alcotest.check access_vector "DAV c2.m1 = DAV c1.m1" (Extraction.dav ex P.c1 P.m1)
    (Extraction.dav ex P.c2 P.m1);
  Alcotest.check access_vector "DAV c2.m3 = DAV c1.m3" (Extraction.dav ex P.c1 P.m3)
    (Extraction.dav ex P.c2 P.m3);
  Alcotest.check site "defining site of c2.m3" (P.c1, P.m3) (Extraction.defining_site ex P.c2 P.m3);
  Alcotest.check site "defining site of c2.m2 (override)" (P.c2, P.m2)
    (Extraction.defining_site ex P.c2 P.m2)

let test_paper_dsc_psc () =
  let ex = ex () in
  Alcotest.(check (list method_name))
    "DSC c1.m1 = {m2, m3}" [ P.m2; P.m3 ]
    (Name.Method.Set.elements (Extraction.dsc ex P.c1 P.m1));
  Alcotest.(check (list method_name))
    "DSC c2.m1 inherited" [ P.m2; P.m3 ]
    (Name.Method.Set.elements (Extraction.dsc ex P.c2 P.m1));
  Alcotest.(check int) "DSC c1.m2 empty" 0 (Name.Method.Set.cardinal (Extraction.dsc ex P.c1 P.m2));
  Alcotest.(check int) "DSC c1.m3 empty (cross-object send only)" 0
    (Name.Method.Set.cardinal (Extraction.dsc ex P.c1 P.m3));
  Alcotest.(check (list site))
    "PSC c2.m2 = {(c1,m2)}"
    [ (P.c1, P.m2) ]
    (Site.Set.elements (Extraction.psc ex P.c2 P.m2));
  Alcotest.(check int) "PSC c1.m2 empty" 0 (Site.Set.cardinal (Extraction.psc ex P.c1 P.m2))

let dav_of src cls meth =
  let schema = schema_of_source src in
  let ex = Extraction.build schema in
  Extraction.dav ex (cn cls) (mn meth)

let test_write_dominates () =
  (* A field both read and assigned is Write (definition 6). *)
  let v = dav_of "class a is fields f : integer; method m is f := f + 1; end end" "a" "m" in
  Alcotest.check access_vector "read+write = Write" (av [ ("f", Mode.Write) ]) v

let test_branches_merged () =
  (* Both branches of [if] and [while] bodies contribute (conservatism). *)
  let v =
    dav_of
      {|class a is
          fields f : integer; g : integer; c : boolean;
          method m is
            if c then f := 1; else g := f; end
            while c do g := g + 1; end
          end
        end|}
      "a" "m"
  in
  Alcotest.check access_vector "merged"
    (av [ ("c", Mode.Read); ("f", Mode.Write); ("g", Mode.Write) ])
    v

let test_receiver_counts_as_read () =
  (* "f appears in some expression, including messages" — receivers and
     arguments. *)
  let v =
    dav_of
      {|class t is method tick(p) is end end
        class a is
          fields r : t; f : integer;
          method m is send tick(f) to r; end
        end|}
      "a" "m"
  in
  Alcotest.check access_vector "receiver and argument reads"
    (av [ ("r", Mode.Read); ("f", Mode.Read) ])
    v

let test_locals_shadow_fields () =
  let v =
    dav_of
      {|class a is
          fields f : integer;
          method m is
            var f := 1;
            f := f + 1;
          end
        end|}
      "a" "m"
  in
  Alcotest.check access_vector "shadowed field untouched" AV.empty v

let test_block_scoped_shadowing () =
  let v =
    dav_of
      {|class a is
          fields f : integer;
          method m is
            if true then
              var f := 1;
              f := 2;
            end
            f := 3;
          end
        end|}
      "a" "m"
  in
  Alcotest.check access_vector "assignment after block hits the field"
    (av [ ("f", Mode.Write) ]) v

let test_params_shadow_fields () =
  let v =
    dav_of
      {|class a is
          fields p : integer; f : integer;
          method m(p) is f := p; end
        end|}
      "a" "m"
  in
  Alcotest.check access_vector "param shadows field" (av [ ("f", Mode.Write) ]) v

let test_self_expr_receiver_is_self_call () =
  let schema =
    schema_of_source
      {|class a is
          fields f : integer;
          method w is f := 1; end
          method m is send w to (self); end
        end|}
  in
  let ex = Extraction.build schema in
  Alcotest.(check (list method_name))
    "send to (self) recorded as DSC" [ mn "w" ]
    (Name.Method.Set.elements (Extraction.dsc ex (cn "a") (mn "m")))

let test_unknown_method_raises () =
  let ex = ex () in
  check_raises_invalid "dav of unknown" (fun () -> Extraction.dav ex P.c1 P.m4)

(* --- update_classes vs a from-scratch build, on random edit sequences --- *)

let extraction_agrees schema exa exb =
  List.for_all
    (fun c ->
      List.for_all
        (fun m ->
          Access_vector.equal (Extraction.dav exa c m) (Extraction.dav exb c m)
          && Name.Method.Set.equal (Extraction.dsc exa c m) (Extraction.dsc exb c m)
          && Site.Set.equal (Extraction.psc exa c m) (Extraction.psc exb c m)
          && Site.equal (Extraction.defining_site exa c m) (Extraction.defining_site exb c m)
          && Extraction.has_dynamic_sends exa c m = Extraction.has_dynamic_sends exb c m)
        (Schema.methods schema c))
    (Schema.classes schema)

(* A method-level edit with a body built from the class's own vocabulary:
   a field bump, a field read, a self-send, or an empty body. *)
let gen_edit rng schema =
  let module Rng = Tavcc_sim.Rng in
  let classes = Schema.classes schema in
  let cls = List.nth classes (Rng.int rng (List.length classes)) in
  let gen_body () =
    let fields = Schema.fields schema cls in
    let meths = Schema.methods schema cls in
    match Rng.int rng 4 with
    | 0 when fields <> [] ->
        let f = Name.Field.to_string (List.nth fields (Rng.int rng (List.length fields))).Schema.f_name in
        [ Tavcc_lang.Ast.Assign (f, Tavcc_lang.Ast.Binop (Tavcc_lang.Ast.Add, Tavcc_lang.Ast.Ident f, Tavcc_lang.Ast.Lit (Value.Vint 1))) ]
    | 1 when fields <> [] ->
        let f = Name.Field.to_string (List.nth fields (Rng.int rng (List.length fields))).Schema.f_name in
        [ Tavcc_lang.Ast.Return (Tavcc_lang.Ast.Ident f) ]
    | 2 when meths <> [] ->
        let m = List.nth meths (Rng.int rng (List.length meths)) in
        [ Tavcc_lang.Ast.Send_stmt
            { Tavcc_lang.Ast.msg_prefix = None; msg_name = m; msg_args = [];
              msg_recv = Tavcc_lang.Ast.Rself; msg_pos = None } ]
    | _ -> []
  in
  let own = Schema.own_methods schema cls in
  match Rng.int rng 3 with
  | 0 ->
      let name = Name.Method.of_string (Printf.sprintf "zz%d" (Rng.int rng 3)) in
      Tavcc_core.Incremental.Add_method
        (cls, { Schema.m_name = name; m_params = []; m_body = gen_body () })
  | 1 when own <> [] ->
      let md = List.nth own (Rng.int rng (List.length own)) in
      Tavcc_core.Incremental.Update_method
        (cls, { md with Schema.m_body = gen_body () })
  | _ when own <> [] ->
      let md = List.nth own (Rng.int rng (List.length own)) in
      Tavcc_core.Incremental.Remove_method (cls, md.Schema.m_name)
  | _ ->
      let name = Name.Method.of_string (Printf.sprintf "zz%d" (Rng.int rng 3)) in
      Tavcc_core.Incremental.Add_method
        (cls, { Schema.m_name = name; m_params = []; m_body = gen_body () })

let prop_update_classes_differential =
  QCheck.Test.make ~count:50 ~name:"update_classes = from-scratch build over random edits"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
    (fun seed ->
      let module Rng = Tavcc_sim.Rng in
      let rng = Rng.create seed in
      let schema =
        Tavcc_sim.Workload.make_schema rng
          { Tavcc_sim.Workload.default_params with sp_depth = 2; sp_fanout = 2 }
      in
      let rec go schema ex n =
        if n = 0 then true
        else
          let edit = gen_edit rng schema in
          match Tavcc_core.Incremental.apply_edit schema edit with
          | Error _ -> go schema ex n (* rejected edit: try another *)
          | Ok schema' ->
              let touched =
                Tavcc_core.Incremental.affected_classes schema'
                  (Tavcc_core.Incremental.edited_class edit)
              in
              let ex' = Extraction.update_classes ex schema' touched in
              let fresh = Extraction.build schema' in
              if not (extraction_agrees schema' ex' fresh) then
                QCheck.Test.fail_reportf
                  "incremental extraction diverged at edit %d (seed %d)" n seed
              else go schema' ex' (n - 1)
      in
      go schema (Extraction.build schema) 5)

let suite =
  [
    case "paper DAVs exactly" test_paper_davs;
    case "inherited methods share the defining site" test_inherited_shares_site;
    case "paper DSC and PSC sets" test_paper_dsc_psc;
    case "write dominates read" test_write_dominates;
    case "if/while branches merged" test_branches_merged;
    case "receiver counts as read" test_receiver_counts_as_read;
    case "locals shadow fields" test_locals_shadow_fields;
    case "block-scoped shadowing" test_block_scoped_shadowing;
    case "params shadow fields" test_params_shadow_fields;
    case "(self) receiver is a self-call" test_self_expr_receiver_is_self_call;
    case "unknown method raises" test_unknown_method_raises;
    QCheck_alcotest.to_alcotest prop_update_classes_differential;
  ]
