(* WAL, snapshots and repeating-history restart. *)

open Tavcc_model
open Tavcc_recovery
open Helpers

let schema () =
  schema_of_source
    {|class item is
        fields a : integer; b : integer; tag : string;
      end|}

let item = cn "item"

let setup () =
  let store = Store.create (schema ()) in
  let o1 = Store.new_instance store item ~init:[ (fn "a", Value.Vint 1) ] in
  let o2 = Store.new_instance store item ~init:[ (fn "a", Value.Vint 2) ] in
  (store, o1, o2)

let test_wal_stability () =
  let wal = Wal.create () in
  ignore (Wal.append wal (Wal.Begin 1));
  ignore (Wal.append wal (Wal.Commit 1));
  Alcotest.(check int) "nothing stable before flush" 0 (Wal.stable_lsn wal);
  Alcotest.(check int) "volatile tail visible" 2 (List.length (Wal.all wal));
  Wal.flush wal;
  Alcotest.(check int) "stable after flush" 2 (Wal.stable_lsn wal);
  ignore (Wal.append wal (Wal.Begin 2));
  Alcotest.(check int) "new tail volatile" 2 (List.length (Wal.stable wal));
  Alcotest.(check int) "lsn monotonic" 3 (Wal.length wal)

let test_snapshot_roundtrip () =
  let store, o1, o2 = setup () in
  let snap = Recovery.Snapshot.take store in
  Store.write store o1 (fn "a") (Value.Vint 100);
  Store.write store o2 (fn "tag") (Value.Vstring "dirty");
  let o3 = Store.new_instance store item in
  Recovery.Snapshot.restore store snap;
  Alcotest.check value "o1.a rewound" (Value.Vint 1) (Store.read store o1 (fn "a"));
  Alcotest.check value "o2.tag rewound" (Value.Vstring "") (Store.read store o2 (fn "tag"));
  Alcotest.(check bool) "newborn dropped" false (Store.exists store o3);
  Alcotest.(check int) "snapshot lists instances" 2
    (List.length (Recovery.Snapshot.instances snap))

let test_manager_commit_durable () =
  let store, o1, _ = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 42);
  Alcotest.check value "write applied" (Value.Vint 42)
    (Recovery.Manager.read mgr ~txn:1 o1 (fn "a"));
  Recovery.Manager.commit mgr 1;
  (* Crash: volatile store lost; rebuild from snapshot + stable log. *)
  Recovery.Restart.recover store snap (Wal.stable wal);
  Alcotest.check value "committed write survives" (Value.Vint 42) (Store.read store o1 (fn "a"))

let test_uncommitted_lost () =
  let store, o1, _ = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 42);
  (* No commit, no flush: the update never reached the disk. *)
  Recovery.Restart.recover store snap (Wal.stable wal);
  Alcotest.check value "update gone" (Value.Vint 1) (Store.read store o1 (fn "a"))

let test_loser_undone_from_stable_log () =
  let store, o1, o2 = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  (* T1 commits (forces the log, carrying T2's earlier updates with it);
     T2 is still running at the crash. *)
  Recovery.Manager.begin_txn mgr 2;
  Recovery.Manager.write mgr ~txn:2 o2 (fn "a") (Value.Vint 777);
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 42);
  Recovery.Manager.commit mgr 1;
  Recovery.Manager.write mgr ~txn:2 o2 (fn "b") (Value.Vint 888);
  Recovery.Restart.recover store snap (Wal.stable wal);
  Alcotest.check value "winner redone" (Value.Vint 42) (Store.read store o1 (fn "a"));
  Alcotest.check value "loser's stable update undone" (Value.Vint 2)
    (Store.read store o2 (fn "a"));
  Alcotest.check value "loser's volatile update never applied" (Value.Vint 0)
    (Store.read store o2 (fn "b"));
  Alcotest.(check (list int)) "losers" [ 2 ] (Recovery.Restart.losers (Wal.stable wal));
  Alcotest.(check (list int)) "committed" [ 1 ] (Recovery.Restart.committed (Wal.stable wal))

let test_abort_with_clrs () =
  let store, o1, _ = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 50);
  Recovery.Manager.abort mgr 1;
  Alcotest.check value "abort rolled back" (Value.Vint 1) (Store.read store o1 (fn "a"));
  (* The same id restarts and commits a different value; the first
     incarnation's rollback is fully covered by CLRs. *)
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 60);
  Recovery.Manager.commit mgr 1;
  Recovery.Restart.recover store snap (Wal.stable wal);
  Alcotest.check value "second incarnation wins" (Value.Vint 60) (Store.read store o1 (fn "a"))

let test_interleaved_incarnations () =
  (* The scenario that breaks naive whole-log rollback: t1 aborts, t2
     commits a new value, t1 restarts and crashes. *)
  let store, o1, _ = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 5);
  Recovery.Manager.abort mgr 1;
  Recovery.Manager.begin_txn mgr 2;
  Recovery.Manager.write mgr ~txn:2 o1 (fn "a") (Value.Vint 9);
  Recovery.Manager.commit mgr 2;
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 12);
  Wal.flush wal;
  Recovery.Restart.recover store snap (Wal.stable wal);
  Alcotest.check value "t2's committed value restored" (Value.Vint 9)
    (Store.read store o1 (fn "a"))

let test_recover_idempotent () =
  let store, o1, o2 = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 33);
  Recovery.Manager.commit mgr 1;
  Recovery.Manager.begin_txn mgr 2;
  Recovery.Manager.write mgr ~txn:2 o2 (fn "a") (Value.Vint 44);
  Wal.flush wal;
  Recovery.Restart.recover store snap (Wal.stable wal);
  let dump () =
    List.map
      (fun o -> (Store.read store o (fn "a"), Store.read store o (fn "b")))
      [ o1; o2 ]
  in
  let first = dump () in
  Recovery.Restart.recover store snap (Wal.stable wal);
  Alcotest.(check bool) "second recovery is a no-op" true (first = dump ())

let test_manager_errors () =
  let store, o1, _ = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  Recovery.Manager.begin_txn mgr 1;
  check_raises_invalid "double begin" (fun () -> Recovery.Manager.begin_txn mgr 1);
  check_raises_invalid "write outside txn" (fun () ->
      Recovery.Manager.write mgr ~txn:9 o1 (fn "a") (Value.Vint 0));
  check_raises_invalid "checkpoint with active txn" (fun () ->
      Recovery.Manager.checkpoint mgr);
  Recovery.Manager.commit mgr 1;
  check_raises_invalid "commit twice" (fun () -> Recovery.Manager.commit mgr 1)

(* Property: crash at a random log position; recovery must equal the
   state obtained by serially applying exactly the stably-committed
   transactions. *)
let prop_crash_anywhere =
  QCheck.Test.make ~count:120 ~name:"crash anywhere: committed state recovered exactly"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let store, o1, o2 = setup () in
      let wal = Wal.create () in
      let mgr = Recovery.Manager.create store wal in
      let snap = Recovery.Manager.checkpoint mgr in
      (* Serial transactions, some committing, some aborting, with a few
         extra flushes sprinkled in. *)
      let expected = Hashtbl.create 8 in
      Hashtbl.replace expected (o1, fn "a") (Value.Vint 1);
      Hashtbl.replace expected (o2, fn "a") (Value.Vint 2);
      let committed_state = Hashtbl.copy expected in
      for txn = 1 to 8 do
        Recovery.Manager.begin_txn mgr txn;
        let target = if Tavcc_sim.Rng.bool rng then o1 else o2 in
        let field = if Tavcc_sim.Rng.bool rng then fn "a" else fn "b" in
        let v = Value.Vint (Tavcc_sim.Rng.int rng 1000) in
        Recovery.Manager.write mgr ~txn target field v;
        if Tavcc_sim.Rng.chance rng 0.2 then Wal.flush wal;
        if Tavcc_sim.Rng.chance rng 0.7 then begin
          Recovery.Manager.commit mgr txn;
          Hashtbl.replace committed_state (target, field) v
        end
        else Recovery.Manager.abort mgr txn
      done;
      (* Crash: only the stable prefix survives. *)
      let stable = Wal.stable wal in
      Recovery.Restart.recover store snap stable;
      (* Expected: committed state *of the transactions whose Commit made
         it to the stable log*. *)
      let surviving = Recovery.Restart.committed stable in
      let truth = Hashtbl.create 8 in
      Hashtbl.replace truth (o1, fn "a") (Value.Vint 1);
      Hashtbl.replace truth (o2, fn "a") (Value.Vint 2);
      List.iter
        (fun txn ->
          List.iter
            (function
              | Wal.Update { txn = x; oid; field; after; _ } when x = txn ->
                  Hashtbl.replace truth ((oid, field)) after
              | _ -> ())
            stable)
        surviving;
      List.for_all
        (fun o ->
          List.for_all
            (fun f ->
              let expected =
                Option.value ~default:(Value.default Value.Tint)
                  (Hashtbl.find_opt truth (o, f))
              in
              let expected = if f = fn "tag" then Value.Vstring "" else expected in
              Value.equal (Store.read store o f) expected)
            [ fn "a"; fn "b" ])
        [ o1; o2 ])

(* Property: crash after EVERY prefix of the log, not just the one the
   sprinkled flushes produced.  The truth is committed-incarnation
   replay: a Begin resets a transaction's pending updates (ids are
   reused across restarts), a Commit freezes them, and the frozen lists
   apply in commit order over the initial state. *)
let committed_prefix_truth base prefix =
  let truth = Hashtbl.copy base in
  let pending = Hashtbl.create 8 in
  let committed = ref [] in
  List.iter
    (fun (r : Wal.record) ->
      match r with
      | Wal.Begin t -> Hashtbl.replace pending t []
      | Wal.Update { txn; oid; field; after; _ } -> (
          match Hashtbl.find_opt pending txn with
          | Some l -> Hashtbl.replace pending txn ((oid, field, after) :: l)
          | None -> ())
      | Wal.Clr _ | Wal.Insert _ | Wal.Delete _ -> ()
      | Wal.Commit t -> (
          match Hashtbl.find_opt pending t with
          | Some l ->
              committed := List.rev l :: !committed;
              Hashtbl.remove pending t
          | None -> ())
      | Wal.Abort t -> Hashtbl.remove pending t
      | Wal.Checkpoint _ -> ())
    prefix;
  List.iter
    (List.iter (fun (oid, field, after) -> Hashtbl.replace truth (oid, field) after))
    (List.rev !committed);
  truth

let prop_crash_every_prefix =
  QCheck.Test.make ~count:40 ~name:"crash after every prefix: committed prefix replayed"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let rng = Tavcc_sim.Rng.create seed in
      let store, o1, o2 = setup () in
      let wal = Wal.create () in
      let mgr = Recovery.Manager.create store wal in
      let snap = Recovery.Manager.checkpoint mgr in
      let base = Hashtbl.create 8 in
      Hashtbl.replace base (o1, fn "a") (Value.Vint 1);
      Hashtbl.replace base (o2, fn "a") (Value.Vint 2);
      (* Serial transactions with id reuse: an aborted id may restart,
         so prefixes cut through several incarnations of the same id. *)
      let ids = ref [] in
      for i = 1 to 10 do
        let txn =
          match !ids with
          | t :: _ when Tavcc_sim.Rng.chance rng 0.3 -> t
          | _ -> i
        in
        Recovery.Manager.begin_txn mgr txn;
        for _ = 1 to 1 + Tavcc_sim.Rng.int rng 2 do
          let target = if Tavcc_sim.Rng.bool rng then o1 else o2 in
          let field = if Tavcc_sim.Rng.bool rng then fn "a" else fn "b" in
          Recovery.Manager.write mgr ~txn target field
            (Value.Vint (Tavcc_sim.Rng.int rng 1000))
        done;
        if Tavcc_sim.Rng.chance rng 0.2 then Wal.flush wal;
        if Tavcc_sim.Rng.chance rng 0.6 then Recovery.Manager.commit mgr txn
        else begin
          Recovery.Manager.abort mgr txn;
          ids := txn :: !ids
        end
      done;
      Wal.flush wal;
      let log = Wal.all wal in
      let n = List.length log in
      let ok = ref true in
      for k = 0 to n do
        let prefix = List.filteri (fun i _ -> i < k) log in
        let rstore, r1, r2 = setup () in
        ignore r1;
        ignore r2;
        Recovery.Restart.recover rstore snap prefix;
        let truth = committed_prefix_truth base prefix in
        List.iter
          (fun o ->
            List.iter
              (fun f ->
                let expected =
                  Option.value ~default:(Value.Vint 0) (Hashtbl.find_opt truth (o, f))
                in
                if not (Value.equal (Store.read rstore o f) expected) then ok := false)
              [ fn "a"; fn "b" ])
          [ o1; o2 ]
      done;
      !ok)

(* The same crash-after-every-prefix property, but against the on-disk
   store of [Tavcc_storage]: for every record prefix of a real engine
   run's WAL — plus torn byte tails cut inside the next record — a fresh
   engine recovering from that log alone (data and double-write files
   lost entirely, the worst crash the WAL must survive) must rebuild
   exactly the committed-prefix state.  Mid-checkpoint crashes ride on
   the crash matrix's [cck:n] plans, which kill the engine between the
   page flushes of a fuzzy checkpoint. *)
let prop_disk_every_prefix =
  QCheck.Test.make ~count:5 ~name:"disk engine: crash after every WAL prefix + torn tails"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)) (fun seed ->
      let module Engine = Tavcc_storage.Engine in
      let module Matrix = Tavcc_storage.Crash_matrix in
      let module Codec = Tavcc_chaos.Codec in
      let rec rm path =
        if Sys.file_exists path then
          if Sys.is_directory path then begin
            Array.iter (fun x -> rm (Filename.concat path x)) (Sys.readdir path);
            Sys.rmdir path
          end
          else Sys.remove path
      in
      let write_file path s =
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
      in
      let schema =
        match
          Schema.build
            [
              {
                Schema.c_name = Name.Class.of_string "obj";
                c_parents = [];
                c_fields = [ (fn "a", Value.Tint); (fn "b", Value.Tstring) ];
                c_methods = [];
              };
            ]
        with
        | Ok s -> s
        | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)
      in
      let dir = "_t_storage/rec_prefix" in
      rm dir;
      let cfg = { (Engine.default_config ~dir) with page_size = 512; pool_pages = 3 } in
      let eng = Engine.create cfg in
      let store = Engine.store eng schema in
      let rng = Tavcc_sim.Rng.create seed in
      let live = ref [] in
      for i = 0 to 19 do
        let o =
          Store.new_instance
            ~init:[ (fn "a", Value.Vint i); (fn "b", Value.Vstring "init") ]
            store (Name.Class.of_string "obj")
        in
        live := o :: !live
      done;
      Engine.checkpoint eng;
      for k = 1 to 8 do
        Engine.begin_txn eng k;
        for _ = 1 to 1 + Tavcc_sim.Rng.int rng 3 do
          match Tavcc_sim.Rng.int rng 10 with
          | 0 ->
              let o =
                Store.new_instance
                  ~init:[ (fn "a", Value.Vint k); (fn "b", Value.Vstring "mid") ]
                  store (Name.Class.of_string "obj")
              in
              live := o :: !live
          | 1 when List.length !live > 4 ->
              let o = Tavcc_sim.Rng.pick rng !live in
              Store.delete_instance store o;
              live := List.filter (fun x -> not (Oid.equal x o)) !live
          | _ ->
              let o = Tavcc_sim.Rng.pick rng !live in
              if Tavcc_sim.Rng.bool rng then
                Store.write store o (fn "a") (Value.Vint (Tavcc_sim.Rng.int rng 1000))
              else
                Store.write store o (fn "b")
                  (Value.Vstring (String.make (1 + Tavcc_sim.Rng.int rng 40) 'y'))
        done;
        if Tavcc_sim.Rng.chance rng 0.3 then begin
          Engine.abort eng k;
          (* the mirror is only used to pick op targets; a precise redo
             of the abort is not needed, reads of stale oids are culled *)
          live := List.filter (fun o -> Store.exists store o) !live
        end
        else Engine.commit eng k
      done;
      Engine.flush eng;
      let records = Wal.all (Engine.wal eng) in
      Engine.close ~flush:false eng;
      let n = List.length records in
      let ok = ref true in
      let check_bytes label wal_bytes expect_records =
        let d2 = "_t_storage/rec_prefix_r" in
        rm d2;
        Unix.mkdir d2 0o755;
        write_file (Filename.concat d2 "wal.log") wal_bytes;
        let eng2 =
          Engine.create { cfg with dir = d2; io_hook = None }
        in
        let dump = Engine.dump eng2 in
        Engine.close ~flush:false eng2;
        if dump <> Matrix.oracle expect_records then begin
          ok := false;
          QCheck.Test.fail_reportf "prefix %s: recovered state diverges from oracle" label
        end
      in
      for k = 0 to n do
        let prefix = List.filteri (fun i _ -> i < k) records in
        let bytes = Codec.encode prefix in
        check_bytes (string_of_int k) bytes prefix;
        (* torn tails: a few bytes of the next record must be discarded *)
        if k < n then begin
          let next = Codec.encode_record (List.nth records k) in
          List.iter
            (fun cut ->
              if cut < String.length next then
                check_bytes
                  (Printf.sprintf "%d+torn%d" k cut)
                  (bytes ^ String.sub next 0 cut)
                  prefix)
            [ 1; 9 ]
        end
      done;
      (* mid-checkpoint crashes via the matrix's cck plans *)
      let mcfg =
        {
          (Matrix.default ~dir:"_t_storage/rec_prefix_cck" ~seed ()) with
          txns = 6;
          objs = 32;
          max_states = 0;
        }
      in
      List.iter
        (fun nio ->
          let v, _, _ =
            Matrix.run_plan mcfg
              {
                Tavcc_chaos.Fault.injections = [ Tavcc_chaos.Fault.Crash_in_checkpoint nio ];
                schedule = Tavcc_chaos.Fault.none.Tavcc_chaos.Fault.schedule;
              }
          in
          if v <> [] then begin
            ok := false;
            QCheck.Test.fail_reportf "cck:%d: %s" nio (String.concat "; " v)
          end)
        [ 1; 3; 6 ];
      !ok)

(* The documented no-delete limitation: a snapshotted instance deleted
   after the snapshot cannot be rebuilt, so restore — and recovery,
   which restores first — must refuse rather than resurrect a partial
   store. *)
let test_delete_then_recover_refused () =
  let store, o1, _ = setup () in
  let wal = Wal.create () in
  let mgr = Recovery.Manager.create store wal in
  let snap = Recovery.Manager.checkpoint mgr in
  Recovery.Manager.begin_txn mgr 1;
  Recovery.Manager.write mgr ~txn:1 o1 (fn "a") (Value.Vint 42);
  Recovery.Manager.commit mgr 1;
  Store.delete_instance store o1;
  check_raises_invalid "restore refuses after delete" (fun () ->
      Recovery.Snapshot.restore store snap);
  check_raises_invalid "recover refuses after delete" (fun () ->
      Recovery.Restart.recover store snap (Wal.stable wal))

let suite =
  [
    case "wal stability boundary" test_wal_stability;
    case "snapshot round trip" test_snapshot_roundtrip;
    case "committed writes are durable" test_manager_commit_durable;
    case "uncommitted volatile writes are lost" test_uncommitted_lost;
    case "stable loser updates are undone" test_loser_undone_from_stable_log;
    case "abort logs CLRs" test_abort_with_clrs;
    case "interleaved incarnations" test_interleaved_incarnations;
    case "recovery is idempotent" test_recover_idempotent;
    case "manager misuse" test_manager_errors;
    QCheck_alcotest.to_alcotest prop_crash_anywhere;
    QCheck_alcotest.to_alcotest prop_crash_every_prefix;
    QCheck_alcotest.to_alcotest prop_disk_every_prefix;
    case "delete-then-recover is refused" test_delete_then_recover_refused;
  ]
