(* The ODML parser. *)

open Tavcc_model
open Tavcc_lang
open Helpers

let e = Parser.parse_expr
let b = Parser.parse_body

let test_precedence () =
  Alcotest.check expr "mul before add"
    (Ast.Binop (Ast.Add, Ast.Lit (Value.Vint 1), Ast.Binop (Ast.Mul, Ast.Lit (Value.Vint 2), Ast.Lit (Value.Vint 3))))
    (e "1 + 2 * 3");
  Alcotest.check expr "parens win"
    (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, Ast.Lit (Value.Vint 1), Ast.Lit (Value.Vint 2)), Ast.Lit (Value.Vint 3)))
    (e "(1 + 2) * 3");
  Alcotest.check expr "cmp binds looser than add"
    (Ast.Binop (Ast.Lt, Ast.Ident "x", Ast.Binop (Ast.Add, Ast.Ident "y", Ast.Lit (Value.Vint 1))))
    (e "x < y + 1");
  Alcotest.check expr "and/or"
    (Ast.Binop (Ast.Or, Ast.Binop (Ast.And, Ast.Ident "a", Ast.Ident "b"), Ast.Ident "c"))
    (e "a and b or c");
  Alcotest.check expr "not"
    (Ast.Unop (Ast.Not, Ast.Binop (Ast.Eq, Ast.Ident "a", Ast.Ident "b")))
    (e "not a = b");
  Alcotest.check expr "unary minus"
    (Ast.Binop (Ast.Sub, Ast.Lit (Value.Vint 1), Ast.Unop (Ast.Neg, Ast.Ident "x")))
    (e "1 - -x")

let test_left_assoc () =
  Alcotest.check expr "a - b - c"
    (Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Ident "a", Ast.Ident "b"), Ast.Ident "c"))
    (e "a - b - c")

let test_literals () =
  Alcotest.check expr "float" (Ast.Lit (Value.Vfloat 2.5)) (e "2.5");
  Alcotest.check expr "string" (Ast.Lit (Value.Vstring "hi")) (e {|"hi"|});
  Alcotest.check expr "true" (Ast.Lit (Value.Vbool true)) (e "true");
  Alcotest.check expr "null" (Ast.Lit Value.Vnull) (e "null");
  Alcotest.check expr "self" Ast.Self (e "self");
  Alcotest.check expr "new" (Ast.New (cn "c")) (e "new c")

let msg ?prefix ?(args = []) ?(recv = Ast.Rself) name =
  {
    Ast.msg_prefix = Option.map cn prefix;
    msg_name = mn name;
    msg_args = args;
    msg_recv = recv;
    msg_pos = None;
  }

let test_sends () =
  Alcotest.check body "simple send no parens"
    [ Ast.Send_stmt (msg "m3") ]
    (b "send m3 to self;");
  Alcotest.check body "send with args"
    [ Ast.Send_stmt (msg "m2" ~args:[ Ast.Ident "p1" ]) ]
    (b "send m2(p1) to self;");
  Alcotest.check body "prefixed send"
    [ Ast.Send_stmt (msg "m2" ~prefix:"c1" ~args:[ Ast.Ident "p1" ]) ]
    (b "send c1.m2(p1) to self;");
  Alcotest.check body "send to field"
    [ Ast.Send_stmt (msg "m" ~recv:(Ast.Rexpr (Ast.Ident "f3"))) ]
    (b "send m to f3;");
  Alcotest.check body "send as expression"
    [ Ast.Assign ("x", Ast.Send (msg "get" ~recv:(Ast.Rexpr (Ast.Ident "other")))) ]
    (b "x := send get to other;")

let test_statements () =
  Alcotest.check body "var" [ Ast.Var ("v", Ast.Lit (Value.Vint 1)) ] (b "var v := 1;");
  Alcotest.check body "return" [ Ast.Return (Ast.Ident "x") ] (b "return x;");
  Alcotest.check body "if-else"
    [
      Ast.If
        ( Ast.Ident "c",
          [ Ast.Assign ("x", Ast.Lit (Value.Vint 1)) ],
          [ Ast.Assign ("x", Ast.Lit (Value.Vint 2)) ] );
    ]
    (b "if c then x := 1; else x := 2; end");
  Alcotest.check body "while"
    [ Ast.While (Ast.Binop (Ast.Gt, Ast.Ident "n", Ast.Lit (Value.Vint 0)),
        [ Ast.Assign ("n", Ast.Binop (Ast.Sub, Ast.Ident "n", Ast.Lit (Value.Vint 1))) ]) ]
    (b "while n > 0 do n := n - 1; end")

let test_class_decl () =
  let ds =
    Parser.parse_decls
      {|
class a is
  fields
    f : integer;
    g : a;
  method m(p, q) is
    f := p;
  end
end
class b extends a is
end
|}
  in
  Alcotest.(check int) "two classes" 2 (List.length ds);
  let da = List.nth ds 0 in
  Alcotest.check class_name "name" (cn "a") da.Schema.c_name;
  Alcotest.(check int) "fields" 2 (List.length da.Schema.c_fields);
  Alcotest.(check (list string)) "params" [ "p"; "q" ]
    (List.hd da.Schema.c_methods).Schema.m_params;
  let db = List.nth ds 1 in
  Alcotest.(check (list class_name)) "parents" [ cn "a" ] db.Schema.c_parents

let test_multiple_inheritance_syntax () =
  let ds = Parser.parse_decls "class a is end class b is end class c extends a, b is end" in
  Alcotest.(check (list class_name))
    "two parents" [ cn "a"; cn "b" ] (List.nth ds 2).Schema.c_parents

let expect_syntax_error src =
  match Parser.parse_decls src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected syntax error on %S" src

let test_errors () =
  expect_syntax_error "class is end";
  expect_syntax_error "class a is method m is x := ; end end";
  expect_syntax_error "class a is method m is send to self; end end";
  expect_syntax_error "garbage";
  match Parser.parse_expr "1 +" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected error on dangling operator"

let suite =
  [
    case "precedence" test_precedence;
    case "left associativity" test_left_assoc;
    case "literals and primaries" test_literals;
    case "message forms" test_sends;
    case "statements" test_statements;
    case "class declarations" test_class_decl;
    case "multiple inheritance syntax" test_multiple_inheritance_syntax;
    case "syntax errors" test_errors;
  ]
