(* The persistent storage engine: slotted pages, the buffer pool, and
   crash recovery against the page-level crash matrix. *)

open Tavcc_model
module Page = Tavcc_storage.Page
module Pool = Tavcc_storage.Buffer_pool
module Engine = Tavcc_storage.Engine
module Matrix = Tavcc_storage.Crash_matrix
module Rng = Tavcc_sim.Rng
open Helpers

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

(* --- record payload codec --- *)

let random_value rng =
  match Rng.int rng 6 with
  | 0 -> Value.Vint (Rng.int rng 1_000_000 - 500_000)
  | 1 -> Value.Vbool (Rng.bool rng)
  | 2 ->
      let n = Rng.int rng 24 in
      Value.Vstring (String.init n (fun _ -> Char.chr (Rng.int rng 256)))
  | 3 -> Value.Vfloat (Int64.float_of_bits (Rng.next64 rng))
  | 4 -> Value.Vref (Oid.of_int (Rng.int rng 10_000))
  | _ -> Value.Vnull

let random_rec rng =
  {
    Page.Rec.r_oid = Rng.int rng 1_000_000;
    r_cls = String.init (Rng.int rng 12) (fun _ -> Char.chr (32 + Rng.int rng 95));
    r_slots =
      Array.init (Rng.int rng 6) (fun i ->
          (Printf.sprintf "f%d_%c" i (Char.chr (97 + Rng.int rng 26)), random_value rng));
  }

(* structural equality that treats NaN as equal to itself *)
let rec_eq a b = compare a b = 0

let prop_rec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"page record codec round-trips" seed_arb (fun seed ->
      let rng = Rng.create seed in
      let r = random_rec rng in
      match Page.Rec.decode (Page.Rec.encode r) with
      | Some r' -> rec_eq r r'
      | None -> false)

let prop_rec_cut =
  QCheck.Test.make ~count:120 ~name:"record codec refuses every byte-cut prefix" seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      let s = Page.Rec.encode (random_rec rng) in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        if Page.Rec.decode (String.sub s 0 k) <> None then ok := false
      done;
      !ok)

(* --- page image checksumming --- *)

let prop_page_bitflip =
  QCheck.Test.make ~count:150 ~name:"any flipped byte fails the page checksum" seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      let page = Page.create 512 in
      for i = 0 to 5 do
        ignore (Page.insert page (Printf.sprintf "payload-%d-%d" seed i))
      done;
      let img = Page.to_bytes page in
      (match Page.of_bytes img with Ok _ -> () | Error e -> failwith e);
      let pos = Rng.int rng (Bytes.length img) in
      let old = Bytes.get img pos in
      let nw = Char.chr ((Char.code old + 1 + Rng.int rng 254) mod 256) in
      if nw = old then true
      else begin
        Bytes.set img pos nw;
        match Page.of_bytes img with Ok _ -> false | Error _ -> true
      end)

let prop_page_torn =
  QCheck.Test.make ~count:60 ~name:"torn page images (prefix + zeros) are rejected" seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      let page = Page.create 512 in
      for i = 0 to 7 do
        ignore (Page.insert page (String.make (10 + Rng.int rng 30) (Char.chr (65 + i))))
      done;
      let img = Page.to_bytes page in
      let ok = ref true in
      for _ = 1 to 40 do
        let k = Rng.int rng (Bytes.length img) in
        let torn = Bytes.make (Bytes.length img) '\000' in
        Bytes.blit img 0 torn 0 k;
        (match Page.of_bytes torn with
        | Ok _ -> ok := false
        | Error _ -> ());
        if Page.is_zero torn && k > 12 then ok := false
      done;
      !ok)

(* --- page ops against a model --- *)

let prop_page_ops =
  QCheck.Test.make ~count:150 ~name:"page: random insert/delete/replace/compact vs model"
    seed_arb (fun seed ->
      let rng = Rng.create seed in
      let page = Page.create 512 in
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      let check_model () =
        Hashtbl.iter
          (fun slot payload ->
            if Page.read_slot page slot <> Some payload then ok := false)
          model
      in
      let slots () = Hashtbl.fold (fun k _ l -> k :: l) model [] in
      for _ = 1 to 150 do
        (match Rng.int rng 10 with
        | 0 | 1 | 2 | 3 -> (
            let payload = String.make (Rng.int rng 90) (Char.chr (33 + Rng.int rng 90)) in
            let cap = Page.insert_capacity page in
            match Page.insert page payload with
            | Some slot ->
                if String.length payload > cap then ok := false;
                Hashtbl.replace model slot payload
            | None -> if String.length payload <= cap then ok := false)
        | 4 | 5 -> (
            match slots () with
            | [] -> ()
            | l ->
                let s = Rng.pick rng l in
                Page.delete page s;
                Hashtbl.remove model s;
                if Page.read_slot page s <> None then ok := false)
        | 6 | 7 -> (
            match slots () with
            | [] -> ()
            | l ->
                let s = Rng.pick rng l in
                let payload = String.make (Rng.int rng 120) (Char.chr (33 + Rng.int rng 90)) in
                if Page.replace page s payload then Hashtbl.replace model s payload
                else if Page.read_slot page s <> Hashtbl.find_opt model s then ok := false)
        | 8 -> Page.compact page
        | _ -> (
            (* serialisation round-trip preserves every slot *)
            match Page.of_bytes (Page.to_bytes page) with
            | Ok p' ->
                Hashtbl.iter
                  (fun slot payload ->
                    if Page.read_slot p' slot <> Some payload then ok := false)
                  model
            | Error _ -> ok := false));
        check_model ()
      done;
      !ok)

(* --- buffer pool invariants --- *)

let dummy_load _ = Page.create 256

let test_pool_ledger () =
  let pool = Pool.create ~pages:2 ~load:dummy_load ~write_back:(fun _ _ -> ()) in
  ignore (Pool.get pool 1);
  Pool.unpin pool 1 ~dirty:false;
  Alcotest.check_raises "ledger underflow raises"
    (Invalid_argument "Buffer_pool.unpin: pin ledger underflow") (fun () ->
      Pool.unpin pool 1 ~dirty:false);
  Alcotest.check_raises "unpin of non-resident raises"
    (Invalid_argument "Buffer_pool.unpin: page not resident") (fun () ->
      Pool.unpin pool 99 ~dirty:false)

let test_pool_all_pinned () =
  let pool = Pool.create ~pages:2 ~load:dummy_load ~write_back:(fun _ _ -> ()) in
  ignore (Pool.get pool 1);
  ignore (Pool.get pool 2);
  Alcotest.check_raises "exhausted pool fails loudly"
    (Failure "Buffer_pool: all frames pinned") (fun () -> ignore (Pool.get pool 3))

let test_pool_dirty_never_dropped () =
  let written = Hashtbl.create 16 in
  let pool =
    Pool.create ~pages:3 ~load:dummy_load ~write_back:(fun pid _ ->
        Hashtbl.replace written pid (1 + Option.value ~default:0 (Hashtbl.find_opt written pid)))
  in
  let dirtied = ref [] in
  for pid = 1 to 12 do
    ignore (Pool.get pool pid);
    let d = pid mod 2 = 0 in
    if d then dirtied := pid :: !dirtied;
    Pool.unpin pool pid ~dirty:d
  done;
  Pool.flush_all pool;
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Printf.sprintf "dirty page %d was written back" pid)
        true (Hashtbl.mem written pid))
    !dirtied;
  Alcotest.(check int) "no pins left" 0 (Pool.pinned pool);
  Alcotest.(check int) "no dirt left" 0 (Pool.dirty_count pool)

let prop_pool_model =
  QCheck.Test.make ~count:80 ~name:"pool: eviction preserves page contents" seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      (* a tiny fake disk: write_back persists, load re-reads *)
      let disk = Hashtbl.create 16 in
      let load pid =
        match Hashtbl.find_opt disk pid with
        | Some img -> (match Page.of_bytes img with Ok p -> p | Error e -> failwith e)
        | None -> Page.create 256
      in
      let write_back pid page = Hashtbl.replace disk pid (Page.to_bytes page) in
      let pool = Pool.create ~pages:3 ~load ~write_back in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      for _ = 1 to 120 do
        let pid = 1 + Rng.int rng 9 in
        let page = Pool.get pool pid in
        let expect = Hashtbl.find_opt model pid in
        let got = Page.read_slot page 0 in
        if Page.nslots page > 0 && got <> expect then ok := false;
        if Rng.bool rng then begin
          let payload = Printf.sprintf "p%d-%d" pid (Rng.int rng 1000) in
          (if Page.nslots page = 0 then ignore (Page.insert page payload)
           else ignore (Page.replace page 0 payload));
          Hashtbl.replace model pid payload;
          Pool.unpin pool pid ~dirty:true
        end
        else Pool.unpin pool pid ~dirty:false
      done;
      !ok && Pool.pinned pool = 0)

let test_pool_two_domain_hammer () =
  let mu = Mutex.create () in
  let disk = Hashtbl.create 16 in
  let load pid =
    match Hashtbl.find_opt disk pid with
    | Some img -> (match Page.of_bytes img with Ok p -> p | Error e -> failwith e)
    | None -> Page.create 256
  in
  let pool =
    Pool.create ~pages:4 ~load ~write_back:(fun pid page ->
        Hashtbl.replace disk pid (Page.to_bytes page))
  in
  let body seed () =
    let rng = Rng.create seed in
    try
      for _ = 1 to 2_000 do
        Mutex.lock mu;
        let pid = 1 + Rng.int rng 12 in
        let page = Pool.get pool pid in
        let dirty = Rng.bool rng in
        if dirty then begin
          let payload = Printf.sprintf "d%d" (Rng.int rng 100) in
          if Page.nslots page = 0 then ignore (Page.insert page payload)
          else ignore (Page.replace page 0 payload)
        end;
        Pool.unpin pool pid ~dirty;
        Mutex.unlock mu
      done;
      true
    with e ->
      Mutex.unlock mu;
      raise e
  in
  let d1 = Domain.spawn (body 11) and d2 = Domain.spawn (body 97) in
  let ok1 = Domain.join d1 and ok2 = Domain.join d2 in
  Alcotest.(check bool) "both domains survived" true (ok1 && ok2);
  Alcotest.(check int) "pin ledger balanced" 0 (Pool.pinned pool);
  Pool.flush_all pool;
  Alcotest.(check int) "no dirt after flush" 0 (Pool.dirty_count pool)

(* --- the engine end-to-end --- *)

let storage_schema () : unit Tavcc_model.Schema.t =
  match
    Schema.build
      [
        {
          Schema.c_name = cn "item";
          c_parents = [];
          c_fields = [ (fn "qty", Value.Tint); (fn "label", Value.Tstring) ];
          c_methods = [];
        };
      ]
  with
  | Ok s -> s
  | Error e -> failwith (Format.asprintf "%a" Schema.pp_error e)

let with_dir name f =
  let dir = Filename.concat "_t_storage" name in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun x -> rm (Filename.concat path x)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  f dir

let small_config dir =
  { (Engine.default_config ~dir) with page_size = 512; pool_pages = 4 }

let test_engine_persists () =
  with_dir "persist" (fun dir ->
      let schema = storage_schema () in
      let eng = Engine.create (small_config dir) in
      let store = Engine.store eng schema in
      let oids =
        List.init 10 (fun i ->
            Store.new_instance
              ~init:[ (fn "qty", Value.Vint i); (fn "label", Value.Vstring (Printf.sprintf "it%d" i)) ]
              store (cn "item"))
      in
      Store.write store (List.nth oids 3) (fn "qty") (Value.Vint 333);
      Store.delete_instance store (List.nth oids 7);
      let extent_before = Store.extent store (cn "item") in
      Engine.close eng;
      (* a fresh engine over the same directory sees the same world *)
      let eng2 = Engine.create (small_config dir) in
      let store2 = Engine.store eng2 schema in
      Alcotest.(check int) "instances survive" 9 (Store.instance_count store2);
      Alcotest.(check (list oid)) "extent order survives" extent_before
        (Store.extent store2 (cn "item"));
      Alcotest.(check value) "update survives" (Value.Vint 333)
        (Store.read store2 (List.nth oids 3) (fn "qty"));
      Alcotest.(check bool) "delete survives" false (Store.exists store2 (List.nth oids 7));
      Engine.close eng2)

let test_engine_larger_than_pool () =
  with_dir "bigger" (fun dir ->
      let schema = storage_schema () in
      let eng = Engine.create (small_config dir) in
      let store = Engine.store eng schema in
      let n = 300 in
      let oids =
        Array.init n (fun i ->
            Store.new_instance
              ~init:[ (fn "qty", Value.Vint i); (fn "label", Value.Vstring (String.make 24 'x')) ]
              store (cn "item"))
      in
      let st = Engine.stats eng in
      Alcotest.(check bool)
        (Printf.sprintf "working set (%d pages) exceeds the pool (%d)" st.Engine.s_data_pages
           st.Engine.s_pool_pages)
        true
        (st.Engine.s_data_pages > st.Engine.s_pool_pages);
      Alcotest.(check bool) "evictions happened" true (st.Engine.s_pool.Pool.evictions > 0);
      Array.iteri
        (fun i o ->
          Alcotest.(check value)
            (Printf.sprintf "o%d readable" i)
            (Value.Vint i) (Store.read store o (fn "qty")))
        oids;
      Engine.close eng)

let test_engine_abort_rolls_back () =
  with_dir "abort" (fun dir ->
      let schema = storage_schema () in
      let eng = Engine.create (small_config dir) in
      let store = Engine.store eng schema in
      let a =
        Store.new_instance ~init:[ (fn "qty", Value.Vint 1) ] store (cn "item")
      and b =
        Store.new_instance ~init:[ (fn "qty", Value.Vint 2) ] store (cn "item")
      in
      Engine.begin_txn eng 1;
      Store.write store a (fn "qty") (Value.Vint 100);
      Store.delete_instance store b;
      let c = Store.new_instance ~init:[ (fn "qty", Value.Vint 3) ] store (cn "item") in
      Engine.abort eng 1;
      Alcotest.(check value) "update undone" (Value.Vint 1) (Store.read store a (fn "qty"));
      Alcotest.(check bool) "delete undone" true (Store.exists store b);
      Alcotest.(check value) "deleted image restored" (Value.Vint 2)
        (Store.read store b (fn "qty"));
      Alcotest.(check bool) "insert undone" false (Store.exists store c);
      (* and the rollback itself is durable *)
      Engine.close eng;
      let eng2 = Engine.create (small_config dir) in
      let store2 = Engine.store eng2 schema in
      Alcotest.(check value) "undone update stays undone" (Value.Vint 1)
        (Store.read store2 a (fn "qty"));
      Alcotest.(check bool) "undone insert stays gone" false (Store.exists store2 c);
      Engine.close eng2)

(* --- the crash matrix --- *)

let matrix_config ~dir ~seed =
  { (Matrix.default ~dir ~seed ()) with txns = 8; objs = 48; max_states = 40; max_plans = 14 }

let test_matrix_smoke () =
  with_dir "matrix" (fun dir ->
      let r = Matrix.run (matrix_config ~dir ~seed:3) in
      Alcotest.(check bool)
        (Format.asprintf "%a" Matrix.pp_report r)
        true (Matrix.ok r);
      Alcotest.(check bool) "injections actually fired" true (r.Matrix.m_crashes_fired > 0))

let prop_matrix_seeds =
  QCheck.Test.make ~count:6 ~name:"crash matrix: zero violations across seeds" seed_arb
    (fun seed ->
      let dir = Filename.concat "_t_storage" "matrix_q" in
      let r = Matrix.run (matrix_config ~dir ~seed) in
      if not (Matrix.ok r) then
        QCheck.Test.fail_reportf "%a" (fun fmt r -> Matrix.pp_report fmt r) r;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rec_roundtrip;
    QCheck_alcotest.to_alcotest prop_rec_cut;
    QCheck_alcotest.to_alcotest prop_page_bitflip;
    QCheck_alcotest.to_alcotest prop_page_torn;
    QCheck_alcotest.to_alcotest prop_page_ops;
    Alcotest.test_case "pool: pin ledger" `Quick test_pool_ledger;
    Alcotest.test_case "pool: all pinned fails loudly" `Quick test_pool_all_pinned;
    Alcotest.test_case "pool: dirty never dropped" `Quick test_pool_dirty_never_dropped;
    QCheck_alcotest.to_alcotest prop_pool_model;
    Alcotest.test_case "pool: two-domain pin/unpin hammer" `Quick test_pool_two_domain_hammer;
    Alcotest.test_case "engine: state survives close/reopen" `Quick test_engine_persists;
    Alcotest.test_case "engine: data larger than the pool" `Quick test_engine_larger_than_pool;
    Alcotest.test_case "engine: abort rolls back and stays rolled back" `Quick
      test_engine_abort_rolls_back;
    Alcotest.test_case "crash matrix: smoke" `Quick test_matrix_smoke;
    QCheck_alcotest.to_alcotest prop_matrix_seeds;
  ]
