(* The engine's event trace: sink plumbing, structure, and the
   policy-specific events (wound / die / timeout / deadlock) with their
   ordering and victim identity on seeded runs. *)

open Tavcc_model
module Exec = Tavcc_cc.Exec
module Engine = Tavcc_sim.Engine
module Workload = Tavcc_sim.Workload
module Sink = Tavcc_obs.Sink
open Helpers

let run_chain ?(policy = Engine.Detect) ?(seed = 5) ~txns () =
  let schema = Workload.chain_schema ~levels:3 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let jobs =
    List.init txns (fun i -> (i + 1, [ Exec.Call (oid, mn "m3", [ Value.Vint 1 ]) ]))
  in
  let config =
    { Engine.default_config with seed; yield_on_access = true; policy;
      sink = Sink.ring 100_000; max_restarts = 1000 }
  in
  Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs ()

let events r = List.map snd r.Engine.events
let count pred evs = List.length (List.filter pred evs)

let test_trace_off_by_default () =
  let schema = Workload.chain_schema ~levels:1 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let r =
    Engine.run ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store
      ~jobs:[ (1, [ Exec.Call (oid, mn "m1", [ Value.Vint 1 ]) ]) ] ()
  in
  Alcotest.(check int) "no events" 0 (List.length r.Engine.events)

let test_callback_sink_streams () =
  let schema = Workload.chain_schema ~levels:1 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let seen = ref [] in
  let sink = Sink.callback (fun te -> seen := te :: !seen) in
  let r =
    Engine.run
      ~config:{ Engine.default_config with sink }
      ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store
      ~jobs:[ (1, [ Exec.Call (oid, mn "m1", [ Value.Vint 1 ]) ]) ] ()
  in
  Alcotest.(check int) "result carries no buffer for a callback sink" 0
    (List.length r.Engine.events);
  let evs = List.map snd (List.rev !seen) in
  Alcotest.(check bool) "callback saw begin and commit" true
    (count (function Engine.Ev_begin _ -> true | _ -> false) evs = 1
    && count (function Engine.Ev_commit _ -> true | _ -> false) evs = 1)

let test_ring_capacity () =
  (* A tiny ring keeps only the newest events; the run itself is
     unaffected. *)
  let schema = Workload.chain_schema ~levels:1 in
  let an = Tavcc_core.Analysis.compile schema in
  let store = Store.create schema in
  let oid = Store.new_instance store (cn "chain") in
  let sink = Sink.ring 1 in
  let r =
    Engine.run
      ~config:{ Engine.default_config with sink }
      ~scheme:(Tavcc_cc.Tav_modes.scheme an) ~store
      ~jobs:[ (1, [ Exec.Call (oid, mn "m1", [ Value.Vint 1 ]) ]) ] ()
  in
  Alcotest.(check int) "one survivor" 1 (List.length r.Engine.events);
  (match List.map snd r.Engine.events with
  | [ Engine.Ev_commit 1 ] -> ()
  | _ -> Alcotest.fail "newest event (the commit) should survive");
  Alcotest.(check bool) "drops counted" true (Sink.dropped sink > 0)

let test_trace_structure () =
  let r = run_chain ~txns:4 () in
  let ev = events r in
  Alcotest.(check int) "one commit event per transaction" 4
    (count (function Engine.Ev_commit _ -> true | _ -> false) ev);
  Alcotest.(check int) "begins cover restarts" (4 + r.Engine.aborts)
    (count (function Engine.Ev_begin _ -> true | _ -> false) ev);
  Alcotest.(check int) "abort events match the counter" r.Engine.aborts
    (count (function Engine.Ev_abort _ -> true | _ -> false) ev);
  Alcotest.(check int) "deadlock events match the counter" r.Engine.deadlocks
    (count (function Engine.Ev_deadlock _ -> true | _ -> false) ev);
  (* Every transaction's last event is its commit. *)
  List.iter
    (fun id ->
      let last =
        List.fold_left
          (fun acc e ->
            match e with
            | Engine.Ev_commit t when t = id -> Some `Commit
            | Engine.Ev_begin t when t = id -> Some `Begin
            | Engine.Ev_abort t when t = id -> Some `Abort
            | _ -> acc)
          None ev
      in
      Alcotest.(check bool) (Printf.sprintf "t%d ends committed" id) true (last = Some `Commit))
    [ 1; 2; 3; 4 ]

let test_steps_nondecreasing () =
  let r = run_chain ~txns:4 () in
  let rec mono = function
    | (a, _) :: ((b, _) :: _ as tl) -> a <= b && mono tl
    | _ -> true
  in
  Alcotest.(check bool) "event steps never go backwards" true (mono r.Engine.events);
  Alcotest.(check bool) "steps bounded by the scheduler" true
    (List.for_all (fun (s, _) -> s >= 0 && s <= r.Engine.scheduler_steps) r.Engine.events)

let test_trace_blocked_resumed_pair () =
  let r = run_chain ~txns:3 () in
  let blocked = count (function Engine.Ev_blocked _ -> true | _ -> false) (events r) in
  Alcotest.(check bool) "some blocking traced" true (blocked > 0);
  Alcotest.(check int) "blocked events match the waits counter" r.Engine.lock_waits blocked

(* --- policy-specific events: ordering and victim identity --- *)

(* Index of the first element satisfying [p], or None. *)
let find_index p l =
  let rec go i = function
    | [] -> None
    | x :: tl -> if p x then Some i else go (i + 1) tl
  in
  go 0 l

let test_deadlock_events () =
  let r = run_chain ~policy:Engine.Detect ~txns:4 () in
  let ev = events r in
  let dls =
    List.filter_map (function Engine.Ev_deadlock (c, v) -> Some (c, v) | _ -> None) ev
  in
  Alcotest.(check bool) "cycles found" true (dls <> []);
  List.iter
    (fun (cycle, victim) ->
      Alcotest.(check bool) "victim is in its cycle" true (List.mem victim cycle);
      Alcotest.(check int) "victim is the youngest of the cycle"
        (List.fold_left max min_int cycle) victim)
    dls;
  (* Every deadlock is followed by its victim's abort before that victim
     begins again. *)
  List.iter
    (fun (_, victim) ->
      let after =
        match find_index (function Engine.Ev_deadlock (_, v) -> v = victim | _ -> false) ev with
        | Some i -> List.filteri (fun j _ -> j > i) ev
        | None -> []
      in
      let abort_i = find_index (function Engine.Ev_abort t -> t = victim | _ -> false) after in
      let begin_i = find_index (function Engine.Ev_begin t -> t = victim | _ -> false) after in
      match (abort_i, begin_i) with
      | Some a, Some b -> Alcotest.(check bool) "abort precedes the restart" true (a < b)
      | Some _, None -> ()
      | None, _ -> Alcotest.fail "deadlock victim never aborted")
    dls

let test_wound_events () =
  let r = run_chain ~policy:Engine.Wound_wait ~txns:4 () in
  let ev = events r in
  let wounds =
    List.filter_map (function Engine.Ev_wound (w, v) -> Some (w, v) | _ -> None) ev
  in
  Alcotest.(check bool) "wound events present" true (wounds <> []);
  (* Ids are births here: the wounding transaction is always older. *)
  List.iter
    (fun (w, v) -> Alcotest.(check bool) "older wounds younger" true (w < v))
    wounds;
  (* The wound is followed by the victim's abort, and no deadlock cycle is
     ever counted under prevention. *)
  (match wounds with
  | (_, v0) :: _ ->
      let i = Option.get (find_index (function Engine.Ev_wound _ -> true | _ -> false) ev) in
      let after = List.filteri (fun j _ -> j > i) ev in
      Alcotest.(check bool) "victim aborts after the wound" true
        (find_index (function Engine.Ev_abort t -> t = v0 | _ -> false) after <> None)
  | [] -> ());
  Alcotest.(check int) "no cycle under prevention" 0
    (count (function Engine.Ev_deadlock _ -> true | _ -> false) ev)

let test_died_events () =
  let r = run_chain ~policy:Engine.Wait_die ~txns:4 () in
  let ev = events r in
  let died = List.filter_map (function Engine.Ev_died t -> Some t | _ -> None) ev in
  Alcotest.(check bool) "die events present" true (died <> []);
  (* The oldest transaction never dies, and each death is immediately
     followed by that transaction's own abort. *)
  Alcotest.(check bool) "t1 never dies" true (not (List.mem 1 died));
  List.iteri
    (fun _ t ->
      let i = Option.get (find_index (function Engine.Ev_died t' -> t' = t | _ -> false) ev) in
      match List.nth_opt ev (i + 1) with
      | Some (Engine.Ev_abort t') -> Alcotest.(check int) "dies then aborts itself" t t'
      | _ -> Alcotest.fail "Ev_died must be followed by the victim's Ev_abort")
    died

let test_timeout_events () =
  let r = run_chain ~policy:(Engine.Timeout 10) ~txns:4 () in
  let ev = events r in
  let touts = List.filter_map (function Engine.Ev_timeout t -> Some t | _ -> None) ev in
  Alcotest.(check bool) "timeout events present" true (touts <> []);
  List.iter
    (fun t ->
      let i =
        Option.get (find_index (function Engine.Ev_timeout t' -> t' = t | _ -> false) ev)
      in
      let after = List.filteri (fun j _ -> j > i) ev in
      Alcotest.(check bool) "timed-out txn aborts" true
        (find_index (function Engine.Ev_abort t' -> t' = t | _ -> false) after <> None))
    (List.sort_uniq compare touts);
  Alcotest.(check int) "all commit in the end" 4 r.Engine.commits

let test_pp_event () =
  let s = Format.asprintf "%a" Engine.pp_event (Engine.Ev_deadlock ([ 1; 2 ], 2)) in
  Alcotest.(check bool) "readable" true (contains s "deadlock {t1,t2}, victim t2")

let suite =
  [
    case "tracing is off by default" test_trace_off_by_default;
    case "callback sink streams events" test_callback_sink_streams;
    case "ring sink keeps the newest events" test_ring_capacity;
    case "trace structure" test_trace_structure;
    case "event steps are monotone" test_steps_nondecreasing;
    case "blocked events match waits" test_trace_blocked_resumed_pair;
    case "deadlock events: victim identity and ordering" test_deadlock_events;
    case "wound events: priority and ordering" test_wound_events;
    case "die events: priority and ordering" test_died_events;
    case "timeout events: ordering" test_timeout_events;
    case "event rendering" test_pp_event;
  ]
