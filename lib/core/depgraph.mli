(** The method dependency graph across composition links.

    Sec. 4.3 of the paper notes that a larger structure than the
    per-class LBR graphs already exists in O2 — the {e method dependency
    graph}, which follows not only inheritance but also {e composition}
    (classes referenced by fields) — and that the access-vector analysis
    "can be merged elegantly" with it.  This module builds that graph:

    - vertices are [(class, method)] pairs, as in {!Lbr};
    - self-call edges are those of the per-class LBR graphs;
    - {e composition edges} follow messages sent to expressions whose
      class is statically known: a field of reference type, a [new C],
      or [self]; the target method is resolved against the receiver's
      declared class and, conservatively, against every class of its
      domain (the run-time receiver may be any subclass instance).

    Its transitive closure answers the impact question the compiled
    scheme needs for conservative preclaiming: {e which classes may a
    top-level message reach?}  (see {!Tavcc_cc.Tav_preclaim}). *)

open Tavcc_model

type t

val build : Extraction.t -> t
(** Builds the whole-schema graph (every class's methods). *)

val build_with : (Name.Class.t -> Lbr.t) -> Extraction.t -> t
(** [build] with a caller-supplied source of per-class LBR graphs, so a
    pipeline that has already built them (e.g. {!Analysis}) does not pay
    for them twice. *)

val vertices : t -> Site.t list
val successors : t -> Site.t -> Site.t list
val edge_count : t -> int

val reachable : t -> Name.Class.t -> Name.Method.t -> Site.Set.t
(** Every site that may execute when the method is sent to a proper
    instance of the class (reflexive-transitive). *)

val reachable_classes : t -> Name.Class.t -> Name.Method.t -> Name.Class.t list
(** The classes whose instances the call may touch: the proper classes
    of the reachable sites, sorted.  This is the preclaiming set. *)

val to_dot : t -> string
