open Tavcc_model
open Tavcc_lang
module CN = Name.Class
module MN = Name.Method

type class_info = {
  lbr : Lbr.t;
  tavs : Access_vector.t MN.Map.t;
  table : Modes_table.t;
}

type t = {
  schema : Ast.body Schema.t;
  ex : Extraction.t;
  infos : class_info CN.Map.t;
  adhoc : Adhoc.t;
}

(* Phase timers: with a registry, each pipeline pass accumulates its
   wall-clock cost per class into a microsecond histogram. *)
let timed metrics name f =
  match metrics with
  | None -> f ()
  | Some m -> Tavcc_obs.Metrics.time_us m name f

let analyse_class ?(adhoc = Adhoc.empty) ?metrics ex schema cls =
  let lbr = timed metrics "analysis.lbr_us" (fun () -> Lbr.build ex cls) in
  let per_vertex = timed metrics "analysis.tav_us" (fun () -> Tav.of_graph ex lbr) in
  let tavs =
    List.fold_left
      (fun m meth ->
        match Lbr.index lbr (cls, meth) with
        | Some i -> MN.Map.add meth per_vertex.(i) m
        | None -> m)
      MN.Map.empty (Schema.methods schema cls)
  in
  let table =
    timed metrics "analysis.table_us" (fun () ->
        Adhoc.apply adhoc schema cls (Modes_table.build cls (MN.Map.bindings tavs)))
  in
  { lbr; tavs; table }

let compile_classes ?adhoc ?reuse ?metrics ~schema ~extraction classes =
  let adhoc =
    match (adhoc, reuse) with
    | Some a, _ -> a
    | None, Some old -> old.adhoc
    | None, None -> Adhoc.empty
  in
  let fresh = CN.Set.of_list classes in
  let infos =
    List.fold_left
      (fun acc cls ->
        let info =
          if CN.Set.mem cls fresh then analyse_class ~adhoc ?metrics extraction schema cls
          else
            match reuse with
            | Some old -> (
                match CN.Map.find_opt cls old.infos with
                | Some info -> info
                | None -> analyse_class ~adhoc ?metrics extraction schema cls)
            | None -> analyse_class ~adhoc ?metrics extraction schema cls
        in
        CN.Map.add cls info acc)
      CN.Map.empty (Schema.classes schema)
  in
  { schema; ex = extraction; infos; adhoc }

let compile ?adhoc ?metrics schema =
  let ex = timed metrics "analysis.extraction_us" (fun () -> Extraction.build schema) in
  compile_classes ?adhoc ?metrics ~schema ~extraction:ex (Schema.classes schema)

let adhoc t = t.adhoc

let schema t = t.schema
let extraction t = t.ex

let class_info t c =
  match CN.Map.find_opt c t.infos with
  | Some i -> i
  | None -> invalid_arg (Format.asprintf "Analysis: unknown class %a" CN.pp c)

let dav t c m = Extraction.dav t.ex c m

let tav t c m =
  match MN.Map.find_opt m (class_info t c).tavs with
  | Some av -> av
  | None ->
      invalid_arg (Format.asprintf "Analysis: %a is not a method of %a" MN.pp m CN.pp c)

let table t c = (class_info t c).table
let lbr t c = (class_info t c).lbr

let commute t c m m' =
  match Modes_table.commute_methods (table t c) m m' with
  | Some b -> b
  | None ->
      invalid_arg
        (Format.asprintf "Analysis: %a or %a is not a method of %a" MN.pp m MN.pp m' CN.pp c)

let method_count t =
  CN.Map.fold (fun _ info n -> n + MN.Map.cardinal info.tavs) t.infos 0
