(** Compile-time extraction of DAV, DSC and PSC (definitions 6–8).

    The compiler parses every method body once, at its defining site, and
    records three pieces of information:

    - the {b direct access vector} (definition 6): a field gets [Write]
      when the body contains an assignment to it, [Read] when it appears in
      an expression (including as the receiver or an argument of a message)
      without being assigned, [Null] otherwise;
    - the {b direct self-calls} (definition 7): the method names sent to
      [self] in the simple form — these are re-resolved against each
      receiver class, which is how late binding is solved at compile time;
    - the {b prefixed self-calls} (definition 8): the [(ancestor, method)]
      pairs named by [send C'.M to self].

    Control structures are abstracted away: both branches of an [if] and
    the body of a [while] contribute, making the vectors conservative
    (sec. 4.4 of the paper).

    Per clause (i) of the three definitions, a class that inherits a method
    shares the defining site's information unchanged; padding with [Null]
    on new fields is implicit in the canonical vector representation. *)

open Tavcc_model
open Tavcc_lang

type t

(** {1 Provenance}

    Extraction keeps, per defining site, the full {e access tree} of the
    method body: every field access, every send and every control-flow
    join, in source order, each carrying the position of its statement
    (threaded by the parser through {!Ast.At} locators and
    [Ast.msg_pos]).  The classic DAV/DSC/PSC triple is derived from the
    tree, so definitions 6–8 are unchanged; the tree is what the
    {!module:Tavcc_analyze} linter uses to blame a diagnostic on the
    statement that caused it. *)

type send_kind =
  | Sk_dsc of Name.Method.t  (** simple self-send (definition 7) *)
  | Sk_psc of Name.Class.t * Name.Method.t  (** prefixed self-send (definition 8) *)
  | Sk_cross of Name.Class.t * Name.Method.t
      (** send to an object of statically known class *)
  | Sk_dyn  (** send with statically unknown receiver class *)

type send_site = { sk_kind : send_kind; sk_pos : Token.pos option }

type access =
  | Afield of Name.Field.t * Mode.t * Token.pos option
  | Asend of send_site
  | Ajoin of join

and join = {
  j_while : bool;  (** [true] for a [while], [false] for an [if] *)
  j_pos : Token.pos option;
  j_then : access list;  (** the loop body for a [while] *)
  j_else : access list;  (** always [[]] for a [while] *)
}

val build : Ast.body Schema.t -> t
(** Parses every defining site of the schema.  Self-sends naming unknown
    methods and prefixed sends to non-ancestors are ignored (the static
    checker reports them; the analysis is total regardless). *)

val schema : t -> Ast.body Schema.t

val dav : t -> Name.Class.t -> Name.Method.t -> Access_vector.t
(** [DAV{C,M}] (definition 6).
    @raise Invalid_argument if [M] is not a method of [C] *)

val dsc : t -> Name.Class.t -> Name.Method.t -> Name.Method.Set.t
(** [DSC{C,M}] (definition 7). *)

val psc : t -> Name.Class.t -> Name.Method.t -> Site.Set.t
(** [PSC{C,M}] (definition 8). *)

val cross_sends : t -> Name.Class.t -> Name.Method.t -> (Name.Class.t * Name.Method.t) list
(** The messages the method sends to {e other} objects whose class is
    statically known — the receiver is a field of reference type or a
    [new] expression.  These are the composition edges of the method
    dependency graph ({!Depgraph}); the declared class is recorded, the
    run-time receiver may be of any subclass. *)

val has_dynamic_sends : t -> Name.Class.t -> Name.Method.t -> bool
(** True when the method sends a message to an expression whose class
    the compiler cannot determine (a parameter, a local, or another
    message's result); impact analyses must then assume the whole
    schema is reachable. *)

val defining_site : t -> Name.Class.t -> Name.Method.t -> Site.t
(** The site whose source code is executed when [M] is resolved from [C]. *)

val access_tree : t -> Name.Class.t -> Name.Method.t -> access list
(** The provenance tree of the defining site's body, in source order. *)

val accesses : t -> Name.Class.t -> Name.Method.t -> access list
(** {!access_tree} flattened (joins inlined, both branches), source order. *)

val field_accesses :
  t -> Name.Class.t -> Name.Method.t -> (Name.Field.t * Mode.t * Token.pos option) list
(** Every field access of the flattened tree with its mode and position. *)

val send_sites : t -> Name.Class.t -> Name.Method.t -> send_site list
(** Every send of the flattened tree with its kind and position. *)

val first_field_pos :
  t -> Name.Class.t -> Name.Method.t -> Name.Field.t -> Mode.t -> Token.pos option
(** Position of the first access of the field at exactly the given mode. *)

val join_av : access list -> Access_vector.t
(** The access vector contributed by a subtree — what definition 6 computes
    when restricted to one branch of a join. *)

val update_classes : t -> Ast.body Schema.t -> Name.Class.t list -> t
(** [update_classes ex schema cs] re-extracts the methods {e defined in}
    the classes [cs] against the (edited) [schema], dropping their stale
    sites and keeping every other defining site — valid for method-level
    edits because field sets and ancestor chains are unchanged, provided
    [cs] covers the domain of the edited class (subclass sites may hold
    self-call sets whose resolvability the edit changed). *)
