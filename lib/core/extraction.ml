open Tavcc_model
open Tavcc_lang
module CN = Name.Class
module MN = Name.Method
module FN = Name.Field

(* --- provenance-carrying access tree --- *)

type send_kind =
  | Sk_dsc of MN.t
  | Sk_psc of CN.t * MN.t
  | Sk_cross of CN.t * MN.t
  | Sk_dyn

type send_site = { sk_kind : send_kind; sk_pos : Token.pos option }

type access =
  | Afield of FN.t * Mode.t * Token.pos option
  | Asend of send_site
  | Ajoin of join

and join = {
  j_while : bool;
  j_pos : Token.pos option;
  j_then : access list;  (* the loop body for a [while] *)
  j_else : access list;  (* always [] for a [while] *)
}

let rec flatten acc tree =
  List.fold_left
    (fun acc a ->
      match a with
      | Afield _ | Asend _ -> a :: acc
      | Ajoin j -> flatten (flatten acc j.j_then) j.j_else)
    acc tree

let flatten tree = List.rev (flatten [] tree)

let av_of_tree tree =
  List.fold_left
    (fun av a ->
      match a with Afield (f, m, _) -> Access_vector.add av f m | Asend _ | Ajoin _ -> av)
    Access_vector.empty (flatten tree)

type site_info = {
  si_tree : access list;
  si_flat : access list;  (* [flatten si_tree], cached for the accessors *)
  si_dav : Access_vector.t;
  si_dsc : MN.Set.t;
  si_psc : Site.Set.t;
  si_cross : (CN.t * MN.t) list;  (* statically-typed cross-object sends *)
  si_dyn : bool;  (* has sends with statically unknown receiver class *)
}
type t = { schema : Ast.body Schema.t; sites : site_info Site.Map.t }

(* Walks one method body into an access tree, keeping source order and
   positions.  [params] shadow fields; locals shadow both and are scoped to
   their block, mirroring the interpreter.  The classic DAV/DSC/PSC triple
   (defs. 6–8) is derived from the tree afterwards, so the join semantics
   are unchanged: both branches of an [if] and the body of a [while]
   contribute. *)
let analyze schema cls (md : Ast.body Schema.method_def) =
  let is_field x = Schema.field_index schema cls (FN.of_string x) <> None in
  let shadowed locals x = List.mem x locals || List.mem x md.Schema.m_params in
  (* Static class of a receiver expression, when determinable. *)
  let static_class locals e =
    match e with
    | Ast.New c -> if Schema.mem schema c then Some c else None
    | Ast.Ident x when not (shadowed locals x) -> (
        match Schema.field_def schema cls (FN.of_string x) with
        | Some { Schema.f_ty = Value.Tref d; _ } when Schema.mem schema d -> Some d
        | _ -> None)
    | _ -> None
  in
  (* [out] accumulates the current block's accesses in reverse order;
     [pos] is the position of the enclosing statement. *)
  let rec walk_expr locals pos out e =
    match e with
    | Ast.Lit _ | Ast.Self | Ast.New _ -> out
    | Ast.Ident x ->
        if (not (shadowed locals x)) && is_field x then
          Afield (FN.of_string x, Mode.Read, pos) :: out
        else out
    | Ast.Unop (_, e1) -> walk_expr locals pos out e1
    | Ast.Binop (_, l, r) -> walk_expr locals pos (walk_expr locals pos out l) r
    | Ast.Send m -> walk_msg locals pos out m
  and walk_msg locals pos out m =
    let pos = match m.Ast.msg_pos with Some _ as p -> p | None -> pos in
    let out = List.fold_left (walk_expr locals pos) out m.Ast.msg_args in
    let out, self_directed =
      match m.Ast.msg_recv with
      | Ast.Rself -> (out, true)
      | Ast.Rexpr Ast.Self -> (out, true)
      | Ast.Rexpr e ->
          let out = walk_expr locals pos out e in
          let out =
            match static_class locals e with
            | Some d when Schema.resolve schema d m.Ast.msg_name <> None ->
                Asend { sk_kind = Sk_cross (d, m.Ast.msg_name); sk_pos = pos } :: out
            | Some _ | None -> Asend { sk_kind = Sk_dyn; sk_pos = pos } :: out
          in
          (out, false)
    in
    match (m.Ast.msg_prefix, self_directed) with
    | Some c', true ->
        (* Definition 8: only ancestors resolving the method are recorded. *)
        if
          Schema.mem schema c'
          && List.exists (CN.equal c') (Schema.ancestors schema cls)
          && Schema.resolve_from schema c' m.Ast.msg_name <> None
        then Asend { sk_kind = Sk_psc (c', m.Ast.msg_name); sk_pos = pos } :: out
        else out
    | None, true ->
        (* Definition 7: only methods the class understands are recorded. *)
        if Schema.resolve schema cls m.Ast.msg_name <> None then
          Asend { sk_kind = Sk_dsc m.Ast.msg_name; sk_pos = pos } :: out
        else out
    | _, false -> out
  in
  let rec walk_stmts locals stmts =
    (* Returns the block's access list; locals declared inside do not
       escape the block. *)
    let _, out =
      List.fold_left
        (fun (locals, out) s -> walk_stmt locals None out s)
        (locals, []) stmts
    in
    List.rev out
  and walk_stmt locals pos out s =
    match s with
    | Ast.At (p, s) -> walk_stmt locals (Some p) out s
    | Ast.Assign (x, e) ->
        let out = walk_expr locals pos out e in
        let out =
          if (not (shadowed locals x)) && is_field x then
            Afield (FN.of_string x, Mode.Write, pos) :: out
          else out
        in
        (locals, out)
    | Ast.Var (x, e) -> (x :: locals, walk_expr locals pos out e)
    | Ast.Send_stmt m -> (locals, walk_msg locals pos out m)
    | Ast.Return e -> (locals, walk_expr locals pos out e)
    | Ast.If (c, t, f) ->
        let out = walk_expr locals pos out c in
        let j =
          { j_while = false; j_pos = pos; j_then = walk_stmts locals t;
            j_else = walk_stmts locals f }
        in
        (locals, Ajoin j :: out)
    | Ast.While (c, b) ->
        let out = walk_expr locals pos out c in
        let j = { j_while = true; j_pos = pos; j_then = walk_stmts locals b; j_else = [] } in
        (locals, Ajoin j :: out)
  in
  let tree = walk_stmts [] md.Schema.m_body in
  let flat = flatten tree in
  let dav = av_of_tree tree in
  let dsc, psc, cross, dyn =
    List.fold_left
      (fun (dsc, psc, cross, dyn) a ->
        match a with
        | Afield _ | Ajoin _ -> (dsc, psc, cross, dyn)
        | Asend { sk_kind; _ } -> (
            match sk_kind with
            | Sk_dsc m -> (MN.Set.add m dsc, psc, cross, dyn)
            | Sk_psc (c, m) -> (dsc, Site.Set.add (c, m) psc, cross, dyn)
            | Sk_cross (c, m) -> (dsc, psc, (c, m) :: cross, dyn)
            | Sk_dyn -> (dsc, psc, cross, true)))
      (MN.Set.empty, Site.Set.empty, [], false)
      flat
  in
  { si_tree = tree; si_flat = flat; si_dav = dav; si_dsc = dsc; si_psc = psc;
    si_cross = List.rev cross; si_dyn = dyn }

let build schema =
  let sites =
    List.fold_left
      (fun acc cls ->
        List.fold_left
          (fun acc md -> Site.Map.add (cls, md.Schema.m_name) (analyze schema cls md) acc)
          acc (Schema.own_methods schema cls))
      Site.Map.empty (Schema.classes schema)
  in
  { schema; sites }

let schema t = t.schema

let defining_site t c m =
  match Schema.resolve t.schema c m with
  | Some (c', _) -> (c', m)
  | None ->
      invalid_arg
        (Format.asprintf "Extraction: %a is not a method of class %a" MN.pp m CN.pp c)

let update_classes t schema cs =
  let stale c' = List.exists (CN.equal c') cs in
  let sites = Site.Map.filter (fun (c', _) _ -> not (stale c')) t.sites in
  let sites =
    List.fold_left
      (fun acc c ->
        List.fold_left
          (fun acc md -> Site.Map.add (c, md.Schema.m_name) (analyze schema c md) acc)
          acc (Schema.own_methods schema c))
      sites cs
  in
  { schema; sites }

let site_info t c m = Site.Map.find (defining_site t c m) t.sites
let dav t c m = (site_info t c m).si_dav
let dsc t c m = (site_info t c m).si_dsc
let psc t c m = (site_info t c m).si_psc
let cross_sends t c m = (site_info t c m).si_cross
let has_dynamic_sends t c m = (site_info t c m).si_dyn

let access_tree t c m = (site_info t c m).si_tree
let accesses t c m = (site_info t c m).si_flat

let field_accesses t c m =
  List.filter_map
    (function Afield (f, md, p) -> Some (f, md, p) | Asend _ | Ajoin _ -> None)
    (accesses t c m)

let send_sites t c m =
  List.filter_map
    (function Asend s -> Some s | Afield _ | Ajoin _ -> None)
    (accesses t c m)

let first_field_pos t c m f mode =
  List.find_map
    (function
      | Afield (f', md, p) when FN.equal f f' && Mode.equal md mode -> p
      | Afield _ | Asend _ | Ajoin _ -> None)
    (accesses t c m)

let join_av = av_of_tree
