open Tavcc_model
module CN = Name.Class
module MN = Name.Method

type t = {
  schema_classes : CN.t list;
  succs : Site.Set.t Site.Map.t;  (* per (receiver class, method) vertex *)
  dyn : Site.Set.t;  (* vertices whose execution contains a dynamic send *)
}

let build_with lbr_of ex =
  let schema = Extraction.schema ex in
  let classes = Schema.classes schema in
  (* Per-class LBR graphs, reused across the class's methods. *)
  let lbrs = List.map (fun c -> (c, lbr_of c)) classes in
  let succs, dyn =
    List.fold_left
      (fun (succs, dyn) (cls, lbr) ->
        let n = Lbr.vertex_count lbr in
        let adj = Lbr.succs lbr in
        let verts = Lbr.vertices lbr in
        (* Every entry method of the class DFSes over the same vertices,
           so each vertex's contribution — its resolved composition
           targets and dynamic-send flag — is computed once per class,
           not once per (entry, vertex). *)
        let vert_dyn =
          Array.map (fun (c', m') -> Extraction.has_dynamic_sends ex c' m') verts
        in
        let vert_out =
          Array.map
            (fun (c', m') ->
              List.fold_left
                (fun acc (d, m'') ->
                  (* The run-time receiver may be any instance of the
                     declared class's domain. *)
                  List.fold_left
                    (fun acc e ->
                      if Schema.resolve schema e m'' <> None then
                        Site.Set.add (e, m'') acc
                      else acc)
                    acc (Schema.domain schema d))
                Site.Set.empty
                (Extraction.cross_sends ex c' m'))
            verts
        in
        (* Reachable executing sites from each entry method, by DFS. *)
        List.fold_left
          (fun (succs, dyn) m ->
            match Lbr.index lbr (cls, m) with
            | None -> (succs, dyn)
            | Some start ->
                let seen = Array.make n false in
                let out = ref Site.Set.empty in
                let is_dyn = ref false in
                let rec go v =
                  if not seen.(v) then begin
                    seen.(v) <- true;
                    if vert_dyn.(v) then is_dyn := true;
                    if not (Site.Set.is_empty vert_out.(v)) then
                      out := Site.Set.union vert_out.(v) !out;
                    List.iter go adj.(v)
                  end
                in
                go start;
                ( Site.Map.add (cls, m) !out succs,
                  if !is_dyn then Site.Set.add (cls, m) dyn else dyn ))
          (succs, dyn) (Schema.methods schema cls))
      (Site.Map.empty, Site.Set.empty) lbrs
  in
  { schema_classes = classes; succs; dyn }

let build ex = build_with (fun c -> Lbr.build ex c) ex

let vertices t = List.map fst (Site.Map.bindings t.succs)

let successors t site =
  match Site.Map.find_opt site t.succs with
  | Some s -> Site.Set.elements s
  | None -> []

let edge_count t = Site.Map.fold (fun _ s n -> n + Site.Set.cardinal s) t.succs 0

let reachable t cls m =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | site :: rest ->
        if Site.Set.mem site seen then go seen rest
        else go (Site.Set.add site seen) (successors t site @ rest)
  in
  go Site.Set.empty [ (cls, m) ]

let reachable_classes t cls m =
  let sites = reachable t cls m in
  if Site.Set.exists (fun s -> Site.Set.mem s t.dyn) sites then
    List.sort_uniq CN.compare t.schema_classes
  else
    Site.Set.fold (fun (c, _) acc -> CN.Set.add c acc) sites CN.Set.empty
    |> CN.Set.elements

let to_dot t =
  let b = Buffer.create 512 in
  Buffer.add_string b "digraph depgraph {\n  node [shape=box];\n";
  Site.Map.iter
    (fun (c, m) out ->
      Site.Set.iter
        (fun (c', m') ->
          Buffer.add_string b
            (Printf.sprintf "  \"%s,%s\" -> \"%s,%s\";\n" (CN.to_string c) (MN.to_string m)
               (CN.to_string c') (MN.to_string m')))
        out)
    t.succs;
  Buffer.add_string b "}\n";
  Buffer.contents b
