(** The whole compile-time pipeline of the paper, packaged.

    [compile schema] runs, for every class: DAV/DSC/PSC extraction
    (defs. 6–8), late-binding resolution graph construction (def. 9),
    transitive access vector computation (def. 10) and the translation to
    access modes with the per-class commutativity relation (sec. 5.1).

    This is everything the run-time system needs: the lock manager works
    with plain access modes and the compiled matrices; no vector is ever
    inspected at run time. *)

open Tavcc_model
open Tavcc_lang

type class_info = {
  lbr : Lbr.t;
  tavs : Access_vector.t Name.Method.Map.t;
  table : Modes_table.t;
}

type t

val compile : ?adhoc:Adhoc.t -> ?metrics:Tavcc_obs.Metrics.t -> Ast.body Schema.t -> t
(** [compile ?adhoc schema] runs the pipeline; [adhoc] installs the
    semantic commutativity overrides of {!Adhoc} into the generated
    per-class tables (sec. 3's predefined-type escape hatch).

    With [metrics], every pass accumulates its wall-clock cost into
    microsecond histograms: [analysis.extraction_us] (once per compile)
    and, per class, [analysis.lbr_us] (resolution-graph construction),
    [analysis.tav_us] (the TAV fixpoint over SCCs) and
    [analysis.table_us] (mode translation + commutativity matrix). *)

val schema : t -> Ast.body Schema.t
val extraction : t -> Extraction.t

val class_info : t -> Name.Class.t -> class_info
(** @raise Invalid_argument on an unknown class *)

val dav : t -> Name.Class.t -> Name.Method.t -> Access_vector.t
val tav : t -> Name.Class.t -> Name.Method.t -> Access_vector.t
(** @raise Invalid_argument when the method does not belong to the class *)

val table : t -> Name.Class.t -> Modes_table.t
val lbr : t -> Name.Class.t -> Lbr.t

val commute : t -> Name.Class.t -> Name.Method.t -> Name.Method.t -> bool
(** Commutativity of two methods on instances of the class, through the
    compiled matrix.
    @raise Invalid_argument when either method is unknown in the class *)

val method_count : t -> int
(** Total number of (class, method) combinations analysed — the size of
    the compiled artefact. *)

val adhoc : t -> Adhoc.t
(** The registry the analysis was compiled with. *)

val compile_classes :
  ?adhoc:Adhoc.t -> ?reuse:t -> ?metrics:Tavcc_obs.Metrics.t ->
  schema:Ast.body Schema.t -> extraction:Extraction.t -> Name.Class.t list -> t
(** [compile_classes ?reuse ~schema ~extraction classes] builds an
    analysis for [schema] computing graphs/TAVs/matrices for [classes]
    and splicing every other class's results from [reuse] (which must
    contain them).  [compile] is [compile_classes] over all classes with
    no reuse.  This is the engine behind {!Incremental.recompile}. *)
