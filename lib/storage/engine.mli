(** The disk-resident object store: slotted pages behind a clock buffer
    pool, an on-disk WAL, and ARIES-style recovery.

    The engine owns three files under its directory:

    - [data.pages] — page 0 is a checksummed meta page (checkpoint LSN,
      oid/page high-water marks); pages 1.. are {!Page} slotted pages of
      serialized instances;
    - [wal.log] — {!Tavcc_chaos.Codec}-framed {!Tavcc_recovery.Wal}
      records.  The in-memory [Wal.t] mirrors it record-for-record, so
      chaos observers and the TAV sanitizer work unchanged;
    - [dblwr.log] — a double-write buffer: every page image lands here
      (checksummed) before its in-place write, so a torn page write is
      repaired at recovery.  Truncated at each checkpoint.

    Disciplines enforced:

    - {b WAL-before-data}: the pool's write-back first forces the log,
      so a page image on disk is never ahead of the stable log;
    - {b fuzzy checkpoint}: {!checkpoint} flushes every dirty page, logs
      [Checkpoint active], forces, truncates the double-write buffer and
      rewrites the meta page — redo then starts at the checkpoint LSN;
    - {b repeating history}: {!create} recovers by redoing every stable
      record from the checkpoint LSN (logically, by oid — physical
      placement may differ run to run) and then undoing losers
      backwards, compensating updates with CLRs, inserts with deletes
      and deletes with re-inserts.

    All public operations are serialised by an internal mutex; the
    engine is shared safely by the parallel engine's domains and the
    network front-end's session threads. *)

open Tavcc_model
open Tavcc_recovery

exception Crashed of string
(** Raised by an {!io_hook} that kills the engine mid-IO.  The engine
    must then be {!abandon}ed: its in-memory state is unspecified, but
    its files are exactly what a machine crash at that point leaves. *)

(** Points in the IO path an {!io_hook} observes, in the order a real
    kernel would see the writes. *)
type io_point =
  | Wal_write of int  (** forcing this many pending log bytes *)
  | Page_write of int  (** in-place page write (pid) *)
  | Dblwr_write of int  (** double-write buffer append (pid) *)
  | Meta_write  (** meta-page rewrite (checkpoint tail) *)
  | Ckpt_begin  (** entering {!checkpoint} (marker; action ignored) *)
  | Ckpt_end  (** leaving {!checkpoint} (marker; action ignored) *)

type io_action =
  | Proceed
  | Torn of int
      (** write only the first [n] bytes, then raise {!Crashed} — a torn
          write followed by a machine crash *)

type sync = Buffered | Fsync

type config = {
  dir : string;  (** created if absent *)
  page_size : int;  (** >= {!Page.min_size}; fixed at directory creation *)
  pool_pages : int;  (** buffer-pool frames (>= 2) *)
  self_journal : bool;
      (** [true]: the store surface logs updates itself under the
          {e ambient} transaction of the calling thread (set between
          {!begin_txn} and {!commit}/{!abort}; 0 = autocommit outside
          any).  [false]: updates are journalled externally via
          {!observe} — inserts and deletes are still always
          self-logged. *)
  sync : sync;  (** [Fsync] pays for real durability; tests use [Buffered] *)
  cache_entries : int;  (** row-cache capacity; 0 = 32 x [pool_pages] *)
  metrics : Tavcc_obs.Metrics.t option;
  io_hook : (io_point -> io_action) option;
      (** fault injection; may raise {!Crashed} itself.  Not consulted
          during {!create}'s recovery pass. *)
}

val default_config : dir:string -> config
(** 4 KiB pages, 64 frames, self-journalling, buffered, no hook. *)

type t

val create : config -> t
(** Opens (or initialises) the directory and runs recovery: decode the
    log's longest valid prefix (dropping any torn tail), repair torn
    pages from the double-write buffer, rebuild the oid directory and
    extents from the pages, redo from the checkpoint LSN, undo losers,
    then checkpoint.  @raise Failure on unrepairable corruption. *)

val store : t -> 'b Schema.t -> 'b Store.t
(** The engine behind the standard store API — [Exec], [Par_engine] and
    the network front-end run over it unmodified. *)

(** {2 Transactions} *)

val begin_txn : t -> int -> unit
(** Logs [Begin] and makes [txn] the calling thread's ambient
    transaction (self-journal mode attributes its writes to it). *)

val commit : t -> int -> unit
(** Logs [Commit] and forces the WAL (the durability point). *)

val abort : t -> int -> unit
(** Rolls the transaction back through the log — CLRs for updates,
    compensating deletes/inserts for inserts/deletes — then logs
    [Abort].  Idempotent with respect to a store already rolled back by
    an engine's own undo. *)

val checkpoint : t -> unit
(** Fuzzy checkpoint: flush all dirty pages, log [Checkpoint], force,
    truncate the double-write buffer, rewrite the meta page. *)

val flush : t -> unit
(** Forces pending WAL bytes to disk without checkpointing. *)

(** {2 External journalling} *)

val observe : t -> Tavcc_sim.Engine.access -> unit
(** Adapter for the cooperative sim engine's access stream
    ([hk_observe]): [Ob_begin]/[Ob_commit]/[Ob_abort] drive the
    transaction protocol, [Ob_write] journals the update (the sim engine
    emits it {e before} mutating the store, preserving
    WAL-before-data).  Use with [self_journal = false]. *)

val journal : t -> Tavcc_par.Par_engine.journal
(** The {!Tavcc_par.Par_engine.config.journal} record for this engine:
    [j_begin]/[j_commit]/[j_abort] are {!begin_txn}/{!commit}/{!abort}.
    Par_engine calls them on the thread running the transaction while
    its locks are held — exactly the ambient-transaction discipline the
    self-journalling store needs.  Use with [self_journal = true]. *)

(** {2 Introspection} *)

val wal : t -> Wal.t
(** The in-memory mirror of the on-disk log (for observers and the
    sanitizer).  Do not append to it directly. *)

val dump : t -> (int * string * (string * Value.t) list) list
(** Every live instance, sorted by oid — the logical state the crash
    matrix compares against its oracle. *)

type stats = {
  s_instances : int;
  s_data_pages : int;
  s_pool_pages : int;
  s_pool : Buffer_pool.stats;
  s_wal_records : int;
  s_wal_bytes : int;
  s_cache_entries : int;
}

val stats : t -> stats

(** {2 Shutdown} *)

val close : ?flush:bool -> t -> unit
(** [flush] (default [true]) checkpoints first; then closes the fds. *)

val abandon : t -> unit
(** Closes the fds without writing a byte — the post-{!Crashed} path, so
    a crash-matrix sweep does not exhaust descriptors. *)
