open Tavcc_model
open Tavcc_recovery
module Codec = Tavcc_chaos.Codec
module CN = Name.Class
module FN = Name.Field

exception Crashed of string

type io_point =
  | Wal_write of int
  | Page_write of int
  | Dblwr_write of int
  | Meta_write
  | Ckpt_begin
  | Ckpt_end

type io_action = Proceed | Torn of int

type sync = Buffered | Fsync

type config = {
  dir : string;
  page_size : int;
  pool_pages : int;
  self_journal : bool;
  sync : sync;
  cache_entries : int;
  metrics : Tavcc_obs.Metrics.t option;
  io_hook : (io_point -> io_action) option;
}

let default_config ~dir =
  {
    dir;
    page_size = 4096;
    pool_pages = 64;
    self_journal = true;
    sync = Buffered;
    cache_entries = 0;
    metrics = None;
    io_hook = None;
  }

type rid = { mutable r_pid : int; mutable r_slot : int; r_cls : string }

type obs = {
  c_page_reads : Tavcc_obs.Metrics.counter;
  c_page_writes : Tavcc_obs.Metrics.counter;
  c_wal_bytes : Tavcc_obs.Metrics.counter;
  c_ckpts : Tavcc_obs.Metrics.counter;
  c_cache_hits : Tavcc_obs.Metrics.counter;
  c_cache_misses : Tavcc_obs.Metrics.counter;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  data_fd : Unix.file_descr;
  wal_fd : Unix.file_descr;
  dblwr_fd : Unix.file_descr;
  wal : Wal.t;
  mutable pending : string list; (* encoded, newest first, not yet on disk *)
  mutable wal_bytes : int;
  mutable dblwr_bytes : int;
  mutable pool : Buffer_pool.t; (* knot-tied after create *)
  dir_tbl : (int, rid) Hashtbl.t;
  extents : (string, int list ref) Hashtbl.t; (* highest oid first *)
  free : (int, int) Hashtbl.t; (* pid -> insert-capacity hint *)
  mutable next_oid : int;
  mutable next_pid : int; (* page 0 is the meta page *)
  mutable ckpt_lsn : int;
  cache : (int, Value.t array) Hashtbl.t;
  cache_ring : int array; (* eviction ring over cached oids; -1 = free *)
  mutable cache_cur : int;
  active : (int, unit) Hashtbl.t;
  ambient : (int * int, int) Hashtbl.t;
  obs : obs option;
  mutable hooks_on : bool;
  mutable in_recovery : bool;
}

let bump t f = match t.obs with None -> () | Some o -> Tavcc_obs.Metrics.incr (f o)
let bumpn t f n = match t.obs with None -> () | Some o -> Tavcc_obs.Metrics.add (f o) n

(* --- low-level file IO --- *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let pwrite_at fd off b =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  write_all fd b 0 (Bytes.length b)

let pread_at fd off len =
  let b = Bytes.make len '\000' in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < len then
      let n = Unix.read fd b pos (len - pos) in
      if n > 0 then go (pos + n)
  in
  go 0;
  b

let read_whole fd =
  let len = (Unix.fstat fd).Unix.st_size in
  Bytes.to_string (pread_at fd 0 len)

let maybe_fsync t fd = if t.cfg.sync = Fsync then Unix.fsync fd

let hook t pt =
  if t.hooks_on && not t.in_recovery then
    match t.cfg.io_hook with None -> Proceed | Some h -> h pt
  else Proceed

let hooked_write t pt fd off b =
  match hook t pt with
  | Proceed -> pwrite_at fd off b
  | Torn k ->
      pwrite_at fd off (Bytes.sub b 0 (max 0 (min k (Bytes.length b))));
      raise (Crashed "torn write")

(* --- WAL --- *)

let log t r =
  let lsn = Wal.append t.wal r in
  t.pending <- Codec.encode_record r :: t.pending;
  lsn

let wal_flush t =
  if t.pending <> [] then begin
    let payload = String.concat "" (List.rev t.pending) in
    hooked_write t (Wal_write (String.length payload)) t.wal_fd t.wal_bytes
      (Bytes.of_string payload);
    t.wal_bytes <- t.wal_bytes + String.length payload;
    t.pending <- [];
    maybe_fsync t t.wal_fd;
    bumpn t (fun o -> o.c_wal_bytes) (String.length payload);
    Wal.flush t.wal
  end

(* --- double-write buffer --- *)

let dblwr_entry pid img =
  let plen = 8 + Bytes.length img in
  let b = Bytes.create (16 + plen) in
  Bytes.blit_string (Page.to_hex8 plen) 0 b 0 8;
  Bytes.blit_string (Page.to_hex8 pid) 0 b 16 8;
  Bytes.blit img 0 b 24 (Bytes.length img);
  Bytes.blit_string (Page.sum8_sub b 16 plen) 0 b 8 8;
  b

let dblwr_decode s =
  (* longest valid prefix of (pid, page image) entries; later entries for
     the same pid win *)
  let entries = Hashtbl.create 8 in
  let pos = ref 0 in
  let n = String.length s in
  (try
     while !pos + 16 <= n do
       let len =
         match int_of_string_opt ("0x" ^ String.sub s !pos 8) with
         | Some l when l >= 8 && !pos + 16 + l <= n -> l
         | _ -> raise Exit
       in
       let sum = String.sub s (!pos + 8) 8 in
       let payload = String.sub s (!pos + 16) len in
       if Page.sum8 payload <> sum then raise Exit;
       (match int_of_string_opt ("0x" ^ String.sub payload 0 8) with
       | Some pid ->
           Hashtbl.replace entries pid (Bytes.of_string (String.sub payload 8 (len - 8)))
       | None -> raise Exit);
       pos := !pos + 16 + len
     done
   with Exit -> ());
  entries

(* --- pages through the pool --- *)

let page_off t pid = pid * t.cfg.page_size

let load_page t pid =
  bump t (fun o -> o.c_page_reads);
  let b = pread_at t.data_fd (page_off t pid) t.cfg.page_size in
  if Page.is_zero b then Page.create t.cfg.page_size
  else
    match Page.of_bytes b with
    | Ok p -> p
    | Error e -> failwith (Printf.sprintf "Storage: corrupt page %d (%s)" pid e)

let write_back t pid page =
  (* WAL-before-data: the log must be stable past the page's LSN before
     the page image may replace the one on disk. *)
  wal_flush t;
  let img = Page.to_bytes page in
  let entry = dblwr_entry pid img in
  hooked_write t (Dblwr_write pid) t.dblwr_fd t.dblwr_bytes entry;
  t.dblwr_bytes <- t.dblwr_bytes + Bytes.length entry;
  maybe_fsync t t.dblwr_fd;
  hooked_write t (Page_write pid) t.data_fd (page_off t pid) img;
  maybe_fsync t t.data_fd;
  bump t (fun o -> o.c_page_writes)

(* --- in-memory maps --- *)

let extent_ref t cls =
  match Hashtbl.find_opt t.extents cls with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.extents cls r;
      r

let extent_add t cls oid =
  let r = extent_ref t cls in
  (* keep descending oid order (creation order reversed) even when an
     aborted delete re-inserts an old oid *)
  let rec ins = function
    | x :: tl when x > oid -> x :: ins tl
    | l -> oid :: l
  in
  r := ins !r

let extent_remove t cls oid =
  let r = extent_ref t cls in
  r := List.filter (fun o -> o <> oid) !r

let cache_put t oid values =
  (* ring eviction: at capacity, drop the entry the cursor points at
     instead of resetting the whole cache (which thrashes as soon as
     the working set exceeds it) *)
  if not (Hashtbl.mem t.cache oid) then begin
    let old = t.cache_ring.(t.cache_cur) in
    if old >= 0 then Hashtbl.remove t.cache old;
    t.cache_ring.(t.cache_cur) <- oid;
    t.cache_cur <- (t.cache_cur + 1) mod Array.length t.cache_ring
  end;
  Hashtbl.replace t.cache oid values

let stamp t page = Page.set_lsn page (Wal.length t.wal)

let free_update t pid page = Hashtbl.replace t.free pid (Page.insert_capacity page)

let max_payload t = t.cfg.page_size - Page.header_size - Page.slot_entry

(* --- record operations (physical, no logging) --- *)

let choose_pid t len =
  let best =
    Hashtbl.fold
      (fun pid cap best ->
        if cap >= len then match best with Some b when b < pid -> Some b | _ -> Some pid
        else best)
      t.free None
  in
  match best with
  | Some pid -> pid
  | None ->
      let pid = t.next_pid in
      t.next_pid <- pid + 1;
      pid

let rec place t payload =
  let len = String.length payload in
  let pid = choose_pid t len in
  let page = Buffer_pool.get t.pool pid in
  match Page.insert page payload with
  | Some slot ->
      stamp t page;
      free_update t pid page;
      Buffer_pool.unpin t.pool pid ~dirty:true;
      (pid, slot)
  | None ->
      (* stale free hint; correct it and retry elsewhere *)
      free_update t pid page;
      Buffer_pool.unpin t.pool pid ~dirty:false;
      place t payload

let apply_insert t ~oid ~cls ~slots =
  let payload = Page.Rec.encode { Page.Rec.r_oid = oid; r_cls = cls; r_slots = slots } in
  if String.length payload > max_payload t then
    failwith "Storage: record larger than a page";
  let pid, slot = place t payload in
  Hashtbl.replace t.dir_tbl oid { r_pid = pid; r_slot = slot; r_cls = cls };
  extent_add t cls oid;
  cache_put t oid (Array.map snd slots)

let find_rid t oid =
  match Hashtbl.find_opt t.dir_tbl oid with
  | Some r -> r
  | None -> raise (Store.Unknown_oid (Oid.of_int oid))

let read_rec t oid =
  let rid = find_rid t oid in
  let page = Buffer_pool.get t.pool rid.r_pid in
  let payload =
    match Page.read_slot page rid.r_slot with
    | Some s -> s
    | None -> failwith "Storage: directory points at a dead slot"
  in
  Buffer_pool.unpin t.pool rid.r_pid ~dirty:false;
  match Page.Rec.decode payload with
  | Some r -> r
  | None -> failwith "Storage: undecodable record payload"

let read_values t oid =
  match Hashtbl.find_opt t.cache oid with
  | Some vs ->
      if not (Hashtbl.mem t.dir_tbl oid) then raise (Store.Unknown_oid (Oid.of_int oid));
      bump t (fun o -> o.c_cache_hits);
      vs
  | None ->
      bump t (fun o -> o.c_cache_misses);
      let r = read_rec t oid in
      let vs = Array.map snd r.Page.Rec.r_slots in
      cache_put t oid vs;
      vs

let apply_delete t oid =
  let rid = find_rid t oid in
  let page = Buffer_pool.get t.pool rid.r_pid in
  Page.delete page rid.r_slot;
  stamp t page;
  free_update t rid.r_pid page;
  Buffer_pool.unpin t.pool rid.r_pid ~dirty:true;
  Hashtbl.remove t.dir_tbl oid;
  extent_remove t rid.r_cls oid;
  Hashtbl.remove t.cache oid

let apply_update t oid idx v =
  let rid = find_rid t oid in
  let page = Buffer_pool.get t.pool rid.r_pid in
  let payload =
    match Page.read_slot page rid.r_slot with
    | Some s -> s
    | None -> failwith "Storage: directory points at a dead slot"
  in
  let payload' =
    match Page.Rec.splice payload idx v with
    | Some p -> p
    | None -> (
        (* slow path only to produce the precise error *)
        match Page.Rec.decode payload with
        | None -> failwith "Storage: undecodable record payload"
        | Some r ->
            if idx < 0 || idx >= Array.length r.Page.Rec.r_slots then
              invalid_arg "Storage: field index out of range"
            else failwith "Storage: undecodable record payload")
  in
  if Page.replace page rid.r_slot payload' then begin
    stamp t page;
    (* an in-place overwrite (length <= old) leaves the free hint valid *)
    if String.length payload' > String.length payload then free_update t rid.r_pid page;
    Buffer_pool.unpin t.pool rid.r_pid ~dirty:true
  end
  else begin
    (* the grown record no longer fits: migrate it to another page *)
    Page.delete page rid.r_slot;
    stamp t page;
    free_update t rid.r_pid page;
    Buffer_pool.unpin t.pool rid.r_pid ~dirty:true;
    let pid', slot' = place t payload' in
    rid.r_pid <- pid';
    rid.r_slot <- slot'
  end;
  (match Hashtbl.find_opt t.cache oid with
  | Some vs -> vs.(idx) <- v
  | None -> ());
  ()

let apply_update_by_name t oid field v =
  let r = read_rec t oid in
  let idx = ref (-1) in
  Array.iteri (fun i (f, _) -> if f = field && !idx < 0 then idx := i) r.Page.Rec.r_slots;
  if !idx >= 0 then apply_update t oid !idx v

(* --- ambient transaction (per domain x thread) --- *)

let ambient_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let ambient t = match Hashtbl.find_opt t.ambient (ambient_key ()) with Some x -> x | None -> 0

(* --- meta page --- *)

let meta_magic = "TVMT"

let meta_write t =
  let b = Bytes.make t.cfg.page_size '\000' in
  let payload =
    Printf.sprintf "%s%08x%016x%016x%016x" meta_magic t.cfg.page_size t.ckpt_lsn t.next_oid
      t.next_pid
  in
  Bytes.blit_string payload 0 b 8 (String.length payload);
  let sum = Page.sum8_sub b 8 (t.cfg.page_size - 8) in
  Bytes.blit_string sum 0 b 0 8;
  hooked_write t Meta_write t.data_fd 0 b;
  maybe_fsync t t.data_fd

let meta_read ~page_size fd =
  let b = pread_at fd 0 page_size in
  if Page.is_zero b then None
  else
    let sum = Bytes.sub_string b 0 8 in
    if Page.sum8_sub b 8 (page_size - 8) <> sum then None
    else if Bytes.sub_string b 8 4 <> meta_magic then None
    else
      let hex pos width = int_of_string_opt ("0x" ^ Bytes.sub_string b pos width) in
      match (hex 12 8, hex 20 16, hex 36 16, hex 52 16) with
      | Some ps, Some ckpt, Some noid, Some npid when ps = page_size ->
          Some (ckpt, noid, npid)
      | _ -> None

(* --- transactions --- *)

let rollback_locked t txn =
  (* Manager-style: walk this transaction's live incarnation backwards,
     compensating each logged change.  Updates get CLRs; an insert is
     compensated by a logged Delete, a delete by a logged Insert — both
     replay correctly on the redo pass and are discarded with the
     transaction by the committed-prefix oracle. *)
  let rec roll = function
    | [] -> ()
    | r :: tl -> (
        match r with
        | Wal.Begin x when x = txn -> ()
        | Wal.Update { txn = x; oid; field; before; _ } when x = txn ->
            ignore (log t (Wal.Clr { txn; oid; field; after = before }));
            let o = Oid.to_int oid in
            if Hashtbl.mem t.dir_tbl o then
              apply_update_by_name t o (FN.to_string field) before;
            roll tl
        | Wal.Insert { txn = x; oid; cls; slots } when x = txn ->
            ignore (log t (Wal.Delete { txn; oid; cls; slots }));
            let o = Oid.to_int oid in
            if Hashtbl.mem t.dir_tbl o then apply_delete t o;
            roll tl
        | Wal.Delete { txn = x; oid; cls; slots } when x = txn ->
            ignore (log t (Wal.Insert { txn; oid; cls; slots }));
            let o = Oid.to_int oid in
            if not (Hashtbl.mem t.dir_tbl o) then
              apply_insert t ~oid:o ~cls:(CN.to_string cls)
                ~slots:
                  (Array.of_list
                     (List.map (fun (f, v) -> (FN.to_string f, v)) slots));
            roll tl
        | _ -> roll tl)
  in
  roll (List.rev (Wal.all t.wal))

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let begin_txn t txn =
  locked t (fun () ->
      ignore (log t (Wal.Begin txn));
      Hashtbl.replace t.active txn ();
      Hashtbl.replace t.ambient (ambient_key ()) txn)

let commit t txn =
  locked t (fun () ->
      ignore (log t (Wal.Commit txn));
      wal_flush t;
      Hashtbl.remove t.active txn;
      Hashtbl.remove t.ambient (ambient_key ()))

let abort t txn =
  locked t (fun () ->
      rollback_locked t txn;
      ignore (log t (Wal.Abort txn));
      Hashtbl.remove t.active txn;
      Hashtbl.remove t.ambient (ambient_key ()))

let checkpoint t =
  locked t (fun () ->
      ignore (hook t Ckpt_begin);
      Buffer_pool.flush_all t.pool;
      wal_flush t;
      let activ = List.sort Int.compare (Hashtbl.fold (fun k () l -> k :: l) t.active []) in
      let lsn = log t (Wal.Checkpoint activ) in
      wal_flush t;
      t.ckpt_lsn <- lsn;
      (* every page the log up to here touches is clean on disk: the
         double-write entries are dead weight now *)
      Unix.ftruncate t.dblwr_fd 0;
      t.dblwr_bytes <- 0;
      meta_write t;
      bump t (fun o -> o.c_ckpts);
      ignore (hook t Ckpt_end))

let flush t = locked t (fun () -> wal_flush t)

(* --- the Store-facing surface --- *)

let ext t =
  {
    Store.x_insert =
      (fun cls slots ->
        locked t (fun () ->
            let oid = t.next_oid in
            t.next_oid <- oid + 1;
            let slots_l = Array.to_list slots in
            ignore (log t (Wal.Insert { txn = ambient t; oid = Oid.of_int oid; cls; slots = slots_l }));
            apply_insert t ~oid ~cls:(CN.to_string cls)
              ~slots:(Array.map (fun (f, v) -> (FN.to_string f, v)) slots);
            Oid.of_int oid));
    x_delete =
      (fun oid ->
        locked t (fun () ->
            let o = Oid.to_int oid in
            let r = read_rec t o in
            let cls = CN.of_string r.Page.Rec.r_cls in
            let slots =
              Array.to_list
                (Array.map (fun (f, v) -> (FN.of_string f, v)) r.Page.Rec.r_slots)
            in
            ignore (log t (Wal.Delete { txn = ambient t; oid; cls; slots }));
            apply_delete t o));
    x_exists = (fun oid -> locked t (fun () -> Hashtbl.mem t.dir_tbl (Oid.to_int oid)));
    x_class_of =
      (fun oid ->
        locked t (fun () ->
            Option.map
              (fun r -> CN.of_string r.r_cls)
              (Hashtbl.find_opt t.dir_tbl (Oid.to_int oid))));
    x_read = (fun oid i -> locked t (fun () -> (read_values t (Oid.to_int oid)).(i)));
    x_write =
      (fun oid i field v ->
        locked t (fun () ->
            let o = Oid.to_int oid in
            if t.cfg.self_journal then begin
              let before = (read_values t o).(i) in
              ignore (log t (Wal.Update { txn = ambient t; oid; field; before; after = v }))
            end
            else ignore (find_rid t o);
            apply_update t o i v));
    x_field_count =
      (fun oid -> locked t (fun () -> Array.length (read_values t (Oid.to_int oid))));
    x_extent =
      (fun cls ->
        locked t (fun () ->
            match Hashtbl.find_opt t.extents (CN.to_string cls) with
            | Some r -> List.rev_map Oid.of_int !r
            | None -> []));
    x_count = (fun () -> locked t (fun () -> Hashtbl.length t.dir_tbl));
  }

let store t schema = Store.create_ext schema (ext t)

(* --- journalling observer for the cooperative sim engine --- *)

let observe t (a : Tavcc_sim.Engine.access) =
  match a with
  | Tavcc_sim.Engine.Ob_begin txn ->
      locked t (fun () ->
          ignore (log t (Wal.Begin txn));
          Hashtbl.replace t.active txn ())
  | Tavcc_sim.Engine.Ob_read _ -> ()
  | Tavcc_sim.Engine.Ob_write { txn; oid; field; before; after } ->
      locked t (fun () -> ignore (log t (Wal.Update { txn; oid; field; before; after })))
  | Tavcc_sim.Engine.Ob_commit txn ->
      locked t (fun () ->
          ignore (log t (Wal.Commit txn));
          wal_flush t;
          Hashtbl.remove t.active txn)
  | Tavcc_sim.Engine.Ob_abort txn ->
      locked t (fun () ->
          rollback_locked t txn;
          ignore (log t (Wal.Abort txn));
          Hashtbl.remove t.active txn)

(* --- durability hooks for the parallel engine --- *)

let journal t =
  {
    Tavcc_par.Par_engine.j_begin = begin_txn t;
    j_commit = commit t;
    j_abort = abort t;
  }

(* --- open / recovery --- *)

let losers = Recovery.Restart.losers

(* Rebuild an oid's full image from the log's complete history (the WAL
   file is never truncated, so position 0 is the store's birth).  Every
   physical store change is logged — forward updates, CLR compensations,
   inserts, compensating inserts/deletes — so folding records[0, upto)
   yields exactly the object's state at log position [upto].  Redo needs
   this when a record migrated between pages and only the source page's
   post-delete image reached disk: the object is then on no page at all,
   and its Update record must act as a re-insert. *)
let reconstruct records upto oid =
  let img = ref None in
  List.iteri
    (fun i r ->
      if i < upto then
        match r with
        | Wal.Insert { oid = o; cls; slots; _ } when Oid.to_int o = oid ->
            img :=
              Some
                ( CN.to_string cls,
                  Array.of_list (List.map (fun (f, v) -> (FN.to_string f, v)) slots) )
        | Wal.Delete { oid = o; _ } when Oid.to_int o = oid -> img := None
        | (Wal.Update { oid = o; field; after; _ } | Wal.Clr { oid = o; field; after; _ })
          when Oid.to_int o = oid -> (
            match !img with
            | None -> ()
            | Some (cls, slots) ->
                let f = FN.to_string field in
                img :=
                  Some
                    (cls, Array.map (fun (g, v) -> if g = f then (g, after) else (g, v)) slots))
        | _ -> ())
    records;
  !img

let recover_locked t =
  t.in_recovery <- true;
  let ps = t.cfg.page_size in
  (* 1. the stable log: longest valid prefix; drop any torn tail *)
  let raw = read_whole t.wal_fd in
  let records = Codec.decode raw in
  (* encoding is canonical, so re-encoding measures exactly the bytes the
     valid prefix occupies; anything past it is a torn tail to drop *)
  let consumed = String.length (Codec.encode records) in
  Unix.ftruncate t.wal_fd consumed;
  t.wal_bytes <- consumed;
  List.iter (fun r -> ignore (Wal.append t.wal r)) records;
  Wal.flush t.wal;
  (* 2. meta (torn-tolerant: fall back to full-log redo) *)
  let ckpt0, noid0, npid0 =
    match meta_read ~page_size:ps t.data_fd with Some m -> m | None -> (0, 0, 1)
  in
  t.ckpt_lsn <- min ckpt0 (List.length records);
  t.next_oid <- noid0;
  (* 3. double-write repairs for torn pages *)
  let repairs = dblwr_decode (read_whole t.dblwr_fd) in
  let file_pages =
    ((Unix.fstat t.data_fd).Unix.st_size + ps - 1) / ps
  in
  t.next_pid <- max 1 (max npid0 file_pages);
  let page_lsns = Hashtbl.create 64 in
  let stale = ref [] in
  for pid = 1 to t.next_pid - 1 do
    let b = pread_at t.data_fd (page_off t pid) ps in
    let page =
      if Page.is_zero b then None
      else
        match Page.of_bytes b with
        | Ok p -> Some p
        | Error _ -> (
            match Hashtbl.find_opt repairs pid with
            | Some img when Bytes.length img = ps -> (
                match Page.of_bytes img with
                | Ok p ->
                    pwrite_at t.data_fd (page_off t pid) img;
                    Some p
                | Error e ->
                    failwith
                      (Printf.sprintf "Storage: page %d torn and dblwr copy bad (%s)" pid e))
            | _ -> failwith (Printf.sprintf "Storage: page %d corrupt with no dblwr copy" pid))
    in
    match page with
    | None -> ()
    | Some p ->
        Hashtbl.replace page_lsns pid (Page.lsn p);
        Page.iter p (fun slot payload ->
            match Page.Rec.decode payload with
            | Some r ->
                let oid = r.Page.Rec.r_oid in
                (match Hashtbl.find_opt t.dir_tbl oid with
                | Some prev ->
                    (* two on-disk copies: a record migrated between
                       pages and the crash caught only the destination's
                       write-back.  The copy on the higher-LSN page is
                       the live one; the other slot is garbage. *)
                    let prev_lsn =
                      match Hashtbl.find_opt page_lsns prev.r_pid with Some l -> l | None -> 0
                    in
                    if Page.lsn p > prev_lsn then begin
                      stale := (prev.r_pid, prev.r_slot) :: !stale;
                      Hashtbl.replace t.dir_tbl oid
                        { r_pid = pid; r_slot = slot; r_cls = r.Page.Rec.r_cls }
                    end
                    else stale := (pid, slot) :: !stale
                | None ->
                    Hashtbl.replace t.dir_tbl oid
                      { r_pid = pid; r_slot = slot; r_cls = r.Page.Rec.r_cls });
                if oid >= t.next_oid then t.next_oid <- oid + 1
            | None -> failwith (Printf.sprintf "Storage: page %d slot %d undecodable" pid slot));
        Hashtbl.replace t.free pid (Page.insert_capacity p)
  done;
  (* physically drop the stale copies before anything goes through the
     pool, then refresh the free hints of the touched pages *)
  List.iter
    (fun (pid, slot) ->
      let b = pread_at t.data_fd (page_off t pid) ps in
      match Page.of_bytes b with
      | Ok p ->
          Page.delete p slot;
          pwrite_at t.data_fd (page_off t pid) (Page.to_bytes p);
          Hashtbl.replace t.free pid (Page.insert_capacity p)
      | Error _ -> assert false (* just validated above *))
    !stale;
  (* extents in creation (= oid) order, newest first *)
  Hashtbl.iter
    (fun oid rid -> extent_add t rid.r_cls oid)
    (Hashtbl.copy t.dir_tbl);
  (* 4. redo from the checkpoint: repeating history, logically by oid *)
  List.iteri
    (fun i r ->
      if i >= t.ckpt_lsn then
        match r with
        | Wal.Insert { oid; cls; slots; _ } ->
            let o = Oid.to_int oid in
            if o >= t.next_oid then t.next_oid <- o + 1;
            if Hashtbl.mem t.dir_tbl o then apply_delete t o;
            apply_insert t ~oid:o ~cls:(CN.to_string cls)
              ~slots:
                (Array.of_list (List.map (fun (f, v) -> (FN.to_string f, v)) slots))
        | Wal.Delete { oid; _ } ->
            let o = Oid.to_int oid in
            if Hashtbl.mem t.dir_tbl o then apply_delete t o
        | Wal.Update { oid; field; after; _ } | Wal.Clr { oid; field; after; _ } -> (
            let o = Oid.to_int oid in
            if Hashtbl.mem t.dir_tbl o then
              apply_update_by_name t o (FN.to_string field) after
            else
              (* on no page at all (lost in a half-durable migration):
                 rebuild its image as of this record from the full log *)
              match reconstruct records (i + 1) o with
              | Some (cls, slots) -> apply_insert t ~oid:o ~cls ~slots
              | None -> ())
        | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ | Wal.Checkpoint _ -> ())
    records;
  (* 5. undo the losers, newest first, stopping at each Begin *)
  let open_ = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace open_ x ()) (losers records);
  List.iter
    (fun r ->
      match r with
      | Wal.Begin x when Hashtbl.mem open_ x -> Hashtbl.remove open_ x
      | Wal.Update { txn; oid; field; before; _ } when Hashtbl.mem open_ txn ->
          let o = Oid.to_int oid in
          if Hashtbl.mem t.dir_tbl o then
            apply_update_by_name t o (FN.to_string field) before
      | Wal.Insert { txn; oid; _ } when Hashtbl.mem open_ txn ->
          let o = Oid.to_int oid in
          if Hashtbl.mem t.dir_tbl o then apply_delete t o
      | Wal.Delete { txn; oid; cls; slots } when Hashtbl.mem open_ txn ->
          let o = Oid.to_int oid in
          if not (Hashtbl.mem t.dir_tbl o) then
            apply_insert t ~oid:o ~cls:(CN.to_string cls)
              ~slots:
                (Array.of_list (List.map (fun (f, v) -> (FN.to_string f, v)) slots))
      | _ -> ())
    (List.rev records);
  List.iter (fun x -> ignore (log t (Wal.Abort x))) (losers records);
  t.in_recovery <- false

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create cfg =
  if cfg.page_size < Page.min_size then invalid_arg "Storage: page_size too small";
  if cfg.pool_pages < 2 then invalid_arg "Storage: pool_pages must be >= 2";
  mkdir_p cfg.dir;
  let openf name =
    Unix.openfile (Filename.concat cfg.dir name) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  let obs =
    Option.map
      (fun m ->
        let c = Tavcc_obs.Metrics.counter m in
        {
          c_page_reads = c "storage.page_reads";
          c_page_writes = c "storage.page_writes";
          c_wal_bytes = c "storage.wal_bytes";
          c_ckpts = c "storage.checkpoints";
          c_cache_hits = c "storage.cache_hits";
          c_cache_misses = c "storage.cache_misses";
        })
      cfg.metrics
  in
  let t =
    {
      cfg;
      mu = Mutex.create ();
      data_fd = openf "data.pages";
      wal_fd = openf "wal.log";
      dblwr_fd = openf "dblwr.log";
      wal = Wal.create ?metrics:cfg.metrics ();
      pending = [];
      wal_bytes = 0;
      dblwr_bytes = 0;
      (* placeholder; the real pool (whose callbacks close over [t]) is
         knot-tied just below, before any page is touched *)
      pool =
        Buffer_pool.create ~pages:2
          ~load:(fun _ -> Page.create Page.min_size)
          ~write_back:(fun _ _ -> ());
      dir_tbl = Hashtbl.create 1024;
      extents = Hashtbl.create 16;
      free = Hashtbl.create 64;
      (* oids start at 0, matching [Oid.Gen] — a client that regenerates
         the deterministic workload store in memory (oosim blast) must
         produce the same oids this store allocated *)
      next_oid = 0;
      next_pid = 1;
      ckpt_lsn = 0;
      cache = Hashtbl.create 1024;
      cache_ring =
        Array.make
          (if cfg.cache_entries > 0 then cfg.cache_entries else cfg.pool_pages * 32)
          (-1);
      cache_cur = 0;
      active = Hashtbl.create 8;
      ambient = Hashtbl.create 8;
      obs;
      hooks_on = false;
      in_recovery = false;
    }
  in
  t.pool <-
    Buffer_pool.create ~pages:cfg.pool_pages ~load:(load_page t) ~write_back:(write_back t);
  Mutex.lock t.mu;
  recover_locked t;
  (* recovery ends with a checkpoint so the next crash replays little *)
  Mutex.unlock t.mu;
  checkpoint t;
  t.hooks_on <- true;
  t

let close ?(flush = true) t =
  if flush then checkpoint t;
  Unix.close t.data_fd;
  Unix.close t.wal_fd;
  Unix.close t.dblwr_fd

let abandon t =
  (* post-crash: release the fds without writing a byte *)
  (try Unix.close t.data_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wal_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.dblwr_fd with Unix.Unix_error _ -> ())

let wal t = t.wal

let dump t =
  locked t (fun () ->
      Hashtbl.fold (fun oid _ l -> oid :: l) t.dir_tbl []
      |> List.sort Int.compare
      |> List.map (fun oid ->
             let r = read_rec t oid in
             (oid, r.Page.Rec.r_cls, Array.to_list r.Page.Rec.r_slots)))

type stats = {
  s_instances : int;
  s_data_pages : int;
  s_pool_pages : int;
  s_pool : Buffer_pool.stats;
  s_wal_records : int;
  s_wal_bytes : int;
  s_cache_entries : int;
}

let stats t =
  locked t (fun () ->
      {
        s_instances = Hashtbl.length t.dir_tbl;
        s_data_pages = t.next_pid - 1;
        s_pool_pages = Buffer_pool.capacity t.pool;
        s_pool = Buffer_pool.stats t.pool;
        s_wal_records = Wal.length t.wal;
        s_wal_bytes = t.wal_bytes;
        s_cache_entries = Hashtbl.length t.cache;
      })
