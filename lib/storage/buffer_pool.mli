(** Clock (second-chance) buffer pool over {!Page}s.

    Not thread-safe on its own — the storage engine serialises access
    under its mutex; tests that hammer it from two domains must wrap it
    the same way.  Invariants (all raising [Invalid_argument] /
    [Failure] on violation, and tested in [test_storage]):

    - the pin ledger never goes negative;
    - a dirty frame is never evicted without the [write_back] callback
      completing first (which is where the engine enforces
      WAL-before-data);
    - the clock hand makes progress: at most two sweeps per eviction,
      then [Failure "Buffer_pool: all frames pinned"]. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable write_backs : int;
}

type t

val create : pages:int -> load:(int -> Page.t) -> write_back:(int -> Page.t -> unit) -> t
(** @raise Invalid_argument when [pages < 2] (relocation pins two). *)

val get : t -> int -> Page.t
(** Pins the page (loading and possibly evicting first).  Balance every
    [get] with exactly one {!unpin}. *)

val unpin : t -> int -> dirty:bool -> unit
val mark_dirty : t -> int -> unit

val flush_all : t -> unit
(** Writes every dirty resident page back (the checkpoint sweep). *)

val stats : t -> stats
val capacity : t -> int
val pinned : t -> int
(** Outstanding pins across all frames. *)

val dirty_count : t -> int

val drop_all : t -> unit
(** Empties the pool without writing anything — crash simulation. *)
