open Tavcc_model

(* --- fixed-width hex fields ---

   The whole header is printable hex, same discipline as the chaos
   Codec frames: torn writes tear mid-digit and fail to parse, and a
   page image diffs cleanly in a hexdump. *)

let hex_digits = "0123456789abcdef"

let to_hex8 v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.unsafe_set b i hex_digits.[(v lsr ((7 - i) * 4)) land 15]
  done;
  Bytes.unsafe_to_string b

(* FNV-1a folded to 32 bits — same family as the WAL frame checksum:
   catches torn and bit-flipped images, costs a tight byte loop instead
   of a digest per page write. *)
let sum8_sub b pos len =
  let h = ref 0x811c9dc5 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xffffffff
  done;
  to_hex8 !h

let sum8 s = sum8_sub (Bytes.unsafe_of_string s) 0 (String.length s)

let put_hex buf pos width v =
  let rec go i v =
    if i >= 0 then begin
      Bytes.unsafe_set buf (pos + i) hex_digits.[v land 15];
      go (i - 1) (v lsr 4)
    end
  in
  go (width - 1) v

let get_hex buf pos width =
  if pos + width > Bytes.length buf then None
  else
    let rec go i acc =
      if i = width then Some acc
      else
        let d =
          match Bytes.unsafe_get buf (pos + i) with
          | '0' .. '9' as c -> Char.code c - Char.code '0'
          | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
          | _ -> -1
        in
        if d < 0 then None else go (i + 1) ((acc lsl 4) lor d)
    in
    go 0 0

let header_size = 44
let slot_entry = 16
let min_size = 256

(* offsets *)
let o_sum = 0 (* 8: checksum of [8, size) *)
let o_magic = 8 (* 4: "TVPG" *)
let o_lsn = 12 (* 16 *)
let o_nslots = 28 (* 8 *)
let o_heap = 36 (* 8: lowest offset used by the record heap *)

let magic = "TVPG"

type t = { buf : Bytes.t }

let size t = Bytes.length t.buf

let create n =
  if n < min_size then invalid_arg "Page.create: page size too small";
  let buf = Bytes.make n '\000' in
  Bytes.blit_string magic 0 buf o_magic 4;
  put_hex buf o_lsn 16 0;
  put_hex buf o_nslots 8 0;
  put_hex buf o_heap 8 n;
  { buf }

let lsn t = match get_hex t.buf o_lsn 16 with Some v -> v | None -> 0
let set_lsn t v = put_hex t.buf o_lsn 16 v
let nslots t = match get_hex t.buf o_nslots 8 with Some v -> v | None -> 0
let heap t = match get_hex t.buf o_heap 8 with Some v -> v | None -> size t
let set_nslots t v = put_hex t.buf o_nslots 8 v
let set_heap t v = put_hex t.buf o_heap 8 v
let dir_end t = header_size + (slot_entry * nslots t)

let slot t i =
  let base = header_size + (slot_entry * i) in
  match (get_hex t.buf base 8, get_hex t.buf (base + 8) 8) with
  | Some off, Some len when off > 0 -> Some (off, len)
  | _ -> None

let set_slot t i off len =
  let base = header_size + (slot_entry * i) in
  put_hex t.buf base 8 off;
  put_hex t.buf (base + 8) 8 len

let read_slot t i = if i >= nslots t then None else
    match slot t i with
    | Some (off, len) -> Some (Bytes.sub_string t.buf off len)
    | None -> None

let iter t f =
  for i = 0 to nslots t - 1 do
    match slot t i with
    | Some (off, len) -> f i (Bytes.sub_string t.buf off len)
    | None -> ()
  done

let live_bytes t =
  let n = ref 0 in
  for i = 0 to nslots t - 1 do
    match slot t i with Some (_, len) -> n := !n + len | None -> ()
  done;
  !n

let dead_slot t =
  let found = ref None in
  (try
     for i = 0 to nslots t - 1 do
       if slot t i = None then begin
         found := Some i;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let compact t =
  let live = ref [] in
  iter t (fun i payload -> live := (i, payload) :: !live);
  let pos = ref (size t) in
  (* Slot indices are stable rids — only the heap moves.  Packing the
     newest-collected (highest offset is irrelevant) records back from
     the end; the order does not matter as long as they do not overlap,
     which packing guarantees. *)
  List.iter
    (fun (i, payload) ->
      let len = String.length payload in
      pos := !pos - len;
      Bytes.blit_string payload 0 t.buf !pos len;
      set_slot t i !pos len)
    !live;
  set_heap t !pos

let contiguous t = heap t - dir_end t

let insert_capacity t =
  let extra = match dead_slot t with Some _ -> 0 | None -> slot_entry in
  size t - dir_end t - live_bytes t - extra

let insert t payload =
  let len = String.length payload in
  if len > insert_capacity t then None
  else begin
    let i, new_slot = match dead_slot t with Some i -> (i, false) | None -> (nslots t, true) in
    (* compact before extending the directory: the new entry's 16 bytes
       must land in free space, never on a live record *)
    let need = len + if new_slot then slot_entry else 0 in
    if need > contiguous t then compact t;
    if new_slot then set_nslots t (nslots t + 1);
    let off = heap t - len in
    Bytes.blit_string payload 0 t.buf off len;
    set_slot t i off len;
    set_heap t off;
    Some i
  end

let delete t i =
  if i < nslots t then
    match slot t i with
    | Some (off, len) ->
        set_slot t i 0 0;
        (* reclaim eagerly when the record sat at the heap edge *)
        if off = heap t then set_heap t (off + len)
    | None -> ()

let replace t i payload =
  if i >= nslots t then false
  else
    match slot t i with
    | None -> false
    | Some (off, old_len) ->
        let len = String.length payload in
        if len <= old_len then begin
          (* overwrite in place: no heap consumed, no compaction.  A
             shrink leaves [off+len, off+old_len) as interior garbage,
             which [compact] reclaims like any other dead bytes. *)
          Bytes.blit_string payload 0 t.buf off len;
          if len < old_len then set_slot t i off len;
          true
        end
        else if len > size t - dir_end t - (live_bytes t - old_len) then false
        else begin
          set_slot t i 0 0;
          if off = heap t then set_heap t (off + old_len);
          if len > contiguous t then compact t;
          let noff = heap t - len in
          Bytes.blit_string payload 0 t.buf noff len;
          set_slot t i noff len;
          set_heap t noff;
          true
        end

(* --- checksummed (de)serialisation --- *)

let checksum_of t = sum8_sub t.buf 8 (size t - 8)

let to_bytes t =
  let copy = { buf = Bytes.copy t.buf } in
  Bytes.blit_string (checksum_of copy) 0 copy.buf o_sum 8;
  copy.buf

let of_bytes b =
  let t = { buf = Bytes.copy b } in
  if Bytes.length b < min_size then Error "short page"
  else if Bytes.sub_string b o_magic 4 <> magic then Error "bad magic"
  else if Bytes.sub_string b o_sum 8 <> checksum_of t then Error "bad checksum"
  else
    match (get_hex t.buf o_nslots 8, get_hex t.buf o_heap 8) with
    | Some ns, Some hp
      when ns >= 0
           && header_size + (slot_entry * ns) <= hp
           && hp <= Bytes.length b ->
        Ok t
    | _ -> Error "bad header"

let is_zero b =
  let ok = ref true in
  Bytes.iter (fun c -> if c <> '\000' then ok := false) b;
  !ok

(* --- instance record payloads ---

   Same token discipline as the chaos Codec: ints are decimal with a
   trailing ',', strings length-prefixed, floats the 16 hex digits of
   their IEEE bits.  Records carry field *names* so a log or a page
   replays without a schema in hand. *)

module Rec = struct
  type t = { r_oid : int; r_cls : string; r_slots : (string * Value.t) array }

  let enc_int b n =
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ','

  let enc_str b s =
    enc_int b (String.length s);
    Buffer.add_string b s

  let enc_value b = function
    | Value.Vint n ->
        Buffer.add_char b 'i';
        enc_int b n
    | Value.Vbool v -> Buffer.add_string b (if v then "b1" else "b0")
    | Value.Vstring s ->
        Buffer.add_char b 's';
        enc_str b s
    | Value.Vfloat f ->
        Buffer.add_char b 'f';
        Buffer.add_string b (Printf.sprintf "%016Lx" (Int64.bits_of_float f))
    | Value.Vref oid ->
        Buffer.add_char b 'r';
        enc_int b (Oid.to_int oid)
    | Value.Vnull -> Buffer.add_char b 'n'

  let encode r =
    let b = Buffer.create 64 in
    enc_int b r.r_oid;
    enc_str b r.r_cls;
    enc_int b (Array.length r.r_slots);
    Array.iter
      (fun (f, v) ->
        enc_str b f;
        enc_value b v)
      r.r_slots;
    Buffer.contents b

  exception Torn

  type cursor = { s : string; mutable pos : int }

  let take c n =
    if c.pos + n > String.length c.s then raise Torn;
    let r = String.sub c.s c.pos n in
    c.pos <- c.pos + n;
    r

  let dec_char c = (take c 1).[0]

  let dec_int c =
    let start = c.pos in
    let rec find i =
      if i >= String.length c.s then raise Torn
      else if c.s.[i] = ',' then i
      else find (i + 1)
    in
    let stop = find start in
    c.pos <- stop + 1;
    match int_of_string_opt (String.sub c.s start (stop - start)) with
    | Some n -> n
    | None -> raise Torn

  let dec_str c =
    let n = dec_int c in
    if n < 0 then raise Torn;
    take c n

  let dec_value c =
    match dec_char c with
    | 'i' -> Value.Vint (dec_int c)
    | 'b' -> (
        match dec_char c with
        | '0' -> Value.Vbool false
        | '1' -> Value.Vbool true
        | _ -> raise Torn)
    | 's' -> Value.Vstring (dec_str c)
    | 'f' -> (
        let hex = take c 16 in
        match Int64.of_string_opt ("0x" ^ hex) with
        | Some bits -> Value.Vfloat (Int64.float_of_bits bits)
        | None -> raise Torn)
    | 'r' -> Value.Vref (Oid.of_int (dec_int c))
    | 'n' -> Value.Vnull
    | _ -> raise Torn

  let decode s =
    let c = { s; pos = 0 } in
    match
      let r_oid = dec_int c in
      let r_cls = dec_str c in
      let n = dec_int c in
      if n < 0 then raise Torn;
      let slots = Array.make n ("", Value.Vnull) in
      for i = 0 to n - 1 do
        let f = dec_str c in
        let v = dec_value c in
        slots.(i) <- (f, v)
      done;
      { r_oid; r_cls; r_slots = slots }
    with
    | r -> if c.pos = String.length s then Some r else None
    | exception Torn -> None

  let splice payload idx v =
    (* re-encode with slot [idx]'s value swapped for [v], without
       decoding the rest — the field-write fast path *)
    let c = { s = payload; pos = 0 } in
    match
      let _ = dec_int c in
      let _ = dec_str c in
      let n = dec_int c in
      if idx < 0 || idx >= n then raise Torn;
      for _ = 1 to idx do
        let _ = dec_str c in
        ignore (dec_value c)
      done;
      let _ = dec_str c in
      let start = c.pos in
      ignore (dec_value c);
      let stop = c.pos in
      let b = Buffer.create (String.length payload + 16) in
      Buffer.add_substring b payload 0 start;
      enc_value b v;
      Buffer.add_substring b payload stop (String.length payload - stop);
      Buffer.contents b
    with
    | p -> Some p
    | exception Torn -> None
end
