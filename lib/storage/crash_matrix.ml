open Tavcc_model
open Tavcc_recovery
module Codec = Tavcc_chaos.Codec
module Fault = Tavcc_chaos.Fault
module Rng = Tavcc_sim.Rng
module CN = Name.Class
module FN = Name.Field

(* --- configuration --- *)

type config = {
  seed : int;
  txns : int;
  objs : int;
  ops_per_txn : int;
  page_size : int;
  pool_pages : int;
  base_dir : string;
  max_states : int;
  max_plans : int;
}

let default ?(dir = "_crash_matrix") ~seed () =
  {
    seed;
    txns = 24;
    objs = 96;
    ops_per_txn = 5;
    page_size = 512;
    pool_pages = 4;
    base_dir = dir;
    max_states = 120;
    max_plans = 48;
  }

(* --- tiny file helpers --- *)

let read_file path =
  if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all else ""

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let wal_path dir = Filename.concat dir "wal.log"
let data_path dir = Filename.concat dir "data.pages"
let dblwr_path dir = Filename.concat dir "dblwr.log"

(* --- the workload schema: a bank-ish pair of classes --- *)

let acct = CN.of_string "acct"
let evt = CN.of_string "evt"
let f_bal = FN.of_string "bal"
let f_tag = FN.of_string "tag"
let f_n = FN.of_string "n"

let build_schema () : unit Schema.t =
  let decl name fields =
    { Schema.c_name = CN.of_string name; c_parents = []; c_fields = fields; c_methods = [] }
  in
  match
    Schema.build
      [
        decl "acct" [ (f_bal, Value.Tint); (f_tag, Value.Tstring) ];
        decl "evt" [ (f_n, Value.Tint) ];
      ]
  with
  | Ok s -> s
  | Error e -> failwith (Format.asprintf "crash_matrix schema: %a" Schema.pp_error e)

(* --- the serial driver ---

   One thread, ambient transactions, a deliberately small buffer pool so
   evictions (and therefore page write-backs) happen constantly.  The
   variable-length [tag] writes force in-page relocations and
   cross-page migrations. *)

type tally = {
  mutable t_commits : int;
  mutable t_aborts : int;
  mutable t_acked : int list;  (** commits whose [Engine.commit] returned *)
}

let fresh_tally () = { t_commits = 0; t_aborts = 0; t_acked = [] }

let drive cfg eng tally =
  let schema = build_schema () in
  let store = Engine.store eng schema in
  let rng = Rng.create cfg.seed in
  let live = ref [] in
  for i = 0 to cfg.objs - 1 do
    let cls = if i mod 4 = 3 then evt else acct in
    let init =
      if CN.to_string cls = "evt" then [ (f_n, Value.Vint i) ]
      else [ (f_bal, Value.Vint (100 * i)); (f_tag, Value.Vstring (Printf.sprintf "tag%04d" i)) ]
    in
    let oid = Store.new_instance ~init store cls in
    live := (Oid.to_int oid, CN.to_string cls) :: !live
  done;
  Engine.checkpoint eng;
  for k = 1 to cfg.txns do
    Engine.begin_txn eng k;
    let added = ref [] and removed = ref [] in
    for _ = 1 to cfg.ops_per_txn do
      let r = Rng.int rng 100 in
      if r < 55 && !live <> [] then begin
        let o, cls = Rng.pick rng !live in
        if cls = "acct" then
          if Rng.bool rng then
            Store.write store (Oid.of_int o) f_bal (Value.Vint (Rng.int rng 10000))
          else
            Store.write store (Oid.of_int o) f_tag
              (Value.Vstring (String.make (1 + Rng.int rng 48) 'x'))
        else Store.write store (Oid.of_int o) f_n (Value.Vint (Rng.int rng 1000))
      end
      else if r < 70 && !live <> [] then begin
        let o, cls = Rng.pick rng !live in
        ignore (Store.read store (Oid.of_int o) (if cls = "acct" then f_tag else f_n))
      end
      else if r < 88 then begin
        let oid =
          Store.new_instance
            ~init:[ (f_bal, Value.Vint (Rng.int rng 500)); (f_tag, Value.Vstring "new") ]
            store acct
        in
        live := (Oid.to_int oid, "acct") :: !live;
        added := Oid.to_int oid :: !added
      end
      else if List.length !live > 8 then begin
        let o, cls = Rng.pick rng !live in
        Store.delete_instance store (Oid.of_int o);
        live := List.filter (fun (x, _) -> x <> o) !live;
        removed := (o, cls) :: !removed
      end
    done;
    if Rng.chance rng 0.25 then begin
      Engine.abort eng k;
      tally.t_aborts <- tally.t_aborts + 1;
      live := List.filter (fun (x, _) -> not (List.mem x !added)) !live;
      List.iter (fun rc -> live := rc :: !live) !removed
    end
    else begin
      Engine.commit eng k;
      tally.t_commits <- tally.t_commits + 1;
      tally.t_acked <- k :: tally.t_acked
    end;
    if k mod 7 = 0 then Engine.checkpoint eng
  done

(* --- the committed-prefix oracle ---

   The driver is serial, so log order is execution order and the state a
   correct recovery must produce is exactly: replay, in log order, the
   operations of transaction 0 (autocommit) and of every transaction
   whose [Commit] made it into the surviving prefix.  Aborted
   transactions are skipped wholesale — their forward images and their
   compensations cancel. *)

let oracle records =
  let committed = Hashtbl.create 32 in
  Hashtbl.replace committed 0 ();
  List.iter
    (function Wal.Commit x -> Hashtbl.replace committed x () | _ -> ())
    records;
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun r ->
      match r with
      | Wal.Insert { txn; oid; cls; slots } when Hashtbl.mem committed txn ->
          Hashtbl.replace tbl (Oid.to_int oid)
            (CN.to_string cls, List.map (fun (f, v) -> (FN.to_string f, v)) slots)
      | Wal.Delete { txn; oid; _ } when Hashtbl.mem committed txn ->
          Hashtbl.remove tbl (Oid.to_int oid)
      | Wal.Update { txn; oid; field; after; _ } when Hashtbl.mem committed txn -> (
          let fname = FN.to_string field in
          match Hashtbl.find_opt tbl (Oid.to_int oid) with
          | Some (cls, slots) ->
              Hashtbl.replace tbl (Oid.to_int oid)
                (cls, List.map (fun (f, v) -> if f = fname then (f, after) else (f, v)) slots)
          | None -> ())
      | _ -> ())
    records;
  Hashtbl.fold (fun oid (cls, slots) l -> (oid, cls, slots) :: l) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let pp_value v =
  match v with
  | Value.Vint n -> string_of_int n
  | Value.Vbool b -> string_of_bool b
  | Value.Vstring s -> Printf.sprintf "%S" s
  | Value.Vfloat f -> string_of_float f
  | Value.Vref o -> Printf.sprintf "@%d" (Oid.to_int o)
  | Value.Vnull -> "null"

let dump_to_string dump =
  String.concat "\n"
    (List.map
       (fun (oid, cls, slots) ->
         Printf.sprintf "%d %s {%s}" oid cls
           (String.concat "; " (List.map (fun (f, v) -> f ^ "=" ^ pp_value v) slots)))
       dump)

let compare_state ~label dump records acked =
  let violations = ref [] in
  let add m = violations := m :: !violations in
  List.iter
    (fun k ->
      if not (List.exists (function Wal.Commit x -> x = k | _ -> false) records) then
        add
          (Printf.sprintf "%s: durability: acknowledged commit of txn %d missing from stable log"
             label k))
    acked;
  let expected = oracle records in
  if dump <> expected then begin
    let d = dump_to_string dump and e = dump_to_string expected in
    let first_diff =
      let dl = String.split_on_char '\n' d and el = String.split_on_char '\n' e in
      let rec go = function
        | x :: xs, y :: ys -> if x = y then go (xs, ys) else Printf.sprintf "got %s, want %s" x y
        | x :: _, [] -> Printf.sprintf "extra %s" x
        | [], y :: _ -> Printf.sprintf "missing %s" y
        | [], [] -> "?"
      in
      go (dl, el)
    in
    add
      (Printf.sprintf "%s: recovered state diverges from committed-prefix oracle (%d vs %d instances; %s)"
         label (List.length dump) (List.length expected) first_diff)
  end;
  List.rev !violations

(* --- recovering a captured or surviving image --- *)

let engine_config cfg ~dir ~io_hook =
  { (Engine.default_config ~dir) with page_size = cfg.page_size; pool_pages = cfg.pool_pages; io_hook }

type state = {
  st_label : string;
  st_wal : string;
  st_data : string;
  st_dblwr : string;
  st_acked : int list;
}

let capture dir acked label =
  {
    st_label = label;
    st_wal = read_file (wal_path dir);
    st_data = read_file (data_path dir);
    st_dblwr = read_file (dblwr_path dir);
    st_acked = acked;
  }

let recover_and_check cfg st =
  let dir = Filename.concat cfg.base_dir "rec" in
  rm_rf dir;
  mkdir_p dir;
  write_file (wal_path dir) st.st_wal;
  write_file (data_path dir) st.st_data;
  write_file (dblwr_path dir) st.st_dblwr;
  match Engine.create (engine_config cfg ~dir ~io_hook:None) with
  | eng ->
      let dump = Engine.dump eng in
      Engine.close ~flush:false eng;
      let records = Codec.decode st.st_wal in
      (compare_state ~label:st.st_label dump records st.st_acked, dump_to_string dump)
  | exception e ->
      ( [ Printf.sprintf "%s: recovery raised %s" st.st_label (Printexc.to_string e) ],
        "<recovery failed>" )

(* --- fault-plan hooks over the engine's IO points --- *)

let hook_of_plan (plan : Fault.plan) =
  let wal_n = ref 0 and page_n = ref 0 in
  let in_ck = ref false and ck_io = ref 0 and ck_done = ref false in
  fun (pt : Engine.io_point) ->
    (match pt with
    | Engine.Ckpt_begin ->
        if not !ck_done then begin
          in_ck := true;
          ck_io := 0
        end
    | Engine.Ckpt_end -> ()
    | Engine.Wal_write _ -> incr wal_n
    | Engine.Page_write _ -> incr page_n
    | Engine.Dblwr_write _ | Engine.Meta_write -> ());
    if !in_ck then begin
      match pt with Engine.Ckpt_begin | Engine.Ckpt_end -> () | _ -> incr ck_io
    end;
    let action = ref Engine.Proceed in
    List.iter
      (fun (inj : Fault.injection) ->
        match (inj, pt) with
        | Fault.Crash_at_flush n, Engine.Wal_write _ when !wal_n = n ->
            raise (Engine.Crashed "cf")
        | Fault.Torn_flush { nth; keep }, Engine.Wal_write _ when !wal_n = nth ->
            action := Engine.Torn keep
        | Fault.Crash_at_page_write n, Engine.Page_write _ when !page_n = n ->
            raise (Engine.Crashed "cpw")
        | Fault.Torn_page { nth; keep }, Engine.Page_write _ when !page_n = nth ->
            action := Engine.Torn keep
        | Fault.Crash_in_checkpoint n, _ when !in_ck && !ck_io = n ->
            raise (Engine.Crashed "cck")
        | Fault.Crash_in_checkpoint _, Engine.Ckpt_end when !in_ck ->
            raise (Engine.Crashed "cck-end")
        | _ -> ())
      plan.Fault.injections;
    (match pt with
    | Engine.Ckpt_end ->
        if !in_ck then begin
          in_ck := false;
          ck_done := true
        end
    | _ -> ());
    !action

(* one full driver run under a plan; on a crash, recover from the
   surviving files and check.  Returns (violations, digest): the digest
   covers the surviving byte images and the recovered dump, so two runs
   of the same (seed, plan) must produce equal digests — the bit-for-bit
   replay guarantee. *)
let run_plan cfg (plan : Fault.plan) =
  let dir = Filename.concat cfg.base_dir "inj" in
  rm_rf dir;
  let tally = fresh_tally () in
  let label = Fault.to_string plan in
  let eng = Engine.create (engine_config cfg ~dir ~io_hook:(Some (hook_of_plan plan))) in
  match drive cfg eng tally with
  | () ->
      Engine.close eng;
      let st = capture dir tally.t_acked label in
      let violations, dump_s = recover_and_check cfg st in
      let digest =
        Digest.to_hex
          (Digest.string (st.st_wal ^ "\x00" ^ st.st_data ^ "\x00" ^ st.st_dblwr ^ "\x00" ^ dump_s))
      in
      (violations, digest, false)
  | exception Engine.Crashed _ ->
      Engine.abandon eng;
      let st = capture dir tally.t_acked label in
      let violations, dump_s = recover_and_check cfg st in
      let digest =
        Digest.to_hex
          (Digest.string (st.st_wal ^ "\x00" ^ st.st_data ^ "\x00" ^ st.st_dblwr ^ "\x00" ^ dump_s))
      in
      (violations, digest, true)

(* --- plan generation: a sweep over the observed IO-event space --- *)

let sample_points total n =
  if total <= 0 then []
  else
    List.sort_uniq Int.compare
      (List.init (min n total) (fun i -> 1 + (i * total / min n total)))

let plans_of cfg ~wal_writes ~page_writes =
  let sched = Fault.none.Fault.schedule in
  let mk inj = { Fault.injections = [ inj ]; schedule = sched } in
  let plans = ref [] in
  let add p = plans := p :: !plans in
  List.iter (fun n -> add (mk (Fault.Crash_at_flush n))) (sample_points wal_writes 8);
  List.iter
    (fun n ->
      add (mk (Fault.Torn_flush { nth = n; keep = 1 }));
      add (mk (Fault.Torn_flush { nth = n; keep = 9 })))
    (sample_points wal_writes 4);
  List.iter (fun n -> add (mk (Fault.Crash_at_page_write n))) (sample_points page_writes 8);
  List.iter
    (fun n ->
      add (mk (Fault.Torn_page { nth = n; keep = 0 }));
      add (mk (Fault.Torn_page { nth = n; keep = 60 }));
      add (mk (Fault.Torn_page { nth = n; keep = cfg.page_size - 3 })))
    (sample_points page_writes 4);
  List.iter (fun n -> add (mk (Fault.Crash_in_checkpoint n))) [ 1; 2; 3; 5 ];
  let all = List.rev !plans in
  if List.length all <= cfg.max_plans then all
  else List.filteri (fun i _ -> i < cfg.max_plans) all

(* --- the full matrix --- *)

type report = {
  m_seed : int;
  m_commits : int;
  m_aborts : int;
  m_wal_records : int;
  m_states_checked : int;
  m_plans_run : int;
  m_crashes_fired : int;
  m_replay_consistent : bool;
  m_violations : (string * string) list;
}

let ok r = r.m_violations = [] && r.m_replay_consistent

let pp_report fmt r =
  Format.fprintf fmt
    "crash-matrix seed=%d: %d commits, %d aborts, %d wal records; %d states, %d plans (%d fired); replay %s; %d violations"
    r.m_seed r.m_commits r.m_aborts r.m_wal_records r.m_states_checked r.m_plans_run
    r.m_crashes_fired
    (if r.m_replay_consistent then "bit-for-bit" else "DIVERGED")
    (List.length r.m_violations);
  List.iter (fun (p, v) -> Format.fprintf fmt "@.  [%s] %s" p v) r.m_violations

let run cfg =
  mkdir_p cfg.base_dir;
  let main_dir = Filename.concat cfg.base_dir "main" in
  rm_rf main_dir;
  let tally = fresh_tally () in
  let wal_writes = ref 0 and page_writes = ref 0 in
  let counting_hook pt =
    (match pt with
    | Engine.Wal_write _ -> incr wal_writes
    | Engine.Page_write _ -> incr page_writes
    | _ -> ());
    Engine.Proceed
  in
  let eng = Engine.create (engine_config cfg ~dir:main_dir ~io_hook:(Some counting_hook)) in
  let states = ref [] and nstates = ref 0 in
  Wal.set_observer (Engine.wal eng)
    (Some
       (fun ev ->
         let label =
           match ev with
           | Wal.Appended (_, lsn) -> Printf.sprintf "append:%d" lsn
           | Wal.Flushed lsn -> Printf.sprintf "flush:%d" lsn
         in
         incr nstates;
         states := capture main_dir tally.t_acked label :: !states));
  drive cfg eng tally;
  Wal.set_observer (Engine.wal eng) None;
  let wal_records = Wal.length (Engine.wal eng) in
  Engine.close eng;
  (* the final, cleanly-closed image must recover to itself too *)
  let final_state = capture main_dir tally.t_acked "final" in
  let all_states = final_state :: List.rev !states in
  let picked =
    let n = List.length all_states in
    if n <= cfg.max_states then all_states
    else
      let stride = (n + cfg.max_states - 1) / cfg.max_states in
      List.filteri (fun i _ -> i mod stride = 0) all_states
  in
  let violations = ref [] in
  List.iter
    (fun st ->
      let v, _ = recover_and_check cfg st in
      List.iter (fun m -> violations := ("state-sweep", m) :: !violations) v)
    picked;
  (* injected fault plans, each run twice for the bit-for-bit check *)
  let plans = plans_of cfg ~wal_writes:!wal_writes ~page_writes:!page_writes in
  let replay_consistent = ref true in
  let fired = ref 0 in
  List.iter
    (fun plan ->
      let p = Fault.to_string plan in
      let v1, d1, crashed = run_plan cfg plan in
      let _, d2, _ = run_plan cfg plan in
      if crashed then incr fired;
      if d1 <> d2 then begin
        replay_consistent := false;
        violations := (p, "replay diverged: two runs of the same (seed, plan) differ") :: !violations
      end;
      List.iter (fun m -> violations := (p, m) :: !violations) v1)
    plans;
  {
    m_seed = cfg.seed;
    m_commits = tally.t_commits;
    m_aborts = tally.t_aborts;
    m_wal_records = wal_records;
    m_states_checked = List.length picked;
    m_plans_run = List.length plans;
    m_crashes_fired = !fired;
    m_replay_consistent = !replay_consistent;
    m_violations = List.rev !violations;
  }
