(** Slotted pages with checksummed printable-hex headers.

    A page is [size] bytes: a 44-byte header (checksum of everything
    past it, magic, page LSN, slot count, heap pointer), a slot
    directory growing down the front, and a record heap growing up from
    the back.  Slot indices are {e stable} — compaction moves record
    bytes but never renumbers slots, so an (oid → page, slot) directory
    entry stays valid for the record's lifetime on the page.

    The header reuses the chaos {!Tavcc_chaos.Codec} discipline: every
    integer is fixed-width hex, the checksum is the 8-hex
    FNV-1a/32 of bytes [8, size), so a torn page write is detected at
    {!of_bytes} and repaired from the double-write buffer at recovery. *)

open Tavcc_model

type t

val to_hex8 : int -> string
(** Fixed-width lowercase hex of the low 32 bits — the framing integer
    discipline shared with the chaos codec. *)

val sum8 : string -> string
(** 8-hex FNV-1a/32 checksum — the frame/page corruption detector shared
    by the engine's double-write buffer and meta page. *)

val sum8_sub : bytes -> int -> int -> string
(** [sum8_sub b pos len]: {!sum8} over a byte range, no copy. *)

val min_size : int
val header_size : int
val slot_entry : int

val create : int -> t
(** An empty page. @raise Invalid_argument below {!min_size}. *)

val size : t -> int

val lsn : t -> int
(** The page LSN: the WAL position the page's latest change is covered
    by.  The buffer pool refuses to write a page back before the WAL is
    stable past it (WAL-before-data). *)

val set_lsn : t -> int -> unit
val nslots : t -> int

val insert : t -> string -> int option
(** Places a record payload, compacting if fragmented; [None] when the
    page cannot hold it even compacted.  Returns the (stable) slot. *)

val read_slot : t -> int -> string option
val delete : t -> int -> unit

val replace : t -> int -> string -> bool
(** In-place update of a live slot, relocating within the page as
    needed; [false] when the new payload cannot fit (the caller must
    migrate the record to another page) — the slot is untouched then. *)

val iter : t -> (int -> string -> unit) -> unit
val insert_capacity : t -> int
(** Largest payload {!insert} would accept right now. *)

val compact : t -> unit

val to_bytes : t -> bytes
(** The durable image, checksum freshly stamped. *)

val of_bytes : bytes -> (t, string) result
(** Verifies length, magic, checksum and header sanity. *)

val is_zero : bytes -> bool
(** A never-written (sparse-hole) page image. *)

(** Instance record payloads: oid, class and named field values, in the
    store's slot order.  Self-describing — a page or a WAL record
    replays without the schema. *)
module Rec : sig
  type t = { r_oid : int; r_cls : string; r_slots : (string * Value.t) array }

  val encode : t -> string
  val decode : string -> t option

  val splice : string -> int -> Value.t -> string option
  (** [splice payload idx v] re-encodes [payload] with slot [idx]'s
      value replaced by [v], walking (not decoding) the prefix — the
      field-write fast path.  [None] when [idx] is out of range or the
      payload does not parse. *)
end
