(* Clock (second-chance) buffer pool.

   Not thread-safe on its own: the storage engine serialises all access
   under its mutex.  The invariants the tests hammer:

   - the pin ledger never goes negative ([unpin] on a pin-count of 0
     raises);
   - a dirty frame is never evicted without [write_back] completing
     first;
   - the clock hand always makes progress: eviction scans at most two
     full sweeps before declaring the pool exhausted (every frame
     pinned), so a lost reference bit cannot loop forever. *)

type frame = {
  mutable f_pid : int; (* -1 = empty *)
  mutable f_page : Page.t option;
  mutable f_pin : int;
  mutable f_dirty : bool;
  mutable f_ref : bool;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable write_backs : int;
}

type t = {
  frames : frame array;
  map : (int, int) Hashtbl.t; (* pid -> frame index *)
  mutable hand : int;
  load : int -> Page.t;
  write_back : int -> Page.t -> unit;
  stats : stats;
}

let create ~pages ~load ~write_back =
  if pages < 2 then invalid_arg "Buffer_pool.create: need at least 2 pages";
  {
    frames =
      Array.init pages (fun _ ->
          { f_pid = -1; f_page = None; f_pin = 0; f_dirty = false; f_ref = false });
    map = Hashtbl.create (2 * pages);
    hand = 0;
    load;
    write_back;
    stats = { hits = 0; misses = 0; evictions = 0; write_backs = 0 };
  }

let stats t = t.stats
let capacity t = Array.length t.frames

let flush_frame t f =
  match f.f_page with
  | Some page when f.f_dirty ->
      t.write_back f.f_pid page;
      t.stats.write_backs <- t.stats.write_backs + 1;
      f.f_dirty <- false
  | _ -> ()

let victim t =
  let n = Array.length t.frames in
  (* first pass: any empty frame *)
  let empty = ref (-1) in
  Array.iteri (fun i f -> if !empty < 0 && f.f_pid < 0 then empty := i) t.frames;
  if !empty >= 0 then !empty
  else begin
    let steps = ref 0 in
    let found = ref (-1) in
    while !found < 0 && !steps < 2 * n do
      let f = t.frames.(t.hand) in
      if f.f_pin = 0 then
        if f.f_ref then f.f_ref <- false else found := t.hand;
      if !found < 0 then t.hand <- (t.hand + 1) mod n;
      incr steps
    done;
    if !found < 0 then failwith "Buffer_pool: all frames pinned";
    !found
  end

let get t pid =
  match Hashtbl.find_opt t.map pid with
  | Some i ->
      let f = t.frames.(i) in
      t.stats.hits <- t.stats.hits + 1;
      f.f_pin <- f.f_pin + 1;
      f.f_ref <- true;
      (match f.f_page with Some p -> p | None -> assert false)
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      let i = victim t in
      let f = t.frames.(i) in
      if f.f_pid >= 0 then begin
        flush_frame t f;
        Hashtbl.remove t.map f.f_pid;
        t.stats.evictions <- t.stats.evictions + 1
      end;
      let page = t.load pid in
      f.f_pid <- pid;
      f.f_page <- Some page;
      f.f_pin <- 1;
      f.f_dirty <- false;
      f.f_ref <- true;
      Hashtbl.replace t.map pid i;
      t.hand <- (t.hand + 1) mod Array.length t.frames;
      page

let unpin t pid ~dirty =
  match Hashtbl.find_opt t.map pid with
  | None -> invalid_arg "Buffer_pool.unpin: page not resident"
  | Some i ->
      let f = t.frames.(i) in
      if f.f_pin <= 0 then invalid_arg "Buffer_pool.unpin: pin ledger underflow";
      f.f_pin <- f.f_pin - 1;
      if dirty then f.f_dirty <- true

let mark_dirty t pid =
  match Hashtbl.find_opt t.map pid with
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"
  | Some i -> t.frames.(i).f_dirty <- true

let flush_all t = Array.iter (fun f -> if f.f_pid >= 0 then flush_frame t f) t.frames

let pinned t =
  Array.fold_left (fun acc f -> acc + (if f.f_pid >= 0 then f.f_pin else 0)) 0 t.frames

let dirty_count t =
  Array.fold_left (fun acc f -> acc + (if f.f_pid >= 0 && f.f_dirty then 1 else 0)) 0 t.frames

let drop_all t =
  Array.iter
    (fun f ->
      f.f_pid <- -1;
      f.f_page <- None;
      f.f_pin <- 0;
      f.f_dirty <- false;
      f.f_ref <- false)
    t.frames;
  Hashtbl.reset t.map
