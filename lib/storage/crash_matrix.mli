(** The page-level crash matrix: every WAL boundary, every torn tail,
    every torn page, against a committed-prefix oracle.

    A matrix run drives a deterministic serial workload (inserts,
    variable-length updates, deletes, aborts, fuzzy checkpoints) through
    a deliberately tiny buffer pool, then checks recovery three ways:

    - {b state sweep}: a {!Tavcc_recovery.Wal} observer snapshots the
      three on-disk files at {e every} append and flush boundary; each
      snapshot is recovered in a scratch directory and compared against
      the committed-prefix oracle (plus the final cleanly-closed image);
    - {b injected plans}: a sweep of {!Tavcc_chaos.Fault} disk-layer
      injections — [cf:n]/[torn:n:k] on WAL forces, [cpw:n]/[tpg:n:k] on
      page write-backs, [cck:n] inside a fuzzy checkpoint — each of
      which kills the engine mid-IO via its [io_hook]; the surviving
      files are recovered and checked;
    - {b bit-for-bit replay}: every (seed, plan) pair runs twice and the
      digests of (surviving bytes, recovered state) must be equal.

    The oracle: the driver is serial, so a correct recovery equals
    replaying, in log order, the operations of transaction 0 and of
    every transaction whose [Commit] survives in the log prefix —
    aborted and loser transactions vanish entirely.  On top of that,
    every commit the driver saw acknowledged must still be in the
    surviving log (the WAL-force durability guarantee). *)

type config = {
  seed : int;
  txns : int;
  objs : int;  (** instances populated before the first checkpoint *)
  ops_per_txn : int;
  page_size : int;
  pool_pages : int;  (** keep tiny so evictions happen constantly *)
  base_dir : string;  (** scratch directory (created; reused freely) *)
  max_states : int;  (** cap on state-sweep snapshots recovered *)
  max_plans : int;  (** cap on injected plans *)
}

val default : ?dir:string -> seed:int -> unit -> config
(** 24 txns over 96 objects, 512-byte pages, a 4-frame pool. *)

type report = {
  m_seed : int;
  m_commits : int;
  m_aborts : int;
  m_wal_records : int;
  m_states_checked : int;
  m_plans_run : int;
  m_crashes_fired : int;  (** plans whose injection actually triggered *)
  m_replay_consistent : bool;
  m_violations : (string * string) list;  (** (plan or "state-sweep", message) *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val oracle :
  Tavcc_recovery.Wal.record list -> (int * string * (string * Tavcc_model.Value.t) list) list
(** The committed-prefix replay over an empty initial state: the exact
    logical store ([Engine.dump] shape, sorted by oid) that recovering
    from this log prefix must produce — for serial histories.  Exposed so
    [test_recovery] can check the on-disk engine against the same truth
    the in-memory restart property uses. *)

val run : config -> report

val run_plan : config -> Tavcc_chaos.Fault.plan -> string list * string * bool
(** One driver run under the plan: (violations, replay digest, whether
    the injection fired).  The replay entry point for a counterexample's
    plan string via {!Tavcc_chaos.Fault.of_string}. *)

val hook_of_plan : Tavcc_chaos.Fault.plan -> Engine.io_point -> Engine.io_action
(** The engine [io_hook] implementing the plan's disk-layer injections
    (WAL/page ordinals, checkpoint-interior IO counting). *)
