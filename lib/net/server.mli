(** The oosim network front-end: an accept loop multiplexing client
    sessions onto the {!Tavcc_par.Par_engine} worker domains.

    Thread/domain layout: one accept thread, one systhread per client
    session (blocking socket I/O releases the runtime lock, so sessions
    overlap), and the engine's worker domains behind the submission
    queue.  A session's [Run] jobs are submitted to the bounded queue —
    the completion callback writes the {!Wire.Reply} from the worker
    domain that committed the job, which is what lets one session keep
    many pipelined requests in flight.  Interactive
    [Begin]/[Stmt]/[Commit] transactions run statement-at-a-time on the
    session thread itself against the same lock table.

    Backpressure: a [Run] that finds the queue at capacity is answered
    [Rejected] immediately ([net.rejected] counts them) — the server
    sheds load instead of buffering without bound.

    Teardown guarantee: a session that drops mid-transaction (EOF, reset,
    corrupt frame) has its open interactive transaction rolled back
    before the session closes — its locks release and any queued waiters
    wake, so a dying client cannot strand the lock manager.

    Drain: {!request_stop} (async-signal-safe — an atomic flag) makes the
    accept loop stop accepting; {!wait} then closes the listener, nudges
    idle sessions with [Bye], waits for in-flight work, stops the engine
    and returns the aggregate {!Tavcc_par.Par_engine.result}. *)

open Tavcc_lang
open Tavcc_cc

type config = {
  addr : Wire.addr;
  scheme : Scheme.t;
  store : Ast.body Tavcc_model.Store.t;
  digest : string;  (** workload digest clients must present ("" = don't care) *)
  banner : string;
  engine : Tavcc_par.Par_engine.config;
  queue_capacity : int;
  max_sessions : int;  (** beyond it new connections get [Err] + close; [net.refused] counts *)
  drain_grace_s : float;  (** per-session wait for in-flight replies at teardown *)
  session_series_cap : int;
      (** per-session labelled metric series are created for at most this
          many distinct clients (label cardinality guard) *)
}

val default_config :
  addr:Wire.addr -> scheme:Scheme.t -> store:Ast.body Tavcc_model.Store.t -> config
(** Engine defaults from {!Tavcc_par.Par_engine.default_config}, queue
    capacity 256, 64 sessions, 5 s drain grace, 16 session series, no
    digest pinning. *)

type t

val start : config -> t
(** Binds and starts accepting.  A stale unix-socket path is unlinked
    first; TCP listeners set [SO_REUSEADDR].
    @raise Unix.Unix_error when the bind itself fails. *)

val bound_addr : t -> Wire.addr
(** The actual address — resolves port 0 to the kernel-assigned port. *)

val request_stop : t -> unit
(** Stop accepting and begin the drain.  Safe from a signal handler. *)

val wait : t -> Tavcc_par.Par_engine.result
(** Join everything and return the engine's aggregate result.  Blocks
    until {!request_stop} is called (by a signal handler or another
    thread). *)

val session_count : t -> int
