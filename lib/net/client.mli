(** Blocking client for the oosim wire protocol.

    One connection, one thread: {!call} is the synchronous
    request/response helper, {!send}/{!recv} the split pair for
    pipelining ([Run] replies may arrive out of request order — match on
    the echoed [rq]). *)

open Tavcc_cc

type t

val connect :
  ?digest:string ->
  ?client:string ->
  ?recv_timeout_s:float ->
  addr:Wire.addr ->
  unit ->
  (t * [ `Welcome of string * string ], string) result
(** Dials, performs the Hello/Welcome handshake, and returns the
    server's scheme name and banner.  [recv_timeout_s] arms
    [SO_RCVTIMEO] — a read past it fails instead of hanging (tests). *)

val send : t -> Wire.req -> (unit, string) result

val recv : t -> (Wire.resp, string) result
(** Blocks for the next response frame. *)

val call : t -> Wire.req -> (Wire.resp, string) result
(** [send] then [recv]; only correct when nothing else is in flight. *)

val run : t -> rq:int -> Exec.action list -> (unit, string) result
(** [send (Run _)] — pair with {!recv} for pipelining. *)

val quit : t -> unit
(** Best-effort [Quit], then close. *)

val close : t -> unit
(** Abrupt close, no goodbye — what a crashing client looks like to the
    server. *)
