open Tavcc_lang
open Tavcc_cc
module Par_engine = Tavcc_par.Par_engine
module Metrics = Tavcc_obs.Metrics

type config = {
  addr : Wire.addr;
  scheme : Scheme.t;
  store : Ast.body Tavcc_model.Store.t;
  digest : string;
  banner : string;
  engine : Par_engine.config;
  queue_capacity : int;
  max_sessions : int;
  drain_grace_s : float;
  session_series_cap : int;
}

let default_config ~addr ~scheme ~store =
  {
    addr;
    scheme;
    store;
    digest = "";
    banner = "tavcc oosim";
    engine = Par_engine.default_config;
    queue_capacity = 256;
    max_sessions = 64;
    drain_grace_s = 5.0;
    session_series_cap = 16;
  }

(* Server-side registry handles; None when the engine config carries no
   metrics registry. *)
type net_metrics = {
  nm_registry : Metrics.t;
  nm_connects : Metrics.counter;
  nm_sessions : Metrics.gauge;
  nm_requests : Metrics.counter;
  nm_interactive : Metrics.counter;
  nm_rejected : Metrics.counter;
  nm_refused : Metrics.counter;
  nm_protocol_errors : Metrics.counter;
  nm_replies : Metrics.counter;
  nm_req_us : Metrics.histogram;
}

type session = {
  ss_id : int;
  ss_fd : Unix.file_descr;
  ss_io : Wire.Io.t;
  ss_wmu : Mutex.t;  (** guards the write side, [ss_alive] and [ss_outstanding] *)
  mutable ss_alive : bool;
  mutable ss_outstanding : int;  (** submitted Run jobs whose Reply is pending *)
  mutable ss_itxn : Par_engine.itxn option;
  mutable ss_client : string;
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  bound : Wire.addr;
  svc : Par_engine.service;
  nm : net_metrics option;
  stop : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  smu : Mutex.t;
  mutable sessions : (session * Thread.t) list;
  next_session : int Atomic.t;
  series_mu : Mutex.t;
  series_seen : (string, unit) Hashtbl.t;
}

let tick t f = match t.nm with None -> () | Some nm -> f nm

(* --- per-session write side ------------------------------------------- *)

let send ss resp =
  Mutex.lock ss.ss_wmu;
  (if ss.ss_alive then
     match Wire.Io.write ss.ss_io (Wire.encode_resp resp) with
     | Ok () -> ()
     | Error _ -> ss.ss_alive <- false);
  Mutex.unlock ss.ss_wmu

let session_series t ss name =
  (* label-cardinality guard: only the first [session_series_cap]
     distinct client names get their own series *)
  match t.nm with
  | None -> None
  | Some nm ->
      Mutex.lock t.series_mu;
      let admit =
        Hashtbl.mem t.series_seen ss.ss_client
        || Hashtbl.length t.series_seen < t.cfg.session_series_cap
      in
      if admit then Hashtbl.replace t.series_seen ss.ss_client ();
      Mutex.unlock t.series_mu;
      if admit then
        Some (Metrics.counter nm.nm_registry (Metrics.labelled name [ ("client", ss.ss_client) ]))
      else None

(* --- request dispatch -------------------------------------------------- *)

let status_of_job = function
  | Par_engine.Job_committed { restarts } -> Wire.Committed { restarts }
  | Par_engine.Job_failed msg -> Wire.Failed msg

let handle_run t ss ~session_requests ~rq ~actions =
  tick t (fun nm -> Metrics.incr nm.nm_requests);
  Option.iter Metrics.incr session_requests;
  let t0 = Unix.gettimeofday () in
  Mutex.lock ss.ss_wmu;
  ss.ss_outstanding <- ss.ss_outstanding + 1;
  Mutex.unlock ss.ss_wmu;
  let finish status =
    let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    tick t (fun nm ->
        Metrics.observe nm.nm_req_us latency_us;
        Metrics.incr nm.nm_replies);
    send ss (Wire.Reply { rq; status; latency_us });
    Mutex.lock ss.ss_wmu;
    ss.ss_outstanding <- ss.ss_outstanding - 1;
    Mutex.unlock ss.ss_wmu
  in
  match Par_engine.submit t.svc ~actions ~k:(fun st -> finish (status_of_job st)) with
  | Par_engine.Accepted -> ()
  | Par_engine.Saturated ->
      tick t (fun nm -> Metrics.incr nm.nm_rejected);
      finish Wire.Rejected
  | Par_engine.Closed ->
      tick t (fun nm -> Metrics.incr nm.nm_rejected);
      finish (Wire.Failed "server is draining")

let handle_interactive t ss ~rq req =
  tick t (fun nm -> Metrics.incr nm.nm_interactive);
  let t0 = Unix.gettimeofday () in
  let reply status =
    let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    tick t (fun nm ->
        Metrics.observe nm.nm_req_us latency_us;
        Metrics.incr nm.nm_replies);
    send ss (Wire.Reply { rq; status; latency_us })
  in
  match (req, ss.ss_itxn) with
  | `Begin, Some _ -> reply (Wire.Failed "transaction already open")
  | `Begin, None -> (
      match Par_engine.itxn_begin t.svc with
      | Ok it ->
          ss.ss_itxn <- Some it;
          reply Wire.Done
      | Error msg -> reply (Wire.Failed msg))
  | (`Stmt _ | `Commit | `Rollback), None -> reply (Wire.Failed "no open transaction")
  | `Stmt action, Some it -> (
      match Par_engine.itxn_perform it action with
      | Ok () -> reply Wire.Done
      | Error msg ->
          ss.ss_itxn <- None;
          reply (Wire.Aborted msg))
  | `Commit, Some it -> (
      ss.ss_itxn <- None;
      match Par_engine.itxn_commit it with
      | Ok () -> reply (Wire.Committed { restarts = 0 })
      | Error msg -> reply (Wire.Aborted msg))
  | `Rollback, Some it ->
      ss.ss_itxn <- None;
      Par_engine.itxn_rollback it;
      reply Wire.Done

(* --- session lifecycle ------------------------------------------------- *)

let protocol_error t ss msg =
  tick t (fun nm -> Metrics.incr nm.nm_protocol_errors);
  send ss (Wire.Err msg)

let handshake t ss =
  match Wire.Io.read_frame ss.ss_io with
  | Error `Eof -> false
  | Error (`Corrupt msg) ->
      protocol_error t ss ("bad frame: " ^ msg);
      false
  | Ok payload -> (
      match Wire.decode_req payload with
      | Error msg ->
          protocol_error t ss ("bad request: " ^ msg);
          false
      | Ok (Wire.Hello { version; digest; client }) ->
          if version <> Wire.protocol_version then begin
            protocol_error t ss
              (Printf.sprintf "protocol version mismatch: server %d, client %d"
                 Wire.protocol_version version);
            false
          end
          else if t.cfg.digest <> "" && digest <> "" && digest <> t.cfg.digest then begin
            protocol_error t ss "workload digest mismatch";
            false
          end
          else begin
            ss.ss_client <- (if client = "" then Printf.sprintf "session-%d" ss.ss_id else client);
            send ss
              (Wire.Welcome
                 {
                   version = Wire.protocol_version;
                   scheme = t.cfg.scheme.Scheme.name;
                   digest = t.cfg.digest;
                   banner = t.cfg.banner;
                 });
            ss.ss_alive
          end
      | Ok _ ->
          protocol_error t ss "expected Hello";
          false)

let session_loop t ss =
  let session_requests = session_series t ss "net.session.requests" in
  let rec loop () =
    match Wire.Io.read_frame ss.ss_io with
    | Error `Eof -> ()
    | Error (`Corrupt msg) -> protocol_error t ss ("bad frame: " ^ msg)
    | Ok payload -> (
        match Wire.decode_req payload with
        | Error msg -> protocol_error t ss ("bad request: " ^ msg)
        | Ok req -> (
            match req with
            | Wire.Hello _ -> protocol_error t ss "unexpected Hello"
            | Wire.Run { rq; actions } ->
                handle_run t ss ~session_requests ~rq ~actions;
                loop ()
            | Wire.Begin { rq } ->
                handle_interactive t ss ~rq `Begin;
                loop ()
            | Wire.Stmt { rq; action } ->
                handle_interactive t ss ~rq (`Stmt action);
                loop ()
            | Wire.Commit { rq } ->
                handle_interactive t ss ~rq `Commit;
                loop ()
            | Wire.Rollback { rq } ->
                handle_interactive t ss ~rq `Rollback;
                loop ()
            | Wire.Ping { rq } ->
                send ss (Wire.Pong { rq });
                loop ()
            | Wire.Quit -> send ss Wire.Bye))
  in
  loop ()

let session_teardown t ss =
  (* the teardown guarantee: a dropped connection must not strand its
     transaction's locks — waiters behind it would hang forever *)
  (match ss.ss_itxn with
  | Some it ->
      ss.ss_itxn <- None;
      Par_engine.itxn_rollback it
  | None -> ());
  (* give in-flight Run replies their [drain_grace_s] to land; worker
     callbacks still write to this socket until outstanding hits 0 *)
  let deadline = Unix.gettimeofday () +. t.cfg.drain_grace_s in
  let rec wait_replies () =
    Mutex.lock ss.ss_wmu;
    let n = ss.ss_outstanding in
    Mutex.unlock ss.ss_wmu;
    if n > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.002;
      wait_replies ()
    end
  in
  wait_replies ();
  Mutex.lock ss.ss_wmu;
  ss.ss_alive <- false;
  Mutex.unlock ss.ss_wmu;
  (try Unix.close ss.ss_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.smu;
  t.sessions <- List.filter (fun (s, _) -> s.ss_id <> ss.ss_id) t.sessions;
  let n = List.length t.sessions in
  Mutex.unlock t.smu;
  tick t (fun nm -> Metrics.set nm.nm_sessions n)

let session_main t ss () =
  (try if handshake t ss then session_loop t ss with _ -> ());
  session_teardown t ss

(* --- accept loop -------------------------------------------------------- *)

let accept_one t fd =
  tick t (fun nm -> Metrics.incr nm.nm_connects);
  Mutex.lock t.smu;
  let n = List.length t.sessions in
  Mutex.unlock t.smu;
  if n >= t.cfg.max_sessions then begin
    tick t (fun nm -> Metrics.incr nm.nm_refused);
    let io = Wire.Io.of_fd fd in
    ignore (Wire.Io.write io (Wire.encode_resp (Wire.Err "server full")));
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    let ss =
      {
        ss_id = Atomic.fetch_and_add t.next_session 1;
        ss_fd = fd;
        ss_io = Wire.Io.of_fd fd;
        ss_wmu = Mutex.create ();
        ss_alive = true;
        ss_outstanding = 0;
        ss_itxn = None;
        ss_client = "";
      }
    in
    Mutex.lock t.smu;
    let th = Thread.create (session_main t ss) () in
    t.sessions <- (ss, th) :: t.sessions;
    let n = List.length t.sessions in
    Mutex.unlock t.smu;
    tick t (fun nm -> Metrics.set nm.nm_sessions n)
  end

let accept_loop t () =
  let rec go () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.lfd ] [] [] 0.25 with
      | [ _ ], _, _ -> (
          if not (Atomic.get t.stop) then
            match Unix.accept t.lfd with
            | fd, _ -> accept_one t fd
            | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* --- lifecycle ---------------------------------------------------------- *)

let start cfg =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain, saddr =
    match cfg.addr with
    | Wire.Unix_sock path ->
        (try if Sys.file_exists path then Unix.unlink path with Sys_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Wire.Tcp _ -> (Unix.PF_INET, Wire.sockaddr_of_addr cfg.addr)
  in
  let lfd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | Wire.Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
  | Wire.Unix_sock _ -> ());
  Unix.bind lfd saddr;
  Unix.listen lfd 64;
  let bound =
    match (cfg.addr, Unix.getsockname lfd) with
    | Wire.Tcp (host, 0), Unix.ADDR_INET (_, port) -> Wire.Tcp (host, port)
    | addr, _ -> addr
  in
  let nm =
    Option.map
      (fun m ->
        {
          nm_registry = m;
          nm_connects = Metrics.counter m "net.connects";
          nm_sessions = Metrics.gauge m "net.sessions";
          nm_requests = Metrics.counter m "net.requests";
          nm_interactive = Metrics.counter m "net.interactive";
          nm_rejected = Metrics.counter m "net.rejected";
          nm_refused = Metrics.counter m "net.refused";
          nm_protocol_errors = Metrics.counter m "net.protocol_errors";
          nm_replies = Metrics.counter m "net.replies";
          nm_req_us = Metrics.histogram m "net.req_us";
        })
      cfg.engine.Par_engine.metrics
  in
  let svc =
    Par_engine.service_start ~config:cfg.engine ~queue_capacity:cfg.queue_capacity
      ~scheme:cfg.scheme ~store:cfg.store ()
  in
  let t =
    {
      cfg;
      lfd;
      bound;
      svc;
      nm;
      stop = Atomic.make false;
      accept_thread = None;
      smu = Mutex.create ();
      sessions = [];
      next_session = Atomic.make 1;
      series_mu = Mutex.create ();
      series_seen = Hashtbl.create 8;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let bound_addr t = t.bound
let request_stop t = Atomic.set t.stop true

let session_count t =
  Mutex.lock t.smu;
  let n = List.length t.sessions in
  Mutex.unlock t.smu;
  n

let wait t =
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
  | Wire.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Wire.Tcp _ -> ());
  (* nudge sessions parked in a blocking read: a receive shutdown reads
     as EOF, which routes each one through its own teardown (rollback,
     reply drain, close) *)
  Mutex.lock t.smu;
  let live = t.sessions in
  Mutex.unlock t.smu;
  List.iter
    (fun (ss, _) ->
      send ss Wire.Bye;
      try Unix.shutdown ss.ss_fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    live;
  List.iter (fun (_, th) -> Thread.join th) live;
  Par_engine.service_drain t.svc;
  Par_engine.service_stop t.svc
