(** The oosim wire protocol.

    Same framing discipline as the chaos WAL codec ({!Tavcc_chaos.Codec}):
    every message travels as

    {v <8 hex: payload length> <8 hex: md5 prefix of payload> <payload> v}

    so a reader can always tell "not yet enough bytes" ({!Incomplete})
    from "bytes are wrong" ({!Corrupt}) — the length is validated before
    the checksum, the checksum before the payload is parsed, and the
    payload parser itself never raises.  Payload tokens reuse the codec's
    conventions: ints are decimal with a trailing [','], strings are
    length-prefixed, floats are the 16 hex digits of their IEEE bits.

    A connection starts with client {!Hello} / server {!Welcome} (version
    and workload-digest agreement), then the client issues any mix of
    one-shot {!Run} jobs (batched transactions, executed on the worker
    domains) and interactive {!Begin}/{!Stmt}/{!Commit}/{!Rollback}
    sequences (executed statement-at-a-time on the session thread).
    Requests carry a client-chosen [rq] echoed in the {!Reply}, which is
    what makes pipelining work: replies to [Run] jobs may arrive out of
    order. *)

open Tavcc_cc

val protocol_version : int

val max_payload : int
(** Frames advertising more than this many payload bytes (1 MiB) are
    rejected as corrupt — a garbage length must not stall the reader
    waiting for gigabytes that will never come. *)

(** {1 Messages} *)

type req =
  | Hello of { version : int; digest : string; client : string }
      (** [digest] identifies the workload schema the client generates
          jobs against; the server refuses a mismatch (oids would not
          resolve).  Empty string skips the check. *)
  | Run of { rq : int; actions : Exec.action list }
  | Begin of { rq : int }
  | Stmt of { rq : int; action : Exec.action }
  | Commit of { rq : int }
  | Rollback of { rq : int }
  | Ping of { rq : int }
  | Quit

type status =
  | Committed of { restarts : int }
  | Aborted of string  (** interactive abort; the client may retry *)
  | Rejected  (** admission control: submission queue at capacity *)
  | Failed of string
  | Done  (** ack for Begin / Stmt / Rollback *)

type resp =
  | Welcome of { version : int; scheme : string; digest : string; banner : string }
  | Reply of { rq : int; status : status; latency_us : int }
  | Pong of { rq : int }
  | Err of string  (** protocol-level failure; the server closes after *)
  | Bye

(** {1 Payload codecs}

    Total: [decode_*] never raises, and accepts exactly the strings
    [encode_*] produces (trailing garbage is an error — a frame is one
    message). *)

val encode_req : req -> string
val decode_req : string -> (req, string) result
val encode_resp : resp -> string
val decode_resp : string -> (resp, string) result

val pp_req : Format.formatter -> req -> unit
val pp_resp : Format.formatter -> resp -> unit

(** {1 Framing} *)

val frame : string -> string
(** Length + checksum + payload. *)

val unframe : string -> pos:int -> [ `Frame of string * int | `Incomplete | `Corrupt of string ]
(** [unframe buf ~pos] inspects the bytes from [pos]: [`Frame (payload,
    next_pos)] on a whole valid frame, [`Incomplete] when more bytes may
    complete it, [`Corrupt] when no continuation can (bad hex, oversized
    length, checksum mismatch). *)

(** {1 Addresses} *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:/path/sock"] or ["tcp:host:port"]. *)

val addr_to_string : addr -> string
val sockaddr_of_addr : addr -> Unix.sockaddr

(** {1 Blocking frame I/O} *)

module Io : sig
  type t

  val of_fd : Unix.file_descr -> t

  val read_frame : t -> (string, [ `Eof | `Corrupt of string ]) result
  (** Blocks for one whole frame.  A clean EOF at a frame boundary is
      [`Eof]; EOF mid-frame is [`Corrupt "truncated frame"]; a reset
      connection reads as [`Eof]. *)

  val write : t -> string -> (unit, string) result
  (** Frames the payload and writes it whole. *)

  val fd : t -> Unix.file_descr
end

(** {1 Workload digest}

    [Tavcc_sim.Workload.populate] is deterministic: same schema, same
    [per_class], same oids.  The digest pins those inputs so a blast
    client can generate jobs locally that are valid on the server. *)

val workload_digest :
  slices:int -> work:int -> readers:int -> instances:int -> string
