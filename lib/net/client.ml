type t = { fd : Unix.file_descr; io : Wire.Io.t; mutable open_ : bool }

let send t req =
  if not t.open_ then Error "connection closed"
  else Wire.Io.write t.io (Wire.encode_req req)

let recv t =
  if not t.open_ then Error "connection closed"
  else
    match Wire.Io.read_frame t.io with
    | Ok payload -> Wire.decode_resp payload
    | Error `Eof -> Error "connection closed by server"
    | Error (`Corrupt msg) -> Error ("corrupt frame: " ^ msg)

let call t req = match send t req with Ok () -> recv t | Error _ as e -> e

let connect ?(digest = "") ?(client = "") ?recv_timeout_s ~addr () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain =
    match addr with Wire.Unix_sock _ -> Unix.PF_UNIX | Wire.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    Option.iter (fun s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s) recv_timeout_s;
    Unix.connect fd (Wire.sockaddr_of_addr addr)
  with
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printexc.to_string e)
  | () -> (
      let t = { fd; io = Wire.Io.of_fd fd; open_ = true } in
      let fail msg =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.open_ <- false;
        Error msg
      in
      match
        call t (Wire.Hello { version = Wire.protocol_version; digest; client })
      with
      | Ok (Wire.Welcome { scheme; banner; _ }) -> Ok (t, `Welcome (scheme, banner))
      | Ok (Wire.Err msg) -> fail ("server refused: " ^ msg)
      | Ok _ -> fail "unexpected handshake response"
      | Error msg -> fail msg)

let run t ~rq actions = send t (Wire.Run { rq; actions })

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let quit t =
  if t.open_ then begin
    ignore (send t Wire.Quit);
    (* wait briefly for Bye so the server logs a clean goodbye *)
    (match recv t with Ok _ | Error _ -> ());
    close t
  end
