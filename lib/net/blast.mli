(** Closed-loop load generator for the oosim server.

    Each of [clients] OCaml domains dials its own connection and keeps at
    most [pipeline] [Run] requests in flight, matching replies by [rq],
    until it has pushed [requests] of them through.  Per-request latency
    is recorded exactly (send-to-reply on the client's clock), so the
    percentiles in the report are exact order statistics over every
    request, not bucket interpolations. *)

open Tavcc_cc

type config = {
  addr : Wire.addr;
  clients : int;
  requests : int;  (** per client *)
  pipeline : int;  (** max in-flight requests per connection *)
  digest : string;
  client_name : string;  (** label prefix; client [i] presents "<name>-<i>" *)
  jobs : int -> Exec.action list array;
      (** [jobs i] is client [i]'s request bodies, [requests] of them *)
}

type report = {
  clients : int;
  requests : int;  (** total sent across clients *)
  committed : int;
  restarts : int;  (** automatic engine-side retries behind the commits *)
  aborted : int;
  rejected : int;
  failed : int;
  protocol_errors : int;
      (** corrupt frames, unexpected responses, refused handshakes *)
  wall_s : float;
  throughput : float;  (** committed requests per second *)
  lat_min_us : int;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p90_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  lat_max_us : int;
}

val run : config -> report
val report_to_json : report -> Tavcc_obs.Json.t
val pp_report : Format.formatter -> report -> unit
