open Tavcc_model
open Tavcc_cc

let protocol_version = 1
let max_payload = 1 lsl 20

type req =
  | Hello of { version : int; digest : string; client : string }
  | Run of { rq : int; actions : Exec.action list }
  | Begin of { rq : int }
  | Stmt of { rq : int; action : Exec.action }
  | Commit of { rq : int }
  | Rollback of { rq : int }
  | Ping of { rq : int }
  | Quit

type status =
  | Committed of { restarts : int }
  | Aborted of string
  | Rejected
  | Failed of string
  | Done

type resp =
  | Welcome of { version : int; scheme : string; digest : string; banner : string }
  | Reply of { rq : int; status : status; latency_us : int }
  | Pong of { rq : int }
  | Err of string
  | Bye

(* --- payload encoding: the chaos-codec token conventions --- *)

let enc_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ','

let enc_str b s =
  enc_int b (String.length s);
  Buffer.add_string b s

let enc_value b = function
  | Value.Vint n ->
      Buffer.add_char b 'i';
      enc_int b n
  | Value.Vbool v -> Buffer.add_string b (if v then "b1" else "b0")
  | Value.Vstring s ->
      Buffer.add_char b 's';
      enc_str b s
  | Value.Vfloat f ->
      Buffer.add_char b 'f';
      Buffer.add_string b (Printf.sprintf "%016Lx" (Int64.bits_of_float f))
  | Value.Vref oid ->
      Buffer.add_char b 'r';
      enc_int b (Oid.to_int oid)
  | Value.Vnull -> Buffer.add_char b 'n'

let enc_values b vs =
  enc_int b (List.length vs);
  List.iter (enc_value b) vs

let enc_bool b v = Buffer.add_char b (if v then '1' else '0')

let enc_opt_int b = function
  | None -> Buffer.add_char b 'n'
  | Some n ->
      Buffer.add_char b 'v';
      enc_int b n

let enc_action b = function
  | Exec.Call (oid, m, args) ->
      Buffer.add_char b 'c';
      enc_int b (Oid.to_int oid);
      enc_str b (Name.Method.to_string m);
      enc_values b args
  | Exec.Call_some { root; targets; meth; args } ->
      Buffer.add_char b 'm';
      enc_str b (Name.Class.to_string root);
      enc_int b (List.length targets);
      List.iter (fun o -> enc_int b (Oid.to_int o)) targets;
      enc_str b (Name.Method.to_string meth);
      enc_values b args
  | Exec.Call_extent { cls; deep; meth; args } ->
      Buffer.add_char b 'e';
      enc_str b (Name.Class.to_string cls);
      enc_bool b deep;
      enc_str b (Name.Method.to_string meth);
      enc_values b args
  | Exec.Call_range { cls; deep; pred; meth; args } ->
      Buffer.add_char b 'g';
      enc_str b (Name.Class.to_string cls);
      enc_bool b deep;
      enc_str b (Name.Field.to_string pred.Tavcc_lock.Pred.field);
      enc_opt_int b pred.Tavcc_lock.Pred.lo;
      enc_opt_int b pred.Tavcc_lock.Pred.hi;
      enc_str b (Name.Method.to_string meth);
      enc_values b args

let enc_actions b acts =
  enc_int b (List.length acts);
  List.iter (enc_action b) acts

let encode_req r =
  let b = Buffer.create 64 in
  (match r with
  | Hello { version; digest; client } ->
      Buffer.add_char b 'H';
      enc_int b version;
      enc_str b digest;
      enc_str b client
  | Run { rq; actions } ->
      Buffer.add_char b 'T';
      enc_int b rq;
      enc_actions b actions
  | Begin { rq } ->
      Buffer.add_char b 'B';
      enc_int b rq
  | Stmt { rq; action } ->
      Buffer.add_char b 'S';
      enc_int b rq;
      enc_action b action
  | Commit { rq } ->
      Buffer.add_char b 'C';
      enc_int b rq
  | Rollback { rq } ->
      Buffer.add_char b 'A';
      enc_int b rq
  | Ping { rq } ->
      Buffer.add_char b 'P';
      enc_int b rq
  | Quit -> Buffer.add_char b 'Q');
  Buffer.contents b

let encode_status b = function
  | Committed { restarts } ->
      Buffer.add_char b 'c';
      enc_int b restarts
  | Aborted msg ->
      Buffer.add_char b 'a';
      enc_str b msg
  | Rejected -> Buffer.add_char b 'j'
  | Failed msg ->
      Buffer.add_char b 'f';
      enc_str b msg
  | Done -> Buffer.add_char b 'd'

let encode_resp r =
  let b = Buffer.create 64 in
  (match r with
  | Welcome { version; scheme; digest; banner } ->
      Buffer.add_char b 'W';
      enc_int b version;
      enc_str b scheme;
      enc_str b digest;
      enc_str b banner
  | Reply { rq; status; latency_us } ->
      Buffer.add_char b 'R';
      enc_int b rq;
      enc_int b latency_us;
      encode_status b status
  | Pong { rq } ->
      Buffer.add_char b 'O';
      enc_int b rq
  | Err msg ->
      Buffer.add_char b 'E';
      enc_str b msg
  | Bye -> Buffer.add_char b 'Y');
  Buffer.contents b

(* --- payload decoding: total, longest-error-message-wins --- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let take c n =
  if n < 0 || c.pos + n > String.length c.s then raise (Bad "short payload");
  let r = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  r

let dec_char c = (take c 1).[0]

let dec_int c =
  let start = c.pos in
  let rec find i =
    if i >= String.length c.s then raise (Bad "unterminated int")
    else if c.s.[i] = ',' then i
    else find (i + 1)
  in
  let stop = find start in
  c.pos <- stop + 1;
  match int_of_string_opt (String.sub c.s start (stop - start)) with
  | Some n -> n
  | None -> raise (Bad "malformed int")

let dec_str c = take c (dec_int c)

let dec_value c =
  match dec_char c with
  | 'i' -> Value.Vint (dec_int c)
  | 'b' -> (
      match dec_char c with
      | '0' -> Value.Vbool false
      | '1' -> Value.Vbool true
      | _ -> raise (Bad "bad bool"))
  | 's' -> Value.Vstring (dec_str c)
  | 'f' -> (
      let hex = take c 16 in
      match Int64.of_string_opt ("0x" ^ hex) with
      | Some bits -> Value.Vfloat (Int64.float_of_bits bits)
      | None -> raise (Bad "bad float bits"))
  | 'r' -> Value.Vref (Oid.of_int (dec_int c))
  | 'n' -> Value.Vnull
  | _ -> raise (Bad "bad value tag")

let dec_list c dec =
  let n = dec_int c in
  if n < 0 || n > max_payload then raise (Bad "bad list length");
  List.init n (fun _ -> dec c)

let dec_values c = dec_list c dec_value

let dec_bool c =
  match dec_char c with
  | '0' -> false
  | '1' -> true
  | _ -> raise (Bad "bad bool flag")

let dec_opt_int c =
  match dec_char c with
  | 'n' -> None
  | 'v' -> Some (dec_int c)
  | _ -> raise (Bad "bad option tag")

let dec_action c =
  match dec_char c with
  | 'c' ->
      let oid = Oid.of_int (dec_int c) in
      let m = Name.Method.of_string (dec_str c) in
      Exec.Call (oid, m, dec_values c)
  | 'm' ->
      let root = Name.Class.of_string (dec_str c) in
      let targets = dec_list c (fun c -> Oid.of_int (dec_int c)) in
      let meth = Name.Method.of_string (dec_str c) in
      Exec.Call_some { root; targets; meth; args = dec_values c }
  | 'e' ->
      let cls = Name.Class.of_string (dec_str c) in
      let deep = dec_bool c in
      let meth = Name.Method.of_string (dec_str c) in
      Exec.Call_extent { cls; deep; meth; args = dec_values c }
  | 'g' ->
      let cls = Name.Class.of_string (dec_str c) in
      let deep = dec_bool c in
      let field = Name.Field.of_string (dec_str c) in
      let lo = dec_opt_int c in
      let hi = dec_opt_int c in
      let meth = Name.Method.of_string (dec_str c) in
      Exec.Call_range
        { cls; deep; pred = { Tavcc_lock.Pred.field; lo; hi }; meth; args = dec_values c }
  | _ -> raise (Bad "bad action tag")

let dec_actions c = dec_list c dec_action

let finish c v =
  if c.pos <> String.length c.s then raise (Bad "trailing bytes");
  v

let decode_req s =
  let c = { s; pos = 0 } in
  match
    finish c
      (match dec_char c with
      | 'H' ->
          let version = dec_int c in
          let digest = dec_str c in
          Hello { version; digest; client = dec_str c }
      | 'T' ->
          let rq = dec_int c in
          Run { rq; actions = dec_actions c }
      | 'B' -> Begin { rq = dec_int c }
      | 'S' ->
          let rq = dec_int c in
          Stmt { rq; action = dec_action c }
      | 'C' -> Commit { rq = dec_int c }
      | 'A' -> Rollback { rq = dec_int c }
      | 'P' -> Ping { rq = dec_int c }
      | 'Q' -> Quit
      | _ -> raise (Bad "bad request tag"))
  with
  | r -> Ok r
  | exception Bad msg -> Error msg

let dec_status c =
  match dec_char c with
  | 'c' -> Committed { restarts = dec_int c }
  | 'a' -> Aborted (dec_str c)
  | 'j' -> Rejected
  | 'f' -> Failed (dec_str c)
  | 'd' -> Done
  | _ -> raise (Bad "bad status tag")

let decode_resp s =
  let c = { s; pos = 0 } in
  match
    finish c
      (match dec_char c with
      | 'W' ->
          let version = dec_int c in
          let scheme = dec_str c in
          let digest = dec_str c in
          Welcome { version; scheme; digest; banner = dec_str c }
      | 'R' ->
          let rq = dec_int c in
          let latency_us = dec_int c in
          Reply { rq; latency_us; status = dec_status c }
      | 'O' -> Pong { rq = dec_int c }
      | 'E' -> Err (dec_str c)
      | 'Y' -> Bye
      | _ -> raise (Bad "bad response tag"))
  with
  | r -> Ok r
  | exception Bad msg -> Error msg

let pp_req ppf = function
  | Hello { version; digest; client } ->
      Format.fprintf ppf "Hello{v%d digest=%s client=%s}" version digest client
  | Run { rq; actions } -> Format.fprintf ppf "Run{rq=%d actions=%d}" rq (List.length actions)
  | Begin { rq } -> Format.fprintf ppf "Begin{rq=%d}" rq
  | Stmt { rq; _ } -> Format.fprintf ppf "Stmt{rq=%d}" rq
  | Commit { rq } -> Format.fprintf ppf "Commit{rq=%d}" rq
  | Rollback { rq } -> Format.fprintf ppf "Rollback{rq=%d}" rq
  | Ping { rq } -> Format.fprintf ppf "Ping{rq=%d}" rq
  | Quit -> Format.pp_print_string ppf "Quit"

let pp_resp ppf = function
  | Welcome { version; scheme; _ } -> Format.fprintf ppf "Welcome{v%d %s}" version scheme
  | Reply { rq; status; latency_us } ->
      let st =
        match status with
        | Committed { restarts } -> Printf.sprintf "committed/%d" restarts
        | Aborted m -> "aborted:" ^ m
        | Rejected -> "rejected"
        | Failed m -> "failed:" ^ m
        | Done -> "done"
      in
      Format.fprintf ppf "Reply{rq=%d %s %dus}" rq st latency_us
  | Pong { rq } -> Format.fprintf ppf "Pong{rq=%d}" rq
  | Err m -> Format.fprintf ppf "Err{%s}" m
  | Bye -> Format.pp_print_string ppf "Bye"

(* --- framing --- *)

let checksum payload = String.sub (Digest.to_hex (Digest.string payload)) 0 8
let frame payload = Printf.sprintf "%08x%s%s" (String.length payload) (checksum payload) payload

let is_hex ch = (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')

let unframe buf ~pos =
  let avail = String.length buf - pos in
  if avail < 8 then
    (* even a partial length must be hex, or no completion exists *)
    let rec chk i =
      if i >= avail then `Incomplete
      else if is_hex buf.[pos + i] then chk (i + 1)
      else `Corrupt "non-hex length"
    in
    chk 0
  else
    let hex = String.sub buf pos 8 in
    if not (String.for_all is_hex hex) then `Corrupt "non-hex length"
    else
      let len = int_of_string ("0x" ^ hex) in
      if len > max_payload then `Corrupt (Printf.sprintf "oversized frame (%d bytes)" len)
      else if avail < 16 + len then `Incomplete
      else
        let sum = String.sub buf (pos + 8) 8 in
        let payload = String.sub buf (pos + 16) len in
        if not (String.equal sum (checksum payload)) then `Corrupt "checksum mismatch"
        else `Frame (payload, pos + 16 + len)

(* --- addresses --- *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Error "address must be unix:PATH or tcp:HOST:PORT"
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "unix" when rest <> "" -> Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error "tcp address must be tcp:HOST:PORT"
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
              | _ -> Error "bad tcp port"))
      | _ -> Error "address must be unix:PATH or tcp:HOST:PORT")

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr_of_addr = function
  | Unix_sock p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Invalid_argument ("cannot resolve host " ^ host)))
      in
      Unix.ADDR_INET (ip, port)

(* --- blocking frame I/O --- *)

module Io = struct
  type t = { fd : Unix.file_descr; buf : Buffer.t; mutable pos : int }

  let of_fd fd = { fd; buf = Buffer.create 4096; pos = 0 }
  let fd t = t.fd

  let compact t =
    (* drop consumed bytes once they dominate the buffer *)
    if t.pos > 65536 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let read_frame t =
    let chunk = Bytes.create 4096 in
    let rec go () =
      match unframe (Buffer.contents t.buf) ~pos:t.pos with
      | `Frame (payload, next) ->
          t.pos <- next;
          compact t;
          Ok payload
      | `Corrupt msg -> Error (`Corrupt msg)
      | `Incomplete -> (
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 ->
              if t.pos = Buffer.length t.buf then Error `Eof
              else Error (`Corrupt "truncated frame")
          | n ->
              Buffer.add_subbytes t.buf chunk 0 n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
              Error `Eof)
    in
    go ()

  let write t payload =
    let s = frame payload in
    let b = Bytes.of_string s in
    let rec put off =
      if off >= Bytes.length b then Ok ()
      else
        match Unix.write t.fd b off (Bytes.length b - off) with
        | n -> put (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> put off
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    in
    put 0
end

let workload_digest ~slices ~work ~readers ~instances =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "tavcc-wl-1;slices=%d;work=%d;readers=%d;instances=%d" slices work
          readers instances))
