open Tavcc_cc
module Json = Tavcc_obs.Json

type config = {
  addr : Wire.addr;
  clients : int;
  requests : int;
  pipeline : int;
  digest : string;
  client_name : string;
  jobs : int -> Exec.action list array;
}

type report = {
  clients : int;
  requests : int;
  committed : int;
  restarts : int;
  aborted : int;
  rejected : int;
  failed : int;
  protocol_errors : int;
  wall_s : float;
  throughput : float;
  lat_min_us : int;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p90_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  lat_max_us : int;
}

(* One client's closed loop.  [lats.(rq)] is filled when [rq]'s reply
   lands — replies may arrive out of order, the echoed rq is the match. *)
type client_result = {
  cr_sent : int;
  cr_committed : int;
  cr_restarts : int;
  cr_aborted : int;
  cr_rejected : int;
  cr_failed : int;
  cr_protocol_errors : int;
  cr_lats : int array;  (** latencies of replied requests, in reply order *)
}

let client_loop (cfg : config) i =
  let bodies = cfg.jobs i in
  let total = min cfg.requests (Array.length bodies) in
  let name = Printf.sprintf "%s-%d" cfg.client_name i in
  match Client.connect ~digest:cfg.digest ~client:name ~addr:cfg.addr () with
  | Error _ ->
      {
        cr_sent = 0;
        cr_committed = 0;
        cr_restarts = 0;
        cr_aborted = 0;
        cr_rejected = 0;
        cr_failed = 0;
        cr_protocol_errors = 1;
        cr_lats = [||];
      }
  | Ok (c, _) ->
      let send_ts = Array.make total 0.0 in
      let lats = Array.make total 0 in
      let n_lat = ref 0 in
      let sent = ref 0 and recvd = ref 0 in
      let committed = ref 0
      and restarts = ref 0
      and aborted = ref 0
      and rejected = ref 0
      and failed = ref 0
      and proto = ref 0 in
      let give_up = ref false in
      while !recvd < total && not !give_up do
        (* top up the pipeline *)
        while !sent < total && !sent - !recvd < cfg.pipeline && not !give_up do
          send_ts.(!sent) <- Unix.gettimeofday ();
          (match Client.run c ~rq:!sent bodies.(!sent) with
          | Ok () -> incr sent
          | Error _ ->
              incr proto;
              give_up := true);
          ()
        done;
        if not !give_up then
          match Client.recv c with
          | Ok (Wire.Reply { rq; status; _ }) when rq >= 0 && rq < total ->
              let lat_us =
                int_of_float ((Unix.gettimeofday () -. send_ts.(rq)) *. 1e6)
              in
              lats.(!n_lat) <- lat_us;
              incr n_lat;
              incr recvd;
              (match status with
              | Wire.Committed { restarts = r } ->
                  incr committed;
                  restarts := !restarts + r
              | Wire.Aborted _ -> incr aborted
              | Wire.Rejected -> incr rejected
              | Wire.Failed _ -> incr failed
              | Wire.Done -> incr failed)
          | Ok (Wire.Pong _) -> ()
          | Ok _ | Error _ ->
              incr proto;
              give_up := true
      done;
      Client.quit c;
      {
        cr_sent = !sent;
        cr_committed = !committed;
        cr_restarts = !restarts;
        cr_aborted = !aborted;
        cr_rejected = !rejected;
        cr_failed = !failed;
        cr_protocol_errors = !proto;
        cr_lats = Array.sub lats 0 !n_lat;
      }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
    sorted.(max 0 (min (n - 1) rank))

let run (cfg : config) =
  if cfg.clients <= 0 || cfg.requests <= 0 || cfg.pipeline <= 0 then
    invalid_arg "Blast.run: clients, requests and pipeline must be positive";
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init cfg.clients (fun i -> Domain.spawn (fun () -> client_loop cfg i))
  in
  let results = List.map Domain.join workers in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let lats = Array.concat (List.map (fun r -> r.cr_lats) results) in
  Array.sort compare lats;
  let n = Array.length lats in
  let committed = sum (fun r -> r.cr_committed) in
  {
    clients = cfg.clients;
    requests = sum (fun r -> r.cr_sent);
    committed;
    restarts = sum (fun r -> r.cr_restarts);
    aborted = sum (fun r -> r.cr_aborted);
    rejected = sum (fun r -> r.cr_rejected);
    failed = sum (fun r -> r.cr_failed);
    protocol_errors = sum (fun r -> r.cr_protocol_errors);
    wall_s;
    throughput = (if wall_s > 0. then float_of_int committed /. wall_s else 0.);
    lat_min_us = (if n = 0 then 0 else lats.(0));
    lat_mean_us =
      (if n = 0 then 0.
       else float_of_int (Array.fold_left ( + ) 0 lats) /. float_of_int n);
    lat_p50_us = percentile lats 0.50;
    lat_p90_us = percentile lats 0.90;
    lat_p95_us = percentile lats 0.95;
    lat_p99_us = percentile lats 0.99;
    lat_max_us = (if n = 0 then 0 else lats.(n - 1));
  }

let report_to_json r =
  Json.Obj
    [
      ("clients", Json.Int r.clients);
      ("requests", Json.Int r.requests);
      ("committed", Json.Int r.committed);
      ("restarts", Json.Int r.restarts);
      ("aborted", Json.Int r.aborted);
      ("rejected", Json.Int r.rejected);
      ("failed", Json.Int r.failed);
      ("protocol_errors", Json.Int r.protocol_errors);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput);
      ( "latency_us",
        Json.Obj
          [
            ("min", Json.Int r.lat_min_us);
            ("mean", Json.Float r.lat_mean_us);
            ("p50", Json.Int r.lat_p50_us);
            ("p90", Json.Int r.lat_p90_us);
            ("p95", Json.Int r.lat_p95_us);
            ("p99", Json.Int r.lat_p99_us);
            ("max", Json.Int r.lat_max_us);
          ] );
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "clients=%d requests=%d committed=%d restarts=%d aborted=%d rejected=%d failed=%d \
     proto_errs=%d wall=%.2fs %.0f req/s p50=%dus p95=%dus p99=%dus"
    r.clients r.requests r.committed r.restarts r.aborted r.rejected r.failed
    r.protocol_errors
    r.wall_s r.throughput r.lat_p50_us r.lat_p95_us r.lat_p99_us
