(** Precision-loss blame: which self-call chain widened a TAV field.

    Definition 10 joins, into [TAV{C,M}], the DAV of every vertex the
    entry [(C, M)] reaches in the late-binding resolution graph.  When a
    field ends up wider in the TAV than in the entry's own DAV, some
    reachable vertex is responsible; this module recovers the {e
    shortest} self-call chain from the entry to the first vertex whose
    DAV attains the widened mode, with the source position of every send
    along the way — the provenance the linter attaches to escalation
    (ESC001) and precision-loss (PRL001) diagnostics. *)

open Tavcc_model
open Tavcc_lang
open Tavcc_core

type step = {
  s_from : Site.t;
  s_to : Site.t;
  s_pos : Token.pos option;  (** position of the self-send in [s_from]'s body *)
}

type chain = {
  c_entry : Site.t;
  c_field : Name.Field.t;
  c_dav_mode : Mode.t;  (** the field's mode in the entry's DAV *)
  c_tav_mode : Mode.t;  (** its (strictly wider) mode in the TAV *)
  c_steps : step list;  (** entry → … → sink, shortest by edge count *)
  c_sink : Site.t;  (** first vertex whose DAV attains [c_tav_mode] *)
  c_access_pos : Token.pos option;  (** the widening field access in the sink *)
}

val widened : Tavcc_core.Analysis.t -> Name.Class.t -> Name.Method.t -> chain list
(** One chain per field whose TAV mode strictly exceeds its DAV mode at
    the entry [(C, M)], in field order.  Empty when [TAV = DAV]. *)

type context
(** Per-class blame state — the LBR, one DAV per vertex, and the source
    position of every LBR edge, computed once.  Blaming every entry of a
    class through one context avoids re-scanning send sites per step. *)

val context : Tavcc_core.Analysis.t -> Name.Class.t -> context

val widened_in : context -> Tavcc_core.Analysis.t -> Name.Method.t -> chain list
(** [widened] against a precomputed per-class context. *)

val edge_pos : Tavcc_core.Extraction.t -> cls:Name.Class.t -> Site.t -> Site.t -> Token.pos option
(** Position of the send statement realising the LBR edge [v -> w] in the
    graph of class [cls] — the prefixed send naming [w], or the simple
    self-send of [w]'s method when [w] is a re-resolved vertex of [cls]. *)
