(** The compile-time conflict analyzer behind [favc lint].

    [analyze] runs seven passes over a compiled schema and returns
    {!Diag.t} diagnostics with statement-level provenance:

    - {b ESC001} (warning): escalation-deadlock sites (problem P3) — a
      method whose DAV writes nothing takes a Read instance lock under
      rw-msg locking, but a self-call chain widens some field to [Write],
      so concurrent invocations on one instance convert Read → Write and
      deadlock.  The blamed chain comes from {!Blame.widened}.
    - {b PCF001} (warning): pseudo-conflicts (problem P4) — method pairs
      that conflict under whole-instance read/write locking (at least one
      writes) while their TAVs commute (definition 5), with the
      field-group decomposition that would let them run concurrently.
    - {b PRL001} (info): per-field precision-loss blame — the shortest
      LBR chain responsible for each field whose TAV exceeds its DAV.
    - {b PRL002} (info): joins whose branches disagree on a field that
      ends up [Write] — the [if]/[while] statement that forced the
      conservative widening of definition 6 (sec. 4.4).
    - {b DYN001} (warning): sends whose receiver class is statically
      unknown, forcing impact analyses to assume the whole schema
      (whole-schema preclaiming in {!Tavcc_cc.Tav_preclaim}).
    - {b PRE001} (error): cycles of the method dependency graph spanning
      several classes — mutually recursive preclaiming sets (sec. 4.3).
    - {b ADT001} (info): integer fields whose every write is a
      self-increment/decrement ([f := f + e] / [f := f - e] with [e]
      independent of [f]) — candidates for promotion to a counter ADT
      with an ad hoc escrow commutativity declaration ({!Adhoc},
      sec. 3).

    The full catalogue, each code with a minimal ODML example, is in
    [docs/ANALYZER.md]. *)

open Tavcc_model
open Tavcc_core

type report = {
  r_diags : Diag.t list;
      (** sorted by {!Diag.render_compare}: position-major, so text and
          JSON output are byte-stable across runs *)
  r_blamed : (Site.t * Site.t) list Name.Class.Map.t;
      (** per class, the LBR edges blamed by some chain — the overlay
          {!dot_overlay} highlights *)
}

val analyze : Analysis.t -> report

val escalation_sites : Analysis.t -> Site.Set.t
(** The ESC001 sites alone: entries whose DAV writes nothing while their
    TAV writes.  Under rw-msg locking these are exactly the entries that
    convert Read → Write mid-flight; {!Tavcc_sim.Crosscheck} verifies
    every escalation deadlock the engine observes starts from this set. *)

val pseudo_conflicts : Analysis.t -> (Name.Class.t * (Name.Method.t * Name.Method.t)) list
(** The PCF001 pairs alone, [(class, (m, m'))] with [m < m']. *)

val count : report -> Diag.severity -> int
val max_severity : report -> Diag.severity option
(** [None] on a clean report. *)

val pp_report : Format.formatter -> report -> unit
(** The text rendering of [favc lint]: one block per diagnostic, then a
    one-line summary. *)

val to_json : report -> Tavcc_obs.Json.t
(** [{ "diagnostics": [...], "summary": {"error": n, ...} }]. *)

val dot_overlay : Analysis.t -> report -> Name.Class.t -> string
(** The class's LBR graph in GraphViz form with the blamed edges (and the
    vertices they connect) highlighted in red. *)
