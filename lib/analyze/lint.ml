open Tavcc_model
open Tavcc_core
open Tavcc_lang
module Json = Tavcc_obs.Json
module CN = Name.Class
module MN = Name.Method
module FN = Name.Field

type report = {
  r_diags : Diag.t list;
  r_blamed : (Site.t * Site.t) list CN.Map.t;
}

let fields_str fs = "{" ^ String.concat ", " (List.map FN.to_string fs) ^ "}"

(* Sites rendered relative to the class under analysis: [m2] for its own
   vertices, [c1.m2] for prefixed-call vertices of an ancestor.  Plain
   string building — a large schema yields thousands of chain notes, and
   [Format.asprintf] per note dominated the analyzer's wall-time. *)
let site_str cls (c, m) =
  if CN.equal c cls then MN.to_string m
  else CN.to_string c ^ "." ^ MN.to_string m

let chain_str cls (entry, steps) =
  String.concat " -> "
    (site_str cls entry :: List.map (fun s -> site_str cls s.Blame.s_to) steps)

let chain_notes cls chain =
  let step_notes =
    List.map
      (fun s ->
        { Diag.n_msg = "self-call resolves to " ^ site_str cls s.Blame.s_to;
          n_pos = s.Blame.s_pos })
      chain.Blame.c_steps
  in
  step_notes
  @ [
      {
        Diag.n_msg =
          site_str cls chain.Blame.c_sink ^ " accesses "
          ^ FN.to_string chain.Blame.c_field
          ^ " in mode "
          ^ Mode.to_string chain.Blame.c_tav_mode;
        n_pos = chain.Blame.c_access_pos;
      };
    ]

(* --- ESC001: escalation-deadlock sites (problem P3) --- *)

let escalation_sites an =
  let schema = Analysis.schema an in
  List.fold_left
    (fun acc cls ->
      List.fold_left
        (fun acc m ->
          let dav = Analysis.dav an cls m and tav = Analysis.tav an cls m in
          if Access_vector.write_fields dav = [] && Access_vector.write_fields tav <> []
          then Site.Set.add (cls, m) acc
          else acc)
        acc (Schema.methods schema cls))
    Site.Set.empty (Schema.classes schema)

let escalation_diags an chains_of =
  Site.Set.fold
    (fun (cls, m) acc ->
      let tav = Analysis.tav an cls m in
      let writes = Access_vector.write_fields tav in
      let chains =
        List.filter
          (fun c -> Mode.equal c.Blame.c_tav_mode Mode.Write)
          (chains_of cls m)
      in
      let pos =
        match chains with
        | { Blame.c_steps = s :: _; _ } :: _ -> s.Blame.s_pos
        | _ -> None
      in
      let notes = List.concat_map (chain_notes cls) chains in
      let msg =
        "entry lock is Read (the DAV writes nothing) but self-calls escalate it to Write "
        ^ fields_str writes
        ^ "; concurrent sends to one instance convert Read -> Write and deadlock under \
           rw-msg locking (problem P3)"
      in
      Diag.make ?pos ~notes Diag.Esc001 (cls, m) msg :: acc)
    (escalation_sites an) []

(* --- PCF001: pseudo-conflicts (problem P4) --- *)

let pseudo_conflicts an =
  let schema = Analysis.schema an in
  List.concat_map
    (fun cls ->
      let meths = Schema.methods schema cls in
      let rec pairs = function
        | [] -> []
        | m :: tl -> List.map (fun m' -> (m, m')) tl @ pairs tl
      in
      List.filter_map
        (fun (m, m') ->
          let tav = Analysis.tav an cls m and tav' = Analysis.tav an cls m' in
          let writes v = Access_vector.write_fields v <> [] in
          if (writes tav || writes tav') && Access_vector.commutes tav tav' then
            Some (cls, (m, m'))
          else None)
        (pairs meths))
    (Schema.classes schema)

let describe_writes (m, tav) =
  match Access_vector.write_fields tav with
  | [] -> MN.to_string m ^ " only reads"
  | ws -> MN.to_string m ^ " writes " ^ fields_str ws

let av_str v =
  "("
  ^ String.concat ", "
      (List.map
         (fun (f, m) -> Mode.to_string m ^ " " ^ FN.to_string f)
         (Access_vector.to_list v))
  ^ ")"

let pcf_diags an =
  let ex = Analysis.extraction an in
  List.map
    (fun (cls, (m, m')) ->
      let tav = Analysis.tav an cls m and tav' = Analysis.tav an cls m' in
      let fs = FN.Set.of_list (Access_vector.fields tav) in
      let fs' = FN.Set.of_list (Access_vector.fields tav') in
      let only s s' = FN.Set.elements (FN.Set.diff s s') in
      let shared = FN.Set.elements (FN.Set.inter fs fs') in
      let first_write_pos mth v =
        match Access_vector.write_fields v with
        | f :: _ -> Extraction.first_field_pos ex cls mth f Mode.Write
        | [] -> None
      in
      let pos =
        match first_write_pos m tav with
        | Some _ as p -> p
        | None -> first_write_pos m' tav'
      in
      let note mth v =
        { Diag.n_msg = "TAV of " ^ MN.to_string mth ^ ": " ^ av_str v;
          n_pos = first_write_pos mth v }
      in
      let msg =
        MN.to_string m ^ " and " ^ MN.to_string m'
        ^ " conflict under whole-instance read/write locking ("
        ^ describe_writes (m, tav)
        ^ "; "
        ^ describe_writes (m', tav')
        ^ ") yet their TAVs commute; decomposing the instance lock into field groups "
        ^ fields_str (only fs fs')
        ^ " / "
        ^ fields_str (only fs' fs)
        ^ (if shared = [] then "" else " (compatibly shared: " ^ fields_str shared ^ ")")
        ^ " lets them run concurrently (problem P4)"
      in
      Diag.make ?pos ~notes:[ note m tav; note m' tav' ] Diag.Pcf001 (cls, m) msg)
    (pseudo_conflicts an)

(* --- PRL001: per-field precision-loss blame --- *)

let prl001_diags an chains_of =
  let schema = Analysis.schema an in
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun m ->
          List.map
            (fun ch ->
              let pos =
                match ch.Blame.c_steps with s :: _ -> s.Blame.s_pos | [] -> None
              in
              let f = FN.to_string ch.Blame.c_field in
              let msg =
                "TAV holds "
                ^ Mode.to_string ch.Blame.c_tav_mode
                ^ " " ^ f ^ " but the DAV has "
                ^ Mode.to_string ch.Blame.c_dav_mode
                ^ " " ^ f ^ ": widened by the self-call chain "
                ^ chain_str cls (ch.Blame.c_entry, ch.Blame.c_steps)
              in
              Diag.make ?pos ~notes:(chain_notes cls ch) Diag.Prl001 (cls, m) msg)
            (chains_of cls m))
        (Schema.methods schema cls))
    (Schema.classes schema)

(* --- PRL002: joins whose branches force a widening --- *)

let rec flatten_branch acc = function
  | [] -> acc
  | (Extraction.Afield _ as a) :: tl | (Extraction.Asend _ as a) :: tl ->
      flatten_branch (a :: acc) tl
  | Extraction.Ajoin j :: tl ->
      flatten_branch (flatten_branch (flatten_branch acc j.Extraction.j_then) j.Extraction.j_else) tl

let first_write_in branch f =
  List.find_map
    (function
      | Extraction.Afield (f', Mode.Write, p) when FN.equal f f' -> p
      | _ -> None)
    (List.rev (flatten_branch [] branch))

let prl002_diags an =
  let schema = Analysis.schema an in
  let ex = Analysis.extraction an in
  let site_diags cls m tree =
    (* Post-order: a field blamed on an inner join is not re-blamed on an
       enclosing one — the innermost branch is the forcing statement. *)
    let rec walk (rep, ds) tree =
      List.fold_left
        (fun (rep, ds) a ->
          match a with
          | Extraction.Afield _ | Extraction.Asend _ -> (rep, ds)
          | Extraction.Ajoin j ->
              let rep, ds = walk (walk (rep, ds) j.Extraction.j_then) j.Extraction.j_else in
              let av_t = Extraction.join_av j.Extraction.j_then in
              let av_e = Extraction.join_av j.Extraction.j_else in
              let fields =
                List.sort_uniq FN.compare
                  (Access_vector.fields av_t @ Access_vector.fields av_e)
              in
              List.fold_left
                (fun (rep, ds) f ->
                  let mt = Access_vector.get av_t f and me = Access_vector.get av_e f in
                  if
                    Mode.equal mt me
                    || (not (Mode.equal (Mode.join mt me) Mode.Write))
                    || FN.Set.mem f rep
                  then (rep, ds)
                  else
                    let wbranch =
                      if Mode.equal mt Mode.Write then j.Extraction.j_then
                      else j.Extraction.j_else
                    in
                    let kind = if j.Extraction.j_while then "while" else "if" in
                    let fstr = FN.to_string f in
                    let msg =
                      fstr ^ " is written only inside a branch of this " ^ kind
                      ^ "; definition 6 joins both branches, so the method's vector \
                         conservatively holds Write "
                      ^ fstr
                    in
                    let notes =
                      match first_write_in wbranch f with
                      | Some _ as p ->
                          [ { Diag.n_msg = fstr ^ " is written here"; n_pos = p } ]
                      | None -> []
                    in
                    ( FN.Set.add f rep,
                      Diag.make ?pos:j.Extraction.j_pos ~notes Diag.Prl002 (cls, m) msg
                      :: ds ))
                (rep, ds) fields)
        (rep, ds) tree
    in
    snd (walk (FN.Set.empty, []) tree)
  in
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun (md : _ Schema.method_def) ->
          let m = md.Schema.m_name in
          site_diags cls m (Extraction.access_tree ex cls m))
        (Schema.own_methods schema cls))
    (Schema.classes schema)

(* --- DYN001: statically unknown receivers --- *)

let dyn_diags an =
  let schema = Analysis.schema an in
  let ex = Analysis.extraction an in
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun (md : _ Schema.method_def) ->
          let m = md.Schema.m_name in
          List.filter_map
            (fun s ->
              match s.Extraction.sk_kind with
              | Extraction.Sk_dyn ->
                  let msg =
                    "receiver class is statically unknown: the impact analysis must \
                     assume every class is reachable, so preclaiming degrades to \
                     locking the whole schema"
                  in
                  Some (Diag.make ?pos:s.Extraction.sk_pos Diag.Dyn001 (cls, m) msg)
              | _ -> None)
            (Extraction.send_sites ex cls m))
        (Schema.own_methods schema cls))
    (Schema.classes schema)

(* --- PRE001: preclaim cycles in the method dependency graph --- *)

let sccs vertices successors =
  let arr = Array.of_list vertices in
  let n = Array.length arr in
  let idx = Hashtbl.create (2 * n) in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) arr;
  let succ i =
    List.filter_map (fun w -> Hashtbl.find_opt idx w) (successors arr.(i))
  in
  let index = Array.make n (-1) and low = Array.make n 0 in
  let onstack = Array.make n false in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then (
          strong w;
          low.(v) <- min low.(v) low.(w))
        else if onstack.(w) then low.(v) <- min low.(v) index.(w))
      (succ v);
    if low.(v) = index.(v) then (
      let rec pop acc =
        match !stack with
        | w :: tl ->
            stack := tl;
            onstack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := List.map (Array.get arr) (pop []) :: !out)
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  !out

let pre_diags an =
  let schema = Analysis.schema an in
  let ex = Analysis.extraction an in
  let dg = Depgraph.build_with (Analysis.lbr an) ex in
  let cross_classes =
    List.filter
      (fun scc ->
        List.length (List.sort_uniq CN.compare (List.map fst scc)) >= 2)
      (sccs (Depgraph.vertices dg) (Depgraph.successors dg))
  in
  List.map
    (fun scc ->
      let scc = List.sort Site.compare scc in
      let classes = List.sort_uniq CN.compare (List.map fst scc) in
      (* A cross-send realises a cycle edge when its target method, resolved
         over the declared class's domain, lands on a member of the SCC. *)
      let in_scc d m' =
        List.exists
          (fun (c'', m'') ->
            MN.equal m'' m'
            && (CN.equal c'' d || List.exists (CN.equal c'') (Schema.domain schema d)))
          scc
      in
      let notes =
        List.concat_map
          (fun (c, m) ->
            List.filter_map
              (fun s ->
                match s.Extraction.sk_kind with
                | Extraction.Sk_cross (d, m') when in_scc d m' ->
                    Some
                      {
                        Diag.n_msg =
                          Format.asprintf "%a.%a sends %a to an instance of %a" CN.pp c
                            MN.pp m MN.pp m' CN.pp d;
                        n_pos = s.Extraction.sk_pos;
                      }
                | _ -> None)
              (Extraction.send_sites ex c m))
          scc
      in
      let pos = List.find_map (fun n -> n.Diag.n_pos) notes in
      let msg =
        Format.asprintf
          "methods of classes %a call each other through composition links (a cycle of \
           the method dependency graph): their preclaiming sets are mutually recursive, \
           every class of the cycle must be claimed up front, and incremental locking \
           may deadlock across objects (sec. 4.3)"
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             CN.pp)
          classes
      in
      Diag.make ?pos ~notes Diag.Pre001 (List.hd scc) msg)
    cross_classes

(* --- ADT001: counter/escrow ADT candidates --- *)

let rec mentions x = function
  | Ast.Ident y -> String.equal x y
  | Ast.Lit _ | Ast.Self | Ast.New _ -> false
  | Ast.Unop (_, e) -> mentions x e
  | Ast.Binop (_, a, b) -> mentions x a || mentions x b
  | Ast.Send m -> (
      List.exists (mentions x) m.Ast.msg_args
      ||
      match m.Ast.msg_recv with Ast.Rexpr e -> mentions x e | Ast.Rself -> false)

(* [x := x + e], [x := x - e] or [x := e + x] with [e] independent of
   [x] — the delta-application shape escrow locking commutes. *)
let is_bump x = function
  | Ast.Binop ((Ast.Add | Ast.Sub), Ast.Ident y, e) when String.equal x y -> not (mentions x e)
  | Ast.Binop (Ast.Add, e, Ast.Ident y) when String.equal x y -> not (mentions x e)
  | _ -> false

let rec body_locals acc = function
  | Ast.Var (x, _) -> x :: acc
  | Ast.At (_, s) -> body_locals acc s
  | Ast.If (_, t, e) -> List.fold_left body_locals (List.fold_left body_locals acc t) e
  | Ast.While (_, b) -> List.fold_left body_locals acc b
  | Ast.Assign _ | Ast.Send_stmt _ | Ast.Return _ -> acc

type bump_stats = {
  mutable b_bumps : (Site.t * Token.pos option) list;  (** reverse source order *)
  mutable b_other : bool;  (** some write is not a bump *)
}

let adt_diags an =
  let schema = Analysis.schema an in
  let stats : (CN.t * FN.t, bump_stats) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let stat key =
    match Hashtbl.find_opt stats key with
    | Some s -> s
    | None ->
        let s = { b_bumps = []; b_other = false } in
        Hashtbl.add stats key s;
        order := key :: !order;
        s
  in
  List.iter
    (fun cls ->
      List.iter
        (fun (md : _ Schema.method_def) ->
          let shadowed = List.fold_left body_locals md.Schema.m_params md.Schema.m_body in
          let rec walk pos s =
            match s with
            | Ast.At (p, s) -> walk (Some p) s
            | Ast.If (_, t, e) ->
                List.iter (walk pos) t;
                List.iter (walk pos) e
            | Ast.While (_, b) -> List.iter (walk pos) b
            | Ast.Assign (x, e) when not (List.mem x shadowed) -> (
                match Schema.field_def schema cls (FN.of_string x) with
                | Some fd when fd.Schema.f_ty = Value.Tint ->
                    let s = stat (fd.Schema.f_owner, fd.Schema.f_name) in
                    if is_bump x e then
                      s.b_bumps <- ((cls, md.Schema.m_name), pos) :: s.b_bumps
                    else s.b_other <- true
                | Some _ | None -> ())
            | Ast.Assign _ | Ast.Var _ | Ast.Send_stmt _ | Ast.Return _ -> ()
          in
          List.iter (walk None) md.Schema.m_body)
        (Schema.own_methods schema cls))
    (Schema.classes schema);
  List.filter_map
    (fun ((owner, f) as key) ->
      let s = Hashtbl.find stats key in
      match List.rev s.b_bumps with
      | [] -> None
      | _ when s.b_other -> None
      | ((site, pos) :: _ as bumps) ->
          let fstr = FN.to_string f in
          let msg =
            "every write to " ^ fstr ^ " (declared by " ^ CN.to_string owner
            ^ ") is a self-increment/decrement; promoting it to a counter ADT with an \
               ad hoc escrow commutativity declaration would let these writes commute \
               instead of conflicting in Write mode (sec. 3)"
          in
          let notes =
            List.map
              (fun ((c, m), p) ->
                { Diag.n_msg = fstr ^ " is bumped in " ^ site_str owner (c, m); n_pos = p })
              bumps
          in
          Some (Diag.make ?pos ~notes Diag.Adt001 site msg))
    (List.rev !order)

(* --- the report --- *)

let analyze an =
  let schema = Analysis.schema an in
  (* Blame chains are shared between ESC001, PRL001 and the DOT overlay;
     compute them once per (class, method). *)
  let chains =
    List.fold_left
      (fun acc cls ->
        let ctx = Blame.context an cls in
        List.fold_left
          (fun acc m -> Site.Map.add (cls, m) (Blame.widened_in ctx an m) acc)
          acc (Schema.methods schema cls))
      Site.Map.empty (Schema.classes schema)
  in
  let chains_of cls m =
    match Site.Map.find_opt (cls, m) chains with Some cs -> cs | None -> []
  in
  let diags =
    escalation_diags an chains_of
    @ pcf_diags an @ prl001_diags an chains_of @ prl002_diags an @ dyn_diags an
    @ pre_diags an @ adt_diags an
  in
  let blamed =
    let seen = Hashtbl.create 64 in
    Site.Map.fold
      (fun (cls, _) cs acc ->
        List.fold_left
          (fun acc ch ->
            List.fold_left
              (fun acc s ->
                let key = (cls, s.Blame.s_from, s.Blame.s_to) in
                if Hashtbl.mem seen key then acc
                else begin
                  Hashtbl.add seen key ();
                  let e = (s.Blame.s_from, s.Blame.s_to) in
                  let es =
                    match CN.Map.find_opt cls acc with Some l -> l | None -> []
                  in
                  CN.Map.add cls (e :: es) acc
                end)
              acc ch.Blame.c_steps)
          acc cs)
      chains CN.Map.empty
  in
  (* Position-major rendering order: reruns and [--json] diff byte-stable
     regardless of which pass produced a diagnostic first.  Severity
     gating ([max_severity], [count]) is order-independent. *)
  { r_diags = List.sort Diag.render_compare diags; r_blamed = blamed }

let count r sev =
  List.length (List.filter (fun d -> d.Diag.d_severity = sev) r.r_diags)

let max_severity r =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when Diag.severity_rank s >= Diag.severity_rank d.Diag.d_severity -> acc
      | _ -> Some d.Diag.d_severity)
    None r.r_diags

let pp_report ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@\n" Diag.pp d) r.r_diags;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@\n" (count r Diag.Error)
    (count r Diag.Warning) (count r Diag.Info)

let to_json r =
  Json.Obj
    [
      ("diagnostics", Json.List (List.map Diag.to_json r.r_diags));
      ( "summary",
        Json.Obj
          [
            ("error", Json.Int (count r Diag.Error));
            ("warning", Json.Int (count r Diag.Warning));
            ("info", Json.Int (count r Diag.Info));
          ] );
    ]

let dot_overlay an r cls =
  let lbr = Analysis.lbr an cls in
  let vs = Lbr.vertices lbr in
  let blamed = match CN.Map.find_opt cls r.r_blamed with Some l -> l | None -> [] in
  let is_blamed v w =
    List.exists (fun (a, b) -> Site.equal a v && Site.equal b w) blamed
  in
  let touches v = List.exists (fun (a, b) -> Site.equal a v || Site.equal b v) blamed in
  let name (c, m) = Printf.sprintf "%s,%s" (CN.to_string c) (MN.to_string m) in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "digraph lbr_%s {\n  rankdir=TB;\n  node [shape=box];\n"
       (CN.to_string cls));
  Array.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\"%s;\n" (name v)
           (if touches v then " [color=red]" else "")))
    vs;
  Array.iteri
    (fun i v ->
      List.iter
        (fun j ->
          let w = vs.(j) in
          Buffer.add_string b
            (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" (name v) (name w)
               (if is_blamed v w then " [color=red penwidth=2]" else "")))
        (Lbr.succs lbr).(i))
    vs;
  Buffer.add_string b "}\n";
  Buffer.contents b
