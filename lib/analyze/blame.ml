open Tavcc_model
open Tavcc_core
open Tavcc_lang
module CN = Name.Class
module MN = Name.Method

type step = { s_from : Site.t; s_to : Site.t; s_pos : Token.pos option }

type chain = {
  c_entry : Site.t;
  c_field : Name.Field.t;
  c_dav_mode : Mode.t;
  c_tav_mode : Mode.t;
  c_steps : step list;
  c_sink : Site.t;
  c_access_pos : Token.pos option;
}

let edge_pos ex ~cls v w =
  let sends = Extraction.send_sites ex (fst v) (snd v) in
  let is_psc s =
    match s.Extraction.sk_kind with
    | Extraction.Sk_psc (c, m) -> CN.equal c (fst w) && MN.equal m (snd w)
    | _ -> false
  in
  let is_dsc s =
    match s.Extraction.sk_kind with
    | Extraction.Sk_dsc m -> MN.equal m (snd w)
    | _ -> false
  in
  match List.find_opt is_psc sends with
  | Some s -> s.Extraction.sk_pos
  | None ->
      (* A DSC edge re-resolves its target against the receiver class, so
         it can only lead to a vertex of [cls] itself (definition 9). *)
      if CN.equal (fst w) cls then
        match List.find_opt is_dsc sends with Some s -> s.Extraction.sk_pos | None -> None
      else None

(* BFS tree rooted at [start]: parents array plus visit order, giving
   shortest chains by edge count. *)
let bfs_tree lbr start =
  let succs = Lbr.succs lbr in
  let n = Array.length succs in
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  let order = ref [] in
  let q = Queue.create () in
  visited.(start) <- true;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order := v :: !order;
    List.iter
      (fun w ->
        if not visited.(w) then (
          visited.(w) <- true;
          parent.(w) <- v;
          Queue.add w q))
      succs.(v)
  done;
  (parent, List.rev !order)

(* Per-class context: the LBR, one DAV per vertex and the position of every
   LBR edge are computed once and shared by all entry methods of the class.
   Blaming walks each edge many times (once per chain crossing it), so the
   send-site scan behind [edge_pos] must not run per step. *)
type context = {
  x_ex : Extraction.t;
  x_cls : CN.t;
  x_lbr : Lbr.t;
  x_vs : Site.t array;
  x_davs : Access_vector.t array;
  x_epos : (int * int, Token.pos option) Hashtbl.t;
}

let context an cls =
  let ex = Analysis.extraction an in
  let lbr = Analysis.lbr an cls in
  let vs = Lbr.vertices lbr in
  let davs = Array.map (fun (c', m') -> Extraction.dav ex c' m') vs in
  let succs = Lbr.succs lbr in
  let epos = Hashtbl.create (2 * Array.length vs) in
  Array.iteri
    (fun i v ->
      List.iter (fun j -> Hashtbl.replace epos (i, j) (edge_pos ex ~cls v vs.(j))) succs.(i))
    vs;
  { x_ex = ex; x_cls = cls; x_lbr = lbr; x_vs = vs; x_davs = davs; x_epos = epos }

let path_to ctx parent sink start =
  let rec up acc v =
    if v = start then acc
    else
      let p = parent.(v) in
      let s =
        {
          s_from = ctx.x_vs.(p);
          s_to = ctx.x_vs.(v);
          s_pos = (try Hashtbl.find ctx.x_epos (p, v) with Not_found -> None);
        }
      in
      up (s :: acc) p
  in
  up [] sink

let widened_in ctx an meth =
  let cls = ctx.x_cls in
  let dav = Analysis.dav an cls meth in
  let tav = Analysis.tav an cls meth in
  let widened_fields =
    List.filter
      (fun (f, m) -> not (Mode.leq m (Access_vector.get dav f)))
      (Access_vector.to_list tav)
  in
  if widened_fields = [] then []
  else
    match Lbr.index ctx.x_lbr (cls, meth) with
    | None -> []
    | Some start ->
        let parent, order = bfs_tree ctx.x_lbr start in
        List.filter_map
          (fun (f, tmode) ->
            (* The TAV is the join of reachable DAVs, so some reachable
               vertex attains the mode; BFS order makes it the nearest. *)
            let attains v = Mode.leq tmode (Access_vector.get ctx.x_davs.(v) f) in
            match List.find_opt attains order with
            | None -> None
            | Some sink ->
                let c', m' = ctx.x_vs.(sink) in
                Some
                  {
                    c_entry = (cls, meth);
                    c_field = f;
                    c_dav_mode = Access_vector.get dav f;
                    c_tav_mode = tmode;
                    c_steps = path_to ctx parent sink start;
                    c_sink = ctx.x_vs.(sink);
                    c_access_pos = Extraction.first_field_pos ctx.x_ex c' m' f tmode;
                  })
          widened_fields

let widened an cls meth = widened_in (context an cls) an meth
