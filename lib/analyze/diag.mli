(** Structured, severity-ranked diagnostics with source provenance.

    Every diagnostic names the [(class, method)] site it is about, the
    position of the statement that causes it (threaded from the parser
    through {!Tavcc_core.Extraction}) and a list of secondary notes — the
    self-call chain, the forcing branch, the offending sends — each with
    its own position.  The catalogue of codes is documented in
    [docs/ANALYZER.md]. *)

open Tavcc_core
open Tavcc_lang

type severity = Info | Warning | Error

val severity_rank : severity -> int
(** [Info = 0 < Warning = 1 < Error = 2]. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val pp_severity : Format.formatter -> severity -> unit

type code =
  | Esc001  (** escalation-deadlock site (problem P3) — warning *)
  | Pcf001  (** pseudo-conflict pair (problem P4) — warning *)
  | Prl001  (** precision loss: TAV field wider than DAV — info *)
  | Prl002  (** precision loss: branch-forced widening at a join — info *)
  | Dyn001  (** dynamic send: receiver class statically unknown — warning *)
  | Pre001  (** preclaim lock-order cycle in the dependency graph — error *)
  | Adt001  (** every write to the field is a self-increment: ADT (escrow) candidate — info *)
  | San001  (** sanitizer: observed direct accesses exceed the static DAV — error *)
  | San002  (** sanitizer: accesses observed under an arrival exceed the TAV — error *)
  | San003  (** sanitizer: field access without a dominating lock under the scheme — error *)

val code_to_string : code -> string
val severity_of_code : code -> severity

type note = { n_msg : string; n_pos : Token.pos option }

type t = {
  d_code : code;
  d_severity : severity;
  d_site : Site.t;  (** the [(class, method)] the diagnostic is about *)
  d_pos : Token.pos option;  (** primary causing statement *)
  d_msg : string;
  d_notes : note list;  (** provenance trail, in causal order *)
}

val make : ?pos:Token.pos -> ?notes:note list -> code -> Site.t -> string -> t
(** Severity is derived from the code. *)

val compare : t -> t -> int
(** Most severe first, then by class, method, code and position — the
    severity-major order gating logic works with. *)

val render_compare : t -> t -> int
(** Rendering order: position first (diagnostics without a position sort
    before positioned ones), then code, site, severity and message — a
    total order independent of pass evaluation order, so text and JSON
    reports are byte-stable across runs. *)

val pp : Format.formatter -> t -> unit
(** One [severity CODE class.method line:col: message] line, notes
    indented below. *)

val to_json : t -> Tavcc_obs.Json.t
