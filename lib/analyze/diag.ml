open Tavcc_model
open Tavcc_core
open Tavcc_lang
module Json = Tavcc_obs.Json

type severity = Info | Warning | Error

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)

type code = Esc001 | Pcf001 | Prl001 | Prl002 | Dyn001 | Pre001 | Adt001 | San001 | San002 | San003

let code_to_string = function
  | Esc001 -> "ESC001"
  | Pcf001 -> "PCF001"
  | Prl001 -> "PRL001"
  | Prl002 -> "PRL002"
  | Dyn001 -> "DYN001"
  | Pre001 -> "PRE001"
  | Adt001 -> "ADT001"
  | San001 -> "SAN001"
  | San002 -> "SAN002"
  | San003 -> "SAN003"

let severity_of_code = function
  | Esc001 | Pcf001 | Dyn001 -> Warning
  | Prl001 | Prl002 | Adt001 -> Info
  | Pre001 | San001 | San002 | San003 -> Error

type note = { n_msg : string; n_pos : Token.pos option }

type t = {
  d_code : code;
  d_severity : severity;
  d_site : Site.t;
  d_pos : Token.pos option;
  d_msg : string;
  d_notes : note list;
}

let make ?pos ?(notes = []) code site msg =
  {
    d_code = code;
    d_severity = severity_of_code code;
    d_site = site;
    d_pos = pos;
    d_msg = msg;
    d_notes = notes;
  }

let compare_pos p p' =
  match (p, p') with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some a, Some b ->
      let c = Int.compare a.Token.line b.Token.line in
      if c <> 0 then c else Int.compare a.Token.col b.Token.col

let compare d d' =
  let c = Int.compare (severity_rank d'.d_severity) (severity_rank d.d_severity) in
  if c <> 0 then c
  else
    let c = Site.compare d.d_site d'.d_site in
    if c <> 0 then c
    else
      let c = Stdlib.compare d.d_code d'.d_code in
      if c <> 0 then c else compare_pos d.d_pos d'.d_pos

let render_compare d d' =
  let c = compare_pos d.d_pos d'.d_pos in
  if c <> 0 then c
  else
    let c = Stdlib.compare d.d_code d'.d_code in
    if c <> 0 then c
    else
      let c = Site.compare d.d_site d'.d_site in
      if c <> 0 then c
      else
        let c = Int.compare (severity_rank d'.d_severity) (severity_rank d.d_severity) in
        if c <> 0 then c else String.compare d.d_msg d'.d_msg

let pp_pos_opt ppf = function
  | Some p -> Format.fprintf ppf " %d:%d" p.Token.line p.Token.col
  | None -> ()

let pp ppf d =
  let c, m = d.d_site in
  Format.fprintf ppf "%a %s %a.%a%a: %s" pp_severity d.d_severity
    (code_to_string d.d_code) Name.Class.pp c Name.Method.pp m pp_pos_opt d.d_pos d.d_msg;
  List.iter
    (fun n -> Format.fprintf ppf "@\n  note%a: %s" pp_pos_opt n.n_pos n.n_msg)
    d.d_notes

let json_of_pos = function
  | None -> Json.Null
  | Some p -> Json.Obj [ ("line", Json.Int p.Token.line); ("col", Json.Int p.Token.col) ]

let to_json d =
  let c, m = d.d_site in
  Json.Obj
    [
      ("code", Json.String (code_to_string d.d_code));
      ("severity", Json.String (severity_to_string d.d_severity));
      ("class", Json.String (Name.Class.to_string c));
      ("method", Json.String (Name.Method.to_string m));
      ("pos", json_of_pos d.d_pos);
      ("message", Json.String d.d_msg);
      ( "notes",
        Json.List
          (List.map
             (fun n ->
               Json.Obj [ ("message", Json.String n.n_msg); ("pos", json_of_pos n.n_pos) ])
             d.d_notes) );
    ]
